#include "sim/address_space.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/sanitizer.h"

namespace corm::sim {

AddressSpace::~AddressSpace() {
  // Drop page-table references so PhysicalMemory accounting stays balanced
  // when address spaces are torn down in tests.
  for (const auto& [page, frame] : page_table_) {
    phys_->Unref(frame);
  }
}

VAddr AddressSpace::ReserveRange(size_t npages) {
  CORM_CHECK_GT(npages, 0u);
  LockGuard<Mutex> lock(mu_);
  reserved_pages_ += npages;
  auto it = free_ranges_.find(npages);
  if (it != free_ranges_.end()) {
    VAddr base = it->second;
    free_ranges_.erase(it);
    return base;
  }
  VAddr base = next_vaddr_;
  next_vaddr_ += npages * kVPageSize;
  return base;
}

void AddressSpace::ReleaseRange(VAddr base, size_t npages) {
  CORM_CHECK_EQ(PageOffset(base), 0u);
  LockGuard<Mutex> lock(mu_);
  CORM_CHECK_GE(reserved_pages_, npages);
  reserved_pages_ -= npages;
  free_ranges_.emplace(npages, base);
}

Status AddressSpace::MapFresh(VAddr base, size_t npages) {
  if (PageOffset(base) != 0) {
    return Status::InvalidArgument("MapFresh: base not page aligned");
  }
  std::vector<FrameId> frames;
  frames.reserve(npages);
  for (size_t i = 0; i < npages; ++i) {
    auto frame = phys_->AllocFrame();
    if (!frame.ok()) {
      // Roll back partial allocation.
      for (FrameId f : frames) phys_->Unref(f);
      return frame.status();
    }
    frames.push_back(*frame);
  }
  LockGuard<Mutex> lock(mu_);
  for (size_t i = 0; i < npages; ++i) {
    VAddr page = base + i * kVPageSize;
    CORM_CHECK(page_table_.find(page) == page_table_.end())
        << "MapFresh over an existing mapping at " << page;
    page_table_[page] = frames[i];  // AllocFrame's ref becomes the PT ref
  }
  return Status::OK();
}

Status AddressSpace::MapFreshContiguous(VAddr base, size_t npages) {
  if (PageOffset(base) != 0) {
    return Status::InvalidArgument(
        "MapFreshContiguous: base not page aligned");
  }
  auto frames = phys_->AllocContiguousFrames(npages);
  if (!frames.ok()) return frames.status();
  LockGuard<Mutex> lock(mu_);
  for (size_t i = 0; i < npages; ++i) {
    VAddr page = base + i * kVPageSize;
    CORM_CHECK(page_table_.find(page) == page_table_.end())
        << "MapFreshContiguous over an existing mapping at " << page;
    page_table_[page] = (*frames)[i];  // the alloc ref becomes the PT ref
  }
  return Status::OK();
}

Status AddressSpace::MapFrames(VAddr base, const std::vector<FrameId>& frames) {
  if (PageOffset(base) != 0) {
    return Status::InvalidArgument("MapFrames: base not page aligned");
  }
  LockGuard<Mutex> lock(mu_);
  for (size_t i = 0; i < frames.size(); ++i) {
    VAddr page = base + i * kVPageSize;
    CORM_CHECK(page_table_.find(page) == page_table_.end())
        << "MapFrames over an existing mapping";
    phys_->Ref(frames[i]);
    page_table_[page] = frames[i];
  }
  return Status::OK();
}

Status AddressSpace::Remap(VAddr base, VAddr target, size_t npages) {
  if (PageOffset(base) != 0 || PageOffset(target) != 0) {
    return Status::InvalidArgument("Remap: addresses not page aligned");
  }
  std::vector<VAddr> changed;
  {
    LockGuard<Mutex> lock(mu_);
    // Validate both ranges first so the operation is all-or-nothing.
    for (size_t i = 0; i < npages; ++i) {
      if (page_table_.find(base + i * kVPageSize) == page_table_.end() ||
          page_table_.find(target + i * kVPageSize) == page_table_.end()) {
        return Status::InvalidArgument("Remap: unmapped page in range");
      }
    }
    for (size_t i = 0; i < npages; ++i) {
      VAddr src_page = base + i * kVPageSize;
      VAddr dst_page = target + i * kVPageSize;
      FrameId old_frame = page_table_[src_page];
      FrameId new_frame = page_table_[dst_page];
      if (old_frame == new_frame) continue;
      phys_->Ref(new_frame);    // PT ref for the new mapping
      phys_->Unref(old_frame);  // old PT ref dropped
      page_table_[src_page] = new_frame;
      changed.push_back(src_page);
    }
  }
  for (VAddr page : changed) NotifyChange(page);
  return Status::OK();
}

Status AddressSpace::Unmap(VAddr base, size_t npages) {
  if (PageOffset(base) != 0) {
    return Status::InvalidArgument("Unmap: base not page aligned");
  }
  std::vector<VAddr> changed;
  {
    LockGuard<Mutex> lock(mu_);
    for (size_t i = 0; i < npages; ++i) {
      VAddr page = base + i * kVPageSize;
      auto it = page_table_.find(page);
      if (it == page_table_.end()) {
        return Status::InvalidArgument("Unmap: page not mapped");
      }
      phys_->Unref(it->second);
      page_table_.erase(it);
      changed.push_back(page);
    }
  }
  for (VAddr page : changed) NotifyChange(page);
  return Status::OK();
}

Result<FrameId> AddressSpace::TranslatePage(VAddr addr) const {
  LockGuard<Mutex> lock(mu_);
  auto it = page_table_.find(PageBase(addr));
  if (it == page_table_.end()) {
    return Status::NotFound("page not mapped");
  }
  return it->second;
}

uint8_t* AddressSpace::TranslatePtr(VAddr addr) const {
  // The page-table lock is held across the frame dereference: Remap/Unmap
  // drop their frame references under the same lock, so a frame resolved
  // here cannot die before FrameData returns. (Without this, a translate
  // racing a compaction remap could look up a frame id, lose the CPU, and
  // call FrameData on a frame whose last reference was just dropped —
  // the replicated-log applier retries kCompacting objects persistently
  // and hits that window reliably.)
  LockGuard<Mutex> lock(mu_);
  auto it = page_table_.find(PageBase(addr));
  if (it == page_table_.end()) return nullptr;
  return phys_->FrameData(it->second) + PageOffset(addr);
}

Status AddressSpace::ReadVirtual(VAddr addr, void* out, size_t size) const {
  auto* dst = static_cast<uint8_t*>(out);
  while (size > 0) {
    const size_t in_page = std::min<size_t>(size, kVPageSize - PageOffset(addr));
    const uint8_t* src = TranslatePtr(addr);
    if (src == nullptr) return Status::NotFound("ReadVirtual: unmapped page");
    // Simulated one-sided DMA: remote reads race with local CPU stores by
    // design; consumers validate snapshots via the object layout's version
    // bytes (paper §3.2.3). RacyCopy keeps the hardware side of that race
    // out of TSan while the CPU side stays instrumented.
    RacyCopy(dst, src, in_page);
    dst += in_page;
    addr += in_page;
    size -= in_page;
  }
  return Status::OK();
}

Status AddressSpace::WriteVirtual(VAddr addr, const void* data, size_t size) {
  const auto* src = static_cast<const uint8_t*>(data);
  while (size > 0) {
    const size_t in_page = std::min<size_t>(size, kVPageSize - PageOffset(addr));
    uint8_t* dst = TranslatePtr(addr);
    if (dst == nullptr) return Status::NotFound("WriteVirtual: unmapped page");
    RacyCopy(dst, src, in_page);  // simulated DMA write (see ReadVirtual)
    src += in_page;
    addr += in_page;
    size -= in_page;
  }
  return Status::OK();
}

void AddressSpace::AddNotifier(MmuNotifier* notifier) {
  LockGuard<Mutex> lock(mu_);
  notifiers_.push_back(notifier);
}

void AddressSpace::RemoveNotifier(MmuNotifier* notifier) {
  LockGuard<Mutex> lock(mu_);
  notifiers_.erase(std::remove(notifiers_.begin(), notifiers_.end(), notifier),
                   notifiers_.end());
}

void AddressSpace::NotifyChange(VAddr page) {
  std::vector<MmuNotifier*> snapshot;
  {
    LockGuard<Mutex> lock(mu_);
    snapshot = notifiers_;
  }
  for (MmuNotifier* n : snapshot) n->OnMappingChange(page);
}

size_t AddressSpace::mapped_pages() const {
  LockGuard<Mutex> lock(mu_);
  return page_table_.size();
}

size_t AddressSpace::reserved_pages() const {
  LockGuard<Mutex> lock(mu_);
  return reserved_pages_;
}

}  // namespace corm::sim
