#include "sim/fault_injector.h"

#include <mutex>

namespace corm::sim {

namespace {

// FNV-1a over the site name: stable across runs and platforms, so the
// (seed, site, index) → decision mapping is reproducible everywhere.
uint64_t HashSiteName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// SplitMix64 finalizer: decorrelates the combined (seed, site, index) word.
uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<FaultInjector*> g_injector{nullptr};

}  // namespace

void FaultInjector::Arm(const std::string& site, FaultSchedule schedule) {
  LockGuard<SharedMutex> lock(mu_);
  auto& slot = sites_[site];
  if (!slot) {
    slot = std::make_unique<Site>();
    slot->name_hash = HashSiteName(site);
  }
  slot->schedule = schedule;
}

void FaultInjector::Disarm(const std::string& site) {
  LockGuard<SharedMutex> lock(mu_);
  sites_.erase(site);
}

bool FaultInjector::ShouldFire(std::string_view site, uint64_t* delay_ns) {
  SharedLockGuard<SharedMutex> lock(mu_);
  const auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return false;
  Site* s = it->second.get();
  const FaultSchedule& sched = s->schedule;

  // 1-based event index; the atomic increment makes the *decision* for a
  // given index identical across runs even when threads race to claim
  // indices in different orders.
  const uint64_t n = s->events.fetch_add(1, std::memory_order_relaxed) + 1;

  bool fire = false;
  if (sched.one_shot_at != 0 && n == sched.one_shot_at) fire = true;
  if (!fire && sched.every_nth != 0 && n % sched.every_nth == 0) fire = true;
  if (!fire && sched.probability > 0.0) {
    const uint64_t word = Mix(seed_ ^ s->name_hash ^ (n * 0x9e3779b97f4a7c15ULL));
    const double u =
        static_cast<double>(word >> 11) * (1.0 / 9007199254740992.0);
    fire = u < sched.probability;
  }
  if (fire) {
    s->fired.fetch_add(1, std::memory_order_relaxed);
    if (delay_ns != nullptr) *delay_ns = sched.delay_ns;
  }
  return fire;
}

uint64_t FaultInjector::EventCount(std::string_view site) const {
  SharedLockGuard<SharedMutex> lock(mu_);
  const auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0
                            : it->second->events.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::FiredCount(std::string_view site) const {
  SharedLockGuard<SharedMutex> lock(mu_);
  const auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0
                            : it->second->fired.load(std::memory_order_relaxed);
}

FaultInjector* GlobalFaultInjector() {
  return g_injector.load(std::memory_order_acquire);
}

FaultInjector* SetGlobalFaultInjector(FaultInjector* injector) {
  return g_injector.exchange(injector, std::memory_order_acq_rel);
}

}  // namespace corm::sim
