#include "sim/mem_file.h"

#include <algorithm>

#include "common/logging.h"

namespace corm::sim {

MemFileManager::~MemFileManager() {
  // Drop the file-owner references of any still-allocated pages.
  for (auto& file : files_) {
    for (FrameId frame : file.page_frames) {
      if (frame != kInvalidFrame) phys_->Unref(frame);
    }
  }
}

Result<PhysBlock> MemFileManager::AllocBlock(size_t npages) {
  if (npages == 0 || npages > kFilePages) {
    return Status::InvalidArgument("AllocBlock: bad page count");
  }
  LockGuard<Mutex> lock(mu_);

  // First-fit over existing files' free extents.
  int32_t fd = -1;
  uint32_t page_offset = 0;
  for (size_t f = 0; f < files_.size() && fd < 0; ++f) {
    auto& extents = files_[f].free_extents;
    for (auto it = extents.begin(); it != extents.end(); ++it) {
      if (it->second >= npages) {
        fd = static_cast<int32_t>(f);
        page_offset = it->first;
        const uint32_t remaining = it->second - static_cast<uint32_t>(npages);
        extents.erase(it);
        if (remaining > 0) {
          extents.emplace(page_offset + static_cast<uint32_t>(npages),
                          remaining);
        }
        break;
      }
    }
  }
  if (fd < 0) {
    // "memfd_create": open a new 16 MiB file.
    fd = static_cast<int32_t>(files_.size());
    File file;
    if (npages < kFilePages) {
      file.free_extents.emplace(static_cast<uint32_t>(npages),
                                static_cast<uint32_t>(kFilePages - npages));
    }
    file.page_frames.assign(kFilePages, kInvalidFrame);
    files_.push_back(std::move(file));
    page_offset = 0;
  }

  PhysBlock block;
  block.id = {fd, page_offset};
  // One contiguous slab per block: CoRM blocks are linearly addressable
  // (slots may straddle page boundaries within a block).
  auto frames = phys_->AllocContiguousFrames(npages);
  if (!frames.ok()) {
    // Roll back: return the extent.
    files_[fd].free_extents.emplace(page_offset,
                                    static_cast<uint32_t>(npages));
    return frames.status();
  }
  block.frames = std::move(*frames);
  for (size_t i = 0; i < npages; ++i) {
    files_[fd].page_frames[page_offset + i] = block.frames[i];
  }
  return block;
}

void MemFileManager::FreeBlock(const PhysBlock& block) {
  LockGuard<Mutex> lock(mu_);
  CORM_CHECK_GE(block.id.fd, 0);
  CORM_CHECK_LT(static_cast<size_t>(block.id.fd), files_.size());
  File& file = files_[block.id.fd];
  for (size_t i = 0; i < block.frames.size(); ++i) {
    const uint32_t page = block.id.page_offset + static_cast<uint32_t>(i);
    CORM_CHECK_EQ(file.page_frames[page], block.frames[i]);
    phys_->Unref(block.frames[i]);
    file.page_frames[page] = kInvalidFrame;
  }
  // Return the extent; coalesce with both neighbours (O(log n)).
  uint32_t offset = block.id.page_offset;
  uint32_t npages = static_cast<uint32_t>(block.frames.size());
  auto next = file.free_extents.lower_bound(offset);
  if (next != file.free_extents.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      offset = prev->first;
      npages += prev->second;
      file.free_extents.erase(prev);
    }
  }
  if (next != file.free_extents.end() &&
      offset + npages == next->first) {
    npages += next->second;
    file.free_extents.erase(next);
  }
  file.free_extents.emplace(offset, npages);
}

size_t MemFileManager::open_files() const {
  LockGuard<Mutex> lock(mu_);
  return files_.size();
}

}  // namespace corm::sim
