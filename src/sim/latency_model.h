// Latency model for the simulated RDMA fabric and host operations.
//
// All constants are calibrated to the measurements the paper itself reports
// (Figures 8, 9, 15 and §4.1 prose) so that reproduced benches land near
// the published absolute numbers and, more importantly, preserve their
// relative shape. See DESIGN.md §2 for the substitution rationale.

#ifndef CORM_SIM_LATENCY_MODEL_H_
#define CORM_SIM_LATENCY_MODEL_H_

#include <atomic>
#include <cstdint>

namespace corm::sim {

// Modeled RNIC generation (paper evaluates ConnectX-3 and ConnectX-5).
enum class RnicModel { kConnectX3, kConnectX5 };

// Strategy for restoring RDMA access after a page remap (paper §3.5).
enum class RemapStrategy {
  kReregMr,      // ibv_rereg_mr: keys preserved, concurrent access breaks QP
  kOdp,          // on-demand paging: first access takes an MTT fault
  kOdpPrefetch,  // ODP + ibv_advise_mr prefetch after remap (CoRM default)
};

// Modeled host CPU for inter-thread messaging costs (paper Fig. 15 left).
enum class CpuModel { kIntelXeon, kAmdEpyc };

// Pure function of configuration: returns modeled durations in nanoseconds.
struct LatencyModel {
  RnicModel rnic = RnicModel::kConnectX5;
  CpuModel cpu = CpuModel::kIntelXeon;

  // --- Host memory-management primitives (Fig. 8). ---
  uint64_t MmapNs() const { return 2100; }
  uint64_t ReregMrNs() const {
    // Fig. 15: ~70 us on ConnectX-3; Fig. 8: 8.5-9.6 us on ConnectX-5.
    return rnic == RnicModel::kConnectX3 ? 70000 : 9000;
  }
  uint64_t OdpMissNs() const { return 63000; }    // first post-remap read
  uint64_t AdviseMrNs() const { return 4550; }    // MTT prefetch

  // --- RNIC translation cache (paper §4.2.2: "RNICs have limited cache
  // for address translation entries, and once the cache is full the MTT
  // will swap and incur in more misses"). ---
  size_t MttCacheEntries() const {
    return rnic == RnicModel::kConnectX3 ? 64 * 1024 : 128 * 1024;
  }
  // Penalty of a translation-cache miss (PCIe fetch of the MTT entry).
  uint64_t MttCacheMissNs() const { return 420; }
  // Base per-message service time of the inbound one-sided read engine;
  // 1e9 / (this + avg miss penalty) is the aggregate read IOPS ceiling.
  uint64_t RnicReadServiceNs() const { return 360; }

  // --- Network round trips (Fig. 9, §4.1 prose). ---
  // The round-trip constants decompose into the verbs cost structure the
  // SIGMOD'23 one-sided-synchronization guidelines use: a doorbell (MMIO
  // write posting the work request), the wire/NIC round trip, and the
  // completion (CQE write + poll). The compositions below reproduce the
  // calibrated 1.7 us one-sided / 2.6 us two-sided totals exactly; the
  // split is what lets a chained post with selective signaling amortize
  // the doorbell + completion across a whole batch (DESIGN.md §12).
  uint64_t DoorbellNs() const { return 600; }    // WR post + MMIO doorbell
  uint64_t CompletionNs() const { return 300; }  // CQE write + poll
  // Wire + NIC processing for `bytes` of payload: FDR-like ~6.8 GB/s.
  uint64_t RdmaWireNs(uint64_t bytes) const { return 800 + bytes * 147 / 1000; }
  // Extra PCIe round trip the RNIC pays to execute a masked atomic
  // (CAS / fetch-add) against host memory.
  uint64_t AtomicRmwNs() const { return 250; }
  // One-sided RDMA read round trip for `bytes` of payload (1.7 us base).
  uint64_t RdmaReadNs(uint64_t bytes) const {
    return DoorbellNs() + RdmaWireNs(bytes) + CompletionNs();
  }
  // One-sided RDMA atomic on an 8-byte word (CAS / fetch-add).
  uint64_t RdmaAtomicNs() const {
    return RdmaReadNs(sizeof(uint64_t)) + AtomicRmwNs();
  }
  // Chained post of `wrs` work requests carrying `total_bytes` overall with
  // selective signaling: one doorbell rings the whole chain and only the
  // last WR generates a completion, so the per-verb overhead is paid once
  // while every WR still pays its wire leg. `atomics` of the WRs are
  // masked-atomic verbs (each adds the RMW round trip).
  uint64_t RdmaBatchNs(uint64_t wrs, uint64_t total_bytes,
                       uint64_t atomics = 0) const {
    return DoorbellNs() + wrs * RdmaWireNs(0) + total_bytes * 147 / 1000 +
           atomics * AtomicRmwNs() + CompletionNs();
  }
  // Send/Recv RPC round trip carrying `bytes` of payload (the larger
  // direction). Two-sided adds ~0.9 us: the responder's own doorbell +
  // completion on the reply leg (the same calibrated constants as above —
  // no more magic 2600 composite).
  uint64_t RpcNs(uint64_t bytes) const {
    return RdmaReadNs(bytes) + DoorbellNs() + CompletionNs();
  }
  // TCP/IP over IPoIB on the same link (paper: 17 us) — reference only.
  uint64_t TcpNs(uint64_t bytes) const { return 17000 + bytes * 400 / 1000; }

  // Duration a writer holds an object's lock while updating payload +
  // version bytes (the window a concurrent DirectRead can observe as
  // locked/torn, Fig. 13).
  uint64_t WriteLockHoldNs(uint64_t bytes) const {
    return 250 + bytes * 147 / 1000;
  }

  // --- CoRM operation extras on top of the RPC base (§4.1). ---
  uint64_t AllocExtraNs() const { return 500; }
  uint64_t FreeExtraNs() const { return 500; }
  // Thread-local allocator missing a block: allocate + register one.
  uint64_t BlockAllocExtraNs() const { return 5000; }

  // --- Compaction protocol (Fig. 15). ---
  // Block-collection broadcast + replies across `nthreads` worker threads.
  uint64_t CollectionNs(int nthreads) const {
    const uint64_t base = cpu == CpuModel::kIntelXeon ? 7000 : 500;
    return base + static_cast<uint64_t>(nthreads) * 1500;
  }

  // Cost of remapping one block of `npages` pages for a given strategy,
  // including the data copy the caller performed (copy modeled separately).
  uint64_t RemapBlockNs(RemapStrategy strategy, uint64_t npages) const {
    switch (strategy) {
      case RemapStrategy::kReregMr:
        return npages * MmapNs() + ReregMrNs() * npages;
      case RemapStrategy::kOdp:
        return npages * MmapNs();  // fault cost paid by the first reader
      case RemapStrategy::kOdpPrefetch:
        return npages * (MmapNs() + AdviseMrNs());
    }
    return 0;
  }
};

// ---------------------------------------------------------------------------
// Pacing: benches convert modeled nanoseconds into real elapsed time with a
// configurable scale so that throughput numbers emerge from real concurrent
// execution. Scale 1.0 reproduces paper-like absolute values; tests use 0.
// ---------------------------------------------------------------------------

// Process-wide time scale (multiplied into every Pace call).
std::atomic<double>& SimTimeScale();

// Sets the scale; returns the previous value.
double SetSimTimeScale(double scale);

// Busy-waits for `ns * SimTimeScale()` wall-clock nanoseconds.
void Pace(uint64_t ns);

}  // namespace corm::sim

#endif  // CORM_SIM_LATENCY_MODEL_H_
