// Deterministic fault injection for the simulated fabric.
//
// The substrate consults a process-global FaultInjector (null by default —
// zero overhead in production paths) at *named sites*: the RPC transport
// (drop/delay/duplicate completion), the RNIC data path (QP break), the
// worker write path (torn object publish) and the chaos driver (node
// crash/restart). Each site carries a schedule — fire with probability p,
// fire once at event N, fire every Nth event — and the fire decision is a
// pure function of (injector seed, site name, per-site event index), so an
// identical seed replays an identical fault schedule regardless of thread
// interleaving. No wall clock is involved anywhere; injected delays are
// modeled nanoseconds paced through sim::Pace.

#ifndef CORM_SIM_FAULT_INJECTOR_H_
#define CORM_SIM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace corm::sim {

// The named injection sites wired into the substrate. Sites are plain
// strings so tests can add private ones without touching this header.
namespace fault_sites {
inline constexpr const char* kRpcDelay = "rpc.delay";
inline constexpr const char* kRpcDropRequest = "rpc.drop_request";
inline constexpr const char* kRpcDropResponse = "rpc.drop_response";
inline constexpr const char* kRpcDupCompletion = "rpc.dup_completion";
inline constexpr const char* kQpBreak = "qp.break";
inline constexpr const char* kTornWrite = "write.torn";
inline constexpr const char* kNodeCrash = "node.crash";
// A worker that receives a compaction Collect message but never answers it
// (stalled collector). Proves the engine's bounded Collect phase converts
// the stall into kTimeout instead of spinning forever.
inline constexpr const char* kCompactionCollectStall =
    "compaction.collect_stall";
// Replicated-log sites (DESIGN.md §11). A dropped ship is a log record that
// never reaches a replica's ingress ring (the shipper's retransmit path
// must fill the sequence gap); an ack delay stalls the one-sided high-water
// read; a seal race ships a stale-epoch record *after* a failover sealed
// the old epoch (the applier's epoch fence must reject it).
inline constexpr const char* kReplShipDrop = "repl.ship_drop";
inline constexpr const char* kReplAckDelay = "repl.ack_delay";
inline constexpr const char* kReplSealRace = "repl.seal_race";
// Remote-synchronization site (DESIGN.md §12): a lock holder that crashes
// after its write but before releasing the sync-table lock word. The
// release is swallowed, so waiters must recover via lease expiry (CAS
// spinlock: generation-bumping steal; lease/epoch RW lock: lease steal or
// an epoch fence) instead of spinning on a dead owner forever.
inline constexpr const char* kSyncHolderCrash = "sync.holder_crash";
// Forces a keyed lookup to treat its one-sided bucket snapshot as stale,
// driving the kIndexLookup RPC fallback path (DESIGN.md §13): the client
// discards the snapshot exactly as if validation had failed.
inline constexpr const char* kIndexStaleHint = "index.stale_hint";
// Stalls the compaction IndexRepair sub-phase before each repair slice
// (delay_ns), widening the window where bucket entries still hold src
// coordinates while objects sit kCompacting — the interleave the
// lookup-during-compaction tests race against.
inline constexpr const char* kIndexRepairDelay = "index.repair_delay";
}  // namespace fault_sites

// When a site fires. All three triggers compose (any match fires).
struct FaultSchedule {
  double probability = 0.0;  // per-event Bernoulli, seed-derived
  uint64_t one_shot_at = 0;  // fire exactly at this 1-based event index
  uint64_t every_nth = 0;    // fire when index % every_nth == 0
  // Payload for delay-style sites (modeled ns); also used by the torn-write
  // site as the extra lock-hold time.
  uint64_t delay_ns = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 1) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms `site` with `schedule` (replacing any previous schedule but
  // keeping the event counter, so re-arming mid-run cannot replay indices).
  void Arm(const std::string& site, FaultSchedule schedule);
  void Disarm(const std::string& site);

  // Counts one event at `site` and decides whether the fault fires.
  // Unarmed sites are transparent: no counting, never fire. On fire,
  // `delay_ns` (if non-null) receives the schedule's delay payload.
  bool ShouldFire(std::string_view site, uint64_t* delay_ns = nullptr);

  // Observability for tests and the chaos harness.
  uint64_t EventCount(std::string_view site) const;
  uint64_t FiredCount(std::string_view site) const;
  uint64_t seed() const { return seed_; }

 private:
  struct Site {
    FaultSchedule schedule;
    uint64_t name_hash = 0;
    std::atomic<uint64_t> events{0};
    std::atomic<uint64_t> fired{0};
  };

  const uint64_t seed_;
  mutable SharedMutex mu_;  // arm/disarm vs. hot-path lookups
  // The map shape is lock-guarded; the per-Site counters inside are atomics
  // deliberately mutated under the *shared* mode (hot-path counting).
  std::unordered_map<std::string, std::unique_ptr<Site>> sites_
      GUARDED_BY(mu_);
};

// Process-global hook. Returns null when no injector is installed (the
// default); instrumented paths must handle null with zero work.
FaultInjector* GlobalFaultInjector();

// Installs `injector` (or clears with nullptr) and returns the previous
// one. The caller keeps ownership and must uninstall before destroying it.
FaultInjector* SetGlobalFaultInjector(FaultInjector* injector);

// RAII installation for tests: installs in the constructor, restores the
// previous injector in the destructor.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector)
      : previous_(SetGlobalFaultInjector(injector)) {}
  ~ScopedFaultInjector() { SetGlobalFaultInjector(previous_); }

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* const previous_;
};

}  // namespace corm::sim

#endif  // CORM_SIM_FAULT_INJECTOR_H_
