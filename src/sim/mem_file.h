// Emulation of CoRM's memfd_create-based physical block allocation
// (paper §3.1.1): anonymous in-RAM files of 16 MiB; a physical block is
// identified by the tuple (file descriptor, page offset in the file).

#ifndef CORM_SIM_MEM_FILE_H_
#define CORM_SIM_MEM_FILE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "sim/physical_memory.h"

namespace corm::sim {

// Identifier of a physical block inside the memfd file pool.
struct PhysBlockId {
  int32_t fd = -1;            // which 16 MiB file
  uint32_t page_offset = 0;   // first page within the file

  bool operator==(const PhysBlockId&) const = default;
};

// A physical block: its identity plus the frames backing it. The file owns
// one reference per frame for as long as the block is allocated.
struct PhysBlock {
  PhysBlockId id;
  std::vector<FrameId> frames;
};

// Allocates physical blocks out of simulated 16 MiB memfd files, reducing
// the number of "file descriptors" exactly as the paper describes.
class MemFileManager {
 public:
  static constexpr size_t kFileBytes = 16 * kMiB;
  static constexpr size_t kFilePages = kFileBytes / kFrameSize;

  explicit MemFileManager(PhysicalMemory* phys) : phys_(phys) {}
  ~MemFileManager();

  MemFileManager(const MemFileManager&) = delete;
  MemFileManager& operator=(const MemFileManager&) = delete;

  // Allocates `npages` physically contiguous-in-file pages. npages must be
  // <= kFilePages.
  Result<PhysBlock> AllocBlock(size_t npages);

  // Releases the block's pages back to its file (hole punch); drops the
  // file's frame references. Frames stay alive while mappings/MTT entries
  // still reference them.
  void FreeBlock(const PhysBlock& block);

  // Number of simulated open file descriptors.
  size_t open_files() const;

 private:
  struct File {
    // Free extents within the file: page_offset -> npages, coalesced with
    // neighbours on insert (O(log n) per free).
    std::map<uint32_t, uint32_t> free_extents;
    std::vector<FrameId> page_frames;  // kInvalidFrame when unallocated
  };

  PhysicalMemory* const phys_;

  // Substrate lock (rank kSubstrate: always a leaf).
  mutable Mutex mu_;
  std::vector<File> files_ GUARDED_BY(mu_);
};

}  // namespace corm::sim

#endif  // CORM_SIM_MEM_FILE_H_
