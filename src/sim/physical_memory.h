// Simulated physical memory: a pool of 4 KiB frames backed by real heap
// allocations.
//
// Substitution note (DESIGN.md §2): the paper allocates physical pages with
// memfd_create and maps them with mmap. Here a "physical page" is a Frame in
// this pool. Frames are reference counted to model page *pinning*: the OS
// page table holds one reference per mapping, and every RNIC memory-region
// translation entry holds another (RDMA registration pins pages). A frame is
// returned to the pool only when the last reference drops, so a stale,
// never-updated RNIC MTT entry reads stale-but-live data — exactly the
// real-hardware behaviour, and memory-safe in simulation.

#ifndef CORM_SIM_PHYSICAL_MEMORY_H_
#define CORM_SIM_PHYSICAL_MEMORY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/byte_units.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace corm::sim {

using FrameId = uint32_t;
inline constexpr FrameId kInvalidFrame = UINT32_MAX;

inline constexpr size_t kFrameSize = kPageSize;  // 4 KiB

// Thread-safe frame pool. Frame data pointers are stable for the lifetime of
// the pool (frames are never relocated, only recycled after refcount 0).
class PhysicalMemory {
 public:
  // `max_frames` caps the simulated DRAM; 0 means unlimited.
  explicit PhysicalMemory(size_t max_frames = 0) : max_frames_(max_frames) {}

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  // Allocates a zeroed frame with refcount 1.
  Result<FrameId> AllocFrame();

  // Allocates `n` zeroed frames backed by ONE contiguous slab, so that the
  // bytes of frame i+1 directly follow frame i. This models a physically
  // contiguous extent of a memfd file: CoRM's blocks are linearly
  // addressable (slots may straddle page boundaries), and remaps always
  // retarget whole blocks, preserving linearity.
  Result<std::vector<FrameId>> AllocContiguousFrames(size_t n);

  // Increments the pin count of `id`.
  void Ref(FrameId id);

  // Decrements the pin count; recycles the frame when it reaches zero.
  void Unref(FrameId id);

  // Direct pointer to the frame's 4 KiB of data.
  uint8_t* FrameData(FrameId id);

  // Current refcount (testing / accounting).
  uint32_t RefCount(FrameId id) const;

  // Number of live (refcount > 0) frames: the "granted" physical memory.
  size_t live_frames() const;
  size_t peak_frames() const;
  uint64_t total_allocs() const;

 private:
  // A frame is a 4 KiB view into a shared slab; the slab dies with its
  // last frame. Single-frame allocations own a one-page slab.
  struct Frame {
    std::shared_ptr<uint8_t[]> slab;
    size_t offset = 0;
    uint32_t refcount = 0;
  };

  const size_t max_frames_;

  // Substrate lock (rank kSubstrate: always a leaf). Frame *data* pointers
  // handed out by FrameData are deliberately not guarded: they model DMA
  // targets whose races are validated by the object-layout seqlock.
  mutable Mutex mu_;
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  std::vector<FrameId> free_list_ GUARDED_BY(mu_);
  size_t live_frames_ GUARDED_BY(mu_) = 0;
  size_t peak_frames_ GUARDED_BY(mu_) = 0;
  uint64_t total_allocs_ GUARDED_BY(mu_) = 0;
};

}  // namespace corm::sim

#endif  // CORM_SIM_PHYSICAL_MEMORY_H_
