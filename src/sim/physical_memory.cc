#include "sim/physical_memory.h"

#include <cstring>

#include "common/logging.h"

namespace corm::sim {

Result<std::vector<FrameId>> PhysicalMemory::AllocContiguousFrames(size_t n) {
  CORM_CHECK_GT(n, 0u);
  LockGuard<Mutex> lock(mu_);
  if (max_frames_ != 0 && live_frames_ + n > max_frames_) {
    return Status::OutOfMemory("simulated DRAM exhausted");
  }
  std::shared_ptr<uint8_t[]> slab =
      std::make_shared<uint8_t[]>(n * kFrameSize);
  std::vector<FrameId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    FrameId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      id = static_cast<FrameId>(frames_.size());
      frames_.emplace_back();
    }
    frames_[id].slab = slab;
    frames_[id].offset = i * kFrameSize;
    frames_[id].refcount = 1;
    ids.push_back(id);
  }
  live_frames_ += n;
  total_allocs_ += n;
  if (live_frames_ > peak_frames_) peak_frames_ = live_frames_;
  return ids;
}

Result<FrameId> PhysicalMemory::AllocFrame() {
  auto ids = AllocContiguousFrames(1);
  CORM_RETURN_NOT_OK(ids.status());
  return (*ids)[0];
}

void PhysicalMemory::Ref(FrameId id) {
  LockGuard<Mutex> lock(mu_);
  CORM_CHECK_LT(id, frames_.size());
  CORM_CHECK_GT(frames_[id].refcount, 0u) << "Ref on a free frame";
  ++frames_[id].refcount;
}

void PhysicalMemory::Unref(FrameId id) {
  LockGuard<Mutex> lock(mu_);
  CORM_CHECK_LT(id, frames_.size());
  CORM_CHECK_GT(frames_[id].refcount, 0u) << "Unref on a free frame";
  if (--frames_[id].refcount == 0) {
    frames_[id].slab.reset();  // slab dies with its last live frame
    free_list_.push_back(id);
    --live_frames_;
  }
}

uint8_t* PhysicalMemory::FrameData(FrameId id) {
  LockGuard<Mutex> lock(mu_);
  CORM_CHECK_LT(id, frames_.size());
  CORM_CHECK(frames_[id].slab != nullptr) << "FrameData on a free frame";
  return frames_[id].slab.get() + frames_[id].offset;
}

uint32_t PhysicalMemory::RefCount(FrameId id) const {
  LockGuard<Mutex> lock(mu_);
  CORM_CHECK_LT(id, frames_.size());
  return frames_[id].refcount;
}

size_t PhysicalMemory::live_frames() const {
  LockGuard<Mutex> lock(mu_);
  return live_frames_;
}

size_t PhysicalMemory::peak_frames() const {
  LockGuard<Mutex> lock(mu_);
  return peak_frames_;
}

uint64_t PhysicalMemory::total_allocs() const {
  LockGuard<Mutex> lock(mu_);
  return total_allocs_;
}

}  // namespace corm::sim
