// Simulated per-node virtual address space: page table, virtual-address
// allocation with reuse, remapping, and MMU-notifier callbacks.
//
// This is the component that makes CoRM's compaction mechanism observable in
// simulation: CPU-side code reaches memory only through Translate*, so after
// Remap() a virtual page genuinely resolves to the destination block's
// physical frame. RNICs snapshot translations at registration time into
// their own MTT (rdma/rnic.h); ODP memory regions additionally subscribe to
// this address space's MmuNotifier so remaps invalidate their entries, which
// mirrors the Linux mmu_notifier → ODP pipeline.

#ifndef CORM_SIM_ADDRESS_SPACE_H_
#define CORM_SIM_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sim/physical_memory.h"

namespace corm::sim {

// Simulated virtual address. Page-aligned addresses map whole pages.
using VAddr = uint64_t;

inline constexpr VAddr kVPageShift = 12;
inline constexpr VAddr kVPageSize = 1ULL << kVPageShift;  // matches kFrameSize

inline constexpr VAddr PageBase(VAddr a) { return a & ~(kVPageSize - 1); }
inline constexpr uint64_t PageOffset(VAddr a) { return a & (kVPageSize - 1); }

// Callback interface for consumers that cache translations (ODP regions).
class MmuNotifier {
 public:
  virtual ~MmuNotifier() = default;
  // The mapping of `page` (page-aligned) changed or was removed. The holder
  // must drop / invalidate any cached translation for it.
  virtual void OnMappingChange(VAddr page) = 0;
};

class AddressSpace {
 public:
  // All reserved ranges start at this base, so (vaddr - kBase) >> 12 is a
  // compact page index (CoRM packs it into object headers, paper §3.3).
  static constexpr VAddr kBase = 0x0000'1000'0000'0000ULL;

  explicit AddressSpace(PhysicalMemory* phys) : phys_(phys) {}

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  ~AddressSpace();

  // --- Virtual address allocation (no backing). -------------------------
  // Reserves a page-aligned range of `npages` pages and returns its base.
  // Released ranges are recycled, which is what lets CoRM reuse virtual
  // addresses after ReleasePtr/Free (paper §3.3).
  VAddr ReserveRange(size_t npages);
  void ReleaseRange(VAddr base, size_t npages);

  // --- Mapping. ----------------------------------------------------------
  // Maps npages starting at `base` to freshly allocated frames
  // (memfd_create + mmap in the paper). Takes a page-table reference on
  // each frame.
  Status MapFresh(VAddr base, size_t npages);

  // MapFresh, but backed by ONE contiguous slab (a linear memfd extent):
  // the bytes of page i+1 directly follow page i in host memory, so a
  // CPU-side consumer may hold a single TranslatePtr(base) pointer across
  // the whole range. The keyed index table needs this — its server-side
  // view walks buckets linearly (index/index_table.h).
  Status MapFreshContiguous(VAddr base, size_t npages);

  // Maps pages at `base` to explicit frames (shared mapping of an existing
  // memfd region). Takes a reference on each frame.
  Status MapFrames(VAddr base, const std::vector<FrameId>& frames);

  // Points npages at `base` to the frames that currently back `target`
  // (mmap(MAP_FIXED) of the destination block's memfd file over the source
  // block's virtual range — the core compaction remap, paper §3.1.2).
  // Old frames lose the page-table reference. Fires MmuNotifiers.
  Status Remap(VAddr base, VAddr target, size_t npages);

  // Removes the mappings and drops the page-table references.
  Status Unmap(VAddr base, size_t npages);

  // --- Translation (the CPU/MMU path). ------------------------------------
  // Frame currently backing the page containing `addr`.
  Result<FrameId> TranslatePage(VAddr addr) const;

  // Direct byte pointer for CPU load/store at `addr`. Returns nullptr for
  // unmapped addresses. The pointer is valid until the page is remapped or
  // unmapped (callers on hot paths cache it per block and are invalidated
  // by CoRM's own block ownership protocol).
  uint8_t* TranslatePtr(VAddr addr) const;

  // Copies `size` bytes crossing page boundaries through translation.
  Status ReadVirtual(VAddr addr, void* out, size_t size) const;
  Status WriteVirtual(VAddr addr, const void* data, size_t size);

  // --- MMU notifiers. ------------------------------------------------------
  void AddNotifier(MmuNotifier* notifier);
  void RemoveNotifier(MmuNotifier* notifier);

  PhysicalMemory* physical_memory() const { return phys_; }

  // Number of mapped pages (diagnostics).
  size_t mapped_pages() const;
  // Total reserved-but-unreleased virtual pages: virtual address footprint.
  size_t reserved_pages() const;

 private:
  void NotifyChange(VAddr page);

  PhysicalMemory* const phys_;

  // Substrate lock (rank kSubstrate: always a leaf, models the kernel's
  // mmap_lock). Annotated for clang thread-safety analysis.
  mutable Mutex mu_;
  std::unordered_map<VAddr, FrameId> page_table_
      GUARDED_BY(mu_);  // vpage base -> frame
  // Virtual allocator state: bump pointer + freelist of ranges by size.
  VAddr next_vaddr_ GUARDED_BY(mu_) = kBase;
  std::multimap<size_t, VAddr> free_ranges_ GUARDED_BY(mu_);  // npages -> base
  size_t reserved_pages_ GUARDED_BY(mu_) = 0;
  std::vector<MmuNotifier*> notifiers_ GUARDED_BY(mu_);
};

}  // namespace corm::sim

#endif  // CORM_SIM_ADDRESS_SPACE_H_
