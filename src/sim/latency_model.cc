#include "sim/latency_model.h"

#include <chrono>
#include <thread>

namespace corm::sim {

std::atomic<double>& SimTimeScale() {
  static std::atomic<double> scale{1.0};
  return scale;
}

double SetSimTimeScale(double scale) {
  return SimTimeScale().exchange(scale);
}

void Pace(uint64_t ns) {
  const double scale = SimTimeScale().load(std::memory_order_relaxed);
  if (scale <= 0.0 || ns == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(static_cast<uint64_t>(
          static_cast<double>(ns) * scale));
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy wait with a scheduler yield: sub-microsecond sleeps are not
    // schedulable reliably, and a spinning client models an RDMA client
    // polling its completion queue; the yield keeps oversubscribed hosts
    // (e.g. single-CPU CI machines) making progress.
    std::this_thread::yield();
  }
}

}  // namespace corm::sim
