// Wire format of CoRM's RPC operations (paper Table 2).
//
// Requests and responses are flat POD structs preceded by a one-byte
// opcode; variable-length payloads follow the struct. Status travels in the
// RpcMessage itself. Everything stays within one simulated fabric, so no
// endianness handling is needed.

#ifndef CORM_CORE_RPC_PROTOCOL_H_
#define CORM_CORE_RPC_PROTOCOL_H_

#include <cstdint>
#include <cstring>

#include "common/slice.h"
#include "core/addr.h"

namespace corm::core {

enum class RpcOp : uint8_t {
  kAlloc = 1,
  kFree = 2,
  kRead = 3,
  kWrite = 4,
  kReleasePtr = 5,
  // Keyed index operations (DESIGN.md §13). Lookup is the authoritative
  // fallback behind the one-sided bucket probe; Insert/Remove are the
  // node-side mutation path (bucket seqlock writers).
  kIndexLookup = 6,
  kIndexInsert = 7,
  kIndexRemove = 8,
};

struct AllocRequest {
  uint64_t size;  // payload bytes the client wants
};

struct AllocResponse {
  GlobalAddr addr;
};

struct FreeRequest {
  GlobalAddr addr;
};

struct FreeResponse {
  GlobalAddr addr;  // corrected pointer (Table 2: Free performs correction)
};

struct ReadRequest {
  GlobalAddr addr;
  uint32_t size;  // bytes to read
};

// ReadResponse is followed by `size` payload bytes.
struct ReadResponse {
  GlobalAddr addr;  // corrected pointer
  uint32_t size;
};

// WriteRequest is followed by `size` payload bytes.
struct WriteRequest {
  GlobalAddr addr;
  uint32_t size;
};

struct WriteResponse {
  GlobalAddr addr;  // corrected pointer
};

struct ReleasePtrRequest {
  GlobalAddr addr;
};

struct ReleasePtrResponse {
  GlobalAddr addr;  // re-homed pointer (now canonical in the current block)
};

struct IndexLookupRequest {
  uint64_t key;
};

struct IndexLookupResponse {
  // Corrected, owner-hint-stamped pointer. The handler self-heals the
  // bucket entry when the stored hint was stale or fenced, so a lookup
  // that fell back to RPC leaves the one-sided path healthy again.
  GlobalAddr addr;
};

struct IndexInsertRequest {
  uint64_t key;
  GlobalAddr addr;
};

struct IndexInsertResponse {
  GlobalAddr addr;     // canonical pointer the entry was minted with
  uint8_t existed;     // 1: the key was already live; `addr` is the winner's
};

struct IndexRemoveRequest {
  uint64_t key;
};

struct IndexRemoveResponse {
  // The unlinked object, corrected and stamped with the owning worker's
  // ring hint (GlobalAddr flags bits 7..4): the client's follow-up Free
  // lands directly on the owner's ring instead of taking the forward hop.
  GlobalAddr addr;
};

// --- Encoding helpers. -----------------------------------------------------

template <typename T>
void EncodeRequest(RpcOp op, const T& body, Buffer* out, Slice payload = {}) {
  out->resize(1 + sizeof(T) + payload.size());
  (*out)[0] = static_cast<uint8_t>(op);
  std::memcpy(out->data() + 1, &body, sizeof(T));
  if (!payload.empty()) {
    std::memcpy(out->data() + 1 + sizeof(T), payload.data(), payload.size());
  }
}

inline RpcOp PeekOp(const Buffer& buf) { return static_cast<RpcOp>(buf[0]); }

// Decodes the fixed-size body; returns the trailing payload as a Slice.
template <typename T>
Slice DecodeRequest(const Buffer& buf, T* body) {
  std::memcpy(body, buf.data() + 1, sizeof(T));
  return Slice(buf.data() + 1 + sizeof(T), buf.size() - 1 - sizeof(T));
}

template <typename T>
void EncodeResponse(const T& body, Buffer* out, Slice payload = {}) {
  out->resize(sizeof(T) + payload.size());
  std::memcpy(out->data(), &body, sizeof(T));
  if (!payload.empty()) {
    std::memcpy(out->data() + sizeof(T), payload.data(), payload.size());
  }
}

template <typename T>
Slice DecodeResponse(const Buffer& buf, T* body) {
  std::memcpy(body, buf.data(), sizeof(T));
  return Slice(buf.data() + sizeof(T), buf.size() - sizeof(T));
}

}  // namespace corm::core

#endif  // CORM_CORE_RPC_PROTOCOL_H_
