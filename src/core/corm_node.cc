#include "core/corm_node.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/byte_units.h"

#include "common/cpu_relax.h"
#include "common/logging.h"
#include "core/object_layout.h"
#include "core/worker.h"

namespace corm::core {

namespace {
// Worker id of the calling thread for stat-shard attribution; -1 (any
// non-worker thread, or a worker of another node with an out-of-range id)
// falls back to the overflow shard. Misattribution across nodes is
// harmless: stats() sums all shards.
thread_local int tls_worker_id = -1;
}  // namespace

CormNode::CormNode(CormConfig config)
    : config_(config),
      classes_(alloc::SizeClassTable::Default()),
      rpc_queue_(/*ring_capacity_pow2=*/1024,
                 /*num_rings=*/std::max(config.num_workers, 1)),
      stat_shards_(static_cast<size_t>(std::max(config.num_workers, 1)) + 1),
      directory_(config.dir_shards) {
  CORM_CHECK_GT(config_.num_workers, 0);
  CORM_CHECK_LE(config_.object_id_bits, 16);
  phys_ = std::make_unique<sim::PhysicalMemory>(config_.max_frames);
  space_ = std::make_unique<sim::AddressSpace>(phys_.get());
  files_ = std::make_unique<sim::MemFileManager>(phys_.get());
  rnic_ = std::make_unique<rdma::Rnic>(space_.get(), config_.MakeLatencyModel());
  alloc::BlockAllocatorConfig ba_config;
  ba_config.block_pages = config_.block_pages;
  ba_config.remap_strategy = config_.remap_strategy;
  ba_config.huge_pages = config_.huge_pages;
  block_allocator_ = std::make_unique<alloc::BlockAllocator>(
      space_.get(), files_.get(), rnic_.get(), &classes_, ba_config);
  rpc_queue_.rate_limiter()->SetRate(config_.nic_msg_rate);

  // Sync-lock table (DESIGN.md §12): epoch word + one lock word per slot,
  // mapped fresh (all-zero: epoch 0, every slot free) and registered ODP
  // like a repl ring so remote CAS/FETCH_ADD verbs reach it.
  sync_table_slots_ =
      static_cast<uint32_t>(std::max<size_t>(config_.sync_lock_slots, 1));
  const size_t table_bytes = (1 + static_cast<size_t>(sync_table_slots_)) *
                             sizeof(uint64_t);
  sync_table_pages_ = (table_bytes + sim::kVPageSize - 1) / sim::kVPageSize;
  // Virtual ranges are reserved at block granularity (see BlockBaseOf in
  // core/addr.h): round the table up so the blocks reserved after it stay
  // block_bytes-aligned.
  sync_table_pages_ =
      (sync_table_pages_ + config_.block_pages - 1) / config_.block_pages *
      config_.block_pages;
  sync_table_base_ = space_->ReserveRange(sync_table_pages_);
  CORM_CHECK(space_->MapFresh(sync_table_base_, sync_table_pages_).ok());
  auto sync_keys =
      rnic_->RegisterMemory(sync_table_base_, sync_table_pages_, /*odp=*/true);
  CORM_CHECK(sync_keys.ok());
  sync_table_keys_ = *sync_keys;

  // Keyed index table (DESIGN.md §13): 64-byte header (word 0 = index fence
  // epoch) + 4-way seqlocked buckets, mapped fresh (all-zero: epoch 0,
  // every entry kEmpty) and registered ODP so clients can snapshot buckets
  // one-sided.
  index_buckets_ =
      static_cast<uint32_t>(std::max<size_t>(config_.index_buckets, 1));
  const size_t index_bytes = index::TableBytes(index_buckets_);
  index_table_pages_ = (index_bytes + sim::kVPageSize - 1) / sim::kVPageSize;
  index_table_pages_ =
      (index_table_pages_ + config_.block_pages - 1) / config_.block_pages *
      config_.block_pages;
  index_table_base_ = space_->ReserveRange(index_table_pages_);
  // Contiguous: the server-side IndexTable view walks the bucket array
  // through one TranslatePtr(base) pointer, so the backing pages must be
  // one linear slab (unlike the sync table, which is only ever touched a
  // word at a time).
  CORM_CHECK(
      space_->MapFreshContiguous(index_table_base_, index_table_pages_).ok());
  auto index_keys = rnic_->RegisterMemory(index_table_base_,
                                          index_table_pages_, /*odp=*/true);
  CORM_CHECK(index_keys.ok());
  index_table_keys_ = *index_keys;
  index_view_ = std::make_unique<index::IndexTable>(
      space_->TranslatePtr(index_table_base_), index_buckets_);

  repl_ingress_.resize(kMaxReplIngress);  // fixed capacity, never reallocates

  workers_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
  }
  threads_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    threads_.emplace_back([w = workers_[i].get()] { w->Run(); });
  }
  if (config_.background_compaction) StartBackgroundCompaction();
}

CormNode::~CormNode() {
  // Scheduler first: it issues Compact() control calls (and registered
  // background tasks) that need live workers to complete. Unconditional:
  // a leaked registered task must not keep the thread alive past the node.
  if (sched_running_) {
    sched_stop_.store(true, std::memory_order_relaxed);
    sched_thread_.join();
    sched_running_ = false;
  }
  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : threads_) t.join();
  threads_.clear();
  // Sync-lock table teardown (after every thread that could touch it has
  // joined; rnic_ and space_ are still alive here).
  if (sync_table_base_ != 0) {
    rnic_->DeregisterMemory(sync_table_keys_.r_key).ok();
    space_->Unmap(sync_table_base_, sync_table_pages_).ok();
    space_->ReleaseRange(sync_table_base_, sync_table_pages_);
  }
  if (index_table_base_ != 0) {
    index_view_.reset();
    rnic_->DeregisterMemory(index_table_keys_.r_key).ok();
    space_->Unmap(index_table_base_, index_table_pages_).ok();
    space_->ReleaseRange(index_table_base_, index_table_pages_);
  }
}

uint64_t CormNode::SyncEpoch() const {
  const uint8_t* p = space_->TranslatePtr(sync_table_base_);
  return std::atomic_ref<const uint64_t>(
             *reinterpret_cast<const uint64_t*>(p))
      .load(std::memory_order_acquire);
}

void CormNode::SealSyncEpoch() {
  // Local CPU atomic on the registered word: coherent with remote RNIC
  // atomics (IBV_ATOMIC_GLOB semantics, see Rnic::MttAtomic).
  uint8_t* p = space_->TranslatePtr(sync_table_base_);
  std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(p))
      .fetch_add(1, std::memory_order_acq_rel);
}

uint64_t CormNode::IndexEpoch() const { return index_view_->Epoch(); }

void CormNode::SealIndexEpoch() {
  uint64_t fenced = 0;
  index_view_->SealEpoch(&fenced);
  client_stat_shard().index_fenced_entries.Add(fenced);
}

// ---------------------------------------------------------------------------
// Background scheduler (compaction pass + registered tasks).
// ---------------------------------------------------------------------------

void CormNode::EnsureSchedulerThread() {
  if (sched_running_) return;
  sched_stop_.store(false, std::memory_order_relaxed);
  sched_thread_ = std::thread([this] { BackgroundSchedulerLoop(); });
  sched_running_ = true;
}

void CormNode::StopSchedulerThreadIfIdle() {
  if (!sched_running_) return;
  if (sched_compact_.load(std::memory_order_relaxed)) return;
  {
    LockGuard<RankedSpinLock> lock(sched_tasks_mu_);
    if (!sched_tasks_.empty()) return;
  }
  sched_stop_.store(true, std::memory_order_relaxed);
  sched_thread_.join();
  sched_running_ = false;
}

void CormNode::StartBackgroundCompaction() {
  sched_compact_.store(true, std::memory_order_relaxed);
  EnsureSchedulerThread();
}

void CormNode::StopBackgroundCompaction() {
  sched_compact_.store(false, std::memory_order_relaxed);
  StopSchedulerThreadIfIdle();
}

int CormNode::RegisterBackgroundTask(std::function<void()> task) {
  int id;
  {
    LockGuard<RankedSpinLock> lock(sched_tasks_mu_);
    id = sched_task_next_id_++;
    sched_tasks_.emplace_back(id, std::move(task));
  }
  EnsureSchedulerThread();
  return id;
}

void CormNode::UnregisterBackgroundTask(int id) {
  {
    // Acquiring the lock waits out any in-progress tick of the task (the
    // scheduler runs tasks with the lock held) — after this erase returns,
    // the task never runs again.
    LockGuard<RankedSpinLock> lock(sched_tasks_mu_);
    std::erase_if(sched_tasks_,
                  [id](const auto& entry) { return entry.first == id; });
  }
  StopSchedulerThreadIfIdle();
}

// Duty-cycled scheduler: sleep out the check interval, then (a) snapshot
// per-class fragmentation (the same stats CompactIfFragmented consults) and
// run one synchronous Compact per class over the §3.1.3 trigger, and (b)
// run every registered background task (DESIGN.md §11: the anti-entropy
// sweep rides this thread). The engine slices each compaction run on the
// leader, so a scheduler pass stalls the data plane no more than an
// explicit Compact() call would; the sleep bounds the duty cycle.
void CormNode::BackgroundSchedulerLoop() {
  const auto interval =
      std::chrono::microseconds(std::max<uint64_t>(
          config_.compaction_check_interval_us, 1));
  // Not a spin: each pass sleeps out the duty-cycle interval, and the loop
  // exits as soon as the stop flag is stored.
  while (!sched_stop_.load(std::memory_order_relaxed)) {  // NOLINT(corm-spin-wait)
    std::this_thread::sleep_for(interval);
    if (sched_stop_.load(std::memory_order_relaxed)) break;
    // A paused node (injected crash) keeps its memory quiescent.
    if (!IsServingRequests()) continue;
    if (sched_compact_.load(std::memory_order_relaxed)) {
      for (const auto& cls : Fragmentation()) {
        if (sched_stop_.load(std::memory_order_relaxed)) break;
        if (cls.num_blocks < 2) continue;
        if (cls.Ratio() < config_.fragmentation_threshold) continue;
        ++stat_shard(-1).compaction_bg_runs;
        // kNotSupported (non-compactable class) and kTimeout (stalled
        // collector) are expected here; anything else is surfaced by the
        // stats the run already recorded.
        (void)Compact(cls.class_idx);
      }
    }
    if (sched_stop_.load(std::memory_order_relaxed)) break;
    {
      LockGuard<RankedSpinLock> lock(sched_tasks_mu_);
      for (auto& [id, task] : sched_tasks_) task();
    }
  }
}

// ---------------------------------------------------------------------------
// Replicated-log ingress.
// ---------------------------------------------------------------------------

Result<CormNode::ReplIngressCoords> CormNode::CreateReplIngress(
    uint32_t slots, uint32_t slot_bytes) {
  auto ring = rdma::ReplLogRing::Create(space_.get(), rnic_.get(), slots,
                                        slot_bytes);
  CORM_RETURN_NOT_OK(ring.status());
  ReplIngressCoords coords;
  coords.base = ring->base();
  coords.r_key = ring->r_key();
  coords.slots = ring->slots();
  coords.slot_bytes = ring->slot_bytes();
  {
    LockGuard<RankedSpinLock> lock(repl_ingress_mu_);
    const size_t idx = repl_ingress_count_.load(std::memory_order_relaxed);
    if (idx >= kMaxReplIngress) {
      return Status::OutOfMemory("repl ingress registry full");
    }
    repl_ingress_[idx] =
        std::make_unique<rdma::ReplLogRing>(std::move(*ring));
    coords.id = static_cast<int>(idx);
    // Publish: workers scan [0, count) lock-free, so the slot must be
    // written before the count release-store makes it visible.
    repl_ingress_count_.store(idx + 1, std::memory_order_release);
  }
  return coords;
}

Result<uint32_t> CormNode::ClassForPayload(uint32_t payload_size) const {
  for (uint32_t c = 0; c < classes_.num_classes(); ++c) {
    const uint32_t size = classes_.ClassSize(c);
    if (size > block_bytes()) break;
    if (PayloadCapacity(size, config_.consistency) >= payload_size) return c;
  }
  return Status::InvalidArgument("object too large for any size class");
}

// ---------------------------------------------------------------------------
// Stats sharding.
// ---------------------------------------------------------------------------

void CormNode::BindWorkerThread(int id) { tls_worker_id = id; }

NodeStatShard& CormNode::CurrentStatShard() {
  return stat_shard(tls_worker_id);
}

NodeStats CormNode::stats() const {
  NodeStats out;
  stat_shards_.ForEach([&out](const NodeStatShard& s) {
    out.rpc_allocs += s.rpc_allocs.Load();
    out.rpc_frees += s.rpc_frees.Load();
    out.rpc_reads += s.rpc_reads.Load();
    out.rpc_writes += s.rpc_writes.Load();
    out.rpc_releases += s.rpc_releases.Load();
    out.corrections_messaging += s.corrections_messaging.Load();
    out.corrections_scan += s.corrections_scan.Load();
    out.forwarded_ops += s.forwarded_ops.Load();
    out.compaction_runs += s.compaction_runs.Load();
    out.blocks_compacted += s.blocks_compacted.Load();
    out.objects_moved += s.objects_moved.Load();
    out.objects_offset_preserved += s.objects_offset_preserved.Load();
    out.ghosts_released += s.ghosts_released.Load();
    out.old_pointer_uses += s.old_pointer_uses.Load();
    out.id_draw_fallbacks += s.id_draw_fallbacks.Load();
    out.dir_cache_hits += s.dir_cache_hits.Load();
    out.dir_cache_misses += s.dir_cache_misses.Load();
    out.rpc_batches += s.rpc_batches.Load();
    out.rpc_polled += s.rpc_polled.Load();
    out.compaction_slices += s.compaction_slices.Load();
    out.compaction_phase_transitions += s.compaction_phase_transitions.Load();
    out.compaction_planner_rejections +=
        s.compaction_planner_rejections.Load();
    out.compaction_bytes_copied += s.compaction_bytes_copied.Load();
    out.compaction_timeouts += s.compaction_timeouts.Load();
    out.compaction_bg_runs += s.compaction_bg_runs.Load();
    out.repl_ship_records += s.repl_ship_records.Load();
    out.repl_acked_writes += s.repl_acked_writes.Load();
    out.repl_degraded_writes += s.repl_degraded_writes.Load();
    out.repl_quorum_timeouts += s.repl_quorum_timeouts.Load();
    out.repl_failovers += s.repl_failovers.Load();
    out.repl_seals += s.repl_seals.Load();
    out.repl_stale_reads += s.repl_stale_reads.Load();
    out.repl_anti_entropy_repairs += s.repl_anti_entropy_repairs.Load();
    out.repl_applied_records += s.repl_applied_records.Load();
    out.repl_fenced_records += s.repl_fenced_records.Load();
    out.repl_apply_dups += s.repl_apply_dups.Load();
    out.repl_apply_orphans += s.repl_apply_orphans.Load();
    out.sync_lock_acquires += s.sync_lock_acquires.Load();
    out.sync_lock_conflicts += s.sync_lock_conflicts.Load();
    out.sync_lock_steals += s.sync_lock_steals.Load();
    out.sync_lock_timeouts += s.sync_lock_timeouts.Load();
    out.sync_epoch_fences += s.sync_epoch_fences.Load();
    out.doorbell_batches += s.doorbell_batches.Load();
    out.doorbell_batched_wrs += s.doorbell_batched_wrs.Load();
    out.index_lookups += s.index_lookups.Load();
    out.index_one_sided_hits += s.index_one_sided_hits.Load();
    out.index_rpc_fallbacks += s.index_rpc_fallbacks.Load();
    out.index_repairs += s.index_repairs.Load();
    out.index_fenced_entries += s.index_fenced_entries.Load();
    out.index_rehomes += s.index_rehomes.Load();
  });
  return out;
}

// ---------------------------------------------------------------------------
// Compaction bookkeeping.
// ---------------------------------------------------------------------------

Result<uint64_t> CormNode::MergeRemap(alloc::Block* src, alloc::Block* dst) {
  uint64_t ns = 0;
  std::vector<sim::VAddr> ghost_bases;
  {
    // The alias lock serializes this whole retarget against a concurrent
    // last-object ghost release (ReleaseGhostAction) — the role the old
    // whole-directory writer lock played. Directory readers are unaffected:
    // they observe each retargeted base the moment its shard publishes it,
    // and old/new blocks alias the same frames after the remap (§3.3).
    LockGuard<RankedSpinLock> alias_lock(alias_mu_);
    ghost_bases.reserve(src->aliases().size());
    for (const auto& ghost : src->aliases()) ghost_bases.push_back(ghost.base);
    auto result = block_allocator_->MergeRemap(src, dst);
    CORM_RETURN_NOT_OK(result.status());
    ns = *result;
    directory_.RetargetToAlias(src->base(), ghost_bases, dst);
  }
  for (sim::VAddr base : ghost_bases) {
    vaddr_tracker_.SetAliasTarget(base, dst);
  }
  auto release =
      vaddr_tracker_.MarkGhost(src->base(), src->keys().r_key, dst);
  if (release) ReleaseGhostAction(*release);
  return ns;
}

void CormNode::ReleaseGhostAction(const GhostToRelease& ghost) {
  {
    LockGuard<RankedSpinLock> alias_lock(alias_mu_);
    directory_.Erase(ghost.base);
    if (ghost.alias_of != nullptr) {
      auto& aliases = ghost.alias_of->aliases();
      aliases.erase(std::remove_if(aliases.begin(), aliases.end(),
                                   [&](const alloc::Block::GhostRef& g) {
                                     return g.base == ghost.base;
                                   }),
                    aliases.end());
    }
  }
  block_allocator_->ReleaseGhost(ghost.base, config_.block_pages,
                                 ghost.r_key);
  ++CurrentStatShard().ghosts_released;
}

void CormNode::RetireBlock(std::unique_ptr<alloc::Block> block) {
  LockGuard<RankedSpinLock> lock(graveyard_mu_);
  graveyard_.push_back(std::move(block));
}

// ---------------------------------------------------------------------------
// Control plane.
// ---------------------------------------------------------------------------

Result<CompactionReport> CormNode::Compact(uint32_t class_idx) {
  if (class_idx >= classes_.num_classes()) {
    return Status::InvalidArgument("bad size class");
  }
  CompactRequest req;
  req.class_idx = class_idx;
  WorkerMsg msg;
  msg.kind = WorkerMsg::Kind::kCompact;
  msg.compact = &req;
  workers_[0]->Send(msg);
  // Reply from a same-process worker thread, which cannot die independently
  // of this node; no deadline needed.
  while (!req.done.load(std::memory_order_acquire)) {  // NOLINT(corm-spin-wait)
    CpuRelax();
  }
  CORM_RETURN_NOT_OK(req.status);
  return req.report;
}

Result<std::vector<CompactionReport>> CormNode::CompactIfFragmented() {
  auto frag = Fragmentation();
  std::vector<CompactionReport> reports;
  for (const auto& cls : frag) {
    // Trigger per the §3.1.3 policy: at least two blocks (otherwise there
    // is nothing to merge) and a fragmentation ratio above the threshold.
    if (cls.num_blocks < 2) continue;
    if (cls.Ratio() < config_.fragmentation_threshold) continue;
    auto report = Compact(cls.class_idx);
    if (report.ok()) {
      reports.push_back(*report);
    } else if (report.status().code() != StatusCode::kNotSupported) {
      return report.status();
    }
  }
  return reports;
}

std::vector<alloc::ClassFragmentation> CormNode::Fragmentation() {
  const uint32_t n = classes_.num_classes();
  std::vector<std::unique_ptr<StatsReply>> replies;
  for (int w = 0; w < config_.num_workers; ++w) {
    replies.push_back(std::make_unique<StatsReply>());
    WorkerMsg msg;
    msg.kind = WorkerMsg::Kind::kStats;
    msg.stats = replies.back().get();
    workers_[w]->Send(msg);
  }
  std::vector<alloc::ClassFragmentation> out(n);
  for (uint32_t c = 0; c < n; ++c) out[c].class_idx = c;
  for (auto& reply : replies) {
    // Same-process worker reply; the worker cannot die independently.
    while (!reply->done.load(std::memory_order_acquire)) {  // NOLINT(corm-spin-wait)
      CpuRelax();
    }
    for (uint32_t c = 0; c < n; ++c) {
      out[c].granted_bytes += reply->granted[c];
      out[c].used_bytes += reply->used[c];
      out[c].num_blocks += reply->nblocks[c];
    }
  }
  return out;
}

Status CormNode::Audit() {
  // Fan out so every worker audits its own allocator between operations —
  // the audit then needs no locks of its own and cannot observe a
  // half-applied mutation.
  std::vector<std::unique_ptr<AuditReply>> replies;
  for (int w = 0; w < config_.num_workers; ++w) {
    replies.push_back(std::make_unique<AuditReply>());
    WorkerMsg msg;
    msg.kind = WorkerMsg::Kind::kAudit;
    msg.audit = replies.back().get();
    workers_[w]->Send(msg);
  }
  Status st = Status::OK();
  for (auto& reply : replies) {
    // Same-process worker reply; the worker cannot die independently.
    while (!reply->done.load(std::memory_order_acquire)) {  // NOLINT(corm-spin-wait)
      CpuRelax();
    }
    if (st.ok() && !reply->status.ok()) st = reply->status;
  }
  CORM_RETURN_NOT_OK(st);
  return block_allocator_->AuditCounters();
}

Status CormNode::AuditBlock(const alloc::Block& block) {
  // Directory resolution: the block's own base is a non-alias entry, every
  // ghost alias resolves back to this block as an alias.
  const DirectoryEntry self = LookupBlock(block.base());
  if (self.block != &block || self.is_alias) {
    return Status::Internal("block audit: directory does not resolve base");
  }
  for (const auto& ghost : block.aliases()) {
    const DirectoryEntry entry = LookupBlock(ghost.base);
    if (entry.block != &block || !entry.is_alias) {
      return Status::Internal(
          "block audit: ghost alias does not resolve to its target");
    }
  }

  // Object IDs are only guaranteed unique (and the ID map maintained) when
  // the class is compactable — mirror Worker::ClassCompactable.
  const int bits = config_.object_id_bits;
  const uint64_t slots_per_block =
      block_bytes() / classes_.ClassSize(block.class_idx());
  const bool compactable =
      bits > 0 && slots_per_block <= (1ULL << bits);
  CORM_RETURN_NOT_OK(block.AuditConsistency(/*expect_ids=*/compactable));

  const ConsistencyMode mode = config_.consistency;
  for (uint32_t slot = 0; slot < block.num_slots(); ++slot) {
    if (!block.SlotAllocated(slot)) continue;
    const uint8_t* ptr = space_->TranslatePtr(
        block.base() + static_cast<uint64_t>(slot) * block.slot_size());
    if (ptr == nullptr) {
      return Status::Internal("block audit: live slot is not mapped");
    }
    const uint64_t w1 = LoadHeaderWord(ptr);
    const ObjectHeader h = ObjectHeader::Unpack(w1);
    if (h.lock == LockState::kTombstone) {
      return Status::Internal("block audit: allocated slot holds a tombstone");
    }
    if (h.lock != LockState::kFree) continue;  // concurrent writer/compactor
    if (h.class_idx != (block.class_idx() & 0x3f)) {
      return Status::Internal("block audit: header class != block class");
    }
    if (compactable) {
      auto mapped = block.FindId(h.obj_id);
      if (!mapped || *mapped != slot) {
        return Status::Internal(
            "block audit: header object ID disagrees with the ID map");
      }
    }
    // The home block recorded in the header must still resolve — otherwise
    // a client-held pointer through that base would dangle.
    if (LookupBlock(HomeVaddrOf(h.home_page)).block == nullptr) {
      return Status::Internal(
          "block audit: home block not present in the directory");
    }
    Status payload = AuditSlotConsistency(ptr, block.slot_size(), mode);
    if (!payload.ok() && LoadHeaderWord(ptr) == w1) return payload;
    // Header changed under us: a writer raced the payload check; skip.
  }
  return Status::OK();
}

std::string CormNode::DebugReport() {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "CormNode: %d workers, %zu KiB blocks, CoRM-%d, %s\n",
                config_.num_workers, block_bytes() / 1024,
                config_.object_id_bits,
                config_.consistency == ConsistencyMode::kCachelineVersions
                    ? "cacheline-version reads"
                    : "checksum reads");
  out += line;
  std::snprintf(line, sizeof(line),
                "memory: %s physical, %s virtual, %zu ghost ranges\n",
                FormatBytes(ActiveMemoryBytes()).c_str(),
                FormatBytes(VirtualMemoryBytes()).c_str(),
                vaddr_tracker_.NumGhosts());
  out += line;
  for (const auto& cls : Fragmentation()) {
    if (cls.num_blocks == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  class %-6u: %5zu blocks, %s granted, %s used, "
                  "ratio %.2f\n",
                  classes_.ClassSize(cls.class_idx), cls.num_blocks,
                  FormatBytes(cls.granted_bytes).c_str(),
                  FormatBytes(cls.used_bytes).c_str(), cls.Ratio());
    out += line;
  }
  const NodeStats s = stats();
  std::snprintf(
      line, sizeof(line),
      "ops: %llu allocs, %llu frees, %llu reads, %llu writes; "
      "%llu compactions (%llu blocks), %llu ghosts released\n",
      static_cast<unsigned long long>(s.rpc_allocs),
      static_cast<unsigned long long>(s.rpc_frees),
      static_cast<unsigned long long>(s.rpc_reads),
      static_cast<unsigned long long>(s.rpc_writes),
      static_cast<unsigned long long>(s.compaction_runs),
      static_cast<unsigned long long>(s.blocks_compacted),
      static_cast<unsigned long long>(s.ghosts_released));
  out += line;
  return out;
}

uint64_t CormNode::ActiveMemoryBytes() const {
  // The always-mapped sync-lock and index tables are fixed infrastructure,
  // not object memory: exclude them so placement and the Fig. 17 memory
  // curves keep measuring data, and an empty node still reports zero.
  return (phys_->live_frames() - sync_table_pages_ - index_table_pages_) *
         sim::kFrameSize;
}

uint64_t CormNode::VirtualMemoryBytes() const {
  return space_->reserved_pages() * sim::kVPageSize;
}

// ---------------------------------------------------------------------------
// Bulk loaders.
// ---------------------------------------------------------------------------

Result<std::vector<GlobalAddr>> CormNode::BulkAlloc(size_t count,
                                                    size_t payload_size) {
  const int n = config_.num_workers;
  std::vector<std::unique_ptr<BulkRequest>> requests;
  size_t assigned = 0;
  for (int w = 0; w < n; ++w) {
    const size_t share = count / n + (static_cast<size_t>(w) < count % n);
    if (share == 0) continue;
    auto req = std::make_unique<BulkRequest>();
    req->is_alloc = true;
    req->count = share;
    req->payload_size = static_cast<uint32_t>(payload_size);
    req->index_base = assigned;
    assigned += share;
    WorkerMsg msg;
    msg.kind = WorkerMsg::Kind::kBulk;
    msg.bulk = req.get();
    workers_[w]->Send(msg);
    requests.push_back(std::move(req));
  }
  std::vector<GlobalAddr> out;
  out.reserve(count);
  for (auto& req : requests) {
    // Same-process worker reply; the worker cannot die independently.
    while (!req->done.load(std::memory_order_acquire)) {  // NOLINT(corm-spin-wait)
      CpuRelax();
    }
    CORM_RETURN_NOT_OK(req->status);
    out.insert(out.end(), req->out_addrs.begin(), req->out_addrs.end());
  }
  return out;
}

Status CormNode::BulkFree(const std::vector<GlobalAddr>& addrs) {
  std::vector<GlobalAddr> remaining = addrs;
  for (int round = 0; round < 16 && !remaining.empty(); ++round) {
    // Group by current owner.
    std::vector<std::vector<GlobalAddr>> per_worker(config_.num_workers);
    std::vector<GlobalAddr> deferred;
    for (const GlobalAddr& addr : remaining) {
      const auto entry = LookupBlock(BlockBaseOf(addr.vaddr, block_bytes()));
      if (entry.block == nullptr) {
        return Status::StalePointer("BulkFree: unknown block");
      }
      const int owner = entry.block->owner_thread();
      if (owner < 0) {
        deferred.push_back(addr);  // ownership in transit; retry next round
      } else {
        per_worker[owner].push_back(addr);
      }
    }
    std::vector<std::unique_ptr<BulkRequest>> requests;
    for (int w = 0; w < config_.num_workers; ++w) {
      if (per_worker[w].empty()) continue;
      auto req = std::make_unique<BulkRequest>();
      req->is_alloc = false;
      req->free_addrs = std::move(per_worker[w]);
      WorkerMsg msg;
      msg.kind = WorkerMsg::Kind::kBulk;
      msg.bulk = req.get();
      workers_[w]->Send(msg);
      requests.push_back(std::move(req));
    }
    remaining = std::move(deferred);
    for (auto& req : requests) {
      // Same-process worker reply; the worker cannot die independently.
      while (!req->done.load(std::memory_order_acquire)) {  // NOLINT(corm-spin-wait)
        CpuRelax();
      }
      CORM_RETURN_NOT_OK(req->status);
      remaining.insert(remaining.end(), req->free_addrs.begin(),
                       req->free_addrs.end());
    }
  }
  return remaining.empty()
             ? Status::OK()
             : Status::Internal("BulkFree: ownership kept changing");
}

}  // namespace corm::core
