// CormNode: a CoRM memory server (paper §3).
//
// The node owns the simulated substrate (physical memory, address space,
// memfd pool, RNIC), a pool of worker threads that poll the per-worker RPC
// rings (§2.2.2), the per-worker thread-local allocators (§3.1.1), and the
// two-stage compaction protocol (§3.1.4). Clients talk to it through
// core::Context (client.h), which issues RPCs and one-sided RDMA reads.

#ifndef CORM_CORE_CORM_NODE_H_
#define CORM_CORE_CORM_NODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "alloc/block.h"
#include "alloc/block_allocator.h"
#include "alloc/fragmentation.h"
#include "alloc/size_classes.h"
#include "alloc/thread_allocator.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/sharded_counters.h"
#include "common/thread_annotations.h"
#include "core/addr.h"
#include "core/block_directory.h"
#include "core/object_layout.h"
#include "core/vaddr_tracker.h"
#include "index/index_table.h"
#include "rdma/rnic.h"
#include "rdma/rpc_transport.h"
#include "rdma/write_ring.h"
#include "sim/address_space.h"
#include "sim/latency_model.h"
#include "sim/mem_file.h"
#include "sim/physical_memory.h"
#include "sync/sync_scheme.h"

namespace corm::core {

// Phases of the incremental compaction engine (DESIGN.md §9). A compaction
// run walks Select → Collect → ConflictCheck → (Copy → Remap → Fixup)* →
// Reclaim; each Step() executes one budget-bounded slice of the current
// phase so data-plane RPCs interleave between slices.
enum class CompactionPhase : uint8_t {
  kIdle,           // no run in progress
  kSelect,         // validate the class, fan out Collect messages
  kCollect,        // gather donated blocks (deadline-bounded, §3.1.4)
  kConflictCheck,  // pick the next probability-ranked disjoint pair (§3.1.2)
  kCopy,           // lock + copy objects of the current pair, budgeted
  kIndexRepair,    // rewrite moved objects' index entries (DESIGN.md §13)
  kRemap,          // virtual-address remap + batched MTT repair (§3.5)
  kFixup,          // retire src, audit dst, re-enter ConflictCheck
  kReclaim,        // return leftover blocks, publish the report
};

// Server-side strategy for fixing indirect pointers on RPC paths (§3.2.1).
enum class RpcCorrectionStrategy {
  kThreadMessaging,  // forward to the owner thread; it queries block metadata
  kBlockScan,        // the serving thread scans the block's slots
};

struct CormConfig {
  int num_workers = 8;
  size_t block_pages = 1;          // 4 KiB blocks (paper default)
  int object_id_bits = 16;         // CoRM-16 (paper default)
  sim::RemapStrategy remap_strategy = sim::RemapStrategy::kOdpPrefetch;
  sim::RnicModel rnic_model = sim::RnicModel::kConnectX5;
  sim::CpuModel cpu_model = sim::CpuModel::kIntelXeon;
  RpcCorrectionStrategy rpc_correction =
      RpcCorrectionStrategy::kThreadMessaging;
  // Lock-free read validation: FaRM-style cacheline versions (the paper's
  // deliberate default) or the §4.2.1 checksum alternative.
  ConsistencyMode consistency = ConsistencyMode::kCachelineVersions;
  // Compaction triggers when granted/used exceeds this per-class ratio.
  double fragmentation_threshold = 1.3;
  // Collection phase: only blocks at or below this occupancy are donated.
  double collection_max_occupancy = 0.9;
  // Upper bound on blocks gathered per compaction run (§4.3.2 discusses an
  // unbounded run causing a long unavailability window).
  size_t compaction_max_blocks = SIZE_MAX;

  // --- Incremental compaction engine (DESIGN.md §9). ---------------------
  // Objects copied per Copy slice. The slice budget bounds how long the
  // leader is away from its RPC ring per engine step; SIZE_MAX approximates
  // the old monolithic behaviour (whole pair in one slice).
  size_t compaction_slice_objects = 32;
  // Candidate pairs conflict-checked per ConflictCheck slice (each check is
  // an ID-map walk, the §3.1.2 exact disjointness test).
  size_t compaction_slice_pairs = 4;
  // Wall-clock budget for the Collect phase: a worker that never answers
  // its Collect message (fault site compaction.collect_stall) converts to
  // kTimeout instead of hanging the leader.
  uint64_t compaction_collect_deadline_ns = 2'000'000'000;
  // Background scheduler: a duty-cycled thread polls per-class
  // fragmentation every interval and feeds over-threshold classes to the
  // engine, replacing ad-hoc CompactIfFragmented call sites.
  bool background_compaction = false;
  uint64_t compaction_check_interval_us = 2000;
  // Test-only: invoked on the leader thread at every phase transition (the
  // new phase is passed). May block — the engine then pauses between
  // slices, which is exactly what the resumability tests need.
  std::function<void(CompactionPhase)> compaction_phase_hook;
  // Back blocks with 2 MiB huge pages (modeled remap cost per 2 MiB unit;
  // paper §3.1.1, §4.3.1).
  bool huge_pages = false;
  size_t max_frames = 0;  // simulated DRAM cap; 0 = unlimited
  uint64_t seed = 42;
  // Two-sided message rate of the server NIC (Send/Recv); every RPC costs
  // two messages, so ops saturate at half this rate (Fig. 12). 0 = no cap.
  uint64_t nic_msg_rate = 1'400'000;

  // --- Data-plane performance knobs (DESIGN.md §7; bench_hotpath toggles
  // each one to attribute its share of the hot-path speedup). -------------
  // Per-worker directory lookup cache, invalidated by the directory epoch.
  bool dir_cache = true;
  // RpcMessage freelist + per-worker read scratch buffer (no per-op heap
  // allocation on the steady-state path).
  bool msg_pool = true;
  // Max RPCs a worker drains from its ring per queue synchronization.
  size_t poll_batch = 16;
  // Directory shards (rounded up to a power of two).
  size_t dir_shards = 16;
  // Idle workers escalate from yields to short sleeps after a dry spell, so
  // on an oversubscribed host the scheduler rotation shrinks to the threads
  // that actually have work (a parked worker wakes within ~1 ms, and awake
  // siblings steal from its ring meanwhile; busy workers never park).
  // Biggest single lever on few-core hosts, where an all-workers yield
  // rotation otherwise taxes every RPC round trip.
  bool idle_park = true;

  // --- Remote synchronization & doorbell batching (DESIGN.md §12). -------
  // Client read/write synchronization scheme (the §12 shootout knob):
  // optimistic versioned reads, an RDMA-CAS spinlock, or the lease/epoch
  // reader-writer lock. Snapshot validation stays on in every scheme.
  sync::SchemeKind sync_scheme = sync::SchemeKind::kOptimistic;
  // Lock words in this node's registered sync-lock table (objects hash to
  // slots; collisions are safe, just extra contention).
  size_t sync_lock_slots = 1024;
  // How long a waiter watches an unchanged held lock word before stealing
  // it (crashed-holder recovery, fault site sync.holder_crash).
  uint64_t sync_lease_ns = 2'000'000;
  // Client contexts coalesce multi-slot reads (and the replication layer
  // its quorum ack polls) into chained posts: one doorbell + one
  // completion per chain.
  bool doorbell_batching = true;

  // --- Keyed index (DESIGN.md §13). --------------------------------------
  // Buckets in this node's registered index table (4-way buckets, two
  // candidate buckets per key — capacity 8×buckets/2 keys at worst case,
  // ~3×buckets keys comfortably). The table is the authoritative
  // key→pointer map, so a full bucket pair rejects the insert rather than
  // evicting.
  size_t index_buckets = 512;

  sim::LatencyModel MakeLatencyModel() const {
    return sim::LatencyModel{rnic_model, cpu_model};
  }
};

// One worker's cacheline-padded block of node counters. Workers only ever
// touch their own shard (plus an overflow shard for non-worker threads), so
// data-plane increments never share a cacheline (see sharded_counters.h).
struct NodeStatShard {
  StatCounter rpc_allocs;
  StatCounter rpc_frees;
  StatCounter rpc_reads;
  StatCounter rpc_writes;
  StatCounter rpc_releases;
  StatCounter corrections_messaging;
  StatCounter corrections_scan;
  StatCounter forwarded_ops;
  StatCounter compaction_runs;
  StatCounter blocks_compacted;
  StatCounter objects_moved;
  StatCounter objects_offset_preserved;
  // Compaction-engine instrumentation (DESIGN.md §9): all incremented on
  // the leader's shard from the engine's slices.
  StatCounter compaction_slices;             // Step() calls that did work
  StatCounter compaction_phase_transitions;  // phase changes across runs
  StatCounter compaction_planner_rejections; // plan pairs the exact check killed
  StatCounter compaction_bytes_copied;       // payload bytes moved
  StatCounter compaction_timeouts;           // runs aborted on a deadline
  StatCounter compaction_bg_runs;            // runs the scheduler triggered
  StatCounter ghosts_released;
  StatCounter old_pointer_uses;
  // Data-plane instrumentation (new with the hot-path overhaul).
  StatCounter id_draw_fallbacks;  // DrawObjectId exhausted its random draws
  StatCounter dir_cache_hits;
  StatCounter dir_cache_misses;
  StatCounter rpc_batches;  // PollBatch calls that returned >= 1 message
  StatCounter rpc_polled;   // messages those batches carried
  // Replicated-log instrumentation (DESIGN.md §11). Ship-side counters are
  // incremented from the client thread driving a ReplicatedContext (they
  // land on the primary node's overflow shard via client_stat_shard());
  // apply-side counters are incremented by the worker draining the ring.
  StatCounter repl_ship_records;        // records RDMA-written into rings
  StatCounter repl_acked_writes;        // writes acked by a full quorum
  StatCounter repl_degraded_writes;     // writes that skipped a dead replica
  StatCounter repl_quorum_timeouts;     // writes whose quorum never formed
  StatCounter repl_failovers;           // primary failovers executed
  StatCounter repl_seals;               // epoch seals shipped by failover
  StatCounter repl_stale_reads;         // replica copies rejected on read
  StatCounter repl_anti_entropy_repairs;  // objects the sweep re-replicated
  StatCounter repl_applied_records;     // records durably applied
  StatCounter repl_fenced_records;      // stale-epoch records rejected
  StatCounter repl_apply_dups;          // duplicate/old-version records
  StatCounter repl_apply_orphans;       // records whose object is gone
  // Remote-synchronization + doorbell-batching instrumentation (DESIGN.md
  // §12). Incremented from the client threads driving contexts against this
  // node, so they land on the overflow shard via client_stat_shard().
  StatCounter sync_lock_acquires;    // locks (or read admissions) obtained
  StatCounter sync_lock_conflicts;   // attempts that saw a competing holder
  StatCounter sync_lock_steals;      // leases expired and slots stolen
  StatCounter sync_lock_timeouts;    // acquire retry budgets exhausted
  StatCounter sync_epoch_fences;     // stale-epoch lock words fenced
  StatCounter doorbell_batches;      // chained posts (one doorbell each)
  StatCounter doorbell_batched_wrs;  // WRs those chains carried
  // Keyed-index instrumentation (DESIGN.md §13). Lookup-side counters are
  // incremented from the client threads driving contexts against this node
  // (overflow shard via client_stat_shard()); repair/fallback counters are
  // incremented by the worker or engine that served them.
  StatCounter index_lookups;          // keyed lookups started (Get/Put/Del)
  StatCounter index_one_sided_hits;   // resolved without an RPC fallback
  StatCounter index_rpc_fallbacks;    // lookups that fell back to the RPC op
  StatCounter index_repairs;          // bucket entries rewritten after moves
  StatCounter index_fenced_entries;   // live entries fenced by an epoch seal
  StatCounter index_rehomes;          // key ranges re-homed after a failover
};

// Aggregated snapshot of the sharded counters (CormNode::stats()). A read
// concurrent with increments is a momentary snapshot — same semantics the
// old shared-atomic counters had, without the shared cachelines.
struct NodeStats {
  uint64_t rpc_allocs = 0;
  uint64_t rpc_frees = 0;
  uint64_t rpc_reads = 0;
  uint64_t rpc_writes = 0;
  uint64_t rpc_releases = 0;
  uint64_t corrections_messaging = 0;
  uint64_t corrections_scan = 0;
  uint64_t forwarded_ops = 0;
  uint64_t compaction_runs = 0;
  uint64_t blocks_compacted = 0;
  uint64_t objects_moved = 0;
  uint64_t objects_offset_preserved = 0;
  uint64_t compaction_slices = 0;
  uint64_t compaction_phase_transitions = 0;
  uint64_t compaction_planner_rejections = 0;
  uint64_t compaction_bytes_copied = 0;
  uint64_t compaction_timeouts = 0;
  uint64_t compaction_bg_runs = 0;
  uint64_t ghosts_released = 0;
  uint64_t old_pointer_uses = 0;
  uint64_t id_draw_fallbacks = 0;
  uint64_t dir_cache_hits = 0;
  uint64_t dir_cache_misses = 0;
  uint64_t rpc_batches = 0;
  uint64_t rpc_polled = 0;
  uint64_t repl_ship_records = 0;
  uint64_t repl_acked_writes = 0;
  uint64_t repl_degraded_writes = 0;
  uint64_t repl_quorum_timeouts = 0;
  uint64_t repl_failovers = 0;
  uint64_t repl_seals = 0;
  uint64_t repl_stale_reads = 0;
  uint64_t repl_anti_entropy_repairs = 0;
  uint64_t repl_applied_records = 0;
  uint64_t repl_fenced_records = 0;
  uint64_t repl_apply_dups = 0;
  uint64_t repl_apply_orphans = 0;
  uint64_t sync_lock_acquires = 0;
  uint64_t sync_lock_conflicts = 0;
  uint64_t sync_lock_steals = 0;
  uint64_t sync_lock_timeouts = 0;
  uint64_t sync_epoch_fences = 0;
  uint64_t doorbell_batches = 0;
  uint64_t doorbell_batched_wrs = 0;
  uint64_t index_lookups = 0;
  uint64_t index_one_sided_hits = 0;
  uint64_t index_rpc_fallbacks = 0;
  uint64_t index_repairs = 0;
  uint64_t index_fenced_entries = 0;
  uint64_t index_rehomes = 0;
};

// Result of one compaction run.
struct CompactionReport {
  uint32_t class_idx = 0;
  size_t blocks_collected = 0;
  size_t blocks_freed = 0;
  size_t objects_moved = 0;
  size_t objects_relocated = 0;  // subset that changed offset (indirect)
  uint64_t collection_ns = 0;    // modeled duration of the collect stage
  uint64_t compaction_ns = 0;    // modeled duration of the merge stage
  // Engine-era fields (DESIGN.md §9).
  size_t slices = 0;               // Step() slices the run consumed
  size_t planner_candidates = 0;   // pairs the probability planner proposed
  size_t planner_rejections = 0;   // of those, killed by the exact ID check
};

class Worker;            // defined in worker.h (internal)
class CompactionEngine;  // defined in compaction_engine.h (internal)

class CormNode {
 public:
  explicit CormNode(CormConfig config);
  ~CormNode();

  CormNode(const CormNode&) = delete;
  CormNode& operator=(const CormNode&) = delete;

  // --- Client-visible endpoints. ---------------------------------------
  rdma::RpcQueue* rpc_queue() { return &rpc_queue_; }
  rdma::Rnic* rnic() { return rnic_.get(); }
  const CormConfig& config() const { return config_; }
  const alloc::SizeClassTable& classes() const { return classes_; }
  size_t block_bytes() const { return config_.block_pages * sim::kVPageSize; }
  sim::LatencyModel latency_model() const {
    return config_.MakeLatencyModel();
  }

  // --- Fault shims (chaos/testing). --------------------------------------
  // Models a node whose CPU stops serving inbound RPCs (the crash half the
  // reachability flag in dsm::Cluster cannot express): workers finish the
  // requests they already dequeued (up to one drained batch), then stop
  // polling the RPC rings until ResumeService(). Intra-node control
  // messages (corrections, compaction, audits) keep flowing so the control
  // plane and teardown never wedge on a crashed node.
  void PauseService() { paused_.store(true, std::memory_order_release); }
  void ResumeService() { paused_.store(false, std::memory_order_release); }
  bool IsServingRequests() const {
    return !paused_.load(std::memory_order_acquire);
  }

  // --- Control plane (callable from any non-worker thread). -------------
  // Runs one compaction of `class_idx` through the leader worker's sliced
  // engine and waits for the report. The leader keeps serving data-plane
  // RPCs between engine slices, so this no longer stalls the node; a worker
  // that never answers the Collect fan-out converts to kTimeout via the
  // engine's bounded Collect phase.
  Result<CompactionReport> Compact(uint32_t class_idx);

  // Compacts every class whose fragmentation ratio exceeds the configured
  // threshold (§3.1.3). Returns one report per compacted class.
  Result<std::vector<CompactionReport>> CompactIfFragmented();

  // Per-class fragmentation, gathered from the workers via messages.
  std::vector<alloc::ClassFragmentation> Fragmentation();

  // Physical memory currently granted (bytes): live frames * 4 KiB.
  uint64_t ActiveMemoryBytes() const;
  // Reserved virtual address space (bytes).
  uint64_t VirtualMemoryBytes() const;

  // --- Bulk loaders (bypass the RPC path; for tests & benchmarks). -------
  // Allocates `count` objects of `payload_size` bytes spread round-robin
  // across workers; each object is filled with a deterministic pattern
  // derived from its index.
  Result<std::vector<GlobalAddr>> BulkAlloc(size_t count, size_t payload_size);
  // Frees the given objects (routed to their owning workers).
  Status BulkFree(const std::vector<GlobalAddr>& addrs);

  // Aggregated counter snapshot (sums the per-worker shards).
  NodeStats stats() const;

  // Size class whose payload capacity fits `payload_size`.
  Result<uint32_t> ClassForPayload(uint32_t payload_size) const;

  // Number of unreleased ghost virtual ranges (testing / diagnostics).
  size_t vaddr_ghosts_for_testing() const {
    return vaddr_tracker_.NumGhosts();
  }

  // Direct access to the sharded directory (lock-free-read assertion test).
  const BlockDirectory& directory_for_testing() const { return directory_; }

  // Human-readable node report: per-class fragmentation, memory, ghost and
  // operation counters. For operators and examples.
  std::string DebugReport();

  // Full-node invariant audit: every worker cross-checks its thread
  // allocator on-thread (bitmap/ID-map/counter consistency, non-full stack
  // integrity), then the block allocator's lifecycle counters are verified.
  // Always compiled — tests call it directly; the CORM_AUDIT build adds
  // per-operation hooks on top. Callable from any non-worker thread.
  Status Audit();

  // Single-block audit, used by the compaction leader after every merge and
  // by tests: the directory must resolve the block's base (and each ghost
  // alias) back to it, every quiescent live slot's header must agree with
  // the block's ID map, class and home-block directory entry, and the
  // payload consistency metadata (cacheline versions / checksum) must
  // validate. Slots under a concurrent write are skipped via the seqlock.
  Status AuditBlock(const alloc::Block& block);

  // Background compaction scheduler control (config.background_compaction
  // starts it at construction; these let tests and operators toggle it).
  void StartBackgroundCompaction();
  void StopBackgroundCompaction();

  // --- Background task registry (DESIGN.md §11). -------------------------
  // Registers `task` with the duty-cycled scheduler thread: it runs once
  // per tick while the node is serving (the same gate the compaction pass
  // uses). Returns a handle for UnregisterBackgroundTask, which blocks
  // until any in-progress tick of the task has finished — after it returns,
  // the task will never run again and its captures may be destroyed.
  int RegisterBackgroundTask(std::function<void()> task);
  void UnregisterBackgroundTask(int id);

  // --- Replicated-log ingress (DESIGN.md §11). ---------------------------
  // Remote-access coordinates of one ingress ring, handed to the primary's
  // ReplicaLogShipper at session setup.
  struct ReplIngressCoords {
    int id = 0;
    sim::VAddr base = 0;
    rdma::RKey r_key = 0;
    uint32_t slots = 0;
    uint32_t slot_bytes = 0;
  };
  // Creates a sequenced ingress ring in this node's registered memory.
  // Ring `id` is drained (and its records applied in sequence order) by
  // worker `id % num_workers` between RPC batches. Rings live until node
  // teardown — like RPC rings, they are connection state, not data.
  Result<ReplIngressCoords> CreateReplIngress(uint32_t slots,
                                              uint32_t slot_bytes);

  // Stat shard for non-worker threads (clients, control plane): the
  // replication layer attributes its ship-side counters to the primary
  // node through this.
  NodeStatShard& client_stat_shard() { return stat_shard(-1); }

  // --- Sync-lock table (DESIGN.md §12). ----------------------------------
  // Remote-access coordinates of this node's sync-lock table: word 0 is
  // the sync epoch, words 1..sync_lock_slots are lock words hashed by
  // object address. Registered (ODP) at construction, like a repl ring.
  sync::LockTableCoords sync_table() const {
    sync::LockTableCoords coords;
    coords.base = sync_table_base_;
    coords.r_key = sync_table_keys_.r_key;
    coords.slots = sync_table_slots_;
    return coords;
  }
  // Current sync epoch (word 0 of the table).
  uint64_t SyncEpoch() const;
  // Bumps the sync epoch. Invoked whenever a failover seal record is
  // applied (worker.cc), so lease_rw lock words minted before the seal are
  // fenced by their next acquirer — the PR-7 epoch machinery extended to
  // lock state. Public for tests.
  void SealSyncEpoch();

  // --- Keyed index table (DESIGN.md §13). --------------------------------
  // Remote-access coordinates of this node's index bucket table: word 0 is
  // the index fence epoch, buckets follow the 64-byte header. Registered
  // (ODP) at construction like the sync-lock table.
  index::IndexTableCoords index_table() const {
    index::IndexTableCoords coords;
    coords.base = index_table_base_;
    coords.r_key = index_table_keys_.r_key;
    coords.buckets = index_buckets_;
    return coords;
  }
  // Node-side seqlocked view over the same memory (workers, the compaction
  // engine's IndexRepair sub-phase, and the DSM re-home path go through
  // it).
  index::IndexTable* index_view() { return index_view_.get(); }
  // Current index fence epoch (word 0 of the table).
  uint64_t IndexEpoch() const;
  // Bumps the index epoch, instantly fencing every earlier entry: a
  // one-sided lookup that matches a fenced entry must revalidate through
  // the RPC path, which re-mints the entry under the new epoch. Invoked by
  // the DSM layer when a re-homed node revives holding pre-crash entries.
  // Counts the newly fenced live entries into index_fenced_entries.
  void SealIndexEpoch();

 private:
  friend class Worker;
  friend class CompactionEngine;

  // Block directory entry: maps a live *virtual block base* (current blocks
  // and ghost aliases) to the Block that owns the bytes behind it.
  using DirectoryEntry = BlockDirectory::Entry;

  // Lock-free read (see block_directory.h for the safety argument).
  DirectoryEntry LookupBlock(sim::VAddr base) const {
    return directory_.Lookup(base);
  }
  void DirectoryInsert(sim::VAddr base, alloc::Block* block, bool is_alias) {
    directory_.Insert(base, block, is_alias);
  }
  void DirectoryErase(sim::VAddr base) { directory_.Erase(base); }

  // Compaction remap of src into dst with all node-level bookkeeping
  // (directory retarget, ghost tracking) serialized under the alias lock.
  // Returns the modeled remap duration; the caller paces it afterwards.
  Result<uint64_t> MergeRemap(alloc::Block* src, alloc::Block* dst);

  // Releases a ghost virtual range after its last homed object died.
  void ReleaseGhostAction(const GhostToRelease& ghost);

  // Retires a merged-away source or destroyed block. The Block object stays
  // alive in the graveyard for the node's lifetime so that in-flight
  // references from other workers (correction routing, scans, stale
  // lock-free directory reads) never dangle.
  void RetireBlock(std::unique_ptr<alloc::Block> block);

  // Binds the calling thread to worker `id` for stat-shard attribution.
  void BindWorkerThread(int id);
  // The calling thread's stat shard: its worker's shard on a worker thread,
  // the overflow shard (index num_workers) otherwise.
  NodeStatShard& CurrentStatShard();
  NodeStatShard& stat_shard(int worker_id) {
    const bool is_worker = worker_id >= 0 && worker_id < config_.num_workers;
    return stat_shards_.shard(
        is_worker ? static_cast<size_t>(worker_id)
                  : static_cast<size_t>(config_.num_workers));
  }

  Worker* worker(int idx) { return workers_[idx].get(); }
  int num_workers() const { return config_.num_workers; }

  const CormConfig config_;
  alloc::SizeClassTable classes_;

  // Substrate. Order matters for destruction (reverse of declaration).
  std::unique_ptr<sim::PhysicalMemory> phys_;
  std::unique_ptr<sim::AddressSpace> space_;
  std::unique_ptr<sim::MemFileManager> files_;
  std::unique_ptr<rdma::Rnic> rnic_;
  std::unique_ptr<alloc::BlockAllocator> block_allocator_;

  rdma::RpcQueue rpc_queue_;
  VaddrTracker vaddr_tracker_;
  Sharded<NodeStatShard> stat_shards_;

  // Sharded, lock-free-read block directory (replaces the old
  // RankedSharedMutex + unordered_map; see block_directory.h).
  BlockDirectory directory_;

  // Serializes ghost-alias-list mutation (Block::aliases()) between the
  // compaction remap retarget and the last-object ghost release — the role
  // the old whole-directory lock played. Ranked below the directory shard
  // locks so both paths may update directory entries while holding it.
  RankedSpinLock alias_mu_{LockRank::kAliasList};

  // Leaf lock: push-only until node teardown.
  RankedSpinLock graveyard_mu_{LockRank::kGraveyard};
  std::vector<std::unique_ptr<alloc::Block>> graveyard_
      GUARDED_BY(graveyard_mu_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};

  // Replicated-log ingress registry. Fixed capacity, pre-sized at
  // construction: workers scan [0, repl_ingress_count_) lock-free between
  // RPC batches, so the vector must never reallocate. Appends serialize on
  // repl_ingress_mu_ and publish by release-storing the new count.
  // Declared after rnic_/space_ (rings deregister through both on
  // destruction, so they must be destroyed first).
  static constexpr size_t kMaxReplIngress = 512;
  RankedSpinLock repl_ingress_mu_{LockRank::kReplIngress};
  std::vector<std::unique_ptr<rdma::ReplLogRing>> repl_ingress_;
  std::atomic<size_t> repl_ingress_count_{0};

  // Sync-lock table backing state (mapped + registered in the constructor,
  // torn down explicitly in ~CormNode after the threads join — it needs
  // rnic_ and space_ alive).
  sim::VAddr sync_table_base_ = 0;
  size_t sync_table_pages_ = 0;
  rdma::MrKeys sync_table_keys_;
  uint32_t sync_table_slots_ = 0;

  // Keyed index table backing state (same lifecycle as the sync table).
  sim::VAddr index_table_base_ = 0;
  size_t index_table_pages_ = 0;
  rdma::MrKeys index_table_keys_;
  uint32_t index_buckets_ = 0;
  std::unique_ptr<index::IndexTable> index_view_;

  // Background scheduler (DESIGN.md §9, generalized in §11): one
  // duty-cycled thread that runs the compaction pass (when
  // sched_compact_ is set) and every registered background task per tick.
  // The thread exists while either client needs it; sched_running_ guards
  // Start/Stop idempotence.
  void BackgroundSchedulerLoop();
  void EnsureSchedulerThread();
  void StopSchedulerThreadIfIdle();
  std::thread sched_thread_;
  std::atomic<bool> sched_stop_{false};
  bool sched_running_ = false;
  std::atomic<bool> sched_compact_{false};
  // Outermost-ranked: tasks run while it is held (that is what gives
  // UnregisterBackgroundTask its blocks-until-done guarantee) and may take
  // any CoRM lock underneath.
  RankedSpinLock sched_tasks_mu_{LockRank::kScheduler};
  std::vector<std::pair<int, std::function<void()>>> sched_tasks_
      GUARDED_BY(sched_tasks_mu_);
  int sched_task_next_id_ GUARDED_BY(sched_tasks_mu_) = 0;
};

}  // namespace corm::core

#endif  // CORM_CORE_CORM_NODE_H_
