// VaddrTracker: decides when an old virtual block address can be reused
// (paper §3.3).
//
// Each object's header stores its *home* block — the virtual block where it
// was first allocated. When compaction turns a block into a *ghost* (its
// virtual range now aliases another block's physical pages), the ghost's
// address can only be released once no live object is homed in it: every
// such object has been freed (Free) or explicitly re-homed (ReleasePtr).
//
// The tracker maintains, per block base, the count of live objects homed
// there, plus ghost bookkeeping: the ghost's r_key and which live block it
// currently aliases (ghosts follow their target through further
// compactions).

#ifndef CORM_CORE_VADDR_TRACKER_H_
#define CORM_CORE_VADDR_TRACKER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/block.h"
#include "common/lock_rank.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "rdma/rnic.h"
#include "sim/address_space.h"

namespace corm::core {

// A ghost range whose last homed object died; the caller must release the
// virtual range + memory region (alloc::BlockAllocator::ReleaseGhost) and
// detach the alias from its target block.
struct GhostToRelease {
  sim::VAddr base = 0;
  rdma::RKey r_key = 0;
  alloc::Block* alias_of = nullptr;
};

class VaddrTracker {
 public:
  VaddrTracker() = default;
  VaddrTracker(const VaddrTracker&) = delete;
  VaddrTracker& operator=(const VaddrTracker&) = delete;

  // A new object was allocated homed at `home_base`.
  void OnAlloc(sim::VAddr home_base) {
    LockGuard<RankedSpinLock> lock(mu_);
    ++entries_[home_base].live_homed;
  }

  // An object homed at `home_base` was freed. Returns the ghost-release
  // action when this was the last live object of a ghost range.
  std::optional<GhostToRelease> OnFree(sim::VAddr home_base) {
    LockGuard<RankedSpinLock> lock(mu_);
    return DecrementLocked(home_base);
  }

  // ReleasePtr: the object's home moved from `old_home` to `new_home`.
  std::optional<GhostToRelease> OnRehome(sim::VAddr old_home,
                                         sim::VAddr new_home) {
    LockGuard<RankedSpinLock> lock(mu_);
    ++entries_[new_home].live_homed;
    return DecrementLocked(old_home);
  }

  // The block at `base` became a ghost aliasing `target` (compaction).
  // Returns a release action when the ghost already has no homed objects.
  std::optional<GhostToRelease> MarkGhost(sim::VAddr base, rdma::RKey r_key,
                                          alloc::Block* target) {
    LockGuard<RankedSpinLock> lock(mu_);
    Entry& e = entries_[base];
    e.is_ghost = true;
    e.r_key = r_key;
    e.alias_of = target;
    if (e.live_homed == 0) {
      GhostToRelease out{base, e.r_key, e.alias_of};
      entries_.erase(base);
      return out;
    }
    return std::nullopt;
  }

  // Ghosts aliasing `old_target` now alias `new_target` (their target was
  // itself compacted away).
  void RetargetGhosts(alloc::Block* old_target, alloc::Block* new_target) {
    LockGuard<RankedSpinLock> lock(mu_);
    for (auto& [base, e] : entries_) {
      if (e.is_ghost && e.alias_of == old_target) e.alias_of = new_target;
    }
  }

  // Points one known ghost at a new target (O(1) variant used by the
  // compaction leader, which tracks the affected ghost bases itself).
  void SetAliasTarget(sim::VAddr ghost_base, alloc::Block* new_target) {
    LockGuard<RankedSpinLock> lock(mu_);
    auto it = entries_.find(ghost_base);
    if (it != entries_.end() && it->second.is_ghost) {
      it->second.alias_of = new_target;
    }
  }

  // A normal (non-ghost) block is being fully destroyed; its counter must
  // be zero.
  void OnBlockDestroyed(sim::VAddr base) {
    LockGuard<RankedSpinLock> lock(mu_);
    auto it = entries_.find(base);
    if (it != entries_.end()) {
      CORM_CHECK_EQ(it->second.live_homed, 0u)
          << "destroying block with live homed objects";
      CORM_CHECK(!it->second.is_ghost);
      entries_.erase(it);
    }
  }

  // Live homed-object count (testing).
  uint64_t LiveHomed(sim::VAddr base) const {
    LockGuard<RankedSpinLock> lock(mu_);
    auto it = entries_.find(base);
    return it == entries_.end() ? 0 : it->second.live_homed;
  }

  size_t NumGhosts() const {
    LockGuard<RankedSpinLock> lock(mu_);
    size_t n = 0;
    for (const auto& [base, e] : entries_) n += e.is_ghost;
    return n;
  }

 private:
  struct Entry {
    uint64_t live_homed = 0;
    bool is_ghost = false;
    rdma::RKey r_key = 0;
    alloc::Block* alias_of = nullptr;
  };

  std::optional<GhostToRelease> DecrementLocked(sim::VAddr home_base)
      REQUIRES(mu_) {
    auto it = entries_.find(home_base);
    CORM_CHECK(it != entries_.end()) << "untracked home base";
    CORM_CHECK_GT(it->second.live_homed, 0u);
    if (--it->second.live_homed == 0) {
      if (it->second.is_ghost) {
        GhostToRelease out{home_base, it->second.r_key, it->second.alias_of};
        entries_.erase(it);
        return out;
      }
      entries_.erase(it);  // keep the map tight for non-ghosts too
    }
    return std::nullopt;
  }

  // Leaf lock: nothing else is acquired while it is held.
  mutable RankedSpinLock mu_{LockRank::kVaddrTracker};
  std::unordered_map<sim::VAddr, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace corm::core

#endif  // CORM_CORE_VADDR_TRACKER_H_
