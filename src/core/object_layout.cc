#include "core/object_layout.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/sanitizer.h"

namespace corm::core {

namespace {

// Payload placement in checksum mode: a flat region after the header, with
// the 4-byte checksum in the slot's last bytes.
uint32_t ChecksumOffset(uint32_t slot_size) { return slot_size - kChecksumSize; }

void WritePayloadVersions(uint8_t* slot, uint32_t slot_size, uint8_t version,
                          const uint8_t* src, uint32_t len) {
  const uint32_t lines = SlotCachelines(slot_size);
  // Cacheline 0: payload starts after the header.
  uint32_t chunk = std::min<uint32_t>(
      len, std::min<uint32_t>(slot_size, kCacheLineSize) - kHeaderSize);
  if (chunk > 0) {
    std::memcpy(slot + kHeaderSize, src, chunk);
    src += chunk;
  }
  uint32_t remaining = len - chunk;
  for (uint32_t line = 1; line < lines; ++line) {
    uint8_t* base = slot + line * kCacheLineSize;
    StoreVersionByte(base, version);  // per-cacheline version byte
    chunk = std::min<uint32_t>(remaining,
                               static_cast<uint32_t>(kCacheLineSize) - 1);
    if (chunk > 0) {
      std::memcpy(base + 1, src, chunk);
      src += chunk;
      remaining -= chunk;
    }
  }
  CORM_CHECK_EQ(remaining, 0u);
}

// Reader side of the seqlock: the payload bytes intentionally race with a
// concurrent writer; validation (version bytes / header recheck) happens on
// the snapshot afterwards. RacyCopy keeps the racy loads out of TSan's
// sight while the writer side stays fully instrumented.
void ReadPayloadVersions(const uint8_t* slot, uint32_t slot_size,
                         uint8_t* dst, uint32_t len) {
  const uint32_t lines = SlotCachelines(slot_size);
  uint32_t chunk = std::min<uint32_t>(
      len, std::min<uint32_t>(slot_size, kCacheLineSize) - kHeaderSize);
  RacyCopy(dst, slot + kHeaderSize, chunk);
  dst += chunk;
  uint32_t remaining = len - chunk;
  for (uint32_t line = 1; line < lines && remaining > 0; ++line) {
    const uint8_t* base = slot + line * kCacheLineSize;
    chunk = std::min<uint32_t>(remaining,
                               static_cast<uint32_t>(kCacheLineSize) - 1);
    RacyCopy(dst, base + 1, chunk);
    dst += chunk;
    remaining -= chunk;
  }
}

}  // namespace

uint32_t PayloadChecksum(const uint8_t* slot, uint32_t slot_size) {
  // FNV-1a over the header version byte + the full payload region, so a
  // snapshot mixing an old payload with a new header (or vice versa) fails.
  uint32_t h = 2166136261u;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 16777619u;
  };
  mix(LoadVersionByte(slot));  // header version byte
  const uint32_t capacity = PayloadCapacity(slot_size, ConsistencyMode::kChecksum);
  for (uint32_t i = 0; i < capacity; ++i) mix(slot[kHeaderSize + i]);
  return h;
}

void WritePayload(uint8_t* slot, uint32_t slot_size, uint8_t version,
                  const void* data, uint32_t len, ConsistencyMode mode) {
  CORM_CHECK_LE(len, PayloadCapacity(slot_size, mode));
  const auto* src = static_cast<const uint8_t*>(data);
  if (mode == ConsistencyMode::kCachelineVersions) {
    WritePayloadVersions(slot, slot_size, version, src, len);
    // Happens-before edge to any reader that validates this snapshot
    // (SnapshotConsistent / header recheck) — pairs with CORM_TSAN_ACQUIRE
    // on the validation paths.
    CORM_TSAN_RELEASE(slot);
    return;
  }
  if (len > 0) std::memcpy(slot + kHeaderSize, src, len);
  // The checksum covers the *whole* payload region (partial writes leave
  // the remainder intact but still protected), plus the version byte —
  // which the caller must have staged into slot[0] before or right after
  // this call; we compute over `version` explicitly to avoid the ordering
  // dependency.
  uint32_t h = 2166136261u;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 16777619u;
  };
  mix(version);
  const uint32_t capacity = PayloadCapacity(slot_size, mode);
  for (uint32_t i = 0; i < capacity; ++i) mix(slot[kHeaderSize + i]);
  std::memcpy(slot + ChecksumOffset(slot_size), &h, kChecksumSize);
  CORM_TSAN_RELEASE(slot);
}

void ReadPayload(const uint8_t* slot, uint32_t slot_size, void* out,
                 uint32_t len, ConsistencyMode mode) {
  CORM_CHECK_LE(len, PayloadCapacity(slot_size, mode));
  auto* dst = static_cast<uint8_t*>(out);
  if (mode == ConsistencyMode::kCachelineVersions) {
    ReadPayloadVersions(slot, slot_size, dst, len);
    return;
  }
  RacyCopy(dst, slot + kHeaderSize, len);
}

bool SnapshotConsistent(const uint8_t* slot, uint32_t slot_size,
                        ConsistencyMode mode) {
  const ObjectHeader h = ObjectHeader::Unpack(LoadHeaderWord(slot));
  if (h.lock != LockState::kFree) return false;
  if (mode == ConsistencyMode::kCachelineVersions) {
    const uint32_t lines = SlotCachelines(slot_size);
    for (uint32_t line = 1; line < lines; ++line) {
      if (LoadVersionByte(slot + line * kCacheLineSize) != h.version) {
        return false;
      }
    }
    CORM_TSAN_ACQUIRE(slot);  // snapshot validated: order after its writer
    return true;
  }
  uint32_t stored;
  std::memcpy(&stored, slot + ChecksumOffset(slot_size), kChecksumSize);
  if (stored != PayloadChecksum(slot, slot_size)) return false;
  CORM_TSAN_ACQUIRE(slot);
  return true;
}

Status AuditSlotConsistency(const uint8_t* slot, uint32_t slot_size,
                            ConsistencyMode mode) {
  const ObjectHeader h = ObjectHeader::Unpack(LoadHeaderWord(slot));
  if (h.lock == LockState::kTombstone) return Status::OK();  // freed slot
  if (h.lock != LockState::kFree) {
    return Status::Internal("audit: slot left in locked state");
  }
  if (mode == ConsistencyMode::kCachelineVersions) {
    const uint32_t lines = SlotCachelines(slot_size);
    for (uint32_t line = 1; line < lines; ++line) {
      const uint8_t v = LoadVersionByte(slot + line * kCacheLineSize);
      if (v != h.version) {
        std::ostringstream msg;
        msg << "audit: version byte of cacheline " << line << " is "
            << static_cast<int>(v) << ", header version is "
            << static_cast<int>(h.version);
        return Status::Internal(msg.str());
      }
    }
    return Status::OK();
  }
  uint32_t stored;
  std::memcpy(&stored, slot + ChecksumOffset(slot_size), kChecksumSize);
  if (stored != PayloadChecksum(slot, slot_size)) {
    return Status::Internal("audit: payload checksum mismatch");
  }
  return Status::OK();
}

}  // namespace corm::core
