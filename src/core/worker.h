// Worker: one CoRM worker thread (paper §2.2.2, §3.1.4).
//
// Each worker polls (a) its private inbox — ownership-bound operations
// forwarded by peers, pointer-correction queries, compaction-protocol
// messages — and (b) the shared RPC queue. Worker 0 additionally acts as
// the compaction leader when a Compact control message arrives.
//
// Internal header: not part of the public API surface.

#ifndef CORM_CORE_WORKER_H_
#define CORM_CORE_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/block.h"
#include "alloc/thread_allocator.h"
#include "common/mpmc_queue.h"
#include "common/random.h"
#include "common/slice.h"
#include "core/addr.h"
#include "core/corm_node.h"
#include "core/rpc_protocol.h"
#include "rdma/rpc_transport.h"

namespace corm::core {

// --- Inter-worker message payloads (reply slots are caller-owned). --------

struct CorrectionReply {
  std::atomic<bool> done{false};
  bool found = false;
  uint32_t slot = 0;
};

struct CollectReply {
  std::atomic<bool> done{false};
  std::vector<std::unique_ptr<alloc::Block>> blocks;
};

struct StatsReply {
  std::atomic<bool> done{false};
  // granted/used bytes and block counts per size class.
  std::vector<uint64_t> granted;
  std::vector<uint64_t> used;
  std::vector<uint64_t> nblocks;
};

struct CompactRequest {
  std::atomic<bool> done{false};
  uint32_t class_idx = 0;
  Status status;
  CompactionReport report;
};

// Reply slot for an on-thread invariant audit (CormNode::Audit). The worker
// runs its ThreadAllocator::Audit between operations, so the audit sees a
// quiescent view of the allocator without extra locking.
struct AuditReply {
  std::atomic<bool> done{false};
  Status status;
};

struct BulkRequest {
  std::atomic<bool> done{false};
  bool is_alloc = false;
  // Alloc inputs/outputs.
  size_t count = 0;
  uint32_t payload_size = 0;
  uint64_t index_base = 0;  // pattern seed offset for determinism
  std::vector<GlobalAddr> out_addrs;
  // Free inputs.
  std::vector<GlobalAddr> free_addrs;
  Status status;
};

struct WorkerMsg {
  enum class Kind : uint8_t {
    kForwardedRpc,  // ownership-bound RPC (Free) routed to the block owner
    kCorrection,    // pointer-correction query (thread messaging, §3.2.1)
    kCollect,       // compaction stage 1: donate low-occupancy blocks
    kStats,         // fragmentation accounting snapshot
    kCompact,       // run a compaction as leader
    kBulk,          // bulk alloc/free loader
    kAudit,         // run the thread-allocator invariant audit in-thread
  };
  Kind kind = Kind::kForwardedRpc;

  rdma::RpcMessage* rpc = nullptr;  // kForwardedRpc

  // kCorrection
  const alloc::Block* block = nullptr;
  uint16_t obj_id = 0;
  CorrectionReply* correction = nullptr;

  // kCollect
  uint32_t class_idx = 0;
  double max_occupancy = 0.0;
  size_t max_blocks = 0;
  CollectReply* collect = nullptr;

  StatsReply* stats = nullptr;      // kStats
  CompactRequest* compact = nullptr;  // kCompact
  BulkRequest* bulk = nullptr;        // kBulk
  AuditReply* audit = nullptr;        // kAudit
};

class Worker {
 public:
  Worker(CormNode* node, int id);
  ~Worker();  // out-of-line: CompactionEngine is incomplete here

  // Thread body; returns when the node's stop flag is set. Drains the
  // worker's own RPC ring in batches (stealing only from rings whose owner
  // worker is parked) and interleaves inbox messages between batch items so
  // correction queries are never starved behind a long batch.
  void Run();

  // Enqueues a message (any thread). Spins while the inbox is full.
  void Send(WorkerMsg msg);

  int id() const { return id_; }
  alloc::ThreadAllocator* allocator() { return &allocator_; }

  // True while the worker is sleeping out an idle spell. Siblings steal
  // from a ring only while its owner is parked — an awake owner drains its
  // own ring, and stealing from it would keep every idle worker spinning on
  // load that belongs to one worker (see Run()).
  bool parked() const { return parked_.load(std::memory_order_relaxed); }

  // Result of locating an object (public for internal free helpers).
  struct Resolved {
    alloc::Block* block = nullptr;
    uint32_t slot = 0;
    sim::VAddr base = 0;      // block base the client's pointer references
    bool corrected = false;   // hint was stale; slot found via ID
    bool old_block = false;   // pointer references a ghost base (§3.3)
  };

 private:
  // --- Dispatch. ---------------------------------------------------------
  void HandleInbox(WorkerMsg& msg);
  void HandleRpc(rdma::RpcMessage* rpc, bool forwarded);

  // --- RPC operation handlers. -------------------------------------------
  void HandleAlloc(rdma::RpcMessage* rpc);
  void HandleFree(rdma::RpcMessage* rpc, bool forwarded);
  void HandleRead(rdma::RpcMessage* rpc);
  void HandleWrite(rdma::RpcMessage* rpc);
  void HandleReleasePtr(rdma::RpcMessage* rpc);

  // --- Keyed index operations (DESIGN.md §13). ----------------------------
  // Authoritative lookup behind the one-sided bucket probe. Resolves the
  // stored hint through ResolveObject and self-heals the bucket entry
  // (fresh pointer + owner hint + current epoch) when it was stale or
  // fenced, so RPC fallbacks repair the one-sided path as a side effect.
  void HandleIndexLookup(rdma::RpcMessage* rpc);
  void HandleIndexInsert(rdma::RpcMessage* rpc);
  void HandleIndexRemove(rdma::RpcMessage* rpc);

  // --- Replicated-log apply path (DESIGN.md §11). ------------------------
  // Drains up to kReplApplyBatch in-sequence records from every ingress
  // ring this worker owns (ring id % num_workers == id_). Returns the
  // number of records durably applied.
  size_t DrainReplIngress();
  // Applies one record through the object seqlock (same lock discipline as
  // HandleWrite). Returns true when the ring may advance past the record —
  // applied, duplicate, epoch-fenced, or orphaned — and false when the
  // object is transiently unavailable (write-locked or kCompacting): the
  // record stays at the ring head and is retried on a later drain, which
  // is the replication/compaction hand-off.
  bool ApplyReplRecord(const rdma::ReplRecordHeader& hdr,
                       const Buffer& payload);

  // --- Shared helpers. ----------------------------------------------------
  // Locates the object referenced by `addr`: optimistic hinted-offset check
  // first, then the configured correction strategy. Never blocks on locked
  // objects (that is the caller's concern).
  Result<Resolved> ResolveObject(const GlobalAddr& addr);

  // Pointer correction backends (§3.2.1).
  Result<uint32_t> CorrectViaOwner(alloc::Block* block, uint16_t obj_id);
  Result<uint32_t> CorrectViaScan(const alloc::Block* block, sim::VAddr base,
                                  uint16_t obj_id);

  // Looks up an object ID in a block this worker owns.
  Result<uint32_t> OwnerLookup(const alloc::Block* block, uint16_t obj_id);

  // Allocates one object; returns its address. Used by RPC + bulk paths.
  Result<GlobalAddr> AllocObject(uint32_t payload_size);
  // Frees a resolved object (this worker must own the block).
  Status FreeResolved(const Resolved& r);

  // Byte pointer to a slot through the *client-visible* base (aliases
  // resolve to the same frames after remap).
  uint8_t* SlotPtr(sim::VAddr base, const alloc::Block* block, uint32_t slot);

  // Generates a block-local object ID (unique when the class is
  // compactable; paper §3.1.2). Bounded: after kIdRandomDraws failed random
  // draws (dense block: rejection sampling degenerates) it scans the ID
  // space from a random start, which is guaranteed to find a free ID.
  Result<uint16_t> DrawObjectId(alloc::Block* block);

  // Directory lookup through this worker's private cache, invalidated by
  // the directory epoch (stale entries miss and refetch; see the freshness
  // argument at LookupBlockCached's definition).
  CormNode::DirectoryEntry LookupBlockCached(sim::VAddr base);

  // True when blocks of this class can hold more objects than the ID space
  // addresses (compaction disabled for it, §4.4.1).
  bool ClassCompactable(uint32_t class_idx) const;

  // Completes `rpc` with `st` and wakes the client.
  static void Complete(rdma::RpcMessage* rpc, Status st);

  // Releases a ghost range (tracker said its last homed object died).
  void ReleaseGhost(const GhostToRelease& ghost);

  // Destroys an empty block owned by this worker.
  void MaybeReleaseEmptyBlock(alloc::Block* block);

  void HandleBulk(BulkRequest* req);

  // The compaction engine runs on the leader's thread between RPC batches
  // and reaches into the worker's private helpers (SlotPtr, inbox,
  // ClassCompactable) as the leader-side half of the protocol.
  friend class CompactionEngine;

  // Largest batch a worker drains from its RPC ring per queue
  // synchronization (CormConfig::poll_batch is clamped to this).
  static constexpr size_t kMaxPollBatch = 64;
  // Records applied per ingress ring per drain pass: bounds how long the
  // apply path keeps the worker away from its RPC ring.
  static constexpr int kReplApplyBatch = 16;
  // Random ID draws before DrawObjectId falls back to scanning.
  static constexpr int kIdRandomDraws = 32;
  // Dry polls an idle worker yields through before parking in short sleeps.
  static constexpr uint32_t kIdleYields = 4;

  // Direct-mapped directory cache slot: valid while the stamped epoch still
  // equals the directory's (any directory mutation invalidates all slots).
  struct DirCacheSlot {
    sim::VAddr base = 0;
    uint64_t epoch = 0;
    CormNode::DirectoryEntry entry;
  };
  static constexpr size_t kDirCacheSlots = 256;  // power of two

  CormNode* const node_;
  const int id_;
  alloc::ThreadAllocator allocator_;
  std::atomic<bool> parked_{false};
  MpmcQueue<WorkerMsg> inbox_;
  Rng rng_;
  // This worker's cacheline-padded stat shard; counters on the data plane
  // are plain increments with no shared-line contention.
  NodeStatShard& stats_;
  const bool dir_cache_enabled_;
  const bool scratch_enabled_;
  // Reusable read-payload staging buffer (capacity persists across ops, so
  // the steady-state read path performs no heap allocation).
  Buffer read_scratch_;
  // Replicated-log apply staging: the record snapshot pulled from the ring
  // and the stored-image scratch the seal path rewrites. High-water sized.
  Buffer repl_record_buf_;
  Buffer repl_seal_scratch_;
  std::vector<DirCacheSlot> dir_cache_;
  // Leader-side compaction state machine (compaction_engine.h), stepped
  // one budgeted slice at a time from Run(); present on every worker but
  // only ever driven on the one that receives kCompact messages.
  std::unique_ptr<CompactionEngine> engine_;
};

}  // namespace corm::core

#endif  // CORM_CORE_WORKER_H_
