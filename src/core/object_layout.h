// On-memory object layout: header word + FaRM-style per-cacheline versions.
//
// Each slot of a size class holds exactly one object:
//
//   byte  0..7   header word (version | lock | class | object ID | home page)
//   byte  8..63  payload
//   byte 64      version byte (replica of header version, cacheline 1)
//   byte 65..127 payload
//   byte 128     version byte (cacheline 2), ...
//
// Slots >= 64 B are cacheline aligned (size classes >= 64 are multiples of
// 64); smaller slots (16/32 B) never straddle a cacheline. A lock-free
// DirectRead is consistent iff the object is unlocked and every version
// byte matches the header version (paper §3.2.3). Writers bump the version
// and rewrite all version bytes under the header lock.
//
// The header packs (paper §3.3, §4.4): the object version (8 b), the lock
// state (2 b), the size class (6 b), the block-local object ID (16 b), and
// the page index of the object's *home* block — the virtual block where it
// was first allocated — used to decide when an old virtual address can be
// reused (32 b).

#ifndef CORM_CORE_OBJECT_LAYOUT_H_
#define CORM_CORE_OBJECT_LAYOUT_H_

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/byte_units.h"
#include "common/sanitizer.h"
#include "common/status.h"
#include "sim/address_space.h"

namespace corm::core {

inline constexpr uint32_t kHeaderSize = 8;

// How lock-free readers validate object consistency (§4.2.1): FaRM-style
// per-cacheline version bytes (the paper's deliberate default, mimicking
// FaRM), or a single checksum stored after the payload — the alternative
// the paper suggests as "potentially a better strategy for large records"
// (no cacheline-alignment constraint, no per-line byte overhead, at the
// cost of hashing the payload on every read).
enum class ConsistencyMode : uint8_t {
  kCachelineVersions = 0,
  kChecksum = 1,
};

inline constexpr uint32_t kChecksumSize = 4;

// 2-bit lock states in the header.
enum class LockState : uint8_t {
  kFree = 0,        // readable, lockable
  kWriteLocked = 1, // a writer holds the object
  kCompacting = 2,  // compaction is relocating the object (§3.2.3)
  kTombstone = 3,   // slot freed; scanners must skip it
};

// Decoded header word.
struct ObjectHeader {
  uint8_t version = 0;
  LockState lock = LockState::kFree;
  uint8_t class_idx = 0;   // 6 bits
  uint16_t obj_id = 0;
  uint32_t home_page = 0;  // (home block vaddr - kBase) >> 12

  constexpr uint64_t Pack() const {
    return static_cast<uint64_t>(version) |
           (static_cast<uint64_t>(lock) << 8) |
           (static_cast<uint64_t>(class_idx & 0x3f) << 10) |
           (static_cast<uint64_t>(obj_id) << 16) |
           (static_cast<uint64_t>(home_page) << 32);
  }

  static constexpr ObjectHeader Unpack(uint64_t w) {
    ObjectHeader h;
    h.version = static_cast<uint8_t>(w & 0xff);
    h.lock = static_cast<LockState>((w >> 8) & 0x3);
    h.class_idx = static_cast<uint8_t>((w >> 10) & 0x3f);
    h.obj_id = static_cast<uint16_t>((w >> 16) & 0xffff);
    h.home_page = static_cast<uint32_t>(w >> 32);
    return h;
  }
};

// Compile-time pin of the header bit layout. The header word is the unit of
// the seqlock protocol AND crosses the wire in one-sided RDMA reads, so a
// refactor of Pack/Unpack must not silently move a field: version bits 0-7,
// lock bits 8-9, class bits 10-15, object ID bits 16-31, home page bits
// 32-63.
namespace layout_internal {
inline constexpr ObjectHeader kHeaderProbe{
    /*version=*/0xAB, /*lock=*/LockState::kCompacting, /*class_idx=*/0x2A,
    /*obj_id=*/0xBEEF, /*home_page=*/0x12345678};
inline constexpr uint64_t kHeaderProbeWord = kHeaderProbe.Pack();
}  // namespace layout_internal
static_assert(layout_internal::kHeaderProbeWord == 0x12345678'BEEFAAABULL,
              "header bit layout changed (wire/RDMA format)");
static_assert((layout_internal::kHeaderProbeWord & 0xff) == 0xAB,
              "version must occupy header bits 0-7");
static_assert(((layout_internal::kHeaderProbeWord >> 8) & 0x3) ==
                  static_cast<uint64_t>(LockState::kCompacting),
              "lock state must occupy header bits 8-9");
static_assert(((layout_internal::kHeaderProbeWord >> 10) & 0x3f) == 0x2A,
              "size class must occupy header bits 10-15");
static_assert(((layout_internal::kHeaderProbeWord >> 16) & 0xffff) == 0xBEEF,
              "object ID must occupy header bits 16-31");
static_assert((layout_internal::kHeaderProbeWord >> 32) == 0x12345678,
              "home page must occupy header bits 32-63");
static_assert(
    ObjectHeader::Unpack(layout_internal::kHeaderProbeWord).version == 0xAB &&
        ObjectHeader::Unpack(layout_internal::kHeaderProbeWord).lock ==
            LockState::kCompacting &&
        ObjectHeader::Unpack(layout_internal::kHeaderProbeWord).class_idx ==
            0x2A &&
        ObjectHeader::Unpack(layout_internal::kHeaderProbeWord).obj_id ==
            0xBEEF &&
        ObjectHeader::Unpack(layout_internal::kHeaderProbeWord).home_page ==
            0x12345678,
    "Unpack must invert Pack field-for-field");
static_assert(kHeaderSize == sizeof(uint64_t),
              "header word must be exactly 8 bytes (atomic seqlock unit)");

inline uint32_t HomePageOf(sim::VAddr block_base) {
  return static_cast<uint32_t>((block_base - sim::AddressSpace::kBase) >>
                               sim::kVPageShift);
}

inline sim::VAddr HomeVaddrOf(uint32_t home_page) {
  return sim::AddressSpace::kBase +
         (static_cast<sim::VAddr>(home_page) << sim::kVPageShift);
}

// Number of cachelines a slot spans (slots < 64 B span one).
inline constexpr uint32_t SlotCachelines(uint32_t slot_size) {
  return slot_size <= kCacheLineSize
             ? 1
             : slot_size / static_cast<uint32_t>(kCacheLineSize);
}

// Usable payload bytes in a slot of `slot_size` under `mode`: the header,
// plus either one version byte per additional cacheline or a trailing
// checksum word.
inline constexpr uint32_t PayloadCapacity(
    uint32_t slot_size,
    ConsistencyMode mode = ConsistencyMode::kCachelineVersions) {
  const uint32_t overhead =
      mode == ConsistencyMode::kCachelineVersions
          ? kHeaderSize + (SlotCachelines(slot_size) - 1)
          : kHeaderSize + kChecksumSize;
  return slot_size > overhead ? slot_size - overhead : 0;
}

// Compile-time pin of the cacheline-version geometry (paper §3.2.3): one
// version byte leads every 64 B line after the first, so readers and
// writers must agree on the stride and the per-mode payload capacity.
static_assert(kCacheLineSize == 64,
              "cacheline-version stride is fixed at 64 B");
static_assert(SlotCachelines(16) == 1 && SlotCachelines(64) == 1 &&
                  SlotCachelines(128) == 2 && SlotCachelines(4096) == 64,
              "slot cacheline count drives version-byte placement");
static_assert(PayloadCapacity(64, ConsistencyMode::kCachelineVersions) == 56 &&
                  PayloadCapacity(128, ConsistencyMode::kCachelineVersions) ==
                      119,
              "cacheline-version payload capacity: slot - 8 - (lines - 1)");
static_assert(PayloadCapacity(64, ConsistencyMode::kChecksum) == 52,
              "checksum payload capacity: slot - 8 - 4");

// --- Atomic header access (server-side, on mapped frame memory). ---------

inline uint64_t LoadHeaderWord(const uint8_t* slot) {
  return std::atomic_ref<const uint64_t>(
             *reinterpret_cast<const uint64_t*>(slot))
      .load(std::memory_order_acquire);
}

inline void StoreHeaderWord(uint8_t* slot, uint64_t w) {
  std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(slot))
      .store(w, std::memory_order_release);
}

inline bool CasHeaderWord(uint8_t* slot, uint64_t& expected, uint64_t desired) {
  return std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(slot))
      .compare_exchange_strong(expected, desired, std::memory_order_acq_rel);
}

// Per-cacheline version bytes are written by the (locked) writer while
// lock-free readers poll them: a genuine seqlock-style race. Relaxed
// atomics make that race well-defined at the C++ level and let TSan model
// it (atomic vs atomic is never a report), without imposing ordering — the
// header word's acquire/release carries the ordering.
inline void StoreVersionByte(uint8_t* p, uint8_t v) {
  std::atomic_ref<uint8_t>(*p).store(v, std::memory_order_relaxed);
}

inline uint8_t LoadVersionByte(const uint8_t* p) {
  return std::atomic_ref<const uint8_t>(*p).load(std::memory_order_relaxed);
}

// Header version stepping (paper §3.2.3): each committed write bumps the
// version by exactly one (mod 256). The CORM_AUDIT hooks in the write path
// enforce this monotonicity so a skipped or repeated version — which would
// let a torn snapshot validate — is caught at the source.
inline uint8_t NextVersion(uint8_t v) { return static_cast<uint8_t>(v + 1); }

inline bool VersionMonotonic(uint8_t old_version, uint8_t new_version) {
  return new_version == NextVersion(old_version);
}

// --- Payload scatter/gather around the consistency metadata. ---------------

// Writes `len` payload bytes into the slot and stamps the consistency
// metadata: per-cacheline version bytes, or the trailing checksum (which
// covers the version and the whole payload region). Does NOT touch the
// header word; callers update it separately (under lock).
void WritePayload(uint8_t* slot, uint32_t slot_size, uint8_t version,
                  const void* data, uint32_t len,
                  ConsistencyMode mode = ConsistencyMode::kCachelineVersions);

// Gathers up to `len` payload bytes from the slot into `out`.
void ReadPayload(const uint8_t* slot, uint32_t slot_size, void* out,
                 uint32_t len,
                 ConsistencyMode mode = ConsistencyMode::kCachelineVersions);

// Lock-free consistency check on a *snapshot* of a slot (e.g. a DirectRead
// buffer): header must be kFree, and either every cacheline version byte
// equals the header version (paper §3.2.3) or the trailing checksum
// matches the payload.
bool SnapshotConsistent(
    const uint8_t* slot, uint32_t slot_size,
    ConsistencyMode mode = ConsistencyMode::kCachelineVersions);

// FNV-1a over the payload region and the header version byte (internal,
// exposed for tests).
uint32_t PayloadChecksum(const uint8_t* slot, uint32_t slot_size);

// --- Invariant audits (always compiled; hot-path hooks are CORM_AUDIT). ---

// Audits one *quiescent* slot (caller guarantees no concurrent writer:
// object locked by the caller, or the block is owner-private): every
// version byte must equal the header version (or the checksum must match),
// and the header lock state must be kFree or kTombstone. Returns OK or a
// description of the first violation.
Status AuditSlotConsistency(const uint8_t* slot, uint32_t slot_size,
                            ConsistencyMode mode);

// --- Deterministic test/bench payload patterns. ---------------------------

inline uint8_t PatternByte(uint64_t object_index, uint32_t byte_index) {
  return static_cast<uint8_t>(object_index * 131 + byte_index * 7 + 13);
}

inline void PatternFill(uint64_t object_index, uint8_t* buf, uint32_t len) {
  for (uint32_t i = 0; i < len; ++i) buf[i] = PatternByte(object_index, i);
}

inline bool PatternCheck(uint64_t object_index, const uint8_t* buf,
                         uint32_t len) {
  for (uint32_t i = 0; i < len; ++i) {
    if (buf[i] != PatternByte(object_index, i)) return false;
  }
  return true;
}

}  // namespace corm::core

#endif  // CORM_CORE_OBJECT_LAYOUT_H_
