// corm-hotpath
#include "core/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "core/object_layout.h"
#include "core/rpc_protocol.h"
#include "index/index_layout.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"
#include "sync/remote_seq.h"

namespace corm::core {

namespace {
// Stripes contexts across the node's RPC rings.
int NextClientRing(int num_rings) {
  static std::atomic<uint32_t> next{0};
  return static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                          static_cast<uint32_t>(num_rings));
}

sync::SchemeOptions SchemeOptionsFor(const CormConfig& config,
                                     const Context::Options& options) {
  sync::SchemeOptions so;
  so.lock_retry = options.recovery_retry;
  so.lease_ns = config.sync_lease_ns;
  return so;
}
}  // namespace

Context::Context(CormNode* node, Options options)
    : node_(node),
      options_(options),
      qp_(node->rnic()),
      rpc_(node->rpc_queue(), node->latency_model(), options.rpc_retry),
      ring_(NextClientRing(node->rpc_queue()->num_rings())),
      scratch_(node->block_bytes()),
      batch_scratch_(kBatchChain * node->block_bytes()),
      scheme_(sync::MakeScheme(node->config().sync_scheme, this,
                               node->sync_table(),
                               SchemeOptionsFor(node->config(), options))) {}

std::unique_ptr<Context> Context::Create(CormNode* node, Options options) {
  // Private constructor: make_unique cannot reach it. NOLINT(corm-raw-new)
  return std::unique_ptr<Context>(new Context(node, options));
}

// ---------------------------------------------------------------------------
// Transport helpers.
// ---------------------------------------------------------------------------

Status Context::RpcCallPooled(rdma::RpcMessage** msg, int ring_hint) {
  stats_.rpc_calls++;
  rdma::RpcWireStats wire;
  Status st = rpc_.CallPooled(msg, ring_hint, &wire);
  stats_.modeled_ns_total += wire.network_ns + wire.server_extra_ns;
  if (wire.dup_completion) stats_.dup_completions++;
  if (st.IsTimeout()) stats_.timeouts++;
  if (!st.ok() && *msg != nullptr) {
    // Uniform failure contract for callers: the message is gone.
    (*msg)->Unref();
    *msg = nullptr;
  }
  return st;
}

int Context::RingHintFor(const GlobalAddr& addr) const {
  const int hint = addr.OwnerHint();
  return hint >= 0 && hint < node_->rpc_queue()->num_rings() ? hint : ring_;
}

Status Context::RawRead(rdma::RKey r_key, sim::VAddr vaddr, void* buf,
                        size_t len) {
  if (options_.local) {
    // Colocated access: CPU loads through the MMU, no RNIC involved.
    return node_->rnic()->address_space()->ReadVirtual(vaddr, buf, len);
  }
  auto ns = qp_.Read(r_key, vaddr, buf, len);
  if (!ns.ok()) {
    if (ns.status().IsQpBroken()) {
      stats_.qp_reconnects++;
      qp_.Reconnect();
    }
    return ns.status();
  }
  stats_.modeled_ns_total += *ns;
  return Status::OK();
}

// Tracks the modeled duration of one public API call.
class Context::OpTimer {
 public:
  explicit OpTimer(Context* ctx)
      : ctx_(ctx), start_(ctx->stats_.modeled_ns_total) {}
  ~OpTimer() { ctx_->stats_.last_op_ns = ctx_->stats_.modeled_ns_total - start_; }

 private:
  Context* const ctx_;
  const uint64_t start_;
};

// ---------------------------------------------------------------------------
// RPC operations (Table 2).
// ---------------------------------------------------------------------------

Result<GlobalAddr> Context::Alloc(size_t size) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kAlloc, AllocRequest{size}, &msg->request);
  // Any worker can allocate: stay on the client's home ring so load maps
  // to as few workers as there are active clients.
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  AllocResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  return resp.addr;
}

Status Context::Free(GlobalAddr* addr) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kFree, FreeRequest{*addr}, &msg->request);
  // Free is ownership-bound: the owner hint routes it straight to the
  // owning worker's ring, skipping the kForwardedRpc hop.
  Status st = RpcCallPooled(&msg, RingHintFor(*addr));
  if (msg != nullptr) msg->Unref();
  if (st.ok()) *addr = GlobalAddr{};  // the pointer is dead
  return st;
}

Status Context::Read(GlobalAddr* addr, void* buf, size_t size) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kRead,
                ReadRequest{*addr, static_cast<uint32_t>(size)},
                &msg->request);
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  ReadResponse resp;
  Slice payload = DecodeResponse(msg->response, &resp);
  if (payload.size() < size) {
    msg->Unref();
    return Status::Internal("short read payload");
  }
  std::memcpy(buf, payload.data(), size);
  msg->Unref();
  if (resp.addr.vaddr != addr->vaddr) stats_.pointer_corrections++;
  *addr = resp.addr;  // server-corrected pointer (§3.2.1)
  return Status::OK();
}

Status Context::Write(GlobalAddr* addr, const void* buf, size_t size) {
  OpTimer timer(this);
  // Bracket the RPC with the configured scheme's write lock (a no-op under
  // kOptimistic): scheme-abiding peers serialize here, and the server-side
  // object seqlock still guards the bytes underneath. Release targets the
  // slot that was locked — the RPC may correct the pointer.
  const GlobalAddr locked = *addr;
  CORM_RETURN_NOT_OK(scheme_->AcquireWrite(locked));
  Status st = WriteRpc(addr, buf, size);
  Status release = scheme_->ReleaseWrite(locked);
  return st.ok() ? release : st;
}

Status Context::WriteRpc(GlobalAddr* addr, const void* buf, size_t size) {
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kWrite,
                WriteRequest{*addr, static_cast<uint32_t>(size)},
                &msg->request, Slice(static_cast<const char*>(buf), size));
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  WriteResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  if (resp.addr.vaddr != addr->vaddr) stats_.pointer_corrections++;
  *addr = resp.addr;
  return Status::OK();
}

Status Context::ReleasePtr(GlobalAddr* addr) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kReleasePtr, ReleasePtrRequest{*addr}, &msg->request);
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  ReleasePtrResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  *addr = resp.addr;  // canonical pointer in the object's current block
  return Status::OK();
}

// ---------------------------------------------------------------------------
// One-sided reads (§3.2.2, §3.2.3).
// ---------------------------------------------------------------------------

Status Context::ValidateAndExtract(const uint8_t* slot, uint32_t slot_size,
                                   const GlobalAddr& addr, void* buf,
                                   size_t size) {
  const ConsistencyMode mode = node_->config().consistency;
  const ObjectHeader h =
      ObjectHeader::Unpack(*reinterpret_cast<const uint64_t*>(slot));
  if (h.lock == LockState::kTombstone || h.obj_id != addr.obj_id) {
    return Status::ObjectMoved("object not at hinted offset");
  }
  if (h.lock != LockState::kFree) {
    return Status::ObjectLocked("object locked (write or compaction)");
  }
  if (!SnapshotConsistent(slot, slot_size, mode)) {
    return Status::TornRead("consistency metadata mismatch");
  }
  if (size > PayloadCapacity(slot_size, mode)) {
    return Status::InvalidArgument("read larger than object payload");
  }
  ReadPayload(slot, slot_size, buf, static_cast<uint32_t>(size), mode);
  return Status::OK();
}

Status Context::SnapshotRead(const GlobalAddr& addr, void* buf, size_t size) {
  const uint32_t slot_size = node_->classes().ClassSize(addr.class_idx);
  uint8_t stack_slot[4096];
  uint8_t* slot =
      slot_size <= sizeof(stack_slot) ? stack_slot : scratch_.data();
  CORM_RETURN_NOT_OK(RawRead(addr.r_key, addr.vaddr, slot, slot_size));
  return ValidateAndExtract(slot, slot_size, addr, buf, size);
}

Status Context::DirectRead(const GlobalAddr& addr, void* buf, size_t size) {
  OpTimer timer(this);
  stats_.direct_reads++;
  Status st = scheme_->GuardedRead(addr, buf, size);
  if (!st.ok()) {
    stats_.direct_read_failures++;
    if (st.IsTornRead()) stats_.torn_reads++;
    if (st.IsObjectLocked()) stats_.locked_reads++;
    if (st.IsObjectMoved()) stats_.moved_reads++;
  }
  return st;
}

Status Context::DirectReadBatch(const GlobalAddr* addrs, size_t n, void* bufs,
                                size_t size, Status* statuses) {
  OpTimer timer(this);
  if (n == 0) return Status::OK();
  uint8_t* out = static_cast<uint8_t*>(bufs);
  Status first;
  if (options_.local || !node_->config().doorbell_batching) {
    // Nothing to amortize colocated, and the knob is the bench's A/B lever.
    for (size_t i = 0; i < n; ++i) {
      statuses[i] = DirectRead(addrs[i], out + i * size, size);
      if (!statuses[i].ok() && first.ok()) first = statuses[i];
    }
    return first;
  }
  const size_t block_bytes = node_->block_bytes();
  size_t done = 0;
  while (done < n) {
    const size_t k = std::min(n - done, kBatchChain);
    rdma::WorkRequest wrs[kBatchChain];
    for (size_t i = 0; i < k; ++i) {
      const GlobalAddr& a = addrs[done + i];
      wrs[i] = rdma::WorkRequest{};
      wrs[i].op = rdma::WorkRequest::Op::kRead;
      wrs[i].r_key = a.r_key;
      wrs[i].addr = a.vaddr;
      wrs[i].buf = batch_scratch_.data() + i * block_bytes;
      wrs[i].len = node_->classes().ClassSize(a.class_idx);
    }
    stats_.direct_reads += k;
    auto ns = qp_.PostBatch(wrs, k);
    if (!ns.ok()) {
      // Whole-chain failure (QP already broken): every op inherits it.
      for (size_t i = 0; i < k; ++i) statuses[done + i] = ns.status();
      stats_.direct_read_failures += k;
      if (first.ok()) first = ns.status();
    } else {
      stats_.modeled_ns_total += *ns;
      stats_.direct_read_batches++;
      NodeStatShard& shard = node_->client_stat_shard();
      ++shard.doorbell_batches;
      shard.doorbell_batched_wrs += k;
      for (size_t i = 0; i < k; ++i) {
        const GlobalAddr& a = addrs[done + i];
        Status st = wrs[i].status;
        if (st.ok()) {
          st = ValidateAndExtract(
              batch_scratch_.data() + i * block_bytes,
              node_->classes().ClassSize(a.class_idx), a,
              out + (done + i) * size, size);
        }
        if (!st.ok()) {
          stats_.direct_read_failures++;
          if (st.IsTornRead()) stats_.torn_reads++;
          if (st.IsObjectLocked()) stats_.locked_reads++;
          if (st.IsObjectMoved()) stats_.moved_reads++;
          if (first.ok()) first = st;
        }
        statuses[done + i] = st;
      }
    }
    if (qp_.state() == rdma::QueuePair::State::kError) {
      stats_.qp_reconnects++;
      qp_.Reconnect();
    }
    done += k;
  }
  return first;
}

// ---------------------------------------------------------------------------
// sync::SyncMedium: the scheme's window into this client.
// ---------------------------------------------------------------------------

Status Context::LockRead(rdma::RKey r_key, sim::VAddr vaddr, uint64_t* word) {
  return RawRead(r_key, vaddr, word, sizeof(uint64_t));
}

Status Context::LockReadPair(rdma::RKey r_key, sim::VAddr addr_a,
                             sim::VAddr addr_b, uint64_t* word_a,
                             uint64_t* word_b) {
  if (options_.local || !node_->config().doorbell_batching) {
    CORM_RETURN_NOT_OK(RawRead(r_key, addr_a, word_a, sizeof(uint64_t)));
    return RawRead(r_key, addr_b, word_b, sizeof(uint64_t));
  }
  rdma::WorkRequest wrs[2];
  wrs[0].op = rdma::WorkRequest::Op::kRead;
  wrs[0].r_key = r_key;
  wrs[0].addr = addr_a;
  wrs[0].buf = word_a;
  wrs[0].len = sizeof(uint64_t);
  wrs[1] = wrs[0];
  wrs[1].addr = addr_b;
  wrs[1].buf = word_b;
  auto ns = qp_.PostBatch(wrs, 2);
  if (!ns.ok() || !wrs[0].status.ok() || !wrs[1].status.ok()) {
    if (qp_.state() == rdma::QueuePair::State::kError) {
      stats_.qp_reconnects++;
      qp_.Reconnect();
    }
    if (!ns.ok()) return ns.status();
    return wrs[0].status.ok() ? wrs[1].status : wrs[0].status;
  }
  stats_.modeled_ns_total += *ns;
  NodeStatShard& shard = node_->client_stat_shard();
  ++shard.doorbell_batches;
  shard.doorbell_batched_wrs += 2;
  return Status::OK();
}

Status Context::LockCas(rdma::RKey r_key, sim::VAddr vaddr, uint64_t expected,
                        uint64_t desired, uint64_t* prior) {
  if (options_.local) {
    // Colocated: CPU CAS on the mapped word — globally coherent with
    // remote RNIC atomics (IBV_ATOMIC_GLOB, see Rnic::MttAtomic).
    uint8_t* p = node_->rnic()->address_space()->TranslatePtr(vaddr);
    uint64_t e = expected;
    std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(p))
        .compare_exchange_strong(e, desired, std::memory_order_acq_rel);
    *prior = e;
    return Status::OK();
  }
  auto ns = qp_.CompareSwap(r_key, vaddr, expected, desired, prior);
  if (!ns.ok()) {
    if (ns.status().IsQpBroken()) {
      stats_.qp_reconnects++;
      qp_.Reconnect();
    }
    return ns.status();
  }
  stats_.modeled_ns_total += *ns;
  return Status::OK();
}

Status Context::LockFetchAdd(rdma::RKey r_key, sim::VAddr vaddr,
                             uint64_t addend, uint64_t* prior) {
  if (options_.local) {
    uint8_t* p = node_->rnic()->address_space()->TranslatePtr(vaddr);
    *prior = std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(p))
                 .fetch_add(addend, std::memory_order_acq_rel);
    return Status::OK();
  }
  auto ns = qp_.FetchAdd(r_key, vaddr, addend, prior);
  if (!ns.ok()) {
    if (ns.status().IsQpBroken()) {
      stats_.qp_reconnects++;
      qp_.Reconnect();
    }
    return ns.status();
  }
  stats_.modeled_ns_total += *ns;
  return Status::OK();
}

void Context::CountSyncEvent(sync::SyncEvent event) {
  NodeStatShard& shard = node_->client_stat_shard();
  switch (event) {
    case sync::SyncEvent::kLockAcquire:
      stats_.sync_lock_acquires++;
      ++shard.sync_lock_acquires;
      break;
    case sync::SyncEvent::kLockConflict:
      stats_.sync_lock_conflicts++;
      ++shard.sync_lock_conflicts;
      break;
    case sync::SyncEvent::kLockSteal:
      stats_.sync_lock_steals++;
      ++shard.sync_lock_steals;
      break;
    case sync::SyncEvent::kLockTimeout:
      stats_.sync_lock_timeouts++;
      ++shard.sync_lock_timeouts;
      break;
    case sync::SyncEvent::kEpochFence:
      stats_.sync_epoch_fences++;
      ++shard.sync_epoch_fences;
      break;
  }
}

uint64_t Context::SyncJitterSeed() {
  return node_->config().seed ^ (++retry_seq_ * 0x9e3779b97f4a7c15ULL);
}

Status Context::ScanRead(GlobalAddr* addr, void* buf, size_t size) {
  OpTimer timer(this);
  stats_.scan_reads++;
  const uint32_t slot_size = node_->classes().ClassSize(addr->class_idx);
  const size_t block_bytes = node_->block_bytes();
  const sim::VAddr base = BlockBaseOf(addr->vaddr, block_bytes);
  CORM_RETURN_NOT_OK(RawRead(addr->r_key, base, scratch_.data(), block_bytes));

  const ConsistencyMode mode = node_->config().consistency;
  const uint32_t num_slots = static_cast<uint32_t>(block_bytes / slot_size);
  for (uint32_t slot = 0; slot < num_slots; ++slot) {
    const uint8_t* sptr = scratch_.data() + slot * slot_size;
    const ObjectHeader h =
        ObjectHeader::Unpack(*reinterpret_cast<const uint64_t*>(sptr));
    if (h.obj_id != addr->obj_id || h.lock == LockState::kTombstone) continue;
    if (h.lock != LockState::kFree) {
      return Status::ObjectLocked("object locked during scan");
    }
    if (!SnapshotConsistent(sptr, slot_size, mode)) {
      return Status::TornRead("torn object during scan");
    }
    if (size > PayloadCapacity(slot_size, mode)) {
      return Status::InvalidArgument("read larger than object payload");
    }
    ReadPayload(sptr, slot_size, buf, static_cast<uint32_t>(size), mode);
    const sim::VAddr corrected = base + static_cast<uint64_t>(slot) * slot_size;
    if (corrected != addr->vaddr) stats_.pointer_corrections++;
    addr->vaddr = corrected;  // pointer is direct again (§3.2)
    return Status::OK();
  }
  return Status::NotFound("object not found in block scan");
}

Status Context::ReadWithRecovery(GlobalAddr* addr, void* buf, size_t size,
                                 MovedFallback fallback) {
  // Retry with exponential backoff until the policy deadline: an object
  // can stay locked for the full duration of a block merge, which is real
  // wall time regardless of the modeled time scale. The jitter stream is
  // seeded from the node seed and a per-context sequence number, so a
  // seeded run replays the same backoff schedule.
  RetryState retry(options_.recovery_retry,
                   node_->config().seed ^ (++retry_seq_ * 0x9e3779b97f4a7c15ULL));
  while (retry.NextAttempt()) {
    Status st = DirectRead(*addr, buf, size);
    if (st.ok()) return st;
    if (st.IsObjectMoved()) {
      // Pointer correction on the client side (§3.2.2): re-fetch via scan
      // or an RPC read; both return a corrected pointer. The fallback can
      // itself hit an object mid-compaction (locked/torn) — that is as
      // transient as a failed DirectRead, so it re-enters the backoff loop
      // (§3.2.3: "the read is repeated after a backoff period").
      stats_.failovers++;
      st = fallback == MovedFallback::kScanRead ? ScanRead(addr, buf, size)
                                                : Read(addr, buf, size);
      if (st.ok()) return st;
    }
    if (st.IsTornRead() || st.IsObjectLocked() || st.IsQpBroken() ||
        st.IsObjectMoved()) {
      stats_.retries++;
      sim::Pace(retry.BackoffNs());
      std::this_thread::yield();  // let the compacting worker progress
      continue;
    }
    return st;  // NotFound / Timeout / NetworkError / ...: not retryable here
  }
  stats_.timeouts++;
  return Status::Timeout("read recovery deadline expired (object stayed "
                         "locked, torn, or unreachable)");
}

// ---------------------------------------------------------------------------
// Keyed access layer (DESIGN.md §13).
// ---------------------------------------------------------------------------

Status Context::ProbeBuckets(uint64_t key, GlobalAddr* addr) {
  const index::IndexTableCoords table = node_->index_table();
  if (table.buckets == 0) return Status::NotFound("index table absent");
  const uint64_t b1 = index::BucketOf(key, table.buckets);
  const uint64_t b2 = index::AltBucketOf(key, table.buckets);

  // Snapshot the epoch word and both candidate buckets, then re-read each
  // bucket's seq word. The chain executes in order, so an unchanged, even
  // seq across (snapshot, re-read) proves no writer touched the bucket in
  // between — sync::SeqSnapshotConsistent, the bucket-sized twin of the
  // object seqlock validation.
  uint64_t epoch = 0;
  index::IndexBucket snap[2];
  uint64_t reseq[2] = {0, 0};
  if (options_.local || !node_->config().doorbell_batching) {
    CORM_RETURN_NOT_OK(RawRead(table.r_key, table.base, &epoch, sizeof(epoch)));
    CORM_RETURN_NOT_OK(
        RawRead(table.r_key, table.BucketAddr(b1), &snap[0], sizeof(snap[0])));
    CORM_RETURN_NOT_OK(
        RawRead(table.r_key, table.BucketAddr(b2), &snap[1], sizeof(snap[1])));
    CORM_RETURN_NOT_OK(RawRead(table.r_key, table.BucketAddr(b1), &reseq[0],
                               sizeof(uint64_t)));
    CORM_RETURN_NOT_OK(RawRead(table.r_key, table.BucketAddr(b2), &reseq[1],
                               sizeof(uint64_t)));
  } else {
    rdma::WorkRequest wrs[5];
    for (auto& wr : wrs) {
      wr = rdma::WorkRequest{};
      wr.op = rdma::WorkRequest::Op::kRead;
      wr.r_key = table.r_key;
    }
    wrs[0].addr = table.base;
    wrs[0].buf = &epoch;
    wrs[0].len = sizeof(epoch);
    wrs[1].addr = table.BucketAddr(b1);
    wrs[1].buf = &snap[0];
    wrs[1].len = sizeof(snap[0]);
    wrs[2].addr = table.BucketAddr(b2);
    wrs[2].buf = &snap[1];
    wrs[2].len = sizeof(snap[1]);
    wrs[3].addr = table.BucketAddr(b1);
    wrs[3].buf = &reseq[0];
    wrs[3].len = sizeof(uint64_t);
    wrs[4].addr = table.BucketAddr(b2);
    wrs[4].buf = &reseq[1];
    wrs[4].len = sizeof(uint64_t);
    auto ns = qp_.PostBatch(wrs, 5);
    if (!ns.ok()) {
      if (qp_.state() == rdma::QueuePair::State::kError) {
        stats_.qp_reconnects++;
        qp_.Reconnect();
      }
      return ns.status();
    }
    stats_.modeled_ns_total += *ns;
    NodeStatShard& shard = node_->client_stat_shard();
    ++shard.doorbell_batches;
    shard.doorbell_batched_wrs += 5;
    for (const auto& wr : wrs) {
      CORM_RETURN_NOT_OK(wr.status);
    }
  }

  for (int i = 0; i < 2; ++i) {
    if (!sync::SeqSnapshotConsistent(snap[i].seq, reseq[i])) {
      return Status::TornRead("index bucket snapshot torn");
    }
  }
  for (const index::IndexBucket& bucket : snap) {
    for (const index::IndexEntry& e : bucket.entries) {
      if (!e.Live() || e.key != key) continue;
      if (e.fence_epoch != static_cast<uint16_t>(epoch)) {
        // Sealed-out entry (failover re-home): only the RPC path may
        // vouch for it — and it re-mints the entry under the new epoch.
        return Status::StalePointer("index entry fenced by epoch seal");
      }
      *addr = e.addr;
      return Status::OK();
    }
  }
  // Absence is only a hint too: a concurrent insert may be mid-publish, so
  // the caller confirms through the authoritative RPC lookup.
  return Status::NotFound("key not in index buckets");
}

Status Context::IndexLookupRpc(uint64_t key, GlobalAddr* addr) {
  stats_.index_rpc_fallbacks++;
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kIndexLookup, IndexLookupRequest{key}, &msg->request);
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  IndexLookupResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  *addr = resp.addr;
  return Status::OK();
}

Status Context::Get(uint64_t key, void* buf, size_t size) {
  OpTimer timer(this);
  NodeStatShard& shard = node_->client_stat_shard();
  stats_.index_lookups++;
  ++shard.index_lookups;

  // Fault site: pretend every one-sided resolution step came back stale,
  // driving the op straight down the RPC fallback path.
  bool force_rpc = false;
  uint64_t delay_ns = 0;
  if (auto* inj = sim::GlobalFaultInjector();
      inj != nullptr &&
      inj->ShouldFire(sim::fault_sites::kIndexStaleHint, &delay_ns)) {
    if (delay_ns > 0) sim::Pace(delay_ns);
    force_rpc = true;
  }

  GlobalAddr addr;
  if (!force_rpc) {
    // 1. Cached hint: the steady state is this single validated read.
    auto it = hint_cache_.find(key);
    if (it != hint_cache_.end()) {
      Status st = DirectRead(it->second, buf, size);
      if (st.ok()) {
        stats_.index_one_sided_hits++;
        ++shard.index_one_sided_hits;
        return st;
      }
      hint_cache_.erase(it);
    }
    // 2. One-sided bucket probe, then the validated read on its hint.
    Status st = ProbeBuckets(key, &addr);
    if (st.ok()) {
      st = DirectRead(addr, buf, size);
      if (st.ok()) {
        stats_.index_one_sided_hits++;
        ++shard.index_one_sided_hits;
        hint_cache_[key] = addr;
        return st;
      }
    }
  }
  // 3. Authoritative RPC lookup (self-heals the bucket entry server-side),
  // then a recovering read that rides out compaction locks and moves.
  CORM_RETURN_NOT_OK(IndexLookupRpc(key, &addr));
  Status st = ReadWithRecovery(&addr, buf, size, MovedFallback::kRpcRead);
  if (st.ok()) {
    hint_cache_[key] = addr;
  } else {
    hint_cache_.erase(key);
  }
  return st;
}

Result<GlobalAddr> Context::Put(uint64_t key, const void* buf, size_t size) {
  OpTimer timer(this);
  NodeStatShard& shard = node_->client_stat_shard();
  stats_.index_lookups++;
  ++shard.index_lookups;

  // Fast path: a cached pointer goes straight to the scheme-bracketed
  // write RPC, whose server-side resolution corrects stale hints anyway.
  auto it = hint_cache_.find(key);
  if (it != hint_cache_.end()) {
    GlobalAddr addr = it->second;
    Status st = Write(&addr, buf, size);
    if (st.ok()) {
      stats_.index_one_sided_hits++;
      ++shard.index_one_sided_hits;
      hint_cache_[key] = addr;
      return addr;
    }
    hint_cache_.erase(key);
    if (!st.IsStalePointer() && !st.IsObjectMoved() && !st.IsNotFound()) {
      return st;
    }
  }

  // Authoritative lookup; write in place when the key exists.
  GlobalAddr addr;
  Status lookup = IndexLookupRpc(key, &addr);
  if (lookup.ok()) {
    CORM_RETURN_NOT_OK(Write(&addr, buf, size));
    hint_cache_[key] = addr;
    return addr;
  }
  if (!lookup.IsNotFound()) return lookup;

  // Fresh key: allocate and fill the object *before* publishing it, so a
  // concurrent Get observes either NotFound or the complete value — never
  // a half-written object behind a live entry.
  auto fresh = Alloc(size);
  CORM_RETURN_NOT_OK(fresh.status());
  GlobalAddr obj = *fresh;
  Status wst = Write(&obj, buf, size);
  if (!wst.ok()) {
    Free(&obj).ok();  // best effort: the value never became visible
    return wst;
  }
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kIndexInsert, IndexInsertRequest{key, obj},
                &msg->request);
  Status ist = RpcCallPooled(&msg, ring_);
  if (!ist.ok()) {
    // The insert may or may not have landed (e.g. timeout after apply);
    // leave the object allocated — an orphan is recoverable, a dangling
    // entry to freed memory is not.
    return ist;
  }
  IndexInsertResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  if (resp.existed != 0) {
    // Lost the publish race: write through the winner's object and retire
    // ours.
    Free(&obj).ok();
    GlobalAddr winner = resp.addr;
    CORM_RETURN_NOT_OK(Write(&winner, buf, size));
    hint_cache_[key] = winner;
    return winner;
  }
  hint_cache_[key] = resp.addr;
  return resp.addr;
}

Status Context::Del(uint64_t key) {
  OpTimer timer(this);
  NodeStatShard& shard = node_->client_stat_shard();
  stats_.index_lookups++;
  ++shard.index_lookups;
  hint_cache_.erase(key);

  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kIndexRemove, IndexRemoveRequest{key}, &msg->request);
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  IndexRemoveResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  // The unlink happens before the free: a concurrent keyed lookup sees
  // NotFound rather than a pointer into freed memory. The response pointer
  // carries the owner hint, so this Free lands on the owning worker's ring
  // without the forward hop.
  GlobalAddr addr = resp.addr;
  return Free(&addr);
}

}  // namespace corm::core
