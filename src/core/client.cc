// corm-hotpath
#include "core/client.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "core/object_layout.h"
#include "core/rpc_protocol.h"
#include "sim/latency_model.h"

namespace corm::core {

namespace {
// Stripes contexts across the node's RPC rings.
int NextClientRing(int num_rings) {
  static std::atomic<uint32_t> next{0};
  return static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                          static_cast<uint32_t>(num_rings));
}
}  // namespace

Context::Context(CormNode* node, Options options)
    : node_(node),
      options_(options),
      qp_(node->rnic()),
      rpc_(node->rpc_queue(), node->latency_model(), options.rpc_retry),
      ring_(NextClientRing(node->rpc_queue()->num_rings())),
      scratch_(node->block_bytes()) {}

std::unique_ptr<Context> Context::Create(CormNode* node, Options options) {
  // Private constructor: make_unique cannot reach it. NOLINT(corm-raw-new)
  return std::unique_ptr<Context>(new Context(node, options));
}

// ---------------------------------------------------------------------------
// Transport helpers.
// ---------------------------------------------------------------------------

Status Context::RpcCallPooled(rdma::RpcMessage** msg, int ring_hint) {
  stats_.rpc_calls++;
  rdma::RpcWireStats wire;
  Status st = rpc_.CallPooled(msg, ring_hint, &wire);
  stats_.modeled_ns_total += wire.network_ns + wire.server_extra_ns;
  if (wire.dup_completion) stats_.dup_completions++;
  if (st.IsTimeout()) stats_.timeouts++;
  if (!st.ok() && *msg != nullptr) {
    // Uniform failure contract for callers: the message is gone.
    (*msg)->Unref();
    *msg = nullptr;
  }
  return st;
}

int Context::RingHintFor(const GlobalAddr& addr) const {
  const int hint = addr.OwnerHint();
  return hint >= 0 && hint < node_->rpc_queue()->num_rings() ? hint : ring_;
}

Status Context::RawRead(rdma::RKey r_key, sim::VAddr vaddr, void* buf,
                        size_t len) {
  if (options_.local) {
    // Colocated access: CPU loads through the MMU, no RNIC involved.
    return node_->rnic()->address_space()->ReadVirtual(vaddr, buf, len);
  }
  auto ns = qp_.Read(r_key, vaddr, buf, len);
  if (!ns.ok()) {
    if (ns.status().IsQpBroken()) {
      stats_.qp_reconnects++;
      qp_.Reconnect();
    }
    return ns.status();
  }
  stats_.modeled_ns_total += *ns;
  return Status::OK();
}

// Tracks the modeled duration of one public API call.
class Context::OpTimer {
 public:
  explicit OpTimer(Context* ctx)
      : ctx_(ctx), start_(ctx->stats_.modeled_ns_total) {}
  ~OpTimer() { ctx_->stats_.last_op_ns = ctx_->stats_.modeled_ns_total - start_; }

 private:
  Context* const ctx_;
  const uint64_t start_;
};

// ---------------------------------------------------------------------------
// RPC operations (Table 2).
// ---------------------------------------------------------------------------

Result<GlobalAddr> Context::Alloc(size_t size) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kAlloc, AllocRequest{size}, &msg->request);
  // Any worker can allocate: stay on the client's home ring so load maps
  // to as few workers as there are active clients.
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  AllocResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  return resp.addr;
}

Status Context::Free(GlobalAddr* addr) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kFree, FreeRequest{*addr}, &msg->request);
  // Free is ownership-bound: the owner hint routes it straight to the
  // owning worker's ring, skipping the kForwardedRpc hop.
  Status st = RpcCallPooled(&msg, RingHintFor(*addr));
  if (msg != nullptr) msg->Unref();
  if (st.ok()) *addr = GlobalAddr{};  // the pointer is dead
  return st;
}

Status Context::Read(GlobalAddr* addr, void* buf, size_t size) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kRead,
                ReadRequest{*addr, static_cast<uint32_t>(size)},
                &msg->request);
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  ReadResponse resp;
  Slice payload = DecodeResponse(msg->response, &resp);
  if (payload.size() < size) {
    msg->Unref();
    return Status::Internal("short read payload");
  }
  std::memcpy(buf, payload.data(), size);
  msg->Unref();
  if (resp.addr.vaddr != addr->vaddr) stats_.pointer_corrections++;
  *addr = resp.addr;  // server-corrected pointer (§3.2.1)
  return Status::OK();
}

Status Context::Write(GlobalAddr* addr, const void* buf, size_t size) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kWrite,
                WriteRequest{*addr, static_cast<uint32_t>(size)},
                &msg->request, Slice(static_cast<const char*>(buf), size));
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  WriteResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  if (resp.addr.vaddr != addr->vaddr) stats_.pointer_corrections++;
  *addr = resp.addr;
  return Status::OK();
}

Status Context::ReleasePtr(GlobalAddr* addr) {
  OpTimer timer(this);
  rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
  EncodeRequest(RpcOp::kReleasePtr, ReleasePtrRequest{*addr}, &msg->request);
  CORM_RETURN_NOT_OK(RpcCallPooled(&msg, ring_));
  ReleasePtrResponse resp;
  DecodeResponse(msg->response, &resp);
  msg->Unref();
  *addr = resp.addr;  // canonical pointer in the object's current block
  return Status::OK();
}

// ---------------------------------------------------------------------------
// One-sided reads (§3.2.2, §3.2.3).
// ---------------------------------------------------------------------------

Status Context::ValidateAndExtract(const uint8_t* slot, uint32_t slot_size,
                                   const GlobalAddr& addr, void* buf,
                                   size_t size) {
  const ConsistencyMode mode = node_->config().consistency;
  const ObjectHeader h =
      ObjectHeader::Unpack(*reinterpret_cast<const uint64_t*>(slot));
  if (h.lock == LockState::kTombstone || h.obj_id != addr.obj_id) {
    return Status::ObjectMoved("object not at hinted offset");
  }
  if (h.lock != LockState::kFree) {
    return Status::ObjectLocked("object locked (write or compaction)");
  }
  if (!SnapshotConsistent(slot, slot_size, mode)) {
    return Status::TornRead("consistency metadata mismatch");
  }
  if (size > PayloadCapacity(slot_size, mode)) {
    return Status::InvalidArgument("read larger than object payload");
  }
  ReadPayload(slot, slot_size, buf, static_cast<uint32_t>(size), mode);
  return Status::OK();
}

Status Context::DirectRead(const GlobalAddr& addr, void* buf, size_t size) {
  OpTimer timer(this);
  stats_.direct_reads++;
  const uint32_t slot_size = node_->classes().ClassSize(addr.class_idx);
  uint8_t stack_slot[4096];
  uint8_t* slot =
      slot_size <= sizeof(stack_slot) ? stack_slot : scratch_.data();
  Status st = RawRead(addr.r_key, addr.vaddr, slot, slot_size);
  if (!st.ok()) {
    stats_.direct_read_failures++;
    return st;
  }
  st = ValidateAndExtract(slot, slot_size, addr, buf, size);
  if (!st.ok()) {
    stats_.direct_read_failures++;
    if (st.IsTornRead()) stats_.torn_reads++;
    if (st.IsObjectLocked()) stats_.locked_reads++;
    if (st.IsObjectMoved()) stats_.moved_reads++;
  }
  return st;
}

Status Context::ScanRead(GlobalAddr* addr, void* buf, size_t size) {
  OpTimer timer(this);
  stats_.scan_reads++;
  const uint32_t slot_size = node_->classes().ClassSize(addr->class_idx);
  const size_t block_bytes = node_->block_bytes();
  const sim::VAddr base = BlockBaseOf(addr->vaddr, block_bytes);
  CORM_RETURN_NOT_OK(RawRead(addr->r_key, base, scratch_.data(), block_bytes));

  const ConsistencyMode mode = node_->config().consistency;
  const uint32_t num_slots = static_cast<uint32_t>(block_bytes / slot_size);
  for (uint32_t slot = 0; slot < num_slots; ++slot) {
    const uint8_t* sptr = scratch_.data() + slot * slot_size;
    const ObjectHeader h =
        ObjectHeader::Unpack(*reinterpret_cast<const uint64_t*>(sptr));
    if (h.obj_id != addr->obj_id || h.lock == LockState::kTombstone) continue;
    if (h.lock != LockState::kFree) {
      return Status::ObjectLocked("object locked during scan");
    }
    if (!SnapshotConsistent(sptr, slot_size, mode)) {
      return Status::TornRead("torn object during scan");
    }
    if (size > PayloadCapacity(slot_size, mode)) {
      return Status::InvalidArgument("read larger than object payload");
    }
    ReadPayload(sptr, slot_size, buf, static_cast<uint32_t>(size), mode);
    const sim::VAddr corrected = base + static_cast<uint64_t>(slot) * slot_size;
    if (corrected != addr->vaddr) stats_.pointer_corrections++;
    addr->vaddr = corrected;  // pointer is direct again (§3.2)
    return Status::OK();
  }
  return Status::NotFound("object not found in block scan");
}

Status Context::ReadWithRecovery(GlobalAddr* addr, void* buf, size_t size,
                                 MovedFallback fallback) {
  // Retry with exponential backoff until the policy deadline: an object
  // can stay locked for the full duration of a block merge, which is real
  // wall time regardless of the modeled time scale. The jitter stream is
  // seeded from the node seed and a per-context sequence number, so a
  // seeded run replays the same backoff schedule.
  RetryState retry(options_.recovery_retry,
                   node_->config().seed ^ (++retry_seq_ * 0x9e3779b97f4a7c15ULL));
  while (retry.NextAttempt()) {
    Status st = DirectRead(*addr, buf, size);
    if (st.ok()) return st;
    if (st.IsObjectMoved()) {
      // Pointer correction on the client side (§3.2.2): re-fetch via scan
      // or an RPC read; both return a corrected pointer. The fallback can
      // itself hit an object mid-compaction (locked/torn) — that is as
      // transient as a failed DirectRead, so it re-enters the backoff loop
      // (§3.2.3: "the read is repeated after a backoff period").
      stats_.failovers++;
      st = fallback == MovedFallback::kScanRead ? ScanRead(addr, buf, size)
                                                : Read(addr, buf, size);
      if (st.ok()) return st;
    }
    if (st.IsTornRead() || st.IsObjectLocked() || st.IsQpBroken() ||
        st.IsObjectMoved()) {
      stats_.retries++;
      sim::Pace(retry.BackoffNs());
      std::this_thread::yield();  // let the compacting worker progress
      continue;
    }
    return st;  // NotFound / Timeout / NetworkError / ...: not retryable here
  }
  stats_.timeouts++;
  return Status::Timeout("read recovery deadline expired (object stayed "
                         "locked, torn, or unreachable)");
}

}  // namespace corm::core
