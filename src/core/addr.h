// GlobalAddr: CoRM's 128-bit object pointer (paper §3, Table 2).
//
// "Allocations return 128-bit pointers ... Those pointers include the actual
// 64-bit object address and RDMA-related metadata such as the r_key."
//
// The 64-bit vaddr doubles as the offset hint (§3.2): it points at the slot
// where the object was last known to be. After compaction moved the object
// to a different offset, the hint is stale — the pointer is *indirect* —
// and CoRM locates the object by its block-local object ID instead,
// returning a corrected pointer.

#ifndef CORM_CORE_ADDR_H_
#define CORM_CORE_ADDR_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "rdma/rnic.h"
#include "sim/address_space.h"

namespace corm::core {

struct GlobalAddr {
  sim::VAddr vaddr = 0;      // object virtual address (block base | offset)
  rdma::RKey r_key = 0;      // RDMA key of the block's memory region
  uint16_t obj_id = 0;       // block-local object ID (random, §3.1.2)
  uint8_t class_idx = 0;     // size class (client derives the slot size)
  uint8_t flags = 0;         // kFlagOldBlock: references a released-from block

  // Set by the node when the pointer references an "old" (compacted-away)
  // virtual block (§3.3: "CoRM always notifies the user if it uses an old
  // pointer").
  static constexpr uint8_t kFlagOldBlock = 0x1;

  // Bits 7..4 of `flags` carry an owner-worker hint: (owner worker + 1) of
  // the block the address resolved to, 0 when unknown. Clients use it to
  // push ownership-bound RPCs (Free) straight into the owning worker's ring,
  // avoiding the kForwardedRpc inter-worker hop. Purely an optimization
  // hint — a stale value costs one forward, exactly like no hint.
  static constexpr uint8_t kOwnerHintShift = 4;

  bool IsNull() const { return vaddr == 0; }
  bool ReferencesOldBlock() const { return flags & kFlagOldBlock; }

  // Owner-worker hint, or -1 when absent.
  int OwnerHint() const { return (flags >> kOwnerHintShift) - 1; }
  void SetOwnerHint(int worker) {
    flags = static_cast<uint8_t>(flags & ((1u << kOwnerHintShift) - 1));
    if (worker >= 0 && worker < 15) {
      flags = static_cast<uint8_t>(
          flags | (static_cast<unsigned>(worker + 1) << kOwnerHintShift));
    }
  }

  bool operator==(const GlobalAddr&) const = default;
};

// GlobalAddr is handed to clients and copied byte-wise into RPC payloads,
// so its exact field placement is wire format: pin it at compile time.
static_assert(sizeof(GlobalAddr) == 16, "GlobalAddr must be 128 bits");
static_assert(std::is_trivially_copyable_v<GlobalAddr>,
              "GlobalAddr crosses the wire via memcpy");
static_assert(offsetof(GlobalAddr, vaddr) == 0 &&
                  offsetof(GlobalAddr, r_key) == 8 &&
                  offsetof(GlobalAddr, obj_id) == 12 &&
                  offsetof(GlobalAddr, class_idx) == 14 &&
                  offsetof(GlobalAddr, flags) == 15,
              "GlobalAddr field offsets are wire format (paper Table 2)");

// Base virtual address of the block containing `addr`. All blocks in a node
// share one block size, and virtual ranges are allocated at block
// granularity from sim::AddressSpace::kBase, so block bases are aligned.
inline sim::VAddr BlockBaseOf(sim::VAddr addr, size_t block_bytes) {
  return sim::AddressSpace::kBase +
         ((addr - sim::AddressSpace::kBase) / block_bytes) * block_bytes;
}

}  // namespace corm::core

#endif  // CORM_CORE_ADDR_H_
