// Context: CoRM's client-side library (paper Table 2).
//
//   ctx->Alloc / Free          -- RPC memory management
//   ctx->Read / Write          -- RPC object access (server-side correction)
//   ctx->DirectRead            -- one-sided RDMA read, lock-free; the client
//                                 validates consistency and detects moved
//                                 objects itself (§3.2.2, §3.2.3)
//   ctx->ScanRead              -- one-sided RDMA read of the whole block +
//                                 client-side scan (pointer correction
//                                 without server CPU, §3.2.2)
//   ctx->ReleasePtr            -- release an old virtual address (§3.3)
//
// Pointers are passed by pointer: calls that perform pointer correction
// update them in place, exactly like the addr_t& parameters in Table 2.

#ifndef CORM_CORE_CLIENT_H_
#define CORM_CORE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "core/addr.h"
#include "core/corm_node.h"
#include "core/rpc_protocol.h"
#include "rdma/queue_pair.h"
#include "rdma/rpc_transport.h"
#include "sync/sync_scheme.h"

namespace corm::core {

// Client-observable counters (Fig. 13 counts failed DirectReads).
struct ClientStats {
  uint64_t rpc_calls = 0;
  uint64_t direct_reads = 0;
  uint64_t direct_read_failures = 0;  // torn / locked / moved / qp-broken
  uint64_t torn_reads = 0;
  uint64_t locked_reads = 0;
  uint64_t moved_reads = 0;
  uint64_t scan_reads = 0;
  uint64_t qp_reconnects = 0;
  uint64_t pointer_corrections = 0;  // client-side pointer updates
  uint64_t retries = 0;           // backoff retries inside ReadWithRecovery
  uint64_t timeouts = 0;          // ops that exhausted a RetryPolicy deadline
  uint64_t failovers = 0;         // moved-object fallbacks (scan / RPC read)
  uint64_t dup_completions = 0;   // injected duplicate RPC completions seen
  // Remote-synchronization + doorbell-batching counters (DESIGN.md §12);
  // the same events also land on the node's sync_* / doorbell_* shard
  // counters for cluster-wide aggregation.
  uint64_t sync_lock_acquires = 0;
  uint64_t sync_lock_conflicts = 0;
  uint64_t sync_lock_steals = 0;
  uint64_t sync_lock_timeouts = 0;
  uint64_t sync_epoch_fences = 0;
  uint64_t direct_read_batches = 0;  // chained multi-slot posts issued
  // Keyed access layer (DESIGN.md §13); the same events also land on the
  // node's index_* shard counters for cluster-wide aggregation.
  uint64_t index_lookups = 0;         // keyed lookups started (Get/Put/Del)
  uint64_t index_one_sided_hits = 0;  // resolved without an RPC fallback
  uint64_t index_rpc_fallbacks = 0;   // keyed ops that took the RPC lookup
  // Modeled nanoseconds: network round trips + RNIC faults + charged
  // server-side processing. Benchmarks derive latency/throughput figures
  // from these instead of wall clock (see DESIGN.md §2 on pacing).
  uint64_t modeled_ns_total = 0;
  uint64_t last_op_ns = 0;  // modeled duration of the last public API call
};

// The client context doubles as the sync::SyncMedium its scheme runs
// through: lock words are touched with one-sided verbs on the context's QP
// (CPU atomics when colocated — coherent with RNIC atomics, see
// Rnic::MttAtomic), object snapshots go through the validated DirectRead
// core, and scheme events land on both ClientStats and the node's shards.
class Context : public sync::SyncMedium {
 public:
  struct Options {
    // Colocated client: accesses go through CPU loads (the local half of
    // Fig. 11), no network pacing.
    bool local = false;
    // Bounds every RPC: the transport returns kTimeout instead of spinning
    // forever when the serving node dies mid-request.
    RetryPolicy rpc_retry;
    // Drives ReadWithRecovery's deadline/backoff (the constants previously
    // hard-coded there). Chaos tests shorten both deadlines.
    RetryPolicy recovery_retry;
  };

  // CreateCtx(ip, port) analogue: connects a QP + RPC endpoint to `node`.
  static std::unique_ptr<Context> Create(CormNode* node, Options options);
  static std::unique_ptr<Context> Create(CormNode* node) {
    return Create(node, Options{});
  }

  // --- Table 2 API. ------------------------------------------------------
  Result<GlobalAddr> Alloc(size_t size);
  Status Free(GlobalAddr* addr);
  Status Read(GlobalAddr* addr, void* buf, size_t size);
  Status Write(GlobalAddr* addr, const void* buf, size_t size);
  Status DirectRead(const GlobalAddr& addr, void* buf, size_t size);
  Status ScanRead(GlobalAddr* addr, void* buf, size_t size);
  Status ReleasePtr(GlobalAddr* addr);

  // Chained one-sided read of `n` objects (DESIGN.md §12): all slots are
  // posted as one WR chain per group of kBatchChain — one doorbell + one
  // completion per chain instead of n round trips. `bufs` is a contiguous
  // array of n payload buffers with stride `size`; per-object outcomes land
  // in `statuses[i]` (the same vocabulary as DirectRead). Returns the first
  // per-object failure (OK when all succeeded). Batched reads always use
  // optimistic validation — a single READ WR is the only scheme whose guard
  // chains — so lock schemes apply to DirectRead, not to batches. Falls
  // back to sequential DirectReads when colocated or when
  // config.doorbell_batching is off (the bench A/B lever).
  Status DirectReadBatch(const GlobalAddr* addrs, size_t n, void* bufs,
                         size_t size, Status* statuses);

  // --- Keyed access layer (DESIGN.md §13). -------------------------------
  // The default client surface: objects are addressed by 64-bit key through
  // the node's registered bucket table instead of raw pointers. Get runs
  // one-sided in the steady state — a cached (or bucket-probed) pointer
  // hint followed by a FaRM-style validated read — and falls back to the
  // authoritative kIndexLookup RPC when the hint is stale, torn, or fenced.
  // The pointer API above remains available; both views name the same
  // objects.
  //
  // Inserts or overwrites the value for `key`; returns the object's
  // pointer (also usable with the pointer API).
  Result<GlobalAddr> Put(uint64_t key, const void* buf, size_t size);
  // Reads the value for `key` into `buf`.
  Status Get(uint64_t key, void* buf, size_t size);
  // Unlinks `key` and frees its object. The free is routed by the owner
  // hint the kIndexRemove response stamps into the pointer's flag bits.
  Status Del(uint64_t key);

  // --- Recovery policy helper (client behaviour in §4.3.2). --------------
  enum class MovedFallback { kScanRead, kRpcRead };
  // DirectRead with bounded retry/backoff for transient invalidity and the
  // chosen fallback when the object moved. Corrects `addr` on fallback.
  Status ReadWithRecovery(GlobalAddr* addr, void* buf, size_t size,
                          MovedFallback fallback = MovedFallback::kScanRead);

  const ClientStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ClientStats{}; }

  rdma::QueuePair* queue_pair() { return &qp_; }
  sync::SchemeKind sync_scheme() const { return scheme_->kind(); }

  // --- sync::SyncMedium (the scheme's window into this client). ----------
  Status LockRead(rdma::RKey r_key, sim::VAddr vaddr, uint64_t* word) override;
  Status LockReadPair(rdma::RKey r_key, sim::VAddr addr_a, sim::VAddr addr_b,
                      uint64_t* word_a, uint64_t* word_b) override;
  Status LockCas(rdma::RKey r_key, sim::VAddr vaddr, uint64_t expected,
                 uint64_t desired, uint64_t* prior) override;
  Status LockFetchAdd(rdma::RKey r_key, sim::VAddr vaddr, uint64_t addend,
                      uint64_t* prior) override;
  // The validated snapshot read every scheme guards: RawRead + header/
  // version validation, no retry and no stats (DirectRead layers those).
  Status SnapshotRead(const GlobalAddr& addr, void* buf, size_t size) override;
  void CountSyncEvent(sync::SyncEvent event) override;
  uint64_t SyncJitterSeed() override;

 private:
  class OpTimer;  // modeled-latency scope guard (client.cc)

  // WRs per chained post in DirectReadBatch (bounds the per-context batch
  // scratch; longer batches run as back-to-back chains).
  static constexpr size_t kBatchChain = 16;

  Context(CormNode* node, Options options);

  // One-sided read of `len` bytes at `vaddr` (network or local).
  Status RawRead(rdma::RKey r_key, sim::VAddr vaddr, void* buf, size_t len);

  // The RPC half of Write(); the public Write brackets it with the sync
  // scheme's AcquireWrite/ReleaseWrite.
  Status WriteRpc(GlobalAddr* addr, const void* buf, size_t size);

  // Validates a slot snapshot against `addr`; extracts payload on success.
  Status ValidateAndExtract(const uint8_t* slot, uint32_t slot_size,
                            const GlobalAddr& addr, void* buf, size_t size);

  // Executes a pooled RPC: `*msg` carries the encoded request; on OK the
  // caller decodes msg->response in place and Unrefs. On any failure the
  // message has been released and `*msg` is null.
  Status RpcCallPooled(rdma::RpcMessage** msg, int ring_hint);

  // Ring for an ownership-bound op on `addr`: the stamped owner hint when
  // present (lands in the owning worker's ring, skipping the forward hop),
  // else this client's home ring.
  int RingHintFor(const GlobalAddr& addr) const;

  // --- Keyed lookup internals (DESIGN.md §13). ---------------------------
  // One-sided probe of the key's two candidate buckets (plus the table
  // epoch word), validated against each bucket's seq word via a chained
  // re-read. OK + *addr on a live, unfenced entry; NotFound / TornRead /
  // StalePointer otherwise — all of which the caller converts into the
  // RPC fallback.
  Status ProbeBuckets(uint64_t key, GlobalAddr* addr);
  // Authoritative kIndexLookup RPC (counts index_rpc_fallbacks).
  Status IndexLookupRpc(uint64_t key, GlobalAddr* addr);

  CormNode* const node_;
  const Options options_;
  rdma::QueuePair qp_;
  rdma::RpcClient rpc_;
  // This client's home RPC ring: all its non-ownership-bound ops target one
  // worker's ring, so the node's active worker set matches the offered load
  // (idle workers' rings stay empty and those workers park; contexts are
  // striped across rings round-robin so concurrent clients spread out).
  const int ring_;
  ClientStats stats_;
  std::vector<uint8_t> scratch_;  // block-sized scan buffer
  // kBatchChain block-sized slot images for DirectReadBatch (sized once
  // here so the batch path never allocates).
  std::vector<uint8_t> batch_scratch_;
  uint64_t retry_seq_ = 0;        // deterministic jitter stream position
  // Private key→pointer hint cache: makes the steady-state Get a single
  // validated read (one round trip). Entries are hints, never truth — a
  // failed validation drops the entry and re-resolves through the bucket
  // probe / RPC fallback chain.
  std::unordered_map<uint64_t, GlobalAddr> hint_cache_;
  // The configured synchronization scheme (config.sync_scheme), driving
  // DirectRead guards and Write brackets through this context as medium.
  // Declared last: it captures `this`.
  std::unique_ptr<sync::RemoteSyncScheme> scheme_;
};

}  // namespace corm::core

#endif  // CORM_CORE_CLIENT_H_
