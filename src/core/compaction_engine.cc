// Compaction engine phase handlers (see compaction_engine.h for the state
// machine and ownership notes). lint.sh rule 8 holds this file to a stricter
// standard than the rest of the tree: no unbounded waits of any kind — every
// wait is either a non-blocking poll re-entered on the next slice or a
// Deadline-bounded loop that aborts the run with kTimeout.

#include "core/compaction_engine.h"

#include <algorithm>
#include <utility>

#include "common/cpu_relax.h"
#include "common/lock_rank.h"
#include "common/logging.h"
#include "common/sanitizer.h"
#include "common/thread_annotations.h"
#include "core/addr.h"
#include "core/object_layout.h"
#include "core/probability.h"
#include "index/index_table.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"

namespace corm::core {

namespace {

// True when the two blocks share no object IDs (§3.1.2: CoRM can compact
// two blocks only if the objects in them do not have the same IDs).
bool IdsDisjoint(const alloc::Block& a, const alloc::Block& b) {
  const auto& small = a.id_map().size() <= b.id_map().size() ? a : b;
  const auto& large = a.id_map().size() <= b.id_map().size() ? b : a;
  for (const auto& [id, slot] : small.id_map()) {
    if (large.HasId(static_cast<uint16_t>(id))) return false;
  }
  return true;
}

// Wall-clock bound on waiting out one object's transient writer lock
// during Copy. Writers hold the header lock for a modeled DMA duration
// (microseconds); a lock still held after this budget means something is
// stuck, and the pair rolls back instead of wedging the leader.
constexpr uint64_t kObjectLockDeadlineNs = 1'000'000'000;

}  // namespace

CompactionEngine::CompactionEngine(CormNode* node, Worker* worker)
    : node_(node),
      worker_(worker),
      stats_(node->stat_shard(worker->id())),
      phase_hook_(node->config().compaction_phase_hook) {}

CompactionEngine::~CompactionEngine() = default;

void CompactionEngine::Enqueue(CompactRequest* req) {
  pending_.push_back(req);
}

void CompactionEngine::SetPhase(CompactionPhase next) {
  phase_ = next;
  ++stats_.compaction_phase_transitions;
  if (phase_hook_) phase_hook_(next);
}

void CompactionEngine::BeginRun(CompactRequest* req) {
  req_ = req;
  report_ = CompactionReport{};
  report_.class_idx = req->class_idx;
  status_ = Status::OK();
  plan_.clear();
  plan_cursor_ = 0;
  reclaim_cursor_ = 0;
  src_idx_ = dst_idx_ = SIZE_MAX;
  SetPhase(CompactionPhase::kSelect);
}

void CompactionEngine::FinishRun() {
  CORM_CHECK(replies_.empty());
  pool_.clear();
  plan_.clear();
  collect_deadline_.reset();
  req_->report = report_;
  req_->status = status_;
  req_->done.store(true, std::memory_order_release);
  req_ = nullptr;
  SetPhase(CompactionPhase::kIdle);
}

bool CompactionEngine::Step() {
  ReapZombies();
  if (req_ == nullptr) {
    if (pending_.empty()) return false;
    BeginRun(pending_.front());
    pending_.erase(pending_.begin());
  }
  // Monolithic degradation: unbounded budgets collapse the run back into
  // one call, reproducing the pre-refactor stall profile (the pause bench's
  // baseline). Corrections are still served between internal slices so
  // peers spinning on us cannot deadlock, exactly as RunCompaction did.
  const CormConfig& cfg = node_->config();
  const bool monolithic = cfg.compaction_slice_objects == SIZE_MAX &&
                          cfg.compaction_slice_pairs == SIZE_MAX;
  RunPhaseSlice();
  if (monolithic) {
    // Bounded: Collect is capped by its deadline, and every other phase
    // strictly consumes pool/plan/object state each slice.
    while (req_ != nullptr) {
      if (auto pending = worker_->inbox_.TryPop()) {
        if (pending->kind == WorkerMsg::Kind::kCorrection) {
          worker_->HandleInbox(*pending);
        } else {
          worker_->Send(*pending);  // requeue; processed after the run
        }
      }
      RunPhaseSlice();
    }
  }
  return true;
}

void CompactionEngine::RunPhaseSlice() {
  // Outermost rank for everything a slice touches below (thread allocator,
  // directory, block allocator, trackers). Entered per slice: the rank
  // region is thread-local state and must not span returns to the RPC loop.
  LockRankRegion region(LockRank::kCompactionLeader);
  ++stats_.compaction_slices;
  ++report_.slices;
  switch (phase_) {
    case CompactionPhase::kSelect:
      StepSelect();
      break;
    case CompactionPhase::kCollect:
      StepCollect();
      break;
    case CompactionPhase::kConflictCheck:
      StepConflictCheck();
      break;
    case CompactionPhase::kCopy:
      StepCopy();
      break;
    case CompactionPhase::kIndexRepair:
      StepIndexRepair();
      break;
    case CompactionPhase::kRemap:
      StepRemap();
      break;
    case CompactionPhase::kFixup:
      StepFixup();
      break;
    case CompactionPhase::kReclaim:
      StepReclaim();
      break;
    case CompactionPhase::kIdle:
      break;  // unreachable: Step() only slices an active run
  }
}

// --- Select: validate, fan out, detach local candidates. -------------------

void CompactionEngine::StepSelect() {
  ++stats_.compaction_runs;
  const uint32_t class_idx = req_->class_idx;
  if (!worker_->ClassCompactable(class_idx)) {
    status_ = Status::NotSupported(
        "size class holds more objects than the object-ID space addresses");
    SetPhase(CompactionPhase::kReclaim);  // empty pool: publishes and idles
    return;
  }
  const CormConfig& cfg = node_->config();
  const int nworkers = node_->num_workers();
  for (int w = 0; w < nworkers; ++w) {
    if (w == worker_->id()) continue;
    replies_.push_back(std::make_unique<CollectReply>());
    WorkerMsg msg;
    msg.kind = WorkerMsg::Kind::kCollect;
    msg.class_idx = class_idx;
    msg.max_occupancy = cfg.collection_max_occupancy;
    msg.max_blocks = cfg.compaction_max_blocks;
    msg.collect = replies_.back().get();
    node_->worker(w)->Send(msg);
  }
  // The leader's own blocks are detached only once every peer has donated
  // (end of Collect): while peers are answering, the leader keeps serving
  // owner-bound ops on its blocks — the monolith had them in transit for
  // the whole wait.
  collect_deadline_.emplace(cfg.compaction_collect_deadline_ns);
  SetPhase(CompactionPhase::kCollect);
}

// --- Collect: non-blocking donation poll with a run deadline. --------------

void CompactionEngine::StepCollect() {
  for (auto it = replies_.begin(); it != replies_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      for (auto& block : (*it)->blocks) pool_.push_back(std::move(block));
      it = replies_.erase(it);
    } else {
      ++it;
    }
  }
  if (!replies_.empty()) {
    if (!collect_deadline_->Expired()) return;  // poll again next slice
    // A collector never answered. Its reply slot must outlive this run (a
    // late donation still writes into it), so it moves to the zombie list;
    // ReapZombies adopts whatever arrives later.
    for (auto& reply : replies_) zombies_.push_back(std::move(reply));
    replies_.clear();
    ++stats_.compaction_timeouts;
    status_ = Status::Timeout(
        "compaction collect: a worker did not donate within the deadline");
    SetPhase(CompactionPhase::kReclaim);
    return;
  }
  const CormConfig& cfg = node_->config();
  for (auto& block : worker_->allocator()->CollectBlocks(
           req_->class_idx, cfg.collection_max_occupancy,
           cfg.compaction_max_blocks)) {
    pool_.push_back(std::move(block));
  }
  if (pool_.size() > cfg.compaction_max_blocks) {
    // Return the overflow immediately (most-utilized blocks last).
    std::sort(pool_.begin(), pool_.end(), [](const auto& a, const auto& b) {
      return a->used_slots() < b->used_slots();
    });
    while (pool_.size() > cfg.compaction_max_blocks) {
      worker_->allocator()->AdoptBlock(std::move(pool_.back()));
      pool_.pop_back();
    }
  }
  report_.blocks_collected = pool_.size();
  report_.collection_ns =
      node_->latency_model().CollectionNs(node_->num_workers());
  sim::Pace(report_.collection_ns);
  BuildPlan();
  SetPhase(CompactionPhase::kConflictCheck);
}

void CompactionEngine::BuildPlan() {
  std::vector<alloc::BlockOccupancy> occupancy;
  occupancy.reserve(pool_.size());
  for (size_t i = 0; i < pool_.size(); ++i) {
    occupancy.push_back({i, pool_[i]->used_slots(), pool_[i]->num_slots()});
  }
  const int id_bits = node_->config().object_id_bits;
  const uint64_t slots = pool_.empty() ? 0 : pool_.front()->num_slots();
  plan_ = alloc::PlanMerges(
      occupancy,
      [id_bits, slots](uint64_t b1, uint64_t b2) {
        return CormCompactionProbability(id_bits, slots, b1, b2);
      });
  plan_cursor_ = 0;
  report_.planner_candidates = plan_.size();
}

// --- ConflictCheck: confirm planned pairs against exact ID maps. -----------

size_t CompactionEngine::FallbackDst(size_t src_idx) const {
  const alloc::Block* src = pool_[src_idx].get();
  size_t best = SIZE_MAX;
  for (size_t i = 0; i < pool_.size(); ++i) {
    if (i == src_idx || pool_[i] == nullptr) continue;
    const alloc::Block* dst = pool_[i].get();
    if (src->used_slots() + dst->used_slots() > dst->num_slots()) continue;
    if (best != SIZE_MAX &&
        dst->used_slots() <= pool_[best]->used_slots()) {
      continue;  // only ID-check candidates that beat the incumbent
    }
    if (IdsDisjoint(*src, *dst)) best = i;
  }
  return best;
}

void CompactionEngine::StepConflictCheck() {
  const size_t budget =
      std::max<size_t>(node_->config().compaction_slice_pairs, 1);
  for (size_t step = 0; step < budget; ++step) {
    if (plan_cursor_ >= plan_.size()) {
      SetPhase(CompactionPhase::kReclaim);
      return;
    }
    const alloc::MergeCandidate cand = plan_[plan_cursor_++];
    if (pool_[cand.src_index] == nullptr) continue;  // consumed earlier
    const alloc::Block* src = pool_[cand.src_index].get();
    if (src->Empty()) continue;
    size_t dst_idx = cand.dst_index;
    const alloc::Block* dst =
        pool_[dst_idx] != nullptr ? pool_[dst_idx].get() : nullptr;
    const bool planned_ok =
        dst != nullptr &&
        src->used_slots() + dst->used_slots() <= dst->num_slots() &&
        IdsDisjoint(*src, *dst);
    if (!planned_ok) {
      // The probabilistic ranking proposed a pair the exact check (or the
      // pool's evolution since planning) rejects: fall back to the exact
      // scan the monolith used — most-utilized feasible disjoint block.
      ++report_.planner_rejections;
      ++stats_.compaction_planner_rejections;
      dst_idx = FallbackDst(cand.src_index);
      if (dst_idx == SIZE_MAX) {
        // No destination anywhere: src survives as-is.
        worker_->allocator()->AdoptBlock(std::move(pool_[cand.src_index]));
        continue;
      }
    }
    BeginPair(cand.src_index, dst_idx);
    return;
  }
}

// --- Copy: budgeted per-object lock + move. --------------------------------

void CompactionEngine::BeginPair(size_t src_idx, size_t dst_idx) {
  src_idx_ = src_idx;
  dst_idx_ = dst_idx;
  const alloc::Block* src = pool_[src_idx_].get();
  CORM_CHECK_EQ(src->slot_size(), pool_[dst_idx_]->slot_size());
  live_slots_.clear();
  live_slots_.reserve(src->used_slots());
  for (uint32_t slot = 0; slot < src->num_slots(); ++slot) {
    if (src->SlotAllocated(slot)) live_slots_.push_back(slot);
  }
  copy_cursor_ = 0;
  copied_.clear();
  index_repair_cursor_ = 0;
  index_repair_targets_.clear();
  index_repaired_.clear();
  pair_moved_ = pair_relocated_ = pair_offset_preserved_ = 0;
  pair_bytes_copied_ = 0;
  SetPhase(CompactionPhase::kCopy);
}

void CompactionEngine::StepCopy() {
  const size_t budget =
      std::max<size_t>(node_->config().compaction_slice_objects, 1);
  if (!CopyObjects(budget)) return;  // pair aborted; phase already changed
  if (copy_cursor_ >= live_slots_.size()) {
    // Every object of the pair now has a valid destination copy (written
    // kFree) while the sources hold kCompacting: exactly the window the
    // IndexRepair sub-phase needs to retarget keyed hints safely.
    index_repair_cursor_ = 0;
    index_repair_targets_.clear();
    index_repair_targets_.reserve(copied_.size());
    for (const CopiedObject& obj : copied_) {
      index_repair_targets_.emplace(obj.obj_id, obj.dst_slot);
    }
    SetPhase(CompactionPhase::kIndexRepair);
  }
}

// --- IndexRepair: retarget keyed hints at the destination copies. ----------

void CompactionEngine::StepIndexRepair() {
  // Fault site: widen the src-coordinates window before each repair slice
  // so the lookup-during-compaction tests can race against it.
  uint64_t delay_ns = 0;
  if (auto* inj = sim::GlobalFaultInjector();
      inj != nullptr &&
      inj->ShouldFire(sim::fault_sites::kIndexRepairDelay, &delay_ns)) {
    if (delay_ns > 0) sim::Pace(delay_ns);
  }

  alloc::Block* src = pool_[src_idx_].get();
  alloc::Block* dst = pool_[dst_idx_].get();
  const size_t block_bytes = node_->block_bytes();
  index::IndexTable* table = node_->index_view();
  // Bucket budget per slice: the walk holds one bucket seqlock at a time,
  // so the data plane interleaves between slices like every other phase.
  const size_t budget =
      std::max<size_t>(node_->config().compaction_slice_objects, 1);
  const size_t repaired = table->RepairScan(
      &index_repair_cursor_, budget, [&](index::IndexEntry* e) {
        if (e->addr.class_idx != req_->class_idx) return false;
        // The entry's hint may reference the source block through any of
        // its client-visible bases (canonical or ghost alias): resolve
        // through the directory, exactly like the RPC path does.
        const sim::VAddr base = BlockBaseOf(e->addr.vaddr, block_bytes);
        if (worker_->LookupBlockCached(base).block != src) return false;
        const auto it = index_repair_targets_.find(e->addr.obj_id);
        if (it == index_repair_targets_.end()) return false;
        index_repaired_.push_back({e->key, e->addr});
        e->addr.vaddr = dst->SlotAddr(it->second);
        e->addr.r_key = dst->keys().r_key;
        e->addr.flags = 0;
        e->addr.SetOwnerHint(dst->owner_thread());
        return true;
      });
  stats_.index_repairs += repaired;
  if (index_repair_cursor_ >= table->buckets()) {
    SetPhase(CompactionPhase::kRemap);
  }
}

// Escape: lock hand-off during the object copy — per-object kCompacting
// header locks are CAS-acquired here and *implicitly released* when the
// remap retargets src's bytes at dst's kFree copies (no unlock call exists
// for the analyzer to pair with the acquisition).
bool CompactionEngine::CopyObjects(size_t budget) NO_THREAD_SAFETY_ANALYSIS {
  alloc::Block* src = pool_[src_idx_].get();
  alloc::Block* dst = pool_[dst_idx_].get();
  const uint32_t slot_size = src->slot_size();
  const ConsistencyMode mode = node_->config().consistency;
  const uint32_t capacity = PayloadCapacity(slot_size, mode);
  payload_.resize(capacity);

  for (size_t n = 0; n < budget && copy_cursor_ < live_slots_.size(); ++n) {
    const uint32_t slot = live_slots_[copy_cursor_];
    uint8_t* sptr = worker_->SlotPtr(src->base(), src, slot);

    // 1. Lock the object (kCompacting): readers observe the lock and retry;
    //    writers cannot acquire (§3.2.3). The pool is detached (owner -1),
    //    so no free can tombstone the slot under us; only transient writer
    //    locks are possible, bounded by the deadline below.
    uint64_t w = LoadHeaderWord(sptr);
    Deadline lock_deadline(kObjectLockDeadlineNs);
    for (;;) {
      ObjectHeader h = ObjectHeader::Unpack(w);
      CORM_CHECK(h.lock != LockState::kCompacting &&
                 h.lock != LockState::kTombstone)
          << "unexpected lock state in live slot";
      if (h.lock == LockState::kWriteLocked) {
        if (lock_deadline.Expired()) {
          AbortPair(Status::Timeout(
              "compaction copy: object writer lock never released"));
          return false;
        }
        CpuRelax();  // writers hold the lock briefly
        w = LoadHeaderWord(sptr);
        continue;
      }
      ObjectHeader locked = h;
      locked.lock = LockState::kCompacting;
      if (CasHeaderWord(sptr, w, locked.Pack())) break;
    }

    // 2. Copy into dst, preserving the offset when possible (§3.1.2:
    //    preserving offsets keeps pointers direct).
    const ObjectHeader h = ObjectHeader::Unpack(LoadHeaderWord(sptr));
    uint32_t dslot = slot;
    if (!dst->AllocSlotAt(slot)) {
      auto fresh = dst->AllocSlot();
      CORM_CHECK(fresh.has_value()) << "destination block overflow";
      dslot = *fresh;
      ++pair_relocated_;
    } else {
      ++pair_offset_preserved_;
    }
    ++pair_moved_;
    ReadPayload(sptr, slot_size, payload_.data(), capacity, mode);
    uint8_t* dptr = worker_->SlotPtr(dst->base(), dst, dslot);
    WritePayload(dptr, slot_size, h.version, payload_.data(), capacity, mode);
    ObjectHeader fresh_header = h;
    fresh_header.lock = LockState::kFree;
    StoreHeaderWord(dptr, fresh_header.Pack());
    CORM_CHECK(dst->InsertId(h.obj_id, dslot)) << "ID conflict after check";
    pair_bytes_copied_ += capacity;
    copied_.push_back({slot, dslot, h.obj_id});
    ++copy_cursor_;
    // The object keeps its home block; the vaddr tracker is unaffected.
  }
  return true;
}

void CompactionEngine::AbortPair(Status why) {
  alloc::Block* src = pool_[src_idx_].get();
  alloc::Block* dst = pool_[dst_idx_].get();
  // First undo any keyed-index repairs (newest first): the destination
  // slots are about to be freed, and a repaired entry must never outlive
  // the copy it points at. The sources are still kCompacting here, so a
  // concurrent lookup bounces and retries — it cannot observe the window.
  for (auto it = index_repaired_.rbegin(); it != index_repaired_.rend();
       ++it) {
    node_->index_view()->Repair(it->key, it->prev);
  }
  index_repaired_.clear();
  index_repair_targets_.clear();
  // Undo the copies: release the destination slots and IDs, then unlock the
  // source objects (kCompacting → kFree, the pre-copy state). Readers that
  // bounced off kCompacting simply retry against the unchanged source.
  for (const CopiedObject& obj : copied_) {
    dst->EraseId(obj.obj_id);
    dst->FreeSlot(obj.dst_slot);
    uint8_t* sptr = worker_->SlotPtr(src->base(), src, obj.src_slot);
    ObjectHeader h = ObjectHeader::Unpack(LoadHeaderWord(sptr));
    CORM_CHECK(h.lock == LockState::kCompacting);
    h.lock = LockState::kFree;
    StoreHeaderWord(sptr, h.Pack());
  }
  copied_.clear();
  src_idx_ = dst_idx_ = SIZE_MAX;
  if (why.IsTimeout()) ++stats_.compaction_timeouts;
  status_ = std::move(why);
  SetPhase(CompactionPhase::kReclaim);
}

// --- Remap: one batched MTT repair epoch. ----------------------------------

void CompactionEngine::StepRemap() {
  alloc::Block* src = pool_[src_idx_].get();
  alloc::Block* dst = pool_[dst_idx_].get();
  auto remap_ns = node_->MergeRemap(src, dst);
  if (!remap_ns.ok()) {
    // The remap failed before mutating anything (allocator-level error):
    // surface it and fall through to Reclaim, which adopts the pool back.
    status_ = remap_ns.status();
    SetPhase(CompactionPhase::kReclaim);
    return;
  }
  report_.compaction_ns += *remap_ns;
  sim::Pace(*remap_ns);
  SetPhase(CompactionPhase::kFixup);
}

// --- Fixup: retire src, commit counters, audit dst. ------------------------

void CompactionEngine::StepFixup() {
  alloc::Block* dst = pool_[dst_idx_].get();
  node_->RetireBlock(std::move(pool_[src_idx_]));
  ++report_.blocks_freed;
  ++stats_.blocks_compacted;
  report_.objects_moved += pair_moved_;
  report_.objects_relocated += pair_relocated_;
  stats_.objects_moved += pair_relocated_;
  stats_.objects_offset_preserved += pair_offset_preserved_;
  stats_.compaction_bytes_copied += pair_bytes_copied_;
  if constexpr (kAuditEnabled) {
    // Every merged destination must come out fully consistent: directory
    // resolution for the base and the new ghost alias, header/ID-map
    // agreement, home blocks still resolvable, payload metadata intact.
    Status audit = node_->AuditBlock(*dst);
    CORM_CHECK(audit.ok()) << audit.message();
  }
  if (dst->Full()) {
    // A full block cannot be a destination again; hand it back early so
    // its owner serves ownership-bound ops without waiting for Reclaim.
    worker_->allocator()->AdoptBlock(std::move(pool_[dst_idx_]));
  }
  src_idx_ = dst_idx_ = SIZE_MAX;
  index_repaired_.clear();  // the pair committed; the undo log is dead
  index_repair_targets_.clear();
  SetPhase(CompactionPhase::kConflictCheck);
}

// --- Reclaim: sliced pool hand-back, then publish. -------------------------

void CompactionEngine::StepReclaim() {
  // Adoptions are cheap (owner stamp + list splice); a generous per-slice
  // batch keeps the tail short without re-stalling the data plane.
  size_t budget = std::max<size_t>(node_->config().compaction_slice_pairs,
                                   1) * 4;
  while (reclaim_cursor_ < pool_.size()) {
    if (pool_[reclaim_cursor_] != nullptr) {
      if (budget == 0) return;  // continue next slice
      worker_->allocator()->AdoptBlock(std::move(pool_[reclaim_cursor_]));
      --budget;
    }
    ++reclaim_cursor_;
  }
  FinishRun();
}

// --- Zombie replies & shutdown. --------------------------------------------

void CompactionEngine::ReapZombies() {
  if (zombies_.empty()) return;
  for (auto it = zombies_.begin(); it != zombies_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      // The straggler finally donated; its blocks go straight back into
      // circulation under the leader's allocator.
      for (auto& block : (*it)->blocks) {
        worker_->allocator()->AdoptBlock(std::move(block));
      }
      it = zombies_.erase(it);
    } else {
      ++it;
    }
  }
}

void CompactionEngine::Shutdown() {
  if (req_ != nullptr) {
    if ((phase_ == CompactionPhase::kCopy ||
         phase_ == CompactionPhase::kIndexRepair) &&
        !copied_.empty()) {
      // A pair stopped mid-copy or mid-repair rolls back the same way:
      // AbortPair restores any repaired index entries before it frees the
      // destination copies they pointed at.
      AbortPair(Status::Internal("node stopped during compaction"));
    }
    for (auto& block : pool_) {
      if (block != nullptr) worker_->allocator()->AdoptBlock(std::move(block));
    }
    pool_.clear();
    // Outstanding collectors have also observed stop and will not reply;
    // their slots stay alive in zombies_ until the engine is destroyed
    // (after every worker thread joined).
    for (auto& reply : replies_) zombies_.push_back(std::move(reply));
    replies_.clear();
    status_ = Status::Internal("node stopped during compaction");
    FinishRun();
  }
  for (CompactRequest* req : pending_) {
    req->status = Status::Internal("node stopped during compaction");
    req->done.store(true, std::memory_order_release);
  }
  pending_.clear();
}

}  // namespace corm::core
