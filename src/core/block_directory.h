// corm-hotpath
//
// BlockDirectory: the node's virtual-block-base -> Block* map, rebuilt for
// lock-free readers (paper §4, Figs. 9-11: compaction support must cost
// ~nothing on the data path; FaRM/ScaleStore-style translation tables are
// read without locks for the same reason).
//
// Structure: a fixed power-of-two number of shards, each an open-addressing
// hash table of (atomic key, atomic value) slots. Readers probe with acquire
// loads and take no lock; writers (directory insert/erase and the compaction
// remap retarget) serialize per shard under a RankedSpinLock. A global
// cacheline-padded epoch counter is bumped after every mutation so that
// per-worker lookup caches can validate entries with one load.
//
// Reader safety argument (the lint-rule-6 proof sketch for the escapes
// below):
//  * Publication: a writer inserting a new key stores the packed value
//    first, then the key, both with release order. A reader that
//    acquire-loads the key and sees it therefore observes the value store
//    (release/acquire on the same atomic key object; the value write is
//    sequenced before the key store in the writer).
//  * Update/erase: existing keys are never removed from a table; updates
//    and erases store the value atomically (erase writes 0). A torn mix of
//    key/value is impossible because both are single 64-bit atomics.
//  * Growth: a shard that fills rehashes into a fresh table and publishes
//    it with a release store to the shard's table pointer. Old tables are
//    retired into a per-shard graveyard owned by the shard (freed only at
//    directory destruction), so a reader still probing a stale table
//    dereferences valid memory and sees a consistent — merely stale —
//    snapshot. Stale reads are linearizable to a lookup that completed just
//    before the racing mutation, a schedule already possible today: the
//    caller uses the result after dropping any lock, and every RPC handler
//    re-validates via object headers/IDs. Block* values never dangle
//    because destroyed Block descriptors are retired to the node graveyard
//    for the node's lifetime (see CormNode::RetireBlock).

#ifndef CORM_CORE_BLOCK_DIRECTORY_H_
#define CORM_CORE_BLOCK_DIRECTORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/block.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "sim/address_space.h"

namespace corm::core {

class BlockDirectory {
 public:
  struct Entry {
    alloc::Block* block = nullptr;
    bool is_alias = false;  // base belongs to a compacted-away ghost
  };

  // `num_shards` is rounded up to a power of two.
  explicit BlockDirectory(size_t num_shards = 16);
  ~BlockDirectory();

  BlockDirectory(const BlockDirectory&) = delete;
  BlockDirectory& operator=(const BlockDirectory&) = delete;

  // Lock-free point lookup; {nullptr, false} when absent.
  Entry Lookup(sim::VAddr base) const;

  // Writers (serialized per shard, epoch bumped after the mutation).
  void Insert(sim::VAddr base, alloc::Block* block, bool is_alias);
  void Erase(sim::VAddr base);

  // Compaction retarget (§3.3): `src_base` and every ghost base that
  // aliased src become aliases of `dst`. One epoch bump for the batch.
  void RetargetToAlias(sim::VAddr src_base,
                       const std::vector<sim::VAddr>& ghost_bases,
                       alloc::Block* dst);

  // Monotonic mutation counter; per-worker caches treat an entry stamped
  // with an older epoch as invalid. Acquire so a cache that observes epoch
  // E also observes every table publication that E counted.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Live (non-erased) entries; approximate under concurrent mutation.
  size_t ApproxSize() const;

  // Total writer-lock acquisitions, for the zero-locks-on-read assertion
  // test: a read-heavy phase must not move this counter.
  uint64_t writer_acquires_for_testing() const;

  // Hash shared with the per-worker direct-mapped cache (worker.cc) so both
  // spread block bases (which differ only in a few middle bits) uniformly.
  static uint64_t Mix(uint64_t x) {
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> key{0};  // 0 = never used (block bases are nonzero)
    std::atomic<uint64_t> val{0};  // packed Entry; 0 = absent/erased
  };

  struct Table {
    explicit Table(size_t capacity_pow2)
        : mask(capacity_pow2 - 1),
          // Construction/growth only, never per-op. NOLINT(corm-hotpath-alloc)
          slots(std::make_unique<Slot[]>(capacity_pow2)) {}
    const size_t mask;
    std::unique_ptr<Slot[]> slots;
  };

  struct alignas(64) Shard {
    Shard() : mu(LockRank::kNodeDirectory) {}
    mutable RankedSpinLock mu;  // writers only; readers never touch it
    std::atomic<Table*> table{nullptr};
    size_t live GUARDED_BY(mu) = 0;  // entries with val != 0
    size_t used GUARDED_BY(mu) = 0;  // distinct keys ever stored (incl. erased)
    uint64_t writer_acquires GUARDED_BY(mu) = 0;
    // Current + retired tables, freed only at directory destruction so a
    // reader probing a superseded table never dereferences freed memory.
    std::vector<std::unique_ptr<Table>> tables GUARDED_BY(mu);
  };

  static uint64_t Pack(const Entry& e) {
    return reinterpret_cast<uint64_t>(e.block) | (e.is_alias ? 1u : 0u);
  }
  static Entry Unpack(uint64_t v) {
    Entry e;
    e.block = reinterpret_cast<alloc::Block*>(v & ~uint64_t{1});
    e.is_alias = (v & 1) != 0;
    return e;
  }

  Shard& ShardFor(sim::VAddr base) {
    return shards_[Mix(base) & shard_mask_];
  }
  const Shard& ShardFor(sim::VAddr base) const {
    return shards_[Mix(base) & shard_mask_];
  }

  // Stores `packed` under `base`, growing first when past the load factor.
  void UpsertLocked(Shard& shard, sim::VAddr base, uint64_t packed)
      REQUIRES(shard.mu);
  void GrowLocked(Shard& shard) REQUIRES(shard.mu);
  void BumpEpoch() {
    epoch_.fetch_add(1, std::memory_order_release);
  }

  size_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
  alignas(64) std::atomic<uint64_t> epoch_{1};
};

}  // namespace corm::core

#endif  // CORM_CORE_BLOCK_DIRECTORY_H_
