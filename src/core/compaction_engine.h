// Incremental compaction engine (paper §3.1.2–§3.1.4, Mesh-style pacing).
//
// The old leader monolith (Worker::RunCompaction) held the leader hostage
// for an entire merge: collect every donated block, pair, copy, remap —
// all inside one inbox message, with RPC serving stalled throughout. The
// engine re-expresses the same two-stage protocol as an explicit state
// machine,
//
//   Select → Collect → ConflictCheck → Copy → IndexRepair → Remap → Fixup
//     → Reclaim
//
// stepped one *slice* at a time from the leader's run loop. Each slice is
// bounded by a budget (CormConfig::compaction_slice_objects /
// compaction_slice_pairs), so data-plane RPCs and inbox messages interleave
// between slices instead of queueing behind a monolithic merge. Candidate
// pairs come from the probability-guided planner (alloc::PlanMerges over
// core/probability.cc's p(B1,B2)) instead of first-fit; the exact ID-
// disjointness check then confirms or rejects each planned pair.
//
// Phase semantics:
//   Select        validate the class, fan out kCollect to peers, detach the
//                 leader's own low-occupancy blocks, arm the collect
//                 deadline.
//   Collect       poll donation replies without blocking; when a worker
//                 never answers within compaction_collect_deadline_ns the
//                 run aborts with kTimeout (reply slots survive as zombies
//                 until the straggler writes them). On completion: trim the
//                 pool, pace the modeled collection cost, build the plan.
//   ConflictCheck confirm planned pairs (fit + ID-disjointness); rejected
//                 pairs fall back to an exact scan for the most-utilized
//                 feasible destination. Budget: slice_pairs candidates.
//   Copy          per-object kCompacting lock + payload copy into the
//                 destination, offset-preserving when possible. Budget:
//                 slice_objects per slice; a lock that stays write-held past
//                 a bounded deadline rolls the pair back and aborts.
//   IndexRepair   budgeted walk of the keyed index (DESIGN.md §13):
//                 entries hinting at the pair's moved objects are rewritten
//                 to the destination copies while the source objects still
//                 sit under their kCompacting locks, so a concurrent
//                 one-sided lookup resolves either the (locked, retried)
//                 source or the valid destination copy — never a dangling
//                 hint. Undone entry-by-entry if the pair aborts.
//   Remap         one batched MTT repair epoch retargets src's vaddr (and
//                 chained ghosts) onto dst's frames.
//   Fixup         retire src to the graveyard, audit dst, commit per-pair
//                 counters, re-enter ConflictCheck for the next pair.
//   Reclaim       return surviving pool blocks to the leader's allocator a
//                 few per slice, then publish the report and go idle.
//
// Ownership note: detached pool blocks keep owner_thread == -1 for the
// whole run (the monolith parked them on the leader id). Frees against
// them bounce with ObjectLocked ("ownership in transit", retryable) and
// pointer corrections fall back to the coherent-bytes scan — both paths
// the substrate already handles for in-transit blocks.
//
// Internal header: not part of the public API surface.

#ifndef CORM_CORE_COMPACTION_ENGINE_H_
#define CORM_CORE_COMPACTION_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/block.h"
#include "alloc/fragmentation.h"
#include "common/retry.h"
#include "common/slice.h"
#include "core/corm_node.h"
#include "core/worker.h"

namespace corm::core {

class CompactionEngine {
 public:
  CompactionEngine(CormNode* node, Worker* worker);
  ~CompactionEngine();

  CompactionEngine(const CompactionEngine&) = delete;
  CompactionEngine& operator=(const CompactionEngine&) = delete;

  // Queues a compaction request; the leader's run loop drives it to
  // completion via Step(). Caller-owned reply slot (req->done published
  // with release when the run finishes).
  void Enqueue(CompactRequest* req);

  // True while a run is active or queued (the run loop should keep
  // stepping).
  bool active() const { return req_ != nullptr || !pending_.empty(); }

  // Advances the active run by one bounded slice. Returns true when it did
  // work. When both slice budgets are SIZE_MAX the engine degrades to the
  // pre-refactor monolith: the whole run completes within one Step() call
  // (corrections are still served while waiting on collectors, exactly as
  // RunCompaction did) — the pause bench uses this as its baseline.
  bool Step();

  // Completes the active and queued requests with an error and adopts any
  // collected blocks back into the leader's allocator. Called by the
  // leader thread when its run loop exits; no protocol runs afterwards.
  void Shutdown();

  CompactionPhase phase() const { return phase_; }

 private:
  struct CopiedObject {
    uint32_t src_slot = 0;
    uint32_t dst_slot = 0;
    uint16_t obj_id = 0;
  };

  void BeginRun(CompactRequest* req);
  void FinishRun();
  void SetPhase(CompactionPhase next);
  void RunPhaseSlice();

  void StepSelect();
  void StepCollect();
  void StepConflictCheck();
  void StepCopy();
  void StepIndexRepair();
  void StepRemap();
  void StepFixup();
  void StepReclaim();

  // Builds the probability-guided merge plan over the collected pool.
  void BuildPlan();
  // Exact-scan fallback: most-utilized feasible ID-disjoint destination for
  // pool_[src_idx], or SIZE_MAX.
  size_t FallbackDst(size_t src_idx) const;
  // Prepares the per-pair copy state and enters kCopy.
  void BeginPair(size_t src_idx, size_t dst_idx);
  // Undoes a half-copied pair (frees dst slots, unlocks src objects) and
  // aborts the run with `why`.
  void AbortPair(Status why);
  // Adopts completed zombie replies' blocks back into the allocator.
  void ReapZombies();
  // Copies up to `budget` objects of the active pair; returns false when the
  // pair aborted (lock deadline).
  bool CopyObjects(size_t budget);

  CormNode* const node_;
  Worker* const worker_;
  NodeStatShard& stats_;
  const std::function<void(CompactionPhase)> phase_hook_;

  // Queued requests beyond the active one (Enqueue during an active run).
  std::vector<CompactRequest*> pending_;

  // --- Active-run state (valid while req_ != nullptr). -------------------
  CompactRequest* req_ = nullptr;
  CompactionPhase phase_ = CompactionPhase::kIdle;
  CompactionReport report_;
  Status status_;

  // Collect phase: outstanding donation replies and the run deadline.
  std::vector<std::unique_ptr<CollectReply>> replies_;
  std::optional<Deadline> collect_deadline_;
  // Replies whose worker missed the deadline: kept alive until the
  // straggler publishes done (its blocks are then adopted by ReapZombies).
  std::vector<std::unique_ptr<CollectReply>> zombies_;

  // The collected block pool (entries null out as pairs consume them).
  std::vector<std::unique_ptr<alloc::Block>> pool_;

  // Probability-ranked plan and confirmation cursor.
  std::vector<alloc::MergeCandidate> plan_;
  size_t plan_cursor_ = 0;

  // Active pair (kCopy/kIndexRepair/kRemap/kFixup).
  size_t src_idx_ = SIZE_MAX;
  size_t dst_idx_ = SIZE_MAX;
  std::vector<uint32_t> live_slots_;
  size_t copy_cursor_ = 0;
  std::vector<CopiedObject> copied_;
  // IndexRepair sub-phase state: the bucket-walk cursor, the pair's moved
  // objects by ID (obj_id → dst slot; IDs are pair-unique by the
  // ConflictCheck disjointness guarantee), and the undo log a pair abort
  // replays so no repaired entry outlives its destination copy.
  struct RepairedEntry {
    uint64_t key = 0;
    GlobalAddr prev;
  };
  uint64_t index_repair_cursor_ = 0;
  std::unordered_map<uint16_t, uint32_t> index_repair_targets_;
  std::vector<RepairedEntry> index_repaired_;
  // Pair-local counters, committed into the report/shard only at Fixup so
  // an aborted pair leaves the totals untouched.
  size_t pair_moved_ = 0;
  size_t pair_relocated_ = 0;
  size_t pair_offset_preserved_ = 0;
  uint64_t pair_bytes_copied_ = 0;
  Buffer payload_;  // reusable staging buffer for object copies

  // Reclaim cursor over pool_.
  size_t reclaim_cursor_ = 0;
};

}  // namespace corm::core

#endif  // CORM_CORE_COMPACTION_ENGINE_H_
