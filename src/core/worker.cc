// corm-hotpath
#include "core/worker.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/cpu_relax.h"
#include "common/logging.h"
#include "common/sanitizer.h"
#include "common/thread_annotations.h"
#include "core/compaction_engine.h"
#include "core/object_layout.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"

namespace corm::core {

Worker::Worker(CormNode* node, int id)
    : node_(node),
      id_(id),
      allocator_(id, node->block_allocator_.get()),
      inbox_(1024),
      rng_(node->config().seed * 7919 + static_cast<uint64_t>(id) + 1),
      stats_(node->stat_shard(id)),
      dir_cache_enabled_(node->config().dir_cache),
      scratch_enabled_(node->config().msg_pool),
      dir_cache_(kDirCacheSlots) {  // NOLINT(corm-hotpath-alloc) ctor only
  static_assert((kDirCacheSlots & (kDirCacheSlots - 1)) == 0,
                "direct-mapped cache wants a power-of-two slot count");
  // NOLINT(corm-hotpath-alloc) ctor only
  engine_ = std::make_unique<CompactionEngine>(node, this);
}

Worker::~Worker() = default;

void Worker::Send(WorkerMsg msg) {
  while (!inbox_.TryPush(msg)) {
    CpuRelax();
  }
}

void Worker::Run() {
  node_->BindWorkerThread(id_);
  const size_t batch_max = std::min<size_t>(
      std::max<size_t>(node_->config().poll_batch, 1), kMaxPollBatch);
  const bool idle_park = node_->config().idle_park;
  rdma::RpcMessage* batch[kMaxPollBatch];
  // Consecutive dry polls; reset by any work. Past kIdleYields the worker
  // parks in escalating sleeps instead of re-entering the yield rotation.
  uint32_t idle = 0;
  // Run loop, not a completion wait: bounded by stop_. NOLINT(corm-spin-wait)
  while (!node_->stop_.load(std::memory_order_relaxed)) {
    if (auto msg = inbox_.TryPop()) {
      HandleInbox(*msg);
      idle = 0;
      continue;
    }
    bool served_rpc = false;
    // A paused node (injected crash) stops serving inbound RPCs; queued
    // requests stall until ResumeService or a restart purge, and clients
    // time out per their RetryPolicy.
    if (node_->IsServingRequests()) {
      size_t n = node_->rpc_queue()->PollBatch(id_, batch, batch_max);
      if (n == 0) {
        // Steal — but only from rings whose owner is parked. An awake owner
        // drains its own ring faster than we can, and racing it for its
        // traffic would reset every idle sibling's dry-spell counter,
        // keeping the whole pool spinning on load one worker could serve.
        // A parked owner's ring, by contrast, has nobody else on it: a
        // hinted op that lands there (e.g. an owner-routed Free) would
        // otherwise wait out the owner's sleep.
        const int nw = node_->num_workers();
        for (int i = 1; i < nw && n == 0; ++i) {
          const int r = (id_ + i) % nw;
          if (node_->worker(r)->parked()) {
            n = node_->rpc_queue()->PollBatch(r, batch, batch_max);
          }
        }
      }
      if (n > 0) {
        ++stats_.rpc_batches;
        stats_.rpc_polled += n;
        for (size_t i = 0; i < n; ++i) {
          HandleRpc(batch[i], /*forwarded=*/false);
          // One inbox message between batch items: forwarded ops and
          // correction replies stay responsive under a deep ring.
          if (auto msg = inbox_.TryPop()) HandleInbox(*msg);
        }
        served_rpc = true;
      }
      // Replicated-log ingress (DESIGN.md §11): apply in-sequence records
      // after the RPC batch, behind the same serving gate — a paused
      // (crashed) node stops applying, and its ring records wait in the
      // registered memory until restart.
      if (DrainReplIngress() > 0) served_rpc = true;
    }
    // One compaction slice per loop iteration, strictly *after* the RPC
    // batch: an active run cannot starve the data plane (the point of the
    // sliced engine), and — load-bearing for fairness — at least one ring
    // batch is served between a run finishing and the next run's Select
    // detaching blocks, so owner-bound ops (Free) that bounced off
    // in-transit blocks get a guaranteed window in which to land.
    if (engine_->active()) {
      engine_->Step();
      idle = 0;
      continue;
    }
    if (served_rpc) {
      idle = 0;
      continue;
    }
    // Idle. A yield lets the threads we might be blocking run; once the dry
    // spell outlasts kIdleYields, park in escalating sleeps (capped at
    // ~1 ms). A parked worker's ring is stolen from by awake siblings, so
    // the cap bounds only inbox latency (control-plane messages), not RPC
    // latency. On an oversubscribed host this removes idle workers from the
    // scheduler rotation that every RPC round trip must traverse — the
    // single biggest hot-path cost on a few-core machine.
    ++idle;
    if (!idle_park || idle <= kIdleYields) {
      CpuRelax();
    } else {
      const uint32_t exp = std::min(idle - kIdleYields, 10u);
      parked_.store(true, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(1u << exp));
      parked_.store(false, std::memory_order_relaxed);
    }
  }
  // Stop raced an active run: complete its request (the control-plane
  // caller is still spinning on it) and hand collected blocks back.
  engine_->Shutdown();
  parked_.store(false, std::memory_order_relaxed);
}

void Worker::HandleInbox(WorkerMsg& msg) {
  switch (msg.kind) {
    case WorkerMsg::Kind::kForwardedRpc:
      HandleRpc(msg.rpc, /*forwarded=*/true);
      break;
    case WorkerMsg::Kind::kCorrection: {
      // Only the current owner may touch block metadata; if ownership moved
      // while the query was in flight, the requester re-routes.
      if (msg.block->owner_thread() == id_) {
        auto slot = OwnerLookup(msg.block, msg.obj_id);
        msg.correction->found = slot.ok();
        msg.correction->slot = slot.ok() ? *slot : 0;
      } else {
        msg.correction->found = false;
      }
      msg.correction->done.store(true, std::memory_order_release);
      break;
    }
    case WorkerMsg::Kind::kCollect: {
      if (auto* fi = sim::GlobalFaultInjector(); fi != nullptr &&
          fi->ShouldFire(sim::fault_sites::kCompactionCollectStall)) {
        // Injected stalled collector: swallow the message without ever
        // publishing the reply. The leader's Collect deadline must convert
        // this into kTimeout (the reply slot survives as an engine zombie).
        break;
      }
      msg.collect->blocks = allocator_.CollectBlocks(
          msg.class_idx, msg.max_occupancy, msg.max_blocks);
      msg.collect->done.store(true, std::memory_order_release);
      break;
    }
    case WorkerMsg::Kind::kStats: {
      const uint32_t n = node_->classes().num_classes();
      // Control-plane snapshot (kStats), never the serving path; the reply
      // vectors are sized once per request. NOLINT(corm-hotpath-alloc)
      msg.stats->granted.resize(n);
      msg.stats->used.resize(n);   // NOLINT(corm-hotpath-alloc) control plane
      msg.stats->nblocks.resize(n);  // NOLINT(corm-hotpath-alloc) see above
      for (uint32_t c = 0; c < n; ++c) {
        msg.stats->granted[c] = allocator_.GrantedBytes(c);
        msg.stats->used[c] = allocator_.UsedBytes(c);
        msg.stats->nblocks[c] = allocator_.NumBlocks(c);
      }
      msg.stats->done.store(true, std::memory_order_release);
      break;
    }
    case WorkerMsg::Kind::kCompact:
      // Queued into the engine; Run() drives it one slice per loop
      // iteration, interleaved with RPC batches.
      engine_->Enqueue(msg.compact);
      break;
    case WorkerMsg::Kind::kBulk:
      HandleBulk(msg.bulk);
      break;
    case WorkerMsg::Kind::kAudit: {
      // Runs between operations on this thread, so the allocator is
      // quiescent; pass the compactability rule so ID-map checks apply
      // exactly to the classes that maintain the map.
      msg.audit->status =
          allocator_.Audit([this](uint32_t c) { return ClassCompactable(c); });
      msg.audit->done.store(true, std::memory_order_release);
      break;
    }
  }
}

void Worker::Complete(rdma::RpcMessage* rpc, Status st) {
  rpc->status = std::move(st);
  rpc->done.store(true, std::memory_order_release);
  // The server's reference: a timed-out client may already have abandoned
  // the message, in which case this Unref frees it.
  rpc->Unref();
}

// Charges modeled server-side processing time to the RPC: paces the worker
// and reports the duration back to the client for latency accounting.
namespace {
void Charge(rdma::RpcMessage* rpc, uint64_t ns) {
  rpc->server_extra_ns += ns;
  sim::Pace(ns);
}
}  // namespace

void Worker::HandleRpc(rdma::RpcMessage* rpc, bool forwarded) {
  switch (PeekOp(rpc->request)) {
    case RpcOp::kAlloc:
      HandleAlloc(rpc);
      break;
    case RpcOp::kFree:
      HandleFree(rpc, forwarded);
      break;
    case RpcOp::kRead:
      HandleRead(rpc);
      break;
    case RpcOp::kWrite:
      HandleWrite(rpc);
      break;
    case RpcOp::kReleasePtr:
      HandleReleasePtr(rpc);
      break;
    case RpcOp::kIndexLookup:
      HandleIndexLookup(rpc);
      break;
    case RpcOp::kIndexInsert:
      HandleIndexInsert(rpc);
      break;
    case RpcOp::kIndexRemove:
      HandleIndexRemove(rpc);
      break;
    default:
      Complete(rpc, Status::InvalidArgument("unknown RPC opcode"));
  }
}

// ---------------------------------------------------------------------------
// Allocation.
// ---------------------------------------------------------------------------

bool Worker::ClassCompactable(uint32_t class_idx) const {
  const int bits = node_->config().object_id_bits;
  if (bits <= 0) return false;
  const uint64_t id_space = 1ULL << bits;
  const uint64_t slots =
      node_->block_bytes() / node_->classes().ClassSize(class_idx);
  return slots <= id_space;
}

Result<uint16_t> Worker::DrawObjectId(alloc::Block* block) {
  const int bits = std::min(node_->config().object_id_bits, 16);
  const uint16_t mask =
      bits >= 16 ? 0xffff : static_cast<uint16_t>((1u << std::max(bits, 0)) - 1);
  if (!ClassCompactable(block->class_idx())) {
    // Compaction is disabled for this class; IDs need not be unique and the
    // metadata map is not maintained (§4.4.1).
    return static_cast<uint16_t>(rng_.Next() & mask);
  }
  for (int draw = 0; draw < kIdRandomDraws; ++draw) {
    const auto id = static_cast<uint16_t>(rng_.Next() & mask);
    if (!block->HasId(id)) return id;
  }
  // Dense block: each rejection-sampling draw hits a used ID with
  // probability live/space, so an unbounded loop has no worst-case bound.
  // Scan from a random start instead — a compactable class has
  // slots <= id_space and the caller is allocating into a free slot, so a
  // free ID must exist; the randomized start keeps IDs spread out.
  ++stats_.id_draw_fallbacks;
  const uint32_t space = static_cast<uint32_t>(mask) + 1;
  const auto start = static_cast<uint32_t>(rng_.Next() & mask);
  for (uint32_t i = 0; i < space; ++i) {
    const auto id = static_cast<uint16_t>((start + i) & mask);
    if (!block->HasId(id)) return id;
  }
  return Status::Internal("object ID space exhausted in a compactable block");
}

Result<GlobalAddr> Worker::AllocObject(uint32_t payload_size) {
  auto class_idx = node_->ClassForPayload(payload_size);
  CORM_RETURN_NOT_OK(class_idx.status());

  auto allocation = allocator_.Alloc(*class_idx);
  CORM_RETURN_NOT_OK(allocation.status());
  alloc::Block* block = allocation->block;
  const uint32_t slot = allocation->slot;
  if (allocation->new_block) {
    node_->DirectoryInsert(block->base(), block, /*is_alias=*/false);
    sim::Pace(node_->latency_model().BlockAllocExtraNs());
  }

  auto id = DrawObjectId(block);
  CORM_RETURN_NOT_OK(id.status());
  if (ClassCompactable(block->class_idx())) {
    CORM_CHECK(block->InsertId(*id, slot));
  }

  uint8_t* ptr = SlotPtr(block->base(), block, slot);
  ObjectHeader h;
  h.version = 1;
  h.lock = LockState::kFree;
  h.class_idx = static_cast<uint8_t>(block->class_idx() & 0x3f);
  h.obj_id = *id;
  h.home_page = HomePageOf(block->base());
  // Stamp the consistency metadata before publishing the header.
  WritePayload(ptr, block->slot_size(), h.version, nullptr, 0,
               node_->config().consistency);
  StoreHeaderWord(ptr, h.Pack());

  node_->vaddr_tracker_.OnAlloc(block->base());

  GlobalAddr addr;
  addr.vaddr = block->SlotAddr(slot);
  addr.r_key = block->keys().r_key;
  addr.obj_id = *id;
  addr.class_idx = static_cast<uint8_t>(*class_idx);
  // The allocating worker owns the block: clients route ownership-bound
  // RPCs straight into this worker's ring.
  addr.SetOwnerHint(id_);
  return addr;
}

void Worker::HandleAlloc(rdma::RpcMessage* rpc) {
  AllocRequest req;
  DecodeRequest(rpc->request, &req);
  ++stats_.rpc_allocs;
  rpc->server_extra_ns = 0;
  Charge(rpc, node_->latency_model().AllocExtraNs());
  auto addr = AllocObject(static_cast<uint32_t>(req.size));
  if (!addr.ok()) {
    Complete(rpc, addr.status());
    return;
  }
  EncodeResponse(AllocResponse{*addr}, &rpc->response);
  Complete(rpc, Status::OK());
}

// ---------------------------------------------------------------------------
// Object resolution & pointer correction (§3.2).
// ---------------------------------------------------------------------------

uint8_t* Worker::SlotPtr(sim::VAddr base, const alloc::Block* block,
                         uint32_t slot) {
  return node_->space_->TranslatePtr(
      base + static_cast<uint64_t>(slot) * block->slot_size());
}

Result<uint32_t> Worker::OwnerLookup(const alloc::Block* block,
                                     uint16_t obj_id) {
  auto slot = block->FindId(obj_id);
  if (!slot) return Status::NotFound("object ID not present in block");
  return *slot;
}

Result<uint32_t> Worker::CorrectViaScan(const alloc::Block* block,
                                        sim::VAddr base, uint16_t obj_id) {
  ++stats_.corrections_scan;
  const uint32_t slot_size = block->slot_size();
  const uint32_t num_slots = block->num_slots();
  for (uint32_t slot = 0; slot < num_slots; ++slot) {
    const uint8_t* ptr = node_->space_->TranslatePtr(
        base + static_cast<uint64_t>(slot) * slot_size);
    if (ptr == nullptr) break;
    const ObjectHeader h = ObjectHeader::Unpack(LoadHeaderWord(ptr));
    if (h.lock != LockState::kTombstone && h.obj_id == obj_id) return slot;
  }
  return Status::NotFound("object ID not found by block scan");
}

Result<uint32_t> Worker::CorrectViaOwner(alloc::Block* block,
                                         uint16_t obj_id) {
  ++stats_.corrections_messaging;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int owner = block->owner_thread();
    if (owner == id_) return OwnerLookup(block, obj_id);
    if (owner < 0) {
      // Ownership in transit (block collected for compaction, or retired):
      // fall back to scanning through the client-visible bytes, which stay
      // coherent across remaps.
      return CorrectViaScan(block, block->base(), obj_id);
    }
    CorrectionReply reply;
    WorkerMsg msg;
    msg.kind = WorkerMsg::Kind::kCorrection;
    msg.block = block;
    msg.obj_id = obj_id;
    msg.correction = &reply;
    node_->worker(owner)->Send(msg);
    // Wait for the reply, serving correction queries addressed to us so two
    // workers correcting into each other's blocks cannot deadlock. This is
    // also the §4.3.2 stall: if the owner is busy compacting, we wait.
    while (!reply.done.load(std::memory_order_acquire)) {  // NOLINT(corm-spin-wait)
      if (auto pending = inbox_.TryPop()) {
        if (pending->kind == WorkerMsg::Kind::kCorrection ||
            pending->kind == WorkerMsg::Kind::kStats ||
            pending->kind == WorkerMsg::Kind::kCollect) {
          HandleInbox(*pending);
        } else {
          Send(*pending);  // requeue; processed after we unblock
        }
      } else {
        CpuRelax();
      }
    }
    if (reply.found) return reply.slot;
    // Owner either no longer owns the block (retry) or the ID is gone.
    if (block->owner_thread() == owner) {
      return Status::NotFound("object ID not present in block");
    }
  }
  return Status::Internal("pointer correction ownership churn");
}

// Directory lookup through the worker-private direct-mapped cache.
//
// Freshness: the epoch is read *before* the lookup. If a directory mutation
// lands between the two, the slot caches data at least as fresh as its
// stamp, so the worst case is a conservative refetch on the next access —
// a stamp match can never hide a mutation. A hit whose epoch bump is still
// in flight linearizes as a lookup just before that mutation, exactly the
// schedule a raw lock-free Lookup already admits (see block_directory.h).
CormNode::DirectoryEntry Worker::LookupBlockCached(sim::VAddr base) {
  if (!dir_cache_enabled_) return node_->LookupBlock(base);
  const uint64_t epoch = node_->directory_.epoch();
  DirCacheSlot& slot =
      dir_cache_[BlockDirectory::Mix(base) & (kDirCacheSlots - 1)];
  if (slot.base == base && slot.epoch == epoch) {
    ++stats_.dir_cache_hits;
    return slot.entry;
  }
  ++stats_.dir_cache_misses;
  slot.entry = node_->LookupBlock(base);
  slot.base = base;
  slot.epoch = epoch;
  return slot.entry;
}

Result<Worker::Resolved> Worker::ResolveObject(const GlobalAddr& addr) {
  const size_t block_bytes = node_->block_bytes();
  const sim::VAddr base = BlockBaseOf(addr.vaddr, block_bytes);
  const CormNode::DirectoryEntry entry = LookupBlockCached(base);
  if (entry.block == nullptr) {
    return Status::StalePointer("virtual block released or never allocated");
  }
  Resolved r;
  r.block = entry.block;
  r.base = base;
  r.old_block = entry.is_alias;
  if (r.old_block) {
    ++stats_.old_pointer_uses;
  }

  // Optimistic hinted access (§3.2): load the header at the hinted offset
  // and compare IDs.
  const uint64_t offset = addr.vaddr - base;
  const uint32_t hint_slot =
      static_cast<uint32_t>(offset / r.block->slot_size());
  if (hint_slot < r.block->num_slots()) {
    const uint8_t* ptr = SlotPtr(base, r.block, hint_slot);
    if (ptr != nullptr) {
      const ObjectHeader h = ObjectHeader::Unpack(LoadHeaderWord(ptr));
      if (h.obj_id == addr.obj_id && h.lock != LockState::kTombstone) {
        r.slot = hint_slot;
        return r;
      }
    }
  }

  // Hint is stale: run the configured pointer-correction strategy (§3.2.1).
  Result<uint32_t> slot =
      node_->config().rpc_correction == RpcCorrectionStrategy::kThreadMessaging
          ? CorrectViaOwner(r.block, addr.obj_id)
          : CorrectViaScan(r.block, base, addr.obj_id);
  CORM_RETURN_NOT_OK(slot.status());
  r.slot = *slot;
  r.corrected = true;
  return r;
}

// Builds the corrected pointer sent back to the client: same block base the
// client used (old bases stay valid, §3.3), updated offset hint, plus the
// current owner-worker hint for ring affinity on later ops.
namespace {
GlobalAddr CorrectedAddr(const GlobalAddr& in, const Worker::Resolved& r,
                         uint32_t slot_size) {
  GlobalAddr out = in;
  out.vaddr = r.base + static_cast<uint64_t>(r.slot) * slot_size;
  out.flags = r.old_block ? GlobalAddr::kFlagOldBlock : 0;
  out.SetOwnerHint(r.block->owner_thread());
  return out;
}
}  // namespace

// ---------------------------------------------------------------------------
// Read (§3.2.3 consistency via header seqlock on the RPC path).
// ---------------------------------------------------------------------------

// Escape: seqlock reader — consistency comes from re-reading the header
// word around the payload copy (w1 == w2 proves no writer intervened), a
// protocol outside any capability the analyzer can track.
void Worker::HandleRead(rdma::RpcMessage* rpc) NO_THREAD_SAFETY_ANALYSIS {
  ReadRequest req;
  DecodeRequest(rpc->request, &req);
  ++stats_.rpc_reads;

  auto resolved = ResolveObject(req.addr);
  if (!resolved.ok()) {
    Complete(rpc, resolved.status());
    return;
  }
  alloc::Block* block = resolved->block;
  const ConsistencyMode mode = node_->config().consistency;
  if (req.size > PayloadCapacity(block->slot_size(), mode)) {
    Complete(rpc, Status::InvalidArgument("read larger than object payload"));
    return;
  }
  uint8_t* ptr = SlotPtr(resolved->base, block, resolved->slot);

  ReadResponse resp;
  resp.addr = CorrectedAddr(req.addr, *resolved, block->slot_size());
  resp.size = req.size;
  // Stage the payload in the worker's reusable scratch buffer: resize()
  // only allocates until the high-water mark, so the steady-state read
  // path touches no allocator. The pooling-off bench baseline allocates
  // per op, as the old code did.
  Buffer local;
  Buffer& payload = scratch_enabled_ ? read_scratch_ : local;
  payload.resize(req.size);  // NOLINT(corm-hotpath-alloc) high-water only
  for (int attempt = 0; attempt < 16; ++attempt) {
    const uint64_t w1 = LoadHeaderWord(ptr);
    const ObjectHeader h = ObjectHeader::Unpack(w1);
    if (h.lock == LockState::kWriteLocked ||
        h.lock == LockState::kCompacting) {
      Complete(rpc, Status::ObjectLocked("object locked; retry"));
      return;
    }
    if (h.lock == LockState::kTombstone || h.obj_id != req.addr.obj_id) {
      Complete(rpc, Status::ObjectMoved("object moved during read"));
      return;
    }
    ReadPayload(ptr, block->slot_size(), payload.data(), req.size, mode);
    if (LoadHeaderWord(ptr) == w1) {
      // Validation succeeded: the snapshot happened-after the writer's
      // release in WritePayload/StoreHeaderWord (see sanitizer.h).
      CORM_TSAN_ACQUIRE(ptr);
      EncodeResponse(resp, &rpc->response, Slice(payload.data(), req.size));
      Complete(rpc, Status::OK());
      return;
    }
  }
  Complete(rpc, Status::ObjectLocked("object under heavy write contention"));
}

// ---------------------------------------------------------------------------
// Write.
// ---------------------------------------------------------------------------

void Worker::HandleWrite(rdma::RpcMessage* rpc) {
  WriteRequest req;
  Slice payload = DecodeRequest(rpc->request, &req);
  ++stats_.rpc_writes;

  auto resolved = ResolveObject(req.addr);
  if (!resolved.ok()) {
    Complete(rpc, resolved.status());
    return;
  }
  alloc::Block* block = resolved->block;
  const ConsistencyMode mode = node_->config().consistency;
  if (req.size > PayloadCapacity(block->slot_size(), mode) ||
      payload.size() < req.size) {
    Complete(rpc, Status::InvalidArgument("write larger than object payload"));
    return;
  }
  uint8_t* ptr = SlotPtr(resolved->base, block, resolved->slot);

  // Acquire the object lock (bounded spin over transient writer locks).
  uint64_t w = LoadHeaderWord(ptr);
  for (int attempt = 0;; ++attempt) {
    ObjectHeader h = ObjectHeader::Unpack(w);
    if (h.lock == LockState::kCompacting) {
      Complete(rpc, Status::ObjectLocked("object under compaction"));
      return;
    }
    if (h.lock == LockState::kTombstone || h.obj_id != req.addr.obj_id) {
      Complete(rpc, Status::ObjectMoved("object moved during write"));
      return;
    }
    if (h.lock == LockState::kWriteLocked) {
      if (attempt > 4096) {
        Complete(rpc, Status::ObjectLocked("object write-locked"));
        return;
      }
      CpuRelax();
      w = LoadHeaderWord(ptr);
      continue;
    }
    ObjectHeader locked = h;
    locked.lock = LockState::kWriteLocked;
    if (CasHeaderWord(ptr, w, locked.Pack())) {
      // Locked: bump the version, write payload + per-cacheline versions,
      // then publish the unlocked header. The lock is held for the modeled
      // DMA duration — the window a concurrent DirectRead can observe as
      // locked or torn (Fig. 13).
      ObjectHeader next = locked;
      next.version = NextVersion(h.version);
      next.lock = LockState::kFree;
      if constexpr (kAuditEnabled) {
        // Version bytes may only ever advance by one per committed write;
        // anything else would let a torn read validate against a reused
        // version (paper §2.2.1).
        CORM_CHECK(VersionMonotonic(h.version, next.version));
      }
      if (auto* fi = sim::GlobalFaultInjector(); fi != nullptr) {
        uint64_t hold_ns = 0;
        if (fi->ShouldFire(sim::fault_sites::kTornWrite, &hold_ns)) {
          // Injected torn window: publish the new cacheline versions with
          // only a prefix of the payload behind them and linger before the
          // full write below. A concurrent lock-free snapshot lands on a
          // genuinely torn object and must reject it (locked header or
          // version mismatch); the final state is consistent either way.
          WritePayload(ptr, block->slot_size(), next.version, payload.data(),
                       req.size / 2, mode);
          Charge(rpc, hold_ns != 0 ? hold_ns : 2000);
        }
      }
      WritePayload(ptr, block->slot_size(), next.version, payload.data(),
                   req.size, mode);
      Charge(rpc, node_->latency_model().WriteLockHoldNs(req.size));
      StoreHeaderWord(ptr, next.Pack());
      break;
    }
    // CAS failure reloaded `w`; retry.
  }

  WriteResponse resp;
  resp.addr = CorrectedAddr(req.addr, *resolved, block->slot_size());
  EncodeResponse(resp, &rpc->response);
  Complete(rpc, Status::OK());
}

// ---------------------------------------------------------------------------
// Replicated-log apply path (DESIGN.md §11).
// ---------------------------------------------------------------------------

size_t Worker::DrainReplIngress() {
  const size_t n =
      node_->repl_ingress_count_.load(std::memory_order_acquire);
  if (n == 0) return 0;
  size_t applied = 0;
  const size_t nw = static_cast<size_t>(node_->num_workers());
  for (size_t i = static_cast<size_t>(id_); i < n; i += nw) {
    rdma::ReplLogRing* ring = node_->repl_ingress_[i].get();
    for (int b = 0; b < kReplApplyBatch; ++b) {
      rdma::ReplRecordHeader hdr;
      if (!ring->NextRecord(&hdr, &repl_record_buf_)) break;
      if (!ApplyReplRecord(hdr, repl_record_buf_)) break;
      // Advance only after the record is durably applied (or provably
      // inapplicable): a crash between apply and Advance re-applies on
      // restart, which the version check makes idempotent.
      ring->Advance();
      ++applied;
    }
  }
  return applied;
}

bool Worker::ApplyReplRecord(const rdma::ReplRecordHeader& hdr,
                             const Buffer& payload) {
  GlobalAddr addr;
  static_assert(sizeof(addr) == sizeof(hdr.addr),
                "record address field carries a full GlobalAddr");
  std::memcpy(&addr, hdr.addr, sizeof(addr));

  auto resolved = ResolveObject(addr);
  if (!resolved.ok()) {
    // The object was freed (or never landed): records may outlive objects,
    // so drop it and advance rather than wedging the ring.
    ++stats_.repl_apply_orphans;
    return true;
  }
  alloc::Block* block = resolved->block;
  const ConsistencyMode mode = node_->config().consistency;
  const uint32_t cap = PayloadCapacity(block->slot_size(), mode);
  if (hdr.kind == rdma::kReplRecordData &&
      (payload.size() < sizeof(rdma::ReplObjectHeader) ||
       payload.size() > cap)) {
    ++stats_.repl_apply_orphans;  // image cannot fit this object
    return true;
  }
  uint8_t* ptr = SlotPtr(resolved->base, block, resolved->slot);

  // Acquire the object seqlock — HandleWrite's discipline, but with a short
  // contention bound: a locked or kCompacting object defers the record (it
  // stays at the ring head for the next drain pass) instead of spinning,
  // because this worker must get back to its RPC ring. This deferral is the
  // whole replication/compaction hand-off: while compaction holds the slot,
  // the log simply waits.
  uint64_t w = LoadHeaderWord(ptr);
  for (int attempt = 0;; ++attempt) {
    ObjectHeader h = ObjectHeader::Unpack(w);
    if (h.lock == LockState::kCompacting) return false;
    if (h.lock == LockState::kTombstone || h.obj_id != addr.obj_id) {
      ++stats_.repl_apply_orphans;
      return true;
    }
    if (h.lock == LockState::kWriteLocked) {
      if (attempt > 64) return false;
      CpuRelax();
      w = LoadHeaderWord(ptr);
      continue;
    }
    ObjectHeader locked = h;
    locked.lock = LockState::kWriteLocked;
    if (!CasHeaderWord(ptr, w, locked.Pack())) continue;  // reloaded w

    // Locked. Read the stored replica-image header and decide.
    rdma::ReplObjectHeader stored;
    ReadPayload(ptr, block->slot_size(),
                reinterpret_cast<uint8_t*>(&stored), sizeof(stored), mode);
    const uint8_t* img = nullptr;  // full image to install, when applying
    size_t img_len = 0;
    if (hdr.kind == rdma::kReplRecordSeal) {
      if (hdr.epoch > stored.epoch &&
          sizeof(stored) + stored.len <= cap) {
        // Seal: rewrite the stored image verbatim with only the epoch
        // bumped. The object crc excludes the epoch by design, so the
        // image stays self-consistent without recomputing payload sums.
        const size_t full = sizeof(stored) + stored.len;
        repl_seal_scratch_.resize(full);  // NOLINT(corm-hotpath-alloc) high-water only
        ReadPayload(ptr, block->slot_size(), repl_seal_scratch_.data(),
                    full, mode);
        stored.epoch = hdr.epoch;
        std::memcpy(repl_seal_scratch_.data(), &stored, sizeof(stored));
        img = repl_seal_scratch_.data();
        img_len = full;
        // The seal also fences lock state (DESIGN.md §12): bump the node's
        // sync epoch so lease_rw lock words minted before the failover are
        // reset by their next acquirer, exactly like stale-epoch records.
        node_->SealSyncEpoch();
      } else {
        ++stats_.repl_apply_dups;  // already sealed to this epoch or newer
      }
    } else {
      rdma::ReplObjectHeader rec;
      std::memcpy(&rec, payload.data(), sizeof(rec));
      if (hdr.epoch < stored.epoch) {
        // Epoch fence: a record shipped before a failover sealed its epoch
        // must never overwrite post-seal state (fault site repl.seal_race
        // proves this path).
        ++stats_.repl_fenced_records;
      } else if (rec.version <= stored.version) {
        ++stats_.repl_apply_dups;  // retransmit or reordered older write
      } else {
        img = payload.data();
        img_len = payload.size();
      }
    }

    if (img == nullptr) {
      StoreHeaderWord(ptr, w);  // release the lock, nothing changed
      return true;
    }
    ObjectHeader next = locked;
    next.version = NextVersion(h.version);
    next.lock = LockState::kFree;
    if constexpr (kAuditEnabled) {
      CORM_CHECK(VersionMonotonic(h.version, next.version));
    }
    WritePayload(ptr, block->slot_size(), next.version, img, img_len, mode);
    sim::Pace(node_->latency_model().WriteLockHoldNs(img_len));
    StoreHeaderWord(ptr, next.Pack());
    ++stats_.repl_applied_records;
    return true;
  }
}

// ---------------------------------------------------------------------------
// Free (ownership-bound: forwarded to the block owner, §3.1.4 invariant).
// ---------------------------------------------------------------------------

void Worker::MaybeReleaseEmptyBlock(alloc::Block* block) {
  if (!block->Empty()) return;
  // An empty block has no live homed objects of its own, and every ghost
  // that aliased it has been released (their homed objects lived here).
  auto owned = allocator_.DetachBlock(block);
  node_->DirectoryErase(owned->base());
  node_->vaddr_tracker_.OnBlockDestroyed(owned->base());
  // The drained descriptor goes to the graveyard: a concurrent lock-free
  // directory reader (or a sibling's cached entry) may still dereference
  // the Block object for a short window after the erase.
  node_->RetireBlock(node_->block_allocator_->DestroyBlock(std::move(owned)));
}

void Worker::ReleaseGhost(const GhostToRelease& ghost) {
  node_->ReleaseGhostAction(ghost);
}

Status Worker::FreeResolved(const Resolved& r) {
  alloc::Block* block = r.block;
  uint8_t* ptr = SlotPtr(r.base, block, r.slot);
  uint64_t w = LoadHeaderWord(ptr);
  for (int attempt = 0;; ++attempt) {
    ObjectHeader h = ObjectHeader::Unpack(w);
    if (h.lock == LockState::kCompacting) {
      return Status::ObjectLocked("object under compaction");
    }
    if (h.lock == LockState::kTombstone) {
      return Status::NotFound("double free");
    }
    if (h.lock == LockState::kWriteLocked) {
      if (attempt > 4096) return Status::ObjectLocked("object write-locked");
      CpuRelax();
      w = LoadHeaderWord(ptr);
      continue;
    }
    ObjectHeader dead = h;
    dead.lock = LockState::kTombstone;
    if (CasHeaderWord(ptr, w, dead.Pack())) {
      if (ClassCompactable(block->class_idx())) block->EraseId(h.obj_id);
      const bool empty = allocator_.Free(block, r.slot);
      auto ghost = node_->vaddr_tracker_.OnFree(HomeVaddrOf(h.home_page));
      if (ghost) ReleaseGhost(*ghost);
      if (empty) MaybeReleaseEmptyBlock(block);
      return Status::OK();
    }
  }
}

void Worker::HandleFree(rdma::RpcMessage* rpc, bool forwarded) {
  FreeRequest req;
  DecodeRequest(rpc->request, &req);
  if (!forwarded) {
    // Count on first receipt; the op may be forwarded to the owner.
    ++stats_.rpc_frees;
  }

  // Route to the block owner first (only the owner mutates block metadata).
  const sim::VAddr base = BlockBaseOf(req.addr.vaddr, node_->block_bytes());
  const CormNode::DirectoryEntry entry = LookupBlockCached(base);
  if (entry.block == nullptr) {
    Complete(rpc, Status::StalePointer("virtual block released"));
    return;
  }
  const int owner = entry.block->owner_thread();
  if (owner != id_) {
    if (owner < 0) {
      // Block in transit to the compaction leader; the client retries.
      Complete(rpc, Status::ObjectLocked("block ownership in transit"));
      return;
    }
    ++stats_.forwarded_ops;
    WorkerMsg msg;
    msg.kind = WorkerMsg::Kind::kForwardedRpc;
    msg.rpc = rpc;
    node_->worker(owner)->Send(msg);
    return;  // the owner completes the RPC
  }
  Charge(rpc, node_->latency_model().FreeExtraNs());

  auto resolved = ResolveObject(req.addr);
  if (!resolved.ok()) {
    Complete(rpc, resolved.status());
    return;
  }
  Status st = FreeResolved(*resolved);
  if (st.ok()) {
    FreeResponse resp;
    resp.addr = GlobalAddr{};  // freed: the pointer is dead
    EncodeResponse(resp, &rpc->response);
  }
  Complete(rpc, std::move(st));
}

// ---------------------------------------------------------------------------
// ReleasePtr (§3.3): re-home the object to its current block so the old
// virtual address can be reused once all such objects are released.
// ---------------------------------------------------------------------------

void Worker::HandleReleasePtr(rdma::RpcMessage* rpc) {
  ReleasePtrRequest req;
  DecodeRequest(rpc->request, &req);
  ++stats_.rpc_releases;

  auto resolved = ResolveObject(req.addr);
  if (!resolved.ok()) {
    Complete(rpc, resolved.status());
    return;
  }
  alloc::Block* block = resolved->block;
  uint8_t* ptr = SlotPtr(resolved->base, block, resolved->slot);

  uint64_t w = LoadHeaderWord(ptr);
  for (int attempt = 0;; ++attempt) {
    ObjectHeader h = ObjectHeader::Unpack(w);
    if (h.lock == LockState::kCompacting) {
      Complete(rpc, Status::ObjectLocked("object under compaction"));
      return;
    }
    if (h.lock == LockState::kTombstone || h.obj_id != req.addr.obj_id) {
      Complete(rpc, Status::ObjectMoved("object moved during release"));
      return;
    }
    if (h.lock == LockState::kWriteLocked) {
      if (attempt > 4096) {
        Complete(rpc, Status::ObjectLocked("object write-locked"));
        return;
      }
      CpuRelax();
      w = LoadHeaderWord(ptr);
      continue;
    }
    const sim::VAddr old_home = HomeVaddrOf(h.home_page);
    const sim::VAddr new_home = block->base();
    if (old_home == new_home) break;  // nothing to release
    ObjectHeader next = h;
    next.home_page = HomePageOf(new_home);
    if (CasHeaderWord(ptr, w, next.Pack())) {
      auto ghost = node_->vaddr_tracker_.OnRehome(old_home, new_home);
      if (ghost) ReleaseGhost(*ghost);
      break;
    }
  }

  // The canonical pointer now lives in the current block.
  ReleasePtrResponse resp;
  resp.addr = req.addr;
  resp.addr.vaddr = block->SlotAddr(resolved->slot);
  resp.addr.r_key = block->keys().r_key;
  resp.addr.flags = 0;
  resp.addr.SetOwnerHint(block->owner_thread());
  EncodeResponse(resp, &rpc->response);
  // Paper §4.1: the release itself adds ~0.3 us on top of the RPC.
  Charge(rpc, 300);
  Complete(rpc, Status::OK());
}

// ---------------------------------------------------------------------------
// Keyed index operations (DESIGN.md §13).
// ---------------------------------------------------------------------------

void Worker::HandleIndexLookup(rdma::RpcMessage* rpc) {
  IndexLookupRequest req;
  DecodeRequest(rpc->request, &req);
  // Every kIndexLookup is, by construction, a one-sided probe that gave up
  // (stale hint, torn bucket, fenced entry, or a cold cache): count it as
  // the fallback it is.
  ++stats_.index_rpc_fallbacks;

  index::IndexEntry entry;
  if (!node_->index_view()->Lookup(req.key, &entry)) {
    Complete(rpc, Status::NotFound("key not in index"));
    return;
  }
  auto resolved = ResolveObject(entry.addr);
  if (!resolved.ok()) {
    // The entry outlived its object (block released under it). Unlink it so
    // later one-sided probes stop chasing the dangling hint.
    if (node_->index_view()->Remove(req.key)) ++stats_.index_repairs;
    Complete(rpc, Status::NotFound("index entry outlived its object"));
    return;
  }
  const GlobalAddr canonical =
      CorrectedAddr(entry.addr, *resolved, resolved->block->slot_size());
  const bool fenced =
      entry.fence_epoch != static_cast<uint16_t>(node_->index_view()->Epoch());
  if (fenced || canonical.vaddr != entry.addr.vaddr ||
      canonical.flags != entry.addr.flags) {
    // Self-healing repair: re-mint the entry with the corrected pointer,
    // the live owner hint, and the current epoch, so the next one-sided
    // probe hits without falling back here again.
    if (node_->index_view()->Repair(req.key, canonical)) {
      ++stats_.index_repairs;
    }
  }
  EncodeResponse(IndexLookupResponse{canonical}, &rpc->response);
  Complete(rpc, Status::OK());
}

void Worker::HandleIndexInsert(rdma::RpcMessage* rpc) {
  IndexInsertRequest req;
  DecodeRequest(rpc->request, &req);

  auto resolved = ResolveObject(req.addr);
  if (!resolved.ok()) {
    Complete(rpc, resolved.status());
    return;
  }
  const GlobalAddr canonical =
      CorrectedAddr(req.addr, *resolved, resolved->block->slot_size());
  IndexInsertResponse resp;
  GlobalAddr existing;
  Status st = node_->index_view()->Insert(req.key, canonical, &existing);
  if (st.code() == StatusCode::kAlreadyExists) {
    // Publish race: the entry is live and points at the winner's object.
    resp.addr = existing;
    resp.existed = 1;
  } else if (st.ok()) {
    resp.addr = canonical;
    resp.existed = 0;
  } else {
    Complete(rpc, st);  // bucket pair full or lock timeout
    return;
  }
  EncodeResponse(resp, &rpc->response);
  Complete(rpc, Status::OK());
}

void Worker::HandleIndexRemove(rdma::RpcMessage* rpc) {
  IndexRemoveRequest req;
  DecodeRequest(rpc->request, &req);

  index::IndexEntry entry;
  if (!node_->index_view()->Lookup(req.key, &entry)) {
    Complete(rpc, Status::NotFound("key not in index"));
    return;
  }
  // Correct the pointer before unlinking so the response carries the owning
  // worker's ring hint (GlobalAddr flags bits 7..4) and the client's
  // follow-up Free routes straight to the owner's ring. A failed resolve
  // still unlinks: the entry is dead weight either way.
  GlobalAddr out = entry.addr;
  if (auto resolved = ResolveObject(entry.addr); resolved.ok()) {
    out = CorrectedAddr(entry.addr, *resolved, resolved->block->slot_size());
  }
  node_->index_view()->Remove(req.key);
  EncodeResponse(IndexRemoveResponse{out}, &rpc->response);
  Complete(rpc, Status::OK());
}

// ---------------------------------------------------------------------------
// Bulk loader (benchmark/test path, bypasses the RPC wire).
// ---------------------------------------------------------------------------

void Worker::HandleBulk(BulkRequest* req) {
  if (req->is_alloc) {
    // Bulk loader: benchmark/test path, bypasses the RPC wire entirely.
    req->out_addrs.reserve(req->count);  // NOLINT(corm-hotpath-alloc)
    for (size_t i = 0; i < req->count; ++i) {
      auto addr = AllocObject(req->payload_size);
      if (!addr.ok()) {
        req->status = addr.status();
        break;
      }
      // Deterministic payload for later verification.
      const sim::VAddr base =
          BlockBaseOf(addr->vaddr, node_->block_bytes());
      const CormNode::DirectoryEntry entry = LookupBlockCached(base);
      alloc::Block* block = entry.block;
      uint8_t* ptr = SlotPtr(base, block, block->SlotFor(addr->vaddr));
      Buffer pattern(req->payload_size);
      PatternFill(req->index_base + i, pattern.data(),
                  static_cast<uint32_t>(pattern.size()));
      WritePayload(ptr, block->slot_size(), /*version=*/1, pattern.data(),
                   static_cast<uint32_t>(pattern.size()),
                   node_->config().consistency);
      req->out_addrs.push_back(*addr);  // NOLINT(corm-hotpath-alloc) bulk path
    }
  } else {
    std::vector<GlobalAddr> not_mine;
    for (const GlobalAddr& addr : req->free_addrs) {
      const sim::VAddr base = BlockBaseOf(addr.vaddr, node_->block_bytes());
      const CormNode::DirectoryEntry entry = LookupBlockCached(base);
      if (entry.block == nullptr) {
        req->status = Status::StalePointer("bulk free: unknown block");
        continue;
      }
      if (entry.block->owner_thread() != id_) {
        not_mine.push_back(addr);  // NOLINT(corm-hotpath-alloc) bulk path
        continue;
      }
      auto resolved = ResolveObject(addr);
      if (!resolved.ok()) {
        req->status = resolved.status();
        continue;
      }
      Status st = FreeResolved(*resolved);
      if (!st.ok()) req->status = std::move(st);
    }
    req->free_addrs = std::move(not_mine);  // returned for re-routing
  }
  req->done.store(true, std::memory_order_release);
}

}  // namespace corm::core
