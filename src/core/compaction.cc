// Compaction leader (paper §3.1.2–§3.1.4): two-stage protocol — block
// collection (ownership transfer via messages) followed by block compaction
// (conflict check, object copy, virtual-address remap).

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/cpu_relax.h"
#include "common/lock_rank.h"
#include "common/logging.h"
#include "common/sanitizer.h"
#include "common/thread_annotations.h"
#include "core/object_layout.h"
#include "core/worker.h"
#include "sim/latency_model.h"

namespace corm::core {

namespace {

// True when the two blocks share no object IDs (§3.1.2: CoRM can compact
// two blocks only if the objects in them do not have the same IDs).
bool IdsDisjoint(const alloc::Block& a, const alloc::Block& b) {
  const auto& small = a.id_map().size() <= b.id_map().size() ? a : b;
  const auto& large = a.id_map().size() <= b.id_map().size() ? b : a;
  for (const auto& [id, slot] : small.id_map()) {
    if (large.HasId(static_cast<uint16_t>(id))) return false;
  }
  return true;
}

}  // namespace

void Worker::RunCompaction(CompactRequest* req) {
  // Outermost rank: everything the leader touches below (thread allocator,
  // directory, block allocator, trackers) must rank higher.
  LockRankRegion region(LockRank::kCompactionLeader);
  const uint32_t class_idx = req->class_idx;
  CompactionReport report;
  report.class_idx = class_idx;
  ++stats_.compaction_runs;

  if (!ClassCompactable(class_idx)) {
    req->status = Status::NotSupported(
        "size class holds more objects than the object-ID space addresses");
    req->done.store(true, std::memory_order_release);
    return;
  }

  const CormConfig& cfg = node_->config();
  const int nworkers = node_->num_workers();

  // --- Stage 1: block collection (§3.1.4). ------------------------------
  std::vector<std::unique_ptr<CollectReply>> replies;
  for (int w = 0; w < nworkers; ++w) {
    if (w == id_) continue;
    replies.push_back(std::make_unique<CollectReply>());
    WorkerMsg msg;
    msg.kind = WorkerMsg::Kind::kCollect;
    msg.class_idx = class_idx;
    msg.max_occupancy = cfg.collection_max_occupancy;
    msg.max_blocks = cfg.compaction_max_blocks;
    msg.collect = replies.back().get();
    node_->worker(w)->Send(msg);
  }
  std::vector<std::unique_ptr<alloc::Block>> pool = allocator_.CollectBlocks(
      class_idx, cfg.collection_max_occupancy, cfg.compaction_max_blocks);
  for (auto& reply : replies) {
    // Same-process worker reply; the worker cannot die independently.
    while (!reply->done.load(std::memory_order_acquire)) {  // NOLINT(corm-spin-wait)
      // Serve correction queries while waiting so no worker deadlocks on us.
      if (auto pending = inbox_.TryPop()) {
        if (pending->kind == WorkerMsg::Kind::kCorrection) {
          HandleInbox(*pending);
        } else {
          Send(*pending);
        }
      } else {
        CpuRelax();
      }
    }
    for (auto& block : reply->blocks) {
      block->set_owner_thread(id_);
      pool.push_back(std::move(block));
    }
  }
  for (auto& block : pool) block->set_owner_thread(id_);
  if (pool.size() > cfg.compaction_max_blocks) {
    // Return the overflow immediately (most-utilized blocks last).
    std::sort(pool.begin(), pool.end(), [](const auto& a, const auto& b) {
      return a->used_slots() < b->used_slots();
    });
    while (pool.size() > cfg.compaction_max_blocks) {
      allocator_.AdoptBlock(std::move(pool.back()));
      pool.pop_back();
    }
  }
  report.blocks_collected = pool.size();
  report.collection_ns = node_->latency_model().CollectionNs(nworkers);
  sim::Pace(report.collection_ns);

  // --- Stage 2: block compaction. ----------------------------------------
  // Greedy pairing: take the least-utilized block as the source (fewer
  // objects, fewer conflicts, §3.1.4) and merge it into the most-utilized
  // compatible destination. Blocks are indexed by utilization in a bucket
  // map so each pairing is near O(log n) instead of a sorted-vector erase.
  std::map<uint32_t, std::vector<size_t>> buckets;  // used -> pool indices
  for (size_t i = 0; i < pool.size(); ++i) {
    buckets[pool[i]->used_slots()].push_back(i);
  }

  auto pop_valid = [&](uint32_t used) -> size_t {
    auto it = buckets.find(used);
    while (it != buckets.end() && !it->second.empty()) {
      const size_t idx = it->second.back();
      it->second.pop_back();
      // Lazily skip consumed blocks and stale utilization entries.
      if (pool[idx] != nullptr && pool[idx]->used_slots() == used) return idx;
      if (it->second.empty()) break;
    }
    if (it != buckets.end() && it->second.empty()) buckets.erase(it);
    return SIZE_MAX;
  };

  while (!buckets.empty()) {
    const uint32_t src_used = buckets.begin()->first;
    const size_t src_idx = pop_valid(src_used);
    if (src_idx == SIZE_MAX) continue;
    alloc::Block* src = pool[src_idx].get();

    // Search destinations from the highest feasible utilization downward.
    size_t dst_idx = SIZE_MAX;
    const uint32_t max_dst_used = src->num_slots() - src_used;
    auto it = buckets.upper_bound(max_dst_used);
    while (dst_idx == SIZE_MAX && it != buckets.begin()) {
      --it;
      auto& entries = it->second;
      for (size_t e = entries.size(); e-- > 0 && dst_idx == SIZE_MAX;) {
        const size_t idx = entries[e];
        if (pool[idx] == nullptr || idx == src_idx ||
            pool[idx]->used_slots() != it->first) {
          // Stale entry: drop it (repositioned copies exist elsewhere).
          entries.erase(entries.begin() + static_cast<ptrdiff_t>(e));
          continue;
        }
        if (IdsDisjoint(*src, *pool[idx])) dst_idx = idx;
      }
      if (entries.empty()) it = buckets.erase(it);
    }
    if (dst_idx == SIZE_MAX) {
      // No destination: src survives as-is (it was already popped).
      allocator_.AdoptBlock(std::move(pool[src_idx]));
      continue;
    }

    alloc::Block* dst = pool[dst_idx].get();
    auto moved = MergeBlocks(std::move(pool[src_idx]), dst, &report);
    if (!moved.ok()) {
      req->status = moved.status();
      req->done.store(true, std::memory_order_release);
      return;
    }
    ++report.blocks_freed;
    ++stats_.blocks_compacted;
    // Reposition dst under its new utilization (or retire it when full —
    // a full block cannot be a destination and was never a source).
    if (dst->used_slots() < dst->num_slots()) {
      buckets[dst->used_slots()].push_back(dst_idx);
    } else {
      allocator_.AdoptBlock(std::move(pool[dst_idx]));
    }
  }

  // Adopt any remaining blocks (full destinations already adopted above).
  for (auto& block : pool) {
    if (block != nullptr) allocator_.AdoptBlock(std::move(block));
  }

  req->report = report;
  req->status = Status::OK();
  req->done.store(true, std::memory_order_release);
}

// Escape: lock hand-off during block merge — per-object kCompacting header
// locks are CAS-acquired in step 1 and *implicitly released* when the remap
// retargets src's bytes at dst's kFree copies (no unlock call exists for
// the analyzer to pair with the acquisition).
Result<size_t> Worker::MergeBlocks(std::unique_ptr<alloc::Block> src,
                                   alloc::Block* dst,
                                   CompactionReport* report)
    // Escape rationale above: kCompacting locks released by remap, not unlock.
    NO_THREAD_SAFETY_ANALYSIS {
  const uint32_t slot_size = src->slot_size();
  CORM_CHECK_EQ(slot_size, dst->slot_size());
  const ConsistencyMode mode = node_->config().consistency;
  const uint32_t capacity = PayloadCapacity(slot_size, mode);
  std::vector<uint8_t> payload(capacity);

  // 1. Lock every live object in src (kCompacting): readers observe the
  //    lock and retry; writers cannot acquire (§3.2.3).
  std::vector<uint32_t> live_slots;
  live_slots.reserve(src->used_slots());
  for (uint32_t slot = 0; slot < src->num_slots(); ++slot) {
    if (!src->SlotAllocated(slot)) continue;
    live_slots.push_back(slot);
    uint8_t* sptr = SlotPtr(src->base(), src.get(), slot);
    uint64_t w = LoadHeaderWord(sptr);
    for (;;) {
      ObjectHeader h = ObjectHeader::Unpack(w);
      CORM_CHECK(h.lock != LockState::kCompacting &&
                 h.lock != LockState::kTombstone)
          << "unexpected lock state in live slot";
      if (h.lock == LockState::kWriteLocked) {
        CpuRelax();  // writers hold the lock briefly
        w = LoadHeaderWord(sptr);
        continue;
      }
      ObjectHeader locked = h;
      locked.lock = LockState::kCompacting;
      if (CasHeaderWord(sptr, w, locked.Pack())) break;
    }
  }

  // 2. Copy each object into dst, preserving the offset when possible
  //    (§3.1.2: preserving offsets keeps pointers direct).
  size_t relocated = 0;
  for (uint32_t slot : live_slots) {
    uint8_t* sptr = SlotPtr(src->base(), src.get(), slot);
    ObjectHeader h = ObjectHeader::Unpack(LoadHeaderWord(sptr));

    uint32_t dslot = slot;
    if (!dst->AllocSlotAt(slot)) {
      auto fresh = dst->AllocSlot();
      CORM_CHECK(fresh.has_value()) << "destination block overflow";
      dslot = *fresh;
      ++relocated;
      report->objects_relocated++;
      ++stats_.objects_moved;
    } else {
      ++stats_.objects_offset_preserved;
    }
    report->objects_moved++;

    ReadPayload(sptr, slot_size, payload.data(), capacity, mode);
    uint8_t* dptr = SlotPtr(dst->base(), dst, dslot);
    WritePayload(dptr, slot_size, h.version, payload.data(), capacity, mode);
    ObjectHeader fresh_header = h;
    fresh_header.lock = LockState::kFree;
    StoreHeaderWord(dptr, fresh_header.Pack());
    CORM_CHECK(dst->InsertId(h.obj_id, dslot)) << "ID conflict after check";
    // The object keeps its home block; the vaddr tracker is unaffected.
  }
  // Transfer the used-slot accounting performed above via AllocSlot*.

  // 3. Remap src's virtual range (and chained ghosts) onto dst's physical
  //    pages, repair the RNIC, release src's physical pages, and update the
  //    node directory + ghost tracker. Modeled time paced afterwards.
  auto remap_ns = node_->MergeRemap(src.get(), dst);
  CORM_RETURN_NOT_OK(remap_ns.status());
  report->compaction_ns += *remap_ns;

  // 4. Retire the source block descriptor (kept alive in the graveyard so
  //    concurrent correction routing never dangles).
  node_->RetireBlock(std::move(src));
  if constexpr (kAuditEnabled) {
    // Every merged destination must come out fully consistent: directory
    // resolution for the base and the new ghost alias, header/ID-map
    // agreement, home blocks still resolvable, payload metadata intact.
    Status audit = node_->AuditBlock(*dst);
    CORM_CHECK(audit.ok()) << audit.message();
  }
  sim::Pace(*remap_ns);
  return relocated;
}

}  // namespace corm::core
