// corm-hotpath
#include "core/block_directory.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "common/mutex.h"

namespace corm::core {

namespace {
constexpr size_t kInitialTableCap = 64;  // slots per shard at construction

size_t CeilPow2(size_t v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}
}  // namespace

static_assert(alignof(alloc::Block) > 1,
              "packed directory values steal Block*'s low bit");

BlockDirectory::BlockDirectory(size_t num_shards) {
  const size_t n = CeilPow2(num_shards == 0 ? 1 : num_shards);
  shard_mask_ = n - 1;
  // Shard array + initial tables: startup-only. NOLINT(corm-hotpath-alloc)
  shards_ = std::make_unique<Shard[]>(n);
  for (size_t i = 0; i < n; ++i) {
    Shard& s = shards_[i];
    LockGuard<RankedSpinLock> lock(s.mu);
    // NOLINT(corm-hotpath-alloc): construction, not the serving path.
    s.tables.push_back(std::make_unique<Table>(kInitialTableCap));
    s.table.store(s.tables.back().get(), std::memory_order_release);
  }
}

BlockDirectory::~BlockDirectory() = default;

BlockDirectory::Entry BlockDirectory::Lookup(sim::VAddr base) const {
  const Shard& s = ShardFor(base);
  // Acquire pairs with the release publication in GrowLocked: every slot of
  // the observed table is initialized and holds a consistent prefix of the
  // shard's history (see the header's reader safety argument).
  const Table* t = s.table.load(std::memory_order_acquire);
  const size_t mask = t->mask;
  size_t i = Mix(base) & mask;
  for (size_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
    const uint64_t k = t->slots[i].key.load(std::memory_order_acquire);
    if (k == 0) return Entry{};  // end of probe chain: key absent
    if (k == base) {
      return Unpack(t->slots[i].val.load(std::memory_order_acquire));
    }
  }
  return Entry{};  // table fully probed (cannot happen below max load)
}

void BlockDirectory::Insert(sim::VAddr base, alloc::Block* block,
                            bool is_alias) {
  CORM_CHECK_NE(base, 0u);
  Shard& s = ShardFor(base);
  {
    LockGuard<RankedSpinLock> lock(s.mu);
    ++s.writer_acquires;
    UpsertLocked(s, base, Pack(Entry{block, is_alias}));
  }
  BumpEpoch();
}

void BlockDirectory::Erase(sim::VAddr base) {
  Shard& s = ShardFor(base);
  {
    LockGuard<RankedSpinLock> lock(s.mu);
    ++s.writer_acquires;
    Table* t = s.table.load(std::memory_order_relaxed);
    const size_t mask = t->mask;
    size_t i = Mix(base) & mask;
    for (size_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
      const uint64_t k = t->slots[i].key.load(std::memory_order_relaxed);
      if (k == 0) return;  // absent: nothing to erase, no epoch bump
      if (k == base) {
        if (t->slots[i].val.exchange(0, std::memory_order_release) != 0) {
          --s.live;  // key stays as a tombstone; probe chains stay intact
          break;
        }
        return;  // already erased
      }
    }
  }
  BumpEpoch();
}

void BlockDirectory::RetargetToAlias(sim::VAddr src_base,
                                     const std::vector<sim::VAddr>& ghost_bases,
                                     alloc::Block* dst) {
  const uint64_t packed = Pack(Entry{dst, /*is_alias=*/true});
  {
    Shard& s = ShardFor(src_base);
    LockGuard<RankedSpinLock> lock(s.mu);
    ++s.writer_acquires;
    UpsertLocked(s, src_base, packed);
  }
  for (sim::VAddr base : ghost_bases) {
    Shard& s = ShardFor(base);
    LockGuard<RankedSpinLock> lock(s.mu);
    ++s.writer_acquires;
    UpsertLocked(s, base, packed);
  }
  // One bump for the batch: caches revalidate once the whole retarget is
  // visible. A reader racing the batch sees some bases already retargeted —
  // each individual entry is valid (old and new blocks share frames after
  // the remap, §3.3), so partial visibility is safe.
  BumpEpoch();
}

void BlockDirectory::UpsertLocked(Shard& s, sim::VAddr base, uint64_t packed) {
  Table* t = s.table.load(std::memory_order_relaxed);
  // Grow at 3/4 of distinct keys (live + tombstones) so probe chains stay
  // short and the reader's bounded probe always terminates on an empty key.
  if ((s.used + 1) * 4 > (t->mask + 1) * 3) {
    GrowLocked(s);
    t = s.table.load(std::memory_order_relaxed);
  }
  const size_t mask = t->mask;
  size_t i = Mix(base) & mask;
  for (;; i = (i + 1) & mask) {
    const uint64_t k = t->slots[i].key.load(std::memory_order_relaxed);
    if (k == base) {
      // Existing key (live or tombstoned): a single atomic value store is
      // the whole update; readers see old or new, never a mix.
      if (t->slots[i].val.exchange(packed, std::memory_order_release) == 0) {
        ++s.live;
      }
      return;
    }
    if (k == 0) {
      // Fresh slot: publish value before key (release/release) so a reader
      // that sees the key also sees the value — the header's publication
      // argument.
      t->slots[i].val.store(packed, std::memory_order_release);
      t->slots[i].key.store(base, std::memory_order_release);
      ++s.used;
      ++s.live;
      return;
    }
  }
}

void BlockDirectory::GrowLocked(Shard& s) {
  Table* old = s.table.load(std::memory_order_relaxed);
  // Size for live entries only: growth drops tombstones, so a shard that
  // churns (alloc/free of blocks) stays compact.
  const size_t cap = CeilPow2(std::max(kInitialTableCap, s.live * 4));
  // Growth is O(blocks) and runs on block alloc/destroy, not per-RPC;
  // retired tables persist for readers. NOLINT(corm-hotpath-alloc)
  auto fresh = std::make_unique<Table>(cap);
  size_t live = 0;
  for (size_t i = 0; i <= old->mask; ++i) {
    const uint64_t k = old->slots[i].key.load(std::memory_order_relaxed);
    if (k == 0) continue;
    const uint64_t v = old->slots[i].val.load(std::memory_order_relaxed);
    if (v == 0) continue;  // tombstone: dropped
    size_t j = Mix(k) & fresh->mask;
    // Not a wait: a linear probe over the private, not-yet-published table,
    // bounded by its capacity (load factor < 1). NOLINT(corm-spin-wait)
    while (fresh->slots[j].key.load(std::memory_order_relaxed) != 0) {
      j = (j + 1) & fresh->mask;
    }
    // Plain-ish stores are fine pre-publication; the release store of the
    // table pointer below publishes them all.
    fresh->slots[j].val.store(v, std::memory_order_relaxed);
    fresh->slots[j].key.store(k, std::memory_order_relaxed);
    ++live;
  }
  CORM_CHECK_EQ(live, s.live);
  s.used = s.live;
  s.table.store(fresh.get(), std::memory_order_release);
  // Shard growth, not per-op; the old table stays alive for stale readers.
  s.tables.push_back(std::move(fresh));  // NOLINT(corm-hotpath-alloc)
}

size_t BlockDirectory::ApproxSize() const {
  size_t n = 0;
  for (size_t i = 0; i <= shard_mask_; ++i) {
    const Shard& s = shards_[i];
    LockGuard<RankedSpinLock> lock(s.mu);
    n += s.live;
  }
  return n;
}

uint64_t BlockDirectory::writer_acquires_for_testing() const {
  uint64_t n = 0;
  for (size_t i = 0; i <= shard_mask_; ++i) {
    const Shard& s = shards_[i];
    LockGuard<RankedSpinLock> lock(s.mu);
    n += s.writer_acquires;
  }
  return n;
}

}  // namespace corm::core
