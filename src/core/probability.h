// Compaction-probability model (paper §3.4, Figure 7).
//
// Two blocks B1, B2 of the same class (capacity s objects each, identifier
// space of n distinct values, holding b1 and b2 objects) can be compacted
// iff b1 + b2 <= s and no identifier collides:
//
//     p(B1,B2) = C(n - b1, b2) / C(n, b2)       if b1 + b2 <= s
//              = 0                              otherwise
//
// For Mesh the "identifier" is the slot offset, so n = s; for CoRM-x the
// identifiers are random x-bit IDs, so n = 2^x.

#ifndef CORM_CORE_PROBABILITY_H_
#define CORM_CORE_PROBABILITY_H_

#include <cstdint>

namespace corm::core {

// The general formula above.
double CompactionProbability(uint64_t n, uint64_t s, uint64_t b1, uint64_t b2);

// Mesh's offset-conflict probability: identifier space = slot count.
double MeshCompactionProbability(uint64_t s, uint64_t b1, uint64_t b2);

// CoRM-x with x-bit random object IDs. A class whose blocks hold more
// objects than 2^x can address is not compactable (probability 0) — the
// hybrid-mode motivation (paper §4.4.1).
double CormCompactionProbability(int id_bits, uint64_t s, uint64_t b1,
                                 uint64_t b2);

}  // namespace corm::core

#endif  // CORM_CORE_PROBABILITY_H_
