#include "core/probability.h"

#include "common/math_util.h"

namespace corm::core {

double CompactionProbability(uint64_t n, uint64_t s, uint64_t b1,
                             uint64_t b2) {
  if (b1 + b2 > s) return 0.0;
  if (b2 == 0 || b1 == 0) return 1.0;
  if (b1 > n) return 0.0;
  return BinomialRatio(n - b1, n, b2);
}

double MeshCompactionProbability(uint64_t s, uint64_t b1, uint64_t b2) {
  return CompactionProbability(/*n=*/s, s, b1, b2);
}

double CormCompactionProbability(int id_bits, uint64_t s, uint64_t b1,
                                 uint64_t b2) {
  const uint64_t n = 1ULL << id_bits;
  if (s > n) return 0.0;  // class not addressable with this ID width
  return CompactionProbability(n, s, b1, b2);
}

}  // namespace corm::core
