// Cluster: multiple CoRM memory nodes composed into one distributed shared
// memory (the paper's deployment setting, §1-§2: "the memory of multiple
// different physical nodes is viewed as a single unified memory space").
//
// Each node is a full CormNode (own substrate, workers, RNIC); the node id
// a pointer belongs to travels in the upper bits of the 128-bit pointer's
// flags byte, so DSM pointers remain 128 bits and keep working across
// compactions on their home node.
//
// Failure handling: the cluster runs a heartbeat/lease failure detector.
// Heartbeat() probes every node (reachability + whether its workers are
// serving) and feeds per-node miss counters; consecutive misses escalate
// a node from alive to suspect to dead, and a single successful probe (a
// lease renewal) revives it. Placement (PickNode), cluster-wide compaction
// and the replication/migration layers consult the detector instead of
// polling the raw reachability flag, so suspicion spreads without every
// caller re-probing a dead node.

#ifndef CORM_DSM_CLUSTER_H_
#define CORM_DSM_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/corm_node.h"
#include "index/index_layout.h"

namespace corm::dsm {

// Bits 1..7 of GlobalAddr::flags carry the owning node id (bit 0 remains
// the kFlagOldBlock notification bit). 127 nodes suffice for the rack-scale
// deployments the paper targets.
inline constexpr int kMaxNodes = 127;

inline int NodeOf(const core::GlobalAddr& addr) { return addr.flags >> 1; }

inline void SetNode(core::GlobalAddr* addr, int node) {
  addr->flags = static_cast<uint8_t>((addr->flags & 0x1) |
                                     (static_cast<uint8_t>(node) << 1));
}

// Hash ranges the keyed address space is partitioned into (DESIGN.md §13).
// Each range has one sticky home node; a key's range never changes, and a
// range moves only through an explicit RehomeDeadNode — never silently on a
// failed probe, because moving a live range abandons its acked data.
inline constexpr int kKeyRanges = 64;

inline int KeyRangeOf(uint64_t key) {
  return static_cast<int>(index::MixKey(key) % kKeyRanges);
}

// Object placement policy for new allocations.
enum class Placement {
  kRoundRobin,    // spread allocations uniformly
  kLeastLoaded,   // place on the node with the least active memory
};

// Detector verdict for one node.
enum class NodeHealth {
  kAlive,    // lease current
  kSuspect,  // missed heartbeats; stop placing new data here
  kDead,     // lease expired; fail over reads, skip writes/compaction
};

struct FailureDetectorConfig {
  // Consecutive missed heartbeats before a node turns suspect / dead.
  int suspect_after = 1;
  int dead_after = 3;
};

// Lease-style failure detector over heartbeat outcomes. Lock-free: health
// is derived from a per-node miss counter, so probes and readers never
// serialize. ReportSuccess models a lease renewal and revives the node
// instantly; KillNode/ReviveNode-style shims jump states via MarkDead /
// Reset without waiting for probes.
class FailureDetector {
 public:
  FailureDetector(int num_nodes, FailureDetectorConfig config)
      : config_(config), misses_(num_nodes) {
    for (auto& m : misses_) m = std::make_unique<std::atomic<int>>(0);
  }

  void ReportSuccess(int node) {
    if (misses_[node]->exchange(0, std::memory_order_acq_rel) >=
        config_.dead_after) {
      revivals_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void ReportFailure(int node) {
    const int before = misses_[node]->fetch_add(1, std::memory_order_acq_rel);
    if (before + 1 == config_.dead_after) {
      deaths_.fetch_add(1, std::memory_order_relaxed);
    }
    // Cap so a long outage cannot overflow (and revival stays O(1)).
    if (before > config_.dead_after * 1024) {
      misses_[node]->store(config_.dead_after, std::memory_order_release);
    }
  }

  // Test-shim escalation: jump straight to dead / back to alive.
  void MarkDead(int node) {
    misses_[node]->store(config_.dead_after, std::memory_order_release);
  }
  void Reset(int node) { misses_[node]->store(0, std::memory_order_release); }

  NodeHealth health(int node) const {
    const int m = misses_[node]->load(std::memory_order_acquire);
    if (m >= config_.dead_after) return NodeHealth::kDead;
    if (m >= config_.suspect_after) return NodeHealth::kSuspect;
    return NodeHealth::kAlive;
  }

  // Placement predicate: only fully-alive nodes take new data.
  bool Serving(int node) const { return health(node) == NodeHealth::kAlive; }
  // Data-path predicate: suspect nodes are still tried (the detector may
  // simply be behind), dead ones are skipped.
  bool MaybeServing(int node) const {
    return health(node) != NodeHealth::kDead;
  }

  uint64_t deaths() const { return deaths_.load(std::memory_order_relaxed); }
  uint64_t revivals() const {
    return revivals_.load(std::memory_order_relaxed);
  }

 private:
  // Deliberately lock-free, so no GUARDED_BY applies: each lease is one
  // atomic miss counter, health() is a pure function of a single load, and
  // the exchange/fetch_add transitions make the death/revival edge counters
  // exact without ever serializing probes against readers.
  const FailureDetectorConfig config_;
  std::vector<std::unique_ptr<std::atomic<int>>> misses_;
  std::atomic<uint64_t> deaths_{0};
  std::atomic<uint64_t> revivals_{0};
};

struct ClusterConfig {
  int num_nodes = 4;
  core::CormConfig node_config;  // applied to every node
  Placement placement = Placement::kRoundRobin;
  FailureDetectorConfig failure_detector;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  core::CormNode* node(int idx) { return nodes_[idx].get(); }
  const ClusterConfig& config() const { return config_; }

  // Picks a node for a new allocation per the placement policy; nodes the
  // failure detector distrusts are skipped.
  int PickNode();

  // --- Keyed routing (DESIGN.md §13). ------------------------------------
  // Home node of `key`'s hash range. Sticky: a dead home keeps the range
  // (keyed ops answer with transient kNetworkError) until RehomeDeadNode
  // explicitly moves it — auto-rehoming on suspicion would silently strand
  // the acked writes living on a node that was merely slow.
  int KeyOwner(uint64_t key) const {
    return home_[KeyRangeOf(key)]->load(std::memory_order_acquire);
  }
  // Control-plane failover: reassigns every range homed on `dead` to the
  // next trusted node (successor scan), counting one index_rehomes per
  // moved range on its new home. Also arms the seal-on-revive flag: when
  // `dead` later restarts, its index epoch is sealed so every pre-crash
  // bucket entry is fenced and must re-mint through the RPC lookup path.
  // Returns the number of ranges moved.
  int RehomeDeadNode(int dead);

  // --- Failure detection. ------------------------------------------------
  FailureDetector* failure_detector() { return &detector_; }
  const FailureDetector& failure_detector() const { return detector_; }

  // One heartbeat round: probes every node (reachable and serving?) and
  // reports the outcome to the detector. A successful probe renews the
  // node's lease — which auto-revives a previously dead node. Returns the
  // number of nodes whose probe succeeded.
  int Heartbeat();

  // --- Cluster-wide control plane. ---------------------------------------
  // Runs the §3.1.3 fragmentation policy on every node the failure
  // detector trusts; faulted nodes are skipped cleanly. With background
  // compaction running, this is only needed as an explicit synchronous
  // sweep (benches measuring a specific pass; tests forcing a round).
  Result<std::vector<core::CompactionReport>> CompactAllIfFragmented();

  // Starts/stops every node's duty-cycled compaction scheduler (the
  // continuous replacement for periodic CompactAllIfFragmented sweeps;
  // nodes constructed with node_config.background_compaction start theirs
  // automatically).
  void StartBackgroundCompaction();
  void StopBackgroundCompaction();
  uint64_t TotalActiveMemoryBytes() const;
  uint64_t TotalVirtualMemoryBytes() const;

  // --- Failure injection (test-only shims; chaos uses Crash/Restart). ----
  // Marks a node unreachable: subsequent DSM operations to it fail with
  // kNetworkError. The node process itself keeps running (the paper's
  // fault model assumes full-process failure; we only need the
  // reachability half to exercise client failover). The detector is
  // informed synchronously so placement avoids the node immediately —
  // these two shims are deliberate test back-doors, not the production
  // path (which is Heartbeat-driven).
  void KillNode(int idx) {
    dead_[idx]->store(true, std::memory_order_release);
    detector_.MarkDead(idx);
  }
  void ReviveNode(int idx) {
    dead_[idx]->store(false, std::memory_order_release);
    detector_.Reset(idx);
  }
  bool IsDead(int idx) const {
    return dead_[idx]->load(std::memory_order_acquire);
  }

  // Full crash (chaos harness): unreachable AND not serving — requests
  // already queued on the node stall, so clients with in-flight RPCs see
  // kTimeout rather than an error completion.
  void CrashNode(int idx);
  // Restart after a crash: drops every request that was queued while the
  // node was down (completing each with kNetworkError, as a connection
  // reset would), then restores reachability and service. The detector is
  // NOT reset — the node rejoins when a heartbeat renews its lease, which
  // is exactly the auto-revive path.
  void RestartNode(int idx);

 private:
  const ClusterConfig config_;
  std::vector<std::unique_ptr<core::CormNode>> nodes_;
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_;
  FailureDetector detector_;
  std::atomic<uint64_t> rr_{0};
  // Keyed hash-range homes (kKeyRanges entries, init range % num_nodes)
  // and the per-node seal-on-revive flags RehomeDeadNode arms.
  std::vector<std::unique_ptr<std::atomic<int>>> home_;
  std::vector<std::unique_ptr<std::atomic<bool>>> needs_index_seal_;
};

}  // namespace corm::dsm

#endif  // CORM_DSM_CLUSTER_H_
