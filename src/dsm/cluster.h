// Cluster: multiple CoRM memory nodes composed into one distributed shared
// memory (the paper's deployment setting, §1-§2: "the memory of multiple
// different physical nodes is viewed as a single unified memory space").
//
// Each node is a full CormNode (own substrate, workers, RNIC); the node id
// a pointer belongs to travels in the upper bits of the 128-bit pointer's
// flags byte, so DSM pointers remain 128 bits and keep working across
// compactions on their home node.

#ifndef CORM_DSM_CLUSTER_H_
#define CORM_DSM_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/corm_node.h"

namespace corm::dsm {

// Bits 1..7 of GlobalAddr::flags carry the owning node id (bit 0 remains
// the kFlagOldBlock notification bit). 127 nodes suffice for the rack-scale
// deployments the paper targets.
inline constexpr int kMaxNodes = 127;

inline int NodeOf(const core::GlobalAddr& addr) { return addr.flags >> 1; }

inline void SetNode(core::GlobalAddr* addr, int node) {
  addr->flags = static_cast<uint8_t>((addr->flags & 0x1) |
                                     (static_cast<uint8_t>(node) << 1));
}

// Object placement policy for new allocations.
enum class Placement {
  kRoundRobin,    // spread allocations uniformly
  kLeastLoaded,   // place on the node with the least active memory
};

struct ClusterConfig {
  int num_nodes = 4;
  core::CormConfig node_config;  // applied to every node
  Placement placement = Placement::kRoundRobin;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  core::CormNode* node(int idx) { return nodes_[idx].get(); }
  const ClusterConfig& config() const { return config_; }

  // Picks a node for a new allocation per the placement policy.
  int PickNode();

  // --- Cluster-wide control plane. ---------------------------------------
  // Runs the §3.1.3 fragmentation policy on every node.
  Result<std::vector<core::CompactionReport>> CompactAllIfFragmented();
  uint64_t TotalActiveMemoryBytes() const;
  uint64_t TotalVirtualMemoryBytes() const;

  // --- Failure injection (for the replication extension, §3.2.4). --------
  // Marks a node unreachable: subsequent DSM operations to it fail with
  // kNetworkError. The node process itself keeps running (the paper's
  // fault model assumes full-process failure; we only need the
  // reachability half to exercise client failover).
  void KillNode(int idx) { dead_[idx]->store(true, std::memory_order_release); }
  void ReviveNode(int idx) {
    dead_[idx]->store(false, std::memory_order_release);
  }
  bool IsDead(int idx) const {
    return dead_[idx]->load(std::memory_order_acquire);
  }

 private:
  const ClusterConfig config_;
  std::vector<std::unique_ptr<core::CormNode>> nodes_;
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_;
  std::atomic<uint64_t> rr_{0};
};

}  // namespace corm::dsm

#endif  // CORM_DSM_CLUSTER_H_
