#include "dsm/cluster.h"

#include "common/logging.h"

namespace corm::dsm {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      detector_(config.num_nodes, config.failure_detector) {
  CORM_CHECK_GT(config_.num_nodes, 0);
  CORM_CHECK_LE(config_.num_nodes, kMaxNodes);
  nodes_.reserve(config_.num_nodes);
  for (int i = 0; i < config_.num_nodes; ++i) {
    core::CormConfig node_config = config_.node_config;
    node_config.seed = config_.node_config.seed + static_cast<uint64_t>(i);
    nodes_.push_back(std::make_unique<core::CormNode>(node_config));
    dead_.push_back(std::make_unique<std::atomic<bool>>(false));
    needs_index_seal_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  home_.reserve(kKeyRanges);
  for (int r = 0; r < kKeyRanges; ++r) {
    home_.push_back(
        std::make_unique<std::atomic<int>>(r % config_.num_nodes));
  }
}

int Cluster::RehomeDeadNode(int dead) {
  CORM_CHECK_GE(dead, 0);
  CORM_CHECK_LT(dead, num_nodes());
  // Successor scan from the dead node: first node the detector still
  // trusts inherits the range. With every other node dead too there is
  // nowhere to go — the ranges stay put and keep erroring transiently.
  int successor = -1;
  for (int step = 1; step < num_nodes(); ++step) {
    const int candidate = (dead + step) % num_nodes();
    if (!IsDead(candidate) && detector_.MaybeServing(candidate)) {
      successor = candidate;
      break;
    }
  }
  if (successor < 0) return 0;
  int moved = 0;
  for (int r = 0; r < kKeyRanges; ++r) {
    int cur = dead;
    if (home_[r]->compare_exchange_strong(cur, successor,
                                          std::memory_order_acq_rel)) {
      ++moved;
      // The rehome lands on the inheriting node's books.
      nodes_[successor]->client_stat_shard().index_rehomes.Add(1);
    }
  }
  if (moved > 0) {
    // The dead node may revive holding pre-crash bucket entries for ranges
    // it no longer owns: fence them at restart via an index epoch seal.
    needs_index_seal_[dead]->store(true, std::memory_order_release);
  }
  return moved;
}

int Cluster::PickNode() {
  switch (config_.placement) {
    case Placement::kRoundRobin:
      break;
    case Placement::kLeastLoaded: {
      int best = -1;
      uint64_t best_bytes = UINT64_MAX;
      for (int i = 0; i < num_nodes(); ++i) {
        if (!detector_.Serving(i)) continue;
        const uint64_t bytes = nodes_[i]->ActiveMemoryBytes();
        if (bytes < best_bytes) {
          best_bytes = bytes;
          best = i;
        }
      }
      if (best >= 0) return best;
      break;  // everything suspect/dead: fall through to round robin
    }
  }
  // Round robin over nodes the detector trusts.
  for (int attempt = 0; attempt < num_nodes(); ++attempt) {
    const int idx = static_cast<int>(
        rr_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint64_t>(num_nodes()));
    if (detector_.Serving(idx)) return idx;
  }
  // No node fully trusted: fall back to any not-known-dead node so the op
  // can still be attempted (the attempt itself feeds the detector).
  for (int attempt = 0; attempt < num_nodes(); ++attempt) {
    const int idx = static_cast<int>(
        rr_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint64_t>(num_nodes()));
    if (detector_.MaybeServing(idx)) return idx;
  }
  return 0;  // all nodes dead; the op will fail with kNetworkError
}

int Cluster::Heartbeat() {
  int healthy = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    // The probe models a heartbeat RPC: it needs the node reachable (the
    // network half) and its workers serving requests (the process half).
    const bool responsive = !IsDead(i) && nodes_[i]->IsServingRequests();
    if (responsive) {
      detector_.ReportSuccess(i);  // lease renewed (auto-revive)
      ++healthy;
    } else {
      detector_.ReportFailure(i);
    }
  }
  return healthy;
}

Result<std::vector<core::CompactionReport>>
Cluster::CompactAllIfFragmented() {
  std::vector<core::CompactionReport> all;
  for (int i = 0; i < num_nodes(); ++i) {
    // Skip nodes the detector distrusts, plus a direct serving check:
    // compaction is a control-plane op that synchronously waits on the
    // node's workers, so running it against a paused node would stall the
    // whole cluster sweep even if the detector has not caught up yet.
    if (!detector_.MaybeServing(i)) continue;
    if (IsDead(i) || !nodes_[i]->IsServingRequests()) continue;
    auto reports = nodes_[i]->CompactIfFragmented();
    CORM_RETURN_NOT_OK(reports.status());
    all.insert(all.end(), reports->begin(), reports->end());
  }
  return all;
}

void Cluster::StartBackgroundCompaction() {
  for (auto& node : nodes_) node->StartBackgroundCompaction();
}

void Cluster::StopBackgroundCompaction() {
  for (auto& node : nodes_) node->StopBackgroundCompaction();
}

void Cluster::CrashNode(int idx) {
  nodes_[idx]->PauseService();
  KillNode(idx);
}

void Cluster::RestartNode(int idx) {
  // Connection reset: every request queued while the node was down is
  // dropped, completing with kNetworkError so abandoned (timed-out) client
  // messages are released and never replayed against the restarted node.
  while (rdma::RpcMessage* stale = nodes_[idx]->rpc_queue()->Poll()) {
    stale->status = Status::NetworkError("node restarted; request dropped");
    stale->done.store(true, std::memory_order_release);
    stale->Unref();
  }
  nodes_[idx]->ResumeService();
  if (needs_index_seal_[idx]->exchange(false, std::memory_order_acq_rel)) {
    // The node lost key ranges while it was down (RehomeDeadNode): seal its
    // index epoch so every surviving bucket entry is fenced — a one-sided
    // probe that matches one must revalidate through the RPC lookup, which
    // re-mints it under the new epoch (PR-7 seal machinery applied to the
    // keyed lookup path).
    nodes_[idx]->SealIndexEpoch();
  }
  dead_[idx]->store(false, std::memory_order_release);
  // Deliberately no detector_.Reset: the node rejoins via lease renewal on
  // the next Heartbeat round.
}

uint64_t Cluster::TotalActiveMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->ActiveMemoryBytes();
  return total;
}

uint64_t Cluster::TotalVirtualMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->VirtualMemoryBytes();
  return total;
}

}  // namespace corm::dsm
