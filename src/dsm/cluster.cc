#include "dsm/cluster.h"

#include "common/logging.h"

namespace corm::dsm {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  CORM_CHECK_GT(config_.num_nodes, 0);
  CORM_CHECK_LE(config_.num_nodes, kMaxNodes);
  nodes_.reserve(config_.num_nodes);
  for (int i = 0; i < config_.num_nodes; ++i) {
    core::CormConfig node_config = config_.node_config;
    node_config.seed = config_.node_config.seed + static_cast<uint64_t>(i);
    nodes_.push_back(std::make_unique<core::CormNode>(node_config));
    dead_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

int Cluster::PickNode() {
  switch (config_.placement) {
    case Placement::kRoundRobin:
      break;
    case Placement::kLeastLoaded: {
      int best = -1;
      uint64_t best_bytes = UINT64_MAX;
      for (int i = 0; i < num_nodes(); ++i) {
        if (IsDead(i)) continue;
        const uint64_t bytes = nodes_[i]->ActiveMemoryBytes();
        if (bytes < best_bytes) {
          best_bytes = bytes;
          best = i;
        }
      }
      if (best >= 0) return best;
      break;  // everything dead: fall through to round robin
    }
  }
  // Round robin over live nodes.
  for (int attempt = 0; attempt < num_nodes(); ++attempt) {
    const int idx = static_cast<int>(
        rr_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint64_t>(num_nodes()));
    if (!IsDead(idx)) return idx;
  }
  return 0;  // all nodes dead; the op will fail with kNetworkError
}

Result<std::vector<core::CompactionReport>>
Cluster::CompactAllIfFragmented() {
  std::vector<core::CompactionReport> all;
  for (int i = 0; i < num_nodes(); ++i) {
    if (IsDead(i)) continue;
    auto reports = nodes_[i]->CompactIfFragmented();
    CORM_RETURN_NOT_OK(reports.status());
    all.insert(all.end(), reports->begin(), reports->end());
  }
  return all;
}

uint64_t Cluster::TotalActiveMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->ActiveMemoryBytes();
  return total;
}

uint64_t Cluster::TotalVirtualMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->VirtualMemoryBytes();
  return total;
}

}  // namespace corm::dsm
