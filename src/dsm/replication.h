// Primary-backup replication over the DSM cluster — the fault-tolerance
// direction the paper leaves as future work (§3.2.4: "CoRM could employ a
// fault-tolerant replication protocol to withstand failures").
//
// Model: every object lives on `replication_factor` distinct nodes; the
// first replica is the primary. Writes go primary-first then to the
// backups; reads prefer the primary's one-sided path and fail over to
// backups when a node is unreachable. Compaction keeps running
// independently on every node — replica pointers self-correct exactly like
// ordinary CoRM pointers, which is the point of the exercise: CoRM's
// compaction machinery composes with replication unchanged.
//
// Scope note: ordering concurrent writers across replicas needs a real
// replication protocol (the paper cites [15, 18, 22, 42]); this extension
// assumes the single-writer-per-object discipline common to those systems'
// client-driven variants and focuses on failover + compaction interplay.

#ifndef CORM_DSM_REPLICATION_H_
#define CORM_DSM_REPLICATION_H_

#include <vector>

#include "dsm/dsm_context.h"

namespace corm::dsm {

// A replicated object handle: one 128-bit CoRM pointer per replica,
// primary first.
struct ReplicatedAddr {
  std::vector<core::GlobalAddr> replicas;

  bool IsNull() const { return replicas.empty(); }
  const core::GlobalAddr& primary() const { return replicas.front(); }
};

class ReplicatedContext {
 public:
  ReplicatedContext(Cluster* cluster, int replication_factor)
      : ReplicatedContext(cluster, replication_factor,
                          core::Context::Options{}) {}
  ReplicatedContext(Cluster* cluster, int replication_factor,
                    const core::Context::Options& options);

  // Allocates the object on `replication_factor` distinct nodes the
  // failure detector trusts.
  Result<ReplicatedAddr> Alloc(size_t size);

  // Writes primary-first, then backups. Fails (without rollback) when any
  // *reachable* replica write fails; unreachable backups are skipped and
  // counted — the caller re-replicates when the cluster heals.
  Status Write(ReplicatedAddr* addr, const void* buf, size_t size);

  // One-sided read with recovery from the primary; fails over to the next
  // replica when a node is unreachable, times out, or the failure detector
  // already declared it dead.
  Status Read(ReplicatedAddr* addr, void* buf, size_t size);

  // Frees every reachable replica.
  Status Free(ReplicatedAddr* addr);

  // Number of writes that skipped an unreachable backup (re-replication
  // debt the caller owes).
  uint64_t degraded_writes() const { return degraded_writes_; }
  uint64_t failovers() const { return failovers_; }

 private:
  // Deliberately unguarded: a ReplicatedContext, like the core::Context it
  // wraps, is a per-client-thread handle (one context per application
  // thread) — the counters never see concurrent access, and there is no
  // lock for GUARDED_BY to reference.
  DsmContext dsm_;
  const int k_;
  uint64_t degraded_writes_ = 0;
  uint64_t failovers_ = 0;
};

}  // namespace corm::dsm

#endif  // CORM_DSM_REPLICATION_H_
