// Replication over a one-sided replicated log (DESIGN.md §11) — the
// fault-tolerance direction the paper leaves as future work (§3.2.4: "CoRM
// could employ a fault-tolerant replication protocol to withstand
// failures"), built the way "The Impact of RDMA on Agreement" argues for:
// replicas receive sequenced, checksummed log records via one-sided RDMA
// WRITEs and acknowledge by publishing an applied high-water mark the
// writer reads one-sidedly.
//
// Model: every object lives on `replication_factor` distinct nodes; the
// first replica is the primary. A write draws a monotone object version,
// builds a self-validating replica image (ReplObjectHeader + payload), and
// ships it as one log record into every live replica's ingress ring; the
// write is ACKNOWLEDGED only when every live replica has durably applied
// it (and at least one replica exists). Dead replicas are skipped (the
// write degrades) and queued for the background anti-entropy sweep, which
// re-replicates through the same version-fenced log so a repair can never
// regress a newer acked write. Reads validate the replica image (epoch +
// version + crc against the acked high-water `committed`) and fail over to
// the next replica when a copy is stale or torn — the reader-side half of
// the zero-lost-acknowledged-writes invariant.
//
// Failover (PR-2 FailureDetector-driven): when the primary is dead, the
// first live backup is rotated to primary, the replication epoch is
// bumped, a seal record fences the old epoch on every live replica (a
// record shipped under an older epoch can never apply afterwards — fault
// site repl.seal_race), and the replica set is reconciled to the maximum
// committed version. Compaction composes untouched: an applier that finds
// an object kCompacting simply leaves the record at the ring head and
// retries after the move, exactly like any other CoRM pointer user.
//
// Scope note: ordering concurrent writers across replicas needs a real
// replication protocol (the paper cites [15, 18, 22, 42]); this extension
// keeps the single-writer-per-object discipline common to those systems'
// client-driven variants.

#ifndef CORM_DSM_REPLICATION_H_
#define CORM_DSM_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "dsm/dsm_context.h"
#include "rdma/log_shipper.h"
#include "rdma/repl_record.h"

namespace corm::dsm {

// A replicated object handle: one 128-bit CoRM pointer per replica
// (primary first) plus the client-side replication state. The epoch is the
// fencing token (bumped by failover); `next_version` is drawn — and
// consumed, even when the write later fails — per write attempt, so a
// retried uncertain write never reuses a version a replica might already
// have applied; `committed` is the highest version a full quorum acked,
// the floor readers validate against.
struct ReplicatedAddr {
  std::vector<core::GlobalAddr> replicas;
  uint32_t epoch = 1;
  uint64_t committed = 0;
  uint64_t next_version = 0;
  uint32_t size = 0;  // user payload capacity (bytes)

  bool IsNull() const { return replicas.empty(); }
  const core::GlobalAddr& primary() const { return replicas.front(); }
};

struct ReplicationOptions {
  // Ingress ring geometry per (context, replica-node) session.
  uint32_t ring_slots = 64;
  uint32_t ring_slot_bytes = 1024;
  // Wall-clock budget for the quorum ack wait (and the failover seal).
  // 0 derives it from the client options' rpc_retry deadline.
  uint64_t quorum_deadline_ns = 0;
  // Repairs attempted per anti-entropy sweep tick.
  size_t anti_entropy_budget = 8;
  // Bounded repair backlog; excess enqueues are dropped (the next degraded
  // op re-enqueues).
  size_t max_pending_repairs = 1024;
};

class ReplicatedContext {
 public:
  ReplicatedContext(Cluster* cluster, int replication_factor)
      : ReplicatedContext(cluster, replication_factor,
                          core::Context::Options{}) {}
  ReplicatedContext(Cluster* cluster, int replication_factor,
                    const core::Context::Options& options)
      : ReplicatedContext(cluster, replication_factor, options,
                          ReplicationOptions{}) {}
  ReplicatedContext(Cluster* cluster, int replication_factor,
                    const core::Context::Options& options,
                    const ReplicationOptions& repl_options);
  ~ReplicatedContext();

  ReplicatedContext(const ReplicatedContext&) = delete;
  ReplicatedContext& operator=(const ReplicatedContext&) = delete;

  // Allocates the object on `replication_factor` distinct nodes the
  // failure detector trusts, and initializes every replica with a
  // well-formed empty image (epoch 1, version 0) so appliers and readers
  // always parse a valid stored header.
  Result<ReplicatedAddr> Alloc(size_t size);

  // Ships one sequenced record per live replica and acks only when every
  // live replica durably applied it. kTimeout = UNCERTAIN (the version is
  // consumed; some replicas may hold the write — readers still validate
  // against `committed`, which did not advance). Dead replicas degrade the
  // write and are queued for anti-entropy repair.
  Status Write(ReplicatedAddr* addr, const void* buf, size_t size);

  // Reads the newest valid replica image: crc must validate and the stored
  // version must be >= committed (an acked write can never be un-read).
  // Stale or torn copies are counted, queued for repair, and failed over.
  Status Read(ReplicatedAddr* addr, void* buf, size_t size);

  // Frees every reachable replica.
  Status Free(ReplicatedAddr* addr);

  // Epoch-fenced failover: rotates the first live replica to primary,
  // bumps the epoch, seals the old epoch on every live replica, and
  // reconciles the set to the maximum committed version. Called
  // automatically by Write when the primary is dead; public for tests and
  // operators. kTimeout when no live replica holds the committed state
  // (transient: retry after a replica revives — the epoch bump is safe to
  // keep).
  Status Failover(ReplicatedAddr* addr);

  // --- Anti-entropy (PR-5 scheduler-hosted). -----------------------------
  // Registers the repair sweep with `scheduler_node`'s duty-cycled
  // background scheduler; StopAntiEntropy (or the destructor) unregisters
  // and blocks until an in-progress sweep tick finishes.
  void StartAntiEntropy(int scheduler_node = 0);
  void StopAntiEntropy();
  // One bounded sweep pass (also callable directly from tests). Returns
  // the number of objects repaired.
  size_t RunAntiEntropySweep(size_t budget);

  size_t pending_repairs() const;

  // --- Counters (per-context; the node-sharded mirrors live in
  // NodeStatShard::repl_* on the primary's overflow shard). ---------------
  uint64_t degraded_writes() const { return degraded_writes_; }
  uint64_t failovers() const { return failovers_; }
  uint64_t acked_writes() const { return acked_writes_; }
  uint64_t quorum_timeouts() const { return quorum_timeouts_; }
  uint64_t stale_reads() const { return stale_reads_; }
  uint64_t seals() const { return seals_; }
  uint64_t anti_entropy_repairs() const {
    return anti_entropy_repairs_.load(std::memory_order_relaxed);
  }

  // Modeled fabric+server nanoseconds of the last Write (ship + quorum ack
  // + any RPC fallback) — the replication bench's latency probe.
  uint64_t last_op_ns() const { return last_op_ns_; }

  DsmContext* dsm() { return &dsm_; }

 private:
  struct RepairTask {
    ReplicatedAddr snapshot;
    int attempts = 0;
  };

  // Lazily opens the log-shipping session to `node` (ingress ring on the
  // replica + shipper session), memoized per node. -1 when setup failed.
  int SessionFor(int node);
  // Same, for the sweep's dedicated shipper (scheduler thread).
  int RepairSessionFor(int node);

  // Builds the replica image [ReplObjectHeader | payload] into `out`.
  static void BuildImage(Buffer* out, uint32_t epoch, uint64_t version,
                         const void* buf, size_t size);

  // Ships `image` as a version-`version` data record to replica `r` of
  // `addr` through `shipper`/`session` — falling back to a direct RPC
  // write when the image exceeds the ring slot. On success stores the
  // assigned sequence in `*seq` (0 = RPC fallback, already durable).
  Status ShipImage(rdma::ReplicaLogShipper* shipper, int session,
                   DsmContext* dsm, core::GlobalAddr* replica, uint32_t epoch,
                   uint64_t version, const Buffer& image, uint64_t* seq);

  void EnqueueRepair(const ReplicatedAddr& addr);
  // Repairs one snapshot; true when the object converged (or vanished).
  bool RepairOne(RepairTask* task);

  uint64_t QuorumDeadlineNs() const;
  core::NodeStatShard& PrimaryShard(const ReplicatedAddr& addr);

  // Owner-thread state (a ReplicatedContext, like the core::Context it
  // wraps, is a per-client-thread handle; only the repair queue and the
  // sweep's own state cross threads).
  DsmContext dsm_;
  const int k_;
  const core::Context::Options client_options_;
  const ReplicationOptions options_;
  rdma::ReplicaLogShipper shipper_;
  std::vector<int> session_for_node_;
  Buffer image_scratch_;
  Buffer read_scratch_;
  uint64_t degraded_writes_ = 0;
  uint64_t failovers_ = 0;
  uint64_t acked_writes_ = 0;
  uint64_t quorum_timeouts_ = 0;
  uint64_t stale_reads_ = 0;
  uint64_t seals_ = 0;
  uint64_t last_op_ns_ = 0;

  // Repair queue: produced by the owner thread (degraded writes, stale
  // reads, failover leftovers), consumed by the scheduler thread.
  mutable Mutex repair_mu_;
  std::deque<RepairTask> repairs_ GUARDED_BY(repair_mu_);
  std::atomic<uint64_t> anti_entropy_repairs_{0};

  // Sweep-thread state: touched only from the scheduler tick (and after
  // StopAntiEntropy's unregister barrier, never again).
  std::unique_ptr<DsmContext> repair_dsm_;
  std::unique_ptr<rdma::ReplicaLogShipper> repair_shipper_;
  std::vector<int> repair_session_for_node_;
  Buffer repair_scratch_;
  Buffer repair_best_;
  int anti_entropy_node_ = -1;
  int anti_entropy_task_ = -1;
};

}  // namespace corm::dsm

#endif  // CORM_DSM_REPLICATION_H_
