#include "dsm/dsm_context.h"

#include <utility>

#include "common/logging.h"

namespace corm::dsm {

DsmContext::DsmContext(Cluster* cluster,
                       const core::Context::Options& options)
    : cluster_(cluster) {
  contexts_.reserve(cluster_->num_nodes());
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    contexts_.push_back(core::Context::Create(cluster_->node(i), options));
  }
}

Result<core::Context*> DsmContext::Route(const core::GlobalAddr& addr) {
  const int node = NodeOf(addr);
  if (node >= cluster_->num_nodes()) {
    return Status::InvalidArgument("pointer references an unknown node");
  }
  if (cluster_->IsDead(node)) {
    // Ground-truth reachability (the QP/connection layer would error out
    // immediately); also counts as a missed lease for the detector.
    cluster_->failure_detector()->ReportFailure(node);
    return Status::NetworkError("node " + std::to_string(node) +
                                " unreachable");
  }
  return contexts_[node].get();
}

Status DsmContext::Observe(int node, Status st) {
  const StatusCode code = st.code();
  if (code == StatusCode::kNetworkError || code == StatusCode::kTimeout) {
    cluster_->failure_detector()->ReportFailure(node);
  } else {
    // Any definitive answer from the node (including application-level
    // errors) proves it is alive: renew its lease.
    cluster_->failure_detector()->ReportSuccess(node);
  }
  return st;
}

Result<core::GlobalAddr> DsmContext::Alloc(size_t size) {
  return AllocOn(cluster_->PickNode(), size);
}

Result<core::GlobalAddr> DsmContext::AllocOn(int node, size_t size) {
  if (node < 0 || node >= cluster_->num_nodes()) {
    return Status::InvalidArgument("bad node index");
  }
  if (cluster_->IsDead(node)) {
    cluster_->failure_detector()->ReportFailure(node);
    return Status::NetworkError("node " + std::to_string(node) +
                                " unreachable");
  }
  auto addr = contexts_[node]->Alloc(size);
  CORM_RETURN_NOT_OK(Observe(node, addr.status()));
  SetNode(&*addr, node);
  return *addr;
}

Status DsmContext::Free(core::GlobalAddr* addr) {
  auto ctx = Route(*addr);
  CORM_RETURN_NOT_OK(ctx.status());
  return Observe(NodeOf(*addr), (*ctx)->Free(addr));
}

// Ops that rewrite the pointer must re-stamp the node id afterwards: the
// node-local server knows nothing about cluster routing bits.
Status DsmContext::Read(core::GlobalAddr* addr, void* buf, size_t size) {
  auto ctx = Route(*addr);
  CORM_RETURN_NOT_OK(ctx.status());
  const int node = NodeOf(*addr);
  Status st = Observe(node, (*ctx)->Read(addr, buf, size));
  if (st.ok()) SetNode(addr, node);
  return st;
}

Status DsmContext::Write(core::GlobalAddr* addr, const void* buf,
                         size_t size) {
  auto ctx = Route(*addr);
  CORM_RETURN_NOT_OK(ctx.status());
  const int node = NodeOf(*addr);
  Status st = Observe(node, (*ctx)->Write(addr, buf, size));
  if (st.ok()) SetNode(addr, node);
  return st;
}

Status DsmContext::DirectRead(const core::GlobalAddr& addr, void* buf,
                              size_t size) {
  auto ctx = Route(addr);
  CORM_RETURN_NOT_OK(ctx.status());
  // Strip the routing bits: the node-local consistency check compares the
  // flags-free header fields only, but keep the old-block bit semantics.
  return (*ctx)->DirectRead(addr, buf, size);
}

Status DsmContext::DirectReadBatch(const core::GlobalAddr* addrs, size_t n,
                                   void* bufs, size_t size, Status* statuses) {
  Status first;
  uint8_t* out = static_cast<uint8_t*>(bufs);
  size_t i = 0;
  while (i < n) {
    // Coalesce the run of consecutive same-node addresses into one batch.
    const int node = NodeOf(addrs[i]);
    size_t j = i + 1;
    while (j < n && NodeOf(addrs[j]) == node) ++j;
    auto ctx = Route(addrs[i]);
    if (!ctx.ok()) {
      for (size_t k = i; k < j; ++k) statuses[k] = ctx.status();
      if (first.ok()) first = ctx.status();
    } else {
      Status st = (*ctx)->DirectReadBatch(addrs + i, j - i, out + i * size,
                                          size, statuses + i);
      if (!st.ok() && first.ok()) first = st;
    }
    i = j;
  }
  return first;
}

Status DsmContext::ScanRead(core::GlobalAddr* addr, void* buf, size_t size) {
  auto ctx = Route(*addr);
  CORM_RETURN_NOT_OK(ctx.status());
  const int node = NodeOf(*addr);
  Status st = (*ctx)->ScanRead(addr, buf, size);
  if (st.ok()) SetNode(addr, node);
  return st;
}

Status DsmContext::ReleasePtr(core::GlobalAddr* addr) {
  auto ctx = Route(*addr);
  CORM_RETURN_NOT_OK(ctx.status());
  const int node = NodeOf(*addr);
  Status st = Observe(node, (*ctx)->ReleasePtr(addr));
  if (st.ok()) SetNode(addr, node);
  return st;
}

// Keyed ops route by the key's hash-range home, not by pointer bits. The
// shared IsDead/Observe discipline still applies: a dead home is a
// transient kNetworkError (plus a detector demerit) until the control
// plane explicitly rehomes the range.
Result<core::Context*> DsmContext::RouteKey(uint64_t key, int* node_out) {
  const int node = cluster_->KeyOwner(key);
  *node_out = node;
  if (cluster_->IsDead(node)) {
    cluster_->failure_detector()->ReportFailure(node);
    return Status::NetworkError("key home node " + std::to_string(node) +
                                " unreachable");
  }
  return contexts_[node].get();
}

Result<core::GlobalAddr> DsmContext::Put(uint64_t key, const void* buf,
                                         size_t size) {
  int node = -1;
  auto ctx = RouteKey(key, &node);
  CORM_RETURN_NOT_OK(ctx.status());
  auto addr = (*ctx)->Put(key, buf, size);
  CORM_RETURN_NOT_OK(Observe(node, addr.status()));
  SetNode(&*addr, node);
  return *addr;
}

Status DsmContext::Get(uint64_t key, void* buf, size_t size) {
  int node = -1;
  auto ctx = RouteKey(key, &node);
  CORM_RETURN_NOT_OK(ctx.status());
  return Observe(node, (*ctx)->Get(key, buf, size));
}

Status DsmContext::Del(uint64_t key) {
  int node = -1;
  auto ctx = RouteKey(key, &node);
  CORM_RETURN_NOT_OK(ctx.status());
  return Observe(node, (*ctx)->Del(key));
}

Status DsmContext::ReadWithRecovery(core::GlobalAddr* addr, void* buf,
                                    size_t size,
                                    core::Context::MovedFallback fallback) {
  auto ctx = Route(*addr);
  CORM_RETURN_NOT_OK(ctx.status());
  const int node = NodeOf(*addr);
  Status st = Observe(node, (*ctx)->ReadWithRecovery(addr, buf, size, fallback));
  if (st.ok()) SetNode(addr, node);
  return st;
}

}  // namespace corm::dsm
