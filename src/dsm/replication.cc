#include "dsm/replication.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/retry.h"
#include "core/addr.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"

namespace corm::dsm {

namespace {

// Modeled gap between quorum ack polls: long enough that a poll usually
// observes progress (one apply is ~a ring drain away), short enough that
// the ack latency is dominated by the replica, not the poller.
constexpr uint64_t kQuorumPollGapNs = 400;
// Quorum rounds between retransmissions of the unacked window.
constexpr int kQuorumRetransmitEvery = 8;
// Sweep attempts before a repair task is dropped (the next degraded op on
// the object re-enqueues it, so dropping loses nothing permanent).
constexpr int kMaxRepairAttempts = 5;

// A replica attempt that failed with one of these is a node problem, not a
// data problem: the caller should try the next replica.
bool FailoverWorthy(const Status& st) {
  return st.code() == StatusCode::kNetworkError ||
         st.code() == StatusCode::kTimeout;
}

// A replica node the failure detector currently trusts enough to ship to.
bool ReplicaLive(const Cluster& cluster, int node) {
  return !cluster.IsDead(node) &&
         cluster.failure_detector().MaybeServing(node);
}

void AddrBytes(const core::GlobalAddr& addr, uint8_t out[16]) {
  static_assert(sizeof(core::GlobalAddr) == 16, "GlobalAddr wire size");
  std::memcpy(out, &addr, sizeof(core::GlobalAddr));
}

}  // namespace

ReplicatedContext::ReplicatedContext(Cluster* cluster, int replication_factor,
                                     const core::Context::Options& options,
                                     const ReplicationOptions& repl_options)
    : dsm_(cluster, options),
      k_(replication_factor),
      client_options_(options),
      options_(repl_options),
      session_for_node_(cluster->num_nodes(), -1) {
  CORM_CHECK_GT(k_, 0);
  CORM_CHECK_LE(k_, cluster->num_nodes());
}

ReplicatedContext::~ReplicatedContext() { StopAntiEntropy(); }

uint64_t ReplicatedContext::QuorumDeadlineNs() const {
  return options_.quorum_deadline_ns != 0
             ? options_.quorum_deadline_ns
             : client_options_.rpc_retry.deadline_ns;
}

core::NodeStatShard& ReplicatedContext::PrimaryShard(
    const ReplicatedAddr& addr) {
  return dsm_.cluster()->node(NodeOf(addr.primary()))->client_stat_shard();
}

int ReplicatedContext::SessionFor(int node) {
  if (session_for_node_[node] >= 0) return session_for_node_[node];
  auto coords = dsm_.cluster()->node(node)->CreateReplIngress(
      options_.ring_slots, options_.ring_slot_bytes);
  if (!coords.ok()) return -1;
  session_for_node_[node] =
      shipper_.AddSession(dsm_.cluster()->node(node)->rnic(), coords->base,
                          coords->r_key, coords->slots, coords->slot_bytes);
  return session_for_node_[node];
}

int ReplicatedContext::RepairSessionFor(int node) {
  if (repair_session_for_node_[node] >= 0)
    return repair_session_for_node_[node];
  auto coords = dsm_.cluster()->node(node)->CreateReplIngress(
      options_.ring_slots, options_.ring_slot_bytes);
  if (!coords.ok()) return -1;
  repair_session_for_node_[node] = repair_shipper_->AddSession(
      dsm_.cluster()->node(node)->rnic(), coords->base, coords->r_key,
      coords->slots, coords->slot_bytes);
  return repair_session_for_node_[node];
}

void ReplicatedContext::BuildImage(Buffer* out, uint32_t epoch,
                                   uint64_t version, const void* buf,
                                   size_t size) {
  out->resize(sizeof(rdma::ReplObjectHeader) + size);
  rdma::ReplObjectHeader h;
  h.epoch = epoch;
  h.version = version;
  h.len = static_cast<uint32_t>(size);
  h.crc = rdma::ReplObjectCrc(version, buf, size);
  std::memcpy(out->data(), &h, sizeof(h));
  if (size != 0) std::memcpy(out->data() + sizeof(h), buf, size);
}

Status ReplicatedContext::ShipImage(rdma::ReplicaLogShipper* shipper,
                                    int session, DsmContext* dsm,
                                    core::GlobalAddr* replica, uint32_t epoch,
                                    uint64_t version, const Buffer& image,
                                    uint64_t* seq) {
  if (session >= 0 && image.size() <= shipper->capacity(session)) {
    uint8_t ab[16];
    AddrBytes(*replica, ab);
    CORM_ASSIGN_OR_RETURN(
        *seq, shipper->Ship(session, rdma::kReplRecordData, epoch, version, ab,
                            Slice(image.data(), image.size())));
    return Status::OK();
  }
  // RPC fallback: the image exceeds the ring slot (or the session could not
  // be opened). A server-side write is durably applied when it returns, so
  // the caller treats sequence 0 as already acked. The whole image —
  // ReplObjectHeader included — is the stored payload, exactly as the log
  // applier would have written it.
  *seq = 0;
  return dsm->Write(replica, image.data(), image.size());
}

Result<ReplicatedAddr> ReplicatedContext::Alloc(size_t size) {
  ReplicatedAddr addr;
  addr.size = static_cast<uint32_t>(size);
  std::set<int> used;
  const FailureDetector& detector = *dsm_.cluster()->failure_detector();
  // Place each replica on a distinct node the detector trusts.
  for (int r = 0; r < k_; ++r) {
    int node = -1;
    for (int attempt = 0; attempt < 4 * dsm_.cluster()->num_nodes();
         ++attempt) {
      const int candidate = dsm_.cluster()->PickNode();
      if (!used.count(candidate) && detector.Serving(candidate)) {
        node = candidate;
        break;
      }
    }
    if (node < 0) {
      // Unwind partial placement.
      for (auto& replica : addr.replicas) dsm_.Free(&replica).ok();
      return Status::NetworkError("not enough live nodes for replication");
    }
    used.insert(node);
    auto replica = dsm_.AllocOn(node, size + sizeof(rdma::ReplObjectHeader));
    if (!replica.ok()) {
      for (auto& r2 : addr.replicas) dsm_.Free(&r2).ok();
      return replica.status();
    }
    addr.replicas.push_back(*replica);
  }
  // Initialize every replica with a well-formed empty image (epoch 1,
  // version 0) so appliers and readers always parse a valid stored header —
  // a raw slot would make the first epoch fence and the first
  // read-validation undefined.
  BuildImage(&image_scratch_, addr.epoch, 0, nullptr, 0);
  for (auto& replica : addr.replicas) {
    Status st =
        dsm_.Write(&replica, image_scratch_.data(), image_scratch_.size());
    if (!st.ok()) {
      for (auto& r2 : addr.replicas) dsm_.Free(&r2).ok();
      return st;
    }
  }
  return addr;
}

Status ReplicatedContext::Write(ReplicatedAddr* addr, const void* buf,
                                size_t size) {
  if (addr->IsNull()) return Status::InvalidArgument("null replicated addr");
  if (size > addr->size)
    return Status::InvalidArgument("write exceeds replicated object size");
  Cluster& cluster = *dsm_.cluster();
  uint64_t fallback_ns = 0;

  // A dead primary fails over first, so the new epoch is sealed before this
  // write's records enter any ring.
  if (!ReplicaLive(cluster, NodeOf(addr->primary()))) {
    CORM_RETURN_NOT_OK(Failover(addr));
  }

  // The version is consumed even if the write later fails: a replica may
  // already hold a record carrying it, so a retry must never reuse it.
  const uint64_t version = ++addr->next_version;
  BuildImage(&image_scratch_, addr->epoch, version, buf, size);
  core::NodeStatShard& shard = PrimaryShard(*addr);

  struct Pending {
    size_t r = 0;
    int session = -1;
    uint64_t seq = 0;
    uint64_t ship_ns = 0;  // modeled cost of this replica's record write
    bool done = false;
  };
  std::vector<Pending> pending;
  pending.reserve(addr->replicas.size());
  bool any_durable = false;
  bool degraded = false;

  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    const int node = NodeOf(addr->replicas[r]);
    if (!ReplicaLive(cluster, node)) {
      degraded = true;
      continue;
    }
    const int session = SessionFor(node);
    uint64_t seq = 0;
    const uint64_t replica_ns0 = shipper_.modeled_ns();
    Status st = ShipImage(&shipper_, session, &dsm_, &addr->replicas[r],
                          addr->epoch, version, image_scratch_, &seq);
    if (!st.ok()) {
      if (FailoverWorthy(st)) {
        degraded = true;
        continue;
      }
      return st;
    }
    ++shard.repl_ship_records;
    if (seq == 0) {
      // RPC fallback: already applied server-side.
      any_durable = true;
      fallback_ns = std::max(
          fallback_ns,
          dsm_.context(NodeOf(addr->replicas[r]))->stats().last_op_ns);
    } else {
      pending.push_back(Pending{r, session, seq,
                                shipper_.modeled_ns() - replica_ns0, false});
    }
  }

  // Quorum ack: every still-live replica we shipped to must have applied
  // the record. Replicas that die mid-wait drop out of the quorum (their
  // copy is repaired by anti-entropy); the ack still requires at least one
  // durable copy.
  Deadline deadline(QuorumDeadlineNs());
  size_t open = pending.size();
  int round = 0;
  uint64_t ack_ns = 0;
  std::vector<int> poll_sessions;
  poll_sessions.reserve(pending.size());
  while (open > 0 && !deadline.Expired()) {
    poll_sessions.clear();
    for (auto& p : pending) {
      if (p.done) continue;
      if (!ReplicaLive(cluster, NodeOf(addr->replicas[p.r]))) {
        p.done = true;
        --open;
        degraded = true;
        continue;
      }
      poll_sessions.push_back(p.session);
    }
    if (poll_sessions.empty()) break;
    // Coalesced high-water poll (DESIGN.md §12): every open replica's
    // applied_seq word is fetched in one chained post over the sessions'
    // shared CQ — one doorbell + one completion per round instead of one
    // full round trip per replica.
    const uint64_t poll_ns0 = shipper_.modeled_ns();
    if (shipper_.ReadAppliedBatch(poll_sessions.data(), poll_sessions.size())
            .ok()) {
      ++shard.doorbell_batches;
      shard.doorbell_batched_wrs += poll_sessions.size();
    }
    const uint64_t round_poll_ns = shipper_.modeled_ns() - poll_ns0;
    for (auto& p : pending) {
      if (p.done) continue;
      if (shipper_.acked(p.session) >= p.seq) {
        p.done = true;
        --open;
        any_durable = true;
        // Per-replica op cost = its record write + the chained high-water
        // poll that *observed* the ack. The fan-out is concurrent (the
        // writer posts every replica's WRITE back to back) and the
        // intermediate poll count is a wall-clock artifact of running
        // applier threads at host speed, so the write's modeled latency is
        // the slowest replica's write+ack pair — not the sum of every poll.
        ack_ns = std::max(ack_ns, p.ship_ns + round_poll_ns);
      }
    }
    if (open == 0) break;
    if (++round % kQuorumRetransmitEvery == 0) {
      for (auto& p : pending) {
        if (!p.done) shipper_.Retransmit(p.session).ok();
      }
    }
    sim::Pace(kQuorumPollGapNs);
  }

  if (degraded) {
    ++degraded_writes_;
    ++shard.repl_degraded_writes;
    EnqueueRepair(*addr);
  }
  last_op_ns_ = std::max(ack_ns, fallback_ns);
  if (open > 0) {
    // UNCERTAIN: some replica may yet apply the record. `committed` did not
    // advance, so readers are never forced to accept this version, and the
    // drawn version is burned so a retry cannot collide with it.
    ++quorum_timeouts_;
    ++shard.repl_quorum_timeouts;
    EnqueueRepair(*addr);
    return Status::Timeout("replication quorum not reached");
  }
  if (!any_durable) {
    EnqueueRepair(*addr);
    return Status::NetworkError("no live replica accepted the write");
  }
  addr->committed = version;
  ++acked_writes_;
  ++shard.repl_acked_writes;
  return Status::OK();
}

Status ReplicatedContext::Read(ReplicatedAddr* addr, void* buf, size_t size) {
  if (addr->IsNull()) return Status::InvalidArgument("null replicated addr");
  if (size > addr->size)
    return Status::InvalidArgument("read exceeds replicated object size");
  Cluster& cluster = *dsm_.cluster();
  const size_t image_len = sizeof(rdma::ReplObjectHeader) + addr->size;
  read_scratch_.resize(image_len);

  Status last = Status::NetworkError("no replicas");
  bool failed_over = false;
  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    const bool last_replica = (r + 1 == addr->replicas.size());
    // Detector-first: skip replicas already declared dead instead of
    // burning a timeout on each — unless every replica is distrusted, in
    // which case the last one is attempted anyway as a best effort.
    if (!last_replica && !ReplicaLive(cluster, NodeOf(addr->replicas[r]))) {
      failed_over = true;
      last = Status::NetworkError("replica presumed dead");
      continue;
    }
    Status st = dsm_.ReadWithRecovery(&addr->replicas[r], read_scratch_.data(),
                                      image_len);
    if (!st.ok()) {
      last = st;
      if (FailoverWorthy(st) || st.code() == StatusCode::kTornRead) {
        failed_over = true;
        continue;
      }
      return st;
    }
    rdma::ReplObjectHeader h;
    std::memcpy(&h, read_scratch_.data(), sizeof(h));
    const uint8_t* payload = read_scratch_.data() + sizeof(h);
    // An acked write can never be un-read: the copy must checksum AND be at
    // least as new as the acked high-water mark. (A version beyond
    // `committed` is an applied-but-unacked write from this same owner —
    // newer data, safe to serve.)
    const bool valid = h.len <= addr->size &&
                       rdma::ReplObjectValid(h, payload) &&
                       h.version >= addr->committed;
    if (!valid) {
      ++stale_reads_;
      ++PrimaryShard(*addr).repl_stale_reads;
      EnqueueRepair(*addr);
      last = Status::TornRead("replica image stale or torn");
      failed_over = true;
      continue;
    }
    // Valid data under a lagging epoch: serve it, but queue a repair so the
    // seal converges.
    if (h.epoch < addr->epoch) EnqueueRepair(*addr);
    const size_t n = std::min<size_t>(size, h.len);
    std::memcpy(buf, payload, n);
    // Bytes never written read as zero (the image starts life empty).
    if (size > n) std::memset(static_cast<uint8_t*>(buf) + n, 0, size - n);
    if (failed_over) ++failovers_;
    return Status::OK();
  }
  return last;
}

Status ReplicatedContext::Free(ReplicatedAddr* addr) {
  Status result;
  for (auto& replica : addr->replicas) {
    Status st = dsm_.Free(&replica);
    // Unreachable replicas leak until re-replication; report the first
    // hard error otherwise.
    if (!st.ok() && !FailoverWorthy(st) && result.ok()) {
      result = st;
    }
  }
  addr->replicas.clear();
  return result;
}

Status ReplicatedContext::Failover(ReplicatedAddr* addr) {
  if (addr->IsNull()) return Status::InvalidArgument("null replicated addr");
  Cluster& cluster = *dsm_.cluster();

  // Rotate the first live replica to primary.
  int live = -1;
  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    if (ReplicaLive(cluster, NodeOf(addr->replicas[r]))) {
      live = static_cast<int>(r);
      break;
    }
  }
  if (live < 0) return Status::NetworkError("no live replica to fail over to");
  if (live != 0) {
    std::rotate(addr->replicas.begin(), addr->replicas.begin() + live,
                addr->replicas.end());
  }
  const uint32_t old_epoch = addr->epoch;
  addr->epoch += 1;
  ++failovers_;
  ++seals_;
  core::NodeStatShard& shard = PrimaryShard(*addr);
  ++shard.repl_failovers;
  ++shard.repl_seals;

  // Seal the new epoch on every live replica: once the seal applies, any
  // record still in flight under the old epoch is fenced at apply time.
  Deadline deadline(QuorumDeadlineNs());
  struct SealWait {
    int session = -1;
    uint64_t seq = 0;
  };
  std::vector<SealWait> seals;
  for (auto& replica : addr->replicas) {
    const int node = NodeOf(replica);
    if (!ReplicaLive(cluster, node)) continue;
    const int session = SessionFor(node);
    if (session < 0) continue;
    uint8_t ab[16];
    AddrBytes(replica, ab);
    auto seq = shipper_.Ship(session, rdma::kReplRecordSeal, addr->epoch,
                             /*version=*/0, ab, Slice());
    if (seq.ok()) seals.push_back(SealWait{session, *seq});
  }
  for (auto& s : seals) {
    // Best effort within the deadline: a replica that misses the seal is
    // converged by anti-entropy, and its stale-epoch records still lose to
    // newer versions on apply.
    shipper_.AwaitApplied(s.session, s.seq, deadline).ok();
  }

  // Fault site repl.seal_race: model the dead primary's last in-flight
  // record arriving AFTER the seal — shipped under the old epoch with a
  // version the old primary could plausibly have drawn. The apply-side
  // epoch fence must reject it (tests assert repl_fenced_records).
  if (auto* injector = sim::GlobalFaultInjector(); injector != nullptr) {
    uint64_t delay_ns = 0;
    if (injector->ShouldFire(sim::fault_sites::kReplSealRace, &delay_ns) &&
        !image_scratch_.empty()) {
      const int node = NodeOf(addr->replicas[0]);
      const int session = SessionFor(node);
      if (session >= 0 && image_scratch_.size() <= shipper_.capacity(session)) {
        uint8_t ab[16];
        AddrBytes(addr->replicas[0], ab);
        shipper_
            .Ship(session, rdma::kReplRecordData, old_epoch,
                  addr->next_version + 1, ab,
                  Slice(image_scratch_.data(), image_scratch_.size()))
            .ok();
      }
    }
  }

  // Reconcile: find the maximum valid version across live replicas and
  // bring every live laggard up to it through the version-fenced log.
  const size_t image_len = sizeof(rdma::ReplObjectHeader) + addr->size;
  read_scratch_.resize(image_len);
  std::vector<uint64_t> seen(addr->replicas.size(), 0);
  std::vector<bool> readable(addr->replicas.size(), false);
  uint64_t v_max = 0;
  bool have = false;
  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    if (!ReplicaLive(cluster, NodeOf(addr->replicas[r]))) continue;
    Status st = dsm_.ReadWithRecovery(&addr->replicas[r], read_scratch_.data(),
                                      image_len);
    if (!st.ok()) continue;
    rdma::ReplObjectHeader h;
    std::memcpy(&h, read_scratch_.data(), sizeof(h));
    const uint8_t* payload = read_scratch_.data() + sizeof(h);
    if (h.len > addr->size || !rdma::ReplObjectValid(h, payload)) continue;
    readable[r] = true;
    seen[r] = h.version;
    if (!have || h.version > v_max) {
      v_max = h.version;
      have = true;
      image_scratch_.assign(
          read_scratch_.begin(),
          read_scratch_.begin() + static_cast<long>(sizeof(h) + h.len));
    }
  }
  if (!have || v_max < addr->committed) {
    // Transient: the committed state lives only on currently-dead replicas.
    // The epoch bump is safe to keep — retry after a replica revives.
    EnqueueRepair(*addr);
    return Status::Timeout("failover cannot reach committed state yet");
  }

  // Stamp the reconciled image with the new epoch (the object crc excludes
  // the epoch, so the image stays self-validating) and re-ship it to every
  // live replica that is behind. The log's version fence makes this safe
  // against any record that applied concurrently.
  std::memcpy(image_scratch_.data(), &addr->epoch, sizeof(addr->epoch));
  bool all_converged = true;
  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    const int node = NodeOf(addr->replicas[r]);
    if (!ReplicaLive(cluster, node)) {
      all_converged = false;
      continue;
    }
    if (readable[r] && seen[r] >= v_max) continue;
    const int session = SessionFor(node);
    uint64_t seq = 0;
    Status st = ShipImage(&shipper_, session, &dsm_, &addr->replicas[r],
                          addr->epoch, v_max, image_scratch_, &seq);
    if (!st.ok()) {
      all_converged = false;
      continue;
    }
    if (seq != 0 && !shipper_.AwaitApplied(session, seq, deadline).ok()) {
      all_converged = false;
    }
  }
  if (!all_converged) EnqueueRepair(*addr);

  addr->next_version = std::max(addr->next_version, v_max);
  addr->committed = std::max(addr->committed, v_max);
  return Status::OK();
}

// --- Anti-entropy. ----------------------------------------------------------

void ReplicatedContext::EnqueueRepair(const ReplicatedAddr& addr) {
  LockGuard<Mutex> lock(repair_mu_);
  // Dedupe against an already-queued task for the same object (repeated
  // degraded writes to one object would otherwise flood the queue): same
  // object identity on every replica means same task — refresh its
  // snapshot instead.
  for (auto& task : repairs_) {
    if (task.snapshot.replicas.size() != addr.replicas.size()) continue;
    bool same = true;
    for (size_t r = 0; same && r < addr.replicas.size(); ++r) {
      same = task.snapshot.replicas[r].obj_id == addr.replicas[r].obj_id &&
             NodeOf(task.snapshot.replicas[r]) == NodeOf(addr.replicas[r]);
    }
    if (same) {
      task.snapshot = addr;
      task.attempts = 0;
      return;
    }
  }
  if (repairs_.size() >= options_.max_pending_repairs) return;
  repairs_.push_back(RepairTask{addr, 0});
}

size_t ReplicatedContext::pending_repairs() const {
  LockGuard<Mutex> lock(repair_mu_);
  return repairs_.size();
}

void ReplicatedContext::StartAntiEntropy(int scheduler_node) {
  if (anti_entropy_task_ >= 0) return;
  anti_entropy_node_ = scheduler_node;
  anti_entropy_task_ =
      dsm_.cluster()->node(scheduler_node)->RegisterBackgroundTask([this] {
        RunAntiEntropySweep(options_.anti_entropy_budget);
      });
}

void ReplicatedContext::StopAntiEntropy() {
  if (anti_entropy_task_ < 0) return;
  dsm_.cluster()
      ->node(anti_entropy_node_)
      ->UnregisterBackgroundTask(anti_entropy_task_);
  anti_entropy_task_ = -1;
  anti_entropy_node_ = -1;
}

size_t ReplicatedContext::RunAntiEntropySweep(size_t budget) {
  // Scheduler-thread entry. The sweep owns a private client stack — a
  // DsmContext and a shipper are single-threaded handles, so the owner
  // thread's must not be touched here — built lazily on first sweep.
  if (!repair_dsm_) {
    repair_dsm_ = std::make_unique<DsmContext>(dsm_.cluster(), client_options_);
    repair_shipper_ = std::make_unique<rdma::ReplicaLogShipper>();
    repair_session_for_node_.assign(dsm_.cluster()->num_nodes(), -1);
  }
  size_t converged = 0;
  for (size_t i = 0; i < budget; ++i) {
    RepairTask task;
    {
      LockGuard<Mutex> lock(repair_mu_);
      if (repairs_.empty()) break;
      task = std::move(repairs_.front());
      repairs_.pop_front();
    }
    if (RepairOne(&task)) {
      ++converged;
    } else if (++task.attempts < kMaxRepairAttempts) {
      LockGuard<Mutex> lock(repair_mu_);
      if (repairs_.size() < options_.max_pending_repairs)
        repairs_.push_back(std::move(task));
    }
  }
  return converged;
}

bool ReplicatedContext::RepairOne(RepairTask* task) {
  ReplicatedAddr& a = task->snapshot;
  Cluster& cluster = *dsm_.cluster();
  const size_t image_len = sizeof(rdma::ReplObjectHeader) + a.size;
  repair_scratch_.resize(image_len);

  // Pass 1: newest valid image across live replicas.
  std::vector<uint64_t> seen(a.replicas.size(), 0);
  std::vector<bool> readable(a.replicas.size(), false);
  uint64_t v_max = 0;
  uint32_t e_max = a.epoch;
  bool have = false;
  bool all_live = true;
  for (size_t r = 0; r < a.replicas.size(); ++r) {
    const int node = NodeOf(a.replicas[r]);
    if (!ReplicaLive(cluster, node)) {
      all_live = false;
      continue;
    }
    Status st = repair_dsm_->ReadWithRecovery(&a.replicas[r],
                                              repair_scratch_.data(),
                                              image_len);
    if (!st.ok()) {
      // The object vanished under the sweep (freed): drop the task.
      if (st.code() == StatusCode::kNotFound ||
          st.code() == StatusCode::kInvalidArgument) {
        return true;
      }
      all_live = false;
      continue;
    }
    rdma::ReplObjectHeader h;
    std::memcpy(&h, repair_scratch_.data(), sizeof(h));
    const uint8_t* payload = repair_scratch_.data() + sizeof(h);
    if (h.len > a.size || !rdma::ReplObjectValid(h, payload)) continue;
    readable[r] = true;
    seen[r] = h.version;
    e_max = std::max(e_max, h.epoch);
    if (!have || h.version > v_max) {
      v_max = h.version;
      have = true;
      repair_best_.assign(
          repair_scratch_.begin(),
          repair_scratch_.begin() + static_cast<long>(sizeof(h) + h.len));
    }
  }
  if (!have) return false;  // nothing valid reachable yet — retry later

  // Pass 2: re-ship the best image (stamped with the highest epoch seen) to
  // every live replica that is behind. Repairs flow through the same
  // version-fenced log as writes, so a racing newer write can never be
  // regressed — the applier drops the repair as a duplicate.
  std::memcpy(repair_best_.data(), &e_max, sizeof(e_max));
  bool converged = all_live;
  for (size_t r = 0; r < a.replicas.size(); ++r) {
    const int node = NodeOf(a.replicas[r]);
    if (!ReplicaLive(cluster, node)) continue;
    if (readable[r] && seen[r] >= v_max) continue;
    const int session = RepairSessionFor(node);
    uint64_t seq = 0;
    Status st = ShipImage(repair_shipper_.get(), session, repair_dsm_.get(),
                          &a.replicas[r], e_max, v_max, repair_best_, &seq);
    if (!st.ok()) {
      converged = false;
      continue;
    }
    if (seq != 0) {
      Deadline deadline(QuorumDeadlineNs());
      if (!repair_shipper_->AwaitApplied(session, seq, deadline).ok()) {
        converged = false;
        continue;
      }
    }
    anti_entropy_repairs_.fetch_add(1, std::memory_order_relaxed);
    ++cluster.node(node)->client_stat_shard().repl_anti_entropy_repairs;
  }
  return converged;
}

}  // namespace corm::dsm
