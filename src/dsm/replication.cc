#include "dsm/replication.h"

#include <set>

#include "common/logging.h"

namespace corm::dsm {

ReplicatedContext::ReplicatedContext(Cluster* cluster, int replication_factor)
    : dsm_(cluster), k_(replication_factor) {
  CORM_CHECK_GT(k_, 0);
  CORM_CHECK_LE(k_, cluster->num_nodes());
}

Result<ReplicatedAddr> ReplicatedContext::Alloc(size_t size) {
  ReplicatedAddr addr;
  std::set<int> used;
  // Place each replica on a distinct live node.
  for (int r = 0; r < k_; ++r) {
    int node = -1;
    for (int attempt = 0; attempt < 4 * dsm_.cluster()->num_nodes();
         ++attempt) {
      const int candidate = dsm_.cluster()->PickNode();
      if (!used.count(candidate) && !dsm_.cluster()->IsDead(candidate)) {
        node = candidate;
        break;
      }
    }
    if (node < 0) {
      // Unwind partial placement.
      for (auto& replica : addr.replicas) dsm_.Free(&replica).ok();
      return Status::NetworkError("not enough live nodes for replication");
    }
    used.insert(node);
    auto replica = dsm_.AllocOn(node, size);
    if (!replica.ok()) {
      for (auto& r2 : addr.replicas) dsm_.Free(&r2).ok();
      return replica.status();
    }
    addr.replicas.push_back(*replica);
  }
  return addr;
}

Status ReplicatedContext::Write(ReplicatedAddr* addr, const void* buf,
                                size_t size) {
  if (addr->IsNull()) return Status::InvalidArgument("null replicated addr");
  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    Status st = dsm_.Write(&addr->replicas[r], buf, size);
    if (st.ok()) continue;
    if (st.code() == StatusCode::kNetworkError && r > 0) {
      // Backup unreachable: degrade, keep the data durable on the rest.
      ++degraded_writes_;
      continue;
    }
    return st;  // primary unreachable or a hard error: surface it
  }
  return Status::OK();
}

Status ReplicatedContext::Read(ReplicatedAddr* addr, void* buf, size_t size) {
  if (addr->IsNull()) return Status::InvalidArgument("null replicated addr");
  Status last = Status::NetworkError("no replicas");
  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    last = dsm_.ReadWithRecovery(&addr->replicas[r], buf, size);
    if (last.ok()) {
      if (r > 0) ++failovers_;
      return last;
    }
    if (last.code() != StatusCode::kNetworkError) return last;
    // Node unreachable: try the next replica.
  }
  return last;
}

Status ReplicatedContext::Free(ReplicatedAddr* addr) {
  Status result;
  for (auto& replica : addr->replicas) {
    Status st = dsm_.Free(&replica);
    // Unreachable replicas leak until re-replication; report the first
    // hard error otherwise.
    if (!st.ok() && st.code() != StatusCode::kNetworkError && result.ok()) {
      result = st;
    }
  }
  addr->replicas.clear();
  return result;
}

}  // namespace corm::dsm
