#include "dsm/replication.h"

#include <set>

#include "common/logging.h"

namespace corm::dsm {

namespace {
// A replica attempt that failed with one of these is a node problem, not a
// data problem: the caller should try the next replica.
bool FailoverWorthy(const Status& st) {
  return st.code() == StatusCode::kNetworkError ||
         st.code() == StatusCode::kTimeout;
}
}  // namespace

ReplicatedContext::ReplicatedContext(Cluster* cluster, int replication_factor,
                                     const core::Context::Options& options)
    : dsm_(cluster, options), k_(replication_factor) {
  CORM_CHECK_GT(k_, 0);
  CORM_CHECK_LE(k_, cluster->num_nodes());
}

Result<ReplicatedAddr> ReplicatedContext::Alloc(size_t size) {
  ReplicatedAddr addr;
  std::set<int> used;
  const FailureDetector& detector = *dsm_.cluster()->failure_detector();
  // Place each replica on a distinct node the detector trusts.
  for (int r = 0; r < k_; ++r) {
    int node = -1;
    for (int attempt = 0; attempt < 4 * dsm_.cluster()->num_nodes();
         ++attempt) {
      const int candidate = dsm_.cluster()->PickNode();
      if (!used.count(candidate) && detector.Serving(candidate)) {
        node = candidate;
        break;
      }
    }
    if (node < 0) {
      // Unwind partial placement.
      for (auto& replica : addr.replicas) dsm_.Free(&replica).ok();
      return Status::NetworkError("not enough live nodes for replication");
    }
    used.insert(node);
    auto replica = dsm_.AllocOn(node, size);
    if (!replica.ok()) {
      for (auto& r2 : addr.replicas) dsm_.Free(&r2).ok();
      return replica.status();
    }
    addr.replicas.push_back(*replica);
  }
  return addr;
}

Status ReplicatedContext::Write(ReplicatedAddr* addr, const void* buf,
                                size_t size) {
  if (addr->IsNull()) return Status::InvalidArgument("null replicated addr");
  const FailureDetector& detector = *dsm_.cluster()->failure_detector();
  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    // Backups the detector already declared dead are skipped without a
    // doomed network attempt; suspects are still tried (the detector may
    // be behind). The primary is always attempted — only a real error may
    // fail a write.
    if (r > 0 && !detector.MaybeServing(NodeOf(addr->replicas[r]))) {
      ++degraded_writes_;
      continue;
    }
    Status st = dsm_.Write(&addr->replicas[r], buf, size);
    if (st.ok()) continue;
    if (FailoverWorthy(st) && r > 0) {
      // Backup unreachable: degrade, keep the data durable on the rest.
      ++degraded_writes_;
      continue;
    }
    return st;  // primary unreachable or a hard error: surface it
  }
  return Status::OK();
}

Status ReplicatedContext::Read(ReplicatedAddr* addr, void* buf, size_t size) {
  if (addr->IsNull()) return Status::InvalidArgument("null replicated addr");
  const FailureDetector& detector = *dsm_.cluster()->failure_detector();
  Status last = Status::NetworkError("no replicas");
  bool skipped_earlier = false;
  for (size_t r = 0; r < addr->replicas.size(); ++r) {
    // Detector-first: skip replicas already declared dead instead of
    // burning a timeout on each — unless every replica is distrusted, in
    // which case the last one is attempted anyway as a best effort.
    if (!detector.MaybeServing(NodeOf(addr->replicas[r])) &&
        r + 1 < addr->replicas.size()) {
      skipped_earlier = true;
      continue;
    }
    last = dsm_.ReadWithRecovery(&addr->replicas[r], buf, size);
    if (last.ok()) {
      if (r > 0 || skipped_earlier) ++failovers_;
      return last;
    }
    if (!FailoverWorthy(last)) return last;
    // Node unreachable or unresponsive: try the next replica.
  }
  return last;
}

Status ReplicatedContext::Free(ReplicatedAddr* addr) {
  Status result;
  for (auto& replica : addr->replicas) {
    Status st = dsm_.Free(&replica);
    // Unreachable replicas leak until re-replication; report the first
    // hard error otherwise.
    if (!st.ok() && !FailoverWorthy(st) && result.ok()) {
      result = st;
    }
  }
  addr->replicas.clear();
  return result;
}

}  // namespace corm::dsm
