// DsmContext: the Table 2 API over a whole cluster. Routes every operation
// by the node id embedded in the pointer, re-stamping it after server-side
// pointer corrections (objects never migrate between nodes — the paper's
// compaction is node-local, §3.1.2: "CoRM can compact blocks ... belonging
// to the same machine").

#ifndef CORM_DSM_DSM_CONTEXT_H_
#define CORM_DSM_DSM_CONTEXT_H_

#include <memory>
#include <vector>

#include "core/client.h"
#include "dsm/cluster.h"

namespace corm::dsm {

class DsmContext {
 public:
  explicit DsmContext(Cluster* cluster)
      : DsmContext(cluster, core::Context::Options{}) {}
  // Per-node client options (chaos tests shorten the retry deadlines).
  DsmContext(Cluster* cluster, const core::Context::Options& options);

  DsmContext(const DsmContext&) = delete;
  DsmContext& operator=(const DsmContext&) = delete;

  // Allocates on a node chosen by the cluster's placement policy.
  Result<core::GlobalAddr> Alloc(size_t size);
  // Allocates on a specific node (replication and co-location want this).
  Result<core::GlobalAddr> AllocOn(int node, size_t size);

  Status Free(core::GlobalAddr* addr);
  Status Read(core::GlobalAddr* addr, void* buf, size_t size);
  Status Write(core::GlobalAddr* addr, const void* buf, size_t size);
  Status DirectRead(const core::GlobalAddr& addr, void* buf, size_t size);
  // Chained multi-object DirectRead (DESIGN.md §12): consecutive
  // same-node runs of `addrs` coalesce into one doorbell-batched post on
  // that node's context. `bufs` strides by `size`; per-object outcomes in
  // `statuses`. Returns the first failure (OK when all succeeded).
  Status DirectReadBatch(const core::GlobalAddr* addrs, size_t n, void* bufs,
                         size_t size, Status* statuses);
  Status ScanRead(core::GlobalAddr* addr, void* buf, size_t size);
  Status ReleasePtr(core::GlobalAddr* addr);
  Status ReadWithRecovery(
      core::GlobalAddr* addr, void* buf, size_t size,
      core::Context::MovedFallback fallback =
          core::Context::MovedFallback::kScanRead);

  // --- Keyed API (DESIGN.md §13). ----------------------------------------
  // Routed by Cluster::KeyOwner(key) — the key's hash-range home — instead
  // of pointer bits. A dead home answers with transient kNetworkError;
  // the range moves only via Cluster::RehomeDeadNode, never implicitly
  // here (a silent rehome would strand the acked writes on the old home).
  // Put returns the object's DSM pointer (node id stamped), so keyed and
  // pointer callers name the same object.
  Result<core::GlobalAddr> Put(uint64_t key, const void* buf, size_t size);
  Status Get(uint64_t key, void* buf, size_t size);
  Status Del(uint64_t key);

  Cluster* cluster() { return cluster_; }
  // The per-node client (stats inspection in tests/benches).
  core::Context* context(int node) { return contexts_[node].get(); }

 private:
  // Validates the target node and returns its context, or kNetworkError.
  Result<core::Context*> Route(const core::GlobalAddr& addr);
  // Same, for keyed ops: resolves the key's home node (written to
  // *node_out even on failure, for Observe attribution).
  Result<core::Context*> RouteKey(uint64_t key, int* node_out);

  // Passive failure detection: operation outcomes double as probes. A
  // network error or timeout against `node` counts as a missed heartbeat;
  // a success renews its lease.
  Status Observe(int node, Status st);

  Cluster* const cluster_;
  std::vector<std::unique_ptr<core::Context>> contexts_;
};

}  // namespace corm::dsm

#endif  // CORM_DSM_DSM_CONTEXT_H_
