// Cross-node object migration and cluster rebalancing (extension).
//
// CoRM's compaction is deliberately node-local (§3.1.2) — it never needs
// cross-node coordination. What it cannot fix is *imbalance between nodes*:
// one node's memory can fill while others sit empty. This module adds the
// missing DSM-level mechanism: migrating an object allocates a fresh copy
// on the target node and frees the original, returning a new 128-bit
// pointer (cross-node moves cannot preserve pointers — the virtual-address
// remapping trick only works inside one machine's page tables).
//
// The Rebalancer composes the two mechanisms the way a deployment would:
// move coarse imbalance between nodes by migration, then let each node's
// compactor densify locally.

#ifndef CORM_DSM_MIGRATION_H_
#define CORM_DSM_MIGRATION_H_

#include <vector>

#include "dsm/dsm_context.h"

namespace corm::dsm {

class Migrator {
 public:
  explicit Migrator(Cluster* cluster) : dsm_(cluster) {}

  // Moves the object at `addr` (payload `size` bytes) to `target_node`.
  // On success `addr` points at the new replica; the original is freed.
  // The old pointer value is dead afterwards — callers own the fan-out of
  // the new pointer, exactly like after a ReleasePtr (§3.3).
  Status Migrate(core::GlobalAddr* addr, size_t size, int target_node);

  uint64_t objects_migrated() const { return objects_migrated_; }
  uint64_t bytes_migrated() const { return bytes_migrated_; }

  DsmContext* dsm() { return &dsm_; }

 private:
  // Deliberately unguarded: a Migrator is a per-client-thread handle (it
  // owns its DsmContext), so the counters are single-threaded by the same
  // discipline as ReplicatedContext.
  DsmContext dsm_;
  uint64_t objects_migrated_ = 0;
  uint64_t bytes_migrated_ = 0;
};

// Balances active memory across nodes by migrating objects from nodes
// above the cluster mean to nodes below it, then compacting every node.
struct RebalanceReport {
  uint64_t objects_migrated = 0;
  uint64_t bytes_migrated = 0;
  double imbalance_before = 0;  // max/mean active memory across nodes
  double imbalance_after = 0;
  size_t blocks_freed_by_compaction = 0;
};

class Rebalancer {
 public:
  Rebalancer(Cluster* cluster, Migrator* migrator)
      : cluster_(cluster), migrator_(migrator) {}

  // Migrates objects (provided by the caller, who owns the index of
  // pointers) from overloaded nodes until every node is within
  // `tolerance` of the mean, then runs the fragmentation policy
  // everywhere. `objects` entries are updated in place with their sizes
  // supplied in `sizes`.
  Result<RebalanceReport> Rebalance(std::vector<core::GlobalAddr>* objects,
                                    const std::vector<uint32_t>& sizes,
                                    double tolerance = 1.10);

 private:
  double Imbalance() const;

  Cluster* const cluster_;
  Migrator* const migrator_;
};

}  // namespace corm::dsm

#endif  // CORM_DSM_MIGRATION_H_
