#include "dsm/migration.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace corm::dsm {

Status Migrator::Migrate(core::GlobalAddr* addr, size_t size,
                         int target_node) {
  if (target_node < 0 || target_node >= dsm_.cluster()->num_nodes()) {
    return Status::InvalidArgument("bad target node");
  }
  if (NodeOf(*addr) == target_node) return Status::OK();

  // Read the source object (with recovery: it may be mid-compaction).
  std::vector<uint8_t> payload(size);
  CORM_RETURN_NOT_OK(
      dsm_.ReadWithRecovery(addr, payload.data(), size));

  // Allocate + populate on the target before destroying the original, so
  // a failure leaves the object intact at the source.
  auto fresh = dsm_.AllocOn(target_node, size);
  CORM_RETURN_NOT_OK(fresh.status());
  Status st = dsm_.Write(&*fresh, payload.data(), size);
  if (!st.ok()) {
    dsm_.Free(&*fresh).ok();
    return st;
  }
  core::GlobalAddr old = *addr;
  st = dsm_.Free(&old);
  if (!st.ok()) {
    // Source free failed (e.g. node died between read and free): keep the
    // new copy as canonical anyway; the source replica leaks until its
    // node recovers. Surface nothing — the migration succeeded.
  }
  *addr = *fresh;
  ++objects_migrated_;
  bytes_migrated_ += size;
  return Status::OK();
}

double Rebalancer::Imbalance() const {
  uint64_t total = 0, max_bytes = 0;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    const uint64_t bytes = cluster_->node(n)->ActiveMemoryBytes();
    total += bytes;
    max_bytes = std::max(max_bytes, bytes);
  }
  const double mean =
      static_cast<double>(total) / cluster_->num_nodes();
  return mean > 0 ? static_cast<double>(max_bytes) / mean : 1.0;
}

Result<RebalanceReport> Rebalancer::Rebalance(
    std::vector<core::GlobalAddr>* objects,
    const std::vector<uint32_t>& sizes, double tolerance) {
  CORM_CHECK_EQ(objects->size(), sizes.size());
  RebalanceReport report;
  report.imbalance_before = Imbalance();

  const int nodes = cluster_->num_nodes();
  auto node_bytes = [&](int n) {
    return cluster_->node(n)->ActiveMemoryBytes();
  };
  uint64_t total = 0;
  for (int n = 0; n < nodes; ++n) total += node_bytes(n);
  const auto mean = static_cast<uint64_t>(total / nodes);

  // Group candidate objects by current node.
  std::vector<std::vector<size_t>> by_node(nodes);
  for (size_t i = 0; i < objects->size(); ++i) {
    const int n = NodeOf((*objects)[i]);
    if (n < nodes) by_node[n].push_back(i);
  }

  const uint64_t before_migrated = migrator_->objects_migrated();
  const uint64_t before_bytes = migrator_->bytes_migrated();
  const FailureDetector& detector = *cluster_->failure_detector();
  for (int src = 0; src < nodes; ++src) {
    // Migration off a suspect node would race its recovery; only drain
    // sources the detector fully trusts.
    if (!detector.Serving(src)) continue;
    size_t cursor = 0;
    while (node_bytes(src) > mean * tolerance &&
           cursor < by_node[src].size()) {
      // Pick the currently least-loaded target the detector trusts.
      int dst = -1;
      uint64_t best = UINT64_MAX;
      for (int n = 0; n < nodes; ++n) {
        if (n == src || !detector.Serving(n)) continue;
        if (node_bytes(n) < best) {
          best = node_bytes(n);
          dst = n;
        }
      }
      if (dst < 0 || best >= mean) break;  // nowhere underloaded to move to
      const size_t idx = by_node[src][cursor++];
      Status st =
          migrator_->Migrate(&(*objects)[idx], sizes[idx], dst);
      if (!st.ok() && st.code() != StatusCode::kNetworkError &&
          st.code() != StatusCode::kTimeout) {
        return st;
      }
    }
  }
  report.objects_migrated = migrator_->objects_migrated() - before_migrated;
  report.bytes_migrated = migrator_->bytes_migrated() - before_bytes;

  // Local compaction everywhere: migration punched holes at the sources.
  auto compaction = cluster_->CompactAllIfFragmented();
  CORM_RETURN_NOT_OK(compaction.status());
  for (const auto& r : *compaction) {
    report.blocks_freed_by_compaction += r.blocks_freed;
  }
  report.imbalance_after = Imbalance();
  return report;
}

}  // namespace corm::dsm
