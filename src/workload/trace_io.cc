#include "workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

namespace corm::workload {

Status SaveTrace(const Trace& trace, std::ostream* out) {
  *out << "# corm trace v1: " << trace.size() << " ops\n";
  for (const TraceOp& op : trace) {
    if (op.kind == TraceOp::Kind::kAlloc) {
      *out << "a " << op.size << "\n";
    } else {
      *out << "f " << op.target << "\n";
    }
  }
  return out->good() ? Status::OK() : Status::Internal("write failed");
}

Status SaveTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::InvalidArgument("cannot open " + path);
  return SaveTrace(trace, &file);
}

Result<Trace> LoadTrace(std::istream* in) {
  Trace trace;
  std::unordered_set<uint64_t> freed;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    char op = 0;
    tokens >> op;
    if (op == 'a') {
      uint64_t size = 0;
      tokens >> size;
      if (!tokens || size == 0) {
        return Status::InvalidArgument("bad alloc at line " +
                                       std::to_string(line_no));
      }
      trace.push_back(
          {TraceOp::Kind::kAlloc, static_cast<uint32_t>(size), 0});
    } else if (op == 'f') {
      uint64_t target = 0;
      tokens >> target;
      if (!tokens || target >= trace.size() ||
          trace[target].kind != TraceOp::Kind::kAlloc) {
        return Status::InvalidArgument("bad free target at line " +
                                       std::to_string(line_no));
      }
      if (!freed.insert(target).second) {
        return Status::InvalidArgument("double free at line " +
                                       std::to_string(line_no));
      }
      trace.push_back({TraceOp::Kind::kFree, 0, target});
    } else {
      return Status::InvalidArgument("unknown op at line " +
                                     std::to_string(line_no));
    }
  }
  return trace;
}

Result<Trace> LoadTraceFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::InvalidArgument("cannot open " + path);
  return LoadTrace(&file);
}

}  // namespace corm::workload
