#include "workload/synthetic_trace.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/random.h"

namespace corm::workload {

Trace MakeSyntheticTrace(uint64_t count, uint32_t object_size,
                         double dealloc_rate, uint64_t seed) {
  Trace trace;
  trace.reserve(count + static_cast<uint64_t>(count * dealloc_rate) + 1);
  for (uint64_t i = 0; i < count; ++i) {
    trace.push_back({TraceOp::Kind::kAlloc, object_size, 0});
  }
  std::vector<uint64_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  // Fisher-Yates shuffle with the deterministic project Rng.
  for (uint64_t i = count; i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  const auto to_free = static_cast<uint64_t>(count * dealloc_rate);
  for (uint64_t i = 0; i < to_free; ++i) {
    trace.push_back({TraceOp::Kind::kFree, 0, order[i]});
  }
  return trace;
}

}  // namespace corm::workload
