// Synthetic allocation-spike traces (paper §4.4.2, Figure 17): allocate N
// objects of one size, then randomly deallocate a fixed fraction.

#ifndef CORM_WORKLOAD_SYNTHETIC_TRACE_H_
#define CORM_WORKLOAD_SYNTHETIC_TRACE_H_

#include <cstdint>

#include "workload/trace.h"

namespace corm::workload {

// `count` allocations of `object_size` bytes followed by frees of a random
// `dealloc_rate` fraction of them (uniformly chosen, order shuffled).
Trace MakeSyntheticTrace(uint64_t count, uint32_t object_size,
                         double dealloc_rate, uint64_t seed);

}  // namespace corm::workload

#endif  // CORM_WORKLOAD_SYNTHETIC_TRACE_H_
