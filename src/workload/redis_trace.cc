#include "workload/redis_trace.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include "common/byte_units.h"
#include "common/random.h"

namespace corm::workload {

namespace {
constexpr uint32_t kKeySize = 8;

// Appends one key+value pair; returns the indices of the two alloc ops.
std::pair<uint64_t, uint64_t> AppendEntry(Trace* trace, uint32_t value_size) {
  const uint64_t key_op = trace->size();
  trace->push_back({TraceOp::Kind::kAlloc, kKeySize, 0});
  const uint64_t val_op = trace->size();
  trace->push_back({TraceOp::Kind::kAlloc, value_size, 0});
  return {key_op, val_op};
}
}  // namespace

Trace MakeRedisTraceT1(uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  trace.reserve(20'000);
  for (int i = 0; i < 10'000; ++i) {
    const auto value_size =
        static_cast<uint32_t>(1 + rng.Uniform(16 * kKiB));
    AppendEntry(&trace, value_size);
  }
  return trace;
}

Trace MakeRedisTraceT2(uint64_t seed) {
  (void)seed;  // fully deterministic
  Trace trace;
  struct Entry {
    uint64_t key_op, val_op;
    uint64_t bytes;
  };
  std::deque<Entry> lru;  // front = oldest
  uint64_t cached_bytes = 0;
  const uint64_t capacity = 100 * kMiB;

  auto insert = [&](uint32_t value_size) {
    auto [key_op, val_op] = AppendEntry(&trace, value_size);
    const uint64_t bytes = kKeySize + value_size;
    lru.push_back({key_op, val_op, bytes});
    cached_bytes += bytes;
    while (cached_bytes > capacity) {
      const Entry& victim = lru.front();
      trace.push_back({TraceOp::Kind::kFree, 0, victim.key_op});
      trace.push_back({TraceOp::Kind::kFree, 0, victim.val_op});
      cached_bytes -= victim.bytes;
      lru.pop_front();
    }
  };

  for (int i = 0; i < 700'000; ++i) insert(150);
  for (int i = 0; i < 170'000; ++i) insert(300);
  return trace;
}

Trace MakeRedisTraceT3(uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  for (int i = 0; i < 5; ++i) {
    AppendEntry(&trace, 160 * kKiB);
  }
  std::vector<std::pair<uint64_t, uint64_t>> batch;
  batch.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    batch.push_back(AppendEntry(&trace, 150));
  }
  // Remove 25,000 random keys from the last batch.
  for (uint64_t i = batch.size(); i > 1; --i) {
    std::swap(batch[i - 1], batch[rng.Uniform(i)]);
  }
  for (int i = 0; i < 25'000; ++i) {
    trace.push_back({TraceOp::Kind::kFree, 0, batch[i].first});
    trace.push_back({TraceOp::Kind::kFree, 0, batch[i].second});
  }
  return trace;
}

}  // namespace corm::workload
