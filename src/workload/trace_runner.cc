#include "workload/trace_runner.h"

#include <vector>

#include "common/logging.h"

namespace corm::workload {

TraceResult RunTrace(const Trace& trace, baseline::SimConfig config,
                     const alloc::SizeClassTable* classes) {
  baseline::AllocatorSim sim(config, classes);
  std::vector<baseline::SimHandle> handles(trace.size(), 0);
  for (uint64_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace[i];
    if (op.kind == TraceOp::Kind::kAlloc) {
      handles[i] = sim.Alloc(op.size);
    } else {
      CORM_CHECK_LT(op.target, i);
      sim.Free(handles[op.target]);
    }
  }
  TraceResult result;
  result.active_bytes_before = sim.ActiveBytes();
  result.live_bytes = sim.LiveBytes();
  result.ideal_bytes = sim.IdealBytes();
  result.compaction = sim.Compact();
  result.active_bytes_after = sim.ActiveBytes();
  return result;
}

}  // namespace corm::workload
