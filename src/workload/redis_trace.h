// Redis memory traces (paper §4.4.3): reconstructions of the allocation
// patterns the paper extracted from the memefficiency unit test of Redis
// v5.0.7. The trace contents follow the paper's verbatim descriptions; see
// DESIGN.md §2 for the substitution note.

#ifndef CORM_WORKLOAD_REDIS_TRACE_H_
#define CORM_WORKLOAD_REDIS_TRACE_H_

#include <cstdint>

#include "workload/trace.h"

namespace corm::workload {

// redis-mem-t1: default Redis configuration; 10,000 keys of 8 bytes each
// with values of sizes ranging from 1 B to 16 KiB (uniform).
Trace MakeRedisTraceT1(uint64_t seed);

// redis-mem-t2: Redis as an LRU cache capped at 100 MiB. First 700,000
// 8-byte keys with 150-byte values, then 170,000 8-byte keys with 300-byte
// values; insertions beyond the capacity evict (free) the oldest entries.
Trace MakeRedisTraceT2(uint64_t seed);

// redis-mem-t3: default configuration; 5 keys holding 160 KiB data
// structures, then 50,000 keys with 150-byte values, then removal of
// 25,000 keys from that last batch.
Trace MakeRedisTraceT3(uint64_t seed);

}  // namespace corm::workload

#endif  // CORM_WORKLOAD_REDIS_TRACE_H_
