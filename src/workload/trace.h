// Allocation traces: the input format of the memory studies (paper §4.4).

#ifndef CORM_WORKLOAD_TRACE_H_
#define CORM_WORKLOAD_TRACE_H_

#include <cstdint>
#include <vector>

namespace corm::workload {

struct TraceOp {
  enum class Kind : uint8_t { kAlloc, kFree };
  Kind kind = Kind::kAlloc;
  uint32_t size = 0;    // kAlloc: object size in bytes
  uint64_t target = 0;  // kFree: index of the trace op that allocated it
};

using Trace = std::vector<TraceOp>;

}  // namespace corm::workload

#endif  // CORM_WORKLOAD_TRACE_H_
