// Replays allocation traces through the compaction simulator and reports
// the active-memory measurements used by Figures 17-19.

#ifndef CORM_WORKLOAD_TRACE_RUNNER_H_
#define CORM_WORKLOAD_TRACE_RUNNER_H_

#include <cstdint>

#include "alloc/size_classes.h"
#include "baseline/compaction_sim.h"
#include "workload/trace.h"

namespace corm::workload {

struct TraceResult {
  uint64_t active_bytes_before = 0;  // after replay, before compaction
  uint64_t active_bytes_after = 0;   // after running compaction to fixpoint
  uint64_t ideal_bytes = 0;          // ideal compactor bound
  uint64_t live_bytes = 0;
  baseline::CompactionOutcome compaction;
};

// Replays `trace` through a fresh AllocatorSim with the given configuration
// and size classes, then compacts.
TraceResult RunTrace(const Trace& trace, baseline::SimConfig config,
                     const alloc::SizeClassTable* classes);

}  // namespace corm::workload

#endif  // CORM_WORKLOAD_TRACE_RUNNER_H_
