// YCSB-style key/operation generator (paper §4.2.2; Cooper et al. [12]).

#ifndef CORM_WORKLOAD_YCSB_H_
#define CORM_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "common/zipf.h"

namespace corm::workload {

struct YcsbConfig {
  uint64_t num_keys = 1'000'000;
  // 0 = uniform; the paper's skewed runs use Zipf theta in [0.6, 0.99].
  double zipf_theta = 0.0;
  // Fraction of reads; the paper uses 100:0, 95:5 and 50:50 mixes.
  double read_fraction = 1.0;
  uint64_t seed = 1;
};

class YcsbGenerator {
 public:
  struct Op {
    bool is_read;
    uint64_t key;
  };

  explicit YcsbGenerator(YcsbConfig config)
      : config_(config), rng_(config.seed ^ 0x5bd1e995) {
    if (config_.zipf_theta > 0.0) {
      zipf_ = std::make_unique<ZipfGenerator>(config_.num_keys,
                                              config_.zipf_theta,
                                              config_.seed);
    }
  }

  Op Next() {
    Op op;
    op.is_read = rng_.NextDouble() < config_.read_fraction;
    op.key = zipf_ ? zipf_->Next() : rng_.Uniform(config_.num_keys);
    if (op.key >= config_.num_keys) op.key = config_.num_keys - 1;
    return op;
  }

  const YcsbConfig& config() const { return config_; }

 private:
  const YcsbConfig config_;
  Rng rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
};

}  // namespace corm::workload

#endif  // CORM_WORKLOAD_YCSB_H_
