// Keyed YCSB driver (DESIGN.md §13): drives the Put/Get/Del key-value
// surface instead of raw 128-bit pointers. This is the default client-side
// workload shape now that the keyed API is the primary surface — the
// pointer-based figure benches keep their own drivers for the paper's
// pointer-path reproductions.
//
// Templated on the context type so the same driver runs against a single
// node (core::Context) and a cluster (dsm::DsmContext): both expose the
// identical keyed signatures, only the routing underneath differs.
//
// Verification: every key's value is a pure function of the key (FillValue
// below), so a Get that returns the wrong object's bytes — a dangling or
// misdirected index hint — is caught immediately, under any concurrency.
// Transient errors (dead home node, retry budget exhausted mid-chaos) are
// counted, not fatal: chaos runs keep driving ops through kill/restart
// storms and judge the counters afterwards.

#ifndef CORM_WORKLOAD_KEYED_DRIVER_H_
#define CORM_WORKLOAD_KEYED_DRIVER_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "workload/ycsb.h"

namespace corm::workload {

// Deterministic per-key value bytes (SplitMix64 stream seeded by the key).
inline void FillValue(uint64_t key, uint8_t* buf, size_t n) {
  uint64_t x = key * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL;
  for (size_t i = 0; i < n; ++i) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    buf[i] = static_cast<uint8_t>(x >> 56);
  }
}

inline bool CheckValue(uint64_t key, const uint8_t* buf, size_t n) {
  std::vector<uint8_t> expect(n);
  FillValue(key, expect.data(), n);
  return std::memcmp(expect.data(), buf, n) == 0;
}

struct KeyedDriverConfig {
  YcsbConfig ycsb;
  size_t value_size = 24;
  // Fraction of *write* ops issued as Del-then-Put (exercises the
  // unlink-before-free path while keeping the key set fully loaded).
  double delete_fraction = 0.0;
  // Added to every generated key. Concurrent drivers get disjoint key
  // spaces this way: the keyed contract makes object reuse after Del the
  // application's problem, exactly as for raw pointers (DESIGN.md §13), so
  // cross-thread Del/Put on one key is deliberately out of scope here.
  uint64_t key_offset = 0;
};

struct KeyedDriverReport {
  uint64_t ops = 0;
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t dels = 0;
  // A Get/Del that found no entry. Under a pure update workload every key
  // is loaded, so steady-state runs expect zero; chaos runs tolerate them
  // for keys whose home node is mid-restart.
  uint64_t not_found = 0;
  // kNetworkError / kTimeout — the key's home was dead or the retry budget
  // ran out. Transient by contract (the op was never acked).
  uint64_t transient = 0;
  uint64_t failures = 0;  // any other non-OK outcome (a real bug)
  // Gets that returned bytes not matching FillValue(key): a misdirected
  // read through a dangling hint. Must be zero, always.
  uint64_t corruptions = 0;
};

template <typename Ctx>
class KeyedDriver {
 public:
  KeyedDriver(Ctx* ctx, KeyedDriverConfig config)
      : ctx_(ctx), config_(config), gen_(config.ycsb) {}

  // Loads every key so the run phase's Gets hit. Fails hard: the load
  // phase runs before any chaos is armed.
  Status Load() {
    std::vector<uint8_t> buf(config_.value_size);
    for (uint64_t i = 0; i < config_.ycsb.num_keys; ++i) {
      const uint64_t k = config_.key_offset + i;
      FillValue(k, buf.data(), buf.size());
      auto addr = ctx_->Put(k, buf.data(), buf.size());
      CORM_RETURN_NOT_OK(addr.status());
    }
    return Status::OK();
  }

  // Drives n ops from the YCSB generator through the keyed API,
  // classifying every outcome into the report.
  KeyedDriverReport Run(size_t n) {
    KeyedDriverReport r;
    std::vector<uint8_t> buf(config_.value_size);
    Rng del_rng(config_.ycsb.seed ^ 0x94d049bb133111ebULL);
    for (size_t i = 0; i < n; ++i) {
      const YcsbGenerator::Op op = gen_.Next();
      const uint64_t key = config_.key_offset + op.key;
      ++r.ops;
      if (op.is_read) {
        ++r.gets;
        const Status st = ctx_->Get(key, buf.data(), buf.size());
        if (st.ok()) {
          if (!CheckValue(key, buf.data(), buf.size())) ++r.corruptions;
        } else {
          Classify(st, &r);
        }
      } else if (config_.delete_fraction > 0.0 &&
                 del_rng.NextDouble() < config_.delete_fraction) {
        ++r.dels;
        Classify(ctx_->Del(key), &r);
        // Reload immediately so the key set stays stable for later Gets.
        ++r.puts;
        FillValue(key, buf.data(), buf.size());
        Classify(ctx_->Put(key, buf.data(), buf.size()).status(), &r);
      } else {
        ++r.puts;
        FillValue(key, buf.data(), buf.size());
        Classify(ctx_->Put(key, buf.data(), buf.size()).status(), &r);
      }
    }
    return r;
  }

  const KeyedDriverConfig& config() const { return config_; }

 private:
  static void Classify(const Status& st, KeyedDriverReport* r) {
    if (st.ok()) return;
    switch (st.code()) {
      case StatusCode::kNotFound:
        ++r->not_found;
        break;
      case StatusCode::kNetworkError:
      case StatusCode::kTimeout:
      case StatusCode::kObjectLocked:
      case StatusCode::kObjectMoved:
      case StatusCode::kTornRead:
      case StatusCode::kStalePointer:
      case StatusCode::kQpBroken:
        ++r->transient;
        break;
      default:
        ++r->failures;
        break;
    }
  }

  Ctx* const ctx_;
  const KeyedDriverConfig config_;
  YcsbGenerator gen_;
};

}  // namespace corm::workload

#endif  // CORM_WORKLOAD_KEYED_DRIVER_H_
