// Size-class table for the concurrent memory allocator (paper §2.1.1,
// §3.1.1): a list of distinct 8-byte-aligned slot sizes chosen to bound
// internal fragmentation from rounding up to the nearest class.

#ifndef CORM_ALLOC_SIZE_CLASSES_H_
#define CORM_ALLOC_SIZE_CLASSES_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace corm::alloc {

class SizeClassTable {
 public:
  // Default table: powers of two plus midpoints (1.5x steps), 16 B .. 16 KiB.
  // Worst-case internal fragmentation from rounding is ~33%.
  static SizeClassTable Default();

  // Power-of-two-only table, 8 B .. `max`, as used by the paper's
  // experiments that sweep object sizes 8..2048 B and 256..12288 B.
  static SizeClassTable PowersOfTwo(uint32_t min_size, uint32_t max_size);

  // Jemalloc-style spacing (8-byte quantum up to 64 B, then four classes
  // per doubling), used by the memory-study simulator where Redis traces
  // allocate objects up to 160 KiB. Purely metadata — the runtime layout
  // constraint (64 B multiples) does not apply here.
  static SizeClassTable JemallocLike(uint32_t max_size);

  // A caller-supplied table; sizes must be ascending, distinct, 8-aligned.
  explicit SizeClassTable(std::vector<uint32_t> sizes);

  // Index of the smallest class that fits `size`, or error when `size`
  // exceeds the largest class.
  Result<uint32_t> ClassFor(uint32_t size) const;

  uint32_t ClassSize(uint32_t idx) const { return sizes_[idx]; }
  uint32_t num_classes() const { return static_cast<uint32_t>(sizes_.size()); }
  const std::vector<uint32_t>& sizes() const { return sizes_; }

 private:
  std::vector<uint32_t> sizes_;
};

}  // namespace corm::alloc

#endif  // CORM_ALLOC_SIZE_CLASSES_H_
