#include "alloc/thread_allocator.h"

#include <algorithm>

#include "common/logging.h"

namespace corm::alloc {

ThreadAllocator::ThreadAllocator(int thread_id,
                                 BlockAllocator* block_allocator)
    : thread_id_(thread_id), block_allocator_(block_allocator) {
  per_class_.resize(block_allocator_->classes().num_classes());
}

void ThreadAllocator::PushNonFull(PerClass* pc, Block* block) {
  if (!block->nonfull_listed() && !block->Full()) {
    block->set_nonfull_listed(true);
    pc->nonfull.push_back(block);
  }
}

Block* ThreadAllocator::PopNonFull(PerClass* pc) {
  while (!pc->nonfull.empty()) {
    Block* block = pc->nonfull.back();
    // Entries can be stale (block filled up or was detached); the listed
    // flag is cleared on detach so stale pointers are never dereferenced
    // after transfer — detach also purges the list (see DetachBlock).
    if (block->Full()) {
      block->set_nonfull_listed(false);
      pc->nonfull.pop_back();
      continue;
    }
    return block;
  }
  return nullptr;
}

Result<ThreadAllocator::Allocation> ThreadAllocator::Alloc(
    uint32_t class_idx) {
  CORM_CHECK_LT(class_idx, per_class_.size());
  PerClass& pc = per_class_[class_idx];
  bool new_block = false;
  Block* block = PopNonFull(&pc);
  if (block == nullptr) {
    auto fresh = block_allocator_->AllocBlock(class_idx);
    CORM_RETURN_NOT_OK(fresh.status());
    block = fresh->get();
    block->set_owner_thread(thread_id_);
    pc.blocks.push_back(std::move(*fresh));
    PushNonFull(&pc, block);
    new_block = true;
  }
  auto slot = block->AllocSlot();
  CORM_CHECK(slot.has_value()) << "non-full block had no free slot";
  if (block->Full()) {
    // Lazily dropped from the nonfull stack by PopNonFull.
  }
  pc.used_bytes += block->slot_size();
  return Allocation{block, *slot, new_block};
}

bool ThreadAllocator::Free(Block* block, uint32_t slot) {
  CORM_CHECK_EQ(block->owner_thread(), thread_id_);
  PerClass& pc = per_class_[block->class_idx()];
  block->FreeSlot(slot);
  pc.used_bytes -= block->slot_size();
  PushNonFull(&pc, block);
  return block->Empty();
}

std::unique_ptr<Block> ThreadAllocator::DetachBlock(Block* block) {
  PerClass& pc = per_class_[block->class_idx()];
  auto it = std::find_if(pc.blocks.begin(), pc.blocks.end(),
                         [&](const auto& b) { return b.get() == block; });
  CORM_CHECK(it != pc.blocks.end()) << "DetachBlock: not owned here";
  std::unique_ptr<Block> out = std::move(*it);
  pc.blocks.erase(it);
  // Purge from the nonfull stack so no dangling pointer remains.
  pc.nonfull.erase(std::remove(pc.nonfull.begin(), pc.nonfull.end(), block),
                   pc.nonfull.end());
  block->set_nonfull_listed(false);
  pc.used_bytes -=
      static_cast<uint64_t>(block->used_slots()) * block->slot_size();
  block->set_owner_thread(-1);
  return out;
}

void ThreadAllocator::AdoptBlock(std::unique_ptr<Block> block) {
  CORM_CHECK(block != nullptr);
  PerClass& pc = per_class_[block->class_idx()];
  Block* raw = block.get();
  raw->set_owner_thread(thread_id_);
  raw->set_nonfull_listed(false);
  pc.used_bytes += static_cast<uint64_t>(raw->used_slots()) * raw->slot_size();
  pc.blocks.push_back(std::move(block));
  PushNonFull(&pc, raw);
}

std::vector<std::unique_ptr<Block>> ThreadAllocator::CollectBlocks(
    uint32_t class_idx, double max_occupancy, size_t max_blocks) {
  PerClass& pc = per_class_[class_idx];
  std::vector<Block*> candidates;
  for (const auto& block : pc.blocks) {
    if (!block->Empty() && block->Occupancy() <= max_occupancy) {
      candidates.push_back(block.get());
    }
  }
  // Least-utilized first: they have fewer objects and induce fewer
  // conflicts (paper §3.1.4).
  std::sort(candidates.begin(), candidates.end(),
            [](const Block* a, const Block* b) {
              return a->used_slots() < b->used_slots();
            });
  if (candidates.size() > max_blocks) candidates.resize(max_blocks);
  std::vector<std::unique_ptr<Block>> out;
  out.reserve(candidates.size());
  for (Block* block : candidates) out.push_back(DetachBlock(block));
  return out;
}

uint64_t ThreadAllocator::GrantedBytes(uint32_t class_idx) const {
  uint64_t bytes = 0;
  for (const auto& block : per_class_[class_idx].blocks) {
    bytes += block->bytes();
  }
  return bytes;
}

uint64_t ThreadAllocator::UsedBytes(uint32_t class_idx) const {
  return per_class_[class_idx].used_bytes;
}

size_t ThreadAllocator::NumBlocks(uint32_t class_idx) const {
  return per_class_[class_idx].blocks.size();
}

}  // namespace corm::alloc
