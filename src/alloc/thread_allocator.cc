#include "alloc/thread_allocator.h"

#include <algorithm>
#include <string>

#include "common/lock_rank.h"
#include "common/logging.h"
#include "common/sanitizer.h"

namespace corm::alloc {

ThreadAllocator::ThreadAllocator(int thread_id,
                                 BlockAllocator* block_allocator)
    : thread_id_(thread_id), block_allocator_(block_allocator) {
  per_class_.resize(block_allocator_->classes().num_classes());
}

void ThreadAllocator::PushNonFull(PerClass* pc, Block* block) {
  if (!block->nonfull_listed() && !block->Full()) {
    block->set_nonfull_listed(true);
    pc->nonfull.push_back(block);
  }
}

Block* ThreadAllocator::PopNonFull(PerClass* pc) {
  while (!pc->nonfull.empty()) {
    Block* block = pc->nonfull.back();
    // Entries can be stale (block filled up or was detached); the listed
    // flag is cleared on detach so stale pointers are never dereferenced
    // after transfer — detach also purges the list (see DetachBlock).
    if (block->Full()) {
      block->set_nonfull_listed(false);
      pc->nonfull.pop_back();
      continue;
    }
    return block;
  }
  return nullptr;
}

Result<ThreadAllocator::Allocation> ThreadAllocator::Alloc(
    uint32_t class_idx) {
  LockRankRegion region(LockRank::kThreadAllocator);
  CORM_CHECK_LT(class_idx, per_class_.size());
  PerClass& pc = per_class_[class_idx];
  bool new_block = false;
  Block* block = PopNonFull(&pc);
  if (block == nullptr) {
    auto fresh = block_allocator_->AllocBlock(class_idx);
    CORM_RETURN_NOT_OK(fresh.status());
    block = fresh->get();
    block->set_owner_thread(thread_id_);
    pc.blocks.push_back(std::move(*fresh));
    PushNonFull(&pc, block);
    new_block = true;
  }
  auto slot = block->AllocSlot();
  CORM_CHECK(slot.has_value()) << "non-full block had no free slot";
  if (block->Full()) {
    // Lazily dropped from the nonfull stack by PopNonFull.
  }
  pc.used_bytes += block->slot_size();
  if constexpr (kAuditEnabled) {
    // Audit only the touched block: O(bitmap) per op keeps the hook usable
    // in stress runs; the full cross-check runs via CormNode::Audit().
    CORM_CHECK(block->AuditConsistency(/*expect_ids=*/false).ok());
  }
  return Allocation{block, *slot, new_block};
}

bool ThreadAllocator::Free(Block* block, uint32_t slot) {
  LockRankRegion region(LockRank::kThreadAllocator);
  CORM_CHECK_EQ(block->owner_thread(), thread_id_);
  PerClass& pc = per_class_[block->class_idx()];
  block->FreeSlot(slot);
  pc.used_bytes -= block->slot_size();
  PushNonFull(&pc, block);
  if constexpr (kAuditEnabled) {
    CORM_CHECK(block->AuditConsistency(/*expect_ids=*/false).ok());
  }
  return block->Empty();
}

std::unique_ptr<Block> ThreadAllocator::DetachBlock(Block* block) {
  LockRankRegion region(LockRank::kThreadAllocator);
  PerClass& pc = per_class_[block->class_idx()];
  auto it = std::find_if(pc.blocks.begin(), pc.blocks.end(),
                         [&](const auto& b) { return b.get() == block; });
  CORM_CHECK(it != pc.blocks.end()) << "DetachBlock: not owned here";
  std::unique_ptr<Block> out = std::move(*it);
  pc.blocks.erase(it);
  // Purge from the nonfull stack so no dangling pointer remains.
  pc.nonfull.erase(std::remove(pc.nonfull.begin(), pc.nonfull.end(), block),
                   pc.nonfull.end());
  block->set_nonfull_listed(false);
  pc.used_bytes -=
      static_cast<uint64_t>(block->used_slots()) * block->slot_size();
  block->set_owner_thread(-1);
  return out;
}

void ThreadAllocator::AdoptBlock(std::unique_ptr<Block> block) {
  LockRankRegion region(LockRank::kThreadAllocator);
  CORM_CHECK(block != nullptr);
  PerClass& pc = per_class_[block->class_idx()];
  Block* raw = block.get();
  raw->set_owner_thread(thread_id_);
  raw->set_nonfull_listed(false);
  pc.used_bytes += static_cast<uint64_t>(raw->used_slots()) * raw->slot_size();
  pc.blocks.push_back(std::move(block));
  PushNonFull(&pc, raw);
}

std::vector<std::unique_ptr<Block>> ThreadAllocator::CollectBlocks(
    uint32_t class_idx, double max_occupancy, size_t max_blocks) {
  LockRankRegion region(LockRank::kThreadAllocator);
  PerClass& pc = per_class_[class_idx];
  std::vector<Block*> candidates;
  for (const auto& block : pc.blocks) {
    if (!block->Empty() && block->Occupancy() <= max_occupancy) {
      candidates.push_back(block.get());
    }
  }
  // Least-utilized first: they have fewer objects and induce fewer
  // conflicts (paper §3.1.4).
  std::sort(candidates.begin(), candidates.end(),
            [](const Block* a, const Block* b) {
              return a->used_slots() < b->used_slots();
            });
  if (candidates.size() > max_blocks) candidates.resize(max_blocks);
  std::vector<std::unique_ptr<Block>> out;
  out.reserve(candidates.size());
  for (Block* block : candidates) out.push_back(DetachBlock(block));
  return out;
}

uint64_t ThreadAllocator::GrantedBytes(uint32_t class_idx) const {
  uint64_t bytes = 0;
  for (const auto& block : per_class_[class_idx].blocks) {
    bytes += block->bytes();
  }
  return bytes;
}

uint64_t ThreadAllocator::UsedBytes(uint32_t class_idx) const {
  return per_class_[class_idx].used_bytes;
}

size_t ThreadAllocator::NumBlocks(uint32_t class_idx) const {
  return per_class_[class_idx].blocks.size();
}

Status ThreadAllocator::AuditClass(uint32_t class_idx, bool has_ids) const {
  const PerClass& pc = per_class_[class_idx];
  uint64_t used = 0;
  size_t nonfull_flagged = 0;
  for (const auto& block : pc.blocks) {
    if (block->class_idx() != class_idx) {
      return Status::Internal("allocator audit: block filed under wrong class");
    }
    if (block->owner_thread() != thread_id_) {
      return Status::Internal("allocator audit: owned block has owner " +
                              std::to_string(block->owner_thread()) +
                              ", expected " + std::to_string(thread_id_));
    }
    CORM_RETURN_NOT_OK(block->AuditConsistency(has_ids));
    used += static_cast<uint64_t>(block->used_slots()) * block->slot_size();
    if (block->nonfull_listed()) ++nonfull_flagged;
    if (!block->Full() && !block->nonfull_listed()) {
      return Status::Internal(
          "allocator audit: non-full block missing from the non-full stack");
    }
  }
  if (used != pc.used_bytes) {
    return Status::Internal("allocator audit: used_bytes counter " +
                            std::to_string(pc.used_bytes) +
                            " != slot accounting " + std::to_string(used));
  }
  // The non-full stack and the listed flags must agree: every entry is an
  // owned block of this class flagged exactly once (no stale pointers that
  // could dangle after an ownership transfer).
  if (pc.nonfull.size() != nonfull_flagged) {
    return Status::Internal("allocator audit: non-full stack has " +
                            std::to_string(pc.nonfull.size()) +
                            " entries, " + std::to_string(nonfull_flagged) +
                            " blocks are flagged");
  }
  for (Block* entry : pc.nonfull) {
    const bool owned =
        std::any_of(pc.blocks.begin(), pc.blocks.end(),
                    [&](const auto& b) { return b.get() == entry; });
    if (!owned) {
      return Status::Internal(
          "allocator audit: non-full stack entry is not an owned block");
    }
    if (!entry->nonfull_listed()) {
      return Status::Internal(
          "allocator audit: non-full stack entry not flagged as listed");
    }
  }
  return Status::OK();
}

Status ThreadAllocator::Audit(
    const std::function<bool(uint32_t)>& class_has_ids) const {
  for (uint32_t c = 0; c < per_class_.size(); ++c) {
    // Without a predicate, only require ID-map bookkeeping from blocks that
    // visibly maintain one (non-compactable classes never insert IDs).
    const bool has_ids =
        class_has_ids ? class_has_ids(c)
                      : std::any_of(per_class_[c].blocks.begin(),
                                    per_class_[c].blocks.end(),
                                    [](const auto& b) {
                                      return !b->id_map().empty();
                                    });
    CORM_RETURN_NOT_OK(AuditClass(c, has_ids));
  }
  return Status::OK();
}

}  // namespace corm::alloc
