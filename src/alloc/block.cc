#include "alloc/block.h"

#include <string>

#include "common/logging.h"

namespace corm::alloc {

Block::Block(sim::VAddr base, sim::PhysBlock phys, uint32_t class_idx,
             uint32_t slot_size, rdma::MrKeys keys)
    : base_(base),
      phys_(std::move(phys)),
      class_idx_(class_idx),
      slot_size_(slot_size),
      num_slots_(static_cast<uint32_t>(
          (phys_.frames.size() * sim::kVPageSize) / slot_size)),
      keys_(keys) {
  CORM_CHECK_GT(num_slots_, 0u) << "slot size larger than block";
  bitmap_.assign((num_slots_ + 63) / 64, 0);
}

std::optional<uint32_t> Block::AllocSlot() {
  if (Full()) return std::nullopt;
  const size_t nwords = bitmap_.size();
  for (size_t probe = 0; probe < nwords; ++probe) {
    const size_t w = (alloc_hint_ + probe) % nwords;
    uint64_t word = bitmap_[w];
    if (word == UINT64_MAX) continue;
    // Skip tail bits beyond num_slots_ in the last word.
    const uint32_t base_slot = static_cast<uint32_t>(w * 64);
    const int free_bit = __builtin_ctzll(~word);
    const uint32_t slot = base_slot + static_cast<uint32_t>(free_bit);
    if (slot >= num_slots_) continue;
    bitmap_[w] |= (1ULL << free_bit);
    ++used_slots_;
    alloc_hint_ = static_cast<uint32_t>(w);
    return slot;
  }
  return std::nullopt;
}

bool Block::AllocSlotAt(uint32_t slot) {
  CORM_CHECK_LT(slot, num_slots_);
  const size_t w = slot / 64;
  const uint64_t bit = 1ULL << (slot % 64);
  if (bitmap_[w] & bit) return false;
  bitmap_[w] |= bit;
  ++used_slots_;
  return true;
}

void Block::FreeSlot(uint32_t slot) {
  CORM_CHECK_LT(slot, num_slots_);
  const size_t w = slot / 64;
  const uint64_t bit = 1ULL << (slot % 64);
  CORM_CHECK(bitmap_[w] & bit) << "double free of slot " << slot;
  bitmap_[w] &= ~bit;
  --used_slots_;
}

bool Block::SlotAllocated(uint32_t slot) const {
  CORM_CHECK_LT(slot, num_slots_);
  return (bitmap_[slot / 64] >> (slot % 64)) & 1;
}

bool Block::InsertId(ObjectId id, uint32_t slot) {
  return id_map_.emplace(id, slot).second;
}

void Block::EraseId(ObjectId id) { id_map_.erase(id); }

std::optional<uint32_t> Block::FindId(ObjectId id) const {
  auto it = id_map_.find(id);
  if (it == id_map_.end()) return std::nullopt;
  return it->second;
}

Status Block::AuditConsistency(bool expect_ids) const {
  // 1. Bitmap tail bits beyond num_slots_ must never be set.
  for (uint32_t slot = num_slots_; slot < bitmap_.size() * 64; ++slot) {
    if ((bitmap_[slot / 64] >> (slot % 64)) & 1) {
      return Status::Internal("block audit: bit set beyond num_slots");
    }
  }
  // 2. Bitmap population must equal the used-slot counter.
  uint32_t popcount = 0;
  for (uint64_t word : bitmap_) {
    popcount += static_cast<uint32_t>(__builtin_popcountll(word));
  }
  if (popcount != used_slots_) {
    return Status::Internal("block audit: bitmap population " +
                            std::to_string(popcount) +
                            " != used_slots " + std::to_string(used_slots_));
  }
  if (!expect_ids) return Status::OK();
  // 3. The ID map must describe exactly the allocated slots: one entry per
  //    live object, each pointing at an allocated, in-range slot, with no
  //    two IDs sharing a slot.
  if (id_map_.size() != used_slots_) {
    return Status::Internal("block audit: id map size " +
                            std::to_string(id_map_.size()) +
                            " != used_slots " + std::to_string(used_slots_));
  }
  std::vector<bool> seen(num_slots_, false);
  for (const auto& [id, slot] : id_map_) {
    if (slot >= num_slots_) {
      return Status::Internal("block audit: id map slot out of range");
    }
    if (!SlotAllocated(slot)) {
      return Status::Internal("block audit: id map points at a free slot");
    }
    if (seen[slot]) {
      return Status::Internal("block audit: two object IDs share a slot");
    }
    seen[slot] = true;
  }
  return Status::OK();
}

}  // namespace corm::alloc
