#include "alloc/block.h"

#include "common/logging.h"

namespace corm::alloc {

Block::Block(sim::VAddr base, sim::PhysBlock phys, uint32_t class_idx,
             uint32_t slot_size, rdma::MrKeys keys)
    : base_(base),
      phys_(std::move(phys)),
      class_idx_(class_idx),
      slot_size_(slot_size),
      num_slots_(static_cast<uint32_t>(
          (phys_.frames.size() * sim::kVPageSize) / slot_size)),
      keys_(keys) {
  CORM_CHECK_GT(num_slots_, 0u) << "slot size larger than block";
  bitmap_.assign((num_slots_ + 63) / 64, 0);
}

std::optional<uint32_t> Block::AllocSlot() {
  if (Full()) return std::nullopt;
  const size_t nwords = bitmap_.size();
  for (size_t probe = 0; probe < nwords; ++probe) {
    const size_t w = (alloc_hint_ + probe) % nwords;
    uint64_t word = bitmap_[w];
    if (word == UINT64_MAX) continue;
    // Skip tail bits beyond num_slots_ in the last word.
    const uint32_t base_slot = static_cast<uint32_t>(w * 64);
    const int free_bit = __builtin_ctzll(~word);
    const uint32_t slot = base_slot + static_cast<uint32_t>(free_bit);
    if (slot >= num_slots_) continue;
    bitmap_[w] |= (1ULL << free_bit);
    ++used_slots_;
    alloc_hint_ = static_cast<uint32_t>(w);
    return slot;
  }
  return std::nullopt;
}

bool Block::AllocSlotAt(uint32_t slot) {
  CORM_CHECK_LT(slot, num_slots_);
  const size_t w = slot / 64;
  const uint64_t bit = 1ULL << (slot % 64);
  if (bitmap_[w] & bit) return false;
  bitmap_[w] |= bit;
  ++used_slots_;
  return true;
}

void Block::FreeSlot(uint32_t slot) {
  CORM_CHECK_LT(slot, num_slots_);
  const size_t w = slot / 64;
  const uint64_t bit = 1ULL << (slot % 64);
  CORM_CHECK(bitmap_[w] & bit) << "double free of slot " << slot;
  bitmap_[w] &= ~bit;
  --used_slots_;
}

bool Block::SlotAllocated(uint32_t slot) const {
  CORM_CHECK_LT(slot, num_slots_);
  return (bitmap_[slot / 64] >> (slot % 64)) & 1;
}

bool Block::InsertId(ObjectId id, uint32_t slot) {
  return id_map_.emplace(id, slot).second;
}

void Block::EraseId(ObjectId id) { id_map_.erase(id); }

std::optional<uint32_t> Block::FindId(ObjectId id) const {
  auto it = id_map_.find(id);
  if (it == id_map_.end()) return std::nullopt;
  return it->second;
}

}  // namespace corm::alloc
