// Process-wide block allocator (paper §2.1.1, §3.1.1).
//
// Responsibilities:
//  * allocate blocks: reserve a virtual range, obtain physical pages from
//    the 16 MiB memfd pool, map them, and register the block with the RNIC
//    so remote peers can read it;
//  * destroy blocks, releasing physical and (when allowed) virtual memory;
//  * perform the compaction remap: point a source block's virtual range at
//    the destination block's physical pages and restore RDMA access via the
//    configured §3.5 strategy.

#ifndef CORM_ALLOC_BLOCK_ALLOCATOR_H_
#define CORM_ALLOC_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <memory>

#include "alloc/block.h"
#include "alloc/size_classes.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "rdma/rnic.h"
#include "sim/address_space.h"
#include "sim/latency_model.h"
#include "sim/mem_file.h"

namespace corm::alloc {

struct BlockAllocatorConfig {
  // Pages per block. 1 (4 KiB) is the paper's default; memory-compaction
  // studies use 256 (1 MiB, FaRM's block size).
  size_t block_pages = 1;
  // Strategy for restoring RDMA access after remaps. Implies the MR type:
  // kReregMr registers non-ODP regions, the ODP strategies register ODP
  // regions. The paper's default is kOdpPrefetch.
  sim::RemapStrategy remap_strategy = sim::RemapStrategy::kOdpPrefetch;
  // Back blocks with 2 MiB huge pages (paper §3.1.1: "CoRM can easily be
  // extended to work with huge pages"; §4.3.1: a 2 MiB page remaps and
  // re-registers at the same cost as one 4 KiB page). Functionally the
  // translation granularity stays 4 KiB in the simulator; the *modeled*
  // remap/rereg/prefetch cost is charged per 2 MiB unit.
  bool huge_pages = false;
};

// Translation units a remap of `npages` 4 KiB pages touches.
inline uint64_t RemapUnits(size_t npages, bool huge_pages) {
  constexpr size_t kPagesPerHugePage = 512;  // 2 MiB / 4 KiB
  return huge_pages ? (npages + kPagesPerHugePage - 1) / kPagesPerHugePage
                    : npages;
}

class BlockAllocator {
 public:
  BlockAllocator(sim::AddressSpace* space, sim::MemFileManager* files,
                 rdma::Rnic* rnic, const SizeClassTable* classes,
                 BlockAllocatorConfig config);

  BlockAllocator(const BlockAllocator&) = delete;
  BlockAllocator& operator=(const BlockAllocator&) = delete;

  // Allocates + maps + RNIC-registers a block for `class_idx`. Thread-safe.
  Result<std::unique_ptr<Block>> AllocBlock(uint32_t class_idx);

  // Fully destroys a block's memory: deregister, unmap, free physical
  // pages, release the virtual range. Only valid when no objects are homed
  // in the block. Returns the drained descriptor so the caller can retire
  // it to a graveyard — lock-free directory readers may hold a stale
  // pointer to it for a short window after the directory erase, so the
  // descriptor must outlive them (CormNode routes it to RetireBlock).
  std::unique_ptr<Block> DestroyBlock(std::unique_ptr<Block> block);

  // Compaction remap (paper §3.1.2): after the owner copied all live
  // objects from `src` into `dst`, point src's virtual pages at dst's
  // physical pages, repair the RNIC MTT per the configured strategy, and
  // punch src's pages out of the memfd pool. src's virtual address and
  // r_key stay valid (they now alias dst's memory). Returns modeled ns.
  Result<uint64_t> MergeRemap(Block* src, Block* dst);

  // Releases the virtual range + MR of a fully-drained ghost block (no
  // homed objects remain; paper §3.3). `base`/`npages`/`r_key` identify the
  // remnant. The physical pages were already freed by MergeRemap.
  void ReleaseGhost(sim::VAddr base, size_t npages, rdma::RKey r_key);

  const SizeClassTable& classes() const { return *classes_; }
  const BlockAllocatorConfig& config() const { return config_; }
  size_t block_bytes() const { return config_.block_pages * sim::kVPageSize; }
  sim::AddressSpace* address_space() const { return space_; }
  rdma::Rnic* rnic() const { return rnic_; }

  // Counters. Read under the same lock as the writers: benchmarks and the
  // audit poll them while workers allocate, so unlocked reads would race.
  uint64_t blocks_allocated() const {
    LockGuard<RankedSpinLock> lock(mu_);
    return blocks_allocated_;
  }
  uint64_t blocks_destroyed() const {
    LockGuard<RankedSpinLock> lock(mu_);
    return blocks_destroyed_;
  }
  uint64_t merges() const {
    LockGuard<RankedSpinLock> lock(mu_);
    return merges_;
  }

  // Invariant audit (always compiled): the lifecycle counters must account
  // for every block — allocations cover destructions plus merges (a merged
  // source is retired, never destroyed twice), and the address space must
  // not have leaked mapped pages relative to the net live block count.
  Status AuditCounters() const;

 private:
  sim::AddressSpace* const space_;
  sim::MemFileManager* const files_;
  rdma::Rnic* const rnic_;
  const SizeClassTable* const classes_;
  const BlockAllocatorConfig config_;

  // Guards the counters; ranked so that any accidental re-entry from the
  // substrate callbacks (which rank higher) is caught (see lock_rank.h).
  mutable RankedSpinLock mu_{LockRank::kBlockAllocator};
  uint64_t blocks_allocated_ GUARDED_BY(mu_) = 0;
  uint64_t blocks_destroyed_ GUARDED_BY(mu_) = 0;
  uint64_t merges_ GUARDED_BY(mu_) = 0;
};

}  // namespace corm::alloc

#endif  // CORM_ALLOC_BLOCK_ALLOCATOR_H_
