#include "alloc/fragmentation.h"

#include <algorithm>

namespace corm::alloc {

std::vector<ClassFragmentation> ComputeFragmentation(
    const std::vector<ThreadAllocator*>& allocators, uint32_t num_classes) {
  std::vector<ClassFragmentation> out(num_classes);
  for (uint32_t c = 0; c < num_classes; ++c) {
    out[c].class_idx = c;
    for (const ThreadAllocator* ta : allocators) {
      out[c].granted_bytes += ta->GrantedBytes(c);
      out[c].used_bytes += ta->UsedBytes(c);
      out[c].num_blocks += ta->NumBlocks(c);
    }
  }
  return out;
}

std::vector<MergeCandidate> PlanMerges(
    const std::vector<BlockOccupancy>& blocks, const CollisionProbabilityFn& p,
    size_t* infeasible) {
  if (infeasible != nullptr) *infeasible = 0;
  const size_t n = blocks.size();

  // Tentative occupancy: updated as merges are planned so a chain into one
  // destination is scored against the destination's *planned* fill, not its
  // stale snapshot.
  std::vector<uint64_t> used(n);
  std::vector<bool> consumed(n, false);  // merged away: never a dst again
  for (size_t i = 0; i < n; ++i) used[i] = blocks[i].used;

  // Sources ascend by snapshot occupancy (ties broken by pool index for
  // determinism): the emptiest block has the fewest objects to collide and
  // to copy (§3.1.4).
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return blocks[a].used != blocks[b].used ? blocks[a].used < blocks[b].used
                                            : a < b;
  });

  std::vector<MergeCandidate> plan;
  plan.reserve(n);
  for (size_t src : order) {
    if (consumed[src] || used[src] == 0) continue;
    double best_score = 0.0;
    double best_prob = 0.0;
    size_t best_dst = SIZE_MAX;
    for (size_t dst = 0; dst < n; ++dst) {
      if (dst == src || consumed[dst]) continue;
      const uint64_t capacity = blocks[dst].capacity;
      if (capacity == 0 || used[src] + used[dst] > capacity) continue;
      const double prob = p(used[src], used[dst]);
      if (prob <= 0.0) continue;
      // Rank by collision probability weighted by the occupancy of the
      // merged block: prefer likely-disjoint pairs that fill a block.
      const double score = prob * static_cast<double>(used[src] + used[dst]) /
                           static_cast<double>(capacity);
      if (score > best_score ||
          (score == best_score && best_dst != SIZE_MAX &&
           used[dst] > used[best_dst])) {
        best_score = score;
        best_prob = prob;
        best_dst = dst;
      }
    }
    if (best_dst == SIZE_MAX) {
      if (infeasible != nullptr) ++*infeasible;
      continue;
    }
    plan.push_back({blocks[src].index, blocks[best_dst].index, best_prob,
                    best_score});
    used[best_dst] += used[src];
    used[src] = 0;
    consumed[src] = true;
  }
  return plan;
}

}  // namespace corm::alloc
