#include "alloc/fragmentation.h"

namespace corm::alloc {

std::vector<ClassFragmentation> ComputeFragmentation(
    const std::vector<ThreadAllocator*>& allocators, uint32_t num_classes) {
  std::vector<ClassFragmentation> out(num_classes);
  for (uint32_t c = 0; c < num_classes; ++c) {
    out[c].class_idx = c;
    for (const ThreadAllocator* ta : allocators) {
      out[c].granted_bytes += ta->GrantedBytes(c);
      out[c].used_bytes += ta->UsedBytes(c);
      out[c].num_blocks += ta->NumBlocks(c);
    }
  }
  return out;
}

}  // namespace corm::alloc
