// Fragmentation accounting (paper §2.1, §3.1.3): fragmentation is the ratio
// between memory granted by the OS and memory effectively used. CoRM's
// compaction policy triggers on a per-size-class fragmentation threshold.

#ifndef CORM_ALLOC_FRAGMENTATION_H_
#define CORM_ALLOC_FRAGMENTATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "alloc/thread_allocator.h"

namespace corm::alloc {

struct ClassFragmentation {
  uint32_t class_idx = 0;
  uint64_t granted_bytes = 0;
  uint64_t used_bytes = 0;
  size_t num_blocks = 0;

  // granted / used; 1.0 when fully utilized, infinity-ish when unused.
  double Ratio() const {
    if (used_bytes == 0) return granted_bytes == 0 ? 1.0 : 1e9;
    return static_cast<double>(granted_bytes) /
           static_cast<double>(used_bytes);
  }
};

// Aggregates fragmentation per class across a set of thread allocators.
// Must be called while the allocators are quiescent (or from their node's
// control plane, which owns them).
std::vector<ClassFragmentation> ComputeFragmentation(
    const std::vector<ThreadAllocator*>& allocators, uint32_t num_classes);

// --- Compaction planner (paper §3.1.2, §3.4). ------------------------------
//
// Candidate selection for the compaction engine: instead of first-fit, rank
// merge pairs by the paper's collision probability p(B1,B2) — the chance
// that two blocks holding b1 and b2 random object IDs are ID-disjoint —
// weighted by the occupancy of the resulting block. The probability model
// itself lives in core/probability.cc; alloc may not depend on core, so the
// caller passes it in as a callback.

// One block's occupancy snapshot, as the planner sees it.
struct BlockOccupancy {
  size_t index = 0;       // caller-side identity (pool position)
  uint64_t used = 0;      // live objects
  uint64_t capacity = 0;  // slots per block (s in the paper's model)
};

// One planned merge: move every object of `src_index` into `dst_index`.
struct MergeCandidate {
  size_t src_index = 0;
  size_t dst_index = 0;
  double probability = 0.0;  // p(B1,B2) at planning time
  double score = 0.0;        // probability * resulting occupancy
};

// Collision-probability callback: p(b1, b2) for two blocks of this class
// holding b1 and b2 objects (0 when b1 + b2 exceed the block capacity).
using CollisionProbabilityFn = std::function<double(uint64_t b1, uint64_t b2)>;

// Plans a merge sequence over `blocks`: sources ascend by occupancy (fewer
// objects, fewer conflicts, §3.1.4); each source is paired with the
// destination maximizing p(b1,b2) * (b1+b2)/capacity under tentative
// occupancy accounting, so chains (A→C then B→C) are planned coherently.
// Sources with no feasible destination (every pairing has p == 0, i.e.
// cannot fit) are skipped and counted in *infeasible when non-null. Each
// block appears as a source at most once; a merged-away source is never
// offered as a later destination.
std::vector<MergeCandidate> PlanMerges(const std::vector<BlockOccupancy>& blocks,
                                       const CollisionProbabilityFn& p,
                                       size_t* infeasible = nullptr);

}  // namespace corm::alloc

#endif  // CORM_ALLOC_FRAGMENTATION_H_
