// Fragmentation accounting (paper §2.1, §3.1.3): fragmentation is the ratio
// between memory granted by the OS and memory effectively used. CoRM's
// compaction policy triggers on a per-size-class fragmentation threshold.

#ifndef CORM_ALLOC_FRAGMENTATION_H_
#define CORM_ALLOC_FRAGMENTATION_H_

#include <cstdint>
#include <vector>

#include "alloc/thread_allocator.h"

namespace corm::alloc {

struct ClassFragmentation {
  uint32_t class_idx = 0;
  uint64_t granted_bytes = 0;
  uint64_t used_bytes = 0;
  size_t num_blocks = 0;

  // granted / used; 1.0 when fully utilized, infinity-ish when unused.
  double Ratio() const {
    if (used_bytes == 0) return granted_bytes == 0 ? 1.0 : 1e9;
    return static_cast<double>(granted_bytes) /
           static_cast<double>(used_bytes);
  }
};

// Aggregates fragmentation per class across a set of thread allocators.
// Must be called while the allocators are quiescent (or from their node's
// control plane, which owns them).
std::vector<ClassFragmentation> ComputeFragmentation(
    const std::vector<ThreadAllocator*>& allocators, uint32_t num_classes);

}  // namespace corm::alloc

#endif  // CORM_ALLOC_FRAGMENTATION_H_
