// Thread-local allocator (paper §2.1.1): serves allocations of its worker
// thread from blocks it owns, requesting new blocks from the process-wide
// BlockAllocator when a size class runs dry.
//
// All methods must be called from the owning worker thread (or from the
// compaction leader *after* ownership of specific blocks was transferred to
// it via the collection protocol).

#ifndef CORM_ALLOC_THREAD_ALLOCATOR_H_
#define CORM_ALLOC_THREAD_ALLOCATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "alloc/block.h"
#include "alloc/block_allocator.h"
#include "common/result.h"

namespace corm::alloc {

class ThreadAllocator {
 public:
  ThreadAllocator(int thread_id, BlockAllocator* block_allocator);

  ThreadAllocator(const ThreadAllocator&) = delete;
  ThreadAllocator& operator=(const ThreadAllocator&) = delete;

  struct Allocation {
    Block* block;
    uint32_t slot;
    bool new_block;  // true when a fresh block had to be fetched
  };

  // Allocates one slot in `class_idx`.
  Result<Allocation> Alloc(uint32_t class_idx);

  // Frees a slot in a block owned by this thread. Returns true when the
  // block became empty (caller decides whether it can be fully released).
  bool Free(Block* block, uint32_t slot);

  // Detaches an (empty) block from this allocator and returns ownership.
  std::unique_ptr<Block> DetachBlock(Block* block);

  // Adopts a block (ownership transfer from another thread / the leader).
  void AdoptBlock(std::unique_ptr<Block> block);

  // Collection-phase helper (paper §3.1.4): detaches up to `max_blocks`
  // non-empty blocks of `class_idx` whose occupancy is <= max_occupancy,
  // least-utilized first.
  std::vector<std::unique_ptr<Block>> CollectBlocks(uint32_t class_idx,
                                                    double max_occupancy,
                                                    size_t max_blocks);

  // --- Invariant audit (always compiled; hot-path hooks are CORM_AUDIT). --
  // Cross-checks this allocator's accounting against its blocks: the
  // per-class used-byte counter vs the blocks' slot counts, the non-full
  // stack (every entry must be an owned, flagged block of the class), and
  // each block's own bitmap/ID-map consistency. `class_has_ids` says
  // whether a class maintains the object-ID map (compaction enabled); when
  // omitted, ID-map size checks are skipped for blocks with an empty map.
  // Must be called from the owning thread, like every other method.
  Status Audit(const std::function<bool(uint32_t)>& class_has_ids = {}) const;

  // --- Accounting (for fragmentation ratios, paper §3.1.3). -------------
  // Bytes of blocks held for `class_idx` (granted memory).
  uint64_t GrantedBytes(uint32_t class_idx) const;
  // Bytes actually occupied by live slots in `class_idx`.
  uint64_t UsedBytes(uint32_t class_idx) const;
  size_t NumBlocks(uint32_t class_idx) const;
  // All blocks of a class (leader-side iteration in tests/benches).
  const std::vector<std::unique_ptr<Block>>& blocks(uint32_t class_idx) const {
    return per_class_[class_idx].blocks;
  }

  int thread_id() const { return thread_id_; }

 private:
  struct PerClass {
    std::vector<std::unique_ptr<Block>> blocks;
    std::vector<Block*> nonfull;  // stack of blocks with a free slot
    uint64_t used_bytes = 0;
  };

  void PushNonFull(PerClass* pc, Block* block);
  Block* PopNonFull(PerClass* pc);
  Status AuditClass(uint32_t class_idx, bool has_ids) const;

  // Deliberately unguarded: every method runs on the owning worker thread
  // (see the class comment), so per_class_ is single-threaded by protocol —
  // thread confinement, not a lock, and thus outside GUARDED_BY's
  // vocabulary. Cross-thread block movement goes through Adopt/Detach on
  // the respective owners, never through shared mutable state here.
  const int thread_id_;
  BlockAllocator* const block_allocator_;
  std::vector<PerClass> per_class_;
};

}  // namespace corm::alloc

#endif  // CORM_ALLOC_THREAD_ALLOCATOR_H_
