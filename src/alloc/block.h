// Block: the unit of memory the process-wide allocator hands to
// thread-local allocators (paper §2.1.1). A block stores objects of exactly
// one size class in fixed slots and carries the CoRM-specific metadata: the
// per-block map from object IDs to slot offsets used for fast pointer
// correction (paper §3.1.4).
//
// Ownership invariant (paper §3.1.4): a block is owned by at most one
// thread at any time; all mutating calls must come from the owner. The
// compaction protocol transfers ownership explicitly via messages, so no
// internal locking is needed.

#ifndef CORM_ALLOC_BLOCK_H_
#define CORM_ALLOC_BLOCK_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/sanitizer.h"
#include "common/status.h"
#include "rdma/rnic.h"
#include "sim/address_space.h"
#include "sim/mem_file.h"

namespace corm::alloc {

using ObjectId = uint32_t;

class Block {
 public:
  Block(sim::VAddr base, sim::PhysBlock phys, uint32_t class_idx,
        uint32_t slot_size, rdma::MrKeys keys);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  // --- Identity & geometry. ---------------------------------------------
  sim::VAddr base() const { return base_; }
  const sim::PhysBlock& phys() const { return phys_; }
  sim::PhysBlock* mutable_phys() { return &phys_; }
  uint32_t class_idx() const { return class_idx_; }
  uint32_t slot_size() const { return slot_size_; }
  uint32_t num_slots() const { return num_slots_; }
  size_t npages() const { return phys_.frames.size(); }
  size_t bytes() const { return npages() * sim::kVPageSize; }
  const rdma::MrKeys& keys() const { return keys_; }

  sim::VAddr SlotAddr(uint32_t slot) const {
    return base_ + static_cast<uint64_t>(slot) * slot_size_;
  }
  // Slot index containing `addr`, assuming addr is inside this block.
  uint32_t SlotFor(sim::VAddr addr) const {
    return static_cast<uint32_t>((addr - base_) / slot_size_);
  }

  // --- Slot management. ---------------------------------------------------
  // Allocates a free slot; returns nullopt when full.
  std::optional<uint32_t> AllocSlot();
  // Allocates a *specific* slot; false when taken (used by compaction to
  // preserve offsets).
  bool AllocSlotAt(uint32_t slot);
  void FreeSlot(uint32_t slot);
  bool SlotAllocated(uint32_t slot) const;

  uint32_t used_slots() const { return used_slots_; }
  bool Full() const { return used_slots_ == num_slots_; }
  bool Empty() const { return used_slots_ == 0; }
  double Occupancy() const {
    return static_cast<double>(used_slots_) / num_slots_;
  }

  // --- Object-ID metadata (pointer-correction hash table). ---------------
  // False when the ID already exists in this block (caller must redraw).
  bool InsertId(ObjectId id, uint32_t slot);
  void EraseId(ObjectId id);
  std::optional<uint32_t> FindId(ObjectId id) const;
  bool HasId(ObjectId id) const { return FindId(id).has_value(); }
  const std::unordered_map<ObjectId, uint32_t>& id_map() const {
    return id_map_;
  }

  // --- Ghost aliases. ------------------------------------------------------
  // After compaction the source block's virtual range (and any ghosts that
  // were already aliasing it) alias this block's physical pages. They must
  // follow this block through future compactions (and be released when the
  // last object homed in them dies, paper §3.3).
  struct GhostRef {
    sim::VAddr base;
    rdma::RKey r_key;
  };
  std::vector<GhostRef>& aliases() { return aliases_; }
  const std::vector<GhostRef>& aliases() const { return aliases_; }

  // --- Invariant audit (always compiled; see common/sanitizer.h). ----------
  // Cross-checks the three redundant views of the block's occupancy: the
  // slot bitmap, the used-slot counter, and the object-ID map. Any
  // disagreement means an alloc/free/compaction path corrupted accounting.
  // `expect_ids` is false for classes with compaction disabled (§4.4.1),
  // where the ID map is not maintained.
  Status AuditConsistency(bool expect_ids = true) const;

  // --- Owner bookkeeping. --------------------------------------------------
  // The owner is written by ownership-transfer protocols and read by other
  // workers routing correction/free messages, hence atomic. -1 = in transit.
  // The acquire/release pair (plus the TSan annotation in the setter) is the
  // happens-before edge that publishes all block metadata written by the
  // previous owner to the next one.
  int owner_thread() const {
    const int t = owner_thread_.load(std::memory_order_acquire);
    CORM_TSAN_ACQUIRE(&owner_thread_);
    return t;
  }
  void set_owner_thread(int t) {
    CORM_TSAN_RELEASE(&owner_thread_);
    owner_thread_.store(t, std::memory_order_release);
  }

  // Scratch flag used by the owning ThreadAllocator's non-full list.
  bool nonfull_listed() const { return nonfull_listed_; }
  void set_nonfull_listed(bool v) { nonfull_listed_ = v; }

 private:
  // Deliberately unguarded (no GUARDED_BY): the ownership invariant above
  // — at most one owning thread, transferred only via collection messages
  // with their own happens-before edges — is a dynamic hand-off discipline
  // the static analyzer cannot express as a capability. owner_thread_ is
  // the atomic that publishes the hand-off; CORM_AUDIT checks enforce the
  // invariant at runtime instead.
  const sim::VAddr base_;
  sim::PhysBlock phys_;
  const uint32_t class_idx_;
  const uint32_t slot_size_;
  const uint32_t num_slots_;
  const rdma::MrKeys keys_;

  std::vector<uint64_t> bitmap_;  // 1 = allocated
  uint32_t used_slots_ = 0;
  uint32_t alloc_hint_ = 0;  // word index where the last allocation happened

  std::unordered_map<ObjectId, uint32_t> id_map_;
  std::vector<GhostRef> aliases_;

  std::atomic<int> owner_thread_{-1};
  bool nonfull_listed_ = false;
};

}  // namespace corm::alloc

#endif  // CORM_ALLOC_BLOCK_H_
