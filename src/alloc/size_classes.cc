#include "alloc/size_classes.h"

#include <algorithm>

#include "common/logging.h"

namespace corm::alloc {

SizeClassTable SizeClassTable::Default() {
  // 16/32 B fit within one cacheline; every larger class is a multiple of
  // 64 B so slots stay cacheline aligned for FaRM-style versioned reads.
  // Geometric 1.5x spacing bounds internal fragmentation at ~33%.
  std::vector<uint32_t> sizes = {16, 32};
  for (uint32_t base = 64; base <= 16 * 1024; base *= 2) {
    sizes.push_back(base);
    const uint32_t mid = base + base / 2;
    if (mid <= 16 * 1024 && mid % 64 == 0) sizes.push_back(mid);
  }
  std::sort(sizes.begin(), sizes.end());
  return SizeClassTable(std::move(sizes));
}

SizeClassTable SizeClassTable::PowersOfTwo(uint32_t min_size,
                                           uint32_t max_size) {
  std::vector<uint32_t> sizes;
  for (uint32_t s = min_size; s <= max_size; s *= 2) sizes.push_back(s);
  return SizeClassTable(std::move(sizes));
}

SizeClassTable SizeClassTable::JemallocLike(uint32_t max_size) {
  std::vector<uint32_t> sizes;
  for (uint32_t s = 8; s <= 64 && s <= max_size; s += 8) sizes.push_back(s);
  for (uint32_t base = 64; base < max_size; base *= 2) {
    const uint32_t step = base / 4;
    for (uint32_t s = base + step; s <= base * 2; s += step) {
      if (s > 64 && s <= max_size && s % 8 == 0) sizes.push_back(s);
    }
  }
  if (sizes.empty() || sizes.back() < max_size) sizes.push_back(max_size);
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return SizeClassTable(std::move(sizes));
}

SizeClassTable::SizeClassTable(std::vector<uint32_t> sizes)
    : sizes_(std::move(sizes)) {
  CORM_CHECK(!sizes_.empty());
  for (size_t i = 0; i < sizes_.size(); ++i) {
    CORM_CHECK_EQ(sizes_[i] % 8, 0u) << "size classes must be 8-byte aligned";
    if (i > 0) CORM_CHECK_GT(sizes_[i], sizes_[i - 1]);
  }
}

Result<uint32_t> SizeClassTable::ClassFor(uint32_t size) const {
  auto it = std::lower_bound(sizes_.begin(), sizes_.end(), size);
  if (it == sizes_.end()) {
    return Status::InvalidArgument("object larger than largest size class");
  }
  return static_cast<uint32_t>(it - sizes_.begin());
}

}  // namespace corm::alloc
