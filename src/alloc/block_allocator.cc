#include "alloc/block_allocator.h"

#include "common/logging.h"

namespace corm::alloc {

BlockAllocator::BlockAllocator(sim::AddressSpace* space,
                               sim::MemFileManager* files, rdma::Rnic* rnic,
                               const SizeClassTable* classes,
                               BlockAllocatorConfig config)
    : space_(space),
      files_(files),
      rnic_(rnic),
      classes_(classes),
      config_(config) {
  CORM_CHECK_GT(config_.block_pages, 0u);
}

Result<std::unique_ptr<Block>> BlockAllocator::AllocBlock(uint32_t class_idx) {
  CORM_CHECK_LT(class_idx, classes_->num_classes());
  const uint32_t slot_size = classes_->ClassSize(class_idx);
  if (slot_size > block_bytes()) {
    return Status::InvalidArgument("size class larger than block");
  }
  const size_t npages = config_.block_pages;

  sim::VAddr base = space_->ReserveRange(npages);
  auto phys = files_->AllocBlock(npages);
  if (!phys.ok()) {
    space_->ReleaseRange(base, npages);
    return phys.status();
  }
  Status st = space_->MapFrames(base, phys->frames);
  if (!st.ok()) {
    files_->FreeBlock(*phys);
    space_->ReleaseRange(base, npages);
    return st;
  }
  const bool odp = config_.remap_strategy != sim::RemapStrategy::kReregMr;
  auto keys = rnic_->RegisterMemory(base, npages, odp);
  if (!keys.ok()) {
    CORM_CHECK(space_->Unmap(base, npages).ok());
    files_->FreeBlock(*phys);
    space_->ReleaseRange(base, npages);
    return keys.status();
  }
  {
    LockGuard<RankedSpinLock> lock(mu_);
    ++blocks_allocated_;
  }
  return std::make_unique<Block>(base, std::move(*phys), class_idx, slot_size,
                                 *keys);
}

std::unique_ptr<Block> BlockAllocator::DestroyBlock(
    std::unique_ptr<Block> block) {
  CORM_CHECK(block != nullptr);
  CORM_CHECK(rnic_->DeregisterMemory(block->keys().r_key).ok());
  CORM_CHECK(space_->Unmap(block->base(), block->npages()).ok());
  files_->FreeBlock(block->phys());
  space_->ReleaseRange(block->base(), block->npages());
  {
    LockGuard<RankedSpinLock> lock(mu_);
    ++blocks_destroyed_;
  }
  return block;
}

Result<uint64_t> BlockAllocator::MergeRemap(Block* src, Block* dst) {
  CORM_CHECK_EQ(src->npages(), dst->npages());
  const size_t npages = src->npages();

  // 1. mmap: point src's virtual pages (and every ghost range already
  //    aliasing src) at dst's physical pages. For ODP regions this fires
  //    the MMU notifier, invalidating the affected MTT entries.
  std::vector<std::pair<sim::VAddr, rdma::RKey>> ranges;
  ranges.emplace_back(src->base(), src->keys().r_key);
  for (const auto& ghost : src->aliases()) {
    ranges.emplace_back(ghost.base, ghost.r_key);
  }
  // Modeled cost is charged per translation unit: with huge pages a 2 MiB
  // page remaps/re-registers at the cost of one 4 KiB page (§4.3.1).
  const uint64_t units = RemapUnits(npages, config_.huge_pages);
  uint64_t ns = 0;
  for (const auto& [base, r_key] : ranges) {
    CORM_RETURN_NOT_OK(space_->Remap(base, dst->base(), npages));
    ns += rnic_->model().MmapNs() * units;
  }

  // 2. Restore RDMA access through the preserved r_keys (paper §3.5) in
  //    one batched repair epoch: src's range and every chained ghost alias
  //    repair under a single RNIC registration-table pass, so one engine
  //    slice issues exactly one epoch however long the alias chain is. The
  //    modeled cost is unchanged from the per-call path: it is charged per
  //    range per remapped unit (paper Fig. 15: compaction time grows
  //    linearly with the page count).
  switch (config_.remap_strategy) {
    case sim::RemapStrategy::kReregMr: {
      std::vector<rdma::RKey> keys;
      keys.reserve(ranges.size());
      for (const auto& [base, r_key] : ranges) keys.push_back(r_key);
      CORM_RETURN_NOT_OK(rnic_->ReregMrBatch(keys));
      ns += rnic_->model().ReregMrNs() * units * ranges.size();
      break;
    }
    case sim::RemapStrategy::kOdp:
      // Nothing to do: the next remote access pays the ODP fault.
      break;
    case sim::RemapStrategy::kOdpPrefetch: {
      std::vector<rdma::MrRange> mr_ranges;
      mr_ranges.reserve(ranges.size());
      for (const auto& [base, r_key] : ranges) {
        mr_ranges.push_back({r_key, base, npages * sim::kVPageSize});
      }
      CORM_RETURN_NOT_OK(rnic_->AdviseMrBatch(mr_ranges));
      ns += rnic_->model().AdviseMrNs() * units * ranges.size();
      break;
    }
  }

  // The ghosts (and src itself) now alias dst; dst inherits them.
  for (const auto& ghost : src->aliases()) dst->aliases().push_back(ghost);
  src->aliases().clear();
  dst->aliases().push_back({src->base(), src->keys().r_key});

  // 3. Punch src's pages out of its memfd file: the file's frame references
  //    drop; frames stay alive while any mapping still pins them (none
  //    should, once the MTT entries were repaired).
  files_->FreeBlock(src->phys());
  // src now aliases dst's frames; record that in its phys block descriptor
  // so later full destruction does not double-free.
  src->mutable_phys()->frames = dst->phys().frames;
  src->mutable_phys()->id = {-1, 0};  // no file backing of its own

  {
    LockGuard<RankedSpinLock> lock(mu_);
    ++merges_;
  }
  // Note: no pacing here — the caller holds locks that must not be held for
  // a modeled duration; it paces with the returned ns after releasing them.
  return ns;
}

void BlockAllocator::ReleaseGhost(sim::VAddr base, size_t npages,
                                  rdma::RKey r_key) {
  CORM_CHECK(rnic_->DeregisterMemory(r_key).ok());
  CORM_CHECK(space_->Unmap(base, npages).ok());
  space_->ReleaseRange(base, npages);
}

Status BlockAllocator::AuditCounters() const {
  uint64_t allocated, destroyed, merges;
  {
    LockGuard<RankedSpinLock> lock(mu_);
    allocated = blocks_allocated_;
    destroyed = blocks_destroyed_;
    merges = merges_;
  }
  // Every destroyed or merged-away block was once allocated; a merge
  // retires its source exactly once (MergeRemap), so the two sinks can
  // never outrun the source counter.
  if (destroyed + merges > allocated) {
    return Status::Internal(
        "block allocator audit: destroyed + merged > allocated (" +
        std::to_string(destroyed) + " + " + std::to_string(merges) + " > " +
        std::to_string(allocated) + ")");
  }
  return Status::OK();
}

}  // namespace corm::alloc
