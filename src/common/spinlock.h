// Test-and-test-and-set spinlock for short critical sections on hot paths
// (RPC queue heads, block metadata). Satisfies Lockable so it composes with
// std::lock_guard.

#ifndef CORM_COMMON_SPINLOCK_H_
#define CORM_COMMON_SPINLOCK_H_

#include <atomic>

#include "common/cpu_relax.h"
#include "common/sanitizer.h"
#include "common/thread_annotations.h"

namespace corm {

class CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  // TSan note: the exchange/store pair already gives TSan the
  // happens-before edge; the explicit annotations keep the edge modeled
  // even if the memory orders are ever weakened (e.g. to a futex or HLE
  // variant) and make reports name the lock address.
  void lock() ACQUIRE() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        CORM_TSAN_ACQUIRE(&flag_);
        return;
      }
      while (flag_.load(std::memory_order_relaxed)) {
        CpuRelax();  // yields: critical for oversubscribed hosts
      }
    }
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!flag_.load(std::memory_order_relaxed) &&
        !flag_.exchange(true, std::memory_order_acquire)) {
      CORM_TSAN_ACQUIRE(&flag_);
      return true;
    }
    return false;
  }

  void unlock() RELEASE() {
    CORM_TSAN_RELEASE(&flag_);
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace corm

#endif  // CORM_COMMON_SPINLOCK_H_
