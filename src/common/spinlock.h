// Test-and-test-and-set spinlock for short critical sections on hot paths
// (RPC queue heads, block metadata). Satisfies Lockable so it composes with
// std::lock_guard.

#ifndef CORM_COMMON_SPINLOCK_H_
#define CORM_COMMON_SPINLOCK_H_

#include <atomic>

#include "common/cpu_relax.h"

namespace corm {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        CpuRelax();  // yields: critical for oversubscribed hosts
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace corm

#endif  // CORM_COMMON_SPINLOCK_H_
