#include "common/histogram.h"

#include <cstdio>

namespace corm {

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1fns p50=%lluns p99=%lluns max=%lluns",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Median()),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace corm
