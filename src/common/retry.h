// Unified retry/timeout/backoff policy for every fallible remote path.
//
// Before this header existed, retry behaviour was scattered: the RPC
// transport spun forever on the completion flag (a dead server hung the
// client), and Client::ReadWithRecovery hard-coded its deadline and backoff
// constants. A RetryPolicy names those knobs once; a RetryState executes
// them with *deterministic* jitter (SplitMix64 over an explicit seed), so a
// seeded chaos run replays the exact same backoff schedule.
//
// The deadline is wall-clock on purpose: modeled time (sim::Pace) can be
// scaled to zero in tests, but a hung peer burns real time, and converting
// "never completes" into kTimeout is precisely the job of this type. All
// *pacing* stays in modeled time, so determinism of the fault schedule and
// of the backoff sequence is unaffected by the wall clock.

#ifndef CORM_COMMON_RETRY_H_
#define CORM_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace corm {

// Absolute wall-clock expiry, cheap to poll from spin loops.
class Deadline {
 public:
  explicit Deadline(uint64_t budget_ns)
      : expiry_(std::chrono::steady_clock::now() +
                std::chrono::nanoseconds(budget_ns)) {}

  bool Expired() const { return std::chrono::steady_clock::now() >= expiry_; }

 private:
  std::chrono::steady_clock::time_point expiry_;
};

struct RetryPolicy {
  // Total wall-clock budget for the operation, attempts included.
  uint64_t deadline_ns = 2'000'000'000;
  // Hard cap on attempts; 0 means the deadline alone bounds the loop.
  int max_attempts = 0;
  // Exponential backoff: base doubles per attempt up to the cap. The
  // defaults are the constants ReadWithRecovery used to hard-code.
  uint64_t backoff_base_ns = 1'000;
  uint64_t backoff_max_ns = 64'000;
  // Fraction of the current backoff added as deterministic jitter in
  // [0, jitter); keeps synchronized retriers from lock-stepping.
  double jitter = 0.5;
};

// Per-operation retry executor. Not thread-safe; create one per operation.
class RetryState {
 public:
  RetryState(const RetryPolicy& policy, uint64_t seed)
      : policy_(policy), deadline_(policy.deadline_ns), rng_state_(seed) {}

  // Accounts one attempt; false once the budget (deadline or attempt cap)
  // is exhausted. The first call always grants an attempt.
  bool NextAttempt() {
    ++attempts_;
    if (attempts_ <= 1) return true;
    if (policy_.max_attempts > 0 && attempts_ > policy_.max_attempts) {
      return false;
    }
    return !deadline_.Expired();
  }

  // Backoff for the attempt most recently granted, with deterministic
  // jitter. Callers pace this in modeled time (sim::Pace).
  uint64_t BackoffNs() {
    const int exp = std::min(attempts_ > 0 ? attempts_ - 1 : 0, 62);
    const uint64_t base = std::min(policy_.backoff_base_ns << exp,
                                   policy_.backoff_max_ns);
    if (policy_.jitter <= 0.0) return base;
    const double frac =
        static_cast<double>(NextRand() >> 11) * (1.0 / 9007199254740992.0);
    return base + static_cast<uint64_t>(static_cast<double>(base) *
                                        policy_.jitter * frac);
  }

  bool Expired() const { return deadline_.Expired(); }
  int attempts() const { return attempts_; }

 private:
  // SplitMix64: tiny, seedable, and good enough for jitter.
  uint64_t NextRand() {
    uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  RetryPolicy policy_;
  Deadline deadline_;
  int attempts_ = 0;
  uint64_t rng_state_;
};

}  // namespace corm

#endif  // CORM_COMMON_RETRY_H_
