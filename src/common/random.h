// Deterministic pseudo-random utilities.
//
// Benchmarks and tests need reproducible runs, so all randomness in the
// library flows through explicitly-seeded Rng instances (xoshiro256**,
// which is fast enough to sit on allocation paths).

#ifndef CORM_COMMON_RANDOM_H_
#define CORM_COMMON_RANDOM_H_

#include <cstdint>

namespace corm {

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// adapted). Not cryptographic; statistical quality is ample for workload
// generation and object-ID assignment.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace corm

#endif  // CORM_COMMON_RANDOM_H_
