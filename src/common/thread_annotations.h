// Clang Thread Safety Analysis annotations (no-ops on other compilers).
//
// These macros attach compile-time locking contracts to lock types
// (CAPABILITY), guarded state (GUARDED_BY / PT_GUARDED_BY), and functions
// (REQUIRES / ACQUIRE / RELEASE / ...). Under clang the build promotes the
// analysis to an error (-Werror=thread-safety-analysis, see the root
// CMakeLists.txt), so a mis-guarded field is a build failure rather than a
// lucky TSan interleaving. GCC and other compilers see empty macros; the
// annotations cost nothing at runtime anywhere.
//
// Conventions (DESIGN.md §6.3):
//   * Every lock-like type is a CAPABILITY; every field it protects is
//     GUARDED_BY (or PT_GUARDED_BY for pointees) that lock.
//   * Private helpers that expect the caller to hold a lock say REQUIRES.
//   * Lock-free code the analyzer cannot prove (seqlock readers, Vyukov
//     cell hand-off, refcounted teardown) carries NO_THREAD_SAFETY_ANALYSIS
//     with a one-line proof sketch — enforced by tools/lint.sh rule 6.

#ifndef CORM_COMMON_THREAD_ANNOTATIONS_H_
#define CORM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define CORM_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define CORM_TS_ATTRIBUTE__(x)  // no-op
#endif

// --- Type annotations. ------------------------------------------------------

// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define CAPABILITY(x) CORM_TS_ATTRIBUTE__(capability(x))

// Marks an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY CORM_TS_ATTRIBUTE__(scoped_lockable)

// --- Data annotations. ------------------------------------------------------

// The field may only be touched while holding `x`.
#define GUARDED_BY(x) CORM_TS_ATTRIBUTE__(guarded_by(x))

// The *pointee* of this pointer/smart-pointer field is protected by `x`.
#define PT_GUARDED_BY(x) CORM_TS_ATTRIBUTE__(pt_guarded_by(x))

// Documented acquisition order between two locks (hierarchy hints).
#define ACQUIRED_BEFORE(...) CORM_TS_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) CORM_TS_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// --- Function annotations. --------------------------------------------------

// Caller must already hold the capability (exclusively / shared).
#define REQUIRES(...) \
  CORM_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CORM_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and holds it on return.
#define ACQUIRE(...) CORM_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CORM_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

// The function releases a capability the caller held on entry.
#define RELEASE(...) CORM_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CORM_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  CORM_TS_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

// The function attempts the acquisition; first argument is the success
// return value.
#define TRY_ACQUIRE(...) \
  CORM_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  CORM_TS_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (catches self-deadlock).
#define EXCLUDES(...) CORM_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (fatal otherwise); teaches
// the analyzer the fact without an acquisition.
#define ASSERT_CAPABILITY(x) CORM_TS_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  CORM_TS_ATTRIBUTE__(assert_shared_capability(x))

// The function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) CORM_TS_ATTRIBUTE__(lock_returned(x))

// Escape hatch for code the analyzer cannot model. Every use MUST carry a
// one-line proof sketch on the same or preceding line (lint.sh rule 6).
#define NO_THREAD_SAFETY_ANALYSIS \
  CORM_TS_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // CORM_COMMON_THREAD_ANNOTATIONS_H_
