// Spin-wait hint that behaves sensibly on both many-core and single-core
// hosts: a PAUSE for short waits plus a scheduler yield so that on an
// oversubscribed (or single-CPU) machine the thread being waited on can
// actually run. All library spin loops use this.

#ifndef CORM_COMMON_CPU_RELAX_H_
#define CORM_COMMON_CPU_RELAX_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace corm {

inline void CpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#endif
  std::this_thread::yield();
}

// PAUSE without the scheduler yield: for the first rungs of a backoff
// ladder, where the wait is expected to resolve within a few cache-miss
// latencies and a yield would only add syscall noise.
inline void CpuPause() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// Exponential backoff ladder for contended CAS loops and saturation waits:
// starts with pure PAUSEs (cheap, keeps the core's SMT sibling productive),
// escalates to scheduler yields, and finally to short sleeps so a client
// blocked on a saturated remote node stops burning a core. Reset() returns
// to the bottom rung after progress.
class Backoff {
 public:
  void Pause() {
    if (round_ < kPauseRounds) {
      // 1, 2, 4, ... PAUSEs: contention usually resolves in nanoseconds.
      for (uint32_t i = 0; i < (1u << round_); ++i) CpuPause();
    } else if (round_ < kPauseRounds + kYieldRounds) {
      std::this_thread::yield();
    } else {
      // Long wait (rate-limited NIC slot, saturated server): sleep instead
      // of spinning. 50 us is far below any modeled RPC deadline but long
      // enough to free the core for the thread being waited on.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    if (round_ < kPauseRounds + kYieldRounds) ++round_;
  }

  void Reset() { round_ = 0; }

  // True once the ladder escalated past the spinning rungs.
  bool Sleeping() const { return round_ >= kPauseRounds + kYieldRounds; }

 private:
  static constexpr uint32_t kPauseRounds = 6;   // 1+2+...+32 PAUSEs
  static constexpr uint32_t kYieldRounds = 16;  // then yields
  uint32_t round_ = 0;
};

}  // namespace corm

#endif  // CORM_COMMON_CPU_RELAX_H_
