// Spin-wait hint that behaves sensibly on both many-core and single-core
// hosts: a PAUSE for short waits plus a scheduler yield so that on an
// oversubscribed (or single-CPU) machine the thread being waited on can
// actually run. All library spin loops use this.

#ifndef CORM_COMMON_CPU_RELAX_H_
#define CORM_COMMON_CPU_RELAX_H_

#include <thread>

namespace corm {

inline void CpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#endif
  std::this_thread::yield();
}

}  // namespace corm

#endif  // CORM_COMMON_CPU_RELAX_H_
