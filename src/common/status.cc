#include "common/status.h"

namespace corm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kObjectMoved:
      return "ObjectMoved";
    case StatusCode::kObjectLocked:
      return "ObjectLocked";
    case StatusCode::kTornRead:
      return "TornRead";
    case StatusCode::kStalePointer:
      return "StalePointer";
    case StatusCode::kQpBroken:
      return "QpBroken";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace corm
