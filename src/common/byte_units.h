// Byte-size constants and formatting helpers.

#ifndef CORM_COMMON_BYTE_UNITS_H_
#define CORM_COMMON_BYTE_UNITS_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace corm {

inline constexpr size_t kKiB = 1024;
inline constexpr size_t kMiB = 1024 * kKiB;
inline constexpr size_t kGiB = 1024 * kMiB;
inline constexpr size_t kPageSize = 4 * kKiB;
inline constexpr size_t kCacheLineSize = 64;

// Rounds `v` up to the next multiple of `align` (align must be a power of 2).
constexpr size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) & ~(align - 1);
}

constexpr bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

// "1.50 GiB", "312.0 MiB", "4 KiB", "73 B".
inline std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace corm

#endif  // CORM_COMMON_BYTE_UNITS_H_
