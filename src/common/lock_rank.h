// Lock-order (deadlock) checker.
//
// Every instrumented lock (and lock-like critical region) carries a rank.
// A thread may only acquire a lock whose rank is *strictly greater* than
// every rank it already holds; critical *regions* (lock-free phases that
// behave like locks for ordering purposes, e.g. the compaction leader's
// merge phase) may re-enter at an equal rank. Any violation is an
// acquisition order that could deadlock under a different interleaving —
// caught deterministically on the first occurrence, no race needed.
//
// The rank table below is the documented lock hierarchy of the node
// (outermost first). Keep it in sync with the acquisition paths:
//
//   compaction leader  ->  thread allocator  ->  node directory
//     ->  block allocator  ->  {vaddr tracker | graveyard}  ->  substrate
//
// Checking is runtime-toggleable: it defaults ON in CORM_AUDIT builds and
// in builds with assertions enabled (!NDEBUG), OFF otherwise, and tests
// can force it via LockRankTracker::SetEnforce. The tracker itself is
// always compiled so the default (release) test suite exercises it too.

#ifndef CORM_COMMON_LOCK_RANK_H_
#define CORM_COMMON_LOCK_RANK_H_

#include <atomic>
#include <shared_mutex>

#include "common/logging.h"
#include "common/sanitizer.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace corm {

// Lock hierarchy of a CoRM node, outermost (acquired first) to innermost.
// Gaps leave room for future locks without renumbering.
enum class LockRank : int {
  kNone = 0,
  kScheduler = 50,          // CormNode::sched_tasks_mu_ (outermost: registered
                            // tasks run under it and may take any CoRM lock)
  kCompactionLeader = 100,  // region: leader-side collection + merge
  kThreadAllocator = 200,   // region: single-owner allocator mutation
  kAliasList = 260,         // CormNode::alias_mu_ (ghost alias lists)
  kNodeDirectory = 300,     // BlockDirectory per-shard writer locks
  kBlockAllocator = 400,    // BlockAllocator counters
  kVaddrTracker = 500,      // VaddrTracker::mu_ (leaf among CoRM locks)
  kGraveyard = 520,         // CormNode::graveyard_mu_ (leaf)
  kReplIngress = 560,       // CormNode::repl_ingress_mu_ (append-only, leaf)
  kSubstrate = 600,         // sim/rdma internal mutexes (leaf, uninstrumented)
};

inline const char* LockRankName(LockRank r) {
  switch (r) {
    case LockRank::kNone: return "none";
    case LockRank::kScheduler: return "scheduler";
    case LockRank::kReplIngress: return "repl-ingress";
    case LockRank::kCompactionLeader: return "compaction-leader";
    case LockRank::kThreadAllocator: return "thread-allocator";
    case LockRank::kAliasList: return "alias-list";
    case LockRank::kNodeDirectory: return "node-directory";
    case LockRank::kBlockAllocator: return "block-allocator";
    case LockRank::kVaddrTracker: return "vaddr-tracker";
    case LockRank::kGraveyard: return "graveyard";
    case LockRank::kSubstrate: return "substrate";
  }
  return "?";
}

// Per-thread stack of held ranks. Fixed-size: nesting deeper than
// kMaxHeld locks is itself a hierarchy bug.
class LockRankTracker {
 public:
  static constexpr int kMaxHeld = 16;

  // Ranks are checked only while enforcement is on. Defaults to on in
  // CORM_AUDIT builds and assertion-enabled builds.
  static bool Enforcing() {
    return enforce_.load(std::memory_order_relaxed);
  }
  static void SetEnforce(bool on) {
    enforce_.store(on, std::memory_order_relaxed);
  }

  // `reentrant` distinguishes critical regions (equal rank allowed —
  // recursion cannot deadlock a lock-free phase) from real locks
  // (strictly increasing only).
  static void Acquired(LockRank rank, bool reentrant = false) {
    if (!Enforcing()) return;
    ThreadState& ts = State();
    CORM_CHECK_LT(ts.depth, kMaxHeld) << "lock nesting too deep";
    if (ts.depth > 0) {
      const LockRank top = ts.held[ts.depth - 1];
      const bool ok = reentrant ? rank >= top : rank > top;
      CORM_CHECK(ok) << "lock-order violation: acquiring '"
                     << LockRankName(rank) << "' (" << static_cast<int>(rank)
                     << ") while holding '" << LockRankName(top) << "' ("
                     << static_cast<int>(top) << ")";
    }
    ts.held[ts.depth++] = rank;
  }

  static void Released(LockRank rank) {
    if (!Enforcing()) return;
    ThreadState& ts = State();
    // Tolerate release after a SetEnforce(true) mid-acquisition window.
    if (ts.depth == 0) return;
    CORM_CHECK_EQ(static_cast<int>(ts.held[ts.depth - 1]),
                  static_cast<int>(rank))
        << "non-LIFO lock release";
    --ts.depth;
  }

  // Deepest rank currently held by this thread (kNone when none).
  static LockRank Top() {
    const ThreadState& ts = State();
    return ts.depth == 0 ? LockRank::kNone : ts.held[ts.depth - 1];
  }

  static int Depth() { return State().depth; }

 private:
  struct ThreadState {
    LockRank held[kMaxHeld];
    int depth = 0;
  };

  static ThreadState& State() {
    thread_local ThreadState state;
    return state;
  }

  static inline std::atomic<bool> enforce_{kAuditEnabled ||
#ifdef NDEBUG
                                           false
#else
                                           true
#endif
  };
};

// A SpinLock that participates in the hierarchy. Satisfies Lockable.
//
// The public methods carry the capability attributes; their bodies are
// NO_THREAD_SAFETY_ANALYSIS because they delegate to the inner annotated
// SpinLock — the analyzer would otherwise report the *inner* capability as
// leaked/double-managed. The outer RankedSpinLock capability is the one the
// rest of the codebase names in GUARDED_BY, so correctness is still checked
// at every use site; only this 1:1 delegation is exempt.
class CAPABILITY("mutex") RankedSpinLock {
 public:
  explicit RankedSpinLock(LockRank rank) : rank_(rank) {}
  RankedSpinLock(const RankedSpinLock&) = delete;
  RankedSpinLock& operator=(const RankedSpinLock&) = delete;

  // Escape: 1:1 delegation to the inner annotated SpinLock (see class note).
  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS {
    LockRankTracker::Acquired(rank_);
    lock_.lock();
  }
  // Escape: 1:1 delegation to the inner annotated SpinLock (see class note).
  bool try_lock() TRY_ACQUIRE(true) NO_THREAD_SAFETY_ANALYSIS {
    if (!lock_.try_lock()) return false;
    LockRankTracker::Acquired(rank_);
    return true;
  }
  // Escape: 1:1 delegation to the inner annotated SpinLock (see class note).
  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    lock_.unlock();
    LockRankTracker::Released(rank_);
  }

  LockRank rank() const { return rank_; }

 private:
  SpinLock lock_;
  const LockRank rank_;
};

// A std::shared_mutex that participates in the hierarchy (shared and
// exclusive acquisitions rank identically: both can deadlock in a cycle).
// std::shared_mutex carries no capability attributes, so the method bodies
// need no analysis escape — the attributes on the methods are the contract.
class CAPABILITY("shared_mutex") RankedSharedMutex {
 public:
  explicit RankedSharedMutex(LockRank rank) : rank_(rank) {}
  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock() ACQUIRE() {
    LockRankTracker::Acquired(rank_);
    mu_.lock();
  }
  void unlock() RELEASE() {
    mu_.unlock();
    LockRankTracker::Released(rank_);
  }
  void lock_shared() ACQUIRE_SHARED() {
    LockRankTracker::Acquired(rank_);
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
    LockRankTracker::Released(rank_);
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
};

// RAII critical *region*: no mutual exclusion, only ordering. Used by
// lock-free single-owner phases (thread-allocator mutation, the compaction
// leader's merge) so that ordinary locks acquired inside them are checked
// against the full hierarchy. Reentrant at equal rank.
class LockRankRegion {
 public:
  explicit LockRankRegion(LockRank rank) : rank_(rank) {
    LockRankTracker::Acquired(rank_, /*reentrant=*/true);
  }
  ~LockRankRegion() { LockRankTracker::Released(rank_); }

  LockRankRegion(const LockRankRegion&) = delete;
  LockRankRegion& operator=(const LockRankRegion&) = delete;

 private:
  const LockRank rank_;
};

}  // namespace corm

#endif  // CORM_COMMON_LOCK_RANK_H_
