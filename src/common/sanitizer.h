// Sanitizer awareness layer.
//
// CoRM's hot paths use custom synchronization (the SpinLock, the Vyukov
// MPMC inbox, the block-ownership hand-off, and the FaRM-style seqlock
// object layout). This header gives those primitives a vocabulary for
// talking to ThreadSanitizer so that TSan models their happens-before
// edges precisely instead of being silenced by coarse suppressions:
//
//  * CORM_TSAN_ACQUIRE(addr) / CORM_TSAN_RELEASE(addr) wrap
//    __tsan_acquire/__tsan_release (the primitives behind the classic
//    AnnotateHappensAfter/AnnotateHappensBefore macros). A release on an
//    address followed by an acquire on the same address establishes a
//    happens-before edge. They compile to nothing outside TSan builds.
//
//  * CORM_NO_SANITIZE_THREAD marks a function whose memory accesses model
//    *hardware* (simulated RNIC DMA) rather than CPU threads. One-sided
//    RDMA reads race with local stores by design; the object layout's
//    version/checksum validation rejects torn snapshots after the fact
//    (paper §3.2.3). Keeping the DMA side uninstrumented removes exactly
//    that benign-by-design race while leaving the CPU side fully
//    instrumented, so real races between workers are still caught.
//
// The header also centralizes the CORM_AUDIT switch for the runtime
// invariant audits (see lock_rank.h, alloc/block.h, core/corm_node.h):
// audit *functions* are always compiled (tests call them directly); the
// hot-path *hooks* only fire when the build enables CORM_AUDIT.

#ifndef CORM_COMMON_SANITIZER_H_
#define CORM_COMMON_SANITIZER_H_

#include <cstddef>
#include <cstring>

// --- Sanitizer detection (GCC defines __SANITIZE_*__; Clang has
// --- __has_feature). ------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define CORM_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CORM_TSAN_ENABLED 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define CORM_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CORM_ASAN_ENABLED 1
#endif
#endif

// --- TSan annotations. ----------------------------------------------------

#ifdef CORM_TSAN_ENABLED
#if __has_include(<sanitizer/tsan_interface.h>)
#include <sanitizer/tsan_interface.h>
#else
// Toolchain ships the runtime but not the header: declare the two symbols
// we need (they are part of the stable tsan interface).
extern "C" void __tsan_acquire(void* addr);
extern "C" void __tsan_release(void* addr);
#endif

#define CORM_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const volatile void*>(addr)))
#define CORM_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const volatile void*>(addr)))
#define CORM_NO_SANITIZE_THREAD __attribute__((no_sanitize_thread))

#else  // !CORM_TSAN_ENABLED

#define CORM_TSAN_ACQUIRE(addr) \
  do {                          \
  } while (0)
#define CORM_TSAN_RELEASE(addr) \
  do {                          \
  } while (0)
#define CORM_NO_SANITIZE_THREAD

#endif  // CORM_TSAN_ENABLED

// --- Intentionally racy copies. -------------------------------------------

namespace corm {

// Copies bytes that race with concurrent accesses *by design*: seqlock
// snapshot reads validated after the fact (paper §3.2.3) and the simulated
// RNIC's one-sided DMA. Under TSan a plain memcpy would still be caught by
// the libtsan interceptor even inside a no_sanitize function, so the TSan
// build copies through volatile bytes (uninstrumented, never libcall-ized);
// every other build keeps the memcpy fast path.
CORM_NO_SANITIZE_THREAD inline void RacyCopy(void* dst, const void* src,
                                             size_t n) {
#ifdef CORM_TSAN_ENABLED
  auto* d = static_cast<volatile unsigned char*>(dst);
  const auto* s = static_cast<const volatile unsigned char*>(src);
  for (size_t i = 0; i < n; ++i) d[i] = s[i];
#else
  std::memcpy(dst, src, n);
#endif
}

}  // namespace corm

// --- Runtime invariant audits (CORM_AUDIT). -------------------------------

// kAuditEnabled is a compile-time constant so hot-path hooks fold away
// entirely in normal builds:  if constexpr (kAuditEnabled) { ... }.
namespace corm {
#if defined(CORM_AUDIT) && CORM_AUDIT
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif
}  // namespace corm

#endif  // CORM_COMMON_SANITIZER_H_
