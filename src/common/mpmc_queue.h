// corm-hotpath
//
// Bounded multi-producer / multi-consumer queue used as the shared RPC queue
// that CoRM worker threads poll (paper Fig. 3) and as the per-thread message
// channels of the compaction protocol.
//
// Implementation: mutex-free Vyukov-style ring buffer with per-cell sequence
// numbers. Capacity must be a power of two.

#ifndef CORM_COMMON_MPMC_QUEUE_H_
#define CORM_COMMON_MPMC_QUEUE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "common/sanitizer.h"
#include "common/thread_annotations.h"

namespace corm {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity_pow2) : mask_(capacity_pow2 - 1) {
    assert(capacity_pow2 >= 2 && (capacity_pow2 & mask_) == 0 &&
           "capacity must be a power of two");
    // Cell ring allocated once at construction; ops are allocation-free.
    cells_ = std::make_unique<Cell[]>(capacity_pow2);  // NOLINT(corm-hotpath-alloc)
    for (size_t i = 0; i < capacity_pow2; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Returns false when the queue is full.
  // Escape: lock-free — exclusive access to `cell` is granted by winning the
  // tail_ CAS and is published via the cell's seq release/acquire pair, a
  // hand-off no capability model expresses.
  bool TryPush(T value) NO_THREAD_SAFETY_ANALYSIS {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    // The cell was recycled by a consumer; its seq release/acquire pair
    // carries the hand-off. Annotate it per-cell so TSan keeps the edge
    // even under weakened orders and names the cell in reports.
    CORM_TSAN_ACQUIRE(cell);
    cell->value = std::move(value);
    CORM_TSAN_RELEASE(cell);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Returns nullopt when the queue is empty.
  // Escape: lock-free — winning the head_ CAS makes this thread the sole
  // reader of `cell` until its seq store recycles it to producers; the
  // seq acquire pairs with the producer's release (no capability to model).
  std::optional<T> TryPop() NO_THREAD_SAFETY_ANALYSIS {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    CORM_TSAN_ACQUIRE(cell);  // pairs with the producer's release
    T out = std::move(cell->value);
    CORM_TSAN_RELEASE(cell);  // recycle hand-off back to producers
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  // Dequeues up to `max` elements in one head_ synchronization. The batch
  // claim is a single CAS over the contiguous ready range [pos, pos+k), so
  // a consumer draining k elements pays one contended atomic instead of k —
  // the "batched drain" that amortizes queue synchronization on the RPC
  // data plane. Returns the number of elements written to `out`.
  // Escape: lock-free — winning the head_ CAS over the whole range makes
  // this thread the sole reader of those k cells until their seq stores
  // recycle them to producers; cells checked ready before the CAS cannot
  // become unready (only producers advance seq, and only past claimed
  // positions). Same hand-off protocol as TryPop, widened to a range.
  size_t TryPopBatch(T* out, size_t max) NO_THREAD_SAFETY_ANALYSIS {
    if (max == 0) return 0;
    size_t pos = head_.load(std::memory_order_relaxed);
    size_t k;
    for (;;) {
      k = 0;
      while (k < max) {
        const Cell& cell = cells_[(pos + k) & mask_];
        const size_t seq = cell.seq.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) -
                static_cast<intptr_t>(pos + k + 1) != 0) {
          break;  // cell not ready: end of the contiguous claimable range
        }
        ++k;
      }
      if (k == 0) {
        const size_t cur = head_.load(std::memory_order_relaxed);
        if (cur == pos) return 0;  // queue empty at our observation point
        pos = cur;                 // another consumer advanced; re-scan
        continue;
      }
      if (head_.compare_exchange_weak(pos, pos + k,
                                      std::memory_order_relaxed)) {
        break;  // cells [pos, pos+k) are exclusively ours
      }
      // CAS failure reloaded `pos`; retry.
    }
    for (size_t i = 0; i < k; ++i) {
      Cell* cell = &cells_[(pos + i) & mask_];
      CORM_TSAN_ACQUIRE(cell);  // pairs with the producer's release
      out[i] = std::move(cell->value);
      CORM_TSAN_RELEASE(cell);  // recycle hand-off back to producers
      cell->seq.store(pos + i + mask_ + 1, std::memory_order_release);
    }
    return k;
  }

  // Approximate: only exact when no concurrent operations are in flight.
  size_t ApproxSize() const {
    const size_t t = tail_.load(std::memory_order_relaxed);
    const size_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq;
    T value;
  };

  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace corm

#endif  // CORM_COMMON_MPMC_QUEUE_H_
