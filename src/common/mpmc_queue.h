// Bounded multi-producer / multi-consumer queue used as the shared RPC queue
// that CoRM worker threads poll (paper Fig. 3) and as the per-thread message
// channels of the compaction protocol.
//
// Implementation: mutex-free Vyukov-style ring buffer with per-cell sequence
// numbers. Capacity must be a power of two.

#ifndef CORM_COMMON_MPMC_QUEUE_H_
#define CORM_COMMON_MPMC_QUEUE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "common/sanitizer.h"
#include "common/thread_annotations.h"

namespace corm {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity_pow2) : mask_(capacity_pow2 - 1) {
    assert(capacity_pow2 >= 2 && (capacity_pow2 & mask_) == 0 &&
           "capacity must be a power of two");
    cells_ = std::make_unique<Cell[]>(capacity_pow2);
    for (size_t i = 0; i < capacity_pow2; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Returns false when the queue is full.
  // Escape: lock-free — exclusive access to `cell` is granted by winning the
  // tail_ CAS and is published via the cell's seq release/acquire pair, a
  // hand-off no capability model expresses.
  bool TryPush(T value) NO_THREAD_SAFETY_ANALYSIS {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    // The cell was recycled by a consumer; its seq release/acquire pair
    // carries the hand-off. Annotate it per-cell so TSan keeps the edge
    // even under weakened orders and names the cell in reports.
    CORM_TSAN_ACQUIRE(cell);
    cell->value = std::move(value);
    CORM_TSAN_RELEASE(cell);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Returns nullopt when the queue is empty.
  // Escape: lock-free — winning the head_ CAS makes this thread the sole
  // reader of `cell` until its seq store recycles it to producers; the
  // seq acquire pairs with the producer's release (no capability to model).
  std::optional<T> TryPop() NO_THREAD_SAFETY_ANALYSIS {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    CORM_TSAN_ACQUIRE(cell);  // pairs with the producer's release
    T out = std::move(cell->value);
    CORM_TSAN_RELEASE(cell);  // recycle hand-off back to producers
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  // Approximate: only exact when no concurrent operations are in flight.
  size_t ApproxSize() const {
    const size_t t = tail_.load(std::memory_order_relaxed);
    const size_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq;
    T value;
  };

  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace corm

#endif  // CORM_COMMON_MPMC_QUEUE_H_
