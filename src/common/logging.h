// Minimal leveled logging + CHECK macros. Logging defaults to WARNING so the
// library stays quiet inside benchmarks; tests can lower the threshold.

#ifndef CORM_COMMON_LOGGING_H_
#define CORM_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace corm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide log threshold; messages below it are dropped.
inline std::atomic<LogLevel>& GlobalLogLevel() {
  static std::atomic<LogLevel> level{LogLevel::kWarning};
  return level;
}

inline void SetLogLevel(LogLevel level) {
  GlobalLogLevel().store(level, std::memory_order_relaxed);
}

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false)
      : level_(level), fatal_(fatal) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }

  ~LogMessage() {
    if (fatal_ || level_ >= GlobalLogLevel().load(std::memory_order_relaxed)) {
      std::fprintf(stderr, "%s\n", stream_.str().c_str());
    }
    if (fatal_) std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define CORM_LOG(level)                                                     \
  ::corm::internal_logging::LogMessage(::corm::LogLevel::k##level, __FILE__, \
                                       __LINE__)                             \
      .stream()

// Invariant check: aborts with a message when `cond` is false. Active in all
// build types — these guard memory-safety invariants, not user errors.
#define CORM_CHECK(cond)                                                 \
  for (bool _ok = static_cast<bool>(cond); !_ok; _ok = true)             \
  ::corm::internal_logging::LogMessage(::corm::LogLevel::kError,         \
                                       __FILE__, __LINE__, /*fatal=*/true) \
      .stream()                                                          \
      << "Check failed: " #cond " "

#define CORM_CHECK_EQ(a, b) CORM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CORM_CHECK_NE(a, b) CORM_CHECK((a) != (b))
#define CORM_CHECK_LT(a, b) CORM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CORM_CHECK_LE(a, b) CORM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CORM_CHECK_GT(a, b) CORM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CORM_CHECK_GE(a, b) CORM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace corm

#endif  // CORM_COMMON_LOGGING_H_
