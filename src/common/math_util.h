// Numeric helpers: exact log-space binomial coefficients used by the
// compaction-probability model (paper §3.4).

#ifndef CORM_COMMON_MATH_UTIL_H_
#define CORM_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace corm {

// ln C(n, k); returns -inf when k > n (C = 0).
inline double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

// C(n1, k) / C(n2, k) computed stably in log space. Returns 0 when the
// numerator is zero (k > n1).
inline double BinomialRatio(uint64_t n1, uint64_t n2, uint64_t k) {
  const double log_num = LogBinomial(n1, k);
  if (std::isinf(log_num)) return 0.0;
  return std::exp(log_num - LogBinomial(n2, k));
}

}  // namespace corm

#endif  // CORM_COMMON_MATH_UTIL_H_
