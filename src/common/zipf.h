// Zipf-distributed key generator, as used by YCSB (Gray et al. rejection
// inversion is overkill here; we use the classic YCSB incremental
// formulation with precomputed zeta constants).

#ifndef CORM_COMMON_ZIPF_H_
#define CORM_COMMON_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "common/random.h"

namespace corm {

// Generates keys in [0, n) with P(k) proportional to 1/(k+1)^theta.
// theta = 0 degenerates to uniform; YCSB's default "zipfian" is 0.99.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace corm

#endif  // CORM_COMMON_ZIPF_H_
