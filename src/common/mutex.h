// Annotated mutex wrappers and RAII guards for Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::shared_mutex and std::lock_guard /
// std::unique_lock / std::shared_lock carry no thread-safety attributes, so
// clang's analysis cannot see acquisitions made through them — every access
// under a std::lock_guard would be a false positive. This header provides:
//
//   * corm::Mutex / corm::SharedMutex — thin CAPABILITY-annotated wrappers
//     over the std primitives, for substrate state (src/sim/, src/rdma/)
//     that models kernel/NIC internals and does not participate in the
//     CoRM lock-rank hierarchy (rank kSubstrate, always a leaf).
//   * LockGuard<M> / SharedLockGuard<M> — SCOPED_CAPABILITY guards usable
//     with any annotated Lockable (SpinLock, RankedSpinLock,
//     RankedSharedMutex, Mutex, SharedMutex).
//
// The data plane (src/alloc/, src/core/) keeps using the ranked locks from
// common/lock_rank.h (enforced by lint.sh rule 2); these guards work for
// both worlds.

#ifndef CORM_COMMON_MUTEX_H_
#define CORM_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace corm {

// Exclusive mutex for substrate state outside the lock-rank hierarchy.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// Reader/writer mutex for substrate state outside the lock-rank hierarchy.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Exclusive RAII guard. The destructor releases whatever mode the
// constructor acquired; RELEASE() without arguments covers both modes,
// which is what scoped_lockable destructors require.
template <typename M>
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(M& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  M& mu_;
};

// Shared (reader) RAII guard for SharedLockable types.
template <typename M>
class SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(M& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLockGuard() RELEASE() { mu_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  M& mu_;
};

}  // namespace corm

#endif  // CORM_COMMON_MUTEX_H_
