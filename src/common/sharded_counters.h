// corm-hotpath
//
// Sharded statistics counters for contention-free hot paths.
//
// A shared std::atomic<uint64_t> fetch_add per RPC puts every worker on the
// same cacheline: at data-plane rates the resulting coherence traffic is a
// measurable fraction of the per-op cost (FaRM and ScaleStore both shard
// their serving-loop counters for the same reason). Sharded<Shard> gives
// each worker its own cacheline-aligned block of counters; readers aggregate
// across shards with relaxed loads. Counts are monotonic and per-shard
// exact; an aggregate read concurrent with increments is a momentary
// snapshot, which is all statistics need.

#ifndef CORM_COMMON_SHARDED_COUNTERS_H_
#define CORM_COMMON_SHARDED_COUNTERS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace corm {

// One statistics counter inside a shard block: a relaxed atomic with
// value-like increment syntax. Cross-thread visibility of totals comes from
// the atomic itself; ordering never matters for monotonic counters.
class StatCounter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  StatCounter& operator+=(uint64_t n) {
    Add(n);
    return *this;
  }
  StatCounter& operator++() {
    Add(1);
    return *this;
  }
  uint64_t Load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// A fixed array of cacheline-aligned shard blocks. `Shard` is a plain
// struct of StatCounter fields; alignment keeps shard i's counters off
// every other shard's cachelines so per-worker increments never contend.
template <typename Shard>
class Sharded {
 public:
  explicit Sharded(size_t num_shards)
      // Shard array allocated once at construction; increments are plain
      // stores to the worker's own line. NOLINT(corm-hotpath-alloc)
      : n_(num_shards), shards_(std::make_unique<Padded[]>(num_shards)) {}

  Sharded(const Sharded&) = delete;
  Sharded& operator=(const Sharded&) = delete;

  size_t num_shards() const { return n_; }

  Shard& shard(size_t i) { return shards_[i].shard; }
  const Shard& shard(size_t i) const { return shards_[i].shard; }

  // Folds `fn(Shard&)` over every shard (aggregation on read).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < n_; ++i) fn(shards_[i].shard);
  }

 private:
  struct alignas(64) Padded {
    Shard shard;
  };

  const size_t n_;
  std::unique_ptr<Padded[]> shards_;
};

}  // namespace corm

#endif  // CORM_COMMON_SHARDED_COUNTERS_H_
