// Latency histogram with fixed log-linear buckets (HdrHistogram-lite).
// Records values in nanoseconds; reports percentiles, mean, count.

#ifndef CORM_COMMON_HISTOGRAM_H_
#define CORM_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

namespace corm {

class Histogram {
 public:
  Histogram() { Reset(); }

  void Reset() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
  }

  void Record(uint64_t value_ns) {
    buckets_[BucketFor(value_ns)]++;
    count_++;
    sum_ += value_ns;
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }

  void Merge(const Histogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  // Returns the approximate value at quantile q in [0, 1].
  uint64_t Percentile(double q) const {
    if (count_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) return BucketMidpoint(i);
    }
    return max_;
  }

  uint64_t Median() const { return Percentile(0.5); }

  std::string Summary() const;

 private:
  // Log-linear buckets with a 6-bit mantissa (~1.5% relative error).
  static constexpr size_t kSubBits = 6;
  static constexpr size_t kSubBuckets = 1u << kSubBits;  // 64
  static constexpr size_t kNumBuckets = 64 * kSubBuckets;

  static size_t BucketFor(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    const int log = 63 - __builtin_clzll(v);
    const int shift = log - static_cast<int>(kSubBits) + 1;
    const size_t sub = static_cast<size_t>((v >> shift) & (kSubBuckets - 1));
    return static_cast<size_t>(shift) * kSubBuckets + sub;
  }

  static uint64_t BucketMidpoint(size_t b) {
    if (b < kSubBuckets) return static_cast<uint64_t>(b);
    // Inverse of BucketFor: index = g * kSubBuckets + sub with
    // sub = v >> g, so the bucket covers [sub << g, (sub + 1) << g).
    const int g = static_cast<int>(b / kSubBuckets);
    const uint64_t sub = b % kSubBuckets;
    const uint64_t low = sub << g;
    return low + (1ULL << g) / 2;
  }

  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace corm

#endif  // CORM_COMMON_HISTOGRAM_H_
