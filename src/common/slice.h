// Slice: non-owning view over a byte range (RocksDB-style), plus a tiny
// owning buffer type used by RPC messages.

#ifndef CORM_COMMON_SLICE_H_
#define CORM_COMMON_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace corm {

// A pointer + length pair. Does not own the bytes; the caller must keep the
// underlying storage alive for the lifetime of the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT

  const char* data() const { return data_; }
  const uint8_t* udata() const {
    return reinterpret_cast<const uint8_t*>(data_);
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

// A small owning byte buffer.
using Buffer = std::vector<uint8_t>;

inline Buffer MakeBuffer(Slice s) {
  return Buffer(s.udata(), s.udata() + s.size());
}

}  // namespace corm

#endif  // CORM_COMMON_SLICE_H_
