// Result<T>: a value-or-Status discriminated union (Arrow-style).

#ifndef CORM_COMMON_RESULT_H_
#define CORM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace corm {

// Holds either a T (success) or a non-OK Status (failure). Constructing a
// Result from an OK status is a programming error (there would be no value).
// [[nodiscard]] for the same reason as Status: a dropped Result is a
// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  // Value accessors. Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define CORM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define CORM_ASSIGN_OR_RETURN(lhs, rexpr) \
  CORM_ASSIGN_OR_RETURN_IMPL(CORM_CONCAT_(_res_, __LINE__), lhs, rexpr)

#define CORM_CONCAT_INNER_(a, b) a##b
#define CORM_CONCAT_(a, b) CORM_CONCAT_INNER_(a, b)

}  // namespace corm

#endif  // CORM_COMMON_RESULT_H_
