// Status: lightweight error-reporting type used across the CoRM codebase.
//
// The library does not use exceptions (following the Arrow/RocksDB idiom for
// database systems): every fallible operation returns a Status, or a
// Result<T> (see result.h) when it also produces a value.

#ifndef CORM_COMMON_STATUS_H_
#define CORM_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace corm {

// Error taxonomy. Codes are chosen to cover every failure class the CoRM
// protocol distinguishes; client retry logic dispatches on them.
enum class StatusCode : int {
  kOk = 0,
  // Generic.
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfMemory = 4,
  kInternal = 5,
  kNotSupported = 6,
  // Protocol-specific (see paper sections in comments).
  kObjectMoved = 10,    // ID mismatch at hinted offset: pointer is indirect (§3.2).
  kObjectLocked = 11,   // object under compaction; retry after backoff (§3.2.3).
  kTornRead = 12,       // cacheline versions disagree; retry DirectRead (§3.2.3).
  kStalePointer = 13,   // home block vaddr was released and reused (§3.3).
  kQpBroken = 14,       // QP entered error state (e.g. access during rereg, §3.5).
  kNetworkError = 15,
  kTimeout = 16,        // deadline expired before the operation completed
};

// Returns a stable human-readable name for `code` ("OK", "ObjectMoved", ...).
std::string_view StatusCodeToString(StatusCode code);

// A Status is either OK (cheap: a null pointer) or carries a code + message.
// [[nodiscard]]: silently dropping an error return is a latent bug; callers
// that genuinely do not care must say so with a void cast.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ObjectMoved(std::string msg) {
    return Status(StatusCode::kObjectMoved, std::move(msg));
  }
  static Status ObjectLocked(std::string msg) {
    return Status(StatusCode::kObjectLocked, std::move(msg));
  }
  static Status TornRead(std::string msg) {
    return Status(StatusCode::kTornRead, std::move(msg));
  }
  static Status StalePointer(std::string msg) {
    return Status(StatusCode::kStalePointer, std::move(msg));
  }
  static Status QpBroken(std::string msg) {
    return Status(StatusCode::kQpBroken, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsObjectMoved() const { return code() == StatusCode::kObjectMoved; }
  bool IsObjectLocked() const { return code() == StatusCode::kObjectLocked; }
  bool IsTornRead() const { return code() == StatusCode::kTornRead; }
  bool IsStalePointer() const { return code() == StatusCode::kStalePointer; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsQpBroken() const { return code() == StatusCode::kQpBroken; }
  bool IsNetworkError() const { return code() == StatusCode::kNetworkError; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;  // null means OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK Status out of the current function.
#define CORM_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::corm::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace corm

#endif  // CORM_COMMON_STATUS_H_
