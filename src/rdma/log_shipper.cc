// corm-hotpath
//
// Ship path for the one-sided replicated log. Ship() runs once per replica
// per replicated write, so it follows the data-plane discipline: no locks,
// no allocation after session setup — records are serialized into the
// session's preallocated staging image and written to the wire from there.

#include "rdma/log_shipper.h"

#include <cstring>

#include "common/logging.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"

namespace corm::rdma {

namespace {
// Modeled gap between ack polls: the primary's doorbell/poll cadence, well
// under one fabric round trip.
constexpr uint64_t kAckPollGapNs = 200;
// Retransmit the unacked window every Nth unproductive ack poll.
constexpr int kRetransmitEvery = 8;
}  // namespace

int ReplicaLogShipper::AddSession(Rnic* remote_rnic, sim::VAddr ring_base,
                                  RKey r_key, uint32_t slots,
                                  uint32_t slot_bytes) {
  // Session setup is the cold path (once per replica node per context);
  // the staging image is the allocation that keeps Ship() allocation-free.
  // NOLINT(corm-hotpath-alloc)
  auto s = std::make_unique<Session>(remote_rnic);
  s->base = ring_base;
  s->r_key = r_key;
  s->slots = slots;
  s->slot_bytes = slot_bytes;
  // Staging image + per-slot lengths, sized once here so the ship path
  // never grows them. NOLINT(corm-hotpath-alloc)
  s->staging.resize(static_cast<size_t>(slots) * slot_bytes);
  s->staged_len.assign(slots, 0);  // NOLINT(corm-hotpath-alloc) cold path
  sessions_.push_back(std::move(s));  // NOLINT(corm-hotpath-alloc) cold path
  return static_cast<int>(sessions_.size()) - 1;
}

uint32_t ReplicaLogShipper::capacity(int session) const {
  const Session& s = *sessions_[session];
  return s.slot_bytes - static_cast<uint32_t>(sizeof(ReplRecordHeader));
}

uint64_t ReplicaLogShipper::acked(int session) const {
  return sessions_[session]->acked;
}

uint64_t ReplicaLogShipper::next_seq(int session) const {
  return sessions_[session]->next;
}

Status ReplicaLogShipper::WriteSlot(Session& s, uint64_t seq) {
  const uint32_t wire = s.staged_len[(seq - 1) % s.slots];
  auto ns = s.qp.Write(s.r_key, SlotAddr(s, seq), StagedSlot(s, seq), wire);
  if (ns.status().code() == StatusCode::kQpBroken) {
    // Broken QP (fault site qp.break): reconnect in place and retry. Every
    // staged record survives in the session image, so nothing is lost.
    modeled_ns_ += s.qp.Reconnect();
    ns = s.qp.Write(s.r_key, SlotAddr(s, seq), StagedSlot(s, seq), wire);
  }
  CORM_RETURN_NOT_OK(ns.status());
  modeled_ns_ += *ns;
  return Status::OK();
}

Result<uint64_t> ReplicaLogShipper::Ship(int session, uint8_t kind,
                                         uint32_t epoch, uint64_t version,
                                         const uint8_t addr[16],
                                         Slice payload) {
  Session& s = *sessions_[session];
  if (payload.size() > capacity(session)) {
    return Status::InvalidArgument("record exceeds ring slot");
  }
  const uint64_t seq = s.next;
  if (seq > s.acked + s.slots) {
    // Window full: the slot for `seq` still holds an unapplied record.
    // Refresh the ack one-sidedly before giving up.
    auto applied = ReadApplied(session);
    CORM_RETURN_NOT_OK(applied.status());
    if (seq > s.acked + s.slots) {
      return Status::NetworkError("repl ring window full");
    }
  }

  ReplRecordHeader h;
  h.magic = kReplRecordMagic;
  h.epoch = epoch;
  h.seq = seq;
  h.version = version;
  std::memcpy(h.addr, addr, sizeof(h.addr));
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.kind = kind;
  h.crc = ReplRecordCrc(h, payload.data(), payload.size());

  uint8_t* slot = StagedSlot(s, seq);
  std::memcpy(slot, &h, sizeof(h));
  if (!payload.empty()) {
    std::memcpy(slot + sizeof(h), payload.data(), payload.size());
  }
  s.staged_len[(seq - 1) % s.slots] =
      static_cast<uint32_t>(sizeof(h) + payload.size());

  if (auto* inj = sim::GlobalFaultInjector();
      inj == nullptr || !inj->ShouldFire(sim::fault_sites::kReplShipDrop)) {
    CORM_RETURN_NOT_OK(WriteSlot(s, seq));
  }
  s.next = seq + 1;
  return seq;
}

Result<uint64_t> ReplicaLogShipper::ReadApplied(int session) {
  Session& s = *sessions_[session];
  uint64_t delay_ns = 0;
  if (auto* inj = sim::GlobalFaultInjector();
      inj != nullptr &&
      inj->ShouldFire(sim::fault_sites::kReplAckDelay, &delay_ns)) {
    sim::Pace(delay_ns);
    modeled_ns_ += delay_ns;
  }
  uint64_t word = 0;
  auto ns = s.qp.Read(s.r_key, s.base, &word, sizeof(word));
  if (ns.status().code() == StatusCode::kQpBroken) {
    modeled_ns_ += s.qp.Reconnect();
    ns = s.qp.Read(s.r_key, s.base, &word, sizeof(word));
  }
  CORM_RETURN_NOT_OK(ns.status());
  modeled_ns_ += *ns;
  if (word > s.acked) s.acked = word;
  return word;
}

Result<uint64_t> ReplicaLogShipper::ReadAppliedBatch(const int* sessions,
                                                     size_t n) {
  // Fixed chain width keeps this allocation-free (hotpath discipline):
  // wider polls run as back-to-back chains.
  constexpr size_t kChain = 16;
  uint64_t total_ns = 0;
  while (n > 0) {
    const size_t k = n < kChain ? n : kChain;
    QueuePair* qps[kChain];
    WorkRequest wrs[kChain];
    uint64_t words[kChain] = {};
    for (size_t i = 0; i < k; ++i) {
      Session& s = *sessions_[sessions[i]];
      if (s.qp.state() == QueuePair::State::kError) {
        const uint64_t reconnect_ns = s.qp.Reconnect();
        modeled_ns_ += reconnect_ns;
        total_ns += reconnect_ns;
      }
      uint64_t delay_ns = 0;
      if (auto* inj = sim::GlobalFaultInjector();
          inj != nullptr &&
          inj->ShouldFire(sim::fault_sites::kReplAckDelay, &delay_ns)) {
        sim::Pace(delay_ns);
        modeled_ns_ += delay_ns;
        total_ns += delay_ns;
      }
      qps[i] = &s.qp;
      wrs[i] = WorkRequest{};
      wrs[i].op = WorkRequest::Op::kRead;
      wrs[i].r_key = s.r_key;
      wrs[i].addr = s.base;
      wrs[i].buf = &words[i];
      wrs[i].len = sizeof(uint64_t);
    }
    auto ns = PostBatchShared(qps, wrs, k);
    CORM_RETURN_NOT_OK(ns.status());
    modeled_ns_ += *ns;
    total_ns += *ns;
    for (size_t i = 0; i < k; ++i) {
      if (!wrs[i].status.ok()) continue;  // flushed mid-chain: next round
      Session& s = *sessions_[sessions[i]];
      if (words[i] > s.acked) s.acked = words[i];
    }
    sessions += k;
    n -= k;
  }
  return total_ns;
}

Status ReplicaLogShipper::Retransmit(int session) {
  Session& s = *sessions_[session];
  for (uint64_t seq = s.acked + 1; seq < s.next; ++seq) {
    CORM_RETURN_NOT_OK(WriteSlot(s, seq));
  }
  return Status::OK();
}

Status ReplicaLogShipper::AwaitApplied(int session, uint64_t seq,
                                       const Deadline& deadline) {
  int polls = 0;
  while (!deadline.Expired()) {
    auto applied = ReadApplied(session);
    CORM_RETURN_NOT_OK(applied.status());
    if (*applied >= seq) return Status::OK();
    if (++polls % kRetransmitEvery == 0) {
      CORM_RETURN_NOT_OK(Retransmit(session));
    }
    sim::Pace(kAckPollGapNs);
  }
  return Status::Timeout("replica apply deadline expired");
}

}  // namespace corm::rdma
