// Wire formats for the one-sided replicated log (DESIGN.md §11).
//
// A primary replicates a write by RDMA-WRITEing one *log record* into each
// backup's ingress ring (ReplLogRing below lives in write_ring.h). The
// record is self-describing and self-validating: a magic word, the shipper's
// epoch and sequence number, the object version, the target address as
// opaque bytes (this layer must not depend on core/), and an FNV-1a
// checksum over header + payload. A backup only applies a record whose
// checksum validates AND whose sequence is exactly applied+1 — so torn or
// reordered one-sided writes are indistinguishable from "not arrived yet"
// and the shipper's retransmit path fills the gap.
//
// The record payload for a data record is the object's full replicated
// image: a ReplObjectHeader followed by the user payload. Replicas store
// that image verbatim, which lets readers validate any replica copy
// independently (epoch + version + crc) and lets failover seal an epoch by
// rewriting only the header portion of each stored image.

#ifndef CORM_RDMA_REPL_RECORD_H_
#define CORM_RDMA_REPL_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace corm::rdma {

// Record kinds. A seal record carries no user payload: it instructs the
// applier to fence the old epoch on the addressed object.
inline constexpr uint8_t kReplRecordData = 1;
inline constexpr uint8_t kReplRecordSeal = 2;

inline constexpr uint32_t kReplRecordMagic = 0x4C504552u;  // "REPL"

// FNV-1a, the same idiom object_layout.cc uses for payload checksums. Seeded
// so multi-span checksums chain: crc = ReplFnv1a(b, n, ReplFnv1a(a, m)).
inline uint32_t ReplFnv1a(const void* data, size_t n,
                          uint32_t seed = 2166136261u) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

// The fixed prefix of every slot in a ReplLogRing. 56 bytes, explicitly
// padded, trivially copyable — it crosses the (simulated) wire as raw bytes.
struct ReplRecordHeader {
  uint32_t magic = 0;      // kReplRecordMagic
  uint32_t epoch = 0;      // shipper's replication epoch (fencing token)
  uint64_t seq = 0;        // 1-based per-ring sequence number
  uint64_t version = 0;    // object version this record installs
  uint8_t addr[16] = {};   // target GlobalAddr, opaque to this layer
  uint32_t payload_len = 0;
  uint8_t kind = 0;        // kReplRecordData | kReplRecordSeal
  uint8_t pad[3] = {};
  uint32_t crc = 0;        // FNV-1a over header (crc field zeroed) + payload
  uint32_t pad2 = 0;       // keeps sizeof a multiple of the u64 alignment
};
static_assert(sizeof(ReplRecordHeader) == 56, "record header is wire format");
static_assert(std::is_trivially_copyable_v<ReplRecordHeader>,
              "record header crosses the wire as raw bytes");

// Computes the record checksum: header with its crc field zeroed, then the
// payload bytes.
inline uint32_t ReplRecordCrc(const ReplRecordHeader& h, const void* payload,
                              size_t payload_len) {
  ReplRecordHeader tmp = h;
  tmp.crc = 0;
  uint32_t crc = ReplFnv1a(&tmp, sizeof(tmp));
  if (payload_len != 0) crc = ReplFnv1a(payload, payload_len, crc);
  return crc;
}

// The stored prefix of every replicated object image. Readers validate a
// replica copy by recomputing crc over (version, user payload[len]); the
// epoch is deliberately *excluded* from the crc so a failover seal can bump
// the stored epoch without recomputing payload checksums it cannot see.
struct ReplObjectHeader {
  uint32_t epoch = 0;    // epoch that last wrote or sealed this copy
  uint32_t crc = 0;      // FNV-1a over (version, user payload[len])
  uint64_t version = 0;  // monotone per-object write version
  uint32_t len = 0;      // user payload bytes following this header
  uint32_t pad = 0;
};
static_assert(sizeof(ReplObjectHeader) == 24, "object header is wire format");
static_assert(std::is_trivially_copyable_v<ReplObjectHeader>,
              "object header is stored/shipped as raw bytes");

inline uint32_t ReplObjectCrc(uint64_t version, const void* payload,
                              size_t len) {
  uint32_t crc = ReplFnv1a(&version, sizeof(version));
  if (len != 0) crc = ReplFnv1a(payload, len, crc);
  return crc;
}

// True when `h` + the `len` payload bytes that follow it form a
// self-consistent replica image.
inline bool ReplObjectValid(const ReplObjectHeader& h, const void* payload) {
  return h.crc == ReplObjectCrc(h.version, payload, h.len);
}

}  // namespace corm::rdma

#endif  // CORM_RDMA_REPL_RECORD_H_
