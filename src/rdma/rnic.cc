#include "rdma/rnic.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "sim/fault_injector.h"

namespace corm::rdma {

Rnic::Rnic(sim::AddressSpace* address_space, sim::LatencyModel model)
    : space_(address_space),
      model_(model),
      mtt_cache_(model.MttCacheEntries()) {
  space_->AddNotifier(this);
}

void Rnic::ResetMttCache() {
  for (auto& entry : mtt_cache_) entry.store(0, std::memory_order_relaxed);
  stats_.mtt_cache_hits.store(0, std::memory_order_relaxed);
  stats_.mtt_cache_misses.store(0, std::memory_order_relaxed);
}

uint64_t Rnic::MttCacheAccess(sim::VAddr page) {
  const uint64_t vpage = page >> sim::kVPageShift;
  const size_t set =
      (vpage * 0x9E3779B97F4A7C15ULL >> 17) % mtt_cache_.size();
  auto& entry = mtt_cache_[set];
  if (entry.load(std::memory_order_relaxed) == vpage) {
    stats_.mtt_cache_hits.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  entry.store(vpage, std::memory_order_relaxed);
  stats_.mtt_cache_misses.fetch_add(1, std::memory_order_relaxed);
  return model_.MttCacheMissNs();
}

Rnic::~Rnic() {
  space_->RemoveNotifier(this);
  // Drop all MTT frame references.
  LockGuard<Mutex> lock(mu_);
  for (auto& [key, mr] : regions_) {
    LockGuard<Mutex> elock(mr->entries_mu_);
    for (auto& entry : mr->entries_) {
      if (entry.valid) space_->physical_memory()->Unref(entry.frame);
    }
    mr->entries_.clear();
  }
}

Result<MrKeys> Rnic::RegisterMemory(sim::VAddr base, size_t npages,
                                    bool odp) {
  if (sim::PageOffset(base) != 0 || npages == 0) {
    return Status::InvalidArgument("RegisterMemory: bad range");
  }
  MrKeys keys;
  std::shared_ptr<MemoryRegion> mr;
  {
    LockGuard<Mutex> lock(mu_);
    keys.l_key = next_key_;
    keys.r_key = next_key_;
    ++next_key_;
    mr = std::make_shared<MemoryRegion>(base, npages, odp, keys);
    regions_[keys.r_key] = mr;
    by_base_[base] = mr;
  }
  // Pin + snapshot translations into the MTT.
  LockGuard<Mutex> elock(mr->entries_mu_);
  for (size_t i = 0; i < npages; ++i) {
    Status st = ResolveEntryLocked(mr.get(), i);
    if (!st.ok()) {
      // Unwind: drop what we pinned and remove the region.
      for (size_t j = 0; j < i; ++j) {
        space_->physical_memory()->Unref(mr->entries_[j].frame);
      }
      LockGuard<Mutex> lock(mu_);
      regions_.erase(keys.r_key);
      by_base_.erase(base);
      return st;
    }
  }
  return keys;
}

Status Rnic::DeregisterMemory(RKey r_key) {
  std::shared_ptr<MemoryRegion> mr;
  {
    LockGuard<Mutex> lock(mu_);
    auto it = regions_.find(r_key);
    if (it == regions_.end()) {
      return Status::NotFound("DeregisterMemory: unknown r_key");
    }
    mr = it->second;
    regions_.erase(it);
    by_base_.erase(mr->base());
  }
  LockGuard<Mutex> elock(mr->entries_mu_);
  for (auto& entry : mr->entries_) {
    if (entry.valid) {
      space_->physical_memory()->Unref(entry.frame);
      entry.valid = false;
    }
  }
  return Status::OK();
}

std::shared_ptr<MemoryRegion> Rnic::Lookup(RKey r_key) {
  LockGuard<Mutex> lock(mu_);
  auto it = regions_.find(r_key);
  return it == regions_.end() ? nullptr : it->second;
}

MemoryRegion* Rnic::FindRegion(RKey r_key) { return Lookup(r_key).get(); }

Status Rnic::ResolveEntryLocked(MemoryRegion* mr, size_t page_idx) {
  auto frame = space_->TranslatePage(mr->base_ + page_idx * sim::kVPageSize);
  if (!frame.ok()) return frame.status();
  auto& entry = mr->entries_[page_idx];
  if (entry.valid) space_->physical_memory()->Unref(entry.frame);
  entry.frame = *frame;
  entry.valid = true;
  space_->physical_memory()->Ref(entry.frame);
  return Status::OK();
}

Result<uint64_t> Rnic::ReregMr(RKey r_key) {
  CORM_RETURN_NOT_OK(BeginRereg(r_key));
  CORM_RETURN_NOT_OK(EndRereg(r_key));
  return model_.ReregMrNs();
}

Status Rnic::BeginRereg(RKey r_key) {
  auto mr = Lookup(r_key);
  if (!mr) return Status::NotFound("ReregMr: unknown r_key");
  bool expected = false;
  if (!mr->reregistering_.compare_exchange_strong(expected, true)) {
    return Status::Internal("ReregMr: already re-registering");
  }
  stats_.reregs.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Rnic::EndRereg(RKey r_key) {
  auto mr = Lookup(r_key);
  if (!mr) return Status::NotFound("ReregMr: unknown r_key");
  {
    LockGuard<Mutex> elock(mr->entries_mu_);
    for (size_t i = 0; i < mr->npages_; ++i) {
      Status st = ResolveEntryLocked(mr.get(), i);
      if (!st.ok()) {
        mr->reregistering_.store(false);
        return st;
      }
    }
  }
  mr->reregistering_.store(false);
  return Status::OK();
}

Result<uint64_t> Rnic::AdviseRegion(MemoryRegion* mr, sim::VAddr addr,
                                    size_t len) {
  if (!mr->Covers(addr, len)) {
    return Status::InvalidArgument("AdviseMr: range outside region");
  }
  if (!mr->odp_) {
    return Status::NotSupported("AdviseMr: region not registered with ODP");
  }
  const size_t first = (addr - mr->base_) >> sim::kVPageShift;
  const size_t last = (addr + len - 1 - mr->base_) >> sim::kVPageShift;
  uint64_t ns = 0;
  LockGuard<Mutex> elock(mr->entries_mu_);
  for (size_t i = first; i <= last; ++i) {
    if (!mr->entries_[i].valid) {
      CORM_RETURN_NOT_OK(ResolveEntryLocked(mr, i));
      ns += model_.AdviseMrNs();
      stats_.prefetches.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return ns;
}

Result<uint64_t> Rnic::AdviseMr(RKey r_key, sim::VAddr addr, size_t len) {
  auto mr = Lookup(r_key);
  if (!mr) return Status::NotFound("AdviseMr: unknown r_key");
  return AdviseRegion(mr.get(), addr, len);
}

Status Rnic::ReregRegion(MemoryRegion* mr) {
  bool expected = false;
  if (!mr->reregistering_.compare_exchange_strong(expected, true)) {
    return Status::Internal("ReregMr: already re-registering");
  }
  stats_.reregs.fetch_add(1, std::memory_order_relaxed);
  {
    LockGuard<Mutex> elock(mr->entries_mu_);
    for (size_t i = 0; i < mr->npages_; ++i) {
      Status st = ResolveEntryLocked(mr, i);
      if (!st.ok()) {
        mr->reregistering_.store(false);
        return st;
      }
    }
  }
  mr->reregistering_.store(false);
  return Status::OK();
}

// One registration-table pass resolves every key; the per-region repairs
// then run back-to-back as a single epoch (no table walk between them).
Result<std::vector<std::shared_ptr<MemoryRegion>>> Rnic::LookupBatch(
    const std::vector<RKey>& keys, const char* what) {
  std::vector<std::shared_ptr<MemoryRegion>> mrs;
  mrs.reserve(keys.size());
  LockGuard<Mutex> lock(mu_);
  for (RKey key : keys) {
    auto it = regions_.find(key);
    if (it == regions_.end()) {
      return Status::NotFound(std::string(what) + ": unknown r_key");
    }
    mrs.push_back(it->second);
  }
  return mrs;
}

Status Rnic::ReregMrBatch(const std::vector<RKey>& keys) {
  if (keys.empty()) return Status::OK();
  auto mrs = LookupBatch(keys, "ReregMrBatch");
  CORM_RETURN_NOT_OK(mrs.status());
  stats_.repair_batches.fetch_add(1, std::memory_order_relaxed);
  for (auto& mr : *mrs) {
    CORM_RETURN_NOT_OK(ReregRegion(mr.get()));
  }
  return Status::OK();
}

Status Rnic::AdviseMrBatch(const std::vector<MrRange>& ranges) {
  if (ranges.empty()) return Status::OK();
  std::vector<RKey> keys;
  keys.reserve(ranges.size());
  for (const MrRange& r : ranges) keys.push_back(r.r_key);
  auto mrs = LookupBatch(keys, "AdviseMrBatch");
  CORM_RETURN_NOT_OK(mrs.status());
  stats_.repair_batches.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < ranges.size(); ++i) {
    auto ns = AdviseRegion((*mrs)[i].get(), ranges[i].addr, ranges[i].len);
    CORM_RETURN_NOT_OK(ns.status());
  }
  return Status::OK();
}

Result<uint64_t> Rnic::MttAccess(RKey r_key, sim::VAddr addr, void* buf,
                                 size_t len, bool is_write, bool* broke_qp) {
  *broke_qp = false;
  if (auto* fi = sim::GlobalFaultInjector();
      fi != nullptr && fi->ShouldFire(sim::fault_sites::kQpBreak)) {
    // Injected transport-level fault (cable pull, firmware hiccup): the QP
    // transitions to the error state exactly like the organic break paths
    // below, so clients exercise the same reconnect machinery.
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    *broke_qp = true;
    return Status::QpBroken("injected QP break");
  }
  auto mr = Lookup(r_key);
  if (!mr) {
    // Invalid r_key: the IB spec says the QP moves to the error state.
    *broke_qp = true;
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    return Status::QpBroken("remote access error: unknown r_key");
  }
  if (!mr->Covers(addr, len)) {
    *broke_qp = true;
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    return Status::QpBroken("remote access error: out of region bounds");
  }
  if (mr->reregistering_.load(std::memory_order_acquire)) {
    // Access while ibv_rereg_mr is in flight (paper §3.5, first strategy).
    *broke_qp = true;
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    return Status::QpBroken("access during memory re-registration");
  }

  (is_write ? stats_.writes : stats_.reads)
      .fetch_add(1, std::memory_order_relaxed);

  uint64_t fault_ns = 0;
  auto* cbuf = static_cast<uint8_t*>(buf);
  sim::VAddr cur = addr;
  size_t remaining = len;
  LockGuard<Mutex> elock(mr->entries_mu_);
  while (remaining > 0) {
    fault_ns += MttCacheAccess(cur);
    const size_t page_idx = (cur - mr->base_) >> sim::kVPageShift;
    auto& entry = mr->entries_[page_idx];
    if (!entry.valid) {
      if (!mr->odp_) {
        *broke_qp = true;
        stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
        return Status::QpBroken("MTT entry invalid on non-ODP region");
      }
      // ODP fault: re-resolve from the OS page table (modeled 63 us).
      Status st = ResolveEntryLocked(mr.get(), page_idx);
      if (!st.ok()) {
        *broke_qp = true;
        stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
        return Status::QpBroken("ODP fault on unmapped page: " + st.message());
      }
      fault_ns += model_.OdpMissNs();
      stats_.odp_faults.fetch_add(1, std::memory_order_relaxed);
    }
    const size_t in_page =
        std::min<size_t>(remaining, sim::kVPageSize - sim::PageOffset(cur));
    uint8_t* frame_ptr = space_->physical_memory()->FrameData(entry.frame) +
                         sim::PageOffset(cur);
    if (is_write) {
      std::memcpy(frame_ptr, cbuf, in_page);
    } else {
      std::memcpy(cbuf, frame_ptr, in_page);
    }
    cbuf += in_page;
    cur += in_page;
    remaining -= in_page;
  }
  return fault_ns;
}

Result<uint64_t> Rnic::MttAtomic(RKey r_key, sim::VAddr addr, bool is_cas,
                                 uint64_t compare, uint64_t operand,
                                 uint64_t* old_value, bool* broke_qp) {
  *broke_qp = false;
  if (auto* fi = sim::GlobalFaultInjector();
      fi != nullptr && fi->ShouldFire(sim::fault_sites::kQpBreak)) {
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    *broke_qp = true;
    return Status::QpBroken("injected QP break");
  }
  if (addr % sizeof(uint64_t) != 0) {
    // The IB spec only defines atomics on naturally-aligned 8-byte words.
    *broke_qp = true;
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    return Status::QpBroken("remote atomic on unaligned address");
  }
  auto mr = Lookup(r_key);
  if (!mr) {
    *broke_qp = true;
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    return Status::QpBroken("remote access error: unknown r_key");
  }
  if (!mr->Covers(addr, sizeof(uint64_t))) {
    *broke_qp = true;
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    return Status::QpBroken("remote access error: out of region bounds");
  }
  if (mr->reregistering_.load(std::memory_order_acquire)) {
    *broke_qp = true;
    stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
    return Status::QpBroken("access during memory re-registration");
  }
  stats_.atomics.fetch_add(1, std::memory_order_relaxed);

  uint64_t fault_ns = MttCacheAccess(addr);
  LockGuard<Mutex> elock(mr->entries_mu_);
  const size_t page_idx = (addr - mr->base_) >> sim::kVPageShift;
  auto& entry = mr->entries_[page_idx];
  if (!entry.valid) {
    if (!mr->odp_) {
      *broke_qp = true;
      stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
      return Status::QpBroken("MTT entry invalid on non-ODP region");
    }
    Status st = ResolveEntryLocked(mr.get(), page_idx);
    if (!st.ok()) {
      *broke_qp = true;
      stats_.qp_breaks.fetch_add(1, std::memory_order_relaxed);
      return Status::QpBroken("ODP fault on unmapped page: " + st.message());
    }
    fault_ns += model_.OdpMissNs();
    stats_.odp_faults.fetch_add(1, std::memory_order_relaxed);
  }
  auto* word = reinterpret_cast<uint64_t*>(
      space_->physical_memory()->FrameData(entry.frame) +
      sim::PageOffset(addr));
  std::atomic_ref<uint64_t> ref(*word);
  if (is_cas) {
    uint64_t expected = compare;
    ref.compare_exchange_strong(expected, operand,
                                std::memory_order_acq_rel);
    *old_value = expected;  // prior contents whether or not the CAS won
  } else {
    *old_value = ref.fetch_add(operand, std::memory_order_acq_rel);
  }
  return fault_ns;
}

void Rnic::OnMappingChange(sim::VAddr page) {
  // Regions are disjoint: find the (at most one) region covering `page`
  // via the base-ordered index, then invalidate under the region's lock.
  std::shared_ptr<MemoryRegion> affected;
  {
    LockGuard<Mutex> lock(mu_);
    auto it = by_base_.upper_bound(page);
    if (it != by_base_.begin()) {
      --it;
      auto& mr = it->second;
      if (mr->odp_ && page >= mr->base_ && page < mr->base_ + mr->length()) {
        affected = mr;
      }
    }
  }
  if (!affected) return;
  const size_t idx = (page - affected->base()) >> sim::kVPageShift;
  LockGuard<Mutex> elock(affected->entries_mu_);
  auto& entry = affected->entries_[idx];
  if (entry.valid) {
    space_->physical_memory()->Unref(entry.frame);
    entry.valid = false;
    entry.frame = sim::kInvalidFrame;
  }
}

}  // namespace corm::rdma
