#include "rdma/rpc_transport.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/cpu_relax.h"
#include "common/thread_annotations.h"
#include "sim/fault_injector.h"

namespace corm::rdma {

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

void NicMessageRateLimiter::Acquire() {
  const uint64_t interval = interval_ns_.load(std::memory_order_relaxed);
  if (interval == 0) return;
  const double scale = sim::SimTimeScale().load(std::memory_order_relaxed);
  if (scale <= 0.0) return;
  const auto real_interval = static_cast<uint64_t>(interval * scale);
  // Claim the next message slot; slots never accumulate burst credit
  // (an idle NIC does not store capacity).
  uint64_t slot;
  uint64_t expected = next_slot_ns_.load(std::memory_order_relaxed);
  for (;;) {
    slot = std::max(expected, NowNs());
    if (next_slot_ns_.compare_exchange_weak(expected, slot + real_interval,
                                            std::memory_order_relaxed)) {
      break;
    }
  }
  while (NowNs() < slot) {
    CpuRelax();  // wait until the NIC would have drained earlier messages
  }
}

RpcMessage* RpcMessage::New() {
  // Private-ish factory the shared client/server lifetime needs; the
  // refcount, not a single owner, controls deletion. NOLINT(corm-raw-new)
  auto* msg = new RpcMessage();
  msg->refs_.store(2, std::memory_order_relaxed);
  return msg;
}

// Escape: refcounted teardown — exclusive ownership of *this is proven by
// the acq_rel fetch_sub observing 1 (every other holder already released),
// a protocol the analyzer cannot express as a capability.
void RpcMessage::Unref() NO_THREAD_SAFETY_ANALYSIS {
  if (refs_.load(std::memory_order_relaxed) == 0) return;  // stack-owned
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Matches New(): the last reference, not a named owner, frees.
    delete this;  // NOLINT(corm-raw-new)
  }
}

RpcCallResult RpcClient::Call(Buffer request) {
  RpcCallResult out;
  auto* fi = sim::GlobalFaultInjector();
  const Deadline deadline(policy_.deadline_ns);

  // Injected extra network latency (congestion, retransmission) on the
  // request leg.
  if (fi != nullptr) {
    uint64_t delay_ns = 0;
    if (fi->ShouldFire(sim::fault_sites::kRpcDelay, &delay_ns)) {
      sim::Pace(delay_ns);
      out.network_ns += delay_ns;
    }
  }

  const uint64_t req_leg = model_.RpcNs(request.size()) / 2;
  RpcMessage* msg = RpcMessage::New();
  msg->request = std::move(request);

  // Request leg: RDMA-write of the request into the remote RPC queue; the
  // server NIC admits messages at its two-sided message rate.
  sim::Pace(req_leg);
  out.network_ns += req_leg;

  bool delivered = false;
  if (fi == nullptr || !fi->ShouldFire(sim::fault_sites::kRpcDropRequest)) {
    queue_->rate_limiter()->Acquire();
    for (;;) {
      if (queue_->Push(msg)) {
        delivered = true;
        break;
      }
      // Queue full: remote node saturated; clients retry, which throttles
      // the aggregate RPC throughput exactly as a bounded RPC ring does —
      // up to the deadline, past which the node counts as unresponsive.
      if (deadline.Expired()) break;
      sim::Pace(200);
    }
  }
  if (!delivered) {
    // The server will never see this message: release its reference too.
    msg->Unref();
    msg->Unref();
    out.status = Status::Timeout("rpc request not delivered");
    return out;
  }

  // Spin for completion (client polls its completion queue), checking the
  // wall-clock deadline at a coarse stride to keep the hot path cheap.
  bool completed = false;
  for (uint32_t spins = 0;; ++spins) {
    if (msg->done.load(std::memory_order_acquire)) {
      completed = true;
      break;
    }
    if ((spins & 0x3ff) == 0x3ff && deadline.Expired()) break;
    CpuRelax();
  }
  if (!completed) {
    // Abandon the in-flight call: the server still holds its reference and
    // settles the memory whenever (if ever) it completes the request.
    msg->Unref();
    out.status = Status::Timeout("rpc completion deadline expired");
    return out;
  }

  // The completion (response packet) itself can be lost: the server
  // applied the operation but the client cannot know — classic at-least-
  // once ambiguity, surfaced as kTimeout.
  if (fi != nullptr && fi->ShouldFire(sim::fault_sites::kRpcDropResponse)) {
    msg->Unref();
    out.status = Status::Timeout("rpc response lost");
    return out;
  }

  out.status = std::move(msg->status);
  out.response = std::move(msg->response);
  out.server_extra_ns = msg->server_extra_ns;
  msg->Unref();

  // Response leg, sized by the reply payload; also a NIC message.
  const uint64_t resp_leg = model_.RpcNs(out.response.size()) / 2;
  queue_->rate_limiter()->Acquire();
  sim::Pace(resp_leg);
  out.network_ns += resp_leg;
  if (fi != nullptr && fi->ShouldFire(sim::fault_sites::kRpcDupCompletion)) {
    // Duplicated completion: the NIC delivers the response twice; the
    // second copy costs another message slot and leg of network time.
    out.dup_completion = true;
    queue_->rate_limiter()->Acquire();
    sim::Pace(resp_leg);
    out.network_ns += resp_leg;
  }
  return out;
}

}  // namespace corm::rdma
