// corm-hotpath
#include "rdma/rpc_transport.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/cpu_relax.h"
#include "common/thread_annotations.h"
#include "sim/fault_injector.h"

namespace corm::rdma {

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

// ---------------------------------------------------------------------------
// Message pool.
// ---------------------------------------------------------------------------

namespace {

std::atomic<bool> g_pool_enabled{true};

// Thread-local freelist; its destructor (thread exit) frees what the thread
// shelved. Plain vector: only the owning thread touches it.
struct MessageFreeList {
  std::vector<RpcMessage*> items;
  ~MessageFreeList() {
    // Thread exit: the shelf is this thread's; free it. NOLINT(corm-raw-new)
    for (RpcMessage* m : items) delete m;
  }
};

MessageFreeList& LocalFreeList() {
  thread_local MessageFreeList list;
  return list;
}

}  // namespace

void RpcMessagePool::SetEnabled(bool on) {
  g_pool_enabled.store(on, std::memory_order_relaxed);
}

bool RpcMessagePool::Enabled() {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

RpcMessage* RpcMessagePool::Acquire() {
  MessageFreeList& list = LocalFreeList();
  RpcMessage* msg;
  if (Enabled() && !list.items.empty()) {
    msg = list.items.back();
    list.items.pop_back();
  } else {
    // Cold path: pool empty (warm-up) or pooling disabled.
    msg = new RpcMessage();  // NOLINT(corm-raw-new)
  }
  // Two references: the calling client's and the serving node's.
  msg->refs_.store(2, std::memory_order_relaxed);
  return msg;
}

size_t RpcMessagePool::LocalFreeForTesting() {
  return LocalFreeList().items.size();
}

void RpcMessagePool::Recycle(RpcMessage* msg) {
  MessageFreeList& list = LocalFreeList();
  if (!Enabled() || list.items.size() >= kMaxPerThread) {
    delete msg;  // NOLINT(corm-raw-new) refcount 0: sole owner
    return;
  }
  // Reset for reuse; clear() keeps the buffers' capacity, which is the
  // point of the pool — steady state re-encodes into already-sized storage.
  msg->request.clear();
  msg->response.clear();
  msg->status = Status::OK();
  msg->server_extra_ns = 0;
  // Relaxed is enough: the next use publishes the message to the server
  // through the queue's release/acquire hand-off, which orders this store.
  msg->done.store(false, std::memory_order_relaxed);
  // Freelist shelf: growth is bounded by the in-flight high-water mark and
  // amortizes to zero in steady state. NOLINT(corm-hotpath-alloc)
  list.items.push_back(msg);
}

RpcMessage* RpcMessage::New() { return RpcMessagePool::Acquire(); }

// Escape: refcounted teardown — exclusive ownership of *this is proven by
// the acq_rel fetch_sub observing 1 (every other holder already released),
// a protocol the analyzer cannot express as a capability.
void RpcMessage::Unref() NO_THREAD_SAFETY_ANALYSIS {
  if (refs_.load(std::memory_order_relaxed) == 0) return;  // stack-owned
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // The last reference recycles into *this* thread's freelist: the client
    // on the normal path, the worker when the client abandoned on timeout.
    RpcMessagePool::Recycle(this);
  }
}

// ---------------------------------------------------------------------------
// NIC message rate limiter.
// ---------------------------------------------------------------------------

void NicMessageRateLimiter::Acquire() {
  const uint64_t interval = interval_ns_.load(std::memory_order_relaxed);
  if (interval == 0) return;
  const double scale = sim::SimTimeScale().load(std::memory_order_relaxed);
  if (scale <= 0.0) return;
  const auto real_interval = static_cast<uint64_t>(interval * scale);
  // Claim the next message slot; slots never accumulate burst credit
  // (an idle NIC does not store capacity).
  uint64_t slot;
  uint64_t expected = next_slot_ns_.load(std::memory_order_relaxed);
  Backoff backoff;
  for (;;) {
    slot = std::max(expected, NowNs());
    if (next_slot_ns_.compare_exchange_weak(expected, slot + real_interval,
                                            std::memory_order_relaxed)) {
      break;
    }
    // Contended CAS: many clients racing for slots. Back off exponentially
    // so losers stop hammering the line the winner needs.
    backoff.Pause();
  }
  // Wait out the slot. The wait is proportional to queue depth under
  // saturation, so escalate from pauses through yields to short sleeps
  // instead of burning the core at a fixed rate.
  backoff.Reset();
  while (NowNs() < slot) {
    backoff.Pause();
  }
}

// ---------------------------------------------------------------------------
// RPC queue (per-worker rings).
// ---------------------------------------------------------------------------

RpcQueue::RpcQueue(size_t ring_capacity_pow2, int num_rings) {
  const int n = std::max(num_rings, 1);
  rings_.reserve(static_cast<size_t>(n));  // NOLINT(corm-hotpath-alloc) ctor
  for (int i = 0; i < n; ++i) {
    rings_.push_back(  // NOLINT(corm-hotpath-alloc) construction only
        std::make_unique<MpmcQueue<RpcMessage*>>(ring_capacity_pow2));
  }
}

bool RpcQueue::Push(RpcMessage* msg, int ring_hint) {
  const size_t n = rings_.size();
  size_t first;
  if (ring_hint >= 0 && static_cast<size_t>(ring_hint) < n) {
    first = static_cast<size_t>(ring_hint);  // owner-affinity dispatch
  } else {
    first = rr_.fetch_add(1, std::memory_order_relaxed) % n;
  }
  // Prefer the chosen ring; sweep the rest so a single full ring does not
  // fail the push while other workers have headroom.
  for (size_t i = 0; i < n; ++i) {
    if (rings_[(first + i) % n]->TryPush(msg)) return true;
  }
  return false;
}

RpcMessage* RpcQueue::Poll() {
  for (auto& ring : rings_) {
    if (auto msg = ring->TryPop()) return *msg;
  }
  return nullptr;
}

size_t RpcQueue::PollBatch(int ring, RpcMessage** out, size_t max) {
  const size_t own =
      (ring >= 0 && static_cast<size_t>(ring) < rings_.size())
          ? static_cast<size_t>(ring)
          : 0;
  return rings_[own]->TryPopBatch(out, max);
}

size_t RpcQueue::ApproxDepth() const {
  size_t total = 0;
  for (const auto& ring : rings_) total += ring->ApproxSize();
  return total;
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

Status RpcClient::CallPooled(RpcMessage** inout_msg, int ring_hint,
                             RpcWireStats* wire) {
  RpcMessage* msg = *inout_msg;
  auto* fi = sim::GlobalFaultInjector();
  const Deadline deadline(policy_.deadline_ns);

  // Injected extra network latency (congestion, retransmission) on the
  // request leg.
  if (fi != nullptr) {
    uint64_t delay_ns = 0;
    if (fi->ShouldFire(sim::fault_sites::kRpcDelay, &delay_ns)) {
      sim::Pace(delay_ns);
      wire->network_ns += delay_ns;
    }
  }

  // Request leg: RDMA-write of the request into the remote RPC queue; the
  // server NIC admits messages at its two-sided message rate.
  const uint64_t req_leg = model_.RpcNs(msg->request.size()) / 2;
  sim::Pace(req_leg);
  wire->network_ns += req_leg;

  bool delivered = false;
  if (fi == nullptr || !fi->ShouldFire(sim::fault_sites::kRpcDropRequest)) {
    queue_->rate_limiter()->Acquire();
    Backoff backoff;
    for (;;) {
      if (queue_->Push(msg, ring_hint)) {
        delivered = true;
        break;
      }
      // Queue full: remote node saturated; clients retry, which throttles
      // the aggregate RPC throughput exactly as a bounded RPC ring does —
      // up to the deadline, past which the node counts as unresponsive.
      // Exponential backoff: a full ring means many clients outpacing the
      // workers, so spinning at full rate only steepens the overload.
      if (deadline.Expired()) break;
      sim::Pace(200);
      backoff.Pause();
    }
  }
  if (!delivered) {
    // The server will never see this message: release its reference too.
    msg->Unref();
    msg->Unref();
    *inout_msg = nullptr;
    return Status::Timeout("rpc request not delivered");
  }

  // Spin for completion (client polls its completion queue), checking the
  // wall-clock deadline at a coarse stride to keep the hot path cheap.
  // Deliberately CpuRelax (pause + yield), not the sleep ladder: on an
  // oversubscribed host the serving worker needs this core, and a sleeping
  // client would add 50 us to every RPC.
  bool completed = false;
  for (uint32_t spins = 0;; ++spins) {
    if (msg->done.load(std::memory_order_acquire)) {
      completed = true;
      break;
    }
    if ((spins & 0x3ff) == 0x3ff && deadline.Expired()) break;
    CpuRelax();
  }
  if (!completed) {
    // Abandon the in-flight call: the server still holds its reference and
    // settles the memory whenever (if ever) it completes the request.
    msg->Unref();
    *inout_msg = nullptr;
    return Status::Timeout("rpc completion deadline expired");
  }

  // The completion (response packet) itself can be lost: the server
  // applied the operation but the client cannot know — classic at-least-
  // once ambiguity, surfaced as kTimeout.
  if (fi != nullptr && fi->ShouldFire(sim::fault_sites::kRpcDropResponse)) {
    msg->Unref();
    *inout_msg = nullptr;
    return Status::Timeout("rpc response lost");
  }

  wire->server_extra_ns = msg->server_extra_ns;

  // Response leg, sized by the reply payload; also a NIC message.
  const uint64_t resp_leg = model_.RpcNs(msg->response.size()) / 2;
  queue_->rate_limiter()->Acquire();
  sim::Pace(resp_leg);
  wire->network_ns += resp_leg;
  if (fi != nullptr && fi->ShouldFire(sim::fault_sites::kRpcDupCompletion)) {
    // Duplicated completion: the NIC delivers the response twice; the
    // second copy costs another message slot and leg of network time.
    wire->dup_completion = true;
    queue_->rate_limiter()->Acquire();
    sim::Pace(resp_leg);
    wire->network_ns += resp_leg;
  }
  // The caller still owns its reference: decode msg->response in place,
  // then Unref.
  return msg->status;
}

RpcCallResult RpcClient::Call(Buffer request, int ring_hint) {
  RpcMessage* msg = RpcMessagePool::Acquire();
  msg->request = std::move(request);
  RpcWireStats wire;
  RpcCallResult out;
  out.status = CallPooled(&msg, ring_hint, &wire);
  out.network_ns = wire.network_ns;
  out.server_extra_ns = wire.server_extra_ns;
  out.dup_completion = wire.dup_completion;
  if (msg != nullptr) {
    out.response = std::move(msg->response);
    msg->Unref();
  }
  return out;
}

}  // namespace corm::rdma
