#include "rdma/rpc_transport.h"

#include <algorithm>
#include <chrono>

#include "common/cpu_relax.h"

namespace corm::rdma {

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

void NicMessageRateLimiter::Acquire() {
  const uint64_t interval = interval_ns_.load(std::memory_order_relaxed);
  if (interval == 0) return;
  const double scale = sim::SimTimeScale().load(std::memory_order_relaxed);
  if (scale <= 0.0) return;
  const auto real_interval = static_cast<uint64_t>(interval * scale);
  // Claim the next message slot; slots never accumulate burst credit
  // (an idle NIC does not store capacity).
  uint64_t slot;
  uint64_t expected = next_slot_ns_.load(std::memory_order_relaxed);
  for (;;) {
    slot = std::max(expected, NowNs());
    if (next_slot_ns_.compare_exchange_weak(expected, slot + real_interval,
                                            std::memory_order_relaxed)) {
      break;
    }
  }
  while (NowNs() < slot) {
    CpuRelax();  // wait until the NIC would have drained earlier messages
  }
}

uint64_t RpcClient::Call(RpcMessage* msg) {
  msg->done.store(false, std::memory_order_relaxed);
  msg->response.clear();

  const uint64_t req_leg = model_.RpcNs(msg->request.size()) / 2;

  // Request leg: RDMA-write of the request into the remote RPC queue; the
  // server NIC admits messages at its two-sided message rate.
  sim::Pace(req_leg);
  queue_->rate_limiter()->Acquire();
  while (!queue_->Push(msg)) {
    // Queue full: remote node saturated; clients retry, which throttles the
    // aggregate RPC throughput exactly as a bounded RPC ring does.
    sim::Pace(200);
  }

  // Spin for completion (client polls its completion queue). The yield in
  // CpuRelax keeps single-CPU hosts responsive.
  while (!msg->done.load(std::memory_order_acquire)) {
    CpuRelax();
  }

  // Response leg, sized by the reply payload; also a NIC message.
  const uint64_t resp_leg = model_.RpcNs(msg->response.size()) / 2;
  queue_->rate_limiter()->Acquire();
  sim::Pace(resp_leg);
  return req_leg + resp_leg;
}

}  // namespace corm::rdma
