#include "rdma/verbs.h"

#include <vector>

#include "common/cpu_relax.h"
#include "common/logging.h"

namespace corm::rdma {

void CompletionQueue::Push(WorkCompletion wc) {
  while (!queue_.TryPush(wc)) {
    CpuRelax();  // CQ sized by contract; back-pressure instead of overrun
  }
}

MessagePipe::MessagePipe(sim::LatencyModel model, size_t ring_pow2)
    : model_(model) {
  a_.pipe_ = this;
  b_.pipe_ = this;
  a_.peer_ = &b_;
  b_.peer_ = &a_;
  a_.ring_ = std::make_unique<MpmcQueue<Endpoint::PostedRecv>>(ring_pow2);
  b_.ring_ = std::make_unique<MpmcQueue<Endpoint::PostedRecv>>(ring_pow2);
}

Status MessagePipe::Endpoint::PostRecv(uint64_t wr_id, size_t capacity) {
  if (broken_.load(std::memory_order_acquire)) {
    return Status::QpBroken("endpoint in error state");
  }
  if (!ring_->TryPush(PostedRecv{wr_id, capacity})) {
    return Status::InvalidArgument("receive ring full");
  }
  return Status::OK();
}

Status MessagePipe::Endpoint::PostSend(uint64_t wr_id, Slice payload) {
  if (broken_.load(std::memory_order_acquire) ||
      peer_->broken_.load(std::memory_order_acquire)) {
    return Status::QpBroken("endpoint in error state");
  }
  // Consume the peer's next posted receive (FIFO, like an RQ).
  auto posted = peer_->ring_->TryPop();
  if (!posted) {
    // RNR: receiver not ready. Retriable (generous rnr_retry).
    return Status::NetworkError("receiver not ready (no posted receive)");
  }
  if (payload.size() > posted->capacity) {
    // IBV_WC_LOC_LEN_ERR: fatal for the connection.
    broken_.store(true, std::memory_order_release);
    peer_->broken_.store(true, std::memory_order_release);
    WorkCompletion wc;
    wc.op = WorkCompletion::Op::kRecv;
    wc.wr_id = posted->wr_id;
    wc.status = Status::QpBroken("message exceeds posted receive buffer");
    peer_->cq_.Push(wc);
    return Status::QpBroken("message exceeds posted receive buffer");
  }

  // Deliver: one wire traversal of modeled time.
  sim::Pace(pipe_->model_.RpcNs(payload.size()) / 2);
  {
    LockGuard<Mutex> lock(peer_->delivered_mu_);
    peer_->delivered_.push_back(
        Delivered{posted->wr_id, MakeBuffer(payload)});
  }
  WorkCompletion recv_wc;
  recv_wc.op = WorkCompletion::Op::kRecv;
  recv_wc.wr_id = posted->wr_id;
  recv_wc.byte_len = static_cast<uint32_t>(payload.size());
  peer_->cq_.Push(recv_wc);

  WorkCompletion send_wc;
  send_wc.op = WorkCompletion::Op::kSend;
  send_wc.wr_id = wr_id;
  send_wc.byte_len = static_cast<uint32_t>(payload.size());
  cq_.Push(send_wc);
  return Status::OK();
}

Result<Buffer> MessagePipe::Endpoint::TakeReceived(uint64_t wr_id) {
  LockGuard<Mutex> lock(delivered_mu_);
  for (size_t i = 0; i < delivered_.size(); ++i) {
    if (delivered_[i].wr_id == wr_id) {
      Buffer out = std::move(delivered_[i].data);
      delivered_[i] = std::move(delivered_.back());
      delivered_.pop_back();
      return out;
    }
  }
  return Status::NotFound("no delivered payload for wr_id");
}

}  // namespace corm::rdma
