// Multi-ring replicated-log shipper (DESIGN.md §11).
//
// One ReplicaLogShipper lives inside each ReplicatedContext and owns one
// *session* per backup replica node: a QueuePair to that node's RNIC, the
// remote coordinates of its ReplLogRing, and a local staging image of every
// in-flight record. Shipping is purely one-sided: Ship() stages the wire
// image and RDMA-WRITEs it into the next ring slot; the ack is the backup's
// applied_seq control word, which ReadApplied() fetches with a one-sided
// READ. Because the staging image survives until the ack covers it,
// Retransmit() can re-write any window of records verbatim — the recovery
// path for dropped ship writes (fault site repl.ship_drop) and for rings
// whose memory survived a crash/restart.
//
// Thread ownership: a shipper belongs to the single thread driving its
// ReplicatedContext (same discipline as WriteRingProducer); nothing here is
// locked.

#ifndef CORM_RDMA_LOG_SHIPPER_H_
#define CORM_RDMA_LOG_SHIPPER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/slice.h"
#include "rdma/queue_pair.h"
#include "rdma/repl_record.h"
#include "rdma/rnic.h"

namespace corm::rdma {

class ReplicaLogShipper {
 public:
  ReplicaLogShipper() = default;
  ReplicaLogShipper(const ReplicaLogShipper&) = delete;
  ReplicaLogShipper& operator=(const ReplicaLogShipper&) = delete;

  // Opens a session to a remote ReplLogRing (cold path, run once per
  // replica node). Returns the session index used by every other call.
  int AddSession(Rnic* remote_rnic, sim::VAddr ring_base, RKey r_key,
                 uint32_t slots, uint32_t slot_bytes);

  size_t num_sessions() const { return sessions_.size(); }
  // Usable record-payload bytes per slot for `session`.
  uint32_t capacity(int session) const;
  // Last remotely-applied sequence this shipper has observed.
  uint64_t acked(int session) const;
  // Next sequence Ship() will assign.
  uint64_t next_seq(int session) const;

  // Ships one record: assigns the session's next sequence, stages the wire
  // image, and RDMA-writes it into the ring slot. Returns the assigned
  // sequence. kNetworkError when the sequence window is full even after
  // refreshing the ack (replica not draining). Fault site repl.ship_drop
  // swallows the wire write (the record stays staged; Retransmit recovers).
  Result<uint64_t> Ship(int session, uint8_t kind, uint32_t epoch,
                        uint64_t version, const uint8_t addr[16],
                        Slice payload);

  // One-sided read of the replica's applied_seq control word; also advances
  // the session's local ack cursor. Fault site repl.ack_delay paces extra
  // modeled time before the read completes.
  Result<uint64_t> ReadApplied(int session);

  // Coalesced ack poll: reads the applied_seq word of every listed session
  // in chained posts over the sessions' shared completion queue, paying one
  // doorbell + one completion per chain instead of a full round trip per
  // replica (DESIGN.md §12). Each session's ack cursor advances exactly as
  // ReadApplied would. A QP found broken is reconnected before the chain;
  // one broken *mid-chain* simply misses this round and is retried by the
  // caller's next poll. Returns the modeled ns charged for the whole call.
  Result<uint64_t> ReadAppliedBatch(const int* sessions, size_t n);

  // Re-writes every staged record in (acked, next) verbatim.
  Status Retransmit(int session);

  // Polls ReadApplied (retransmitting periodically) until the replica has
  // applied `seq` or the deadline expires. Single-session helper for tests
  // and the seal path; Write()'s quorum loop in dsm/replication.cc polls
  // sessions round-robin itself.
  Status AwaitApplied(int session, uint64_t seq, const Deadline& deadline);

  // Modeled fabric nanoseconds consumed by this shipper so far (ship +
  // ack reads + retransmits). The replication bench diffs this across an
  // op to attribute replication cost.
  uint64_t modeled_ns() const { return modeled_ns_; }

 private:
  struct Session {
    QueuePair qp;
    sim::VAddr base = 0;
    RKey r_key = 0;
    uint32_t slots = 0;
    uint32_t slot_bytes = 0;
    uint64_t next = 1;   // next sequence to assign
    uint64_t acked = 0;  // last applied sequence observed remotely
    Buffer staging;      // slots * slot_bytes local image of in-flight slots
    std::vector<uint32_t> staged_len;  // wire bytes per slot

    explicit Session(Rnic* remote) : qp(remote) {}
  };

  sim::VAddr SlotAddr(const Session& s, uint64_t seq) const {
    return s.base + sim::kVPageSize +
           ((seq - 1) % s.slots) * static_cast<uint64_t>(s.slot_bytes);
  }
  uint8_t* StagedSlot(Session& s, uint64_t seq) const {
    return s.staging.data() +
           ((seq - 1) % s.slots) * static_cast<size_t>(s.slot_bytes);
  }
  Status WriteSlot(Session& s, uint64_t seq);

  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t modeled_ns_ = 0;
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_LOG_SHIPPER_H_
