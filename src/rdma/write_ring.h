// One-sided-write RPC ingress (paper §2.2.2: "The handling of RPC requests
// can be accelerated with RDMA by letting remote peers push the RPC
// requests directly to the RPC queue [21]" — the FaSST/HERD-style design).
//
// A WriteRing is a ring of fixed-size message slots living in *registered
// server memory*: the client claims its next slot locally (it is the only
// writer of its ring) and RDMA-writes the message there; the server thread
// polls slot headers — no NIC receive processing, no posted buffers.
//
// Slot wire format (within a slot of `slot_bytes`):
//   u32 len  | u8 valid | payload[len]
// The writer writes payload first and flips `valid` last (a real
// implementation orders this with the RDMA write's last-byte guarantee);
// the poller clears `valid` after consuming.

#ifndef CORM_RDMA_WRITE_RING_H_
#define CORM_RDMA_WRITE_RING_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "common/slice.h"
#include "rdma/queue_pair.h"
#include "rdma/repl_record.h"
#include "rdma/rnic.h"
#include "sim/address_space.h"

namespace corm::rdma {

// Server-side ring: owns registered memory that remote peers write into.
class WriteRing {
 public:
  // Allocates and registers `slots` slots of `slot_bytes` each (rounded up
  // to whole pages) in `space`, on `rnic`.
  static Result<WriteRing> Create(sim::AddressSpace* space, Rnic* rnic,
                                  uint32_t slots, uint32_t slot_bytes);

  // Move-only; the moved-from ring releases ownership of the registered
  // memory (space_ == nullptr marks the hollow state).
  WriteRing(WriteRing&& other) noexcept { *this = std::move(other); }
  WriteRing& operator=(WriteRing&& other) noexcept {
    if (this != &other) {
      this->~WriteRing();
      space_ = other.space_;
      rnic_ = other.rnic_;
      base_ = other.base_;
      npages_ = other.npages_;
      keys_ = other.keys_;
      slots_ = other.slots_;
      slot_bytes_ = other.slot_bytes_;
      head_ = other.head_;
      other.space_ = nullptr;
    }
    return *this;
  }
  ~WriteRing();

  // Remote-access coordinates handed to the producer at connect time.
  sim::VAddr base() const { return base_; }
  RKey r_key() const { return keys_.r_key; }
  uint32_t slots() const { return slots_; }
  uint32_t slot_bytes() const { return slot_bytes_; }
  // Usable payload bytes per message.
  uint32_t capacity() const { return slot_bytes_ - kSlotHeader; }

  // Consumer side (server thread): returns the next valid message, or
  // false. The slot is released (valid flag cleared) before returning.
  bool Poll(Buffer* out);

 private:
  static constexpr uint32_t kSlotHeader = 5;  // u32 len + u8 valid

  WriteRing(sim::AddressSpace* space, Rnic* rnic, sim::VAddr base,
            size_t npages, MrKeys keys, uint32_t slots, uint32_t slot_bytes)
      : space_(space),
        rnic_(rnic),
        base_(base),
        npages_(npages),
        keys_(keys),
        slots_(slots),
        slot_bytes_(slot_bytes) {}

  sim::AddressSpace* space_ = nullptr;
  Rnic* rnic_ = nullptr;
  sim::VAddr base_ = 0;
  size_t npages_ = 0;
  MrKeys keys_;
  uint32_t slots_ = 0;
  uint32_t slot_bytes_ = 0;
  // Deliberately unguarded: head_ belongs to the single consumer thread
  // (the server poller) — a per-thread ownership discipline, not a lock,
  // so there is no capability for GUARDED_BY to name. The slot `valid`
  // flags, not head_, carry the cross-thread synchronization.
  uint32_t head_ = 0;  // next slot the consumer expects
};

// Client-side producer: RDMA-writes messages into a remote WriteRing.
class WriteRingProducer {
 public:
  // `qp` must be connected to the ring's RNIC.
  WriteRingProducer(QueuePair* qp, sim::VAddr ring_base, RKey r_key,
                    uint32_t slots, uint32_t slot_bytes)
      : qp_(qp),
        base_(ring_base),
        r_key_(r_key),
        slots_(slots),
        slot_bytes_(slot_bytes) {}

  uint32_t capacity() const { return slot_bytes_ - 5; }

  // Pushes one message. Returns kInvalidArgument when the payload exceeds
  // the slot capacity. If the ring is full (consumer lagging by a whole
  // ring), the oldest unconsumed slot would be overwritten — like real
  // HERD rings, the producer must bound its outstanding messages; this
  // implementation tracks credits and returns kNetworkError instead.
  Status Push(Slice payload);

  // The consumer grants credits out of band (here: the caller confirms
  // consumption, e.g. on receiving the RPC response).
  void GrantCredit() {
    if (in_flight_ > 0) --in_flight_;
  }

 private:
  QueuePair* const qp_;
  const sim::VAddr base_;
  const RKey r_key_;
  const uint32_t slots_;
  const uint32_t slot_bytes_;
  // Deliberately unguarded: a producer is owned by one client thread (it is
  // "the only writer of its ring"), so tail_/in_flight_ never race — again
  // a thread-ownership discipline with no lock to annotate.
  uint32_t tail_ = 0;       // next slot this producer writes
  uint32_t in_flight_ = 0;  // unconfirmed messages
};

// Server-side sequenced ingress ring for the replicated log (DESIGN.md
// §11). Layout in registered memory:
//
//   page 0:        u64 applied_seq   (release-stored by the local applier,
//                                     read one-sidedly by the remote primary
//                                     as the durability high-water mark)
//   page 1..N:     `slots` record slots of `slot_bytes` each; the slot for
//                  sequence s is (s-1) % slots
//
// Unlike WriteRing there is no valid byte: a slot is valid *structurally*
// when its ReplRecordHeader carries the magic, the exact next expected
// sequence (applied+1), and a checksum that covers header + payload. A torn
// one-sided write fails the crc, a re-shipped duplicate of an applied
// record fails the seq check — both look like "not arrived yet", which is
// precisely the contract the shipper's retransmit path needs.
class ReplLogRing {
 public:
  static Result<ReplLogRing> Create(sim::AddressSpace* space, Rnic* rnic,
                                    uint32_t slots, uint32_t slot_bytes);

  ReplLogRing(ReplLogRing&& other) noexcept { *this = std::move(other); }
  ReplLogRing& operator=(ReplLogRing&& other) noexcept {
    if (this != &other) {
      this->~ReplLogRing();
      space_ = other.space_;
      rnic_ = other.rnic_;
      base_ = other.base_;
      npages_ = other.npages_;
      keys_ = other.keys_;
      slots_ = other.slots_;
      slot_bytes_ = other.slot_bytes_;
      other.space_ = nullptr;
    }
    return *this;
  }
  ~ReplLogRing();

  // Remote-access coordinates handed to the shipper at session setup.
  sim::VAddr base() const { return base_; }
  RKey r_key() const { return keys_.r_key; }
  uint32_t slots() const { return slots_; }
  uint32_t slot_bytes() const { return slot_bytes_; }
  // Usable record-payload bytes per slot.
  uint32_t capacity() const {
    return slot_bytes_ - static_cast<uint32_t>(sizeof(ReplRecordHeader));
  }

  // Local read of the durability high-water mark (the applier's own view;
  // the primary reads the same word one-sidedly through its QP).
  uint64_t applied() const;

  // Consumer side (applier worker): if record applied+1 has fully arrived,
  // copies its header and payload out and returns true. Does NOT advance —
  // the applier calls Advance() only after durably applying the record, so
  // a crashed-and-restarted node re-applies instead of losing it.
  bool NextRecord(ReplRecordHeader* hdr, Buffer* payload);

  // Publishes record applied+1 as durably applied: clears the slot magic
  // and release-stores the new high-water mark into the control word.
  void Advance();

 private:
  ReplLogRing(sim::AddressSpace* space, Rnic* rnic, sim::VAddr base,
              size_t npages, MrKeys keys, uint32_t slots, uint32_t slot_bytes)
      : space_(space),
        rnic_(rnic),
        base_(base),
        npages_(npages),
        keys_(keys),
        slots_(slots),
        slot_bytes_(slot_bytes) {}

  sim::VAddr SlotAddr(uint64_t seq) const {
    return base_ + sim::kVPageSize +
           ((seq - 1) % slots_) * static_cast<uint64_t>(slot_bytes_);
  }
  std::atomic<uint64_t>* AppliedWord() const;

  sim::AddressSpace* space_ = nullptr;
  Rnic* rnic_ = nullptr;
  sim::VAddr base_ = 0;
  size_t npages_ = 0;
  MrKeys keys_;
  uint32_t slots_ = 0;
  uint32_t slot_bytes_ = 0;
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_WRITE_RING_H_
