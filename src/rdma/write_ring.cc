#include "rdma/write_ring.h"

#include <cstring>

#include "common/byte_units.h"
#include "common/logging.h"

namespace corm::rdma {

Result<WriteRing> WriteRing::Create(sim::AddressSpace* space, Rnic* rnic,
                                    uint32_t slots, uint32_t slot_bytes) {
  if (slots == 0 || slot_bytes <= kSlotHeader) {
    return Status::InvalidArgument("bad ring geometry");
  }
  const size_t bytes = static_cast<size_t>(slots) * slot_bytes;
  const size_t npages = (bytes + sim::kVPageSize - 1) / sim::kVPageSize;
  sim::VAddr base = space->ReserveRange(npages);
  Status st = space->MapFresh(base, npages);
  if (!st.ok()) {
    space->ReleaseRange(base, npages);
    return st;
  }
  auto keys = rnic->RegisterMemory(base, npages, /*odp=*/true);
  if (!keys.ok()) {
    CORM_CHECK(space->Unmap(base, npages).ok());
    space->ReleaseRange(base, npages);
    return keys.status();
  }
  return WriteRing(space, rnic, base, npages, *keys, slots, slot_bytes);
}

WriteRing::~WriteRing() {
  if (space_ == nullptr) return;  // moved-from
  rnic_->DeregisterMemory(keys_.r_key).ok();
  space_->Unmap(base_, npages_).ok();
  space_->ReleaseRange(base_, npages_);
  space_ = nullptr;
}

bool WriteRing::Poll(Buffer* out) {
  const sim::VAddr slot_addr =
      base_ + static_cast<uint64_t>(head_) * slot_bytes_;
  uint8_t* slot = space_->TranslatePtr(slot_addr);
  CORM_CHECK(slot != nullptr);
  // The valid byte is flipped last by the producer (atomic byte).
  auto& valid = *reinterpret_cast<std::atomic<uint8_t>*>(slot + 4);
  if (valid.load(std::memory_order_acquire) == 0) return false;
  uint32_t len;
  std::memcpy(&len, slot, 4);
  CORM_CHECK_LE(len, capacity());
  out->assign(slot + kSlotHeader, slot + kSlotHeader + len);
  valid.store(0, std::memory_order_release);
  head_ = (head_ + 1) % slots_;
  return true;
}

Status WriteRingProducer::Push(Slice payload) {
  if (payload.size() > capacity()) {
    return Status::InvalidArgument("message exceeds ring slot");
  }
  if (in_flight_ >= slots_) {
    return Status::NetworkError("ring credits exhausted");
  }
  // Serialize: len | valid=1 | payload. One RDMA write covers the slot
  // prefix; the valid byte ordering is preserved because the consumer only
  // trusts the slot after seeing valid != 0 and the write is delivered
  // atomically by the simulated fabric (as HERD relies on the NIC's
  // left-to-right delivery of the last cacheline).
  Buffer wire(5 + payload.size());
  const auto len = static_cast<uint32_t>(payload.size());
  std::memcpy(wire.data(), &len, 4);
  wire[4] = 1;
  std::memcpy(wire.data() + 5, payload.data(), payload.size());

  const sim::VAddr slot_addr =
      base_ + static_cast<uint64_t>(tail_) * slot_bytes_;
  auto ns = qp_->Write(r_key_, slot_addr, wire.data(), wire.size());
  CORM_RETURN_NOT_OK(ns.status());
  tail_ = (tail_ + 1) % slots_;
  ++in_flight_;
  return Status::OK();
}

}  // namespace corm::rdma
