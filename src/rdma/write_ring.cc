#include "rdma/write_ring.h"

#include <cstring>

#include "common/byte_units.h"
#include "common/logging.h"
#include "common/sanitizer.h"

namespace corm::rdma {

Result<WriteRing> WriteRing::Create(sim::AddressSpace* space, Rnic* rnic,
                                    uint32_t slots, uint32_t slot_bytes) {
  if (slots == 0 || slot_bytes <= kSlotHeader) {
    return Status::InvalidArgument("bad ring geometry");
  }
  const size_t bytes = static_cast<size_t>(slots) * slot_bytes;
  const size_t npages = (bytes + sim::kVPageSize - 1) / sim::kVPageSize;
  sim::VAddr base = space->ReserveRange(npages);
  Status st = space->MapFresh(base, npages);
  if (!st.ok()) {
    space->ReleaseRange(base, npages);
    return st;
  }
  auto keys = rnic->RegisterMemory(base, npages, /*odp=*/true);
  if (!keys.ok()) {
    CORM_CHECK(space->Unmap(base, npages).ok());
    space->ReleaseRange(base, npages);
    return keys.status();
  }
  return WriteRing(space, rnic, base, npages, *keys, slots, slot_bytes);
}

WriteRing::~WriteRing() {
  if (space_ == nullptr) return;  // moved-from
  rnic_->DeregisterMemory(keys_.r_key).ok();
  space_->Unmap(base_, npages_).ok();
  space_->ReleaseRange(base_, npages_);
  space_ = nullptr;
}

bool WriteRing::Poll(Buffer* out) {
  const sim::VAddr slot_addr =
      base_ + static_cast<uint64_t>(head_) * slot_bytes_;
  uint8_t* slot = space_->TranslatePtr(slot_addr);
  CORM_CHECK(slot != nullptr);
  // The valid byte is flipped last by the producer (atomic byte).
  auto& valid = *reinterpret_cast<std::atomic<uint8_t>*>(slot + 4);
  if (valid.load(std::memory_order_acquire) == 0) return false;
  uint32_t len;
  std::memcpy(&len, slot, 4);
  CORM_CHECK_LE(len, capacity());
  out->assign(slot + kSlotHeader, slot + kSlotHeader + len);
  valid.store(0, std::memory_order_release);
  head_ = (head_ + 1) % slots_;
  return true;
}

Status WriteRingProducer::Push(Slice payload) {
  if (payload.size() > capacity()) {
    return Status::InvalidArgument("message exceeds ring slot");
  }
  if (in_flight_ >= slots_) {
    return Status::NetworkError("ring credits exhausted");
  }
  // Serialize: len | valid=1 | payload. One RDMA write covers the slot
  // prefix; the valid byte ordering is preserved because the consumer only
  // trusts the slot after seeing valid != 0 and the write is delivered
  // atomically by the simulated fabric (as HERD relies on the NIC's
  // left-to-right delivery of the last cacheline).
  Buffer wire(5 + payload.size());
  const auto len = static_cast<uint32_t>(payload.size());
  std::memcpy(wire.data(), &len, 4);
  wire[4] = 1;
  std::memcpy(wire.data() + 5, payload.data(), payload.size());

  const sim::VAddr slot_addr =
      base_ + static_cast<uint64_t>(tail_) * slot_bytes_;
  auto ns = qp_->Write(r_key_, slot_addr, wire.data(), wire.size());
  CORM_RETURN_NOT_OK(ns.status());
  tail_ = (tail_ + 1) % slots_;
  ++in_flight_;
  return Status::OK();
}

Result<ReplLogRing> ReplLogRing::Create(sim::AddressSpace* space, Rnic* rnic,
                                        uint32_t slots, uint32_t slot_bytes) {
  if (slots == 0 || slot_bytes <= sizeof(ReplRecordHeader)) {
    return Status::InvalidArgument("bad repl ring geometry");
  }
  // One control page for the applied_seq word, then the slot array.
  const size_t slot_bytes_total = static_cast<size_t>(slots) * slot_bytes;
  const size_t npages =
      1 + (slot_bytes_total + sim::kVPageSize - 1) / sim::kVPageSize;
  sim::VAddr base = space->ReserveRange(npages);
  Status st = space->MapFresh(base, npages);
  if (!st.ok()) {
    space->ReleaseRange(base, npages);
    return st;
  }
  auto keys = rnic->RegisterMemory(base, npages, /*odp=*/true);
  if (!keys.ok()) {
    CORM_CHECK(space->Unmap(base, npages).ok());
    space->ReleaseRange(base, npages);
    return keys.status();
  }
  return ReplLogRing(space, rnic, base, npages, *keys, slots, slot_bytes);
}

ReplLogRing::~ReplLogRing() {
  if (space_ == nullptr) return;  // moved-from
  rnic_->DeregisterMemory(keys_.r_key).ok();
  space_->Unmap(base_, npages_).ok();
  space_->ReleaseRange(base_, npages_);
  space_ = nullptr;
}

std::atomic<uint64_t>* ReplLogRing::AppliedWord() const {
  uint8_t* p = space_->TranslatePtr(base_);
  CORM_CHECK(p != nullptr);
  return reinterpret_cast<std::atomic<uint64_t>*>(p);
}

uint64_t ReplLogRing::applied() const {
  return AppliedWord()->load(std::memory_order_acquire);
}

bool ReplLogRing::NextRecord(ReplRecordHeader* hdr, Buffer* payload) {
  const uint64_t next = applied() + 1;
  uint8_t* slot = space_->TranslatePtr(SlotAddr(next));
  CORM_CHECK(slot != nullptr);
  // Snapshot under RacyCopy: the remote shipper may be RDMA-writing this
  // slot concurrently (first delivery, or a retransmit of identical bytes).
  // A torn snapshot fails the crc below and reads as "not arrived".
  ReplRecordHeader h;
  RacyCopy(&h, slot, sizeof(h));
  if (h.magic != kReplRecordMagic || h.seq != next) return false;
  if (h.payload_len > capacity()) return false;
  payload->resize(h.payload_len);
  if (h.payload_len != 0) {
    RacyCopy(payload->data(), slot + sizeof(ReplRecordHeader), h.payload_len);
  }
  if (h.crc != ReplRecordCrc(h, payload->data(), h.payload_len)) return false;
  *hdr = h;
  return true;
}

void ReplLogRing::Advance() {
  const uint64_t next = applied() + 1;
  uint8_t* slot = space_->TranslatePtr(SlotAddr(next));
  CORM_CHECK(slot != nullptr);
  // Clear the magic so a stale image can never be mistaken for a fresh
  // record after the sequence space wraps this slot. RacyCopy because the
  // shipper may still be retransmitting the (now applied) record.
  const uint32_t zero = 0;
  RacyCopy(slot, &zero, sizeof(zero));
  AppliedWord()->store(next, std::memory_order_release);
}

}  // namespace corm::rdma
