// Two-sided verbs: SEND/RECV work queues with completion queues, the
// messaging primitive the paper's RPCs are built from (§4.1: "RPC
// operations are implemented using raw Send/Recv RDMA operations").
//
// Semantics follow ibverbs' reliable-connected QPs:
//  * the receiver must pre-post receive buffers (PostRecv); an arriving
//    SEND consumes one in FIFO order;
//  * a SEND arriving when no receive is posted is an RNR
//    (receiver-not-ready) condition — modeled as a retriable failure, as
//    with a generous rnr_retry setting;
//  * completions are reported through CompletionQueues: the sender's CQ
//    signals when the message was delivered, the receiver's CQ signals
//    data arrival with the consumed buffer's id;
//  * a SEND larger than the posted receive buffer is a fatal QP error
//    (IBV_WC_LOC_LEN_ERR breaks the connection).

#ifndef CORM_RDMA_VERBS_H_
#define CORM_RDMA_VERBS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/mpmc_queue.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/thread_annotations.h"
#include "sim/latency_model.h"

namespace corm::rdma {

// One completion entry (ibv_wc).
struct WorkCompletion {
  enum class Op : uint8_t { kSend, kRecv };
  Op op = Op::kSend;
  uint64_t wr_id = 0;      // caller-chosen id of the completed work request
  uint32_t byte_len = 0;   // kRecv: bytes received
  Status status;           // non-OK on QP errors
};

// Completion queue (ibv_cq): consumers poll it.
class CompletionQueue {
 public:
  explicit CompletionQueue(size_t capacity_pow2 = 1024)
      : queue_(capacity_pow2) {}

  // Returns the next completion, or nullopt when empty.
  std::optional<WorkCompletion> Poll() { return queue_.TryPop(); }

  // Internal (the fabric pushes completions). Spins if full — a real CQ
  // overrun is a fatal error; sizing is the application's contract.
  void Push(WorkCompletion wc);

 private:
  MpmcQueue<WorkCompletion> queue_;
};

// A connected pair of two-sided endpoints. Create one per client-server
// link; both ends share it (the "wire").
class MessagePipe {
 public:
  // `model` provides the modeled send latency; receive rings hold
  // `ring_pow2` posted buffers.
  MessagePipe(sim::LatencyModel model, size_t ring_pow2 = 256);

  // An endpoint of the pipe (the QP's two-sided half + its CQs).
  class Endpoint {
   public:
    // Posts a receive buffer of `capacity` bytes identified by `wr_id`.
    // Fails when the ring is full.
    Status PostRecv(uint64_t wr_id, size_t capacity);

    // Sends `payload` to the peer. Blocks (paced) for the modeled wire
    // time; the peer's CQ gets a kRecv completion carrying the data into
    // its posted buffer, this endpoint's CQ gets a kSend completion.
    // Returns kNetworkError on RNR (peer has no posted receive) — the
    // caller retries; returns kQpBroken when the message exceeds the
    // posted buffer (fatal, per ibverbs).
    Status PostSend(uint64_t wr_id, Slice payload);

    // This endpoint's completion queue.
    CompletionQueue* cq() { return &cq_; }

    // Retrieves the payload delivered into the receive with `wr_id`
    // (after its kRecv completion was polled).
    Result<Buffer> TakeReceived(uint64_t wr_id);

   private:
    friend class MessagePipe;
    struct PostedRecv {
      uint64_t wr_id;
      size_t capacity;
    };
    struct Delivered {
      uint64_t wr_id;
      Buffer data;
    };

    MessagePipe* pipe_ = nullptr;
    Endpoint* peer_ = nullptr;
    CompletionQueue cq_;
    std::unique_ptr<MpmcQueue<PostedRecv>> ring_;
    Mutex delivered_mu_;
    std::vector<Delivered> delivered_ GUARDED_BY(delivered_mu_);
    std::atomic<bool> broken_{false};
  };

  Endpoint* a() { return &a_; }
  Endpoint* b() { return &b_; }

 private:
  const sim::LatencyModel model_;
  Endpoint a_, b_;
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_VERBS_H_
