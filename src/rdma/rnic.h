// Simulated RDMA NIC (RNIC).
//
// The RNIC keeps its own Memory Translation Table (MTT): a *snapshot* of the
// OS page-table entries taken when a memory region is registered
// (paper §2.2.1, Fig. 2). Because it is a snapshot, remapping a page in the
// AddressSpace does NOT update the RNIC unless one of the paper's three
// repair strategies runs (§3.5):
//
//   1. ibv_rereg_mr  -> Rnic::ReregMr (keys preserved; QPs touching the
//      region while re-registration is in flight break, per the IB spec);
//   2. ODP           -> regions registered with odp=true subscribe to the
//      AddressSpace MmuNotifier; a remap invalidates the affected MTT
//      entries and the next RDMA access pays a ~63 us fault to re-resolve;
//   3. ODP+prefetch  -> Rnic::AdviseMr eagerly re-resolves invalid entries.
//
// MTT entries hold references on their physical frames, modeling the page
// pinning performed by real RDMA registration: a stale entry reads stale
// (but live) data, never freed memory.

#ifndef CORM_RDMA_RNIC_H_
#define CORM_RDMA_RNIC_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sim/address_space.h"
#include "sim/latency_model.h"
#include "sim/physical_memory.h"

namespace corm::rdma {

using RKey = uint32_t;
using LKey = uint32_t;

// Keys returned by memory registration.
struct MrKeys {
  LKey l_key = 0;
  RKey r_key = 0;
};

// One registered memory region and its MTT entries.
class MemoryRegion {
 public:
  MemoryRegion(sim::VAddr base, size_t npages, bool odp, MrKeys keys)
      : base_(base), npages_(npages), odp_(odp), keys_(keys) {
    entries_.resize(npages);
  }

  sim::VAddr base() const { return base_; }
  size_t npages() const { return npages_; }
  size_t length() const { return npages_ * sim::kVPageSize; }
  bool odp() const { return odp_; }
  const MrKeys& keys() const { return keys_; }

  bool Covers(sim::VAddr addr, size_t len) const {
    return addr >= base_ && addr + len <= base_ + length();
  }

 private:
  friend class Rnic;

  struct MttEntry {
    sim::FrameId frame = sim::kInvalidFrame;
    bool valid = false;  // false => ODP fault required (or never resolved)
  };

  const sim::VAddr base_;
  const size_t npages_;
  const bool odp_;
  const MrKeys keys_;

  mutable Mutex entries_mu_;
  std::vector<MttEntry> entries_ GUARDED_BY(entries_mu_);
  // Set while ibv_rereg_mr is in flight; accesses then break the QP.
  std::atomic<bool> reregistering_{false};
};

// Counters for observing RNIC behaviour in tests and benches.
struct RnicStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> odp_faults{0};
  std::atomic<uint64_t> prefetches{0};
  std::atomic<uint64_t> reregs{0};
  std::atomic<uint64_t> qp_breaks{0};
  std::atomic<uint64_t> mtt_cache_hits{0};
  std::atomic<uint64_t> mtt_cache_misses{0};
  std::atomic<uint64_t> repair_batches{0};  // batched MTT repair epochs
  std::atomic<uint64_t> atomics{0};         // masked-atomic verbs executed
};

// One registered range inside a batched repair call.
struct MrRange {
  RKey r_key = 0;
  sim::VAddr addr = 0;
  size_t len = 0;
};

class Rnic : public sim::MmuNotifier {
 public:
  // `model` selects the latency constants (ConnectX-3 vs -5).
  Rnic(sim::AddressSpace* address_space, sim::LatencyModel model);
  ~Rnic() override;

  Rnic(const Rnic&) = delete;
  Rnic& operator=(const Rnic&) = delete;

  // --- Registration (ibv_reg_mr). -------------------------------------
  // Registers [base, base + npages * page) and snapshots translations into
  // the MTT. With odp=true the entries start valid but become invalid on
  // remap (they re-resolve lazily); with odp=false they are immutable until
  // ReregMr.
  Result<MrKeys> RegisterMemory(sim::VAddr base, size_t npages, bool odp);

  // Deregisters and drops MTT frame references.
  Status DeregisterMemory(RKey r_key);

  // --- The three §3.5 repair strategies. --------------------------------
  // ibv_rereg_mr: refreshes all MTT entries from the page table, preserving
  // keys. Models the dangerous window: while in flight, RDMA access to the
  // region breaks the QP. Returns the modeled duration (ns).
  Result<uint64_t> ReregMr(RKey r_key);

  // ibv_advise_mr(PREFETCH): re-resolves invalid ODP entries in the given
  // range. Returns modeled ns.
  Result<uint64_t> AdviseMr(RKey r_key, sim::VAddr addr, size_t len);

  // --- Batched repair (one MTT repair epoch per compaction slice). ------
  // Repairs every listed region in one pass: one registration-table lock
  // acquisition resolves all keys up front, then the per-region repair runs
  // back-to-back. Semantically identical to calling ReregMr / AdviseMr per
  // entry (same per-range modeled cost, charged by the caller); batching
  // removes the per-call table walk so a block and its chained ghost
  // aliases repair as a single epoch. Counted in RnicStats::repair_batches.
  Status ReregMrBatch(const std::vector<RKey>& keys);
  Status AdviseMrBatch(const std::vector<MrRange>& ranges);

  // --- Data path used by QueuePair. -----------------------------------
  // Reads/writes `len` bytes at `addr` through the MTT. Returns modeled ns
  // spent in MTT faults (0 when all entries were valid). `broke_qp` is set
  // when the access hit a region under re-registration.
  Result<uint64_t> MttAccess(RKey r_key, sim::VAddr addr, void* buf,
                             size_t len, bool is_write, bool* broke_qp);

  // Masked-atomic verb on one naturally-aligned 8-byte word behind the MTT
  // (ibv_wr_atomic_cmp_swp / ibv_wr_atomic_fetch_add). `is_cas` selects
  // compare-and-swap (compare/operand) vs fetch-add (operand is the
  // addend); `*old_value` always receives the word's prior contents — the
  // IB atomic reply. The RMW executes as a CPU atomic on the resolved
  // frame, so RNIC atomics and local std::atomic_ref accesses to the same
  // word are globally coherent (IBV_ATOMIC_GLOB semantics). Returns modeled
  // fault ns like MttAccess; same QP-break contract.
  Result<uint64_t> MttAtomic(RKey r_key, sim::VAddr addr, bool is_cas,
                             uint64_t compare, uint64_t operand,
                             uint64_t* old_value, bool* broke_qp);

  // MmuNotifier: the OS remapped `page`; invalidate ODP entries.
  void OnMappingChange(sim::VAddr page) override;

  // Testing hooks: splits ReregMr into an explicit window so races can be
  // injected deterministically.
  Status BeginRereg(RKey r_key);
  Status EndRereg(RKey r_key);

  const sim::LatencyModel& model() const { return model_; }
  const RnicStats& stats() const { return stats_; }
  sim::AddressSpace* address_space() const { return space_; }

  // Looks up a region by r_key (testing / QP validation).
  MemoryRegion* FindRegion(RKey r_key);

  // Resets the MTT translation cache (benches isolate configurations).
  void ResetMttCache();

 private:
  // Resolves entry `page_idx` of `mr` from the OS page table, taking a
  // frame reference. Caller holds mr->entries_mu_.
  Status ResolveEntryLocked(MemoryRegion* mr, size_t page_idx)
      REQUIRES(mr->entries_mu_);

  // Returns the region owning r_key, or null.
  std::shared_ptr<MemoryRegion> Lookup(RKey r_key);

  // Batch building blocks: repair one already-resolved region.
  Result<uint64_t> AdviseRegion(MemoryRegion* mr, sim::VAddr addr, size_t len);
  Status ReregRegion(MemoryRegion* mr);
  // Resolves every key in one registration-table lock acquisition.
  Result<std::vector<std::shared_ptr<MemoryRegion>>> LookupBatch(
      const std::vector<RKey>& keys, const char* what);

  // Models the RNIC's bounded translation cache (§4.2.2): direct-mapped
  // over virtual pages. Returns the modeled miss penalty (0 on hit).
  uint64_t MttCacheAccess(sim::VAddr page);

  sim::AddressSpace* const space_;
  const sim::LatencyModel model_;

  // Registration-table lock (rank kSubstrate; never held across an
  // entries_mu_ acquisition of the *same* region in the data path).
  Mutex mu_;
  std::unordered_map<RKey, std::shared_ptr<MemoryRegion>> regions_
      GUARDED_BY(mu_);
  // Disjoint regions ordered by base vaddr: O(log n) page->region lookup
  // for MMU-notifier invalidations.
  std::map<sim::VAddr, std::shared_ptr<MemoryRegion>> by_base_ GUARDED_BY(mu_);
  uint32_t next_key_ GUARDED_BY(mu_) = 1;
  RnicStats stats_;
  // Direct-mapped translation cache: cached vpage per set (0 = empty).
  std::vector<std::atomic<uint64_t>> mtt_cache_;
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_RNIC_H_
