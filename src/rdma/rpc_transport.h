// RPC transport over the simulated RDMA fabric (paper §2.2.2, Fig. 3).
//
// Remote peers push RPC requests "directly into the RPC queue" (modeled by
// the lock-free MPMC queue); the DSM worker threads poll that queue, serve
// the request and reply. A client has at most one outstanding request and
// spins on the completion flag, like an RDMA client polling its CQ — but
// the spin is *bounded* by a RetryPolicy deadline: when the serving node
// dies mid-request the call returns kTimeout instead of hanging, and the
// abandoned message's lifetime is settled by its intrusive refcount (the
// server still holds a reference and releases it whenever it completes).

#ifndef CORM_RDMA_RPC_TRANSPORT_H_
#define CORM_RDMA_RPC_TRANSPORT_H_

#include <atomic>
#include <cstdint>

#include "common/mpmc_queue.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/slice.h"
#include "common/status.h"
#include "sim/latency_model.h"

namespace corm::rdma {

// One in-flight RPC. The server fills response/status and sets done last
// (release), which the spinning client observes (acquire).
//
// Lifetime: a message created with New() carries two references — the
// client's and the server's — because a timed-out client abandons the
// message while the server may still be about to complete it. Whoever
// drops the last reference frees it. Stack-allocated messages (tests,
// tools that complete synchronously) start at refcount 0, where Unref is
// a no-op and the owner's scope controls the lifetime as before.
struct RpcMessage {
  Buffer request;
  Buffer response;
  Status status;
  // Modeled server-side processing nanoseconds the handler charged (the
  // paper's "+0.5 us for Alloc/Free" style extras); lets clients account
  // full modeled operation latency without a wall clock.
  uint64_t server_extra_ns = 0;
  std::atomic<bool> done{false};

  // Heap factory for transport use: returns a message holding one client
  // and one server reference.
  static RpcMessage* New();
  // Drops one reference; frees the message when the last one goes.
  void Unref();

 private:
  std::atomic<int> refs_{0};  // 0 = stack-owned, Unref is a no-op
};

// Token-style rate limiter modeling the RNIC's two-sided message rate: the
// aggregate Send/Recv throughput of the server NIC is what caps RPC ops/s
// in the paper's Fig. 12 (~700 Kreq/s), independent of worker CPU. Uses the
// global SimTimeScale; disabled at scale 0 (unit tests).
class NicMessageRateLimiter {
 public:
  // rate 0 disables limiting.
  explicit NicMessageRateLimiter(uint64_t msgs_per_sec = 0) {
    SetRate(msgs_per_sec);
  }

  void SetRate(uint64_t msgs_per_sec) {
    interval_ns_.store(
        msgs_per_sec == 0 ? 0 : 1'000'000'000ULL / msgs_per_sec,
        std::memory_order_relaxed);
  }

  // Blocks (spins) until the caller's message slot is due.
  void Acquire();

 private:
  std::atomic<uint64_t> interval_ns_{0};
  std::atomic<uint64_t> next_slot_ns_{0};
};

// The shared inbound request queue on the server node.
class RpcQueue {
 public:
  explicit RpcQueue(size_t capacity_pow2 = 4096) : queue_(capacity_pow2) {}

  NicMessageRateLimiter* rate_limiter() { return &limiter_; }

  // Enqueues a request; false when the queue is full (client backs off).
  bool Push(RpcMessage* msg) { return queue_.TryPush(msg); }

  // Dequeues the next request, or nullptr when the queue is empty.
  RpcMessage* Poll() {
    auto msg = queue_.TryPop();
    return msg ? *msg : nullptr;
  }

  size_t ApproxDepth() const { return queue_.ApproxSize(); }

 private:
  MpmcQueue<RpcMessage*> queue_;
  NicMessageRateLimiter limiter_;
};

// Everything a completed (or failed) call reports back to the client.
struct RpcCallResult {
  // Server-set status; kTimeout when the transport gave up first (request
  // undeliverable, completion never observed, or response lost) — in that
  // case the server may or may not have applied the operation.
  Status status;
  Buffer response;
  uint64_t network_ns = 0;       // modeled network round-trip time
  uint64_t server_extra_ns = 0;  // modeled server compute the handler charged
  bool dup_completion = false;   // an injected duplicate completion arrived
};

// Client-side RPC endpoint: pushes requests into a remote RpcQueue and
// spins for the completion — bounded by `policy.deadline_ns` — pacing the
// modeled network time of both legs. Consults the global fault injector at
// the rpc.* sites.
class RpcClient {
 public:
  RpcClient(RpcQueue* queue, sim::LatencyModel model,
            RetryPolicy policy = RetryPolicy{})
      : queue_(queue), model_(model), policy_(policy) {}

  // Synchronous call; never blocks past the policy deadline.
  RpcCallResult Call(Buffer request);

  const sim::LatencyModel& model() const { return model_; }
  const RetryPolicy& retry_policy() const { return policy_; }

 private:
  RpcQueue* const queue_;
  const sim::LatencyModel model_;
  const RetryPolicy policy_;
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_RPC_TRANSPORT_H_
