// corm-hotpath
//
// RPC transport over the simulated RDMA fabric (paper §2.2.2, Fig. 3).
//
// Remote peers push RPC requests "directly into the RPC queue"; the DSM
// worker threads poll it, serve the request and reply. The queue is split
// into per-worker rings (one lock-free MPMC ring per worker) so that a
// worker drains its own ring with a batched pop — one head CAS per batch —
// and clients can target the ring of the worker that owns the addressed
// block (owner-affinity dispatch, cutting kForwardedRpc hops). A client has
// at most one outstanding request and spins on the completion flag, like an
// RDMA client polling its CQ — but the spin is *bounded* by a RetryPolicy
// deadline: when the serving node dies mid-request the call returns
// kTimeout instead of hanging, and the abandoned message's lifetime is
// settled by its intrusive refcount (the server still holds a reference and
// releases it whenever it completes).
//
// Messages come from a per-thread freelist (RpcMessagePool) so the
// steady-state data plane performs no heap allocation: the client that
// drops the last reference recycles the message into its own thread's
// freelist and the next call reuses it, request/response buffers keeping
// their capacity. See DESIGN.md §7 for the pooling lifetimes.

#ifndef CORM_RDMA_RPC_TRANSPORT_H_
#define CORM_RDMA_RPC_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/slice.h"
#include "common/status.h"
#include "sim/latency_model.h"

namespace corm::rdma {

// One in-flight RPC. The server fills response/status and sets done last
// (release), which the spinning client observes (acquire).
//
// Lifetime: a message created with New() carries two references — the
// client's and the server's — because a timed-out client abandons the
// message while the server may still be about to complete it. Whoever
// drops the last reference returns it to the pool (or frees it when
// pooling is off). Stack-allocated messages (tests, tools that complete
// synchronously) start at refcount 0, where Unref is a no-op and the
// owner's scope controls the lifetime as before.
struct RpcMessage {
  Buffer request;
  Buffer response;
  Status status;
  // Modeled server-side processing nanoseconds the handler charged (the
  // paper's "+0.5 us for Alloc/Free" style extras); lets clients account
  // full modeled operation latency without a wall clock.
  uint64_t server_extra_ns = 0;
  std::atomic<bool> done{false};

  // Heap/pool factory for transport use: returns a message holding one
  // client and one server reference (alias of RpcMessagePool::Acquire).
  static RpcMessage* New();
  // Drops one reference; recycles the message when the last one goes.
  void Unref();

 private:
  friend class RpcMessagePool;
  std::atomic<int> refs_{0};  // 0 = stack-owned, Unref is a no-op
};

// Per-thread freelist of RpcMessage objects. On the normal path the client
// thread drops the last reference (the server Completes 2 -> 1, the client
// reads the response and Unrefs 1 -> 0), so messages recycle into the
// *client's* freelist with no cross-thread synchronization and the next
// call on that thread reuses the same message and buffer capacity. On the
// abandoned-timeout path the server's Complete drops the last reference and
// the message recycles into the worker's freelist (bounded; workers never
// acquire, so those entries persist until further abandons overflow the cap
// and delete). Toggling SetEnabled(false) makes Acquire allocate and
// Recycle free — the bench's pooling-off baseline.
class RpcMessagePool {
 public:
  static void SetEnabled(bool on);
  static bool Enabled();

  // A message with refs == 2 (client + server), fields reset, buffers
  // retaining any recycled capacity.
  static RpcMessage* Acquire();

  // Entries on the calling thread's freelist (tests).
  static size_t LocalFreeForTesting();

 private:
  friend struct RpcMessage;
  static constexpr size_t kMaxPerThread = 64;
  // Called by the final Unref. Resets and shelves `msg`, or deletes it
  // when the pool is disabled/full.
  static void Recycle(RpcMessage* msg);
};

// Token-style rate limiter modeling the RNIC's two-sided message rate: the
// aggregate Send/Recv throughput of the server NIC is what caps RPC ops/s
// in the paper's Fig. 12 (~700 Kreq/s), independent of worker CPU. Uses the
// global SimTimeScale; disabled at scale 0 (unit tests).
class NicMessageRateLimiter {
 public:
  // rate 0 disables limiting.
  explicit NicMessageRateLimiter(uint64_t msgs_per_sec = 0) {
    SetRate(msgs_per_sec);
  }

  void SetRate(uint64_t msgs_per_sec) {
    interval_ns_.store(
        msgs_per_sec == 0 ? 0 : 1'000'000'000ULL / msgs_per_sec,
        std::memory_order_relaxed);
  }

  // Blocks (exponential-backoff wait) until the caller's message slot is
  // due.
  void Acquire();

 private:
  std::atomic<uint64_t> interval_ns_{0};
  std::atomic<uint64_t> next_slot_ns_{0};
};

// The inbound request queue on the server node: one lock-free ring per
// worker plus a shared rate limiter. Capacity is per ring.
class RpcQueue {
 public:
  explicit RpcQueue(size_t ring_capacity_pow2 = 4096, int num_rings = 1);

  int num_rings() const { return static_cast<int>(rings_.size()); }
  NicMessageRateLimiter* rate_limiter() { return &limiter_; }

  // Enqueues a request; false when every ring is full (client backs off).
  // `ring_hint` targets a specific worker's ring (owner affinity); out of
  // range (or -1) round-robins. A full hinted ring falls through to the
  // others before giving up.
  bool Push(RpcMessage* msg, int ring_hint = -1);

  // Dequeues one request from any ring, or nullptr when all are empty.
  // Control-plane use (tests, the cluster restart purge); workers use
  // PollBatch.
  RpcMessage* Poll();

  // Drains up to `max` requests from `ring` only (one batched pop — a
  // single head CAS — amortizing queue synchronization over the batch).
  // Returns the number of messages written to `out`. Cross-ring stealing is
  // the *caller's* policy: the worker loop steals only from rings whose
  // owner is parked, so an idle worker cannot keep itself awake by racing
  // the ring owner for its traffic.
  size_t PollBatch(int ring, RpcMessage** out, size_t max);

  size_t ApproxDepth() const;

 private:
  // unique_ptr: MpmcQueue is neither movable nor copyable.
  std::vector<std::unique_ptr<MpmcQueue<RpcMessage*>>> rings_;
  std::atomic<uint64_t> rr_{0};  // round-robin cursor for unhinted pushes
  NicMessageRateLimiter limiter_;
};

// Modeled wire accounting for one call (client stats).
struct RpcWireStats {
  uint64_t network_ns = 0;       // modeled network round-trip time
  uint64_t server_extra_ns = 0;  // modeled server compute the handler charged
  bool dup_completion = false;   // an injected duplicate completion arrived
};

// Everything a completed (or failed) legacy-path call reports back.
struct RpcCallResult {
  // Server-set status; kTimeout when the transport gave up first (request
  // undeliverable, completion never observed, or response lost) — in that
  // case the server may or may not have applied the operation.
  Status status;
  Buffer response;
  uint64_t network_ns = 0;
  uint64_t server_extra_ns = 0;
  bool dup_completion = false;
};

// Client-side RPC endpoint: pushes requests into a remote RpcQueue and
// spins for the completion — bounded by `policy.deadline_ns` — pacing the
// modeled network time of both legs. Consults the global fault injector at
// the rpc.* sites.
class RpcClient {
 public:
  RpcClient(RpcQueue* queue, sim::LatencyModel model,
            RetryPolicy policy = RetryPolicy{})
      : queue_(queue), model_(model), policy_(policy) {}

  // Zero-copy pooled call: `*msg` (from RpcMessagePool::Acquire, request
  // encoded in place) is sent and, on any status where the message is still
  // owned by the caller, returned with the response in msg->response — the
  // caller decodes in place and Unrefs. On timeout-class failures the
  // transport has already released the caller's reference(s) and nulls
  // `*msg`; the caller must not touch it.
  Status CallPooled(RpcMessage** msg, int ring_hint, RpcWireStats* wire);

  // Legacy synchronous call (copies the response out); never blocks past
  // the policy deadline.
  RpcCallResult Call(Buffer request, int ring_hint = -1);

  const sim::LatencyModel& model() const { return model_; }
  const RetryPolicy& retry_policy() const { return policy_; }

 private:
  RpcQueue* const queue_;
  const sim::LatencyModel model_;
  const RetryPolicy policy_;
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_RPC_TRANSPORT_H_
