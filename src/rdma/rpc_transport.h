// RPC transport over the simulated RDMA fabric (paper §2.2.2, Fig. 3).
//
// Remote peers push RPC requests "directly into the RPC queue" (modeled by
// the lock-free MPMC queue); the DSM worker threads poll that queue, serve
// the request and reply. A client has at most one outstanding request and
// spins on the completion flag, like an RDMA client polling its CQ.

#ifndef CORM_RDMA_RPC_TRANSPORT_H_
#define CORM_RDMA_RPC_TRANSPORT_H_

#include <atomic>
#include <cstdint>

#include "common/mpmc_queue.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "sim/latency_model.h"

namespace corm::rdma {

// One in-flight RPC. Owned by the caller; the server fills response/status
// and sets done last (release), which the spinning client observes
// (acquire).
struct RpcMessage {
  Buffer request;
  Buffer response;
  Status status;
  // Modeled server-side processing nanoseconds the handler charged (the
  // paper's "+0.5 us for Alloc/Free" style extras); lets clients account
  // full modeled operation latency without a wall clock.
  uint64_t server_extra_ns = 0;
  std::atomic<bool> done{false};
};

// Token-style rate limiter modeling the RNIC's two-sided message rate: the
// aggregate Send/Recv throughput of the server NIC is what caps RPC ops/s
// in the paper's Fig. 12 (~700 Kreq/s), independent of worker CPU. Uses the
// global SimTimeScale; disabled at scale 0 (unit tests).
class NicMessageRateLimiter {
 public:
  // rate 0 disables limiting.
  explicit NicMessageRateLimiter(uint64_t msgs_per_sec = 0) {
    SetRate(msgs_per_sec);
  }

  void SetRate(uint64_t msgs_per_sec) {
    interval_ns_.store(
        msgs_per_sec == 0 ? 0 : 1'000'000'000ULL / msgs_per_sec,
        std::memory_order_relaxed);
  }

  // Blocks (spins) until the caller's message slot is due.
  void Acquire();

 private:
  std::atomic<uint64_t> interval_ns_{0};
  std::atomic<uint64_t> next_slot_ns_{0};
};

// The shared inbound request queue on the server node.
class RpcQueue {
 public:
  explicit RpcQueue(size_t capacity_pow2 = 4096) : queue_(capacity_pow2) {}

  NicMessageRateLimiter* rate_limiter() { return &limiter_; }

  // Enqueues a request; false when the queue is full (client backs off).
  bool Push(RpcMessage* msg) { return queue_.TryPush(msg); }

  // Dequeues the next request, or nullptr when the queue is empty.
  RpcMessage* Poll() {
    auto msg = queue_.TryPop();
    return msg ? *msg : nullptr;
  }

  size_t ApproxDepth() const { return queue_.ApproxSize(); }

 private:
  MpmcQueue<RpcMessage*> queue_;
  NicMessageRateLimiter limiter_;
};

// Client-side RPC endpoint: pushes requests into a remote RpcQueue and
// spins for the completion, pacing the modeled network time of both legs.
class RpcClient {
 public:
  RpcClient(RpcQueue* queue, sim::LatencyModel model)
      : queue_(queue), model_(model) {}

  // Synchronous call. On return, `msg->response`/`msg->status` are filled.
  // Returns the modeled network round-trip (excludes server compute, which
  // elapses for real while the client spins).
  uint64_t Call(RpcMessage* msg);

  const sim::LatencyModel& model() const { return model_; }

 private:
  RpcQueue* const queue_;
  const sim::LatencyModel model_;
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_RPC_TRANSPORT_H_
