// Reliable-connected Queue Pair endpoint (client side).
//
// Only reliable QPs support one-sided RDMA reads (paper §2.2), so this is
// the only QP type CoRM uses. A QP that performs an invalid access — wrong
// r_key, out-of-bounds, or an access racing ibv_rereg_mr — transitions to
// the error state and must be reconnected, which models the multi-
// millisecond recovery cost the paper is careful to avoid.

#ifndef CORM_RDMA_QUEUE_PAIR_H_
#define CORM_RDMA_QUEUE_PAIR_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "rdma/rnic.h"
#include "sim/latency_model.h"

namespace corm::rdma {

class QueuePair {
 public:
  enum class State { kConnected, kError };

  // A QP connects to a remote RNIC. Latency constants come from the RNIC's
  // model (both ends share the fabric).
  explicit QueuePair(Rnic* remote_rnic) : rnic_(remote_rnic) {}

  State state() const { return state_.load(std::memory_order_acquire); }

  // One-sided RDMA read of `len` bytes at remote `addr` into `buf`.
  // Returns the modeled round-trip nanoseconds (including any ODP faults),
  // and paces the calling thread by that amount. On a remote access error
  // the QP enters the error state and kQpBroken is returned.
  Result<uint64_t> Read(RKey r_key, sim::VAddr addr, void* buf, size_t len);

  // One-sided RDMA write (used by raw-RDMA baselines; CoRM itself issues
  // writes via RPC).
  Result<uint64_t> Write(RKey r_key, sim::VAddr addr, const void* data,
                         size_t len);

  // Re-establishes a broken connection. Models the paper's "few
  // milliseconds" of reconnection cost.
  uint64_t Reconnect();

  uint64_t reads_issued() const {
    return reads_issued_.load(std::memory_order_relaxed);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  Result<uint64_t> Access(RKey r_key, sim::VAddr addr, void* buf, size_t len,
                          bool is_write);

  Rnic* const rnic_;
  std::atomic<State> state_{State::kConnected};
  std::atomic<uint64_t> reads_issued_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_QUEUE_PAIR_H_
