// Reliable-connected Queue Pair endpoint (client side).
//
// Only reliable QPs support one-sided RDMA reads (paper §2.2), so this is
// the only QP type CoRM uses. A QP that performs an invalid access — wrong
// r_key, out-of-bounds, or an access racing ibv_rereg_mr — transitions to
// the error state and must be reconnected, which models the multi-
// millisecond recovery cost the paper is careful to avoid.

#ifndef CORM_RDMA_QUEUE_PAIR_H_
#define CORM_RDMA_QUEUE_PAIR_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "rdma/rnic.h"
#include "sim/latency_model.h"

namespace corm::rdma {

class QueuePair;

// One work request inside a chained post (ibv_send_wr analogue). The
// poster fills the input fields; PostBatch fills `old_value` (atomics) and
// `status` per WR — the per-WR CQE. Reads/writes scatter through `buf`;
// atomics operate on one naturally-aligned 8-byte remote word.
struct WorkRequest {
  enum class Op : uint8_t { kRead, kWrite, kCas, kFetchAdd };

  Op op = Op::kRead;
  RKey r_key = 0;
  sim::VAddr addr = 0;
  void* buf = nullptr;     // read destination / write source (kRead/kWrite)
  size_t len = 0;          // byte count for kRead/kWrite
  uint64_t compare = 0;    // kCas: expected remote word
  uint64_t operand = 0;    // kCas: swap value; kFetchAdd: addend
  uint64_t old_value = 0;  // out (atomics): the word's prior contents
  Status status;           // out: per-WR completion status
};

// Chained post with selective signaling across one or more QPs sharing a
// completion queue: qps[i] executes wrs[i]. One doorbell charge covers the
// chain (per-QP MMIO posts are back-to-back, overlapped with the first wire
// leg) and only the final WR is signaled, so the batch pays
// DoorbellNs + sum(wire legs) + CompletionNs — the LatencyModel::RdmaBatchNs
// shape — instead of n full round trips. Per-WR failures land in
// wrs[i].status (a WR that breaks its QP flushes that QP's remaining WRs
// with kQpBroken, IB flush semantics); the call itself only fails when
// every QP was already broken on entry or n == 0. Returns the total
// modeled ns, already paced.
Result<uint64_t> PostBatchShared(QueuePair* const* qps, WorkRequest* wrs,
                                 size_t n);

class QueuePair {
 public:
  enum class State { kConnected, kError };

  // A QP connects to a remote RNIC. Latency constants come from the RNIC's
  // model (both ends share the fabric).
  explicit QueuePair(Rnic* remote_rnic) : rnic_(remote_rnic) {}

  State state() const { return state_.load(std::memory_order_acquire); }

  // One-sided RDMA read of `len` bytes at remote `addr` into `buf`.
  // Returns the modeled round-trip nanoseconds (including any ODP faults),
  // and paces the calling thread by that amount. On a remote access error
  // the QP enters the error state and kQpBroken is returned.
  Result<uint64_t> Read(RKey r_key, sim::VAddr addr, void* buf, size_t len);

  // One-sided RDMA write (used by raw-RDMA baselines; CoRM itself issues
  // writes via RPC).
  Result<uint64_t> Write(RKey r_key, sim::VAddr addr, const void* data,
                         size_t len);

  // One-sided masked atomics on a remote 8-byte word (the synchronization
  // verbs of DESIGN.md §12). `*old_value` receives the prior contents; a
  // CAS succeeded iff *old_value == compare. Charged as a single-WR post
  // (doorbell + wire + RMW + completion) and paced.
  Result<uint64_t> CompareSwap(RKey r_key, sim::VAddr addr, uint64_t compare,
                               uint64_t swap, uint64_t* old_value);
  Result<uint64_t> FetchAdd(RKey r_key, sim::VAddr addr, uint64_t addend,
                            uint64_t* old_value);

  // Chained post on this QP alone (see PostBatchShared above).
  Result<uint64_t> PostBatch(WorkRequest* wrs, size_t n);

  // Re-establishes a broken connection. Models the paper's "few
  // milliseconds" of reconnection cost.
  uint64_t Reconnect();

  uint64_t reads_issued() const {
    return reads_issued_.load(std::memory_order_relaxed);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  uint64_t batches_posted() const {
    return batches_posted_.load(std::memory_order_relaxed);
  }
  uint64_t batched_wrs() const {
    return batched_wrs_.load(std::memory_order_relaxed);
  }

  const sim::LatencyModel& model() const { return rnic_->model(); }

 private:
  friend Result<uint64_t> PostBatchShared(QueuePair* const*, WorkRequest*,
                                          size_t);

  Result<uint64_t> Access(RKey r_key, sim::VAddr addr, void* buf, size_t len,
                          bool is_write);

  // Executes one WR unpaced: runs the MTT access/atomic, fills the WR's
  // out-fields, and returns the modeled wire-side cost of this WR alone
  // (wire leg + MTT faults + RMW; no doorbell/completion — the batch
  // poster charges those once per chain).
  uint64_t ExecuteWr(WorkRequest* wr);

  Rnic* const rnic_;
  std::atomic<State> state_{State::kConnected};
  std::atomic<uint64_t> reads_issued_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> batches_posted_{0};
  std::atomic<uint64_t> batched_wrs_{0};
};

}  // namespace corm::rdma

#endif  // CORM_RDMA_QUEUE_PAIR_H_
