#include "rdma/queue_pair.h"

namespace corm::rdma {

namespace {
// Paper §3.5: recovering a broken QP "can take few milliseconds".
constexpr uint64_t kReconnectNs = 3'000'000;
}  // namespace

Result<uint64_t> QueuePair::Access(RKey r_key, sim::VAddr addr, void* buf,
                                   size_t len, bool is_write) {
  if (state_.load(std::memory_order_acquire) == State::kError) {
    return Status::QpBroken("QP in error state; Reconnect() first");
  }
  bool broke_qp = false;
  auto fault_ns = rnic_->MttAccess(r_key, addr, buf, len, is_write, &broke_qp);
  if (broke_qp) {
    state_.store(State::kError, std::memory_order_release);
  }
  if (!fault_ns.ok()) return fault_ns.status();
  const uint64_t total_ns = rnic_->model().RdmaReadNs(len) + *fault_ns;
  sim::Pace(total_ns);
  return total_ns;
}

Result<uint64_t> QueuePair::Read(RKey r_key, sim::VAddr addr, void* buf,
                                 size_t len) {
  reads_issued_.fetch_add(1, std::memory_order_relaxed);
  return Access(r_key, addr, buf, len, /*is_write=*/false);
}

Result<uint64_t> QueuePair::Write(RKey r_key, sim::VAddr addr,
                                  const void* data, size_t len) {
  return Access(r_key, addr, const_cast<void*>(data), len, /*is_write=*/true);
}

uint64_t QueuePair::ExecuteWr(WorkRequest* wr) {
  const sim::LatencyModel& m = rnic_->model();
  if (state_.load(std::memory_order_acquire) == State::kError) {
    // Flush semantics: WRs posted to (or chained behind a break on) an
    // errored QP complete with a flush error and consume no wire time.
    wr->status = Status::QpBroken("WR flushed: QP in error state");
    return 0;
  }
  bool broke_qp = false;
  Result<uint64_t> fault_ns = 0;
  uint64_t wire_ns = 0;
  switch (wr->op) {
    case WorkRequest::Op::kRead:
      reads_issued_.fetch_add(1, std::memory_order_relaxed);
      fault_ns = rnic_->MttAccess(wr->r_key, wr->addr, wr->buf, wr->len,
                                  /*is_write=*/false, &broke_qp);
      wire_ns = m.RdmaWireNs(wr->len);
      break;
    case WorkRequest::Op::kWrite:
      fault_ns = rnic_->MttAccess(wr->r_key, wr->addr, wr->buf, wr->len,
                                  /*is_write=*/true, &broke_qp);
      wire_ns = m.RdmaWireNs(wr->len);
      break;
    case WorkRequest::Op::kCas:
      fault_ns = rnic_->MttAtomic(wr->r_key, wr->addr, /*is_cas=*/true,
                                  wr->compare, wr->operand, &wr->old_value,
                                  &broke_qp);
      wire_ns = m.RdmaWireNs(sizeof(uint64_t)) + m.AtomicRmwNs();
      break;
    case WorkRequest::Op::kFetchAdd:
      fault_ns = rnic_->MttAtomic(wr->r_key, wr->addr, /*is_cas=*/false,
                                  /*compare=*/0, wr->operand, &wr->old_value,
                                  &broke_qp);
      wire_ns = m.RdmaWireNs(sizeof(uint64_t)) + m.AtomicRmwNs();
      break;
  }
  if (broke_qp) state_.store(State::kError, std::memory_order_release);
  if (!fault_ns.ok()) {
    wr->status = fault_ns.status();
    return 0;
  }
  wr->status = Status::OK();
  return wire_ns + *fault_ns;
}

Result<uint64_t> PostBatchShared(QueuePair* const* qps, WorkRequest* wrs,
                                 size_t n) {
  if (n == 0) return Status::InvalidArgument("empty WR chain");
  bool any_live = false;
  for (size_t i = 0; i < n; ++i) {
    if (qps[i]->state() == QueuePair::State::kConnected) {
      any_live = true;
      break;
    }
  }
  if (!any_live) {
    return Status::QpBroken("every QP in the chain is in the error state");
  }
  const sim::LatencyModel& m = qps[0]->model();
  // One doorbell rings the whole chain, only the last WR is signaled: the
  // per-verb overhead is paid once (LatencyModel::RdmaBatchNs shape).
  uint64_t total_ns = m.DoorbellNs() + m.CompletionNs();
  for (size_t i = 0; i < n; ++i) {
    total_ns += qps[i]->ExecuteWr(&wrs[i]);
  }
  qps[0]->batches_posted_.fetch_add(1, std::memory_order_relaxed);
  qps[0]->batched_wrs_.fetch_add(n, std::memory_order_relaxed);
  sim::Pace(total_ns);
  return total_ns;
}

Result<uint64_t> QueuePair::PostBatch(WorkRequest* wrs, size_t n) {
  if (n == 0) return Status::InvalidArgument("empty WR chain");
  if (state_.load(std::memory_order_acquire) == State::kError) {
    return Status::QpBroken("QP in error state; Reconnect() first");
  }
  const sim::LatencyModel& m = rnic_->model();
  uint64_t total_ns = m.DoorbellNs() + m.CompletionNs();
  for (size_t i = 0; i < n; ++i) total_ns += ExecuteWr(&wrs[i]);
  batches_posted_.fetch_add(1, std::memory_order_relaxed);
  batched_wrs_.fetch_add(n, std::memory_order_relaxed);
  sim::Pace(total_ns);
  return total_ns;
}

Result<uint64_t> QueuePair::CompareSwap(RKey r_key, sim::VAddr addr,
                                        uint64_t compare, uint64_t swap,
                                        uint64_t* old_value) {
  WorkRequest wr;
  wr.op = WorkRequest::Op::kCas;
  wr.r_key = r_key;
  wr.addr = addr;
  wr.compare = compare;
  wr.operand = swap;
  auto ns = PostBatch(&wr, 1);
  CORM_RETURN_NOT_OK(ns.status());
  CORM_RETURN_NOT_OK(wr.status);
  *old_value = wr.old_value;
  return *ns;
}

Result<uint64_t> QueuePair::FetchAdd(RKey r_key, sim::VAddr addr,
                                     uint64_t addend, uint64_t* old_value) {
  WorkRequest wr;
  wr.op = WorkRequest::Op::kFetchAdd;
  wr.r_key = r_key;
  wr.addr = addr;
  wr.operand = addend;
  auto ns = PostBatch(&wr, 1);
  CORM_RETURN_NOT_OK(ns.status());
  CORM_RETURN_NOT_OK(wr.status);
  *old_value = wr.old_value;
  return *ns;
}

uint64_t QueuePair::Reconnect() {
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  sim::Pace(kReconnectNs);
  state_.store(State::kConnected, std::memory_order_release);
  return kReconnectNs;
}

}  // namespace corm::rdma
