#include "rdma/queue_pair.h"

namespace corm::rdma {

namespace {
// Paper §3.5: recovering a broken QP "can take few milliseconds".
constexpr uint64_t kReconnectNs = 3'000'000;
}  // namespace

Result<uint64_t> QueuePair::Access(RKey r_key, sim::VAddr addr, void* buf,
                                   size_t len, bool is_write) {
  if (state_.load(std::memory_order_acquire) == State::kError) {
    return Status::QpBroken("QP in error state; Reconnect() first");
  }
  bool broke_qp = false;
  auto fault_ns = rnic_->MttAccess(r_key, addr, buf, len, is_write, &broke_qp);
  if (broke_qp) {
    state_.store(State::kError, std::memory_order_release);
  }
  if (!fault_ns.ok()) return fault_ns.status();
  const uint64_t total_ns = rnic_->model().RdmaReadNs(len) + *fault_ns;
  sim::Pace(total_ns);
  return total_ns;
}

Result<uint64_t> QueuePair::Read(RKey r_key, sim::VAddr addr, void* buf,
                                 size_t len) {
  reads_issued_.fetch_add(1, std::memory_order_relaxed);
  return Access(r_key, addr, buf, len, /*is_write=*/false);
}

Result<uint64_t> QueuePair::Write(RKey r_key, sim::VAddr addr,
                                  const void* data, size_t len) {
  return Access(r_key, addr, const_cast<void*>(data), len, /*is_write=*/true);
}

uint64_t QueuePair::Reconnect() {
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  sim::Pace(kReconnectNs);
  state_.store(State::kConnected, std::memory_order_release);
  return kReconnectNs;
}

}  // namespace corm::rdma
