// Node-side operations on the registered index bucket table (DESIGN.md
// §13). The table memory itself is owned by CormNode (mapped fresh and
// registered for one-sided access like the sync-lock table); IndexTable is
// a view that implements the seqlocked mutation protocol over it.
//
// Writers (RPC workers serving kIndexInsert/Remove/Lookup-repair, and the
// compaction engine's IndexRepair sub-phase) serialize per bucket through
// the bucket's seq word: CAS even→odd, mutate, release odd→even. Holds are
// a single 32-byte entry rewrite, so contention is momentary — but every
// acquisition still runs under a Deadline (src/index/ is in corm-tidy's
// rule-8 strict-wait set: no unbounded wait, ever). One-sided readers never
// touch the seq word remotely; they snapshot the bucket and validate with
// sync::SeqSnapshotConsistent against the seq embedded in the snapshot
// itself plus the chained re-read.

#ifndef CORM_INDEX_INDEX_TABLE_H_
#define CORM_INDEX_INDEX_TABLE_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "index/index_layout.h"

namespace corm::index {

class IndexTable {
 public:
  // `base` is the local (translated) address of the table header; the
  // region must span TableBytes(buckets). The view does not own it.
  IndexTable(uint8_t* base, uint32_t buckets);

  uint32_t buckets() const { return buckets_; }

  // The index fence epoch (word 0). Sealing bumps it and reports how many
  // live entries the seal just fenced (their fence_epoch no longer matches)
  // — the caller attributes those to the index_fenced_entries counter.
  uint64_t Epoch() const;
  uint64_t SealEpoch(uint64_t* fenced_live_entries);

  // Inserts or overwrites the entry for `key`. A new entry is minted under
  // the current epoch. kOutOfMemory when both candidate buckets are full:
  // the table is the authoritative key→pointer map, so silent eviction
  // would orphan an object. With `existing` non-null the insert is
  // insert-if-absent: a live entry is left untouched, its pointer lands in
  // *existing, and the status is kAlreadyExists — the publish race arbiter
  // two concurrent Puts of a fresh key settle through.
  Status Insert(uint64_t key, const core::GlobalAddr& addr,
                core::GlobalAddr* existing = nullptr);

  // Removes the entry for `key`; false when absent.
  bool Remove(uint64_t key);

  // Node-side exact lookup (the RPC fallback path). Returns the raw entry,
  // fenced or not — the caller decides whether to repair it.
  bool Lookup(uint64_t key, IndexEntry* out) const;

  // Rewrites the live entry for `key` in place with a fresh pointer, the
  // current epoch, and a bumped entry generation (self-healing repair from
  // the RPC lookup handler). False when the key is absent.
  bool Repair(uint64_t key, const core::GlobalAddr& addr);

  // Budgeted repair walk for the compaction IndexRepair sub-phase: visits
  // up to `bucket_budget` buckets starting at *cursor, calling `fn` on
  // every live entry under the bucket's seq lock; `fn` returns true after
  // mutating the entry (the walk then bumps its generation and re-stamps
  // the current epoch). Advances *cursor; returns the number of entries
  // rewritten. The walk is resumable exactly like a compaction phase.
  size_t RepairScan(uint64_t* cursor, size_t bucket_budget,
                    const std::function<bool(IndexEntry*)>& fn);

  // Live entries across the table (test/bench observability; takes each
  // bucket's seq lock briefly).
  uint64_t LiveEntries() const;

 private:
  IndexBucket* Bucket(uint64_t i) const;
  // Bounded seq acquisition; false if the Deadline expires (the caller
  // converts that into a transient status, never a wedge).
  bool LockBucket(IndexBucket* b) const;
  void UnlockBucket(IndexBucket* b) const;
  // Slot holding `key` in bucket `b`, or -1.
  static int FindSlot(const IndexBucket* b, uint64_t key);

  uint8_t* const base_;
  const uint32_t buckets_;
};

}  // namespace corm::index

#endif  // CORM_INDEX_INDEX_TABLE_H_
