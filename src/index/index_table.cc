#include "index/index_table.h"

#include <algorithm>
#include <atomic>

#include "common/retry.h"
#include "common/sanitizer.h"

namespace corm::index {

namespace {

// A bucket seq hold spans a single 32-byte entry rewrite with no waits
// inside, so this budget only expires against a genuinely wedged peer —
// which the seqlock design makes impossible to hold forever, but rule 8
// demands the bound anyway.
constexpr uint64_t kBucketLockBudgetNs = 50'000'000;

// Entry bytes are written with RacyCopy: clients snapshot buckets through
// the RNIC's uninstrumented one-sided memcpy, and the seq word (not the
// byte ranges) is the synchronization — the same discipline as the object
// seqlock's payload path.
void StoreEntry(IndexEntry* dst, const IndexEntry& v) {
  RacyCopy(dst, &v, sizeof(IndexEntry));
}

}  // namespace

IndexTable::IndexTable(uint8_t* base, uint32_t buckets)
    : base_(base), buckets_(buckets) {}

IndexBucket* IndexTable::Bucket(uint64_t i) const {
  return reinterpret_cast<IndexBucket*>(base_ + kTableHeaderBytes +
                                        i * sizeof(IndexBucket));
}

uint64_t IndexTable::Epoch() const {
  return std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(base_))
      .load(std::memory_order_acquire);
}

uint64_t IndexTable::SealEpoch(uint64_t* fenced_live_entries) {
  const uint64_t sealed =
      std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(base_))
          .fetch_add(1, std::memory_order_acq_rel) +
      1;
  if (fenced_live_entries != nullptr) {
    // Every live entry minted under an older epoch is now fenced: a
    // one-sided lookup that sees it must fall back to the RPC path, which
    // repairs it under the new epoch.
    uint64_t fenced = 0;
    for (uint64_t i = 0; i < buckets_; ++i) {
      IndexBucket* b = Bucket(i);
      if (!LockBucket(b)) continue;
      for (const IndexEntry& e : b->entries) {
        if (e.Live() && e.fence_epoch != static_cast<uint16_t>(sealed)) {
          ++fenced;
        }
      }
      UnlockBucket(b);
    }
    *fenced_live_entries = fenced;
  }
  return sealed;
}

bool IndexTable::LockBucket(IndexBucket* b) const {
  std::atomic_ref<uint64_t> seq(b->seq);
  const Deadline deadline(kBucketLockBudgetNs);
  for (;;) {
    uint64_t cur = seq.load(std::memory_order_acquire);
    if ((cur & 1) == 0 &&
        seq.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel)) {
      return true;
    }
    if (deadline.Expired()) return false;
  }
}

void IndexTable::UnlockBucket(IndexBucket* b) const {
  std::atomic_ref<uint64_t> seq(b->seq);
  seq.store(seq.load(std::memory_order_relaxed) + 1,
            std::memory_order_release);
}

int IndexTable::FindSlot(const IndexBucket* b, uint64_t key) {
  for (size_t s = 0; s < kEntriesPerBucket; ++s) {
    if (b->entries[s].Live() && b->entries[s].key == key) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

Status IndexTable::Insert(uint64_t key, const core::GlobalAddr& addr,
                          core::GlobalAddr* existing) {
  IndexBucket* b1 = Bucket(BucketOf(key, buckets_));
  IndexBucket* b2 = Bucket(AltBucketOf(key, buckets_));
  // Both candidate buckets are held for the whole decision so two racing
  // inserts of the same key cannot mint duplicate entries in the two
  // buckets. Address-ordered acquisition keeps the pair deadlock-free.
  IndexBucket* lo = std::min(b1, b2);
  IndexBucket* hi = std::max(b1, b2);
  if (!LockBucket(lo)) return Status::Timeout("index bucket lock");
  if (hi != lo && !LockBucket(hi)) {
    UnlockBucket(lo);
    return Status::Timeout("index bucket lock");
  }

  Status st;
  IndexBucket* target = nullptr;
  int slot = FindSlot(b1, key);
  if (slot >= 0) {
    target = b1;
  } else if ((slot = FindSlot(b2, key)) >= 0) {
    target = b2;
  }
  IndexEntry next;
  next.key = key;
  next.addr = addr;
  next.fence_epoch = static_cast<uint16_t>(Epoch());
  next.state = IndexEntry::kLive;
  if (target != nullptr) {
    if (existing != nullptr) {
      *existing = target->entries[slot].addr;
      st = Status::AlreadyExists("key already indexed");
    } else {
      next.hint_version = target->entries[slot].hint_version + 1;
      StoreEntry(&target->entries[slot], next);
    }
  } else {
    for (IndexBucket* b : {b1, b2}) {
      for (size_t s = 0; s < kEntriesPerBucket && target == nullptr; ++s) {
        if (!b->entries[s].Live()) {
          target = b;
          slot = static_cast<int>(s);
        }
      }
      if (target != nullptr) break;
    }
    if (target != nullptr) {
      next.hint_version = 1;
      StoreEntry(&target->entries[slot], next);
    } else {
      st = Status::OutOfMemory(
          "index bucket pair full; grow CormConfig::index_buckets");
    }
  }

  if (hi != lo) UnlockBucket(hi);
  UnlockBucket(lo);
  return st;
}

bool IndexTable::Remove(uint64_t key) {
  IndexBucket* b1 = Bucket(BucketOf(key, buckets_));
  IndexBucket* b2 = Bucket(AltBucketOf(key, buckets_));
  bool removed = false;
  for (IndexBucket* b : {b1, b2}) {
    if (!LockBucket(b)) return false;
    const int slot = FindSlot(b, key);
    if (slot >= 0) {
      StoreEntry(&b->entries[slot], IndexEntry{});
      removed = true;
    }
    UnlockBucket(b);
    if (removed || b1 == b2) break;
  }
  return removed;
}

bool IndexTable::Lookup(uint64_t key, IndexEntry* out) const {
  IndexBucket* b1 = Bucket(BucketOf(key, buckets_));
  IndexBucket* b2 = Bucket(AltBucketOf(key, buckets_));
  for (IndexBucket* b : {b1, b2}) {
    if (!LockBucket(b)) return false;
    const int slot = FindSlot(b, key);
    if (slot >= 0) {
      RacyCopy(out, &b->entries[slot], sizeof(IndexEntry));
      UnlockBucket(b);
      return true;
    }
    UnlockBucket(b);
    if (b1 == b2) break;
  }
  return false;
}

bool IndexTable::Repair(uint64_t key, const core::GlobalAddr& addr) {
  IndexBucket* b1 = Bucket(BucketOf(key, buckets_));
  IndexBucket* b2 = Bucket(AltBucketOf(key, buckets_));
  for (IndexBucket* b : {b1, b2}) {
    if (!LockBucket(b)) return false;
    const int slot = FindSlot(b, key);
    if (slot >= 0) {
      IndexEntry next = b->entries[slot];
      next.addr = addr;
      next.fence_epoch = static_cast<uint16_t>(Epoch());
      next.hint_version++;
      StoreEntry(&b->entries[slot], next);
      UnlockBucket(b);
      return true;
    }
    UnlockBucket(b);
    if (b1 == b2) break;
  }
  return false;
}

size_t IndexTable::RepairScan(uint64_t* cursor, size_t bucket_budget,
                              const std::function<bool(IndexEntry*)>& fn) {
  size_t repaired = 0;
  const uint16_t epoch = static_cast<uint16_t>(Epoch());
  while (*cursor < buckets_ && bucket_budget > 0) {
    IndexBucket* b = Bucket(*cursor);
    if (!LockBucket(b)) break;  // leave the cursor: the next slice retries
    for (IndexEntry& e : b->entries) {
      if (!e.Live()) continue;
      IndexEntry next = e;
      if (fn(&next)) {
        next.fence_epoch = epoch;
        next.hint_version++;
        StoreEntry(&e, next);
        ++repaired;
      }
    }
    UnlockBucket(b);
    ++*cursor;
    --bucket_budget;
  }
  return repaired;
}

uint64_t IndexTable::LiveEntries() const {
  uint64_t live = 0;
  for (uint64_t i = 0; i < buckets_; ++i) {
    IndexBucket* b = Bucket(i);
    if (!LockBucket(b)) continue;
    for (const IndexEntry& e : b->entries) live += e.Live() ? 1 : 0;
    UnlockBucket(b);
  }
  return live;
}

}  // namespace corm::index
