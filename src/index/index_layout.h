// Wire layout of the compaction-safe remote index (DESIGN.md §13).
//
// Every node owns a bucket table in registered memory; clients locate keyed
// objects with a one-sided READ of the candidate buckets and validate the
// embedded GlobalAddr hint FaRM-style against the object's own header — the
// index never has to be transactionally consistent with the object store,
// it only has to be *safe to distrust*. The entry therefore carries exactly
// what distrust needs: the full key (exact match, not just the hash), the
// last-known pointer, the object version the hint was minted at (a floor a
// validated read must meet), and the index fence epoch (a seal bumps the
// table epoch, instantly invalidating every earlier entry after a failover
// re-home — the PR-7 fencing idea applied to lookups).
//
// Concurrency model mirrors the object seqlock: each bucket is guarded by a
// seq word (odd = writer in the bucket). Node-side writers hold the seq odd
// across the entry rewrite; one-sided readers snapshot the whole bucket and
// discard the snapshot when seq was odd or changed across the read. A torn
// bucket snapshot can therefore cost a retry or an RPC fallback, never a
// wrong object: the object-level validation is the final guard.

#ifndef CORM_INDEX_INDEX_LAYOUT_H_
#define CORM_INDEX_INDEX_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/addr.h"
#include "rdma/rnic.h"
#include "sim/address_space.h"

namespace corm::index {

// SplitMix64 finalizer: full-avalanche key hash (same mixer the sync-lock
// table uses for slot hashing).
inline constexpr uint64_t MixKey(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// One keyed entry. 32 bytes so a 4-way bucket plus its seq header stays a
// single MTU-friendly READ. Copied byte-wise into one-sided read buffers,
// so the field placement is wire format (pinned below).
struct IndexEntry {
  uint64_t key = 0;              // full key: exact match, no hash ambiguity
  core::GlobalAddr addr;         // last-known pointer (owner hint stamped)
  uint32_t hint_version = 0;     // object version floor for validated reads
  uint16_t fence_epoch = 0;      // table epoch the entry was minted under
  uint16_t state = 0;            // kEmpty | kLive

  static constexpr uint16_t kEmpty = 0;
  static constexpr uint16_t kLive = 1;

  bool Live() const { return state == kLive; }
};

static_assert(sizeof(IndexEntry) == 32, "IndexEntry is wire format");
static_assert(std::is_trivially_copyable_v<IndexEntry>,
              "IndexEntry crosses the wire via memcpy");
static_assert(offsetof(IndexEntry, key) == 0 &&
                  offsetof(IndexEntry, addr) == 8 &&
                  offsetof(IndexEntry, hint_version) == 24 &&
                  offsetof(IndexEntry, fence_epoch) == 28 &&
                  offsetof(IndexEntry, state) == 30,
              "IndexEntry field offsets are wire format");

inline constexpr size_t kEntriesPerBucket = 4;

// A seq-guarded bucket. The header pads to 32 bytes so entries stay
// 32-byte aligned and the whole bucket is a fixed 160-byte READ.
struct IndexBucket {
  uint64_t seq = 0;        // seqlock: odd while a node-side writer is inside
  uint64_t reserved[3] = {0, 0, 0};
  IndexEntry entries[kEntriesPerBucket];
};

static_assert(sizeof(IndexBucket) == 160, "IndexBucket is wire format");
static_assert(std::is_trivially_copyable_v<IndexBucket>,
              "IndexBucket crosses the wire via memcpy");

// Table geometry. Word 0 of the registered region is the index fence epoch
// (bumped by SealIndexEpoch on failover re-home, exactly like the
// sync-table epoch); buckets start after a 64-byte header so they never
// share a cache line with the epoch word.
inline constexpr size_t kTableHeaderBytes = 64;

inline constexpr size_t TableBytes(uint32_t buckets) {
  return kTableHeaderBytes + static_cast<size_t>(buckets) * sizeof(IndexBucket);
}

// Two candidate buckets per key (cuckoo-style choice without displacement):
// an insert takes a free slot in either, a lookup READs both in one chained
// post. Eight slots per key make bucket overflow vanishingly rare at the
// load factors the config allows; a genuinely full pair reports
// kResourceExhausted rather than silently evicting (an evicted entry would
// orphan its object — the table is the authoritative key→pointer map).
inline constexpr uint64_t BucketOf(uint64_t key, uint32_t buckets) {
  return MixKey(key) % buckets;
}
inline constexpr uint64_t AltBucketOf(uint64_t key, uint32_t buckets) {
  return MixKey(key ^ 0xc2b2ae3d27d4eb4fULL) % buckets;
}

// Remote coordinates of a node's index table (the keyed analogue of
// sync::LockTableCoords). Lives in registered memory; `base` is the table
// header, bucket i starts at base + kTableHeaderBytes + i * sizeof(bucket).
struct IndexTableCoords {
  sim::VAddr base = 0;
  rdma::RKey r_key = 0;
  uint32_t buckets = 0;

  sim::VAddr BucketAddr(uint64_t bucket) const {
    return base + kTableHeaderBytes + bucket * sizeof(IndexBucket);
  }
};

}  // namespace corm::index

#endif  // CORM_INDEX_INDEX_LAYOUT_H_
