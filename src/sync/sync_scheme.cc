#include "sync/sync_scheme.h"

#include <atomic>

#include "common/logging.h"
#include "sync/scheme_internal.h"

namespace corm::sync {

namespace {

// SplitMix64 finalizer: full-avalanche slot hash so consecutive slots in one
// block spread across the table instead of contending on neighbours.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Process-wide owner-id mint: 15-bit, nonzero, wraps. Collisions after wrap
// are tolerable — owner ids only attribute holds, correctness rides on the
// generation/epoch fields.
std::atomic<uint32_t> g_next_owner{0};

uint16_t MintOwnerId() {
  return static_cast<uint16_t>(
      1 + g_next_owner.fetch_add(1, std::memory_order_relaxed) % 0x7ffe);
}

}  // namespace

const char* SchemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kOptimistic:
      return "optimistic";
    case SchemeKind::kCasSpinlock:
      return "cas_spinlock";
    case SchemeKind::kLeaseRw:
      return "lease_rw";
  }
  return "unknown";
}

bool ParseSchemeKind(std::string_view name, SchemeKind* out) {
  if (name == "optimistic") {
    *out = SchemeKind::kOptimistic;
  } else if (name == "cas_spinlock") {
    *out = SchemeKind::kCasSpinlock;
  } else if (name == "lease_rw") {
    *out = SchemeKind::kLeaseRw;
  } else {
    return false;
  }
  return true;
}

sim::VAddr RemoteSyncScheme::LockWordAddr(const core::GlobalAddr& addr) const {
  CORM_CHECK(table_.slots > 0) << "sync-lock table has no slots";
  // Slots are >= 16-byte objects; dropping the low bits before hashing keeps
  // the stream identical for the slot's whole lifetime.
  const uint64_t slot = 1 + Mix64(addr.vaddr >> 4) % table_.slots;
  return table_.base + slot * sizeof(uint64_t);
}

std::unique_ptr<RemoteSyncScheme> MakeScheme(SchemeKind kind,
                                             SyncMedium* medium,
                                             const LockTableCoords& table,
                                             const SchemeOptions& options) {
  const uint16_t owner = MintOwnerId();
  switch (kind) {
    case SchemeKind::kOptimistic:
      return internal::MakeOptimisticScheme(medium, table, options, owner);
    case SchemeKind::kCasSpinlock:
      return internal::MakeCasSpinlockScheme(medium, table, options, owner);
    case SchemeKind::kLeaseRw:
      return internal::MakeLeaseRwScheme(medium, table, options, owner);
  }
  CORM_CHECK(false) << "unknown sync scheme kind";
  return nullptr;
}

}  // namespace corm::sync
