// Internal factory seams between sync_scheme.cc and the per-scheme
// translation units. Not installed; include sync_scheme.h instead.

#ifndef CORM_SYNC_SCHEME_INTERNAL_H_
#define CORM_SYNC_SCHEME_INTERNAL_H_

#include <memory>

#include "sync/sync_scheme.h"

namespace corm::sync::internal {

std::unique_ptr<RemoteSyncScheme> MakeOptimisticScheme(
    SyncMedium* medium, const LockTableCoords& table,
    const SchemeOptions& options, uint16_t owner_id);

std::unique_ptr<RemoteSyncScheme> MakeCasSpinlockScheme(
    SyncMedium* medium, const LockTableCoords& table,
    const SchemeOptions& options, uint16_t owner_id);

std::unique_ptr<RemoteSyncScheme> MakeLeaseRwScheme(
    SyncMedium* medium, const LockTableCoords& table,
    const SchemeOptions& options, uint16_t owner_id);

}  // namespace corm::sync::internal

#endif  // CORM_SYNC_SCHEME_INTERNAL_H_
