// Baseline scheme: CoRM's native lock-free versioned read (paper §3.2).
// No lock traffic at all — the FaRM-style snapshot validation inside
// SnapshotRead is the entire protocol, and write conflicts surface as
// torn/locked statuses the caller's retry loop absorbs.

#include "sync/scheme_internal.h"

namespace corm::sync {
namespace {

class OptimisticScheme final : public RemoteSyncScheme {
 public:
  OptimisticScheme(SyncMedium* medium, const LockTableCoords& table,
           const SchemeOptions& options, uint16_t owner_id)
      : RemoteSyncScheme(medium, table, options, owner_id) {}

  SchemeKind kind() const override { return SchemeKind::kOptimistic; }

  Status GuardedRead(const core::GlobalAddr& addr, void* buf,
                     size_t size) override {
    return medium_->SnapshotRead(addr, buf, size);
  }

  Status AcquireWrite(const core::GlobalAddr&) override {
    // The server-side object seqlock (header lock state) serializes
    // writers; the client adds nothing.
    return Status::OK();
  }

  Status ReleaseWrite(const core::GlobalAddr&) override {
    return Status::OK();
  }
};

}  // namespace

namespace internal {

std::unique_ptr<RemoteSyncScheme> MakeOptimisticScheme(
    SyncMedium* medium, const LockTableCoords& table,
    const SchemeOptions& options, uint16_t owner_id) {
  return std::make_unique<OptimisticScheme>(medium, table, options, owner_id);
}

}  // namespace internal
}  // namespace corm::sync
