// Lease/epoch reader-writer lock (DESIGN.md §12, scheme `lease_rw`).
//
// One packed word per slot: {epoch, writer, readers}. Readers enter with a
// single FETCH_ADD(+1) — if the returned word shows no writer they are
// admitted (one RTT, like the guidelines paper's reader-optimized locks) —
// and leave with FETCH_ADD(-1). Writers CAS the word from
// {epoch, writer=0, readers=0} to {epoch, us, 0}.
//
// The epoch half reuses the PR-7 seal machinery: word 0 of the lock table
// is the node's sync epoch, bumped whenever a failover seal record is
// applied (CormNode::SealSyncEpoch). A writer preflights with a *chained*
// read of [epoch word, lock word] — one doorbell, one completion — and a
// lock word stamped with an older epoch is fenced: whatever holder it
// names predates the seal, so its lease is void and the word is CAS-reset
// to the current epoch. The fenced holder's own release then observes the
// epoch moved and backs off without touching the word. This is exactly the
// stale-epoch rejection the replicated log applies to log records, ported
// to lock words.
//
// Liveness against crashes mirrors cas_lock.cc: a waiter that watches an
// unchanged owner for `lease_ns` steals the slot (readers and writer
// alike — a wedged reader count is indistinguishable from a crashed
// reader). Correctness never rides on the lease: the object seqlock
// beneath still validates every snapshot.

#include "sim/fault_injector.h"
#include "sim/latency_model.h"
#include "sync/scheme_internal.h"

namespace corm::sync {
namespace {

class LeaseRwScheme final : public RemoteSyncScheme {
 public:
  LeaseRwScheme(SyncMedium* medium, const LockTableCoords& table,
        const SchemeOptions& options, uint16_t owner_id)
      : RemoteSyncScheme(medium, table, options, owner_id) {}

  SchemeKind kind() const override { return SchemeKind::kLeaseRw; }

  Status GuardedRead(const core::GlobalAddr& addr, void* buf,
                     size_t size) override {
    const sim::VAddr lock_addr = LockWordAddr(addr);
    RetryState retry(options_.lock_retry, medium_->SyncJitterSeed());
    uint16_t watched_writer = 0;
    Deadline lease(options_.lease_ns);
    bool lease_armed = false;
    while (retry.NextAttempt()) {
      uint64_t prior = 0;
      CORM_RETURN_NOT_OK(
          medium_->LockFetchAdd(table_.r_key, lock_addr, 1, &prior));
      const RwLockWord seen = RwLockWord::Unpack(prior);
      if (seen.writer == 0) {
        // Admitted. (Readers ignore the epoch field: a stale-epoch word
        // only mis-admits us alongside a fenced holder, and the snapshot
        // validation below rejects any bytes that holder tears.)
        medium_->CountSyncEvent(SyncEvent::kLockAcquire);
        Status read = medium_->SnapshotRead(addr, buf, size);
        uint64_t exit_prior = 0;
        // Our own +1 is still in the count, so -1 cannot underflow into
        // the writer field.
        Status exit = medium_->LockFetchAdd(table_.r_key, lock_addr,
                                            ~uint64_t{0}, &exit_prior);
        return read.ok() ? exit : read;
      }
      // Writer present: undo the speculative entry and back off.
      uint64_t undo_prior = 0;
      CORM_RETURN_NOT_OK(medium_->LockFetchAdd(table_.r_key, lock_addr,
                                               ~uint64_t{0}, &undo_prior));
      medium_->CountSyncEvent(SyncEvent::kLockConflict);
      if (!lease_armed || seen.writer != watched_writer) {
        watched_writer = seen.writer;
        lease = Deadline(options_.lease_ns);
        lease_armed = true;
      } else if (lease.Expired()) {
        // Writer froze for a whole lease: presume crash, clear it. Keep
        // the reader count (live readers may be present); the CAS target
        // is the word as we last saw it post-undo.
        const uint64_t word_now = undo_prior - 1;
        RwLockWord cleared = RwLockWord::Unpack(word_now);
        cleared.writer = 0;
        uint64_t steal_prior = 0;
        CORM_RETURN_NOT_OK(medium_->LockCas(table_.r_key, lock_addr, word_now,
                                            cleared.Pack(), &steal_prior));
        if (steal_prior == word_now) {
          medium_->CountSyncEvent(SyncEvent::kLockSteal);
          continue;  // next attempt re-enters
        }
        lease = Deadline(options_.lease_ns);
      }
      sim::Pace(retry.BackoffNs());
    }
    medium_->CountSyncEvent(SyncEvent::kLockTimeout);
    return Status::Timeout("lease_rw read admission: retry budget expired");
  }

  Status AcquireWrite(const core::GlobalAddr& addr) override {
    const sim::VAddr lock_addr = LockWordAddr(addr);
    RetryState retry(options_.lock_retry, medium_->SyncJitterSeed());
    uint64_t watched = 0;
    Deadline lease(options_.lease_ns);
    bool lease_armed = false;
    while (retry.NextAttempt()) {
      // Chained preflight: epoch word + lock word in one doorbell.
      uint64_t epoch_word = 0;
      uint64_t lock_word = 0;
      CORM_RETURN_NOT_OK(medium_->LockReadPair(table_.r_key, EpochWordAddr(),
                                               lock_addr, &epoch_word,
                                               &lock_word));
      const uint16_t cur_epoch = static_cast<uint16_t>(epoch_word);
      const RwLockWord seen = RwLockWord::Unpack(lock_word);
      if (seen.epoch != cur_epoch) {
        // Stale-epoch word: every lease minted under the old epoch died
        // with the seal (PR-7 fencing). Reset and grab in one CAS.
        const RwLockWord fenced{cur_epoch, owner_id_, /*readers=*/0};
        uint64_t prior = 0;
        CORM_RETURN_NOT_OK(medium_->LockCas(table_.r_key, lock_addr,
                                            lock_word, fenced.Pack(), &prior));
        if (prior == lock_word) {
          medium_->CountSyncEvent(SyncEvent::kEpochFence);
          medium_->CountSyncEvent(SyncEvent::kLockAcquire);
          held_epoch_ = cur_epoch;
          return Status::OK();
        }
        continue;  // someone else fenced first; re-read
      }
      if (seen.writer == 0 && seen.readers == 0) {
        const RwLockWord want{cur_epoch, owner_id_, /*readers=*/0};
        uint64_t prior = 0;
        CORM_RETURN_NOT_OK(medium_->LockCas(table_.r_key, lock_addr,
                                            lock_word, want.Pack(), &prior));
        if (prior == lock_word) {
          medium_->CountSyncEvent(SyncEvent::kLockAcquire);
          held_epoch_ = cur_epoch;
          return Status::OK();
        }
        continue;  // lost the race; re-read without backoff
      }
      medium_->CountSyncEvent(SyncEvent::kLockConflict);
      if (!lease_armed || lock_word != watched) {
        watched = lock_word;
        lease = Deadline(options_.lease_ns);
        lease_armed = true;
      } else if (lease.Expired()) {
        // The whole word (writer and reader count) froze for a lease:
        // crashed holder(s). Take the slot under the current epoch.
        const RwLockWord steal{cur_epoch, owner_id_, /*readers=*/0};
        uint64_t prior = 0;
        CORM_RETURN_NOT_OK(medium_->LockCas(table_.r_key, lock_addr,
                                            lock_word, steal.Pack(), &prior));
        if (prior == lock_word) {
          medium_->CountSyncEvent(SyncEvent::kLockSteal);
          medium_->CountSyncEvent(SyncEvent::kLockAcquire);
          held_epoch_ = cur_epoch;
          return Status::OK();
        }
        lease = Deadline(options_.lease_ns);
      }
      sim::Pace(retry.BackoffNs());
    }
    medium_->CountSyncEvent(SyncEvent::kLockTimeout);
    return Status::Timeout("lease_rw write acquire: retry budget expired");
  }

  Status ReleaseWrite(const core::GlobalAddr& addr) override {
    if (auto* inj = sim::GlobalFaultInjector();
        inj != nullptr && inj->ShouldFire(sim::fault_sites::kSyncHolderCrash)) {
      return Status::OK();
    }
    const sim::VAddr lock_addr = LockWordAddr(addr);
    RetryState retry(options_.lock_retry, medium_->SyncJitterSeed());
    while (retry.NextAttempt()) {
      uint64_t lock_word = 0;
      CORM_RETURN_NOT_OK(
          medium_->LockRead(table_.r_key, lock_addr, &lock_word));
      const RwLockWord seen = RwLockWord::Unpack(lock_word);
      if (seen.writer != owner_id_ || seen.epoch != held_epoch_) {
        // Fenced by a seal or stolen after a lease: the slot is no longer
        // ours to release. Backing off IS the correct release — touching
        // the word now would clobber its new owner.
        medium_->CountSyncEvent(SyncEvent::kEpochFence);
        return Status::OK();
      }
      RwLockWord cleared = seen;
      cleared.writer = 0;
      uint64_t prior = 0;
      CORM_RETURN_NOT_OK(medium_->LockCas(table_.r_key, lock_addr, lock_word,
                                          cleared.Pack(), &prior));
      if (prior == lock_word) return Status::OK();
      // A reader bounced through between read and CAS; re-read (bounded by
      // the retry deadline).
      sim::Pace(retry.BackoffNs());
    }
    medium_->CountSyncEvent(SyncEvent::kLockTimeout);
    return Status::Timeout("lease_rw release: retry budget expired");
  }

 private:
  uint16_t held_epoch_ = 0;  // epoch our current write lock was minted under
};

}  // namespace

namespace internal {

std::unique_ptr<RemoteSyncScheme> MakeLeaseRwScheme(
    SyncMedium* medium, const LockTableCoords& table,
    const SchemeOptions& options, uint16_t owner_id) {
  return std::make_unique<LeaseRwScheme>(medium, table, options, owner_id);
}

}  // namespace internal
}  // namespace corm::sync
