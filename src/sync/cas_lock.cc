// RDMA-CAS test-and-set spinlock (DESIGN.md §12, scheme `cas_spinlock`).
//
// One packed word per slot: {held, owner, generation}. Acquire CASes the
// free word to {held=1, us, gen+1}; every attempt is RetryState-bounded
// (exponential backoff + deadline — rule 8 of the project lint applies to
// this file, so no raw spin loops). A waiter that watches the *same* held
// word for `lease_ns` of wall-clock declares the holder crashed (fault
// site sync.holder_crash models exactly that) and steals the slot with a
// generation-bumping CAS. Because the generation moved, the dead — or
// merely slow — holder's eventual release CAS compares against a word that
// no longer exists and fails harmlessly; the guidelines paper's cure for
// the unlock-after-steal race. A slow holder stolen from loses only its
// lock-scheme courtesy, never data: the object seqlock underneath still
// orders the bytes.

#include "sim/fault_injector.h"
#include "sim/latency_model.h"
#include "sync/scheme_internal.h"

namespace corm::sync {
namespace {

class CasSpinlockScheme final : public RemoteSyncScheme {
 public:
  CasSpinlockScheme(SyncMedium* medium, const LockTableCoords& table,
            const SchemeOptions& options, uint16_t owner_id)
      : RemoteSyncScheme(medium, table, options, owner_id) {}

  SchemeKind kind() const override { return SchemeKind::kCasSpinlock; }

  Status GuardedRead(const core::GlobalAddr& addr, void* buf,
                     size_t size) override {
    // Exclusive-lock readers: serialize against scheme-abiding writers,
    // then take the validated snapshot. Validation stays on — a
    // non-scheme writer (server-side compaction, a crashed holder's
    // in-flight RPC) can still move bytes under us.
    CORM_RETURN_NOT_OK(AcquireSlot(addr));
    Status read = medium_->SnapshotRead(addr, buf, size);
    Status release = ReleaseSlot(addr);
    return read.ok() ? release : read;
  }

  Status AcquireWrite(const core::GlobalAddr& addr) override {
    return AcquireSlot(addr);
  }

  Status ReleaseWrite(const core::GlobalAddr& addr) override {
    // Fault site sync.holder_crash: the holder dies between its write and
    // its unlock. The slot stays marked held until a waiter's lease
    // expires and it steals the generation.
    if (auto* inj = sim::GlobalFaultInjector();
        inj != nullptr && inj->ShouldFire(sim::fault_sites::kSyncHolderCrash)) {
      return Status::OK();
    }
    return ReleaseSlot(addr);
  }

 private:
  Status AcquireSlot(const core::GlobalAddr& addr) {
    const sim::VAddr lock_addr = LockWordAddr(addr);
    RetryState retry(options_.lock_retry, medium_->SyncJitterSeed());
    // The word we will CAS from: starts as the pristine free word; every
    // failed CAS teaches us the word's real contents.
    uint64_t expected_free = CasLockWord{}.Pack();
    uint64_t watched = 0;  // last held word observed (lease tracking)
    Deadline lease(options_.lease_ns);
    bool lease_armed = false;
    while (retry.NextAttempt()) {
      const CasLockWord want{/*held=*/true, owner_id_,
                             CasLockWord::Unpack(expected_free).gen + 1};
      uint64_t prior = 0;
      CORM_RETURN_NOT_OK(medium_->LockCas(table_.r_key, lock_addr,
                                          expected_free, want.Pack(), &prior));
      if (prior == expected_free) {
        held_word_ = want.Pack();
        medium_->CountSyncEvent(SyncEvent::kLockAcquire);
        return Status::OK();
      }
      const CasLockWord seen = CasLockWord::Unpack(prior);
      if (!seen.held) {
        // Free, but at a generation we hadn't seen: retry right away with
        // the learned word.
        expected_free = prior;
        continue;
      }
      medium_->CountSyncEvent(SyncEvent::kLockConflict);
      if (!lease_armed || prior != watched) {
        // New (or changed) holder: restart its lease clock.
        watched = prior;
        lease = Deadline(options_.lease_ns);
        lease_armed = true;
      } else if (lease.Expired()) {
        // Holder froze for a whole lease: presume it crashed and steal.
        const CasLockWord steal{/*held=*/true, owner_id_, seen.gen + 1};
        uint64_t stolen_prior = 0;
        CORM_RETURN_NOT_OK(medium_->LockCas(table_.r_key, lock_addr, prior,
                                            steal.Pack(), &stolen_prior));
        if (stolen_prior == prior) {
          held_word_ = steal.Pack();
          medium_->CountSyncEvent(SyncEvent::kLockSteal);
          medium_->CountSyncEvent(SyncEvent::kLockAcquire);
          return Status::OK();
        }
        // The word moved after all (live holder, or a racing thief won):
        // restart the lease on whatever is there now.
        watched = stolen_prior;
        lease = Deadline(options_.lease_ns);
        if (!CasLockWord::Unpack(stolen_prior).held) {
          expected_free = stolen_prior;
        }
      }
      sim::Pace(retry.BackoffNs());
    }
    medium_->CountSyncEvent(SyncEvent::kLockTimeout);
    return Status::Timeout("cas_spinlock acquire: retry budget expired");
  }

  Status ReleaseSlot(const core::GlobalAddr& addr) {
    const sim::VAddr lock_addr = LockWordAddr(addr);
    const CasLockWord held = CasLockWord::Unpack(held_word_);
    // Release keeps our generation so the next acquirer's gen+1 continues
    // the stream.
    const CasLockWord free_word{/*held=*/false, /*owner=*/0, held.gen};
    uint64_t prior = 0;
    CORM_RETURN_NOT_OK(medium_->LockCas(table_.r_key, lock_addr, held_word_,
                                        free_word.Pack(), &prior));
    // prior != held_word_ => a lease thief took the slot from us while we
    // dawdled; the stale release correctly did nothing.
    return Status::OK();
  }

  // The word we hold (a context has at most one write lock outstanding).
  uint64_t held_word_ = 0;
};

}  // namespace

namespace internal {

std::unique_ptr<RemoteSyncScheme> MakeCasSpinlockScheme(
    SyncMedium* medium, const LockTableCoords& table,
    const SchemeOptions& options, uint16_t owner_id) {
  return std::make_unique<CasSpinlockScheme>(medium, table, options, owner_id);
}

}  // namespace internal
}  // namespace corm::sync
