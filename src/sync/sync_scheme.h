// Pluggable remote synchronization for the client data path (DESIGN.md
// §12; ROADMAP open item 4). The SIGMOD'23 guidelines paper "Design
// Guidelines for Correct, Efficient, and Scalable Synchronization using
// One-Sided RDMA" shows lock-scheme choice swings one-sided throughput by
// multiples — and that several popular schemes are silently incorrect.
// CoRM's answer is layered: every scheme here runs *above* the FaRM-style
// snapshot validation (header lock state + cacheline versions/checksum), so
// the worst a broken lock protocol can cost is a wasted retry, never a torn
// read handed to the application. The schemes:
//
//   kOptimistic   paper §3.2: lock-free versioned read, no lock traffic at
//                 all; conflicts surface as torn/locked validation failures
//                 retried by the caller's backoff loop.
//   kCasSpinlock  RDMA-CAS test-and-set spinlock over a per-node lock table
//                 with RetryPolicy-bounded backoff and a generation-stamped
//                 lease so a crashed holder (fault site sync.holder_crash)
//                 is stolen from instead of wedging every peer.
//   kLeaseRw      lease/epoch reader-writer lock: readers FETCH_ADD a
//                 shared count, writers CAS an exclusive owner; the epoch
//                 half reuses the PR-7 seal machinery — a failover seal
//                 bumps the table's sync epoch and every lock word minted
//                 under an older epoch is fenced (reset) by the next
//                 acquirer, exactly like stale-epoch log records.
//
// Layering: this library sits below core (it links only rdma/sim/common).
// Everything node- or client-specific — how lock words are read/CAS'd, how
// object snapshots are validated, where stats land — goes through the
// SyncMedium interface that core::Context implements.

#ifndef CORM_SYNC_SYNC_SCHEME_H_
#define CORM_SYNC_SYNC_SCHEME_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/retry.h"
#include "common/status.h"
#include "core/addr.h"
#include "rdma/rnic.h"

namespace corm::sync {

enum class SchemeKind : uint8_t {
  kOptimistic = 0,
  kCasSpinlock = 1,
  kLeaseRw = 2,
};

inline constexpr int kNumSchemeKinds = 3;

// Canonical names used by config parsing, benches, and CI ("optimistic",
// "cas_spinlock", "lease_rw").
const char* SchemeName(SchemeKind kind);
bool ParseSchemeKind(std::string_view name, SchemeKind* out);

// Remote coordinates of a node's sync-lock table: word 0 is the node's
// sync epoch (bumped by failover seals), words 1..slots are lock words
// hashed by object address. Lives in registered memory like a ReplLogRing.
struct LockTableCoords {
  sim::VAddr base = 0;
  rdma::RKey r_key = 0;
  uint32_t slots = 0;  // lock words after the epoch word
};

// Events a scheme reports for stats attribution (NodeStatShard sync_*
// counters plus the client's own ClientStats).
enum class SyncEvent : uint8_t {
  kLockAcquire,   // a lock (or read admission) was obtained
  kLockConflict,  // an attempt observed a competing holder
  kLockSteal,     // a lease expired and the word was taken from its holder
  kLockTimeout,   // the RetryPolicy budget expired without the lock
  kEpochFence,    // a stale-epoch lock word was fenced (reset or ignored)
};

// The medium through which a scheme touches remote memory: implemented by
// core::Context (one-sided verbs through its QP, or CPU atomics when
// colocated). Lock words are 8-byte remote words in the lock table;
// SnapshotRead is the validated object read every scheme ultimately guards.
class SyncMedium {
 public:
  virtual ~SyncMedium() = default;

  virtual Status LockRead(rdma::RKey r_key, sim::VAddr addr,
                          uint64_t* word) = 0;
  // Reads two lock-table words in one chained post when batching is on
  // (epoch word + lock word — the lease/epoch writer's preflight).
  virtual Status LockReadPair(rdma::RKey r_key, sim::VAddr addr_a,
                              sim::VAddr addr_b, uint64_t* word_a,
                              uint64_t* word_b) = 0;
  // One-sided CAS; `*prior` gets the word's previous contents (the CAS won
  // iff *prior == expected).
  virtual Status LockCas(rdma::RKey r_key, sim::VAddr addr, uint64_t expected,
                         uint64_t desired, uint64_t* prior) = 0;
  virtual Status LockFetchAdd(rdma::RKey r_key, sim::VAddr addr,
                              uint64_t addend, uint64_t* prior) = 0;
  // Validated object snapshot read (RDMA read + header/lock/version
  // checks): kOk, or kObjectMoved / kObjectLocked / kTornRead / kQpBroken.
  virtual Status SnapshotRead(const core::GlobalAddr& addr, void* buf,
                              size_t size) = 0;
  virtual void CountSyncEvent(SyncEvent event) = 0;
  // Deterministic jitter seed for this operation's backoff stream.
  virtual uint64_t SyncJitterSeed() = 0;
};

struct SchemeOptions {
  // Bounds every lock-acquire loop (deadline + backoff). Defaults match
  // RetryPolicy's (2 s deadline, 1-64 us exponential backoff).
  RetryPolicy lock_retry;
  // How long a waiter watches an *unchanged* held lock word before it may
  // steal (crashed-holder recovery). Wall-clock, like every Deadline.
  uint64_t lease_ns = 2'000'000;
};

// --- Lock word layouts (packed 64-bit words in the lock table). -----------

// CAS-spinlock word: held flag, 15-bit owner, 48-bit generation. The
// generation is bumped by every acquire *and* every steal, so a stale
// release CAS (from a holder that was stolen from after its lease expired)
// compares against a word that no longer exists and fails harmlessly — the
// guidelines paper's fix for the unlock-after-steal race.
struct CasLockWord {
  bool held = false;
  uint16_t owner = 0;  // 15 bits; 0 = none
  uint64_t gen = 0;    // 48 bits, wraps

  constexpr uint64_t Pack() const {
    return (static_cast<uint64_t>(held) << 63) |
           (static_cast<uint64_t>(owner & 0x7fff) << 48) |
           (gen & 0xffff'ffff'ffffULL);
  }
  static constexpr CasLockWord Unpack(uint64_t w) {
    CasLockWord l;
    l.held = (w >> 63) != 0;
    l.owner = static_cast<uint16_t>((w >> 48) & 0x7fff);
    l.gen = w & 0xffff'ffff'ffffULL;
    return l;
  }
};

// Lease/epoch reader-writer word: 16-bit epoch, 16-bit writer (0 = none),
// 32-bit reader count in the low half so reader entry/exit is a plain
// FETCH_ADD(±1) that cannot carry into the writer field while any reader
// (including the one doing the exit) holds a count.
struct RwLockWord {
  uint16_t epoch = 0;
  uint16_t writer = 0;   // 0 = no writer
  uint32_t readers = 0;

  constexpr uint64_t Pack() const {
    return (static_cast<uint64_t>(epoch) << 48) |
           (static_cast<uint64_t>(writer) << 32) |
           static_cast<uint64_t>(readers);
  }
  static constexpr RwLockWord Unpack(uint64_t w) {
    RwLockWord l;
    l.epoch = static_cast<uint16_t>(w >> 48);
    l.writer = static_cast<uint16_t>((w >> 32) & 0xffff);
    l.readers = static_cast<uint32_t>(w);
    return l;
  }
};

// --- The scheme interface. -------------------------------------------------

// One instance per client context (single-threaded, like the context that
// owns it; a context has at most one write lock outstanding at a time).
class RemoteSyncScheme {
 public:
  virtual ~RemoteSyncScheme() = default;

  virtual SchemeKind kind() const = 0;

  // One guarded read of the object behind `addr` into `buf`. The scheme
  // decides what synchronization precedes/follows the validated snapshot.
  virtual Status GuardedRead(const core::GlobalAddr& addr, void* buf,
                             size_t size) = 0;

  // Write-side bracket around the RPC write path. Lock schemes serialize
  // scheme-abiding writers (and readers) here; the server's own object
  // seqlock still guards the bytes, so these may be no-ops (kOptimistic).
  virtual Status AcquireWrite(const core::GlobalAddr& addr) = 0;
  virtual Status ReleaseWrite(const core::GlobalAddr& addr) = 0;

 protected:
  RemoteSyncScheme(SyncMedium* medium, const LockTableCoords& table,
                   const SchemeOptions& options, uint16_t owner_id)
      : medium_(medium), table_(table), options_(options), owner_id_(owner_id) {}

  // The lock word guarding `addr`: slot-hashed over the table so unrelated
  // hot objects rarely collide (collisions are safe — just extra
  // contention on the shared word).
  sim::VAddr LockWordAddr(const core::GlobalAddr& addr) const;
  sim::VAddr EpochWordAddr() const { return table_.base; }

  SyncMedium* const medium_;
  const LockTableCoords table_;
  const SchemeOptions options_;
  const uint16_t owner_id_;  // nonzero, 15-bit unique per scheme instance
};

// Factory; `medium` must outlive the scheme. Assigns a process-unique
// owner id.
std::unique_ptr<RemoteSyncScheme> MakeScheme(SchemeKind kind,
                                             SyncMedium* medium,
                                             const LockTableCoords& table,
                                             const SchemeOptions& options);

}  // namespace corm::sync

#endif  // CORM_SYNC_SYNC_SCHEME_H_
