// Seq-word helpers shared by the remote-synchronization layer and the
// keyed index (DESIGN.md §13). A seq word guards a fixed-size region the
// way the object header version guards a slot: writers hold it odd across
// the mutation, readers snapshot the region and accept the snapshot only if
// the seq was even and unchanged around it. These helpers only interpret
// the word — how it is read (CPU atomic on the serving node, one-sided READ
// from a client) is the caller's business, which keeps them usable on both
// sides of the RNIC.

#ifndef CORM_SYNC_REMOTE_SEQ_H_
#define CORM_SYNC_REMOTE_SEQ_H_

#include <cstdint>

namespace corm::sync {

// Odd seq = a writer is inside the region; any snapshot taken under it is
// torn by definition.
inline constexpr bool SeqWriterActive(uint64_t seq) { return (seq & 1) != 0; }

// A snapshot bracketed by (before, after) reads of the seq word is
// consistent iff no writer was active and nothing committed in between.
inline constexpr bool SeqSnapshotConsistent(uint64_t before, uint64_t after) {
  return before == after && !SeqWriterActive(before);
}

}  // namespace corm::sync

#endif  // CORM_SYNC_REMOTE_SEQ_H_
