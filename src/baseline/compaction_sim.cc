#include "baseline/compaction_sim.h"

#include <algorithm>

#include "common/logging.h"

namespace corm::baseline {

const char* AlgorithmName(Algorithm algo, int id_bits) {
  switch (algo) {
    case Algorithm::kNone:
      return "No";
    case Algorithm::kIdeal:
      return "Ideal";
    case Algorithm::kMesh:
      return "Mesh";
    case Algorithm::kCorm:
      switch (id_bits) {
        case 8:
          return "CoRM-8";
        case 12:
          return "CoRM-12";
        case 16:
          return "CoRM-16";
        case 20:
          return "CoRM-20";
        default:
          return "CoRM-n";
      }
    case Algorithm::kHybrid:
      switch (id_bits) {
        case 8:
          return "CoRM-0+CoRM-8";
        case 12:
          return "CoRM-0+CoRM-12";
        case 16:
          return "CoRM-0+CoRM-16";
        default:
          return "CoRM-0+CoRM-n";
      }
    case Algorithm::kAdaptive:
      return "CoRM-auto";
  }
  return "?";
}

AllocatorSim::AllocatorSim(SimConfig config,
                           const alloc::SizeClassTable* classes)
    : config_(config), classes_(classes), rng_(config.seed) {
  per_thread_.resize(config_.num_threads);
  for (auto& classes_of_thread : per_thread_) {
    classes_of_thread.resize(classes_->num_classes());
  }
  live_per_class_.assign(classes_->num_classes(), 0);
}

AllocatorSim::~AllocatorSim() = default;

uint32_t AllocatorSim::SimBlock::TakeFreeSlot() {
  size_t w = free_hint / 64;
  while (w < slot_bits.size() && slot_bits[w] == UINT64_MAX) ++w;
  CORM_CHECK_LT(w, slot_bits.size()) << "TakeFreeSlot on a full block";
  uint32_t slot =
      static_cast<uint32_t>(w * 64 +
                            static_cast<uint32_t>(__builtin_ctzll(~slot_bits[w])));
  CORM_CHECK_LT(slot, num_slots);
  SetSlot(slot);
  free_hint = slot + 1;
  return slot;
}

uint32_t AllocatorSim::SimBlock::TakeRandomFreeSlot(Rng* rng) {
  const uint32_t start = static_cast<uint32_t>(rng->Uniform(num_slots));
  // Scan from a random position (with wraparound) for the next free slot.
  const size_t nwords = slot_bits.size();
  size_t w = start / 64;
  // Mask off bits below `start` in the first word.
  uint64_t masked = slot_bits[w] | ((1ULL << (start % 64)) - 1);
  for (size_t probe = 0; probe <= nwords; ++probe) {
    if (masked != UINT64_MAX) {
      const uint32_t slot =
          static_cast<uint32_t>(w * 64 +
                                static_cast<uint32_t>(__builtin_ctzll(~masked)));
      if (slot < num_slots) {
        SetSlot(slot);
        return slot;
      }
    }
    w = (w + 1) % nwords;
    masked = slot_bits[w];
  }
  CORM_CHECK(false) << "TakeRandomFreeSlot on a full block";
  return 0;
}

bool AllocatorSim::UsesIds() const {
  return config_.algorithm == Algorithm::kCorm ||
         config_.algorithm == Algorithm::kHybrid ||
         config_.algorithm == Algorithm::kAdaptive;
}

int AllocatorSim::ClassIdBits(uint32_t class_idx) const {
  if (config_.algorithm != Algorithm::kAdaptive) return config_.id_bits;
  // Auto-labeling (§4.4.3): enough ID space to keep collisions rare at the
  // class's own slot count, clamped to a sane header budget.
  const uint64_t slots = config_.block_bytes / classes_->ClassSize(class_idx);
  int bits = 6;  // slack: ID space = 64x the slot count
  for (uint64_t v = slots; v > 1; v >>= 1) ++bits;
  return std::min(24, std::max(8, bits));
}

bool AllocatorSim::ClassUsesIds(uint32_t class_idx) const {
  if (!UsesIds()) return false;
  const uint64_t slots = config_.block_bytes / classes_->ClassSize(class_idx);
  const uint64_t id_space = 1ULL << ClassIdBits(class_idx);
  if (slots <= id_space) return true;
  // Vanilla CoRM-n: class not compactable at all; hybrid: fall back to
  // offset-based (CoRM-0) merging.
  return false;
}

bool AllocatorSim::ClassCompactable(uint32_t class_idx) const {
  switch (config_.algorithm) {
    case Algorithm::kNone:
    case Algorithm::kIdeal:
      return false;
    case Algorithm::kMesh:
      return true;
    case Algorithm::kCorm:
      return ClassUsesIds(class_idx);
    case Algorithm::kHybrid:
    case Algorithm::kAdaptive:
      return true;  // IDs where addressable, offsets otherwise
  }
  return false;
}

uint32_t AllocatorSim::OverheadBitsPerObject(uint32_t class_idx) const {
  switch (config_.algorithm) {
    case Algorithm::kNone:
    case Algorithm::kIdeal:
    case Algorithm::kMesh:
      return 0;
    case Algorithm::kCorm:
    case Algorithm::kHybrid:
      // Table 3: 28-bit home block address + n-bit object ID.
      return 28 + static_cast<uint32_t>(config_.id_bits);
    case Algorithm::kAdaptive:
      return 28 + static_cast<uint32_t>(ClassIdBits(class_idx));
  }
  return 0;
}

uint32_t AllocatorSim::NewBlock(uint32_t class_idx, int thread) {
  const uint32_t slots = static_cast<uint32_t>(
      config_.block_bytes / classes_->ClassSize(class_idx));
  CORM_CHECK_GT(slots, 0u) << "class larger than block";
  uint32_t idx;
  if (!free_block_slots_.empty()) {
    idx = free_block_slots_.back();
    free_block_slots_.pop_back();
  } else {
    idx = static_cast<uint32_t>(blocks_.size());
    blocks_.emplace_back();
  }
  SimBlock& b = blocks_[idx];
  b = SimBlock{};
  b.class_idx = class_idx;
  b.num_slots = slots;
  b.thread = thread;
  b.slot_bits.assign((slots + 63) / 64, 0);
  b.slot_object.assign(slots, 0);
  ++active_blocks_;
  return idx;
}

void AllocatorSim::ReleaseBlock(uint32_t block_idx) {
  SimBlock& b = blocks_[block_idx];
  CORM_CHECK_EQ(b.used, 0u);
  auto& nonfull = per_thread_[b.thread][b.class_idx].nonfull;
  nonfull.erase(std::remove(nonfull.begin(), nonfull.end(), block_idx),
                nonfull.end());
  b.retired = true;
  b.slot_bits.clear();
  b.slot_object.clear();
  b.ids.clear();
  free_block_slots_.push_back(block_idx);
  --active_blocks_;
}

SimHandle AllocatorSim::Alloc(uint32_t size) {
  const int thread = static_cast<int>(rng_.Uniform(config_.num_threads));
  return AllocOnThread(size, thread);
}

SimHandle AllocatorSim::AllocOnThread(uint32_t size, int thread) {
  auto class_idx = classes_->ClassFor(size);
  CORM_CHECK(class_idx.ok()) << "object too large: " << size;
  PerThreadClass& ptc = per_thread_[thread][*class_idx];

  uint32_t block_idx = UINT32_MAX;
  while (!ptc.nonfull.empty()) {
    const uint32_t candidate = ptc.nonfull.back();
    if (blocks_[candidate].retired ||
        blocks_[candidate].used == blocks_[candidate].num_slots ||
        blocks_[candidate].thread != thread) {
      ptc.nonfull.pop_back();
      continue;
    }
    block_idx = candidate;
    break;
  }
  if (block_idx == UINT32_MAX) {
    block_idx = NewBlock(*class_idx, thread);
    ptc.nonfull.push_back(block_idx);
  }
  SimBlock& b = blocks_[block_idx];

  const uint32_t slot = b.TakeRandomFreeSlot(&rng_);
  ++b.used;
  if (b.used == b.num_slots) ptc.nonfull.pop_back();

  uint32_t id = 0;
  if (ClassUsesIds(*class_idx)) {
    const int bits = ClassIdBits(*class_idx);
    const uint32_t mask = bits >= 31 ? 0x7fffffff : (1u << bits) - 1;
    do {
      id = static_cast<uint32_t>(rng_.Next()) & mask;
    } while (!b.ids.insert(id).second);
  }

  const auto handle = static_cast<SimHandle>(objects_.size());
  objects_.push_back(SimObject{block_idx, slot, id, true});
  b.slot_object[slot] = static_cast<uint32_t>(handle);
  ++live_objects_;
  ++live_per_class_[*class_idx];
  live_bytes_ += classes_->ClassSize(*class_idx);
  return handle;
}

void AllocatorSim::Free(SimHandle handle) {
  CORM_CHECK_LT(handle, objects_.size());
  SimObject& obj = objects_[handle];
  CORM_CHECK(obj.live) << "double free";
  obj.live = false;
  SimBlock& b = blocks_[obj.block];
  CORM_CHECK(b.SlotUsed(obj.slot));
  b.ClearSlot(obj.slot);
  --b.used;
  if (ClassUsesIds(b.class_idx)) b.ids.erase(obj.id);
  --live_objects_;
  --live_per_class_[b.class_idx];
  live_bytes_ -= classes_->ClassSize(b.class_idx);
  if (b.used == 0) {
    ReleaseBlock(obj.block);
  } else if (b.used + 1 == b.num_slots) {
    per_thread_[b.thread][b.class_idx].nonfull.push_back(obj.block);
  }
}

bool AllocatorSim::CanMerge(const SimBlock& src, const SimBlock& dst) const {
  if (src.class_idx != dst.class_idx) return false;
  if (src.used + dst.used > dst.num_slots) return false;
  if (ClassUsesIds(src.class_idx)) {
    // CoRM-n: random object IDs must be disjoint (§3.1.2).
    const auto& small = src.ids.size() <= dst.ids.size() ? src.ids : dst.ids;
    const auto& large = src.ids.size() <= dst.ids.size() ? dst.ids : src.ids;
    for (uint32_t id : small) {
      if (large.count(id)) return false;
    }
    return true;
  }
  // Mesh / CoRM-0: allocated offsets must be disjoint [36] (word-level AND).
  for (size_t w = 0; w < src.slot_bits.size(); ++w) {
    if (src.slot_bits[w] & dst.slot_bits[w]) return false;
  }
  return true;
}

void AllocatorSim::Merge(uint32_t src_idx, uint32_t dst_idx,
                         CompactionOutcome* out) {
  SimBlock& src = blocks_[src_idx];
  SimBlock& dst = blocks_[dst_idx];
  const bool ids = ClassUsesIds(src.class_idx);
  for (uint32_t s = 0; s < src.num_slots; ++s) {
    if (!src.SlotUsed(s)) continue;
    const uint32_t obj_idx = src.slot_object[s];
    SimObject& obj = objects_[obj_idx];
    uint32_t dslot = s;
    if (dst.SlotUsed(dslot)) {
      // Offset conflict: only possible in ID mode; relocate within dst.
      CORM_CHECK(ids);
      dslot = dst.TakeFreeSlot();
      ++out->objects_moved;
    } else {
      dst.SetSlot(dslot);
    }
    dst.slot_object[dslot] = obj_idx;
    ++dst.used;
    if (ids) CORM_CHECK(dst.ids.insert(obj.id).second);
    obj.block = dst_idx;
    obj.slot = dslot;
    src.ClearSlot(s);
    --src.used;
  }
  dst.free_hint = 0;  // conservatively rescan after a merge
  ReleaseBlock(src_idx);
  ++out->merges;
}

CompactionOutcome AllocatorSim::Compact() {
  CompactionOutcome out;
  out.blocks_before = active_blocks_;
  if (config_.algorithm == Algorithm::kNone ||
      config_.algorithm == Algorithm::kIdeal) {
    out.blocks_after = active_blocks_;
    return out;
  }

  // Gather candidates per class across all threads (the leader's collected
  // pool), sorted ascending by utilization.
  for (uint32_t c = 0; c < classes_->num_classes(); ++c) {
    if (!ClassCompactable(c)) continue;
    std::vector<uint32_t> pool;
    for (uint32_t i = 0; i < blocks_.size(); ++i) {
      if (!blocks_[i].retired && blocks_[i].class_idx == c &&
          blocks_[i].used > 0 && blocks_[i].used < blocks_[i].num_slots) {
        pool.push_back(i);
      }
    }
    std::sort(pool.begin(), pool.end(), [&](uint32_t a, uint32_t b) {
      return blocks_[a].used < blocks_[b].used;
    });
    // Greedy: merge the least utilized block into the most utilized
    // compatible destination; iterate to a fixpoint.
    size_t lo = 0;
    while (lo < pool.size()) {
      const uint32_t src_idx = pool[lo];
      size_t found = pool.size();
      for (size_t hi = pool.size(); hi-- > lo + 1;) {
        if (CanMerge(blocks_[src_idx], blocks_[pool[hi]])) {
          found = hi;
          break;
        }
      }
      if (found == pool.size()) {
        ++lo;
        continue;
      }
      const uint32_t dst_idx = pool[found];
      Merge(src_idx, dst_idx, &out);
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(lo));
      --found;
      // Re-position dst by its new utilization; drop it if it became full.
      const uint32_t moved = pool[found];
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(found));
      if (blocks_[moved].used < blocks_[moved].num_slots) {
        auto pos = std::lower_bound(
            pool.begin(), pool.end(), moved, [&](uint32_t a, uint32_t b) {
              return blocks_[a].used < blocks_[b].used;
            });
        pool.insert(pos, moved);
      }
    }
    // Rebuild non-full lists for this class (ownership threads unchanged
    // for surviving blocks).
    for (auto& thread_classes : per_thread_) {
      thread_classes[c].nonfull.clear();
    }
    for (uint32_t i = 0; i < blocks_.size(); ++i) {
      const SimBlock& b = blocks_[i];
      if (!b.retired && b.class_idx == c && b.used < b.num_slots) {
        per_thread_[b.thread][c].nonfull.push_back(i);
      }
    }
  }
  out.blocks_after = active_blocks_;
  return out;
}

uint64_t AllocatorSim::ActiveBytes() const {
  const uint64_t bytes =
      static_cast<uint64_t>(active_blocks_) * config_.block_bytes;
  // Per-object header overhead is charged on every live object
  // (paper §4.4.1-§4.4.2: "the reported data includes this overhead");
  // the adaptive strategy's overhead varies by class.
  uint64_t overhead_bits = 0;
  for (uint32_t c = 0; c < classes_->num_classes(); ++c) {
    overhead_bits += live_per_class_[c] * OverheadBitsPerObject(c);
  }
  return bytes + (overhead_bits + 7) / 8;
}

uint64_t AllocatorSim::LiveBytes() const { return live_bytes_; }

uint64_t AllocatorSim::IdealBytes() const {
  // Perfect compactor: per class, live objects packed into whole blocks.
  std::vector<uint64_t> live_per_class(classes_->num_classes(), 0);
  for (const SimBlock& b : blocks_) {
    if (!b.retired) live_per_class[b.class_idx] += b.used;
  }
  uint64_t bytes = 0;
  for (uint32_t c = 0; c < classes_->num_classes(); ++c) {
    if (live_per_class[c] == 0) continue;
    const uint64_t slots = config_.block_bytes / classes_->ClassSize(c);
    const uint64_t blocks = (live_per_class[c] + slots - 1) / slots;
    bytes += blocks * config_.block_bytes;
  }
  return bytes;
}

size_t AllocatorSim::num_blocks() const { return active_blocks_; }

}  // namespace corm::baseline
