// FaRM baseline (paper §4, footnote 2).
//
// "FaRM is not open-source, therefore, we emulated FaRM (including its
// cacheline consistency check) following the publicly available
// information." We mirror that emulation the same way the paper does: the
// same allocator, the same FaRM-style per-cacheline version consistency
// protocol, 1 MiB blocks, but no object IDs, no pointer correction, and no
// memory compaction — exactly the Table 1 feature delta.

#ifndef CORM_BASELINE_FARM_NODE_H_
#define CORM_BASELINE_FARM_NODE_H_

#include <memory>

#include "core/corm_node.h"

namespace corm::baseline {

// FaRM-like configuration: object IDs disabled (id_bits = 0 makes every
// class non-compactable, so Compact() refuses and pointers are always
// direct), 1 MiB blocks as in FaRM.
inline core::CormConfig FarmConfig() {
  core::CormConfig config;
  config.object_id_bits = 0;  // disables IDs, metadata maps and compaction
  config.block_pages = 256;   // 1 MiB
  return config;
}

// A FaRM-emulating node is a CormNode with FarmConfig(); reads go through
// the identical DirectRead/consistency-check path, so CoRM-vs-FaRM
// throughput comparisons isolate the compaction machinery.
inline std::unique_ptr<core::CormNode> MakeFarmNode(
    core::CormConfig overrides = FarmConfig()) {
  overrides.object_id_bits = 0;
  return std::make_unique<core::CormNode>(overrides);
}

}  // namespace corm::baseline

#endif  // CORM_BASELINE_FARM_NODE_H_
