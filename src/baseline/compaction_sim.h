// Abstract allocator + compaction simulator for the memory studies
// (paper §4.4, Figures 17-19).
//
// The runtime CoRM node stores real bytes; for multi-gigabyte traces the
// paper's own memory study only needs allocator *metadata*: which slots and
// object IDs each block holds. This simulator models exactly that, and
// implements every compaction strategy the paper compares:
//
//   kNone   -- no compaction ("No")
//   kIdeal  -- perfect compactor: live objects packed into minimal blocks
//   kMesh   -- merge blocks only when allocated offsets are disjoint [36]
//   kCorm   -- CoRM-n: merge when random n-bit object IDs are disjoint;
//              classes whose blocks hold more than 2^n objects cannot be
//              compacted (vanilla mode, §4.4.2)
//   kHybrid -- CoRM-0+CoRM-n: classes not addressable by n-bit IDs fall
//              back to offset-based merging (§4.4.1)
//   kAdaptive - the §4.4.3 future-work auto-labeling strategy: each size
//              class picks its own ID width from its slot count
//              (log2(slots) + 6 bits of slack, clamped to [8, 24]), so
//              every class is compactable and large-object classes pay
//              fewer header bits
//
// Reported active memory includes the per-object header overhead of each
// strategy (Table 3): Mesh 0 bits, CoRM-0 28 bits (virtual home address),
// CoRM-n 28+n bits.

#ifndef CORM_BASELINE_COMPACTION_SIM_H_
#define CORM_BASELINE_COMPACTION_SIM_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "alloc/size_classes.h"
#include "common/byte_units.h"
#include "common/random.h"

namespace corm::baseline {

enum class Algorithm { kNone, kIdeal, kMesh, kCorm, kHybrid, kAdaptive };

const char* AlgorithmName(Algorithm algo, int id_bits);

struct SimConfig {
  size_t block_bytes = kMiB;  // FaRM-sized blocks (paper §4.4)
  int num_threads = 1;        // allocating thread chosen uniformly at random
  Algorithm algorithm = Algorithm::kCorm;
  int id_bits = 16;           // n in CoRM-n
  uint64_t seed = 1;
};

// Object handle returned by Alloc.
using SimHandle = uint64_t;

struct CompactionOutcome {
  size_t blocks_before = 0;
  size_t blocks_after = 0;
  size_t merges = 0;
  size_t objects_moved = 0;
};

class AllocatorSim {
 public:
  AllocatorSim(SimConfig config, const alloc::SizeClassTable* classes);
  ~AllocatorSim();

  AllocatorSim(const AllocatorSim&) = delete;
  AllocatorSim& operator=(const AllocatorSim&) = delete;

  // Allocates an object of `size` bytes on a uniformly random thread.
  SimHandle Alloc(uint32_t size);
  // Allocates on a specific thread.
  SimHandle AllocOnThread(uint32_t size, int thread);
  void Free(SimHandle handle);

  // Runs the configured compaction to a fixpoint (no more mergeable pairs).
  // kNone/kIdeal are no-ops: kIdeal is accounted analytically.
  CompactionOutcome Compact();

  // --- Accounting. ---------------------------------------------------------
  // Granted block memory + per-object header overhead for this strategy.
  uint64_t ActiveBytes() const;
  // Sum of live objects' class sizes.
  uint64_t LiveBytes() const;
  // The ideal compactor's active memory: minimal whole blocks per class.
  uint64_t IdealBytes() const;
  uint64_t live_objects() const { return live_objects_; }
  size_t num_blocks() const;

 private:
  struct SimBlock {
    uint32_t class_idx = 0;
    uint32_t num_slots = 0;
    uint32_t used = 0;
    int thread = 0;
    uint32_t free_hint = 0;                  // lowest possibly-free slot
    std::vector<uint64_t> slot_bits;         // occupancy bitmap (1 = used)
    std::vector<uint32_t> slot_object;       // object index per slot
    std::unordered_set<uint32_t> ids;        // CoRM modes only
    bool retired = false;

    bool SlotUsed(uint32_t slot) const {
      return (slot_bits[slot / 64] >> (slot % 64)) & 1;
    }
    void SetSlot(uint32_t slot) { slot_bits[slot / 64] |= 1ULL << (slot % 64); }
    void ClearSlot(uint32_t slot) {
      slot_bits[slot / 64] &= ~(1ULL << (slot % 64));
      if (slot < free_hint) free_hint = slot;
    }
    // First free slot at or after free_hint (there must be one).
    uint32_t TakeFreeSlot();
    // Uniformly random free slot (there must be one). Mesh's real
    // allocator randomizes in-span placement to maximize meshability
    // [36], and the paper's §3.4 probability model assumes uniform
    // offsets — allocation placement must match.
    uint32_t TakeRandomFreeSlot(Rng* rng);
  };

  struct SimObject {
    uint32_t block = 0;  // index into blocks_
    uint32_t slot = 0;
    uint32_t id = 0;     // up to 31 ID bits (CoRM-20 needs > 16)
    bool live = false;
  };

  struct PerThreadClass {
    std::vector<uint32_t> nonfull;  // block indices with a free slot
  };

  bool UsesIds() const;
  bool ClassUsesIds(uint32_t class_idx) const;  // hybrid: per-class choice
  bool ClassCompactable(uint32_t class_idx) const;
  // Effective ID width for a class (config-wide for CoRM-n; per-class for
  // the adaptive strategy).
  int ClassIdBits(uint32_t class_idx) const;
  uint32_t OverheadBitsPerObject(uint32_t class_idx) const;

  uint32_t NewBlock(uint32_t class_idx, int thread);
  void ReleaseBlock(uint32_t block_idx);

  // True when `src` can merge into `dst` under the configured predicate.
  bool CanMerge(const SimBlock& src, const SimBlock& dst) const;
  void Merge(uint32_t src_idx, uint32_t dst_idx, CompactionOutcome* out);

  const SimConfig config_;
  const alloc::SizeClassTable* const classes_;
  Rng rng_;

  std::vector<SimBlock> blocks_;
  std::vector<uint32_t> free_block_slots_;  // recycled indices in blocks_
  std::vector<SimObject> objects_;
  std::vector<std::vector<PerThreadClass>> per_thread_;  // [thread][class]
  std::vector<uint64_t> live_per_class_;
  uint64_t live_objects_ = 0;
  uint64_t live_bytes_ = 0;
  size_t active_blocks_ = 0;
};

}  // namespace corm::baseline

#endif  // CORM_BASELINE_COMPACTION_SIM_H_
