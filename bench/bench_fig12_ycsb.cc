// Figure 12: aggregate YCSB throughput under uniform and Zipf(0.99) key
// distributions, read:write mixes 100:0 / 95:5 / 50:50, and 1..32 clients.
// Reads use either RPC ("RPC" series) or one-sided RDMA ("RDMA" series);
// writes always use RPC.
//
// Method: the paper's 8,000,000 x 32 B objects are loaded; per
// configuration we sample the modeled round-trip of each op type and the
// RNIC MTT miss rate, then apply the bottleneck model (bench_common.h):
// clients are closed-loop (1 outstanding request), RPC ops saturate the
// NIC's two-sided message rate, and one-sided reads saturate the RNIC read
// engine whose service time grows with translation-cache misses — which is
// how the Zipf-vs-uniform gap arises (paper §4.2.2).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "workload/ycsb.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const size_t num_objects = FlagU64(argc, argv, "objects", 8'000'000);
  const int samples = static_cast<int>(FlagU64(argc, argv, "samples", 60'000));

  core::CormConfig config;
  config.num_workers = 8;
  config.block_pages = 1;
  config.rnic_model = sim::RnicModel::kConnectX3;  // the paper's cluster
  CormNode node(config);
  auto ctx = Context::Create(&node);

  std::printf("loading %zu x 32 B objects...\n", num_objects);
  auto addrs = node.BulkAlloc(num_objects, 24);  // 24 B payload -> 32 B slot
  CORM_CHECK(addrs.ok());

  struct Mix {
    const char* name;
    double read_fraction;
  };
  const Mix mixes[] = {{"100:0", 1.0}, {"95:5", 0.95}, {"50:50", 0.5}};
  const int client_counts[] = {1, 2, 4, 8, 16, 32};

  for (bool zipf : {false, true}) {
    PrintTitle(std::string("Figure 12: aggregate throughput, Kreq/s — ") +
               (zipf ? "Zipf 0.99" : "Uniform"));
    std::vector<std::string> header = {"series"};
    for (int c : client_counts) header.push_back(std::to_string(c) + "cl");
    PrintRow(header);

    for (bool rdma_reads : {false, true}) {
      for (const Mix& mix : mixes) {
        workload::YcsbConfig wconfig;
        wconfig.num_keys = num_objects;
        wconfig.zipf_theta = zipf ? 0.99 : 0.0;
        wconfig.read_fraction = mix.read_fraction;
        wconfig.seed = 11;
        workload::YcsbGenerator gen(wconfig);

        // Sample modeled op latencies and the MTT miss rate.
        node.rnic()->ResetMttCache();
        MttMissProbe probe(node.rnic());
        std::vector<uint8_t> buf(64);
        uint64_t total_ns = 0;
        for (int i = 0; i < samples; ++i) {
          auto op = gen.Next();
          GlobalAddr addr = (*addrs)[op.key];
          if (op.is_read && rdma_reads) {
            CORM_CHECK(ctx->DirectRead(addr, buf.data(), 24).ok());
          } else if (op.is_read) {
            CORM_CHECK(ctx->Read(&addr, buf.data(), 24).ok());
          } else {
            CORM_CHECK(ctx->Write(&addr, buf.data(), 24).ok());
          }
          total_ns += ctx->stats().last_op_ns;
        }

        ThroughputModel tm;
        tm.avg_op_ns = static_cast<double>(total_ns) / samples;
        tm.rpc_fraction =
            rdma_reads ? 1.0 - mix.read_fraction : 1.0;
        tm.rdma_fraction = rdma_reads ? mix.read_fraction : 0.0;
        tm.mtt_miss_rate = probe.MissRate();
        tm.node = &node;

        std::vector<std::string> row = {std::string(mix.name) +
                                        (rdma_reads ? " RDMA" : " RPC")};
        for (int clients : client_counts) {
          row.push_back(Kreq(tm.OpsPerSec(clients)));
        }
        PrintRow(row);
      }
    }
  }
  std::printf(
      "\nPaper shape: RPC series saturate ~700 Kreq/s beyond 4 clients;\n"
      "RDMA 50:50 reaches ~1250 Kreq/s (2x RPC); read-only RDMA reaches\n"
      "~1750 (uniform) and ~2200 Kreq/s (Zipf — better RNIC translation\n"
      "cache locality).\n");
  return 0;
}
