// Sync-scheme shootout + doorbell-batching A/B (DESIGN.md §12).
//
// Part 1 — doorbell batching: a batch of 8 one-sided object reads posted
// as one WR chain (one doorbell + one completion) against the same batch
// with batching disabled (8 full round trips through the sequential
// fallback). Modeled nanoseconds, deterministic after an MTT warm-up; the
// gate is self-enforcing: batched p50 must beat unbatched by >= 1.5x or
// the bench exits non-zero.
//
// Part 2 — scheme shootout: optimistic / cas_spinlock / lease_rw under two
// contention levels (low: uniform over many objects; high: every client
// hammers a small hot set), closed-loop reader and writer threads, modeled
// per-op latency sampled from ClientStats::last_op_ns. Lock traffic is
// real — conflicts, lease steals and timeouts come from the node's sync_*
// shard counters.
//
// Output: paper-style tables on stdout plus BENCH_sync.json (schema in
// EXPERIMENTS.md, "Synchronization shootout" section). --check=<floor.json>
// additionally compares the measured batch speedup against a checked-in
// floor — the CI sync-matrix gate.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/histogram.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "sync/sync_scheme.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormConfig;
using core::CormNode;
using core::GlobalAddr;

namespace {

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

constexpr uint32_t kPayload = 64;
constexpr size_t kBatch = 8;

// ---------------------------------------------------------------------------
// Part 1: doorbell batching A/B.
// ---------------------------------------------------------------------------

struct BatchResult {
  uint64_t batched_p50_ns = 0;
  uint64_t unbatched_p50_ns = 0;
  double speedup = 0.0;
  uint64_t batches = 0;      // chained posts issued on the batching node
  uint64_t batched_wrs = 0;  // WRs carried by those chains
};

// p50 modeled ns of DirectReadBatch(kBatch) on a node with the given
// batching setting (off = the sequential per-object fallback, same API).
uint64_t MeasureBatchP50(bool batching_on, size_t samples, uint64_t* batches,
                         uint64_t* batched_wrs) {
  CormConfig cfg;
  cfg.num_workers = 1;
  cfg.doorbell_batching = batching_on;
  CormNode node(cfg);
  auto addrs = node.BulkAlloc(kBatch, kPayload);
  CORM_CHECK(addrs.ok());
  auto ctx = Context::Create(&node);
  std::vector<uint8_t> bufs(kBatch * kPayload);
  std::vector<Status> statuses(kBatch);
  // Warm the RNIC translation cache so the A/B compares doorbell counts,
  // not cold-MTT faults.
  for (const auto& a : *addrs) {
    CORM_CHECK(ctx->DirectRead(a, bufs.data(), kPayload).ok());
  }
  Histogram hist = SampleLatency(ctx.get(), static_cast<int>(samples), [&](int) {
    CORM_CHECK(ctx->DirectReadBatch(addrs->data(), kBatch, bufs.data(),
                                    kPayload, statuses.data())
                   .ok());
  });
  if (batches) *batches = node.stats().doorbell_batches;
  if (batched_wrs) *batched_wrs = node.stats().doorbell_batched_wrs;
  return hist.Percentile(0.5);
}

BatchResult RunBatchAb(size_t samples) {
  BatchResult r;
  r.batched_p50_ns =
      MeasureBatchP50(true, samples, &r.batches, &r.batched_wrs);
  r.unbatched_p50_ns = MeasureBatchP50(false, samples, nullptr, nullptr);
  r.speedup = r.batched_p50_ns == 0
                  ? 0.0
                  : static_cast<double>(r.unbatched_p50_ns) /
                        static_cast<double>(r.batched_p50_ns);
  return r;
}

// ---------------------------------------------------------------------------
// Part 2: scheme shootout under contention.
// ---------------------------------------------------------------------------

struct Contention {
  const char* name;    // "low" / "high"
  size_t objects;      // working-set size every thread draws from
  int readers;
  int writers;
};

struct SchemeResult {
  uint64_t read_p50_ns = 0;
  uint64_t read_p99_ns = 0;
  uint64_t write_p50_ns = 0;
  uint64_t write_p99_ns = 0;
  uint64_t read_failures = 0;   // ops that exhausted their retry budget
  uint64_t write_failures = 0;
  uint64_t acquires = 0;
  uint64_t conflicts = 0;
  uint64_t steals = 0;
  uint64_t timeouts = 0;
  uint64_t fences = 0;
};

SchemeResult RunScheme(sync::SchemeKind kind, const Contention& c,
                       size_t iters) {
  CormConfig cfg;
  cfg.num_workers = 2;
  cfg.sync_scheme = kind;
  cfg.sync_lease_ns = 1'000'000;
  CormNode node(cfg);
  auto addrs = node.BulkAlloc(c.objects, kPayload);
  CORM_CHECK(addrs.ok());

  SchemeResult r;
  Histogram reads, writes;
  uint64_t read_fail = 0, write_fail = 0;
  std::mutex merge_mu;

  auto run = [&](int tid, bool writer) {
    auto ctx = Context::Create(&node);
    std::vector<GlobalAddr> mine = *addrs;  // private copy: corrections
    std::vector<uint8_t> buf(kPayload, static_cast<uint8_t>(tid));
    Histogram hist;
    uint64_t failures = 0;
    Rng rng(static_cast<uint64_t>(tid) * 7919 + 13);
    for (size_t i = 0; i < iters; ++i) {
      GlobalAddr& a = mine[rng.Uniform(mine.size())];
      const Status st = writer ? ctx->Write(&a, buf.data(), kPayload)
                               : ctx->ReadWithRecovery(&a, buf.data(),
                                                       kPayload);
      if (st.ok()) {
        hist.Record(ctx->stats().last_op_ns);
      } else {
        ++failures;
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    (writer ? writes : reads).Merge(hist);
    (writer ? write_fail : read_fail) += failures;
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < c.readers; ++t) {
    threads.emplace_back(run, t + 1, /*writer=*/false);
  }
  for (int t = 0; t < c.writers; ++t) {
    threads.emplace_back(run, c.readers + t + 1, /*writer=*/true);
  }
  for (auto& th : threads) th.join();

  r.read_p50_ns = reads.Percentile(0.5);
  r.read_p99_ns = reads.Percentile(0.99);
  r.write_p50_ns = writes.Percentile(0.5);
  r.write_p99_ns = writes.Percentile(0.99);
  r.read_failures = read_fail;
  r.write_failures = write_fail;
  const core::NodeStats s = node.stats();
  r.acquires = s.sync_lock_acquires;
  r.conflicts = s.sync_lock_conflicts;
  r.steals = s.sync_lock_steals;
  r.timeouts = s.sync_lock_timeouts;
  r.fences = s.sync_epoch_fences;
  return r;
}

// Minimal numeric-field extraction — enough for our own flat floor file.
double JsonNumber(const std::string& text, const std::string& key, bool* ok) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    *ok = false;
    return 0;
  }
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) {
    *ok = false;
    return 0;
  }
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);

  const size_t batch_samples = FlagU64(argc, argv, "batch_samples", 2000);
  const size_t iters = FlagU64(argc, argv, "iters", 1500);
  const int readers = static_cast<int>(FlagU64(argc, argv, "readers", 3));
  const int writers = static_cast<int>(FlagU64(argc, argv, "writers", 1));
  const size_t objects = FlagU64(argc, argv, "objects", 256);
  const size_t hot = FlagU64(argc, argv, "hot", 8);
  const std::string json_path = FlagStr(argc, argv, "json", "BENCH_sync.json");
  const std::string floor_path = FlagStr(argc, argv, "check", "");

  // --- Part 1: doorbell batching. ----------------------------------------
  PrintTitle("Doorbell batching: batch of 8 one-sided reads (modeled ns)");
  const BatchResult b = RunBatchAb(batch_samples);
  PrintRow({"mode", "p50_us", "chains", "wrs"}, 16);
  PrintRow({"batched", Us(b.batched_p50_ns), std::to_string(b.batches),
            std::to_string(b.batched_wrs)},
           16);
  PrintRow({"unbatched", Us(b.unbatched_p50_ns), "0", "0"}, 16);
  std::printf("speedup=%.2fx (gate: >= 1.50x)\n", b.speedup);

  // --- Part 2: scheme shootout. ------------------------------------------
  const Contention levels[] = {
      {"low", objects, readers, writers},
      // High contention: everyone hammers a hot set smaller than the
      // thread count's reach, writers matched to readers.
      {"high", hot, readers, std::max(writers, readers)},
  };
  SchemeResult results[sync::kNumSchemeKinds][2];
  for (int k = 0; k < sync::kNumSchemeKinds; ++k) {
    const auto kind = static_cast<sync::SchemeKind>(k);
    for (int l = 0; l < 2; ++l) {
      results[k][l] = RunScheme(kind, levels[l], iters);
    }
  }
  for (int l = 0; l < 2; ++l) {
    const Contention& c = levels[l];
    PrintTitle(std::string("Scheme shootout: ") + c.name + " contention (" +
               std::to_string(c.readers) + "r:" + std::to_string(c.writers) +
               "w over " + std::to_string(c.objects) + " objects)");
    PrintRow({"scheme", "read_p50_us", "read_p99_us", "write_p50_us",
              "write_p99_us", "conflicts", "steals", "timeouts"},
             13);
    for (int k = 0; k < sync::kNumSchemeKinds; ++k) {
      const SchemeResult& r = results[k][l];
      PrintRow({sync::SchemeName(static_cast<sync::SchemeKind>(k)),
                Us(r.read_p50_ns), Us(r.read_p99_ns), Us(r.write_p50_ns),
                Us(r.write_p99_ns), std::to_string(r.conflicts),
                std::to_string(r.steals), std::to_string(r.timeouts)},
               13);
    }
  }
  std::printf(
      "\nexpectation: optimistic wins reads outright (no lock traffic);\n"
      "cas_spinlock serializes writers at the cost of lock round trips;\n"
      "lease_rw admits readers with one FETCH_ADD pair and keeps writer\n"
      "p99 bounded under contention. Validation is on in every scheme, so\n"
      "none of them can hand a torn read to the application.\n");

  // --- JSON artifact (schema: EXPERIMENTS.md, "Synchronization"). --------
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"sync\",\n";
    out << "  \"config\": {\"payload\": " << kPayload
        << ", \"batch\": " << kBatch << ", \"batch_samples\": " << batch_samples
        << ", \"iters\": " << iters << ", \"readers\": " << readers
        << ", \"writers\": " << writers << ", \"objects\": " << objects
        << ", \"hot\": " << hot << "},\n";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"batching\": {\"batched_p50_ns\": %llu, "
                  "\"unbatched_p50_ns\": %llu, \"batch_speedup\": %.3f, "
                  "\"chains\": %llu, \"chained_wrs\": %llu},\n",
                  static_cast<unsigned long long>(b.batched_p50_ns),
                  static_cast<unsigned long long>(b.unbatched_p50_ns),
                  b.speedup, static_cast<unsigned long long>(b.batches),
                  static_cast<unsigned long long>(b.batched_wrs));
    out << buf;
    out << "  \"schemes\": {\n";
    for (int k = 0; k < sync::kNumSchemeKinds; ++k) {
      out << "    \"" << sync::SchemeName(static_cast<sync::SchemeKind>(k))
          << "\": {";
      for (int l = 0; l < 2; ++l) {
        const SchemeResult& r = results[k][l];
        std::snprintf(
            buf, sizeof(buf),
            "%s\"%s\": {\"read_p50_ns\": %llu, \"read_p99_ns\": %llu, "
            "\"write_p50_ns\": %llu, \"write_p99_ns\": %llu, "
            "\"read_failures\": %llu, \"write_failures\": %llu, "
            "\"acquires\": %llu, \"conflicts\": %llu, \"steals\": %llu, "
            "\"timeouts\": %llu, \"fences\": %llu}",
            l ? ",\n      " : "", levels[l].name,
            static_cast<unsigned long long>(r.read_p50_ns),
            static_cast<unsigned long long>(r.read_p99_ns),
            static_cast<unsigned long long>(r.write_p50_ns),
            static_cast<unsigned long long>(r.write_p99_ns),
            static_cast<unsigned long long>(r.read_failures),
            static_cast<unsigned long long>(r.write_failures),
            static_cast<unsigned long long>(r.acquires),
            static_cast<unsigned long long>(r.conflicts),
            static_cast<unsigned long long>(r.steals),
            static_cast<unsigned long long>(r.timeouts),
            static_cast<unsigned long long>(r.fences));
        out << buf;
      }
      out << "}" << (k + 1 < sync::kNumSchemeKinds ? "," : "") << "\n";
    }
    out << "  },\n";
    out << "  \"gate\": {\"min_batch_speedup\": 1.5}\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  int rc = 0;

  // Self-enforcing acceptance gate: chaining 8 reads behind one doorbell
  // must beat 8 round trips by at least 1.5x.
  if (b.speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: batch of %zu reads only %.2fx faster than unbatched "
                 "(gate: >= 1.50x)\n",
                 kBatch, b.speedup);
    rc = 1;
  }

  // Floor check (CI sync-matrix): the measured speedup must also meet the
  // checked-in floor, which may be tightened beyond the hard 1.5x gate.
  if (!floor_path.empty()) {
    std::ifstream in(floor_path);
    if (!in) {
      std::fprintf(stderr, "check: cannot read floor file %s\n",
                   floor_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    bool ok = true;
    const double floor = JsonNumber(ss.str(), "batch_speedup", &ok);
    if (!ok) {
      std::fprintf(stderr, "check: floor file lacks \"batch_speedup\"\n");
      return 2;
    }
    if (b.speedup < floor) {
      std::fprintf(stderr,
                   "check: batch_speedup %.2fx below the floor %.2fx\n",
                   b.speedup, floor);
      rc = 1;
    } else {
      std::printf("check: batch_speedup %.2fx >= floor %.2fx\n", b.speedup,
                  floor);
    }
  }
  if (rc == 0) std::printf("gate: OK\n");
  return rc;
}
