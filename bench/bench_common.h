// Shared helpers for the figure/table reproduction benches.
//
// Latency figures come from the modeled-nanosecond accounting the client
// library keeps (ClientStats::last_op_ns): each op's network legs, RNIC
// faults and charged server time. Throughput figures are derived with the
// bottleneck model in ThroughputModel below — see EXPERIMENTS.md for why
// wall-clock parallelism is not used (single-CPU host; pacing documented in
// DESIGN.md §2).

#ifndef CORM_BENCH_BENCH_COMMON_H_
#define CORM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/client.h"
#include "core/corm_node.h"

namespace corm::bench {

// ---------------------------------------------------------------------------
// Output formatting: every bench prints paper-style series tables.
// ---------------------------------------------------------------------------

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Us(uint64_t ns) { return Fmt("%.2f", ns / 1000.0); }
inline std::string Kreq(double per_sec) { return Fmt("%.0f", per_sec / 1e3); }
inline std::string Gib(uint64_t bytes) {
  return Fmt("%.3f", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
}

// Simple --key=value flag lookup.
inline uint64_t FlagU64(int argc, char** argv, const char* name,
                        uint64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

// ---------------------------------------------------------------------------
// Modeled-latency sampling.
// ---------------------------------------------------------------------------

// Runs `op` n times, recording the client's modeled per-op nanoseconds.
template <typename Fn>
Histogram SampleLatency(core::Context* ctx, int n, Fn&& op) {
  Histogram hist;
  for (int i = 0; i < n; ++i) {
    op(i);
    hist.Record(ctx->stats().last_op_ns);
  }
  return hist;
}

// ---------------------------------------------------------------------------
// Throughput bottleneck model (see EXPERIMENTS.md).
//
// Each closed-loop client with one outstanding request issues ops at
// 1/avg_rtt. Aggregate throughput is additionally capped by the server
// NIC: two-sided messages (RPC) drain at nic_msg_rate (two messages per
// RPC), and the one-sided read engine serves a read every
// (RnicReadServiceNs + avg MTT-miss penalty) nanoseconds.
// ---------------------------------------------------------------------------

struct ThroughputModel {
  double avg_op_ns = 0;        // modeled client round trip
  double rpc_fraction = 0;     // fraction of ops using the RPC path
  double rdma_fraction = 0;    // fraction of ops using one-sided reads
  double mtt_miss_rate = 0;    // misses per one-sided read
  const core::CormNode* node = nullptr;

  double OpsPerSec(int clients) const {
    const double client_bound =
        clients * (1e9 / std::max(avg_op_ns, 1.0));
    // Server NIC capacity is shared between the two engines: an RPC costs
    // two two-sided messages, a one-sided read costs one read-engine slot
    // whose service time grows with translation-cache misses.
    double server_ns_per_op = 0;
    if (rpc_fraction > 0 && node->config().nic_msg_rate > 0) {
      server_ns_per_op += rpc_fraction * 2.0 * 1e9 /
                          static_cast<double>(node->config().nic_msg_rate);
    }
    if (rdma_fraction > 0) {
      const auto model = node->latency_model();
      const double service =
          static_cast<double>(model.RnicReadServiceNs()) +
          mtt_miss_rate * static_cast<double>(model.MttCacheMissNs());
      server_ns_per_op += rdma_fraction * service;
    }
    const double server_bound =
        server_ns_per_op > 0 ? 1e9 / server_ns_per_op : client_bound;
    return std::min(client_bound, server_bound);
  }
};

// MTT miss rate observed over a sampling window.
class MttMissProbe {
 public:
  explicit MttMissProbe(const rdma::Rnic* rnic) : rnic_(rnic) { Reset(); }

  void Reset() {
    hits_ = rnic_->stats().mtt_cache_hits.load();
    misses_ = rnic_->stats().mtt_cache_misses.load();
  }

  double MissRate() const {
    const uint64_t h = rnic_->stats().mtt_cache_hits.load() - hits_;
    const uint64_t m = rnic_->stats().mtt_cache_misses.load() - misses_;
    return h + m == 0 ? 0.0 : static_cast<double>(m) / (h + m);
  }

 private:
  const rdma::Rnic* rnic_;
  uint64_t hits_ = 0, misses_ = 0;
};

}  // namespace corm::bench

#endif  // CORM_BENCH_BENCH_COMMON_H_
