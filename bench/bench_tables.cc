// Table 1 (feature matrix) and Table 3 (per-object metadata overhead for
// 1 MiB blocks) of the paper.

#include <cstdio>

#include "baseline/compaction_sim.h"
#include "bench/bench_common.h"
#include "common/byte_units.h"

using namespace corm;
using namespace corm::bench;

int main() {
  PrintTitle("Table 1: Comparison of FaRM, CoRM, and Mesh");
  PrintRow({"System", "Type", "RDMA", "Mem.Compaction", "VaddrReuse"}, 16);
  PrintRow({"Mesh", "Allocator", "no", "yes", "no"}, 16);
  PrintRow({"FaRM", "DSM", "yes", "no", "-"}, 16);
  PrintRow({"CoRM", "DSM", "yes", "yes", "yes"}, 16);

  PrintTitle("Table 3: metadata overhead per object (1 MiB blocks)");
  PrintRow({"Algorithm", "bits/object", "breakdown"}, 16);
  // CoRM stores a 28-bit home-block virtual address (48-bit pointers,
  // 20-bit-aligned 1 MiB blocks) plus the n-bit object ID (paper §4.4.1).
  struct Row {
    const char* name;
    int id_bits;
    bool corm;
  };
  const Row rows[] = {
      {"Mesh", 0, false},   {"CoRM-0", 0, true},   {"CoRM-8", 8, true},
      {"CoRM-12", 12, true}, {"CoRM-16", 16, true},
  };
  for (const Row& row : rows) {
    const int bits = row.corm ? 28 + row.id_bits : 0;
    char breakdown[64];
    if (!row.corm) {
      std::snprintf(breakdown, sizeof(breakdown), "-");
    } else if (row.id_bits == 0) {
      std::snprintf(breakdown, sizeof(breakdown), "28 (home vaddr)");
    } else {
      std::snprintf(breakdown, sizeof(breakdown), "28+%d", row.id_bits);
    }
    PrintRow({row.name, std::to_string(bits), breakdown}, 16);
  }

  // Cross-check against the memory-study simulator's accounting.
  auto classes = alloc::SizeClassTable::PowersOfTwo(8, 16 * 1024);
  for (int id_bits : {8, 12, 16}) {
    baseline::SimConfig config;
    config.algorithm = baseline::Algorithm::kCorm;
    config.id_bits = id_bits;
    config.block_bytes = kMiB;
    baseline::AllocatorSim sim(config, &classes);
    for (int i = 0; i < 1024; ++i) sim.Alloc(1024);
    const uint64_t block_bytes = sim.num_blocks() * kMiB;
    const uint64_t overhead = sim.ActiveBytes() - block_bytes;
    std::printf("simulator check: CoRM-%-2d overhead for 1024 objects = %llu "
                "bytes (expected %llu)\n",
                id_bits, static_cast<unsigned long long>(overhead),
                static_cast<unsigned long long>((1024u * (28 + id_bits) + 7) / 8));
  }
  return 0;
}
