// Figure 10: median latency of operations on *indirect* pointers (objects
// relocated to a different offset by compaction), plus the cost of
// ReleasePtr. Strategies compared for a failed DirectRead: fall back to an
// RPC read vs ScanRead (read + scan the whole 4 KiB block).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

// Loads `count` objects of `size`, frees a random half, compacts, and
// returns stale pointers to objects that were relocated (indirect).
std::vector<GlobalAddr> MakeIndirect(CormNode* node, Context* ctx,
                                     uint32_t size, size_t count) {
  auto addrs = node->BulkAlloc(count, size);
  CORM_CHECK(addrs.ok());
  Rng rng(size);
  std::vector<GlobalAddr> doomed, kept;
  for (auto& addr : *addrs) {
    (rng.Chance(0.5) ? doomed : kept).push_back(addr);
  }
  CORM_CHECK(node->BulkFree(doomed).ok());
  auto report = node->Compact(*node->ClassForPayload(size));
  CORM_CHECK(report.ok());
  // Indirect = DirectRead through the stale pointer reports ObjectMoved.
  std::vector<GlobalAddr> indirect;
  std::vector<uint8_t> buf(size);
  for (const auto& addr : kept) {
    if (ctx->DirectRead(addr, buf.data(), size).IsObjectMoved()) {
      indirect.push_back(addr);
    }
  }
  return indirect;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const size_t count = FlagU64(argc, argv, "count", 2048);

  core::CormConfig config;
  config.num_workers = 8;
  config.block_pages = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  const auto model = node.latency_model();

  PrintTitle("Figure 10 (left): read/write latency on moved objects (us)");
  PrintRow({"size", "Read", "Write", "DR+RpcRead", "DR+ScanRead",
            "RPC-baseline"},
           14);
  std::vector<std::vector<GlobalAddr>> indirect_per_size;
  // 2000 B payload = the 2048 B slot class; a full 2048 B payload would
  // need a >4 KiB slot, whose blocks hold one object and cannot merge.
  const std::vector<uint32_t> sizes = {8, 16, 32, 64, 128, 256, 512, 1024,
                                       2000};
  for (uint32_t size : sizes) {
    auto indirect = MakeIndirect(&node, ctx.get(), size, count);
    if (indirect.empty()) {
      PrintRow({std::to_string(size), "-", "-", "-", "-", "-"});
      indirect_per_size.emplace_back();
      continue;
    }
    std::vector<uint8_t> buf(size);
    Rng rng(7);
    auto stale = [&](int) { return indirect[rng.Uniform(indirect.size())]; };

    Histogram read_h = SampleLatency(ctx.get(), 1500, [&](int i) {
      GlobalAddr a = stale(i);  // fresh stale copy: server corrects anew
      CORM_CHECK(ctx->Read(&a, buf.data(), size).ok());
    });
    Histogram write_h = SampleLatency(ctx.get(), 1500, [&](int i) {
      GlobalAddr a = stale(i);
      CORM_CHECK(ctx->Write(&a, buf.data(), size).ok());
    });
    // DirectRead fails (ObjectMoved) then falls back: measure both legs.
    Histogram dr_rpc_h, dr_scan_h;
    for (int i = 0; i < 1500; ++i) {
      GlobalAddr a = stale(i);
      const uint64_t before = ctx->stats().modeled_ns_total;
      CORM_CHECK(ctx->ReadWithRecovery(&a, buf.data(), size,
                                       Context::MovedFallback::kRpcRead)
                     .ok());
      dr_rpc_h.Record(ctx->stats().modeled_ns_total - before);
      GlobalAddr b = stale(i);
      const uint64_t before2 = ctx->stats().modeled_ns_total;
      CORM_CHECK(ctx->ReadWithRecovery(&b, buf.data(), size,
                                       Context::MovedFallback::kScanRead)
                     .ok());
      dr_scan_h.Record(ctx->stats().modeled_ns_total - before2);
    }
    PrintRow({std::to_string(size), Us(read_h.Median()), Us(write_h.Median()),
              Us(dr_rpc_h.Median()), Us(dr_scan_h.Median()),
              Us(model.RpcNs(size))});
    indirect_per_size.push_back(std::move(indirect));
  }

  PrintTitle("Figure 10 (right): pointer release latency (us)");
  PrintRow({"size", "ReleasePtr", "RPC-baseline"});
  for (size_t class_i = 0; class_i < sizes.size(); ++class_i) {
    const uint32_t size = sizes[class_i];
    auto& indirect = indirect_per_size[class_i];
    if (indirect.empty()) {
      PrintRow({std::to_string(size), "-", "-"});
      continue;
    }
    Histogram rel_h;
    for (auto& addr : indirect) {
      GlobalAddr a = addr;
      CORM_CHECK(ctx->ReleasePtr(&a).ok());
      rel_h.Record(ctx->stats().last_op_ns);
    }
    PrintRow({std::to_string(size), Us(rel_h.Median()), Us(model.RpcNs(16))});
  }
  std::printf(
      "\nPaper shape: RPC read/write latencies are indistinguishable from\n"
      "direct pointers; a failed DirectRead backed by ScanRead is cheaper\n"
      "than the RPC fallback for 4 KiB blocks; ReleasePtr costs the RPC\n"
      "baseline +0.3us independent of object size.\n");
  return 0;
}
