// Ablations of CoRM's design choices (beyond the paper's figures):
//
//  A. Object-ID width: memory reclaimed and pointer-indirection rate vs
//     id_bits on one fixed fragmented workload (the §3.4 trade-off,
//     measured on the *runtime* system rather than the trace simulator).
//  B. Offset preservation: how many pointers stay direct after compaction
//     as a function of block occupancy (the §3.1.2 "prefer same offset"
//     choice is what keeps most pointers direct).
//  C. ScanRead vs RPC-read correction vs block size (the §3.2.2 trade-off:
//     scanning moves the whole block over the network; messaging costs
//     server CPU — the crossover moves with block size).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

struct FragmentedNode {
  std::unique_ptr<CormNode> node;
  std::vector<GlobalAddr> survivors;
};

FragmentedNode MakeFragmented(int id_bits, size_t count, uint32_t payload,
                              double free_rate, size_t block_pages = 1) {
  core::CormConfig config;
  config.num_workers = 2;
  config.object_id_bits = id_bits;
  config.block_pages = block_pages;
  FragmentedNode out;
  out.node = std::make_unique<CormNode>(config);
  auto addrs = out.node->BulkAlloc(count, payload);
  CORM_CHECK(addrs.ok());
  Rng rng(1234);
  std::vector<GlobalAddr> doomed;
  for (auto& addr : *addrs) {
    (rng.Chance(free_rate) ? doomed : out.survivors).push_back(addr);
  }
  CORM_CHECK(out.node->BulkFree(doomed).ok());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const size_t count = FlagU64(argc, argv, "count", 200'000);

  PrintTitle("Ablation A: object-ID width (56 B payload, 50% freed)");
  PrintRow({"id_bits", "blocks_freed", "reclaimed", "relocated%", "note"},
           15);
  for (int bits : {0, 4, 6, 8, 10, 12, 16}) {
    auto setup = MakeFragmented(bits, count, 56, 0.5);
    const uint64_t before = setup.node->ActiveMemoryBytes();
    auto report = setup.node->Compact(*setup.node->ClassForPayload(56));
    if (!report.ok()) {
      PrintRow({std::to_string(bits), "-", "-", "-",
                "class not addressable (compaction refused)"},
               15);
      continue;
    }
    const uint64_t after = setup.node->ActiveMemoryBytes();
    const double relocated =
        report->objects_moved
            ? 100.0 * report->objects_relocated / report->objects_moved
            : 0.0;
    PrintRow({std::to_string(bits), std::to_string(report->blocks_freed),
              Fmt("%.1f%%", 100.0 * (before - after) / before),
              Fmt("%.1f", relocated), ""},
             15);
  }
  std::printf("expectation: wider IDs -> more mergeable pairs -> more blocks\n"
              "freed; 4 KiB blocks of 64 B objects need >= 6 bits (64 slots).\n");

  PrintTitle("Ablation B: offset preservation vs occupancy (CoRM-16)");
  PrintRow({"free_rate", "merges", "offset_kept%", "direct_reads_ok%"});
  for (double free_rate : {0.9, 0.75, 0.5, 0.3}) {
    auto setup = MakeFragmented(16, count / 2, 56, free_rate);
    auto report = setup.node->Compact(*setup.node->ClassForPayload(56));
    CORM_CHECK(report.ok());
    const double kept =
        report->objects_moved
            ? 100.0 *
                  (report->objects_moved - report->objects_relocated) /
                  report->objects_moved
            : 100.0;
    // Fraction of survivors still readable via plain DirectRead (direct).
    auto ctx = Context::Create(setup.node.get());
    std::vector<uint8_t> buf(56);
    size_t direct = 0, probed = 0;
    for (size_t i = 0; i < setup.survivors.size(); i += 5) {
      ++probed;
      direct += ctx->DirectRead(setup.survivors[i], buf.data(), 56).ok();
    }
    PrintRow({Fmt("%.2f", free_rate), std::to_string(report->blocks_freed),
              Fmt("%.1f", kept),
              Fmt("%.1f", probed ? 100.0 * direct / probed : 0)});
  }
  std::printf("expectation: lower occupancy -> fewer offset collisions ->\n"
              "more pointers stay direct after compaction (paper §3.1.2).\n");

  PrintTitle("Ablation C: failed-DirectRead recovery cost vs block size");
  PrintRow({"block", "ScanRead_us", "RpcRead_us", "cheaper"});
  for (size_t pages : {1, 4, 16, 64, 256}) {
    // Keep ~300 live objects per block regardless of block size: large
    // blocks only merge under CoRM-16 at low occupancy (§3.4 — with s
    // comparable to the 2^16 ID space, collision probability explodes).
    const size_t per_block = pages * 4096 / 64;
    const double free_rate =
        per_block > 600 ? 1.0 - 300.0 / static_cast<double>(per_block) : 0.5;
    auto setup = MakeFragmented(16, 8 * per_block, 56, free_rate, pages);
    auto report = setup.node->Compact(*setup.node->ClassForPayload(56));
    CORM_CHECK(report.ok());
    auto ctx = Context::Create(setup.node.get());
    std::vector<uint8_t> buf(56);
    // Find indirect pointers.
    std::vector<GlobalAddr> indirect;
    for (const auto& addr : setup.survivors) {
      if (ctx->DirectRead(addr, buf.data(), 56).IsObjectMoved()) {
        indirect.push_back(addr);
        if (indirect.size() >= 500) break;
      }
    }
    if (indirect.empty()) {
      PrintRow({FormatBytes(pages * 4096), "-", "-", "no indirect pointers"});
      continue;
    }
    Histogram scan_h, rpc_h;
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
      GlobalAddr a = indirect[rng.Uniform(indirect.size())];
      const uint64_t t0 = ctx->stats().modeled_ns_total;
      CORM_CHECK(ctx->ReadWithRecovery(&a, buf.data(), 56,
                                       Context::MovedFallback::kScanRead)
                     .ok());
      scan_h.Record(ctx->stats().modeled_ns_total - t0);
      GlobalAddr b = indirect[rng.Uniform(indirect.size())];
      const uint64_t t1 = ctx->stats().modeled_ns_total;
      CORM_CHECK(ctx->ReadWithRecovery(&b, buf.data(), 56,
                                       Context::MovedFallback::kRpcRead)
                     .ok());
      rpc_h.Record(ctx->stats().modeled_ns_total - t1);
    }
    PrintRow({FormatBytes(pages * 4096), Us(scan_h.Median()),
              Us(rpc_h.Median()),
              scan_h.Median() < rpc_h.Median() ? "ScanRead" : "RpcRead"});
  }
  std::printf("expectation: ScanRead wins for small blocks; for large blocks\n"
              "moving the whole block over the wire loses to one RPC\n"
              "(paper §4.1: 'for large block sizes the first approach can be\n"
              "more efficient').\n");

  PrintTitle(
      "Ablation D: consistency protocol (cacheline versions vs checksum)");
  PrintRow({"slot", "cap_versions", "cap_checksum", "DR_vers_us",
            "DR_cksum_us"},
           15);
  for (uint32_t payload : {24u, 240u, 2000u, 4000u}) {
    double latency_us[2] = {0, 0};
    uint32_t slot_sizes[2] = {0, 0};
    uint32_t caps[2] = {0, 0};
    int which = 0;
    for (auto mode : {core::ConsistencyMode::kCachelineVersions,
                      core::ConsistencyMode::kChecksum}) {
      core::CormConfig config;
      config.num_workers = 2;
      config.consistency = mode;
      CormNode node(config);
      auto ctx = Context::Create(&node);
      auto addrs = node.BulkAlloc(4096, payload);
      CORM_CHECK(addrs.ok());
      slot_sizes[which] = node.classes().ClassSize((*addrs)[0].class_idx);
      caps[which] = core::PayloadCapacity(slot_sizes[which], mode);
      std::vector<uint8_t> buf(payload);
      Rng rng(3);
      Histogram h = SampleLatency(ctx.get(), 2000, [&](int) {
        CORM_CHECK(ctx->DirectRead((*addrs)[rng.Uniform(addrs->size())],
                                   buf.data(), payload)
                       .ok());
      });
      latency_us[which] = h.Median() / 1000.0;
      ++which;
    }
    PrintRow({std::to_string(slot_sizes[0]) + "/" +
                  std::to_string(slot_sizes[1]),
              std::to_string(caps[0]), std::to_string(caps[1]),
              Fmt("%.2f", latency_us[0]), Fmt("%.2f", latency_us[1])},
             15);
  }
  std::printf("expectation (paper §4.2.1): the checksum variant frees one\n"
              "byte per cacheline of capacity — 'potentially a better\n"
              "strategy for large records' — at equal modeled read latency\n"
              "(validation is client CPU, not network).\n");
  return 0;
}
