// Figure 19: the Redis traces again, with CoRM in *hybrid* mode
// (CoRM-0+CoRM-n, §4.4.1): classes whose blocks hold more objects than the
// n-bit ID space addresses fall back to offset-based (CoRM-0) merging
// instead of being skipped.

#include <cstdio>
#include <vector>

#include "alloc/size_classes.h"
#include "baseline/compaction_sim.h"
#include "bench/bench_common.h"
#include "common/byte_units.h"
#include "workload/redis_trace.h"
#include "workload/trace_runner.h"

using namespace corm;
using namespace corm::bench;
using baseline::Algorithm;

int main() {
  auto classes = alloc::SizeClassTable::JemallocLike(256 * kKiB);

  struct Strategy {
    Algorithm algo;
    int id_bits;
  };
  const Strategy strategies[] = {
      {Algorithm::kNone, 0},    {Algorithm::kIdeal, 0},
      {Algorithm::kMesh, 0},    {Algorithm::kHybrid, 8},
      {Algorithm::kHybrid, 12}, {Algorithm::kHybrid, 16},
      {Algorithm::kAdaptive, 0},  // §4.4.3 auto-labeling (our extension)
  };

  struct TraceDef {
    const char* name;
    workload::Trace (*make)(uint64_t seed);
  };
  const TraceDef traces[] = {
      {"redis-mem-t1", workload::MakeRedisTraceT1},
      {"redis-mem-t2", workload::MakeRedisTraceT2},
      {"redis-mem-t3", workload::MakeRedisTraceT3},
  };

  for (const TraceDef& trace_def : traces) {
    PrintTitle(std::string("Figure 19: ") + trace_def.name +
               " active memory (GiB), hybrid CoRM, 1 MiB blocks");
    std::vector<std::string> header = {"threads"};
    for (const auto& s : strategies) {
      header.push_back(AlgorithmName(s.algo, s.id_bits));
    }
    PrintRow(header, 16);
    auto trace = trace_def.make(7);
    for (int threads : {1, 8, 16, 32}) {
      std::vector<std::string> row = {std::to_string(threads)};
      for (const auto& s : strategies) {
        baseline::SimConfig config;
        config.algorithm = s.algo;
        config.id_bits = s.id_bits;
        config.block_bytes = kMiB;
        config.num_threads = threads;
        config.seed = 13;
        auto result = workload::RunTrace(trace, config, &classes);
        const uint64_t bytes = s.algo == Algorithm::kIdeal
                                   ? result.ideal_bytes
                                   : result.active_bytes_after;
        row.push_back(Gib(bytes));
      }
      PrintRow(row, 16);
    }
  }
  std::printf(
      "\nPaper shape: hybrid CoRM is at least as good as Mesh on every\n"
      "trace and thread count (CoRM-0 fallback covers the tiny classes);\n"
      "CoRM-0+CoRM-16 improves on Mesh by ~12%% (t1) and ~5%% (t2).\n"
      "CoRM-auto (the paper's §4.4.3 future work, implemented here) picks\n"
      "per-class ID widths and should match the best fixed width per trace\n"
      "without tuning.\n");
  return 0;
}
