// Figure 18: active memory of the Redis memefficiency traces under vanilla
// CoRM (classes not addressable by the configured ID width are simply not
// compacted), vs No / Ideal / Mesh, across allocator thread counts.

#include <cstdio>
#include <vector>

#include "alloc/size_classes.h"
#include "baseline/compaction_sim.h"
#include "bench/bench_common.h"
#include "common/byte_units.h"
#include "workload/redis_trace.h"
#include "workload/trace_runner.h"

using namespace corm;
using namespace corm::bench;
using baseline::Algorithm;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  auto classes = alloc::SizeClassTable::JemallocLike(256 * kKiB);

  struct Strategy {
    Algorithm algo;
    int id_bits;
  };
  const Strategy strategies[] = {
      {Algorithm::kNone, 0},  {Algorithm::kIdeal, 0}, {Algorithm::kMesh, 0},
      {Algorithm::kCorm, 8},  {Algorithm::kCorm, 12}, {Algorithm::kCorm, 16},
      {Algorithm::kCorm, 20},  // §4.4.3 mentions CoRM-20 for t2
  };

  struct TraceDef {
    const char* name;
    workload::Trace (*make)(uint64_t seed);
  };
  const TraceDef traces[] = {
      {"redis-mem-t1", workload::MakeRedisTraceT1},
      {"redis-mem-t2", workload::MakeRedisTraceT2},
      {"redis-mem-t3", workload::MakeRedisTraceT3},
  };

  for (const TraceDef& trace_def : traces) {
    PrintTitle(std::string("Figure 18: ") + trace_def.name +
               " active memory (GiB), vanilla CoRM, 1 MiB blocks");
    std::vector<std::string> header = {"threads"};
    for (const auto& s : strategies) {
      header.push_back(AlgorithmName(s.algo, s.id_bits));
    }
    PrintRow(header, 16);
    auto trace = trace_def.make(7);
    for (int threads : {1, 8, 16, 32}) {
      std::vector<std::string> row = {std::to_string(threads)};
      for (const auto& s : strategies) {
        baseline::SimConfig config;
        config.algorithm = s.algo;
        config.id_bits = s.id_bits;
        config.block_bytes = kMiB;
        config.num_threads = threads;
        config.seed = 13;
        auto result = workload::RunTrace(trace, config, &classes);
        const uint64_t bytes = s.algo == Algorithm::kIdeal
                                   ? result.ideal_bytes
                                   : result.active_bytes_after;
        row.push_back(Gib(bytes));
      }
      PrintRow(row, 16);
    }
  }
  std::printf(
      "\nPaper shape: single-threaded runs leave little to compact; with\n"
      "more threads fragmentation grows 3-12x (unpopular classes spread\n"
      "across thread heaps). Vanilla CoRM-n loses to Mesh exactly where\n"
      "small classes exceed its ID space (t2's 8 B keys for CoRM-16);\n"
      "CoRM-20 recovers t2, and CoRM-16 wins t1/t3.\n");
  return 0;
}
