// Data-plane pause under compaction: sliced engine vs monolithic baseline.
//
// The quantity under test is the ISSUE's acceptance number: the p99 latency
// a closed-loop client observes for a read *while the node is compacting*.
// Two modes run the exact same workload:
//
//   monolithic — compaction_slice_objects/pairs = SIZE_MAX, which degrades
//     the engine to the pre-refactor behavior: one Step() call executes the
//     entire run, and the leader serves no data-plane RPCs until it ends.
//   sliced — bounded budgets: the leader serves one RPC batch between
//     engine slices, so a read lands at most one slice behind.
//
// Setup: the reader hammers a *stable* object set in one size class while
// every compaction round churns and merges a *different* class. The two
// classes share nothing but the serving loop, so the measured pause is the
// engine's occupancy of the data plane — not object-lock bounces.
//
// SimTimeScale stays at 1.0 (unlike the throughput benches): collection and
// remap pace their modeled durations in wall time, so the monolithic stall
// has its true modeled length and the sliced mode's interleaving is visible
// in the same clock the client latencies are measured in.
//
// Output: a table on stdout plus BENCH_compaction.json (schema in
// EXPERIMENTS.md, "Compaction pause" section).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormConfig;
using core::CormNode;
using core::GlobalAddr;

namespace {

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

struct Workload {
  size_t read_objects = 1024;   // stable read set (class 64, never churned)
  uint32_t read_payload = 56;
  size_t churn = 16384;         // churned per round (class 128, compacted)
  uint32_t churn_payload = 120;
  size_t block_pages = 4;       // bigger blocks: remap cost per merge grows
  int rounds = 6;
  size_t slice_objects = 32;
  size_t slice_pairs = 4;
};

struct ModeResult {
  Histogram pause;        // read latency while a compaction run is active
  uint64_t reads = 0;     // all successful reads over the mode's window
  core::NodeStats stats;  // node counters after the run
};

// Frees every other address in `batch`, leaving its blocks half-full, and
// returns the survivors.
std::vector<GlobalAddr> FreeEveryOther(CormNode* node,
                                       std::vector<GlobalAddr> batch) {
  std::vector<GlobalAddr> victims, survivors;
  for (size_t i = 0; i < batch.size(); ++i) {
    (i % 2 == 0 ? victims : survivors).push_back(batch[i]);
  }
  CORM_CHECK(node->BulkFree(victims).ok());
  return survivors;
}

ModeResult RunMode(bool monolithic, const Workload& w) {
  CormConfig cfg;
  cfg.num_workers = 1;  // the leader IS the data plane: pauses are naked
  cfg.block_pages = w.block_pages;
  if (monolithic) {
    cfg.compaction_slice_objects = SIZE_MAX;
    cfg.compaction_slice_pairs = SIZE_MAX;
  } else {
    cfg.compaction_slice_objects = w.slice_objects;
    cfg.compaction_slice_pairs = w.slice_pairs;
  }
  CormNode node(cfg);

  auto read_set = node.BulkAlloc(w.read_objects, w.read_payload);
  CORM_CHECK(read_set.ok());
  const uint32_t churn_class = *node.ClassForPayload(w.churn_payload);
  CORM_CHECK(churn_class != *node.ClassForPayload(w.read_payload));

  std::atomic<bool> stop{false};
  std::atomic<bool> compacting{false};
  Histogram pause;
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    auto ctx = Context::Create(&node);
    std::vector<GlobalAddr> mine = *read_set;  // private: corrections land
    std::vector<uint8_t> buf(w.read_payload);
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      GlobalAddr& a = mine[i++ % mine.size()];
      // Time-to-success, attributed to compaction when the op overlapped a
      // run: an op held up by the engine (or by a retry bounce) shows its
      // whole span — that is the pause the application experiences.
      bool during = compacting.load(std::memory_order_acquire);
      const auto t0 = std::chrono::steady_clock::now();
      while (!ctx->Read(&a, buf.data(), w.read_payload).ok() &&
             !stop.load(std::memory_order_acquire)) {
      }
      const auto t1 = std::chrono::steady_clock::now();
      during |= compacting.load(std::memory_order_acquire);
      reads.fetch_add(1, std::memory_order_relaxed);
      if (during) {
        pause.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    }
  });

  // Churn + compact rounds: each round fragments the churn class with a
  // fresh batch (half-full blocks), merges it while the reader hammers the
  // other class, then drops the leftovers so the next round starts clean.
  for (int round = 0; round < w.rounds; ++round) {
    auto batch = node.BulkAlloc(w.churn, w.churn_payload);
    CORM_CHECK(batch.ok());
    std::vector<GlobalAddr> keep = FreeEveryOther(&node, *batch);
    compacting.store(true, std::memory_order_release);
    auto report = node.Compact(churn_class);
    compacting.store(false, std::memory_order_release);
    CORM_CHECK(report.ok()) << report.status().ToString();
    CORM_CHECK(node.BulkFree(keep).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  stop.store(true, std::memory_order_release);
  reader.join();

  ModeResult r;
  r.pause = pause;
  r.reads = reads.load();
  r.stats = node.stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Deliberately no SetSimTimeScale(0): see the header comment.
  Workload w;
  w.read_objects = FlagU64(argc, argv, "read_objects", 1024);
  w.churn = FlagU64(argc, argv, "churn", 16384);
  w.block_pages = FlagU64(argc, argv, "block_pages", 4);
  w.rounds = static_cast<int>(FlagU64(argc, argv, "rounds", 6));
  w.slice_objects = FlagU64(argc, argv, "slice_objects", 32);
  w.slice_pairs = FlagU64(argc, argv, "slice_pairs", 4);
  const std::string json_path =
      FlagStr(argc, argv, "json", "BENCH_compaction.json");

  PrintTitle("Compaction pause: client read latency during compaction");
  std::printf(
      "read_set=%zu churn=%zu block_pages=%zu rounds=%d "
      "slices=%zu obj / %zu pairs\n",
      w.read_objects, w.churn, w.block_pages, w.rounds, w.slice_objects,
      w.slice_pairs);

  const ModeResult mono = RunMode(/*monolithic=*/true, w);
  const ModeResult sliced = RunMode(/*monolithic=*/false, w);

  auto row = [](const char* name, const ModeResult& r) {
    PrintRow({name, std::to_string(r.pause.count()),
              Us(r.pause.Percentile(0.5)), Us(r.pause.Percentile(0.99)),
              Us(r.pause.max()), std::to_string(r.stats.compaction_slices),
              std::to_string(r.stats.blocks_compacted)},
             14);
  };
  PrintRow({"mode", "paused rds", "p50 us", "p99 us", "max us", "slices",
            "merges"},
           14);
  row("monolithic", mono);
  row("sliced", sliced);

  const uint64_t mono_p99 = mono.pause.Percentile(0.99);
  const uint64_t sliced_p99 = sliced.pause.Percentile(0.99);
  std::printf("\np99 pause: monolithic %.2f us -> sliced %.2f us (%.1fx)\n",
              mono_p99 / 1000.0, sliced_p99 / 1000.0,
              sliced_p99 ? static_cast<double>(mono_p99) /
                               static_cast<double>(sliced_p99)
                         : 0.0);

  // JSON artifact (schema: EXPERIMENTS.md, "Compaction pause").
  {
    std::ofstream out(json_path);
    auto mode_json = [&](const char* name, const ModeResult& r) {
      out << "    \"" << name << "\": {\"reads\": " << r.reads
          << ", \"paused_reads\": " << r.pause.count()
          << ", \"pause_p50_ns\": " << r.pause.Percentile(0.5)
          << ", \"pause_p99_ns\": " << r.pause.Percentile(0.99)
          << ", \"pause_max_ns\": " << r.pause.max()
          << ", \"compaction_runs\": " << r.stats.compaction_runs
          << ", \"slices\": " << r.stats.compaction_slices
          << ", \"blocks_compacted\": " << r.stats.blocks_compacted
          << ", \"bytes_copied\": " << r.stats.compaction_bytes_copied
          << "}";
    };
    out << "{\n  \"bench\": \"compaction_pause\",\n";
    out << "  \"config\": {\"read_objects\": " << w.read_objects
        << ", \"churn\": " << w.churn
        << ", \"block_pages\": " << w.block_pages
        << ", \"rounds\": " << w.rounds
        << ", \"slice_objects\": " << w.slice_objects
        << ", \"slice_pairs\": " << w.slice_pairs << "},\n";
    out << "  \"modes\": {\n";
    mode_json("monolithic", mono);
    out << ",\n";
    mode_json("sliced", sliced);
    out << "\n  },\n";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  \"p99_improvement\": %.3f\n}\n",
                  sliced_p99 ? static_cast<double>(mono_p99) /
                                   static_cast<double>(sliced_p99)
                             : 0.0);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }

  // The refactor's acceptance bar: the sliced engine must strictly beat the
  // monolithic pause profile.
  if (sliced_p99 >= mono_p99) {
    std::printf("FAIL: sliced p99 did not improve on monolithic\n");
    return 1;
  }
  return 0;
}
