// Figure 13: rate of failed (invalid) DirectReads under read/write
// contention — YCSB 50:50, Zipf skew 0.6..0.99, 8/16/32 clients.
//
// Method. A DirectRead of object o fails when it overlaps a write of o
// that is mid-flight (lock held / version bytes partially updated). With
// reads and writes both Zipf-distributed over N keys,
//
//     conflicts/s = T_r * T_w * (window_ns / 1e9) * S2,
//     S2 = sum_i p_i^2   (probability two independent key draws collide)
//
// where T_r/T_w come from the Fig. 12 bottleneck model and window_ns is
// the modeled write-lock hold time (LatencyModel::WriteLockHoldNs). A
// wall-clock race on this single-CPU host would inflate the window by
// scheduler latency, so the figure is computed analytically; the *torn/
// locked detection mechanism itself* is exercised for real at the end of
// this bench and in tests/concurrency_test.cc.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "workload/ycsb.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

// Collision mass sum p_i^2 of a Zipf(theta) distribution over n keys.
double ZipfCollisionMass(uint64_t n, double theta) {
  double h = 0, s2 = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    h += std::pow(static_cast<double>(i), -theta);
  }
  for (uint64_t i = 1; i <= n; ++i) {
    const double p = std::pow(static_cast<double>(i), -theta) / h;
    s2 += p * p;
  }
  return s2;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const size_t num_objects = FlagU64(argc, argv, "objects", 8'000'000);

  core::CormConfig config;
  config.num_workers = 4;
  config.rnic_model = sim::RnicModel::kConnectX3;
  CormNode node(config);
  const auto model = node.latency_model();
  const double window_ns = model.WriteLockHoldNs(24);

  // Per-configuration aggregate rate from the Fig. 12 bottleneck model
  // (50:50 mix, DirectReads + RPC writes). Latency sample via a loaded
  // node would repeat fig12; use its measured ballpark: avg op ~2.3 us.
  PrintTitle("Figure 13: DirectRead failure rate, YCSB 50:50 (conflicts/s)");
  PrintRow({"zipf_theta", "2cl", "4cl", "8cl", "16cl", "32cl", "frac@32"});
  for (double theta : {0.6, 0.7, 0.8, 0.9, 0.99}) {
    const double s2 = ZipfCollisionMass(num_objects, theta);
    std::vector<std::string> row = {Fmt("%.2f", theta)};
    double frac32 = 0;
    for (int clients : {2, 4, 8, 16, 32}) {
      ThroughputModel tm;
      tm.avg_op_ns = 2300;
      tm.rpc_fraction = 0.5;
      tm.rdma_fraction = 0.5;
      tm.mtt_miss_rate = theta >= 0.95 ? 0.05 : 0.4;
      tm.node = &node;
      const double total = tm.OpsPerSec(clients);
      const double t_r = total * 0.5, t_w = total * 0.5;
      const double conflicts = t_r * t_w * (window_ns / 1e9) * s2;
      row.push_back(Fmt("%.2f", conflicts));
      if (clients == 32) frac32 = conflicts / t_r;
    }
    row.push_back(Fmt("%.2e", frac32));
    PrintRow(row);
  }

  // --- Mechanism validation: a real reader/writer race on one hot key. ---
  std::printf("\nmechanism check (real race on a hot object):\n");
  auto addrs = node.BulkAlloc(64, 24);
  CORM_CHECK(addrs.ok());
  sim::SetSimTimeScale(0.5);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed{0};
  std::thread writer([&] {
    auto ctx = Context::Create(&node);
    std::vector<uint8_t> buf(24, 1);
    GlobalAddr addr = (*addrs)[0];
    while (!stop.load()) ctx->Write(&addr, buf.data(), 24).ok();
  });
  {
    auto ctx = Context::Create(&node);
    std::vector<uint8_t> buf(24);
    for (int i = 0; i < 30000; ++i) {
      Status st = ctx->DirectRead((*addrs)[0], buf.data(), 24);
      if (st.IsObjectLocked() || st.IsTornRead()) observed.fetch_add(1);
    }
  }
  stop.store(true);
  writer.join();
  sim::SetSimTimeScale(0.0);
  std::printf("invalid DirectReads observed while hammering one object: "
              "%llu / 30000 (must be > 0: the detection works)\n",
              static_cast<unsigned long long>(observed.load()));
  std::printf(
      "\nPaper shape: conflicts grow with skew and client count; even at\n"
      "theta=0.99 with 32 clients ~659 conflicts/s (<0.1%% of the request\n"
      "rate).\n");
  return 0;
}
