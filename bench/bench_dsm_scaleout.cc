// DSM scale-out bench (extension beyond the single-node paper evaluation):
// aggregate one-sided read throughput and compaction savings as nodes are
// added. Each node has its own RNIC/translation cache and NIC message
// budget, so both read capacity and compaction capacity scale linearly —
// the property that makes node-local compaction (paper §3.1.2) the right
// design for rack-scale DSM.
//
// Replicated-write mode (DESIGN.md §11): measures the modeled write
// latency through the one-sided replicated log against the unreplicated
// RPC write on the same cluster, then storms the cluster with node
// kill/restart cycles while writing and verifies zero lost acknowledged
// writes. Emits BENCH_replication.json (schema in EXPERIMENTS.md) and
// exits non-zero when the replicated p50 exceeds 2x unreplicated or any
// acked write is lost — the gate is self-enforcing.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/histogram.h"
#include "common/random.h"
#include "core/object_layout.h"
#include "dsm/cluster.h"
#include "dsm/dsm_context.h"
#include "dsm/replication.h"

using namespace corm;
using namespace corm::bench;
using namespace corm::dsm;
using core::GlobalAddr;

namespace {

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

struct ReplBenchResult {
  uint64_t unrep_p50_ns = 0;
  uint64_t rep_p50_ns = 0;
  double ratio = 0.0;
  uint64_t acked = 0;
  uint64_t uncertain = 0;
  uint64_t lost = 0;
  uint64_t failovers = 0;
  uint64_t degraded = 0;
  uint64_t repairs = 0;
};

constexpr size_t kReplPayload = 24;

// Measures replicated vs unreplicated write p50, then the kill-storm
// zero-lost-acked-writes check.
ReplBenchResult RunReplicationBench(size_t samples, size_t storm_writes) {
  ReplBenchResult r;
  ClusterConfig config;
  config.num_nodes = 3;
  config.node_config.num_workers = 2;
  config.node_config.rnic_model = sim::RnicModel::kConnectX5;
  Cluster cluster(config);
  Rng rng(17);

  // Baseline: plain RPC writes, modeled ns per op.
  {
    DsmContext ctx(&cluster);
    std::vector<GlobalAddr> objs;
    std::vector<uint8_t> buf(kReplPayload);
    for (int i = 0; i < 64; ++i) {
      auto addr = ctx.Alloc(kReplPayload);
      CORM_CHECK(addr.ok());
      objs.push_back(*addr);
    }
    Histogram hist;
    for (size_t i = 0; i < samples; ++i) {
      GlobalAddr& addr = objs[rng.Uniform(objs.size())];
      core::PatternFill(i, buf.data(), buf.size());
      CORM_CHECK(ctx.Write(&addr, buf.data(), buf.size()).ok());
      hist.Record(ctx.context(NodeOf(addr))->stats().last_op_ns);
    }
    r.unrep_p50_ns = hist.Percentile(0.5);
    for (auto& addr : objs) CORM_CHECK(ctx.Free(&addr).ok());
  }

  // Replicated: same payload through the one-sided log, k=2.
  ReplicatedContext rctx(&cluster, /*replication_factor=*/2);
  std::vector<ReplicatedAddr> objs;
  std::vector<uint8_t> buf(kReplPayload), out(kReplPayload);
  for (int i = 0; i < 64; ++i) {
    auto addr = rctx.Alloc(kReplPayload);
    CORM_CHECK(addr.ok());
    objs.push_back(*addr);
  }
  Histogram hist;
  for (size_t i = 0; i < samples; ++i) {
    ReplicatedAddr& addr = objs[rng.Uniform(objs.size())];
    core::PatternFill(i, buf.data(), buf.size());
    CORM_CHECK(rctx.Write(&addr, buf.data(), buf.size()).ok());
    hist.Record(rctx.last_op_ns());
  }
  r.rep_p50_ns = hist.Percentile(0.5);
  r.ratio = r.unrep_p50_ns == 0
                ? 0.0
                : static_cast<double>(r.rep_p50_ns) / r.unrep_p50_ns;

  // Kill storm: nodes crash and restart mid-stream while writes continue;
  // every write that returned OK must stay readable afterwards.
  struct Tracked {
    uint64_t committed = 0;          // last acked pattern id
    std::vector<uint64_t> uncertain;  // timed-out / possibly-stale values
  };
  std::vector<Tracked> tracked(objs.size());
  for (size_t key = 0; key < objs.size(); ++key) {
    core::PatternFill(key, buf.data(), buf.size());
    CORM_CHECK(rctx.Write(&objs[key], buf.data(), buf.size()).ok());
    tracked[key].committed = key;
  }
  int down = -1;
  uint64_t pid = objs.size();
  for (size_t i = 0; i < storm_writes; ++i) {
    // Crash/restart cadence: one node down at a time, detector driven.
    if (i % 40 == 10) {
      down = static_cast<int>(rng.Uniform(config.num_nodes));
      cluster.CrashNode(down);
      for (int h = 0; h < 3; ++h) cluster.Heartbeat();
    } else if (i % 40 == 30 && down >= 0) {
      cluster.RestartNode(down);
      cluster.Heartbeat();
      down = -1;
      rctx.RunAntiEntropySweep(16);
    }
    const size_t key = rng.Uniform(objs.size());
    ++pid;
    core::PatternFill(pid, buf.data(), buf.size());
    const uint64_t degraded_before = rctx.degraded_writes();
    Status st = rctx.Write(&objs[key], buf.data(), buf.size());
    if (st.ok()) {
      ++r.acked;
      if (rctx.degraded_writes() != degraded_before) {
        tracked[key].uncertain.push_back(tracked[key].committed);
      }
      tracked[key].committed = pid;
    } else {
      ++r.uncertain;
      tracked[key].uncertain.push_back(pid);
    }
  }
  if (down >= 0) {
    cluster.RestartNode(down);
    cluster.Heartbeat();
  }
  for (int h = 0; h < 4; ++h) cluster.Heartbeat();
  while (rctx.pending_repairs() > 0) rctx.RunAntiEntropySweep(16);

  // Verification: the acked value (or a newer accepted one) must read back
  // for every key. Anything else is a lost acknowledged write.
  for (size_t key = 0; key < objs.size(); ++key) {
    Status st = rctx.Read(&objs[key], out.data(), out.size());
    if (!st.ok()) {
      ++r.lost;
      continue;
    }
    bool ok = core::PatternCheck(tracked[key].committed, out.data(),
                                 out.size());
    for (const uint64_t u : tracked[key].uncertain) {
      ok = ok || core::PatternCheck(u, out.data(), out.size());
    }
    if (!ok) ++r.lost;
  }
  r.failovers = rctx.failovers();
  r.degraded = rctx.degraded_writes();
  r.repairs = rctx.anti_entropy_repairs();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const size_t objects_per_node =
      FlagU64(argc, argv, "objects_per_node", 500'000);
  const bool run_repl = FlagU64(argc, argv, "replication", 1) != 0;
  const size_t repl_samples = FlagU64(argc, argv, "repl_samples", 2000);
  const size_t repl_storm = FlagU64(argc, argv, "repl_storm", 600);
  const std::string json_path =
      FlagStr(argc, argv, "json", "BENCH_replication.json");

  PrintTitle("DSM scale-out: aggregate capacity vs cluster size");
  PrintRow({"nodes", "read_cap_Kreq/s", "rpc_cap_Kreq/s", "frag_GiB",
            "compacted_GiB", "blocks_freed"},
           17);
  for (int nodes : {1, 2, 4, 8}) {
    ClusterConfig config;
    config.num_nodes = nodes;
    config.node_config.num_workers = 2;
    config.node_config.rnic_model = sim::RnicModel::kConnectX3;
    Cluster cluster(config);
    DsmContext ctx(&cluster);

    // Load + fragment every node identically.
    std::vector<GlobalAddr> doomed;
    Rng rng(5);
    for (int n = 0; n < nodes; ++n) {
      auto addrs = cluster.node(n)->BulkAlloc(objects_per_node, 24);
      CORM_CHECK(addrs.ok());
      for (auto& addr : *addrs) {
        if (rng.Chance(0.5)) doomed.push_back(addr);
      }
      CORM_CHECK(cluster.node(n)->BulkFree(doomed).ok());
      doomed.clear();
    }

    // Sample per-node one-sided read cost under uniform access.
    double read_cap = 0, rpc_cap = 0;
    for (int n = 0; n < nodes; ++n) {
      auto* node = cluster.node(n);
      node->rnic()->ResetMttCache();
      MttMissProbe probe(node->rnic());
      auto* cctx = ctx.context(n);
      std::vector<uint8_t> buf(24);
      // Probe with bulk-pattern addresses reconstructed via directory-free
      // sampling: reuse BulkAlloc pointers held by the node's own test API
      // is not available here, so sample via fresh allocations.
      std::vector<GlobalAddr> sample;
      for (int i = 0; i < 4000; ++i) {
        auto addr = cctx->Alloc(24);
        CORM_CHECK(addr.ok());
        sample.push_back(*addr);
      }
      Rng srng(n);
      for (int i = 0; i < 20000; ++i) {
        CORM_CHECK(cctx->DirectRead(sample[srng.Uniform(sample.size())],
                                    buf.data(), 24)
                       .ok());
      }
      const auto model = node->latency_model();
      const double service = model.RnicReadServiceNs() +
                             probe.MissRate() * model.MttCacheMissNs();
      read_cap += 1e9 / service;
      rpc_cap += static_cast<double>(node->config().nic_msg_rate) / 2.0;
    }

    const uint64_t frag_bytes = cluster.TotalActiveMemoryBytes();
    auto reports = cluster.CompactAllIfFragmented();
    CORM_CHECK(reports.ok());
    size_t freed = 0;
    for (const auto& r : *reports) freed += r.blocks_freed;
    PrintRow({std::to_string(nodes), Kreq(read_cap), Kreq(rpc_cap),
              Gib(frag_bytes), Gib(cluster.TotalActiveMemoryBytes()),
              std::to_string(freed)},
             17);
  }
  std::printf(
      "\nexpectation: read and RPC capacity scale ~linearly with nodes (one\n"
      "RNIC each); compaction stays node-local so its savings scale too,\n"
      "and no cross-node coordination is ever needed (§3.1.2).\n");

  if (!run_repl) return 0;

  PrintTitle("Replicated writes: one-sided log vs plain RPC (3 nodes, k=2)");
  const ReplBenchResult r = RunReplicationBench(repl_samples, repl_storm);
  PrintRow({"mode", "write_p50_us"}, 22);
  PrintRow({"unreplicated", Us(r.unrep_p50_ns)}, 22);
  PrintRow({"replicated k=2", Us(r.rep_p50_ns)}, 22);
  std::printf(
      "ratio=%.2fx  storm: acked=%llu uncertain=%llu lost=%llu "
      "failovers=%llu degraded=%llu repairs=%llu\n",
      r.ratio, static_cast<unsigned long long>(r.acked),
      static_cast<unsigned long long>(r.uncertain),
      static_cast<unsigned long long>(r.lost),
      static_cast<unsigned long long>(r.failovers),
      static_cast<unsigned long long>(r.degraded),
      static_cast<unsigned long long>(r.repairs));

  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"replication\",\n"
        << "  \"config\": {\"nodes\": 3, \"replication_factor\": 2, "
        << "\"payload\": " << kReplPayload
        << ", \"samples\": " << repl_samples
        << ", \"storm_writes\": " << repl_storm << "},\n"
        << "  \"results\": {\"unrep_p50_ns\": " << r.unrep_p50_ns
        << ", \"rep_p50_ns\": " << r.rep_p50_ns << ", \"ratio\": " << r.ratio
        << ",\n    \"acked\": " << r.acked
        << ", \"uncertain\": " << r.uncertain << ", \"lost\": " << r.lost
        << ", \"failovers\": " << r.failovers
        << ", \"degraded\": " << r.degraded << ", \"repairs\": " << r.repairs
        << "},\n"
        << "  \"gate\": {\"max_ratio\": 2.0, \"max_lost\": 0}\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Self-enforcing acceptance gate: replication must cost at most 2x the
  // unreplicated write p50, and an acknowledged write may never be lost.
  int rc = 0;
  if (r.ratio > 2.0) {
    std::fprintf(stderr,
                 "FAIL: replicated p50 %.2fx unreplicated (gate: <= 2.0x)\n",
                 r.ratio);
    rc = 1;
  }
  if (r.lost > 0) {
    std::fprintf(stderr, "FAIL: %llu acknowledged write(s) lost (gate: 0)\n",
                 static_cast<unsigned long long>(r.lost));
    rc = 1;
  }
  if (r.acked == 0) {
    std::fprintf(stderr, "FAIL: storm acked no writes — gate vacuous\n");
    rc = 1;
  }
  return rc;
}
