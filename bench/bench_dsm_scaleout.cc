// DSM scale-out bench (extension beyond the single-node paper evaluation):
// aggregate one-sided read throughput and compaction savings as nodes are
// added. Each node has its own RNIC/translation cache and NIC message
// budget, so both read capacity and compaction capacity scale linearly —
// the property that makes node-local compaction (paper §3.1.2) the right
// design for rack-scale DSM.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "dsm/cluster.h"
#include "dsm/dsm_context.h"

using namespace corm;
using namespace corm::bench;
using namespace corm::dsm;
using core::GlobalAddr;

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const size_t objects_per_node =
      FlagU64(argc, argv, "objects_per_node", 500'000);

  PrintTitle("DSM scale-out: aggregate capacity vs cluster size");
  PrintRow({"nodes", "read_cap_Kreq/s", "rpc_cap_Kreq/s", "frag_GiB",
            "compacted_GiB", "blocks_freed"},
           17);
  for (int nodes : {1, 2, 4, 8}) {
    ClusterConfig config;
    config.num_nodes = nodes;
    config.node_config.num_workers = 2;
    config.node_config.rnic_model = sim::RnicModel::kConnectX3;
    Cluster cluster(config);
    DsmContext ctx(&cluster);

    // Load + fragment every node identically.
    std::vector<GlobalAddr> doomed;
    Rng rng(5);
    for (int n = 0; n < nodes; ++n) {
      auto addrs = cluster.node(n)->BulkAlloc(objects_per_node, 24);
      CORM_CHECK(addrs.ok());
      for (auto& addr : *addrs) {
        if (rng.Chance(0.5)) doomed.push_back(addr);
      }
      CORM_CHECK(cluster.node(n)->BulkFree(doomed).ok());
      doomed.clear();
    }

    // Sample per-node one-sided read cost under uniform access.
    double read_cap = 0, rpc_cap = 0;
    for (int n = 0; n < nodes; ++n) {
      auto* node = cluster.node(n);
      node->rnic()->ResetMttCache();
      MttMissProbe probe(node->rnic());
      auto* cctx = ctx.context(n);
      std::vector<uint8_t> buf(24);
      // Probe with bulk-pattern addresses reconstructed via directory-free
      // sampling: reuse BulkAlloc pointers held by the node's own test API
      // is not available here, so sample via fresh allocations.
      std::vector<GlobalAddr> sample;
      for (int i = 0; i < 4000; ++i) {
        auto addr = cctx->Alloc(24);
        CORM_CHECK(addr.ok());
        sample.push_back(*addr);
      }
      Rng srng(n);
      for (int i = 0; i < 20000; ++i) {
        CORM_CHECK(cctx->DirectRead(sample[srng.Uniform(sample.size())],
                                    buf.data(), 24)
                       .ok());
      }
      const auto model = node->latency_model();
      const double service = model.RnicReadServiceNs() +
                             probe.MissRate() * model.MttCacheMissNs();
      read_cap += 1e9 / service;
      rpc_cap += static_cast<double>(node->config().nic_msg_rate) / 2.0;
    }

    const uint64_t frag_bytes = cluster.TotalActiveMemoryBytes();
    auto reports = cluster.CompactAllIfFragmented();
    CORM_CHECK(reports.ok());
    size_t freed = 0;
    for (const auto& r : *reports) freed += r.blocks_freed;
    PrintRow({std::to_string(nodes), Kreq(read_cap), Kreq(rpc_cap),
              Gib(frag_bytes), Gib(cluster.TotalActiveMemoryBytes()),
              std::to_string(freed)},
             17);
  }
  std::printf(
      "\nexpectation: read and RPC capacity scale ~linearly with nodes (one\n"
      "RNIC each); compaction stays node-local so its savings scale too,\n"
      "and no cross-node coordination is ever needed (§3.1.2).\n");
  return 0;
}
