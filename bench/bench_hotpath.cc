// Hot-path RPC throughput, with per-toggle attribution (DESIGN.md §7).
//
// Unlike the figure benches, this one measures *wall-clock* throughput of
// the real serving loop (SimTimeScale 0, NIC message rate uncapped): the
// quantity under test is the data plane's per-op CPU cost — directory
// lookup, queue synchronization, message allocation, scheduler rotation —
// not the modeled network. Each data-plane knob (CormConfig::dir_cache,
// msg_pool, poll_batch, idle_park) can be toggled from the CLI, and the
// default run flips each one off individually to attribute its share.
//
// Output: a table on stdout plus BENCH_hotpath.json (schema in
// EXPERIMENTS.md, "Hot path" section). --check=<floor.json> compares the
// full-toggle results against a checked-in floor and exits non-zero on a
// >30% regression — the CI perf-smoke gate.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "rdma/rpc_transport.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormConfig;
using core::CormNode;
using core::GlobalAddr;

namespace {

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

struct Toggles {
  bool dir_cache = true;
  bool msg_pool = true;
  size_t poll_batch = 16;
  bool idle_park = true;
};

struct Workload {
  int num_workers = 4;
  int threads = 4;
  size_t objects = 4096;
  uint32_t payload = 64;
  uint64_t seconds = 2;
};

struct Results {
  double read_1t = 0;
  double read_nt = 0;
  double mixed_nt = 0;
  core::NodeStats counters;
};

// Closed-loop clients hammering Read (or alternating Read/Write) on a
// shared pre-allocated object set for a fixed wall-clock window.
double RunLoad(CormNode* node, const std::vector<GlobalAddr>& addrs,
               int nthreads, bool mixed, uint64_t seconds, uint32_t payload) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> ts;
  ts.reserve(static_cast<size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    ts.emplace_back([&, t] {
      auto ctx = Context::Create(node);
      std::vector<GlobalAddr> mine = addrs;  // private copy: corrections
      std::vector<uint8_t> buf(payload);
      uint64_t n = 0;
      size_t i = static_cast<size_t>(t) * 997;  // decorrelate thread walks
      while (!stop.load(std::memory_order_relaxed)) {
        GlobalAddr& a = mine[i++ % mine.size()];
        const Status st = (mixed && (i & 1))
                              ? ctx->Write(&a, buf.data(), payload)
                              : ctx->Read(&a, buf.data(), payload);
        if (st.ok()) ++n;
      }
      ops.fetch_add(n);
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (auto& th : ts) th.join();
  return static_cast<double>(ops.load()) / static_cast<double>(seconds);
}

Results Measure(const Workload& w, const Toggles& t, bool full_matrix) {
  rdma::RpcMessagePool::SetEnabled(t.msg_pool);
  CormConfig cfg;
  cfg.num_workers = w.num_workers;
  cfg.nic_msg_rate = 0;  // uncapped: measure CPU cost, not the modeled NIC
  cfg.dir_cache = t.dir_cache;
  cfg.msg_pool = t.msg_pool;
  cfg.poll_batch = t.poll_batch;
  cfg.idle_park = t.idle_park;
  CormNode node(cfg);
  auto addrs = node.BulkAlloc(w.objects, w.payload);
  CORM_CHECK(addrs.ok());
  Results r;
  r.read_1t = RunLoad(&node, *addrs, 1, false, w.seconds, w.payload);
  if (full_matrix) {
    r.read_nt = RunLoad(&node, *addrs, w.threads, false, w.seconds, w.payload);
    r.mixed_nt = RunLoad(&node, *addrs, w.threads, true, w.seconds, w.payload);
  }
  r.counters = node.stats();
  rdma::RpcMessagePool::SetEnabled(true);
  return r;
}

// Minimal numeric-field extraction — enough for our own flat floor file.
double JsonNumber(const std::string& text, const std::string& key,
                  bool* ok) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    *ok = false;
    return 0;
  }
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) {
    *ok = false;
    return 0;
  }
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);

  Workload w;
  w.num_workers = static_cast<int>(FlagU64(argc, argv, "workers", 4));
  w.threads = static_cast<int>(FlagU64(argc, argv, "threads", 4));
  w.objects = FlagU64(argc, argv, "objects", 4096);
  w.payload = static_cast<uint32_t>(FlagU64(argc, argv, "payload", 64));
  w.seconds = FlagU64(argc, argv, "seconds", 2);

  Toggles full;
  full.dir_cache = FlagU64(argc, argv, "dir_cache", 1) != 0;
  full.msg_pool = FlagU64(argc, argv, "msg_pool", 1) != 0;
  full.poll_batch = FlagU64(argc, argv, "poll_batch", 16);
  full.idle_park = FlagU64(argc, argv, "idle_park", 1) != 0;
  const bool attrib = FlagU64(argc, argv, "attrib", 1) != 0;
  const std::string json_path =
      FlagStr(argc, argv, "json", "BENCH_hotpath.json");
  const std::string floor_path = FlagStr(argc, argv, "check", "");

  PrintTitle("Hot path: RPC throughput (wall clock, NIC uncapped)");
  std::printf("workers=%d threads=%d objects=%zu payload=%uB window=%llus\n",
              w.num_workers, w.threads, w.objects, w.payload,
              static_cast<unsigned long long>(w.seconds));

  const Results r = Measure(w, full, /*full_matrix=*/true);
  PrintRow({"mode", "ops/s"}, 26);
  PrintRow({"read 1 client", Fmt("%.0f", r.read_1t)}, 26);
  PrintRow({"read N clients", Fmt("%.0f", r.read_nt)}, 26);
  PrintRow({"mixed 50/50 N clients", Fmt("%.0f", r.mixed_nt)}, 26);

  // Attribution: flip each toggle off in isolation, re-measure the
  // single-client read rate. What each knob buys depends on the host — on
  // few-core machines idle_park dominates; with many cores the cache and
  // pool show up instead.
  struct Attrib {
    const char* key;
    double read_1t;
  };
  std::vector<Attrib> attribution;
  if (attrib) {
    PrintTitle("Attribution: single toggles off, read 1 client");
    PrintRow({"toggle off", "ops/s", "vs full"}, 22);
    const struct {
      const char* key;
      Toggles t;
    } variants[] = {
        {"dir_cache", [&] { Toggles t = full; t.dir_cache = false; return t; }()},
        {"msg_pool", [&] { Toggles t = full; t.msg_pool = false; return t; }()},
        {"poll_batch", [&] { Toggles t = full; t.poll_batch = 1; return t; }()},
        {"idle_park", [&] { Toggles t = full; t.idle_park = false; return t; }()},
    };
    for (const auto& v : variants) {
      const Results rv = Measure(w, v.t, /*full_matrix=*/false);
      attribution.push_back({v.key, rv.read_1t});
      PrintRow({v.key, Fmt("%.0f", rv.read_1t),
                Fmt("%.2fx", r.read_1t / std::max(rv.read_1t, 1.0))},
               22);
    }
  }

  // JSON artifact (schema: EXPERIMENTS.md, "Hot path").
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"hotpath\",\n";
    out << "  \"config\": {\"workers\": " << w.num_workers
        << ", \"threads\": " << w.threads << ", \"objects\": " << w.objects
        << ", \"payload\": " << w.payload << ", \"seconds\": " << w.seconds
        << "},\n";
    out << "  \"toggles\": {\"dir_cache\": " << (full.dir_cache ? 1 : 0)
        << ", \"msg_pool\": " << (full.msg_pool ? 1 : 0)
        << ", \"poll_batch\": " << full.poll_batch
        << ", \"idle_park\": " << (full.idle_park ? 1 : 0) << "},\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"results\": {\"read_1t\": %.0f, \"read_nt\": %.0f, "
                  "\"mixed_nt\": %.0f},\n",
                  r.read_1t, r.read_nt, r.mixed_nt);
    out << buf;
    out << "  \"attribution\": {";
    for (size_t i = 0; i < attribution.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s\"read_1t_no_%s\": %.0f",
                    i ? ", " : "", attribution[i].key,
                    attribution[i].read_1t);
      out << buf;
    }
    out << "},\n";
    out << "  \"counters\": {\"dir_cache_hits\": " << r.counters.dir_cache_hits
        << ", \"dir_cache_misses\": " << r.counters.dir_cache_misses
        << ", \"rpc_batches\": " << r.counters.rpc_batches
        << ", \"rpc_polled\": " << r.counters.rpc_polled
        << ", \"id_draw_fallbacks\": " << r.counters.id_draw_fallbacks
        << "},\n";
    // The pre-overhaul numbers on the reference host (single-CPU VM, same
    // workload defaults), kept for before/after context in the artifact.
    out << "  \"baseline_pre_pr\": {\"read_1t\": 332317, \"read_nt\": "
           "696714, \"mixed_nt\": 687150}\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // Floor check (CI perf smoke): the full-toggle numbers must stay within
  // 30% of the checked-in floor.
  if (!floor_path.empty()) {
    std::ifstream in(floor_path);
    if (!in) {
      std::fprintf(stderr, "check: cannot read floor file %s\n",
                   floor_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string floor_text = ss.str();
    const struct {
      const char* key;
      double measured;
    } checks[] = {{"read_1t", r.read_1t},
                  {"read_nt", r.read_nt},
                  {"mixed_nt", r.mixed_nt}};
    int rc = 0;
    for (const auto& c : checks) {
      bool ok = true;
      const double floor = JsonNumber(floor_text, c.key, &ok);
      if (!ok) {
        std::fprintf(stderr, "check: floor file lacks \"%s\"\n", c.key);
        rc = 2;
        continue;
      }
      const double min_ok = 0.7 * floor;
      if (c.measured < min_ok) {
        std::fprintf(stderr,
                     "check: %s = %.0f ops/s is below 70%% of the floor "
                     "%.0f (>30%% regression)\n",
                     c.key, c.measured, floor);
        rc = 1;
      } else {
        std::printf("check: %s = %.0f ops/s >= %.0f (70%% of floor %.0f)\n",
                    c.key, c.measured, min_ok, floor);
      }
    }
    if (rc != 0) return rc;
    std::printf("check: OK\n");
  }
  return 0;
}
