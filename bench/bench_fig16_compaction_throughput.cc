// Figure 16: client read throughput before / during / after a large
// compaction, for both server-side pointer-correction strategies. This is
// the one bench that runs in *real time* (SimTimeScale = 1): an RPC-reading
// client and a DirectRead client race an actual compaction of thousands of
// blocks; throughput is bucketed per 250 ms.
//
// (top)    corrections via thread messaging; RDMA client backs failed
//          DirectReads with ScanRead;
// (bottom) corrections via block scanning; RDMA client backs failed
//          DirectReads with an RPC read.
//
// Note: the host is a single CPU, so absolute rates are far below the
// paper's testbed; the *shape* — the dip during compaction, the RPC stall
// under thread messaging while the owner compacts, and RDMA's faster
// recovery with ScanRead — is the reproduced result.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

constexpr int kBucketMs = 250;

struct Series {
  std::vector<uint64_t> ops_per_bucket;
};

void RunExperiment(core::RpcCorrectionStrategy strategy,
                   Context::MovedFallback fallback, size_t num_objects,
                   int run_seconds, int compact_at_s) {
  core::CormConfig config;
  config.num_workers = 2;
  config.rpc_correction = strategy;
  config.compaction_max_blocks = SIZE_MAX;  // one long unbounded run (§4.3.2)
  CormNode node(config);

  sim::SetSimTimeScale(0.0);  // load fast
  auto addrs = node.BulkAlloc(num_objects, 24);
  CORM_CHECK(addrs.ok());
  Rng rng(23);
  std::vector<GlobalAddr> doomed, survivors;
  for (auto& addr : *addrs) {
    (rng.Chance(0.75) ? doomed : survivors).push_back(addr);
  }
  CORM_CHECK(node.BulkFree(doomed).ok());
  sim::SetSimTimeScale(1.0);  // real-time phase

  const int buckets = run_seconds * 1000 / kBucketMs;
  Series rpc_series{std::vector<uint64_t>(buckets, 0)};
  Series rdma_series{std::vector<uint64_t>(buckets, 0)};
  std::atomic<bool> stop{false};
  const auto start = std::chrono::steady_clock::now();
  auto bucket_of = [&] {
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return std::min<int>(static_cast<int>(ms / kBucketMs), buckets - 1);
  };

  std::thread rpc_client([&] {
    auto ctx = Context::Create(&node);
    std::vector<GlobalAddr> ptrs = survivors;  // corrected in place
    std::vector<uint8_t> buf(64);
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status st = ctx->Read(&ptrs[i], buf.data(), 24);
      if (st.ok()) rpc_series.ops_per_bucket[bucket_of()]++;
      i = (i + 1) % ptrs.size();
    }
  });
  std::thread rdma_client([&] {
    auto ctx = Context::Create(&node);
    std::vector<GlobalAddr> ptrs = survivors;
    std::vector<uint8_t> buf(64);
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status st = ctx->ReadWithRecovery(&ptrs[i], buf.data(), 24, fallback);
      if (st.ok()) rdma_series.ops_per_bucket[bucket_of()]++;
      i = (i + 1) % ptrs.size();
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(compact_at_s));
  const auto compact_start = std::chrono::steady_clock::now();
  auto report = node.Compact(*node.ClassForPayload(24));
  const double compact_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    compact_start)
          .count();
  while (std::chrono::steady_clock::now() - start <
         std::chrono::seconds(run_seconds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true);
  rpc_client.join();
  rdma_client.join();
  sim::SetSimTimeScale(0.0);

  CORM_CHECK(report.ok()) << report.status();
  std::printf("compaction: %zu blocks collected, %zu freed, %zu objects "
              "moved (%zu relocated), took %.2fs wall\n",
              report->blocks_collected, report->blocks_freed,
              report->objects_moved, report->objects_relocated, compact_sec);
  PrintRow({"t_s", "RPC Kreq/s", "RDMA Kreq/s"});
  const double per_sec = 1000.0 / kBucketMs;
  for (int b = 0; b < buckets; ++b) {
    PrintRow({Fmt("%.2f", b * kBucketMs / 1000.0),
              Fmt("%.1f", rpc_series.ops_per_bucket[b] * per_sec / 1e3),
              Fmt("%.1f", rdma_series.ops_per_bucket[b] * per_sec / 1e3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_objects = FlagU64(argc, argv, "objects", 600'000);
  const int run_seconds = static_cast<int>(FlagU64(argc, argv, "seconds", 8));

  PrintTitle(
      "Figure 16 (top): thread-messaging corrections; RDMA uses ScanRead");
  RunExperiment(core::RpcCorrectionStrategy::kThreadMessaging,
                Context::MovedFallback::kScanRead, num_objects, run_seconds,
                2);
  PrintTitle(
      "Figure 16 (bottom): block-scan corrections; RDMA uses RPC reads");
  RunExperiment(core::RpcCorrectionStrategy::kBlockScan,
                Context::MovedFallback::kRpcRead, num_objects, run_seconds,
                2);
  std::printf(
      "\nPaper shape: (top) the RPC client stalls while the compacting\n"
      "leader owns the blocks and cannot answer correction messages; the\n"
      "ScanRead client sails through with ~5%% degradation. (bottom) no\n"
      "long RPC stall (scan corrections need no owner), ~22%% dip while\n"
      "blocks are locked; the RDMA client pays more per correction via\n"
      "RPC. DirectReads stay ~1.6x faster than RPC reads throughout.\n");
  return 0;
}
