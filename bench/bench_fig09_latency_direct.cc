// Figure 9: median latency of CoRM operations through *direct* pointers,
// vs the raw RPC and raw one-sided RDMA baselines, across object sizes
// 8..2048 B. 4 KiB blocks, 8 workers, 10,000 objects per size class loaded
// first (paper §4.1).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);  // report modeled latencies
  const int samples = static_cast<int>(FlagU64(argc, argv, "samples", 2000));

  core::CormConfig config;
  config.num_workers = 8;
  config.block_pages = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  const auto model = node.latency_model();

  std::printf("reference: TCP over IPoIB on the same link: %.1f us RTT\n",
              model.TcpNs(8) / 1000.0);
  PrintTitle("Figure 9 (left): Remote Alloc/Free median latency (us)");
  PrintRow({"size", "Alloc", "Free", "RPC-baseline"});
  std::vector<std::vector<GlobalAddr>> loaded;
  for (uint32_t size = 8; size <= 2048; size *= 2) {
    // Pre-load 10k objects of this class (the paper's working set).
    auto addrs = node.BulkAlloc(10000, size);
    CORM_CHECK(addrs.ok());
    loaded.push_back(std::move(*addrs));

    Histogram alloc_h, free_h;
    for (int i = 0; i < samples; ++i) {
      auto addr = ctx->Alloc(size);
      CORM_CHECK(addr.ok());
      alloc_h.Record(ctx->stats().last_op_ns);
      CORM_CHECK(ctx->Free(&*addr).ok());
      free_h.Record(ctx->stats().last_op_ns);
    }
    PrintRow({std::to_string(size), Us(alloc_h.Median()), Us(free_h.Median()),
              Us(model.RpcNs(size))});
  }

  PrintTitle("Figure 9 (right): Remote Read/Write median latency (us)");
  PrintRow({"size", "Read", "Write", "DirectRead", "RPC-baseline",
            "RDMA-baseline"});
  Rng rng(1);
  size_t class_i = 0;
  for (uint32_t size = 8; size <= 2048; size *= 2, ++class_i) {
    auto& addrs = loaded[class_i];
    std::vector<uint8_t> buf(size);
    auto pick = [&](int) -> GlobalAddr& {
      return addrs[rng.Uniform(addrs.size())];
    };
    Histogram read_h = SampleLatency(ctx.get(), samples, [&](int i) {
      GlobalAddr a = pick(i);
      CORM_CHECK(ctx->Read(&a, buf.data(), size).ok());
    });
    Histogram write_h = SampleLatency(ctx.get(), samples, [&](int i) {
      GlobalAddr a = pick(i);
      CORM_CHECK(ctx->Write(&a, buf.data(), size).ok());
    });
    Histogram direct_h = SampleLatency(ctx.get(), samples, [&](int i) {
      CORM_CHECK(ctx->DirectRead(pick(i), buf.data(), size).ok());
    });
    PrintRow({std::to_string(size), Us(read_h.Median()), Us(write_h.Median()),
              Us(direct_h.Median()), Us(model.RpcNs(size)),
              Us(model.RdmaReadNs(size))});
  }
  std::printf(
      "\nPaper shape: all RPC ops ~2.5-4us growing with size; Alloc/Free add\n"
      "~0.5us over the RPC baseline; DirectRead tracks the raw RDMA read\n"
      "(1.7us base) with a consistency-check overhead visible only for\n"
      "large objects; TCP/IPoIB reference on this link would be ~17us.\n");
  return 0;
}
