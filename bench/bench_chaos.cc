// Availability under chaos: a replicated YCSB workload driven through a
// seeded fault schedule (RPC drops/delays, QP breaks, torn writes, node
// crash/restart cycles), reporting per-run success/timeout/failover rates
// and what the failure detector saw.
//
// Flags (all --key=value):
//   --seed=N          fault-schedule seed (default 0xC0DE5EED)
//   --ops=N           operations per client thread (default 20000)
//   --threads=N       client threads (default 3)
//   --nodes=N         cluster size (default 3)
//   --crash_pm=N      per-tick node-crash probability, per mille (default 60)
//   --drop_pm=N       per-RPC request-drop probability, per mille (default 8)

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/object_layout.h"
#include "dsm/cluster.h"
#include "dsm/replication.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"
#include "workload/ycsb.h"

namespace corm::bench {
namespace {

constexpr size_t kObjectSize = 48;
constexpr uint64_t kKeysPerThread = 64;

struct WorkloadCounters {
  uint64_t ops = 0;
  uint64_t ok = 0;
  uint64_t transient = 0;  // timeout / network / locked / torn / qp / moved
  uint64_t failovers = 0;
  uint64_t degraded_writes = 0;
  uint64_t rpc_timeouts = 0;
};

bool Transient(const Status& st) {
  switch (st.code()) {
    case StatusCode::kTimeout:
    case StatusCode::kNetworkError:
    case StatusCode::kObjectLocked:
    case StatusCode::kTornRead:
    case StatusCode::kQpBroken:
    case StatusCode::kObjectMoved:
      return true;
    default:
      return false;
  }
}

void RunClient(dsm::Cluster* cluster, int thread_id, uint64_t seed,
               uint64_t ops, WorkloadCounters* out) {
  core::Context::Options opts;
  opts.rpc_retry.deadline_ns = 15'000'000;
  opts.recovery_retry.deadline_ns = 40'000'000;
  dsm::ReplicatedContext ctx(cluster, /*replication_factor=*/2, opts);

  workload::YcsbConfig wcfg;
  wcfg.num_keys = kKeysPerThread;
  wcfg.zipf_theta = 0.6;
  wcfg.read_fraction = 0.5;
  wcfg.seed = seed;
  workload::YcsbGenerator gen(wcfg);

  std::vector<dsm::ReplicatedAddr> keys(kKeysPerThread);
  std::vector<uint8_t> buf(kObjectSize), outbuf(kObjectSize);

  WorkloadCounters c;
  for (uint64_t i = 0; i < ops; ++i) {
    const auto op = gen.Next();
    dsm::ReplicatedAddr& addr = keys[op.key];
    ++c.ops;
    Status st;
    if (addr.IsNull()) {
      auto fresh = ctx.Alloc(kObjectSize);
      if (fresh.ok()) {
        addr = *fresh;
        core::PatternFill(op.key, buf.data(), kObjectSize);
        st = ctx.Write(&addr, buf.data(), kObjectSize);
      } else {
        st = fresh.status();
      }
    } else if (op.is_read) {
      st = ctx.Read(&addr, outbuf.data(), kObjectSize);
    } else {
      core::PatternFill(op.key ^ i, buf.data(), kObjectSize);
      st = ctx.Write(&addr, buf.data(), kObjectSize);
    }
    if (st.ok()) {
      ++c.ok;
    } else if (Transient(st)) {
      ++c.transient;
      if (st.code() == StatusCode::kTimeout) ++c.rpc_timeouts;
    }
  }
  c.failovers = ctx.failovers();
  c.degraded_writes = ctx.degraded_writes();
  *out = c;
}

int Main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);  // modeled time only; chaos uses wall deadlines

  const uint64_t seed = FlagU64(argc, argv, "seed", 0xC0DE5EED);
  const uint64_t ops = FlagU64(argc, argv, "ops", 20'000);
  const int threads = static_cast<int>(FlagU64(argc, argv, "threads", 3));
  const int nodes = static_cast<int>(FlagU64(argc, argv, "nodes", 3));
  const double crash_p = FlagU64(argc, argv, "crash_pm", 60) / 1000.0;
  const double drop_p = FlagU64(argc, argv, "drop_pm", 8) / 1000.0;

  sim::FaultInjector injector(seed);
  auto arm = [&](const char* site, double p, uint64_t delay_ns = 0) {
    sim::FaultSchedule s;
    s.probability = p;
    s.delay_ns = delay_ns;
    injector.Arm(site, s);
  };
  arm(sim::fault_sites::kRpcDelay, 0.02, 4000);
  arm(sim::fault_sites::kRpcDropRequest, drop_p);
  arm(sim::fault_sites::kRpcDropResponse, drop_p / 2);
  arm(sim::fault_sites::kRpcDupCompletion, 0.01);
  arm(sim::fault_sites::kQpBreak, 0.004);
  arm(sim::fault_sites::kTornWrite, 0.01, 3000);
  arm(sim::fault_sites::kNodeCrash, crash_p);

  dsm::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.node_config.num_workers = 2;
  cfg.node_config.seed = seed;
  // Compaction runs on each node's background scheduler, interleaved with
  // the chaos storm, rather than as driver-thread sweeps.
  cfg.node_config.background_compaction = true;
  cfg.node_config.compaction_check_interval_us = 3000;
  dsm::Cluster cluster(cfg);

  std::vector<WorkloadCounters> counters(threads);
  {
    sim::ScopedFaultInjector install(&injector);
    std::atomic<bool> stop{false};
    std::thread driver([&] {
      Rng rng(seed ^ 0xD21CEULL);
      int crashed = -1;
      int restart_in = 0;
      while (!stop.load(std::memory_order_acquire)) {
        cluster.Heartbeat();
        if (crashed < 0) {
          if (injector.ShouldFire(sim::fault_sites::kNodeCrash)) {
            crashed = static_cast<int>(rng.Uniform(nodes));
            cluster.CrashNode(crashed);
            restart_in = 2 + static_cast<int>(rng.Uniform(4));
          }
        } else if (--restart_in <= 0) {
          cluster.RestartNode(crashed);
          crashed = -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (crashed >= 0) cluster.RestartNode(crashed);
    });

    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      clients.emplace_back(RunClient, &cluster, t, seed + t, ops,
                           &counters[t]);
    }
    for (auto& cl : clients) cl.join();
    stop.store(true, std::memory_order_release);
    driver.join();
  }

  WorkloadCounters total;
  for (const auto& c : counters) {
    total.ops += c.ops;
    total.ok += c.ok;
    total.transient += c.transient;
    total.failovers += c.failovers;
    total.degraded_writes += c.degraded_writes;
    total.rpc_timeouts += c.rpc_timeouts;
  }
  const auto* fd = cluster.failure_detector();

  PrintTitle("Chaos availability (replicated YCSB 50/50, k=2)");
  PrintRow({"seed", Fmt("%.0f", static_cast<double>(seed))});
  PrintRow({"metric", "count", "per-op"});
  auto rate = [&](uint64_t v) {
    return Fmt("%.4f", total.ops ? static_cast<double>(v) / total.ops : 0.0);
  };
  PrintRow({"ops", std::to_string(total.ops), "1.0000"});
  PrintRow({"ok", std::to_string(total.ok), rate(total.ok)});
  PrintRow({"transient_err", std::to_string(total.transient),
            rate(total.transient)});
  PrintRow({"rpc_timeouts", std::to_string(total.rpc_timeouts),
            rate(total.rpc_timeouts)});
  PrintRow({"read_failovers", std::to_string(total.failovers),
            rate(total.failovers)});
  PrintRow({"degraded_writes", std::to_string(total.degraded_writes),
            rate(total.degraded_writes)});

  PrintTitle("Fault schedule fired (seeded, reproducible)");
  PrintRow({"site", "events", "fired"});
  for (const char* site :
       {sim::fault_sites::kRpcDelay, sim::fault_sites::kRpcDropRequest,
        sim::fault_sites::kRpcDropResponse,
        sim::fault_sites::kRpcDupCompletion, sim::fault_sites::kQpBreak,
        sim::fault_sites::kTornWrite, sim::fault_sites::kNodeCrash}) {
    PrintRow({site, std::to_string(injector.EventCount(site)),
              std::to_string(injector.FiredCount(site))});
  }

  PrintTitle("Failure detector");
  PrintRow({"deaths", std::to_string(fd->deaths())});
  PrintRow({"revivals", std::to_string(fd->revivals())});

  PrintTitle("Background compaction (scheduler-paced, sliced)");
  uint64_t bg_runs = 0, runs = 0, slices = 0, bytes = 0, timeouts = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const auto stats = cluster.node(n)->stats();
    bg_runs += stats.compaction_bg_runs;
    runs += stats.compaction_runs;
    slices += stats.compaction_slices;
    bytes += stats.compaction_bytes_copied;
    timeouts += stats.compaction_timeouts;
  }
  PrintRow({"scheduler_wakeups", std::to_string(bg_runs)});
  PrintRow({"runs", std::to_string(runs)});
  PrintRow({"slices", std::to_string(slices)});
  PrintRow({"bytes_copied", std::to_string(bytes)});
  PrintRow({"collect_timeouts", std::to_string(timeouts)});
  return 0;
}

}  // namespace
}  // namespace corm::bench

int main(int argc, char** argv) { return corm::bench::Main(argc, argv); }
