// Keyed-index bench (DESIGN.md §13): one-sided hit rate and keyed-read
// latency against the raw-pointer baseline, steady state and under
// compaction churn.
//
// Phase 1 — load: the working set goes in through the keyed Put path; the
// returned GlobalAddrs double as the raw-pointer comparison set.
//
// Phase 2 — steady state: a fresh client resolves every key with one-sided
// bucket probes (tier-2), then serves a uniform read pass off its hint
// cache (tier-1). Both tiers avoid the RPC ring, so the steady-state
// one-sided hit rate must be >= 90% and the warm keyed read p50 must stay
// within 1.5x of a plain DirectRead on the same objects — both gates are
// self-enforcing (non-zero exit on violation, the CI index job runs this).
//
// Phase 3 — churn: half the keys are deleted, the size class is compacted
// (driving the IndexRepair sub-phase), and the survivors are re-read
// through the now-stale hint cache. Moved objects cost a stale-hint
// fallback to a fresh probe; the bucket entries themselves must have been
// repaired eagerly during compaction, so the post-churn RPC fallback count
// stays near zero. Reported, not gated: churn cost depends on how many
// blocks the pairing pass actually moved.
//
// Output: paper-style tables on stdout plus BENCH_index.json (schema in
// EXPERIMENTS.md, "Keyed index" section).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/histogram.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormConfig;
using core::CormNode;
using core::GlobalAddr;

namespace {

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

constexpr uint32_t kPayload = 64;
constexpr double kMinHitRate = 0.9;
constexpr double kMaxKeyedDirectRatio = 1.5;

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);

  const uint64_t keys = FlagU64(argc, argv, "keys", 512);
  const int samples = static_cast<int>(FlagU64(argc, argv, "samples", 2000));
  const std::string json_path =
      FlagStr(argc, argv, "json", "BENCH_index.json");

  CormConfig cfg;
  cfg.num_workers = 2;
  CormNode node(cfg);

  // --- Load through the keyed API. ----------------------------------------
  auto writer = Context::Create(&node);
  std::vector<GlobalAddr> addrs(keys);
  std::vector<uint8_t> buf(kPayload), out(kPayload);
  for (uint64_t k = 0; k < keys; ++k) {
    core::PatternFill(k, buf.data(), buf.size());
    auto a = writer->Put(k, buf.data(), buf.size());
    CORM_CHECK(a.ok()) << a.status().ToString();
    addrs[k] = *a;
  }

  // --- Steady state: cold resolve, then warm uniform reads. ---------------
  auto reader = Context::Create(&node);
  Rng rng(42);
  Histogram cold =
      SampleLatency(reader.get(), static_cast<int>(keys), [&](int i) {
        CORM_CHECK(reader
                       ->Get(static_cast<uint64_t>(i), out.data(),
                             out.size())
                       .ok());
      });
  Histogram warm = SampleLatency(reader.get(), samples, [&](int) {
    CORM_CHECK(reader->Get(rng.Uniform(keys), out.data(), out.size()).ok());
  });
  const core::ClientStats steady = reader->stats();
  const double hit_rate =
      steady.index_lookups == 0
          ? 0.0
          : static_cast<double>(steady.index_one_sided_hits) /
                static_cast<double>(steady.index_lookups);

  // Raw-pointer baseline on the same objects, same (MTT-warm) client.
  Histogram direct = SampleLatency(reader.get(), samples, [&](int) {
    CORM_CHECK(
        reader->DirectRead(addrs[rng.Uniform(keys)], out.data(), out.size())
            .ok());
  });
  const double ratio =
      direct.Percentile(0.5) == 0
          ? 0.0
          : static_cast<double>(warm.Percentile(0.5)) /
                static_cast<double>(direct.Percentile(0.5));

  PrintTitle("Keyed index: steady state (modeled ns)");
  PrintRow({"path", "p50_us", "p99_us"}, 16);
  PrintRow({"keyed_cold", Us(cold.Percentile(0.5)), Us(cold.Percentile(0.99))},
           16);
  PrintRow({"keyed_warm", Us(warm.Percentile(0.5)), Us(warm.Percentile(0.99))},
           16);
  PrintRow({"direct_read", Us(direct.Percentile(0.5)),
            Us(direct.Percentile(0.99))},
           16);
  std::printf(
      "lookups=%llu one_sided_hits=%llu rpc_fallbacks=%llu "
      "hit_rate=%.3f (gate: >= %.2f) keyed/direct p50 ratio=%.2fx "
      "(gate: <= %.2fx)\n",
      static_cast<unsigned long long>(steady.index_lookups),
      static_cast<unsigned long long>(steady.index_one_sided_hits),
      static_cast<unsigned long long>(steady.index_rpc_fallbacks),
      hit_rate, kMinHitRate, ratio, kMaxKeyedDirectRatio);

  // --- Churn: delete half, compact, re-read survivors. --------------------
  for (uint64_t k = 0; k < keys; k += 2) {
    CORM_CHECK(writer->Del(k).ok());
  }
  auto cls = node.ClassForPayload(kPayload);
  CORM_CHECK(cls.ok());
  CORM_CHECK(node.Compact(*cls).ok());

  const uint64_t lk_before = reader->stats().index_lookups;
  const uint64_t hit_before = reader->stats().index_one_sided_hits;
  const uint64_t fb_before = reader->stats().index_rpc_fallbacks;
  Histogram churned = SampleLatency(reader.get(), samples, [&](int) {
    const uint64_t k = rng.Uniform(keys) | 1;  // survivors are the odd keys
    CORM_CHECK(reader->Get(k, out.data(), out.size()).ok());
  });
  const core::ClientStats after = reader->stats();
  const uint64_t churn_lookups = after.index_lookups - lk_before;
  const uint64_t churn_hits = after.index_one_sided_hits - hit_before;
  const uint64_t churn_fallbacks = after.index_rpc_fallbacks - fb_before;
  const double churn_hit_rate =
      churn_lookups == 0
          ? 0.0
          : static_cast<double>(churn_hits) /
                static_cast<double>(churn_lookups);
  const core::NodeStats ns = node.stats();

  PrintTitle("Keyed index: after delete-half + compaction");
  PrintRow({"path", "p50_us", "p99_us"}, 16);
  PrintRow({"keyed_churned", Us(churned.Percentile(0.5)),
            Us(churned.Percentile(0.99))},
           16);
  std::printf(
      "repairs=%llu fenced=%llu churn_hit_rate=%.3f churn_rpc_fallbacks=%llu\n",
      static_cast<unsigned long long>(ns.index_repairs),
      static_cast<unsigned long long>(ns.index_fenced_entries),
      churn_hit_rate, static_cast<unsigned long long>(churn_fallbacks));

  // --- JSON artifact (schema: EXPERIMENTS.md, "Keyed index"). -------------
  {
    std::ofstream jout(json_path);
    jout << "{\n  \"bench\": \"index\",\n";
    jout << "  \"config\": {\"payload\": " << kPayload << ", \"keys\": " << keys
         << ", \"samples\": " << samples << "},\n";
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "  \"steady\": {\"cold_p50_ns\": %llu, \"warm_p50_ns\": %llu, "
        "\"direct_p50_ns\": %llu, \"keyed_direct_ratio\": %.3f, "
        "\"lookups\": %llu, \"one_sided_hits\": %llu, "
        "\"rpc_fallbacks\": %llu, \"hit_rate\": %.4f},\n",
        static_cast<unsigned long long>(cold.Percentile(0.5)),
        static_cast<unsigned long long>(warm.Percentile(0.5)),
        static_cast<unsigned long long>(direct.Percentile(0.5)), ratio,
        static_cast<unsigned long long>(steady.index_lookups),
        static_cast<unsigned long long>(steady.index_one_sided_hits),
        static_cast<unsigned long long>(steady.index_rpc_fallbacks),
        hit_rate);
    jout << line;
    std::snprintf(
        line, sizeof(line),
        "  \"churn\": {\"churned_p50_ns\": %llu, \"repairs\": %llu, "
        "\"fenced_entries\": %llu, \"hit_rate\": %.4f, "
        "\"rpc_fallbacks\": %llu},\n",
        static_cast<unsigned long long>(churned.Percentile(0.5)),
        static_cast<unsigned long long>(ns.index_repairs),
        static_cast<unsigned long long>(ns.index_fenced_entries),
        churn_hit_rate, static_cast<unsigned long long>(churn_fallbacks));
    jout << line;
    std::snprintf(line, sizeof(line),
                  "  \"gate\": {\"min_hit_rate\": %.2f, "
                  "\"max_keyed_direct_ratio\": %.2f}\n}\n",
                  kMinHitRate, kMaxKeyedDirectRatio);
    jout << line;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --- Self-enforcing acceptance gates. -----------------------------------
  int rc = 0;
  if (hit_rate < kMinHitRate) {
    std::fprintf(stderr,
                 "FAIL: steady-state one-sided hit rate %.3f below the "
                 "%.2f gate\n",
                 hit_rate, kMinHitRate);
    rc = 1;
  }
  if (ratio > kMaxKeyedDirectRatio) {
    std::fprintf(stderr,
                 "FAIL: warm keyed read p50 is %.2fx a direct read "
                 "(gate: <= %.2fx)\n",
                 ratio, kMaxKeyedDirectRatio);
    rc = 1;
  }
  if (rc == 0) std::printf("gate: OK\n");
  return rc;
}
