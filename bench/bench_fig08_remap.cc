// Figure 8: latency of the three strategies for restoring RDMA access
// after a page remap (ConnectX-5 model), measured against the simulated
// RNIC: (1) mmap + ibv_rereg_mr, (2) mmap + ODP fault on first read,
// (3) mmap + ibv_advise_mr prefetch.

#include <cstdio>

#include "bench/bench_common.h"
#include "rdma/queue_pair.h"
#include "rdma/rnic.h"
#include "sim/address_space.h"
#include "sim/latency_model.h"
#include "sim/physical_memory.h"

using namespace corm;
using namespace corm::bench;

namespace {

struct Setup {
  sim::PhysicalMemory phys;
  sim::AddressSpace space{&phys};
  rdma::Rnic rnic;
  sim::VAddr a = 0, b = 0;
  rdma::MrKeys keys;

  explicit Setup(bool odp)
      : rnic(&space, sim::LatencyModel{sim::RnicModel::kConnectX5,
                                       sim::CpuModel::kIntelXeon}) {
    a = space.ReserveRange(1);
    b = space.ReserveRange(1);
    CORM_CHECK(space.MapFresh(a, 1).ok());
    CORM_CHECK(space.MapFresh(b, 1).ok());
    keys = *rnic.RegisterMemory(a, 1, odp);
    CORM_CHECK(space.Remap(a, b, 1).ok());  // the compaction remap
  }
};

}  // namespace

int main() {
  sim::SetSimTimeScale(0.0);  // modeled time only
  const sim::LatencyModel model{sim::RnicModel::kConnectX5,
                                sim::CpuModel::kIntelXeon};
  PrintTitle("Figure 8: RDMA remapping latencies (ConnectX-5)");
  PrintRow({"strategy", "mmap_us", "fix_us", "first_read_us", "next_read_us",
            "total_to_first_read_us"},
           22);
  char page[4096];

  {  // 1. ibv_rereg_mr
    Setup s(/*odp=*/false);
    const uint64_t fix = *s.rnic.ReregMr(s.keys.r_key);
    rdma::QueuePair qp(&s.rnic);
    const uint64_t first = *qp.Read(s.keys.r_key, s.a, page, 64);
    const uint64_t next = *qp.Read(s.keys.r_key, s.a, page, 64);
    PrintRow({"1:ibv_rereg_mr", Us(model.MmapNs()), Us(fix), Us(first),
              Us(next), Us(model.MmapNs() + fix + first)},
             22);
  }
  {  // 2. ODP only: first read pays the MTT miss
    Setup s(/*odp=*/true);
    rdma::QueuePair qp(&s.rnic);
    const uint64_t first = *qp.Read(s.keys.r_key, s.a, page, 64);
    const uint64_t next = *qp.Read(s.keys.r_key, s.a, page, 64);
    PrintRow({"2:ODP", Us(model.MmapNs()), "0.00", Us(first), Us(next),
              Us(model.MmapNs() + first)},
             22);
  }
  {  // 3. ODP + ibv_advise_mr prefetch
    Setup s(/*odp=*/true);
    const uint64_t fix = *s.rnic.AdviseMr(s.keys.r_key, s.a, 4096);
    rdma::QueuePair qp(&s.rnic);
    const uint64_t first = *qp.Read(s.keys.r_key, s.a, page, 64);
    const uint64_t next = *qp.Read(s.keys.r_key, s.a, page, 64);
    PrintRow({"3:ODP+advise_mr", Us(model.MmapNs()), Us(fix), Us(first),
              Us(next), Us(model.MmapNs() + fix + first)},
             22);
  }
  std::printf(
      "\nPaper values: mmap 1.9-2.3us; rereg 8.5-9.6us; ODP miss 62-65us;\n"
      "advise 4.5-4.6us; post-repair reads ~2us. Strategy 3 is CoRM's\n"
      "default. Note: a read racing strategy 1 breaks the QP (see\n"
      "rdma_test.AccessDuringReregBreaksQp).\n");
  return 0;
}
