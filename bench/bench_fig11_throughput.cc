// Figure 11: read throughput of CoRM vs emulated FaRM vs the raw baselines,
// for remote accesses (one-sided RDMA; per-client rate from modeled round
// trips) and local accesses (real wall-clock: CoRM/FaRM API reads vs raw
// memcpy).
//
// The paper loads 8 GiB per size class; we scale the working set down
// (--mib flag, default 64 MiB per class) — the shape is unaffected because
// per-op costs, not capacity, set the rates.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "baseline/farm_node.h"
#include "bench/bench_common.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

double WallOpsPerSec(int n, const std::function<void(int)>& op) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) op(i);
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return n / sec;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const uint64_t mib_per_class = FlagU64(argc, argv, "mib", 32);
  const int samples = static_cast<int>(FlagU64(argc, argv, "samples", 4000));

  core::CormConfig corm_config;
  corm_config.num_workers = 4;
  corm_config.block_pages = 1;
  CormNode corm(corm_config);
  auto farm_config = baseline::FarmConfig();
  farm_config.num_workers = 4;
  farm_config.block_pages = 1;  // match the 4 KiB setup for the comparison
  CormNode farm(farm_config);

  auto corm_ctx = Context::Create(&corm);
  auto farm_ctx = Context::Create(&farm);
  const auto model = corm.latency_model();

  PrintTitle("Figure 11 (left): remote read throughput, 1 client (Kreq/s)");
  PrintRow({"size", "CoRM", "FaRM", "rawRDMA"});
  Rng rng(3);
  std::vector<uint8_t> buf(8192);
  for (uint32_t size = 8; size <= 2048; size *= 2) {
    const size_t count = mib_per_class * kMiB / std::max<uint32_t>(size, 64);
    auto corm_addrs = corm.BulkAlloc(count, size);
    auto farm_addrs = farm.BulkAlloc(count, size);
    CORM_CHECK(corm_addrs.ok());
    CORM_CHECK(farm_addrs.ok());

    Histogram corm_h = SampleLatency(corm_ctx.get(), samples, [&](int) {
      CORM_CHECK(corm_ctx
                     ->DirectRead((*corm_addrs)[rng.Uniform(count)],
                                  buf.data(), size)
                     .ok());
    });
    Histogram farm_h = SampleLatency(farm_ctx.get(), samples, [&](int) {
      CORM_CHECK(farm_ctx
                     ->DirectRead((*farm_addrs)[rng.Uniform(count)],
                                  buf.data(), size)
                     .ok());
    });
    // Raw RDMA: a read of `size` bytes with no consistency check and the
    // same memory locality (MTT behaviour folded into CoRM/FaRM numbers).
    const double raw = 1e9 / model.RdmaReadNs(size);
    PrintRow({std::to_string(size), Kreq(1e9 / corm_h.Mean()),
              Kreq(1e9 / farm_h.Mean()), Kreq(raw)});
    CORM_CHECK(corm.BulkFree(*corm_addrs).ok());
    CORM_CHECK(farm.BulkFree(*farm_addrs).ok());
  }

  PrintTitle("Figure 11 (right): local read throughput, 1 core (Mreq/s)");
  PrintRow({"size", "CoRM", "FaRM", "memcpy"});
  Context::Options local_opts;
  local_opts.local = true;
  auto corm_local = Context::Create(&corm, local_opts);
  auto farm_local = Context::Create(&farm, local_opts);
  for (uint32_t size = 8; size <= 2048; size *= 2) {
    const size_t count = 16 * kMiB / std::max<uint32_t>(size, 64);
    auto corm_addrs = corm.BulkAlloc(count, size);
    auto farm_addrs = farm.BulkAlloc(count, size);
    CORM_CHECK(corm_addrs.ok());
    CORM_CHECK(farm_addrs.ok());
    const int n = 150000;
    const double corm_rate = WallOpsPerSec(n, [&](int i) {
      Status st = corm_local->DirectRead((*corm_addrs)[(i * 37) % count],
                                         buf.data(), size);
      (void)st;  // no concurrent writers: reads cannot fail or tear
    });
    const double farm_rate = WallOpsPerSec(n, [&](int i) {
      Status st = farm_local->DirectRead((*farm_addrs)[(i * 37) % count],
                                         buf.data(), size);
      (void)st;
    });
    // memcpy baseline over a matching footprint.
    std::vector<uint8_t> arena(16 * kMiB);
    const size_t slots = arena.size() / std::max<uint32_t>(size, 64);
    const double memcpy_rate = WallOpsPerSec(n, [&](int i) {
      std::memcpy(buf.data(),
                  arena.data() + ((i * 37) % slots) * std::max<uint32_t>(size, 64),
                  size);
    });
    PrintRow({std::to_string(size), Fmt("%.2f", corm_rate / 1e6),
              Fmt("%.2f", farm_rate / 1e6), Fmt("%.2f", memcpy_rate / 1e6)});
    CORM_CHECK(corm.BulkFree(*corm_addrs).ok());
    CORM_CHECK(farm.BulkFree(*farm_addrs).ok());
  }
  std::printf(
      "\nPaper shape: remote — raw RDMA fastest (380 Kreq/s small objects);\n"
      "CoRM == FaRM, within ~2%% of raw RDMA (consistency check only hurts\n"
      "large objects). Local — FaRM <= 1.01x CoRM; both slower than memcpy\n"
      "(paper: 1.33x via hardware MMU loads; here the gap is larger because\n"
      "local reads translate through the *software* page table).\n");
  return 0;
}
