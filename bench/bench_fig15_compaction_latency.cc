// Figure 15: latencies of the two compaction stages.
//   left:   block-collection time vs worker count (Intel vs AMD model);
//   center: compaction time vs number of 4 KiB blocks, per RNIC strategy;
//   right:  compaction time of one block vs block size (pages).
// As in the paper, each worker holds a single 32 B object so every thread
// donates exactly one block and all merges are conflict-free.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using namespace corm::bench;
using core::CormNode;

namespace {

// Builds a node with `workers` workers, one 24 B-payload object per worker
// (one block each), and returns the compaction report.
core::CompactionReport CompactOneObjectPerWorker(core::CormConfig config) {  // NOLINT
  CormNode node(config);
  auto addrs = node.BulkAlloc(config.num_workers, 24);
  CORM_CHECK(addrs.ok());
  auto class_idx = node.ClassForPayload(24);
  auto report = node.Compact(*class_idx);
  CORM_CHECK(report.ok()) << report.status();
  return *report;
}

}  // namespace

int main() {
  sim::SetSimTimeScale(0.0);

  PrintTitle("Figure 15 (left): collection time vs threads (us)");
  PrintRow({"threads", "Intel", "AMD"});
  for (int threads : {2, 4, 8, 16}) {
    core::CormConfig config;
    config.num_workers = threads;
    config.cpu_model = sim::CpuModel::kIntelXeon;
    auto intel = CompactOneObjectPerWorker(config);
    config.cpu_model = sim::CpuModel::kAmdEpyc;
    auto amd = CompactOneObjectPerWorker(config);
    PrintRow({std::to_string(threads), Us(intel.collection_ns),
              Us(amd.collection_ns)});
  }

  PrintTitle(
      "Figure 15 (center): compaction time vs #blocks, 4 KiB blocks (us)");
  PrintRow({"blocks", "ConnectX-3", "ConnectX-5", "CX-5+ODP"});
  for (int blocks : {2, 4, 8, 16}) {
    std::vector<std::string> row = {std::to_string(blocks)};
    struct Strat {
      sim::RnicModel rnic;
      sim::RemapStrategy strategy;
    };
    for (const Strat& strat :
         {Strat{sim::RnicModel::kConnectX3, sim::RemapStrategy::kReregMr},
          Strat{sim::RnicModel::kConnectX5, sim::RemapStrategy::kReregMr},
          Strat{sim::RnicModel::kConnectX5,
                sim::RemapStrategy::kOdpPrefetch}}) {
      core::CormConfig config;
      config.num_workers = blocks;  // one single-object block per worker
      config.rnic_model = strat.rnic;
      config.remap_strategy = strat.strategy;
      auto report = CompactOneObjectPerWorker(config);
      CORM_CHECK_EQ(report.blocks_freed, static_cast<size_t>(blocks - 1));
      row.push_back(Us(report.compaction_ns));
    }
    PrintRow(row);
  }

  PrintTitle(
      "Figure 15 (right): compaction time of ONE block vs block size (us)");
  PrintRow({"pages", "ConnectX-3", "ConnectX-5", "CX-5+ODP"});
  for (size_t pages : {1, 4, 16, 64, 256}) {
    std::vector<std::string> row = {std::to_string(pages)};
    struct Strat {
      sim::RnicModel rnic;
      sim::RemapStrategy strategy;
    };
    for (const Strat& strat :
         {Strat{sim::RnicModel::kConnectX3, sim::RemapStrategy::kReregMr},
          Strat{sim::RnicModel::kConnectX5, sim::RemapStrategy::kReregMr},
          Strat{sim::RnicModel::kConnectX5,
                sim::RemapStrategy::kOdpPrefetch}}) {
      core::CormConfig config;
      config.num_workers = 2;  // one merge: two single-object blocks
      config.block_pages = pages;
      config.rnic_model = strat.rnic;
      config.remap_strategy = strat.strategy;
      auto report = CompactOneObjectPerWorker(config);
      CORM_CHECK_EQ(report.blocks_freed, 1u);
      row.push_back(Us(report.compaction_ns));
    }
    PrintRow(row);
  }
  PrintTitle(
      "Figure 15 (extension): 1 MiB block compaction with 2 MiB huge pages");
  PrintRow({"backing", "ConnectX-3", "ConnectX-5", "CX-5+ODP"});
  for (bool huge : {false, true}) {
    std::vector<std::string> row = {huge ? "2MiB huge pages" : "4KiB pages"};
    struct Strat {
      sim::RnicModel rnic;
      sim::RemapStrategy strategy;
    };
    for (const Strat& strat :
         {Strat{sim::RnicModel::kConnectX3, sim::RemapStrategy::kReregMr},
          Strat{sim::RnicModel::kConnectX5, sim::RemapStrategy::kReregMr},
          Strat{sim::RnicModel::kConnectX5,
                sim::RemapStrategy::kOdpPrefetch}}) {
      core::CormConfig config;
      config.num_workers = 2;
      config.block_pages = 256;  // 1 MiB blocks
      config.huge_pages = huge;
      config.rnic_model = strat.rnic;
      config.remap_strategy = strat.strategy;
      auto report = CompactOneObjectPerWorker(config);
      row.push_back(Us(report.compaction_ns));
    }
    PrintRow(row);
  }
  std::printf(
      "\nPaper shape: collection ~10us@2 threads to ~31us@16 on Intel, ~5x\n"
      "faster on AMD at low counts; compaction grows linearly with blocks\n"
      "(~100us/block on CX-3, dominated by the 70us rereg; ~7us rereg on\n"
      "CX-5; ODP cheapest) and linearly with pages per block (12ms for a\n"
      "1 MiB block on CX-3).\n");
  return 0;
}
