// Figure 14: DirectRead throughput under fragmentation — YCSB 100:0, 8
// clients, Zipf skew sweep. "No fragmentation": 8 M x 32 B objects.
// "High fragmentation": 16 M objects with 50% randomly deallocated (same
// live set size, twice the page footprint -> more RNIC translation-cache
// misses). Also reports the fragmented setting *after* CoRM compaction,
// which recovers the unfragmented throughput — the paper's headline 1.25x.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "workload/ycsb.h"

using namespace corm;
using namespace corm::bench;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

// Measures the modeled DirectRead throughput for 8 clients with the given
// live objects and skew.
double MeasureKreqs(CormNode* node, const std::vector<GlobalAddr>& live,
                    double theta, int samples) {
  auto ctx = Context::Create(node);
  node->rnic()->ResetMttCache();
  MttMissProbe probe(node->rnic());
  workload::YcsbConfig wconfig;
  wconfig.num_keys = live.size();
  wconfig.zipf_theta = theta;
  wconfig.seed = 5;
  workload::YcsbGenerator gen(wconfig);
  std::vector<uint8_t> buf(64);
  uint64_t total_ns = 0;
  for (int i = 0; i < samples; ++i) {
    GlobalAddr addr = live[gen.Next().key];
    Status st = ctx->ReadWithRecovery(&addr, buf.data(), 24);
    CORM_CHECK(st.ok()) << st;
    total_ns += ctx->stats().last_op_ns;
  }
  ThroughputModel tm;
  tm.avg_op_ns = static_cast<double>(total_ns) / samples;
  tm.rdma_fraction = 1.0;
  tm.mtt_miss_rate = probe.MissRate();
  tm.node = node;
  return tm.OpsPerSec(8) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const size_t base_objects = FlagU64(argc, argv, "objects", 8'000'000);
  const int samples = static_cast<int>(FlagU64(argc, argv, "samples", 60'000));

  core::CormConfig config;
  config.num_workers = 4;
  config.rnic_model = sim::RnicModel::kConnectX3;

  // Setting A: no fragmentation — base_objects live, densely packed.
  CormNode dense(config);
  auto dense_addrs = dense.BulkAlloc(base_objects, 24);
  CORM_CHECK(dense_addrs.ok());

  // Setting B: high fragmentation — 2x objects, 50% randomly freed.
  CormNode frag(config);
  auto frag_all = frag.BulkAlloc(2 * base_objects, 24);
  CORM_CHECK(frag_all.ok());
  Rng rng(17);
  std::vector<GlobalAddr> doomed, frag_live;
  for (auto& addr : *frag_all) {
    (rng.Chance(0.5) ? doomed : frag_live).push_back(addr);
  }
  CORM_CHECK(frag.BulkFree(doomed).ok());
  std::printf("dense: %s active; fragmented: %s active for the same live set\n",
              Gib(dense.ActiveMemoryBytes()).c_str(),
              Gib(frag.ActiveMemoryBytes()).c_str());

  PrintTitle("Figure 14: DirectRead throughput (Kreq/s), 100:0, 8 clients");
  PrintRow({"zipf_theta", "NoFrag", "HighFrag", "ratio"});
  std::vector<double> thetas = {0.6, 0.7, 0.8, 0.9, 0.99};
  for (double theta : thetas) {
    const double no_frag = MeasureKreqs(&dense, *dense_addrs, theta, samples);
    const double high_frag = MeasureKreqs(&frag, frag_live, theta, samples);
    PrintRow({Fmt("%.2f", theta), Fmt("%.0f", no_frag),
              Fmt("%.0f", high_frag), Fmt("%.2fx", no_frag / high_frag)});
  }

  // Extension: compaction recovers the dense layout (the paper's §4.2.4
  // motivation for CoRM).
  auto report = frag.CompactIfFragmented();
  CORM_CHECK(report.ok());
  std::printf("\nafter CoRM compaction (%s active):\n",
              Gib(frag.ActiveMemoryBytes()).c_str());
  PrintRow({"zipf_theta", "Compacted"});
  for (double theta : thetas) {
    PrintRow({Fmt("%.2f", theta),
              Fmt("%.0f", MeasureKreqs(&frag, frag_live, theta, samples))});
  }
  std::printf(
      "\nPaper shape: unfragmented memory is ~1.25x faster for moderate\n"
      "skew; at theta=0.99 both settings converge (hot keys fit the RNIC\n"
      "translation cache either way).\n");
  return 0;
}
