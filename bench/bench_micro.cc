// Microbenchmarks (google-benchmark) of the primitives underneath the
// figure reproductions: object layout scatter/gather, header CAS, block
// slot management, RNIC MTT access, and end-to-end client ops. These gauge
// the *simulator's own* CPU costs (not modeled fabric latencies), which
// matter for how long the figure benches take to run.

#include <benchmark/benchmark.h>

#include <vector>

#include "alloc/block.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"
#include "core/probability.h"
#include "sim/latency_model.h"

namespace corm {
namespace {

void BM_PayloadWrite(benchmark::State& state) {
  const auto slot_size = static_cast<uint32_t>(state.range(0));
  std::vector<uint8_t> slot(slot_size);
  std::vector<uint8_t> payload(core::PayloadCapacity(slot_size), 0xAB);
  for (auto _ : state) {
    core::WritePayload(slot.data(), slot_size, 1, payload.data(),
                       static_cast<uint32_t>(payload.size()));
    benchmark::DoNotOptimize(slot.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_PayloadWrite)->Arg(64)->Arg(256)->Arg(2048)->Arg(8192);

void BM_PayloadRead(benchmark::State& state) {
  const auto slot_size = static_cast<uint32_t>(state.range(0));
  std::vector<uint8_t> slot(slot_size, 0x5A);
  std::vector<uint8_t> out(core::PayloadCapacity(slot_size));
  for (auto _ : state) {
    core::ReadPayload(slot.data(), slot_size, out.data(),
                      static_cast<uint32_t>(out.size()));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_PayloadRead)->Arg(64)->Arg(256)->Arg(2048)->Arg(8192);

void BM_SnapshotConsistent(benchmark::State& state) {
  const auto slot_size = static_cast<uint32_t>(state.range(0));
  std::vector<uint8_t> slot(slot_size, 0);
  core::WritePayload(slot.data(), slot_size, 3, nullptr, 0);
  core::ObjectHeader h;
  h.version = 3;
  const uint64_t packed = h.Pack();
  std::memcpy(slot.data(), &packed, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SnapshotConsistent(slot.data(), slot_size));
  }
}
BENCHMARK(BM_SnapshotConsistent)->Arg(64)->Arg(2048)->Arg(8192);

void BM_HeaderCas(benchmark::State& state) {
  alignas(64) uint8_t slot[64] = {};
  core::ObjectHeader h;
  h.version = 1;
  core::StoreHeaderWord(slot, h.Pack());
  for (auto _ : state) {
    uint64_t w = core::LoadHeaderWord(slot);
    core::ObjectHeader locked = core::ObjectHeader::Unpack(w);
    locked.lock = core::LockState::kWriteLocked;
    core::CasHeaderWord(slot, w, locked.Pack());
    core::StoreHeaderWord(slot, h.Pack());
  }
}
BENCHMARK(BM_HeaderCas);

void BM_CompactionProbability(benchmark::State& state) {
  uint64_t b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CormCompactionProbability(16, 256, b % 128, (b * 7) % 128));
    ++b;
  }
}
BENCHMARK(BM_CompactionProbability);

void BM_ClientDirectRead(benchmark::State& state) {
  sim::SetSimTimeScale(0.0);
  core::CormConfig config;
  config.num_workers = 2;
  core::CormNode node(config);
  auto ctx = core::Context::Create(&node);
  auto addrs = node.BulkAlloc(10'000, 24);
  Rng rng(1);
  std::vector<uint8_t> buf(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx->DirectRead((*addrs)[rng.Uniform(addrs->size())], buf.data(), 24));
  }
}
BENCHMARK(BM_ClientDirectRead);

void BM_ClientRpcRead(benchmark::State& state) {
  sim::SetSimTimeScale(0.0);
  core::CormConfig config;
  config.num_workers = 2;
  core::CormNode node(config);
  auto ctx = core::Context::Create(&node);
  auto addrs = node.BulkAlloc(10'000, 24);
  Rng rng(1);
  std::vector<uint8_t> buf(64);
  for (auto _ : state) {
    core::GlobalAddr addr = (*addrs)[rng.Uniform(addrs->size())];
    benchmark::DoNotOptimize(ctx->Read(&addr, buf.data(), 24));
  }
}
BENCHMARK(BM_ClientRpcRead);

void BM_AllocFree(benchmark::State& state) {
  sim::SetSimTimeScale(0.0);
  core::CormConfig config;
  config.num_workers = 2;
  core::CormNode node(config);
  auto ctx = core::Context::Create(&node);
  for (auto _ : state) {
    auto addr = ctx->Alloc(24);
    benchmark::DoNotOptimize(addr);
    Status st = ctx->Free(&*addr);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_AllocFree);

}  // namespace
}  // namespace corm

BENCHMARK_MAIN();
