// Figure 17: active memory after synthetic allocation-spike traces —
// allocate N objects of one size, randomly deallocate a fraction, then
// compact with each strategy. 1 MiB blocks (FaRM-sized), strategies No /
// Ideal / Mesh / CoRM-8 / CoRM-12 / CoRM-16. Reported bytes include each
// strategy's per-object metadata overhead (Table 3).
//
// Object count: the paper's text says 8 M objects while its y-axes imply
// ~1 M for the large classes; we default to 1 M (--count to change) —
// the curves' *shape* is count-invariant.

#include <cstdio>
#include <vector>

#include "alloc/size_classes.h"
#include "baseline/compaction_sim.h"
#include "bench/bench_common.h"
#include "common/byte_units.h"
#include "workload/synthetic_trace.h"
#include "workload/trace_runner.h"

using namespace corm;
using namespace corm::bench;
using baseline::Algorithm;

int main(int argc, char** argv) {
  const uint64_t count = FlagU64(argc, argv, "count", 1'000'000);
  auto classes = alloc::SizeClassTable::JemallocLike(256 * kKiB);

  struct Strategy {
    Algorithm algo;
    int id_bits;
  };
  const Strategy strategies[] = {
      {Algorithm::kNone, 0},   {Algorithm::kIdeal, 0}, {Algorithm::kMesh, 0},
      {Algorithm::kCorm, 8},   {Algorithm::kCorm, 12}, {Algorithm::kCorm, 16},
  };

  for (uint32_t object_size : {256u, 2048u, 8192u, 12288u}) {
    PrintTitle(Fmt("Figure 17: active memory (GiB), %.0f", object_size) +
               " B objects, " + std::to_string(count) + " allocated");
    std::vector<std::string> header = {"dealloc"};
    for (const auto& s : strategies) {
      header.push_back(AlgorithmName(s.algo, s.id_bits));
    }
    PrintRow(header);
    for (double rate : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
      auto trace =
          workload::MakeSyntheticTrace(count, object_size, rate, 42);
      std::vector<std::string> row = {Fmt("%.1f", rate)};
      for (const auto& s : strategies) {
        baseline::SimConfig config;
        config.algorithm = s.algo;
        config.id_bits = s.id_bits;
        config.block_bytes = kMiB;
        config.num_threads = 1;
        config.seed = 1;
        auto result = workload::RunTrace(trace, config, &classes);
        const uint64_t bytes = s.algo == Algorithm::kIdeal
                                   ? result.ideal_bytes
                                   : result.active_bytes_after;
        row.push_back(Gib(bytes));
      }
      PrintRow(row);
    }
  }
  std::printf(
      "\nPaper shape: Mesh compacts well only for large objects at high\n"
      "deallocation rates; CoRM-8/12 beat Mesh wherever their ID space\n"
      "addresses the class (>=4 KiB objects for CoRM-8 with 1 MiB blocks);\n"
      "CoRM-16 tracks the ideal compactor from 2 KiB objects upward; for\n"
      "256 B objects CoRM-16's ID-collision rate makes it no better than\n"
      "not compacting (its overhead can even exceed the savings).\n");
  return 0;
}
