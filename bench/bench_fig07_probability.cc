// Figure 7: probability that two random 4 KiB blocks are compactable, as a
// function of block occupancy (sub-tables) and object size (rows), for
// Mesh, CoRM-8 and CoRM-16.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/byte_units.h"
#include "core/probability.h"

using namespace corm;
using namespace corm::bench;

int main() {
  const uint64_t block_bytes = 4 * kKiB;
  const double occupancies[] = {0.125, 0.25, 0.375, 0.5};
  PrintTitle("Figure 7: compaction probability of two random 4 KiB blocks");
  for (double occupancy : occupancies) {
    std::printf("\n-- occupancy %.1f%% --\n", occupancy * 100);
    PrintRow({"obj_size", "CoRM-16", "CoRM-8", "Mesh"});
    for (uint64_t size = 16; size <= 256; size *= 2) {
      const uint64_t s = block_bytes / size;  // slots per block
      const auto b =
          static_cast<uint64_t>(static_cast<double>(s) * occupancy);
      PrintRow({std::to_string(size),
                Fmt("%.4f", core::CormCompactionProbability(16, s, b, b)),
                Fmt("%.4f", core::CormCompactionProbability(8, s, b, b)),
                Fmt("%.4f", core::MeshCompactionProbability(s, b, b))});
    }
  }
  std::printf(
      "\nExpected shape (paper): CoRM-16 ~1 everywhere; CoRM-8 matches Mesh\n"
      "at 16 B (s=256=2^8) and beats it for larger objects; Mesh collapses\n"
      "for large objects at high occupancy.\n");
  return 0;
}
