// Per-scheme correctness for the remote synchronization shootout
// (DESIGN.md §12): lock-word packing, read/write roundtrips under every
// sync::SchemeKind, crashed-holder lease recovery (fault site
// sim::fault_sites::kSyncHolderCrash), epoch fencing of stale lockers via
// CormNode::SealSyncEpoch, doorbell-batched multi-object reads, and a
// concurrent chaos run asserting torn writes are never visible regardless
// of scheme.
//
// CORM_SYNC_SCHEME=<optimistic|cas_spinlock|lease_rw> narrows the
// per-scheme cases to one scheme (the CI sync-matrix lever); unset, every
// scheme runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"
#include "dsm/cluster.h"
#include "dsm/dsm_context.h"
#include "sim/fault_injector.h"
#include "sync/sync_scheme.h"

namespace corm {
namespace {

using core::GlobalAddr;
using core::PatternCheck;
using core::PatternFill;
using sync::SchemeKind;

// A failure a sync scheme or the fault schedule may legitimately cause.
bool Transient(const Status& st) {
  switch (st.code()) {
    case StatusCode::kTimeout:
    case StatusCode::kNetworkError:
    case StatusCode::kObjectLocked:
    case StatusCode::kTornRead:
    case StatusCode::kQpBroken:
    case StatusCode::kObjectMoved:
      return true;
    default:
      return false;
  }
}

core::CormConfig NodeConfigFor(SchemeKind kind) {
  core::CormConfig config;
  config.num_workers = 1;
  config.sync_scheme = kind;
  // Short lease so crashed-holder steals resolve in test time (wall clock).
  config.sync_lease_ns = 1'000'000;
  return config;
}

// CI matrix lever: with CORM_SYNC_SCHEME set, only that scheme's
// parameterized cases run; the rest skip.
bool SchemeSelected(SchemeKind kind) {
  const char* env = std::getenv("CORM_SYNC_SCHEME");
  if (env == nullptr || *env == '\0') return true;
  SchemeKind selected;
  EXPECT_TRUE(sync::ParseSchemeKind(env, &selected))
      << "bad CORM_SYNC_SCHEME: " << env;
  return selected == kind;
}

// --- Names and word layouts -------------------------------------------------

TEST(SyncSchemeTest, SchemeNamesRoundTrip) {
  for (SchemeKind kind : {SchemeKind::kOptimistic, SchemeKind::kCasSpinlock,
                          SchemeKind::kLeaseRw}) {
    SchemeKind parsed;
    ASSERT_TRUE(sync::ParseSchemeKind(sync::SchemeName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  SchemeKind parsed;
  EXPECT_FALSE(sync::ParseSchemeKind("mutex_over_tcp", &parsed));
}

TEST(SyncSchemeTest, CasLockWordPacksAllFields) {
  sync::CasLockWord w;
  w.held = true;
  w.owner = 0x7abc;
  w.gen = 0xdead'beef'cafeULL;
  const sync::CasLockWord r = sync::CasLockWord::Unpack(w.Pack());
  EXPECT_EQ(r.held, true);
  EXPECT_EQ(r.owner, 0x7abc);
  EXPECT_EQ(r.gen, 0xdead'beef'cafeULL);
  EXPECT_EQ(sync::CasLockWord{}.Pack(), 0u);  // pristine slot == zeroed word
}

TEST(SyncSchemeTest, RwLockWordPacksAllFields) {
  sync::RwLockWord w;
  w.epoch = 0x1234;
  w.writer = 0x5678;
  w.readers = 0x9abc'def0;
  const sync::RwLockWord r = sync::RwLockWord::Unpack(w.Pack());
  EXPECT_EQ(r.epoch, 0x1234);
  EXPECT_EQ(r.writer, 0x5678);
  EXPECT_EQ(r.readers, 0x9abc'def0u);
  // Reader entry is FETCH_ADD(+1): it must not carry into the writer field
  // until the count saturates 32 bits.
  sync::RwLockWord full = r;
  full.readers = 0xffff'fffe;
  const sync::RwLockWord bumped = sync::RwLockWord::Unpack(full.Pack() + 1);
  EXPECT_EQ(bumped.writer, full.writer);
  EXPECT_EQ(bumped.readers, 0xffff'ffffu);
}

TEST(SyncSchemeTest, SealBumpsSyncEpoch) {
  core::CormNode node(NodeConfigFor(SchemeKind::kLeaseRw));
  EXPECT_EQ(node.SyncEpoch(), 0u);
  node.SealSyncEpoch();
  node.SealSyncEpoch();
  EXPECT_EQ(node.SyncEpoch(), 2u);
}

// --- Per-scheme roundtrips --------------------------------------------------

class PerSchemeTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(PerSchemeTest, WriteThenDirectReadRoundTrips) {
  if (!SchemeSelected(GetParam())) GTEST_SKIP() << "CORM_SYNC_SCHEME filter";
  core::CormNode node(NodeConfigFor(GetParam()));
  auto ctx = core::Context::Create(&node);
  ASSERT_EQ(ctx->sync_scheme(), GetParam());

  auto addr = ctx->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(64), out(64);
  PatternFill(7, in.data(), in.size());
  ASSERT_TRUE(ctx->Write(&*addr, in.data(), in.size()).ok());
  ASSERT_TRUE(ctx->DirectRead(*addr, out.data(), out.size()).ok());
  EXPECT_EQ(in, out);

  // Lock schemes must have taken (and released) locks for both the write
  // bracket and the guarded read; optimistic takes none.
  const core::ClientStats& cs = ctx->stats();
  if (GetParam() == SchemeKind::kOptimistic) {
    EXPECT_EQ(cs.sync_lock_acquires, 0u);
  } else {
    EXPECT_GE(cs.sync_lock_acquires, 2u);
    EXPECT_EQ(cs.sync_lock_timeouts, 0u);
    // The same events landed on the node's sharded counters (the
    // cluster-wide aggregation the EXPERIMENTS schema reports).
    EXPECT_GE(node.stats().sync_lock_acquires, cs.sync_lock_acquires);
  }
  ASSERT_TRUE(ctx->Free(&*addr).ok());
}

TEST_P(PerSchemeTest, DirectReadBatchCoalescesAndValidates) {
  if (!SchemeSelected(GetParam())) GTEST_SKIP() << "CORM_SYNC_SCHEME filter";
  constexpr size_t kObjects = 20;  // > kBatchChain: forces two chains
  core::CormNode node(NodeConfigFor(GetParam()));
  auto ctx = core::Context::Create(&node);

  std::vector<GlobalAddr> addrs;
  for (size_t i = 0; i < kObjects; ++i) {
    auto addr = ctx->Alloc(64);
    ASSERT_TRUE(addr.ok());
    std::vector<uint8_t> in(64);
    PatternFill(static_cast<int>(i), in.data(), in.size());
    ASSERT_TRUE(ctx->Write(&*addr, in.data(), in.size()).ok());
    addrs.push_back(*addr);
  }

  std::vector<uint8_t> bufs(kObjects * 64);
  std::vector<Status> statuses(kObjects);
  ASSERT_TRUE(ctx->DirectReadBatch(addrs.data(), kObjects, bufs.data(), 64,
                                   statuses.data())
                  .ok());
  for (size_t i = 0; i < kObjects; ++i) {
    EXPECT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
    EXPECT_TRUE(PatternCheck(static_cast<int>(i), bufs.data() + i * 64, 64))
        << i;
  }
  EXPECT_GE(ctx->stats().direct_read_batches, 2u);
  EXPECT_GE(node.stats().doorbell_batches, 2u);
  EXPECT_GE(node.stats().doorbell_batched_wrs, kObjects);

  // A dangling pointer inside a batch fails validation for its own entry
  // only (the slot memory is still registered, so the chain stays intact).
  const GlobalAddr freed = addrs[3];
  ASSERT_TRUE(ctx->Free(&addrs[3]).ok());
  std::vector<GlobalAddr> again = addrs;
  again[3] = freed;
  Status st = ctx->DirectReadBatch(again.data(), kObjects, bufs.data(), 64,
                                   statuses.data());
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(statuses[3].ok());
  for (size_t i = 0; i < kObjects; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(statuses[i].ok()) << i << ": " << statuses[i].ToString();
  }
}

TEST_P(PerSchemeTest, BatchingOffFallsBackToSequentialReads) {
  if (!SchemeSelected(GetParam())) GTEST_SKIP() << "CORM_SYNC_SCHEME filter";
  core::CormConfig config = NodeConfigFor(GetParam());
  config.doorbell_batching = false;
  core::CormNode node(config);
  auto ctx = core::Context::Create(&node);

  constexpr size_t kObjects = 4;
  std::vector<GlobalAddr> addrs;
  for (size_t i = 0; i < kObjects; ++i) {
    auto addr = ctx->Alloc(64);
    ASSERT_TRUE(addr.ok());
    std::vector<uint8_t> in(64);
    PatternFill(static_cast<int>(i), in.data(), in.size());
    ASSERT_TRUE(ctx->Write(&*addr, in.data(), in.size()).ok());
    addrs.push_back(*addr);
  }
  std::vector<uint8_t> bufs(kObjects * 64);
  std::vector<Status> statuses(kObjects);
  ASSERT_TRUE(ctx->DirectReadBatch(addrs.data(), kObjects, bufs.data(), 64,
                                   statuses.data())
                  .ok());
  for (size_t i = 0; i < kObjects; ++i) {
    EXPECT_TRUE(statuses[i].ok());
    EXPECT_TRUE(PatternCheck(static_cast<int>(i), bufs.data() + i * 64, 64));
  }
  EXPECT_EQ(ctx->stats().direct_read_batches, 0u);
  EXPECT_EQ(node.stats().doorbell_batches, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PerSchemeTest,
                         ::testing::Values(SchemeKind::kOptimistic,
                                           SchemeKind::kCasSpinlock,
                                           SchemeKind::kLeaseRw),
                         [](const auto& info) {
                           return std::string(sync::SchemeName(info.param));
                         });

// --- Crashed-holder recovery (fault site sync.holder_crash) -----------------

class HolderCrashTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(HolderCrashTest, LeaseExpiryStealsTheCrashedHoldersSlot) {
  if (!SchemeSelected(GetParam())) GTEST_SKIP() << "CORM_SYNC_SCHEME filter";
  core::CormNode node(NodeConfigFor(GetParam()));
  auto victim = core::Context::Create(&node);
  auto survivor = core::Context::Create(&node);

  auto addr = victim->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(64), out(64);
  PatternFill(11, in.data(), in.size());

  // The victim's first release is swallowed: it "crashes" holding the
  // slot's lock word.
  sim::FaultInjector inj(1234);
  sim::FaultSchedule sched;
  sched.one_shot_at = 1;
  inj.Arm(sim::fault_sites::kSyncHolderCrash, sched);
  {
    sim::ScopedFaultInjector scoped(&inj);
    ASSERT_TRUE(victim->Write(&*addr, in.data(), in.size()).ok());
  }
  EXPECT_EQ(inj.FiredCount(sim::fault_sites::kSyncHolderCrash), 1u);

  // The survivor must not wedge: after one lease of watching the frozen
  // word it steals the slot and completes.
  PatternFill(12, in.data(), in.size());
  ASSERT_TRUE(survivor->Write(&*addr, in.data(), in.size()).ok());
  ASSERT_TRUE(survivor->DirectRead(*addr, out.data(), out.size()).ok());
  EXPECT_TRUE(PatternCheck(12, out.data(), out.size()));

  const core::ClientStats& cs = survivor->stats();
  EXPECT_GE(cs.sync_lock_conflicts, 1u);
  EXPECT_GE(cs.sync_lock_steals, 1u);
  EXPECT_GE(node.stats().sync_lock_steals, 1u);
}

TEST_P(HolderCrashTest, BoundedRetryConvertsWedgeToTimeout) {
  if (!SchemeSelected(GetParam())) GTEST_SKIP() << "CORM_SYNC_SCHEME filter";
  // Lease far beyond the retry budget: stealing is off the table, so the
  // only correct outcome is kTimeout (rule 8: never an unbounded wait).
  core::CormConfig config = NodeConfigFor(GetParam());
  config.sync_lease_ns = 10'000'000'000;
  core::CormNode node(config);
  auto victim = core::Context::Create(&node);

  core::Context::Options impatient;
  impatient.recovery_retry.deadline_ns = 20'000'000;
  auto waiter = core::Context::Create(&node, impatient);

  auto addr = victim->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(64);
  PatternFill(21, in.data(), in.size());

  sim::FaultInjector inj(99);
  sim::FaultSchedule sched;
  sched.one_shot_at = 1;
  inj.Arm(sim::fault_sites::kSyncHolderCrash, sched);
  {
    sim::ScopedFaultInjector scoped(&inj);
    ASSERT_TRUE(victim->Write(&*addr, in.data(), in.size()).ok());
  }

  Status st = waiter->Write(&*addr, in.data(), in.size());
  EXPECT_EQ(st.code(), StatusCode::kTimeout) << st.ToString();
  EXPECT_GE(waiter->stats().sync_lock_timeouts, 1u);
  EXPECT_GE(node.stats().sync_lock_timeouts, 1u);
}

INSTANTIATE_TEST_SUITE_P(LockSchemes, HolderCrashTest,
                         ::testing::Values(SchemeKind::kCasSpinlock,
                                           SchemeKind::kLeaseRw),
                         [](const auto& info) {
                           return std::string(sync::SchemeName(info.param));
                         });

// --- Epoch fencing (lease_rw x the PR-7 seal machinery) ---------------------

TEST(EpochFenceTest, SealFencesStaleLockWordsWithoutLeaseWait) {
  if (!SchemeSelected(SchemeKind::kLeaseRw)) {
    GTEST_SKIP() << "CORM_SYNC_SCHEME filter";
  }
  // A crashed holder's word survives under epoch 0 with a 10 s lease: only
  // the epoch fence can free it in test time.
  core::CormConfig config = NodeConfigFor(SchemeKind::kLeaseRw);
  config.sync_lease_ns = 10'000'000'000;
  core::CormNode node(config);
  auto victim = core::Context::Create(&node);
  auto survivor = core::Context::Create(&node);

  auto addr = victim->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(64), out(64);
  PatternFill(31, in.data(), in.size());

  sim::FaultInjector inj(7);
  sim::FaultSchedule sched;
  sched.one_shot_at = 1;
  inj.Arm(sim::fault_sites::kSyncHolderCrash, sched);
  {
    sim::ScopedFaultInjector scoped(&inj);
    ASSERT_TRUE(victim->Write(&*addr, in.data(), in.size()).ok());
  }

  // The failover seal (worker seal-record apply path calls this) bumps the
  // sync epoch: every lock word minted before it is void.
  node.SealSyncEpoch();

  PatternFill(32, in.data(), in.size());
  ASSERT_TRUE(survivor->Write(&*addr, in.data(), in.size()).ok());
  EXPECT_GE(survivor->stats().sync_epoch_fences, 1u);
  EXPECT_GE(node.stats().sync_epoch_fences, 1u);
  EXPECT_EQ(survivor->stats().sync_lock_steals, 0u);  // fence, not lease

  ASSERT_TRUE(survivor->DirectRead(*addr, out.data(), out.size()).ok());
  EXPECT_TRUE(PatternCheck(32, out.data(), out.size()));
}

// --- DSM routing of batched reads -------------------------------------------

TEST(DsmBatchTest, BatchRoutesPerNodeRunsAndIsolatesDeadNodes) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.node_config.num_workers = 1;
  dsm::Cluster cluster(cfg);
  dsm::DsmContext ctx(&cluster);

  constexpr size_t kObjects = 8;
  std::vector<GlobalAddr> addrs;
  for (size_t i = 0; i < kObjects; ++i) {
    auto addr = ctx.AllocOn(static_cast<int>(i % 2), 64);
    ASSERT_TRUE(addr.ok());
    std::vector<uint8_t> in(64);
    PatternFill(static_cast<int>(i), in.data(), in.size());
    ASSERT_TRUE(ctx.Write(&*addr, in.data(), in.size()).ok());
    addrs.push_back(*addr);
  }

  std::vector<uint8_t> bufs(kObjects * 64);
  std::vector<Status> statuses(kObjects);
  ASSERT_TRUE(ctx.DirectReadBatch(addrs.data(), kObjects, bufs.data(), 64,
                                  statuses.data())
                  .ok());
  for (size_t i = 0; i < kObjects; ++i) {
    EXPECT_TRUE(statuses[i].ok()) << i;
    EXPECT_TRUE(PatternCheck(static_cast<int>(i), bufs.data() + i * 64, 64));
  }

  // A dead node fails its runs with kNetworkError; the live node's entries
  // still complete.
  cluster.KillNode(1);
  Status st = ctx.DirectReadBatch(addrs.data(), kObjects, bufs.data(), 64,
                                  statuses.data());
  EXPECT_FALSE(st.ok());
  for (size_t i = 0; i < kObjects; ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(statuses[i].ok()) << i;
    } else {
      EXPECT_EQ(statuses[i].code(), StatusCode::kNetworkError) << i;
    }
  }
}

// --- Torn-write visibility under concurrent chaos ---------------------------

// Writers rewrite each object's fixed pattern while readers DirectRead;
// with torn publishes and crashed holders injected, every *successful*
// read must still hand back a complete pattern — under all three schemes,
// because validation layers beneath every lock protocol.
class SchemeChaosTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(SchemeChaosTest, NoTornReadEscapesUnderAnyScheme) {
  if (!SchemeSelected(GetParam())) GTEST_SKIP() << "CORM_SYNC_SCHEME filter";
  core::CormConfig config = NodeConfigFor(GetParam());
  config.num_workers = 2;
  config.sync_lease_ns = 500'000;
  core::CormNode node(config);

  constexpr size_t kObjects = 8;
  constexpr int kIters = 40;
  auto setup = core::Context::Create(&node);
  std::vector<GlobalAddr> addrs(kObjects);
  for (size_t i = 0; i < kObjects; ++i) {
    auto addr = setup->Alloc(192);
    ASSERT_TRUE(addr.ok());
    std::vector<uint8_t> in(192);
    PatternFill(static_cast<int>(i), in.data(), in.size());
    ASSERT_TRUE(setup->Write(&*addr, in.data(), in.size()).ok());
    addrs[i] = *addr;
  }

  sim::FaultInjector inj(4242);
  sim::FaultSchedule torn;
  torn.probability = 0.05;
  torn.delay_ns = 3000;  // extra lock-hold time per torn publish
  inj.Arm(sim::fault_sites::kTornWrite, torn);
  sim::FaultSchedule crash;
  crash.probability = 0.02;
  inj.Arm(sim::fault_sites::kSyncHolderCrash, crash);
  sim::ScopedFaultInjector scoped(&inj);

  std::atomic<int> torn_escapes{0};
  std::atomic<int> hard_errors{0};
  auto writer = [&] {
    auto ctx = core::Context::Create(&node);
    std::vector<uint8_t> in(192);
    for (int it = 0; it < kIters; ++it) {
      const size_t i = static_cast<size_t>(it) % kObjects;
      PatternFill(static_cast<int>(i), in.data(), in.size());
      GlobalAddr addr = addrs[i];
      Status st = ctx->Write(&addr, in.data(), in.size());
      if (!st.ok() && !Transient(st)) hard_errors.fetch_add(1);
    }
  };
  auto reader = [&] {
    auto ctx = core::Context::Create(&node);
    std::vector<uint8_t> out(192);
    for (int it = 0; it < kIters; ++it) {
      const size_t i = static_cast<size_t>(it * 3 + 1) % kObjects;
      Status st = ctx->DirectRead(addrs[i], out.data(), out.size());
      if (st.ok()) {
        if (!PatternCheck(static_cast<int>(i), out.data(), out.size())) {
          torn_escapes.fetch_add(1);
        }
      } else if (!Transient(st)) {
        hard_errors.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer);
  threads.emplace_back(writer);
  threads.emplace_back(reader);
  threads.emplace_back(reader);
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn_escapes.load(), 0);
  EXPECT_EQ(hard_errors.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeChaosTest,
                         ::testing::Values(SchemeKind::kOptimistic,
                                           SchemeKind::kCasSpinlock,
                                           SchemeKind::kLeaseRw),
                         [](const auto& info) {
                           return std::string(sync::SchemeName(info.param));
                         });

}  // namespace
}  // namespace corm
