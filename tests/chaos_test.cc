// Chaos harness: a YCSB-style workload on a replicated cluster under a
// seeded fault schedule (RPC drops/delays/duplicates, QP breaks, torn
// writes, node crash/restart), with continuous invariant checking.
//
// Correctness rules the harness enforces:
//   - An operation may fail only with a *transient* status (timeout,
//     network error, locked, torn, QP broken, moved) — never a hard error.
//   - Read-your-writes: a read must return the last committed value or one
//     of the writes whose fate is uncertain (it timed out, or a degraded
//     write left a backup stale). A timed-out write is uncertain forever:
//     its RPC may still be queued on a slow node and apply later, so the
//     accept set is sticky until the key is retired.
//   - A key whose *first* write did not cleanly reach every replica is
//     poisoned (never read again): a replica could still hold
//     never-initialized memory.
//   - After the storm: every node's Audit() passes, every surviving key
//     reads back an accepted value, frees succeed, compaction runs clean.
//
// CORM_CHAOS_SEED overrides the fault-schedule seed (default below); an
// identical seed replays an identical schedule (see fault_injector_test).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/sanitizer.h"
#include "core/object_layout.h"
#include "dsm/cluster.h"
#include "dsm/replication.h"
#include "sim/fault_injector.h"
#include "workload/ycsb.h"

namespace corm {
namespace {

using core::GlobalAddr;
using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeHealth;

// A failure the fault schedule is allowed to cause. Anything else (invalid
// argument, stale pointer, not found, internal) is a bug.
bool Transient(const Status& st) {
  switch (st.code()) {
    case StatusCode::kTimeout:
    case StatusCode::kNetworkError:
    case StatusCode::kObjectLocked:
    case StatusCode::kTornRead:
    case StatusCode::kQpBroken:
    case StatusCode::kObjectMoved:
      return true;
    default:
      return false;
  }
}

core::Context::Options ChaosClientOptions() {
  core::Context::Options opts;
#ifdef CORM_TSAN_ENABLED
  // TSan slows the serving side ~10-20x; keep headroom so timeouts only
  // fire against genuinely crashed nodes.
  opts.rpc_retry.deadline_ns = 60'000'000;
  opts.recovery_retry.deadline_ns = 120'000'000;
#else
  opts.rpc_retry.deadline_ns = 15'000'000;
  opts.recovery_retry.deadline_ns = 40'000'000;
#endif
  return opts;
}

// --- Satellite regression: the unbounded client-side RPC wait. ------------
// Before the transport deadline existed, a node that stopped serving with a
// request in flight hung the client forever. Now the call returns kTimeout,
// and a restart purges the stranded request so it can never apply later.
TEST(ChaosRegressionTest, InFlightRpcTimesOutWhenNodeStopsServing) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.node_config.num_workers = 2;
  Cluster cluster(cfg);

  core::Context::Options opts;
  opts.rpc_retry.deadline_ns = 20'000'000;
  opts.recovery_retry.deadline_ns = 40'000'000;
  dsm::DsmContext ctx(&cluster, opts);

  auto addr = ctx.AllocOn(1, 64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> buf(64);
  core::PatternFill(1, buf.data(), buf.size());
  ASSERT_TRUE(ctx.Write(&*addr, buf.data(), buf.size()).ok());

  // The node stops draining its RPC queue with the next request in flight.
  cluster.node(1)->PauseService();
  Status st = ctx.Write(&*addr, buf.data(), buf.size());
  EXPECT_EQ(st.code(), StatusCode::kTimeout) << st.ToString();
  EXPECT_GE(ctx.context(1)->stats().timeouts, 1u);

  // The timed-out request is still queued on the node; a crash + restart
  // drops it (connection-reset semantics), after which fresh traffic and
  // a heartbeat-driven lease renewal bring the node back.
  cluster.CrashNode(1);
  cluster.RestartNode(1);
  EXPECT_EQ(cluster.Heartbeat(), 2);
  EXPECT_EQ(cluster.failure_detector()->health(1), NodeHealth::kAlive);

  std::vector<uint8_t> out(64);
  ASSERT_TRUE(ctx.ReadWithRecovery(&*addr, out.data(), out.size()).ok());
  EXPECT_TRUE(core::PatternCheck(1, out.data(), out.size()));
}

// --- Failure detector: heartbeat escalation and lease-renewal revival. ----
TEST(FailureDetectorClusterTest, HeartbeatEscalatesAndLeaseRenewalRevives) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.node_config.num_workers = 1;
  Cluster cluster(cfg);
  const dsm::FailureDetector& fd = *cluster.failure_detector();

  EXPECT_EQ(cluster.Heartbeat(), 3);
  EXPECT_EQ(fd.health(2), NodeHealth::kAlive);

  cluster.node(2)->PauseService();
  EXPECT_EQ(cluster.Heartbeat(), 2);
  EXPECT_EQ(fd.health(2), NodeHealth::kSuspect);
  cluster.Heartbeat();
  cluster.Heartbeat();
  EXPECT_EQ(fd.health(2), NodeHealth::kDead);
  EXPECT_EQ(fd.deaths(), 1u);

  // Placement and the cluster-wide compaction sweep route around it.
  for (int i = 0; i < 12; ++i) EXPECT_NE(cluster.PickNode(), 2);
  auto sweep = cluster.CompactAllIfFragmented();
  EXPECT_TRUE(sweep.ok()) << sweep.status().ToString();

  // One successful probe renews the lease: instant revival.
  cluster.node(2)->ResumeService();
  EXPECT_EQ(cluster.Heartbeat(), 3);
  EXPECT_EQ(fd.health(2), NodeHealth::kAlive);
  EXPECT_EQ(fd.revivals(), 1u);
}

// --- The chaos harness proper. --------------------------------------------

constexpr size_t kObjectSize = 48;
constexpr int kThreads = 3;
constexpr uint64_t kKeysPerThread = 24;
#ifdef CORM_TSAN_ENABLED
constexpr int kOpsPerThread = 400;
#else
constexpr int kOpsPerThread = 1500;
#endif

struct KeyState {
  dsm::ReplicatedAddr addr;
  bool live = false;
  bool poisoned = false;  // retired: unverifiable (leaks on purpose)
  uint64_t committed = 0;
  // Pattern ids whose fate is unknown (timed-out writes, values a stale
  // backup may still serve). Sticky: a queued RPC can apply arbitrarily
  // late, so these stay acceptable until the key is retired.
  std::vector<uint64_t> uncertain;
};

struct ThreadReport {
  std::vector<KeyState> keys;
  uint64_t ops = 0;
  uint64_t write_timeouts = 0;
  uint64_t value_errors = 0;
  std::vector<std::string> hard_errors;
};

uint64_t PatternId(int thread_id, uint64_t key, uint64_t seq) {
  return (static_cast<uint64_t>(thread_id) << 40) | (key << 20) | seq;
}

bool Matches(const KeyState& k, const uint8_t* buf) {
  if (core::PatternCheck(k.committed, buf, kObjectSize)) return true;
  for (const uint64_t pid : k.uncertain) {
    if (core::PatternCheck(pid, buf, kObjectSize)) return true;
  }
  return false;
}

void RunWorkload(Cluster* cluster, int thread_id, uint64_t seed,
                 ThreadReport* rep) {
  dsm::ReplicatedContext ctx(cluster, /*replication_factor=*/2,
                             ChaosClientOptions());
  workload::YcsbConfig wcfg;
  wcfg.num_keys = kKeysPerThread;
  wcfg.zipf_theta = 0.6;
  wcfg.read_fraction = 0.5;
  wcfg.seed = seed;
  workload::YcsbGenerator gen(wcfg);

  rep->keys.resize(kKeysPerThread);
  std::vector<uint8_t> buf(kObjectSize), out(kObjectSize);
  uint64_t seq = 0;

  auto hard_error = [&](const char* what, const Status& st, uint64_t key) {
    rep->hard_errors.push_back(std::string(what) + " key " +
                               std::to_string(key) + ": " + st.ToString());
  };

  for (int i = 0; i < kOpsPerThread; ++i) {
    const auto op = gen.Next();
    KeyState& k = rep->keys[op.key];
    if (k.poisoned) continue;
    ++rep->ops;

    if (!k.live) {
      auto addr = ctx.Alloc(kObjectSize);
      if (!addr.ok()) {
        // "Not enough live nodes" mid-crash is expected; retry later.
        if (!Transient(addr.status())) hard_error("alloc", addr.status(), op.key);
        continue;
      }
      k.addr = *addr;
      const uint64_t pid = PatternId(thread_id, op.key, ++seq);
      core::PatternFill(pid, buf.data(), kObjectSize);
      const uint64_t degraded_before = ctx.degraded_writes();
      Status st = ctx.Write(&k.addr, buf.data(), kObjectSize);
      if (st.ok() && ctx.degraded_writes() == degraded_before) {
        k.live = true;
        k.committed = pid;
      } else {
        // The initial write did not cleanly reach every replica: some
        // replica may hold never-initialized memory. Retire the key.
        k.poisoned = true;
        if (!st.ok() && !Transient(st)) hard_error("init write", st, op.key);
      }
      continue;
    }

    if (op.is_read) {
      Status st = ctx.Read(&k.addr, out.data(), kObjectSize);
      if (st.ok()) {
        if (!Matches(k, out.data())) {
          ++rep->value_errors;
          rep->hard_errors.push_back(
              "read-your-writes violation at key " + std::to_string(op.key));
        }
      } else if (!Transient(st)) {
        hard_error("read", st, op.key);
      }
      continue;
    }

    const uint64_t pid = PatternId(thread_id, op.key, ++seq);
    core::PatternFill(pid, buf.data(), kObjectSize);
    const uint64_t degraded_before = ctx.degraded_writes();
    Status st = ctx.Write(&k.addr, buf.data(), kObjectSize);
    if (st.ok()) {
      if (ctx.degraded_writes() != degraded_before) {
        // A backup missed this write; it may serve the old value on a
        // future failover read.
        k.uncertain.push_back(k.committed);
      }
      k.committed = pid;
    } else if (Transient(st)) {
      ++rep->write_timeouts;
      k.uncertain.push_back(pid);  // may or may not have landed anywhere
    } else {
      hard_error("write", st, op.key);
    }
    if (k.uncertain.size() > 24) k.poisoned = true;  // unverifiable: retire
  }
}

TEST(ChaosTest, SeededFaultScheduleKeepsClusterConsistent) {
  uint64_t seed = 0xC0DE5EED;
  if (const char* env = std::getenv("CORM_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  SCOPED_TRACE("CORM_CHAOS_SEED=" + std::to_string(seed));

  sim::FaultInjector injector(seed);
  auto arm = [&](const char* site, double p, uint64_t delay_ns = 0) {
    sim::FaultSchedule s;
    s.probability = p;
    s.delay_ns = delay_ns;
    injector.Arm(site, s);
  };
  arm(sim::fault_sites::kRpcDelay, 0.02, 4000);
  arm(sim::fault_sites::kRpcDropRequest, 0.008);
  arm(sim::fault_sites::kRpcDropResponse, 0.004);
  arm(sim::fault_sites::kRpcDupCompletion, 0.01);
  arm(sim::fault_sites::kQpBreak, 0.004);
  arm(sim::fault_sites::kTornWrite, 0.01, 3000);
  arm(sim::fault_sites::kNodeCrash, 0.08);
  // Replicated-log sites (DESIGN.md §11): lost ship records (retransmit
  // must fill the sequence gap), stalled high-water reads, and stale-epoch
  // stragglers racing a failover seal (the epoch fence must reject them).
  arm(sim::fault_sites::kReplShipDrop, 0.02);
  arm(sim::fault_sites::kReplAckDelay, 0.02, 4000);
  arm(sim::fault_sites::kReplSealRace, 0.2);

  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.node_config.num_workers = 2;
  cfg.node_config.seed = seed;
  // Compaction under chaos runs through each node's duty-cycled scheduler
  // instead of a periodic driver sweep: crashes, restarts and the workload
  // storm all overlap sliced background runs.
  cfg.node_config.background_compaction = true;
  cfg.node_config.compaction_check_interval_us = 3000;
  Cluster cluster(cfg);

  std::vector<ThreadReport> reports(kThreads);
  {
    sim::ScopedFaultInjector install(&injector);

    // Chaos driver: heartbeats and seeded crash/restart cycles. Compaction
    // is NOT driven from here any more — each node's background scheduler
    // paces its own sliced runs off per-class fragmentation, concurrently
    // with the crashes this thread injects.
    std::atomic<bool> stop{false};
    std::thread driver([&] {
      Rng rng(seed ^ 0xD21CEULL);
      int crashed = -1;
      int restart_in = 0;
      while (!stop.load(std::memory_order_acquire)) {
        cluster.Heartbeat();
        if (crashed < 0) {
          if (injector.ShouldFire(sim::fault_sites::kNodeCrash)) {
            crashed = static_cast<int>(rng.Uniform(cfg.num_nodes));
            cluster.CrashNode(crashed);
            restart_in = 2 + static_cast<int>(rng.Uniform(4));
          }
        } else if (--restart_in <= 0) {
          cluster.RestartNode(crashed);
          crashed = -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (crashed >= 0) cluster.RestartNode(crashed);
    });

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back(RunWorkload, &cluster, t, seed + t, &reports[t]);
    }
    for (auto& w : workers) w.join();
    stop.store(true, std::memory_order_release);
    driver.join();
  }  // fault injector uninstalled: verification runs on a clean fabric

  // Let any still-queued (timed-out) requests drain, then heal the
  // cluster: every node must come back via lease renewal.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 4; ++i) cluster.Heartbeat();
  for (int n = 0; n < cfg.num_nodes; ++n) {
    EXPECT_EQ(cluster.failure_detector()->health(n), NodeHealth::kAlive)
        << "node " << n << " did not recover";
  }

  // No workload thread saw a hard error or a read-your-writes violation.
  uint64_t total_ops = 0, total_timeouts = 0, live_keys = 0, poisoned = 0;
  for (int t = 0; t < kThreads; ++t) {
    const ThreadReport& rep = reports[t];
    total_ops += rep.ops;
    total_timeouts += rep.write_timeouts;
    EXPECT_EQ(rep.value_errors, 0u);
    for (const auto& err : rep.hard_errors) {
      ADD_FAILURE() << "thread " << t << ": " << err;
    }
    for (const auto& k : rep.keys) {
      live_keys += (k.live && !k.poisoned) ? 1 : 0;
      poisoned += k.poisoned ? 1 : 0;
    }
  }
  EXPECT_GT(total_ops, 0u);
  EXPECT_GT(live_keys, 0u);  // the storm must leave something to verify

  // Stop the schedulers before verification: the final read/free sweep and
  // the closing synchronous compaction must not race a background run that
  // holds blocks in transit (frees would bounce with kObjectLocked).
  cluster.StopBackgroundCompaction();

  // Structural invariants survived on every node.
  for (int n = 0; n < cfg.num_nodes; ++n) {
    Status audit = cluster.node(n)->Audit();
    EXPECT_TRUE(audit.ok()) << "node " << n << ": " << audit.ToString();
  }

  // Final sweep: every surviving key reads back an accepted value and
  // frees cleanly on the healed cluster.
  dsm::ReplicatedContext verify(&cluster, 2, core::Context::Options{});
  std::vector<uint8_t> out(kObjectSize);
  for (int t = 0; t < kThreads; ++t) {
    for (size_t key = 0; key < reports[t].keys.size(); ++key) {
      KeyState& k = reports[t].keys[key];
      if (!k.live || k.poisoned) continue;
      Status st = verify.Read(&k.addr, out.data(), kObjectSize);
      ASSERT_TRUE(st.ok()) << "thread " << t << " key " << key << ": "
                           << st.ToString();
      EXPECT_TRUE(Matches(k, out.data()))
          << "thread " << t << " key " << key << " holds an unknown value";
      Status freed = verify.Free(&k.addr);
      EXPECT_TRUE(freed.ok()) << "thread " << t << " key " << key << ": "
                              << freed.ToString();
    }
  }

  auto sweep = cluster.CompactAllIfFragmented();
  EXPECT_TRUE(sweep.ok()) << sweep.status().ToString();

  std::printf(
      "chaos: seed=%#llx ops=%llu live_keys=%llu poisoned=%llu "
      "write_timeouts=%llu crashes=%llu detector_deaths=%llu "
      "detector_revivals=%llu\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(total_ops),
      static_cast<unsigned long long>(live_keys),
      static_cast<unsigned long long>(poisoned),
      static_cast<unsigned long long>(total_timeouts),
      static_cast<unsigned long long>(
          injector.FiredCount(sim::fault_sites::kNodeCrash)),
      static_cast<unsigned long long>(cluster.failure_detector()->deaths()),
      static_cast<unsigned long long>(
          cluster.failure_detector()->revivals()));
}

// --- Zero lost acknowledged writes under replica and primary kills. --------
// The tentpole invariant, tested head-on: keys are initialized on a clean
// cluster, then a driver thread crash/restarts nodes — including each key's
// primary, mid-ship — while a writer hammers every key through the
// replicated log. Every write that returned OK must remain readable (the
// acked value or a newer accepted one) after the cluster heals; a failover
// during the storm must never surface the pre-failover value of an acked
// write.
TEST(ChaosTest, ReplicaAndPrimaryKillsLoseNoAckedWrites) {
  uint64_t seed = 0x5EA15EED;
  if (const char* env = std::getenv("CORM_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 0) ^ 0x5EA1;
  }
  SCOPED_TRACE("derived seed=" + std::to_string(seed));

  sim::FaultInjector injector(seed);
  auto arm = [&](const char* site, double p, uint64_t delay_ns = 0) {
    sim::FaultSchedule s;
    s.probability = p;
    s.delay_ns = delay_ns;
    injector.Arm(site, s);
  };
  arm(sim::fault_sites::kReplShipDrop, 0.03);
  arm(sim::fault_sites::kReplAckDelay, 0.03, 4000);
  arm(sim::fault_sites::kReplSealRace, 0.5);

  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.node_config.num_workers = 2;
  cfg.node_config.seed = seed;
  Cluster cluster(cfg);

  constexpr uint64_t kKeys = 8;
#ifdef CORM_TSAN_ENABLED
  constexpr int kOps = 250;
#else
  constexpr int kOps = 900;
#endif

  dsm::ReplicatedContext ctx(&cluster, /*replication_factor=*/2,
                             ChaosClientOptions());
  std::vector<KeyState> keys(kKeys);
  std::vector<uint8_t> buf(kObjectSize), out(kObjectSize);
  std::vector<std::string> hard_errors;
  uint64_t seq = 0;

  // Initialize every key on the quiet cluster so the storm below never has
  // to reason about half-initialized replicas.
  for (uint64_t key = 0; key < kKeys; ++key) {
    auto addr = ctx.Alloc(kObjectSize);
    ASSERT_TRUE(addr.ok()) << addr.status().ToString();
    keys[key].addr = *addr;
    const uint64_t pid = PatternId(0, key, ++seq);
    core::PatternFill(pid, buf.data(), kObjectSize);
    ASSERT_TRUE(ctx.Write(&keys[key].addr, buf.data(), kObjectSize).ok());
    ASSERT_EQ(ctx.degraded_writes(), 0u);
    keys[key].live = true;
    keys[key].committed = pid;
  }

  uint64_t acked = 0, uncertain_writes = 0;
  {
    sim::ScopedFaultInjector install(&injector);

    // Driver: seeded crash/restart cycles with heartbeats, so the failure
    // detector declares real deaths (driving degrade + failover paths)
    // while some kills stay undetected long enough to land mid-ship.
    std::atomic<bool> stop{false};
    std::thread driver([&] {
      Rng rng(seed ^ 0xD21CEULL);
      int crashed = -1;
      int restart_in = 0;
      while (!stop.load(std::memory_order_acquire)) {
        cluster.Heartbeat();
        if (crashed < 0) {
          crashed = static_cast<int>(rng.Uniform(cfg.num_nodes));
          cluster.CrashNode(crashed);
          restart_in = 2 + static_cast<int>(rng.Uniform(4));
        } else if (--restart_in <= 0) {
          cluster.RestartNode(crashed);
          crashed = -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (crashed >= 0) cluster.RestartNode(crashed);
    });

    Rng rng(seed);
    for (int i = 0; i < kOps; ++i) {
      KeyState& k = keys[rng.Uniform(kKeys)];
      const uint64_t pid = PatternId(0, rng.Uniform(kKeys), ++seq);
      core::PatternFill(pid, buf.data(), kObjectSize);
      const uint64_t degraded_before = ctx.degraded_writes();
      Status st = ctx.Write(&k.addr, buf.data(), kObjectSize);
      if (st.ok()) {
        ++acked;
        if (ctx.degraded_writes() != degraded_before) {
          k.uncertain.push_back(k.committed);
        }
        k.committed = pid;
      } else if (Transient(st)) {
        ++uncertain_writes;
        k.uncertain.push_back(pid);
      } else {
        hard_errors.push_back("write: " + st.ToString());
      }
      // Interleave repair so a degraded key regains full redundancy before
      // its primary is the next to die.
      if (i % 32 == 31) ctx.RunAntiEntropySweep(4);
    }

    stop.store(true, std::memory_order_release);
    driver.join();
  }

  // Heal: every node must come back, then repair any remaining degraded
  // replicas on the clean fabric.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 4; ++i) cluster.Heartbeat();
  for (int n = 0; n < cfg.num_nodes; ++n) {
    ASSERT_EQ(cluster.failure_detector()->health(n), NodeHealth::kAlive)
        << "node " << n << " did not recover";
  }
  while (ctx.pending_repairs() > 0) ctx.RunAntiEntropySweep(8);

  for (const auto& err : hard_errors) ADD_FAILURE() << err;

  // The invariant: every key serves its last acked write (or a newer
  // accepted value) — nothing acked was lost to any kill, including
  // primary kills that forced epoch-fenced failovers.
  uint64_t lost = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    KeyState& k = keys[key];
    Status st = ctx.Read(&k.addr, out.data(), kObjectSize);
    ASSERT_TRUE(st.ok()) << "key " << key << ": " << st.ToString();
    if (!Matches(k, out.data())) {
      ++lost;
      ADD_FAILURE() << "key " << key << " lost its acked write";
    }
    EXPECT_TRUE(ctx.Free(&k.addr).ok());
  }
  EXPECT_EQ(lost, 0u);
  EXPECT_GT(acked, 0u);

  std::printf(
      "repl-chaos: seed=%#llx acked=%llu uncertain=%llu failovers=%llu "
      "seals=%llu degraded=%llu quorum_timeouts=%llu repairs=%llu\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(uncertain_writes),
      static_cast<unsigned long long>(ctx.failovers()),
      static_cast<unsigned long long>(ctx.seals()),
      static_cast<unsigned long long>(ctx.degraded_writes()),
      static_cast<unsigned long long>(ctx.quorum_timeouts()),
      static_cast<unsigned long long>(ctx.anti_entropy_repairs()));
}

// --- Keyed path under the storm: zero lost or misdirected acked ops. -------
// The keyed client surface (Put/Get/Del through the RDMA hash index) runs
// through the same kill/restart storm as the pointer harness above, with
// background compaction rewriting bucket hints mid-flight and the
// index-specific fault sites armed. Values are globally unique patterns, so
// a Get that lands on the wrong object is flagged as a corruption rather
// than passing by coincidence. Rules:
//   - An acked Put stays readable until a Del that may have applied: a Get
//     may return the committed value or a timed-out Put's value (its insert
//     may land late), never anything else.
//   - A timed-out Del is uncertain forever: NotFound stays acceptable for
//     the key from then on (the queued remove may still apply — or the
//     remove landed but the trailing Free timed out), and so do the
//     accepted values (it may never apply).
//   - Keyed data is unreplicated, so the storm never re-homes key ranges:
//     a crashed home answers transiently until it restarts with its memory
//     (and its index, unsealed) intact.

struct KeyedState {
  bool exists = false;        // an acked Put not yet followed by an acked Del
  bool maybe_deleted = false; // a Del timed out: NotFound acceptable forever
  bool poisoned = false;      // accept set grew unverifiable: retired
  uint64_t committed = 0;
  std::vector<uint64_t> uncertain;  // timed-out Puts: may apply late
};

struct KeyedThreadReport {
  std::vector<KeyedState> keys;
  uint64_t ops = 0;
  uint64_t uncertain_puts = 0;
  uint64_t uncertain_dels = 0;
  std::vector<std::string> hard_errors;
};

// The index lookup path additionally surfaces kStalePointer (a fenced or
// torn bucket hint) and resolves it by RPC; under short chaos deadlines the
// retry budget can expire with that status in hand.
bool TransientKeyed(const Status& st) {
  return Transient(st) || st.code() == StatusCode::kStalePointer;
}

bool KeyedMatches(const KeyedState& k, const uint8_t* buf) {
  if (k.exists && core::PatternCheck(k.committed, buf, kObjectSize)) {
    return true;
  }
  for (const uint64_t pid : k.uncertain) {
    if (core::PatternCheck(pid, buf, kObjectSize)) return true;
  }
  return false;
}

// Thread-disjoint key space: the keyed API has no cross-client conflict
// story beyond what raw pointers offer, so each thread owns its keys.
uint64_t KeyedKey(int thread_id, uint64_t k) {
  return (static_cast<uint64_t>(thread_id + 1) << 40) | k;
}

void RunKeyedWorkload(Cluster* cluster, int thread_id, uint64_t seed,
                      KeyedThreadReport* rep) {
  dsm::DsmContext ctx(cluster, ChaosClientOptions());
  Rng rng(seed);
  rep->keys.resize(kKeysPerThread);
  std::vector<uint8_t> buf(kObjectSize), out(kObjectSize);
  uint64_t seq = 0;

  auto hard_error = [&](const char* what, const Status& st, uint64_t key) {
    rep->hard_errors.push_back(std::string(what) + " key " +
                               std::to_string(key) + ": " + st.ToString());
  };

  const int ops = kOpsPerThread * 2 / 3;  // keyed ops RPC more: keep runtime flat
  for (int i = 0; i < ops; ++i) {
    const uint64_t k = rng.Uniform(kKeysPerThread);
    KeyedState& ks = rep->keys[k];
    if (ks.poisoned) continue;
    ++rep->ops;
    const uint64_t dice = rng.Uniform(100);

    if (dice < 50) {  // Get
      Status st = ctx.Get(KeyedKey(thread_id, k), out.data(), kObjectSize);
      if (st.ok()) {
        if (!KeyedMatches(ks, out.data())) {
          rep->hard_errors.push_back("misdirected/stale read at key " +
                                     std::to_string(k));
        }
      } else if (st.code() == StatusCode::kNotFound) {
        if (ks.exists && !ks.maybe_deleted) {
          rep->hard_errors.push_back("acked Put lost at key " +
                                     std::to_string(k));
        }
      } else if (!TransientKeyed(st)) {
        hard_error("get", st, k);
      }
    } else if (dice < 90) {  // Put
      const uint64_t pid = PatternId(thread_id, k, ++seq);
      core::PatternFill(pid, buf.data(), kObjectSize);
      auto addr = ctx.Put(KeyedKey(thread_id, k), buf.data(), kObjectSize);
      if (addr.ok()) {
        ks.exists = true;
        ks.committed = pid;
      } else if (TransientKeyed(addr.status())) {
        ++rep->uncertain_puts;
        ks.uncertain.push_back(pid);  // the insert may still land late
      } else {
        hard_error("put", addr.status(), k);
      }
    } else {  // Del
      Status st = ctx.Del(KeyedKey(thread_id, k));
      if (st.ok()) {
        ks.exists = false;
      } else if (st.code() == StatusCode::kNotFound) {
        if (ks.exists && !ks.maybe_deleted) {
          rep->hard_errors.push_back("live key vanished at key " +
                                     std::to_string(k));
        }
        ks.exists = false;  // a pending uncertain Del has now applied
      } else if (TransientKeyed(st)) {
        ++rep->uncertain_dels;
        ks.maybe_deleted = true;  // sticky: the remove may apply any time
      } else {
        hard_error("del", st, k);
      }
    }
    if (ks.uncertain.size() > 24) ks.poisoned = true;  // unverifiable: retire
  }
}

TEST(ChaosTest, KeyedOpsSurviveKillRestartStorm) {
  uint64_t seed = 0x1DE75EED;
  if (const char* env = std::getenv("CORM_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 0) ^ 0x1DE7;
  }
  SCOPED_TRACE("derived seed=" + std::to_string(seed));

  sim::FaultInjector injector(seed);
  auto arm = [&](const char* site, double p, uint64_t delay_ns = 0) {
    sim::FaultSchedule s;
    s.probability = p;
    s.delay_ns = delay_ns;
    injector.Arm(site, s);
  };
  arm(sim::fault_sites::kRpcDelay, 0.02, 4000);
  arm(sim::fault_sites::kRpcDropRequest, 0.008);
  arm(sim::fault_sites::kRpcDropResponse, 0.004);
  arm(sim::fault_sites::kRpcDupCompletion, 0.01);
  arm(sim::fault_sites::kQpBreak, 0.004);
  arm(sim::fault_sites::kTornWrite, 0.01, 3000);
  arm(sim::fault_sites::kNodeCrash, 0.08);
  // Index-specific sites (DESIGN.md §6.2): stale bucket hints force the RPC
  // fallback; repair delays widen the window where a one-sided probe races
  // the compaction engine's IndexRepair pass.
  arm(sim::fault_sites::kIndexStaleHint, 0.05);
  arm(sim::fault_sites::kIndexRepairDelay, 0.1, 2000);

  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.node_config.num_workers = 2;
  cfg.node_config.seed = seed;
  cfg.node_config.background_compaction = true;
  cfg.node_config.compaction_check_interval_us = 3000;
  Cluster cluster(cfg);

  std::vector<KeyedThreadReport> reports(kThreads);
  {
    sim::ScopedFaultInjector install(&injector);

    std::atomic<bool> stop{false};
    std::thread driver([&] {
      Rng rng(seed ^ 0xD21CEULL);
      int crashed = -1;
      int restart_in = 0;
      while (!stop.load(std::memory_order_acquire)) {
        cluster.Heartbeat();
        if (crashed < 0) {
          if (injector.ShouldFire(sim::fault_sites::kNodeCrash)) {
            crashed = static_cast<int>(rng.Uniform(cfg.num_nodes));
            cluster.CrashNode(crashed);
            restart_in = 2 + static_cast<int>(rng.Uniform(4));
          }
        } else if (--restart_in <= 0) {
          // No RehomeDeadNode here on purpose: keyed data is unreplicated,
          // so re-homing a range would strand every acked object behind it.
          // The crashed node restarts with memory and index intact.
          cluster.RestartNode(crashed);
          crashed = -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (crashed >= 0) cluster.RestartNode(crashed);
    });

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back(RunKeyedWorkload, &cluster, t, seed + t,
                           &reports[t]);
    }
    for (auto& w : workers) w.join();
    stop.store(true, std::memory_order_release);
    driver.join();
  }  // fault injector uninstalled: verification runs on a clean fabric

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 4; ++i) cluster.Heartbeat();
  for (int n = 0; n < cfg.num_nodes; ++n) {
    ASSERT_EQ(cluster.failure_detector()->health(n), NodeHealth::kAlive)
        << "node " << n << " did not recover";
  }
  cluster.StopBackgroundCompaction();

  for (int n = 0; n < cfg.num_nodes; ++n) {
    Status audit = cluster.node(n)->Audit();
    EXPECT_TRUE(audit.ok()) << "node " << n << ": " << audit.ToString();
  }

  uint64_t total_ops = 0, uncertain_puts = 0, uncertain_dels = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_ops += reports[t].ops;
    uncertain_puts += reports[t].uncertain_puts;
    uncertain_dels += reports[t].uncertain_dels;
    for (const auto& err : reports[t].hard_errors) {
      ADD_FAILURE() << "thread " << t << ": " << err;
    }
  }
  EXPECT_GT(total_ops, 0u);

  // Final sweep on the healed cluster with full deadlines: every key must
  // serve an accepted value or be legitimately absent — nothing acked was
  // lost or misdirected by any kill, repair race, or stale hint.
  dsm::DsmContext verify(&cluster, core::Context::Options{});
  std::vector<uint8_t> out(kObjectSize);
  uint64_t verified = 0, lost = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t k = 0; k < reports[t].keys.size(); ++k) {
      KeyedState& ks = reports[t].keys[k];
      if (ks.poisoned) continue;
      Status st = verify.Get(KeyedKey(t, k), out.data(), kObjectSize);
      if (st.ok()) {
        EXPECT_TRUE(KeyedMatches(ks, out.data()))
            << "thread " << t << " key " << k << " holds an unknown value";
        ++verified;
        EXPECT_TRUE(verify.Del(KeyedKey(t, k)).ok())
            << "thread " << t << " key " << k;
      } else if (st.code() == StatusCode::kNotFound) {
        if (ks.exists && !ks.maybe_deleted) {
          ++lost;
          ADD_FAILURE() << "thread " << t << " key " << k
                        << " lost its acked Put";
        }
      } else {
        ADD_FAILURE() << "thread " << t << " key " << k << ": "
                      << st.ToString();
      }
    }
  }
  EXPECT_EQ(lost, 0u);
  EXPECT_GT(verified, 0u);  // the storm must leave something to verify

  core::NodeStats agg;
  for (int n = 0; n < cfg.num_nodes; ++n) {
    const core::NodeStats s = cluster.node(n)->stats();
    agg.index_lookups += s.index_lookups;
    agg.index_one_sided_hits += s.index_one_sided_hits;
    agg.index_rpc_fallbacks += s.index_rpc_fallbacks;
    agg.index_repairs += s.index_repairs;
    agg.index_fenced_entries += s.index_fenced_entries;
  }
  EXPECT_GT(agg.index_lookups, 0u);
  std::printf(
      "keyed-chaos: seed=%#llx ops=%llu verified=%llu uncertain_puts=%llu "
      "uncertain_dels=%llu crashes=%llu lookups=%llu hits=%llu "
      "fallbacks=%llu repairs=%llu fenced=%llu\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(total_ops),
      static_cast<unsigned long long>(verified),
      static_cast<unsigned long long>(uncertain_puts),
      static_cast<unsigned long long>(uncertain_dels),
      static_cast<unsigned long long>(
          injector.FiredCount(sim::fault_sites::kNodeCrash)),
      static_cast<unsigned long long>(agg.index_lookups),
      static_cast<unsigned long long>(agg.index_one_sided_hits),
      static_cast<unsigned long long>(agg.index_rpc_fallbacks),
      static_cast<unsigned long long>(agg.index_repairs),
      static_cast<unsigned long long>(agg.index_fenced_entries));
}

}  // namespace
}  // namespace corm
