// Tests for the multi-node DSM layer and the primary-backup replication
// extension (paper §3.2.4 future work).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/object_layout.h"
#include "dsm/cluster.h"
#include "dsm/dsm_context.h"
#include "dsm/migration.h"
#include "dsm/replication.h"

namespace corm::dsm {
namespace {

using core::GlobalAddr;
using core::PatternCheck;
using core::PatternFill;

ClusterConfig SmallCluster(int nodes = 3) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.node_config.num_workers = 1;  // keep thread count sane on 1 CPU
  return config;
}

TEST(NodeStampTest, RoundTripsAndPreservesOldBlockBit) {
  GlobalAddr addr;
  SetNode(&addr, 93);
  EXPECT_EQ(NodeOf(addr), 93);
  addr.flags |= GlobalAddr::kFlagOldBlock;
  EXPECT_EQ(NodeOf(addr), 93);
  EXPECT_TRUE(addr.ReferencesOldBlock());
  SetNode(&addr, 5);
  EXPECT_EQ(NodeOf(addr), 5);
  EXPECT_TRUE(addr.ReferencesOldBlock());
}

TEST(DsmTest, RoundRobinSpreadsAllocations) {
  Cluster cluster(SmallCluster(3));
  DsmContext ctx(&cluster);
  std::set<int> nodes;
  std::vector<GlobalAddr> addrs;
  for (int i = 0; i < 12; ++i) {
    auto addr = ctx.Alloc(56);
    ASSERT_TRUE(addr.ok());
    nodes.insert(NodeOf(*addr));
    addrs.push_back(*addr);
  }
  EXPECT_EQ(nodes.size(), 3u);
  for (auto& addr : addrs) EXPECT_TRUE(ctx.Free(&addr).ok());
}

TEST(DsmTest, CrossNodeReadWrite) {
  Cluster cluster(SmallCluster(3));
  DsmContext ctx(&cluster);
  std::vector<uint8_t> in(100), out(100);
  for (int node = 0; node < 3; ++node) {
    auto addr = ctx.AllocOn(node, 100);
    ASSERT_TRUE(addr.ok());
    EXPECT_EQ(NodeOf(*addr), node);
    PatternFill(node, in.data(), 100);
    ASSERT_TRUE(ctx.Write(&*addr, in.data(), 100).ok());
    EXPECT_EQ(NodeOf(*addr), node) << "routing bits lost after write";
    ASSERT_TRUE(ctx.DirectRead(*addr, out.data(), 100).ok());
    EXPECT_EQ(in, out);
  }
}

TEST(DsmTest, LeastLoadedPlacementPrefersEmptyNode) {
  ClusterConfig config = SmallCluster(2);
  config.placement = Placement::kLeastLoaded;
  Cluster cluster(config);
  DsmContext ctx(&cluster);
  // Preload node 0 heavily.
  auto preload = cluster.node(0)->BulkAlloc(5000, 56);
  ASSERT_TRUE(preload.ok());
  int on_node1 = 0;
  for (int i = 0; i < 20; ++i) {
    auto addr = ctx.Alloc(56);
    ASSERT_TRUE(addr.ok());
    on_node1 += NodeOf(*addr) == 1;
  }
  EXPECT_GE(on_node1, 19);  // virtually everything lands on the empty node
}

TEST(DsmTest, PointersSurviveNodeLocalCompaction) {
  Cluster cluster(SmallCluster(2));
  DsmContext ctx(&cluster);
  std::vector<GlobalAddr> addrs;
  std::vector<uint8_t> buf(56);
  for (int i = 0; i < 512; ++i) {
    auto addr = ctx.Alloc(56);
    ASSERT_TRUE(addr.ok());
    PatternFill(i, buf.data(), 56);
    ASSERT_TRUE(ctx.Write(&*addr, buf.data(), 56).ok());
    addrs.push_back(*addr);
  }
  std::vector<GlobalAddr> survivors;
  std::vector<int> idx;
  for (size_t i = 0; i < addrs.size(); ++i) {
    // Free alternating *pairs* so each node (round-robin placement) loses
    // every other of its own objects rather than one node losing all.
    if ((i / 2) % 2 == 0) {
      ASSERT_TRUE(ctx.Free(&addrs[i]).ok());
    } else {
      survivors.push_back(addrs[i]);
      idx.push_back(static_cast<int>(i));
    }
  }
  auto reports = cluster.CompactAllIfFragmented();
  ASSERT_TRUE(reports.ok());
  EXPECT_FALSE(reports->empty());
  for (size_t i = 0; i < survivors.size(); ++i) {
    ASSERT_TRUE(ctx.ReadWithRecovery(&survivors[i], buf.data(), 56).ok());
    EXPECT_TRUE(PatternCheck(idx[i], buf.data(), 56));
    EXPECT_EQ(NodeOf(survivors[i]), idx[i] % 2 == 1 ? NodeOf(survivors[i])
                                                    : NodeOf(survivors[i]));
  }
}

TEST(DsmTest, DeadNodeOperationsFailWithNetworkError) {
  Cluster cluster(SmallCluster(2));
  DsmContext ctx(&cluster);
  auto addr = ctx.AllocOn(1, 56);
  ASSERT_TRUE(addr.ok());
  cluster.KillNode(1);
  std::vector<uint8_t> buf(56);
  EXPECT_EQ(ctx.Read(&*addr, buf.data(), 56).code(),
            StatusCode::kNetworkError);
  EXPECT_EQ(ctx.Write(&*addr, buf.data(), 56).code(),
            StatusCode::kNetworkError);
  EXPECT_EQ(ctx.AllocOn(1, 56).status().code(), StatusCode::kNetworkError);
  // Placement avoids the dead node.
  for (int i = 0; i < 8; ++i) {
    auto fresh = ctx.Alloc(56);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(NodeOf(*fresh), 0);
  }
  cluster.ReviveNode(1);
  EXPECT_TRUE(ctx.Read(&*addr, buf.data(), 56).ok());
}

// --- Replication ------------------------------------------------------------

TEST(ReplicationTest, ReplicasLandOnDistinctNodes) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 3);
  auto addr = rctx.Alloc(56);
  ASSERT_TRUE(addr.ok());
  std::set<int> nodes;
  for (const auto& replica : addr->replicas) nodes.insert(NodeOf(replica));
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_TRUE(rctx.Free(&*addr).ok());
}

TEST(ReplicationTest, ReadsFailOverWhenPrimaryDies) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(100);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(100), out(100);
  PatternFill(5, in.data(), 100);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 100).ok());

  cluster.KillNode(NodeOf(addr->primary()));
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 100).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(rctx.failovers(), 1u);
}

TEST(ReplicationTest, WritesDegradeWhenBackupDies) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(100);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(100), out(100);
  const int backup = NodeOf(addr->replicas[1]);
  cluster.KillNode(backup);
  PatternFill(6, in.data(), 100);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 100).ok());
  EXPECT_EQ(rctx.degraded_writes(), 1u);
  // Data durable on the primary.
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 100).ok());
  EXPECT_EQ(in, out);
  // Revive the backup and let anti-entropy re-replicate the degraded
  // write onto it (the primary holds the only durable copy until then —
  // failing over before the repair would correctly refuse, since promoting
  // the version-0 backup would lose the acked write).
  cluster.ReviveNode(backup);
  rctx.RunAntiEntropySweep(8);
  EXPECT_GE(rctx.anti_entropy_repairs(), 1u);
  // A dead *primary* now triggers an epoch-fenced failover: the repaired
  // backup is promoted and the write proceeds under the new epoch
  // (DESIGN.md §11).
  cluster.KillNode(NodeOf(addr->primary()));
  PatternFill(7, in.data(), 100);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 100).ok());
  EXPECT_GE(rctx.failovers(), 1u);
  EXPECT_EQ(addr->epoch, 2u);
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 100).ok());
  EXPECT_EQ(in, out);
}

TEST(ReplicationTest, ReplicasSurviveCompactionOnEveryNode) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 3);
  DsmContext filler(&cluster);
  std::vector<ReplicatedAddr> objects;
  std::vector<GlobalAddr> chaff;
  std::vector<uint8_t> buf(56);
  for (int i = 0; i < 100; ++i) {
    auto addr = rctx.Alloc(56);
    ASSERT_TRUE(addr.ok());
    PatternFill(i, buf.data(), 56);
    ASSERT_TRUE(rctx.Write(&*addr, buf.data(), 56).ok());
    objects.push_back(*addr);
    // Interleave chaff that gets freed to create fragmentation. Replica
    // images carry a 24-byte ReplObjectHeader, so the chaff must match the
    // *image* size to land in the same size class as the replicas.
    for (int c = 0; c < 6; ++c) {
      auto extra = filler.Alloc(56 + sizeof(rdma::ReplObjectHeader));
      ASSERT_TRUE(extra.ok());
      chaff.push_back(*extra);
    }
  }
  for (auto& extra : chaff) ASSERT_TRUE(filler.Free(&extra).ok());
  auto reports = cluster.CompactAllIfFragmented();
  ASSERT_TRUE(reports.ok());
  EXPECT_FALSE(reports->empty());
  // Every replica of every object readable with intact data, even with one
  // node down.
  cluster.KillNode(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rctx.Read(&objects[i], buf.data(), 56).ok()) << i;
    EXPECT_TRUE(PatternCheck(i, buf.data(), 56));
  }
}

// --- Migration / rebalancing -------------------------------------------------

TEST(MigrationTest, MigrateMovesObjectAndData) {
  Cluster cluster(SmallCluster(2));
  Migrator migrator(&cluster);
  auto* ctx = migrator.dsm();
  auto addr = ctx->AllocOn(0, 100);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(100), out(100);
  PatternFill(11, in.data(), 100);
  ASSERT_TRUE(ctx->Write(&*addr, in.data(), 100).ok());

  ASSERT_TRUE(migrator.Migrate(&*addr, 100, 1).ok());
  EXPECT_EQ(NodeOf(*addr), 1);
  ASSERT_TRUE(ctx->DirectRead(*addr, out.data(), 100).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(migrator.objects_migrated(), 1u);
  EXPECT_EQ(migrator.bytes_migrated(), 100u);
  // Source memory fully released (the migrated object was node 0's only
  // one, so its block went back to the OS).
  EXPECT_EQ(cluster.node(0)->ActiveMemoryBytes(), 0u);
}

TEST(MigrationTest, MigrateToSameNodeIsNoop) {
  Cluster cluster(SmallCluster(2));
  Migrator migrator(&cluster);
  auto addr = migrator.dsm()->AllocOn(0, 56);
  ASSERT_TRUE(addr.ok());
  const GlobalAddr before = *addr;
  ASSERT_TRUE(migrator.Migrate(&*addr, 56, 0).ok());
  EXPECT_EQ(addr->vaddr, before.vaddr);
  EXPECT_EQ(migrator.objects_migrated(), 0u);
}

TEST(MigrationTest, MigrateToDeadNodeFailsObjectIntact) {
  Cluster cluster(SmallCluster(2));
  Migrator migrator(&cluster);
  auto* ctx = migrator.dsm();
  auto addr = ctx->AllocOn(0, 56);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(56), out(56);
  PatternFill(3, in.data(), 56);
  ASSERT_TRUE(ctx->Write(&*addr, in.data(), 56).ok());
  cluster.KillNode(1);
  EXPECT_EQ(migrator.Migrate(&*addr, 56, 1).code(),
            StatusCode::kNetworkError);
  // The object is untouched at the source.
  ASSERT_TRUE(ctx->DirectRead(*addr, out.data(), 56).ok());
  EXPECT_EQ(in, out);
}

TEST(MigrationTest, RebalanceEvensOutSkewedCluster) {
  Cluster cluster(SmallCluster(3));
  Migrator migrator(&cluster);
  auto* ctx = migrator.dsm();
  // All objects on node 0: maximal imbalance.
  std::vector<GlobalAddr> objects;
  std::vector<uint32_t> sizes;
  std::vector<uint8_t> buf(120);
  for (int i = 0; i < 600; ++i) {
    auto addr = ctx->AllocOn(0, 120);
    ASSERT_TRUE(addr.ok());
    PatternFill(i, buf.data(), 120);
    ASSERT_TRUE(ctx->Write(&*addr, buf.data(), 120).ok());
    objects.push_back(*addr);
    sizes.push_back(120);
  }
  Rebalancer rebalancer(&cluster, &migrator);
  auto report = rebalancer.Rebalance(&objects, sizes, 1.10);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->objects_migrated, 0u);
  EXPECT_LT(report->imbalance_after, report->imbalance_before);
  EXPECT_LT(report->imbalance_after, 1.5);
  // Every object still readable with intact data wherever it landed.
  for (size_t i = 0; i < objects.size(); ++i) {
    ASSERT_TRUE(ctx->ReadWithRecovery(&objects[i], buf.data(), 120).ok());
    EXPECT_TRUE(PatternCheck(i, buf.data(), 120)) << i;
  }
}

TEST(ReplicationTest, AllocFailsWithoutEnoughLiveNodes) {
  Cluster cluster(SmallCluster(2));
  ReplicatedContext rctx(&cluster, 2);
  cluster.KillNode(0);
  EXPECT_EQ(rctx.Alloc(56).status().code(), StatusCode::kNetworkError);
}

// Randomized cluster churn: allocations, frees, writes, migrations,
// node-local compactions and transient node failures interleave; every
// live object must stay intact and routable throughout.
TEST(DsmChurnTest, RandomizedOpsPreserveEveryObject) {
  Cluster cluster(SmallCluster(3));
  Migrator migrator(&cluster);
  auto* ctx = migrator.dsm();
  Rebalancer rebalancer(&cluster, &migrator);
  Rng rng(2026);

  struct LiveObj {
    GlobalAddr addr;
    uint64_t pattern;
    uint32_t size;
  };
  std::vector<LiveObj> live;
  uint64_t next_pattern = 0;
  std::vector<uint8_t> buf(512);
  int dead_node = -1;

  for (int step = 0; step < 4000; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.45 || live.empty()) {
      const uint32_t size = 24u << rng.Uniform(4);  // 24..192
      auto addr = ctx->Alloc(size);
      if (!addr.ok()) continue;  // placement can fail while a node is dead
      PatternFill(next_pattern, buf.data(), size);
      if (ctx->Write(&*addr, buf.data(), size).ok()) {
        live.push_back({*addr, next_pattern++, size});
      }
    } else if (dice < 0.75) {
      const size_t victim = rng.Uniform(live.size());
      if (NodeOf(live[victim].addr) == dead_node) continue;
      ASSERT_TRUE(ctx->Free(&live[victim].addr).ok());
      live[victim] = live.back();
      live.pop_back();
    } else if (dice < 0.85) {
      const size_t idx = rng.Uniform(live.size());
      const int target = static_cast<int>(rng.Uniform(3));
      if (target == dead_node || NodeOf(live[idx].addr) == dead_node) {
        continue;
      }
      Status st =
          migrator.Migrate(&live[idx].addr, live[idx].size, target);
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kNetworkError) << st;
    } else if (dice < 0.95) {
      ASSERT_TRUE(cluster.CompactAllIfFragmented().ok());
    } else if (dead_node < 0) {
      dead_node = static_cast<int>(rng.Uniform(3));
      cluster.KillNode(dead_node);
    } else {
      cluster.ReviveNode(dead_node);
      dead_node = -1;
    }
  }
  if (dead_node >= 0) cluster.ReviveNode(dead_node);

  // Final sweep: everything alive, intact, routable.
  ASSERT_TRUE(cluster.CompactAllIfFragmented().ok());
  for (const LiveObj& obj : live) {
    GlobalAddr addr = obj.addr;
    ASSERT_TRUE(ctx->ReadWithRecovery(&addr, buf.data(), obj.size).ok());
    EXPECT_TRUE(PatternCheck(obj.pattern, buf.data(), obj.size));
  }
}

}  // namespace
}  // namespace corm::dsm
