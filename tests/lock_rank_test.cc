// Tests for the lock-order (deadlock) checker in common/lock_rank.h: the
// rank tracker itself, the ranked lock wrappers, and the documented node
// hierarchy (allocator -> directory -> block allocator -> leaf trackers).

#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <thread>

namespace corm {
namespace {

// Forces enforcement on for a test (release builds default it off) and
// restores the previous setting afterwards.
class ScopedEnforce {
 public:
  ScopedEnforce() : prev_(LockRankTracker::Enforcing()) {
    LockRankTracker::SetEnforce(true);
  }
  ~ScopedEnforce() { LockRankTracker::SetEnforce(prev_); }

 private:
  const bool prev_;
};

TEST(LockRankTrackerTest, IncreasingRanksAreAccepted) {
  ScopedEnforce enforce;
  EXPECT_EQ(LockRankTracker::Depth(), 0);
  LockRankTracker::Acquired(LockRank::kCompactionLeader, /*reentrant=*/true);
  LockRankTracker::Acquired(LockRank::kThreadAllocator, /*reentrant=*/true);
  LockRankTracker::Acquired(LockRank::kNodeDirectory);
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  LockRankTracker::Acquired(LockRank::kVaddrTracker);
  EXPECT_EQ(LockRankTracker::Depth(), 5);
  EXPECT_EQ(LockRankTracker::Top(), LockRank::kVaddrTracker);
  LockRankTracker::Released(LockRank::kVaddrTracker);
  LockRankTracker::Released(LockRank::kBlockAllocator);
  LockRankTracker::Released(LockRank::kNodeDirectory);
  LockRankTracker::Released(LockRank::kThreadAllocator);
  LockRankTracker::Released(LockRank::kCompactionLeader);
  EXPECT_EQ(LockRankTracker::Depth(), 0);
  EXPECT_EQ(LockRankTracker::Top(), LockRank::kNone);
}

TEST(LockRankTrackerTest, DecreasingRankAborts) {
  ScopedEnforce enforce;
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  EXPECT_DEATH(LockRankTracker::Acquired(LockRank::kNodeDirectory),
               "lock-order violation");
  LockRankTracker::Released(LockRank::kBlockAllocator);
}

TEST(LockRankTrackerTest, EqualRankAbortsForPlainLocks) {
  ScopedEnforce enforce;
  LockRankTracker::Acquired(LockRank::kNodeDirectory);
  EXPECT_DEATH(LockRankTracker::Acquired(LockRank::kNodeDirectory),
               "lock-order violation");
  LockRankTracker::Released(LockRank::kNodeDirectory);
}

TEST(LockRankTrackerTest, RegionsReenterAtEqualRank) {
  ScopedEnforce enforce;
  LockRankRegion outer(LockRank::kThreadAllocator);
  {
    // E.g. CollectBlocks calling DetachBlock: both open the same region.
    LockRankRegion inner(LockRank::kThreadAllocator);
    EXPECT_EQ(LockRankTracker::Depth(), 2);
  }
  EXPECT_EQ(LockRankTracker::Depth(), 1);
}

TEST(LockRankTrackerTest, NonLifoReleaseAborts) {
  ScopedEnforce enforce;
  LockRankTracker::Acquired(LockRank::kNodeDirectory);
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  EXPECT_DEATH(LockRankTracker::Released(LockRank::kNodeDirectory),
               "non-LIFO");
  LockRankTracker::Released(LockRank::kBlockAllocator);
  LockRankTracker::Released(LockRank::kNodeDirectory);
}

TEST(LockRankTrackerTest, StateIsPerThread) {
  ScopedEnforce enforce;
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  std::thread other([] {
    // A fresh thread holds nothing: acquiring a lower rank is fine there.
    EXPECT_EQ(LockRankTracker::Depth(), 0);
    LockRankTracker::Acquired(LockRank::kCompactionLeader, true);
    LockRankTracker::Released(LockRank::kCompactionLeader);
  });
  other.join();
  EXPECT_EQ(LockRankTracker::Top(), LockRank::kBlockAllocator);
  LockRankTracker::Released(LockRank::kBlockAllocator);
}

TEST(LockRankTrackerTest, DisabledEnforcementChecksNothing) {
  const bool prev = LockRankTracker::Enforcing();
  LockRankTracker::SetEnforce(false);
  // Out-of-order acquisition passes silently when enforcement is off.
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  LockRankTracker::Acquired(LockRank::kNodeDirectory);
  LockRankTracker::Released(LockRank::kBlockAllocator);
  LockRankTracker::Released(LockRank::kNodeDirectory);
  EXPECT_EQ(LockRankTracker::Depth(), 0);
  LockRankTracker::SetEnforce(prev);
}

TEST(RankedSpinLockTest, LockUnlockTracksRank) {
  ScopedEnforce enforce;
  RankedSpinLock mu(LockRank::kVaddrTracker);
  EXPECT_EQ(mu.rank(), LockRank::kVaddrTracker);
  {
    std::lock_guard<RankedSpinLock> lock(mu);
    EXPECT_EQ(LockRankTracker::Top(), LockRank::kVaddrTracker);
  }
  EXPECT_EQ(LockRankTracker::Depth(), 0);
}

TEST(RankedSpinLockTest, TryLockFailureLeavesNoRank) {
  ScopedEnforce enforce;
  RankedSpinLock mu(LockRank::kVaddrTracker);
  mu.lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.try_lock());
    EXPECT_EQ(LockRankTracker::Depth(), 0);
  });
  other.join();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RankedSpinLockTest, OutOfOrderGuardsAbort) {
  ScopedEnforce enforce;
  RankedSpinLock inner(LockRank::kVaddrTracker);
  RankedSpinLock outer(LockRank::kNodeDirectory);
  std::lock_guard<RankedSpinLock> hold(inner);
  EXPECT_DEATH(outer.lock(), "lock-order violation");
}

// End-to-end bridge to the static analysis: corm-tidy's --dump-lock-graph
// (tools/corm_tidy/lock_order.cc) extracts the rank hierarchy and every
// statically visible nested acquisition from src/. These cases pin the
// extracted graph to the *compiled* enum, so renaming or renumbering a
// LockRank — or a regression in the extractor — fails here, not in review.
#if defined(CORM_TIDY_BIN) && defined(CORM_REPO_ROOT)

std::string DumpLockGraph() {
  const std::string cmd = std::string(CORM_TIDY_BIN) +
                          " --dump-lock-graph --src " CORM_REPO_ROOT "/src";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int rc = pclose(pipe);
  EXPECT_EQ(rc, 0) << "corm-tidy --dump-lock-graph failed:\n" << out;
  return out;
}

TEST(StaticLockOrderTest, ExtractedRanksMatchCompiledEnum) {
  const std::map<std::string, int> compiled = {
      {"kNone", static_cast<int>(LockRank::kNone)},
      {"kScheduler", static_cast<int>(LockRank::kScheduler)},
      {"kCompactionLeader", static_cast<int>(LockRank::kCompactionLeader)},
      {"kThreadAllocator", static_cast<int>(LockRank::kThreadAllocator)},
      {"kAliasList", static_cast<int>(LockRank::kAliasList)},
      {"kNodeDirectory", static_cast<int>(LockRank::kNodeDirectory)},
      {"kBlockAllocator", static_cast<int>(LockRank::kBlockAllocator)},
      {"kVaddrTracker", static_cast<int>(LockRank::kVaddrTracker)},
      {"kGraveyard", static_cast<int>(LockRank::kGraveyard)},
      {"kReplIngress", static_cast<int>(LockRank::kReplIngress)},
      {"kSubstrate", static_cast<int>(LockRank::kSubstrate)},
  };
  std::map<std::string, int> extracted;
  std::istringstream dump(DumpLockGraph());
  std::string kind;
  while (dump >> kind) {
    if (kind == "rank") {
      std::string name;
      int value = 0;
      ASSERT_TRUE(dump >> name >> value);
      extracted[name] = value;
    } else {
      std::string rest;
      std::getline(dump, rest);  // edges checked by the next case
    }
  }
  EXPECT_EQ(extracted, compiled)
      << "the LockRank hierarchy corm-tidy extracted from "
         "common/lock_rank.h drifted from the compiled enum";
}

TEST(StaticLockOrderTest, EveryExtractedEdgeRespectsTheHierarchy) {
  std::istringstream dump(DumpLockGraph());
  std::string kind;
  int edges = 0;
  while (dump >> kind) {
    std::string held_name, acq_name, where;
    int held = 0, acq = 0, reentrant = 0;
    if (kind != "edge") {
      std::getline(dump, where);
      continue;
    }
    ASSERT_TRUE(dump >> held_name >> held >> acq_name >> acq >> reentrant >>
                where);
    ++edges;
    if (reentrant != 0) {
      EXPECT_GE(acq, held) << "reentrant acquisition of " << acq_name
                           << " under " << held_name << " at " << where;
    } else {
      EXPECT_GT(acq, held) << "acquisition of " << acq_name << " under "
                           << held_name << " at " << where;
    }
  }
  // src/ is expected to contain at least one statically visible nesting
  // (the RNIC's region-map/entries substrate locks); zero edges would mean
  // the extractor went blind, which is its own regression.
  EXPECT_GT(edges, 0) << "--dump-lock-graph found no nested acquisitions "
                         "in src/ at all";
}

#endif  // CORM_TIDY_BIN && CORM_REPO_ROOT

TEST(RankedSharedMutexTest, SharedAndExclusiveTrackRank) {
  ScopedEnforce enforce;
  RankedSharedMutex mu(LockRank::kNodeDirectory);
  {
    std::shared_lock<RankedSharedMutex> lock(mu);
    EXPECT_EQ(LockRankTracker::Top(), LockRank::kNodeDirectory);
    // Higher-ranked lock nests fine under a shared hold.
    RankedSpinLock leaf(LockRank::kGraveyard);
    std::lock_guard<RankedSpinLock> hold(leaf);
    EXPECT_EQ(LockRankTracker::Depth(), 2);
  }
  {
    std::unique_lock<RankedSharedMutex> lock(mu);
    EXPECT_EQ(LockRankTracker::Top(), LockRank::kNodeDirectory);
  }
  EXPECT_EQ(LockRankTracker::Depth(), 0);
}

}  // namespace
}  // namespace corm
