// Tests for the lock-order (deadlock) checker in common/lock_rank.h: the
// rank tracker itself, the ranked lock wrappers, and the documented node
// hierarchy (allocator -> directory -> block allocator -> leaf trackers).

#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>

namespace corm {
namespace {

// Forces enforcement on for a test (release builds default it off) and
// restores the previous setting afterwards.
class ScopedEnforce {
 public:
  ScopedEnforce() : prev_(LockRankTracker::Enforcing()) {
    LockRankTracker::SetEnforce(true);
  }
  ~ScopedEnforce() { LockRankTracker::SetEnforce(prev_); }

 private:
  const bool prev_;
};

TEST(LockRankTrackerTest, IncreasingRanksAreAccepted) {
  ScopedEnforce enforce;
  EXPECT_EQ(LockRankTracker::Depth(), 0);
  LockRankTracker::Acquired(LockRank::kCompactionLeader, /*reentrant=*/true);
  LockRankTracker::Acquired(LockRank::kThreadAllocator, /*reentrant=*/true);
  LockRankTracker::Acquired(LockRank::kNodeDirectory);
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  LockRankTracker::Acquired(LockRank::kVaddrTracker);
  EXPECT_EQ(LockRankTracker::Depth(), 5);
  EXPECT_EQ(LockRankTracker::Top(), LockRank::kVaddrTracker);
  LockRankTracker::Released(LockRank::kVaddrTracker);
  LockRankTracker::Released(LockRank::kBlockAllocator);
  LockRankTracker::Released(LockRank::kNodeDirectory);
  LockRankTracker::Released(LockRank::kThreadAllocator);
  LockRankTracker::Released(LockRank::kCompactionLeader);
  EXPECT_EQ(LockRankTracker::Depth(), 0);
  EXPECT_EQ(LockRankTracker::Top(), LockRank::kNone);
}

TEST(LockRankTrackerTest, DecreasingRankAborts) {
  ScopedEnforce enforce;
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  EXPECT_DEATH(LockRankTracker::Acquired(LockRank::kNodeDirectory),
               "lock-order violation");
  LockRankTracker::Released(LockRank::kBlockAllocator);
}

TEST(LockRankTrackerTest, EqualRankAbortsForPlainLocks) {
  ScopedEnforce enforce;
  LockRankTracker::Acquired(LockRank::kNodeDirectory);
  EXPECT_DEATH(LockRankTracker::Acquired(LockRank::kNodeDirectory),
               "lock-order violation");
  LockRankTracker::Released(LockRank::kNodeDirectory);
}

TEST(LockRankTrackerTest, RegionsReenterAtEqualRank) {
  ScopedEnforce enforce;
  LockRankRegion outer(LockRank::kThreadAllocator);
  {
    // E.g. CollectBlocks calling DetachBlock: both open the same region.
    LockRankRegion inner(LockRank::kThreadAllocator);
    EXPECT_EQ(LockRankTracker::Depth(), 2);
  }
  EXPECT_EQ(LockRankTracker::Depth(), 1);
}

TEST(LockRankTrackerTest, NonLifoReleaseAborts) {
  ScopedEnforce enforce;
  LockRankTracker::Acquired(LockRank::kNodeDirectory);
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  EXPECT_DEATH(LockRankTracker::Released(LockRank::kNodeDirectory),
               "non-LIFO");
  LockRankTracker::Released(LockRank::kBlockAllocator);
  LockRankTracker::Released(LockRank::kNodeDirectory);
}

TEST(LockRankTrackerTest, StateIsPerThread) {
  ScopedEnforce enforce;
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  std::thread other([] {
    // A fresh thread holds nothing: acquiring a lower rank is fine there.
    EXPECT_EQ(LockRankTracker::Depth(), 0);
    LockRankTracker::Acquired(LockRank::kCompactionLeader, true);
    LockRankTracker::Released(LockRank::kCompactionLeader);
  });
  other.join();
  EXPECT_EQ(LockRankTracker::Top(), LockRank::kBlockAllocator);
  LockRankTracker::Released(LockRank::kBlockAllocator);
}

TEST(LockRankTrackerTest, DisabledEnforcementChecksNothing) {
  const bool prev = LockRankTracker::Enforcing();
  LockRankTracker::SetEnforce(false);
  // Out-of-order acquisition passes silently when enforcement is off.
  LockRankTracker::Acquired(LockRank::kBlockAllocator);
  LockRankTracker::Acquired(LockRank::kNodeDirectory);
  LockRankTracker::Released(LockRank::kBlockAllocator);
  LockRankTracker::Released(LockRank::kNodeDirectory);
  EXPECT_EQ(LockRankTracker::Depth(), 0);
  LockRankTracker::SetEnforce(prev);
}

TEST(RankedSpinLockTest, LockUnlockTracksRank) {
  ScopedEnforce enforce;
  RankedSpinLock mu(LockRank::kVaddrTracker);
  EXPECT_EQ(mu.rank(), LockRank::kVaddrTracker);
  {
    std::lock_guard<RankedSpinLock> lock(mu);
    EXPECT_EQ(LockRankTracker::Top(), LockRank::kVaddrTracker);
  }
  EXPECT_EQ(LockRankTracker::Depth(), 0);
}

TEST(RankedSpinLockTest, TryLockFailureLeavesNoRank) {
  ScopedEnforce enforce;
  RankedSpinLock mu(LockRank::kVaddrTracker);
  mu.lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.try_lock());
    EXPECT_EQ(LockRankTracker::Depth(), 0);
  });
  other.join();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RankedSpinLockTest, OutOfOrderGuardsAbort) {
  ScopedEnforce enforce;
  RankedSpinLock inner(LockRank::kVaddrTracker);
  RankedSpinLock outer(LockRank::kNodeDirectory);
  std::lock_guard<RankedSpinLock> hold(inner);
  EXPECT_DEATH(outer.lock(), "lock-order violation");
}

TEST(RankedSharedMutexTest, SharedAndExclusiveTrackRank) {
  ScopedEnforce enforce;
  RankedSharedMutex mu(LockRank::kNodeDirectory);
  {
    std::shared_lock<RankedSharedMutex> lock(mu);
    EXPECT_EQ(LockRankTracker::Top(), LockRank::kNodeDirectory);
    // Higher-ranked lock nests fine under a shared hold.
    RankedSpinLock leaf(LockRank::kGraveyard);
    std::lock_guard<RankedSpinLock> hold(leaf);
    EXPECT_EQ(LockRankTracker::Depth(), 2);
  }
  {
    std::unique_lock<RankedSharedMutex> lock(mu);
    EXPECT_EQ(LockRankTracker::Top(), LockRank::kNodeDirectory);
  }
  EXPECT_EQ(LockRankTracker::Depth(), 0);
}

}  // namespace
}  // namespace corm
