// Unit tests for src/sim: physical frames, address space, memfd pool,
// latency model.

#include <gtest/gtest.h>

#include <cstring>

#include "sim/address_space.h"
#include "sim/latency_model.h"
#include "sim/mem_file.h"
#include "sim/physical_memory.h"

namespace corm::sim {
namespace {

TEST(PhysicalMemoryTest, AllocRefUnref) {
  PhysicalMemory phys;
  auto f = phys.AllocFrame();
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(phys.RefCount(*f), 1u);
  EXPECT_EQ(phys.live_frames(), 1u);
  phys.Ref(*f);
  EXPECT_EQ(phys.RefCount(*f), 2u);
  phys.Unref(*f);
  phys.Unref(*f);
  EXPECT_EQ(phys.live_frames(), 0u);
}

TEST(PhysicalMemoryTest, FramesRecycledAndZeroed) {
  PhysicalMemory phys;
  auto f1 = phys.AllocFrame();
  ASSERT_TRUE(f1.ok());
  phys.FrameData(*f1)[0] = 0xAB;
  phys.Unref(*f1);
  auto f2 = phys.AllocFrame();
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(*f1, *f2);  // recycled
  EXPECT_EQ(phys.FrameData(*f2)[0], 0);  // zeroed
}

TEST(PhysicalMemoryTest, CapacityCap) {
  PhysicalMemory phys(/*max_frames=*/2);
  auto a = phys.AllocFrame();
  auto b = phys.AllocFrame();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = phys.AllocFrame();
  EXPECT_TRUE(c.status().IsOutOfMemory());
  phys.Unref(*a);
  EXPECT_TRUE(phys.AllocFrame().ok());  // freed capacity reusable
}

TEST(PhysicalMemoryTest, PeakTracking) {
  PhysicalMemory phys;
  auto a = phys.AllocFrame();
  auto b = phys.AllocFrame();
  phys.Unref(*a);
  EXPECT_EQ(phys.peak_frames(), 2u);
  EXPECT_EQ(phys.live_frames(), 1u);
  phys.Unref(*b);
}

// --- AddressSpace -----------------------------------------------------------

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysicalMemory phys_;
  AddressSpace space_{&phys_};
};

TEST_F(AddressSpaceTest, ReserveIsPageAlignedAndDisjoint) {
  VAddr a = space_.ReserveRange(4);
  VAddr b = space_.ReserveRange(2);
  EXPECT_EQ(PageOffset(a), 0u);
  EXPECT_EQ(PageOffset(b), 0u);
  EXPECT_GE(b, a + 4 * kVPageSize);
  EXPECT_EQ(space_.reserved_pages(), 6u);
}

TEST_F(AddressSpaceTest, ReleasedRangeIsReused) {
  VAddr a = space_.ReserveRange(4);
  space_.ReleaseRange(a, 4);
  VAddr b = space_.ReserveRange(4);
  EXPECT_EQ(a, b);  // virtual address reuse (paper §3.3)
}

TEST_F(AddressSpaceTest, MapTranslateReadWrite) {
  VAddr base = space_.ReserveRange(2);
  ASSERT_TRUE(space_.MapFresh(base, 2).ok());
  const char msg[] = "corm";
  ASSERT_TRUE(space_.WriteVirtual(base + 100, msg, sizeof(msg)).ok());
  char out[sizeof(msg)];
  ASSERT_TRUE(space_.ReadVirtual(base + 100, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, "corm");
  EXPECT_EQ(space_.mapped_pages(), 2u);
}

TEST_F(AddressSpaceTest, CrossPageReadWrite) {
  VAddr base = space_.ReserveRange(2);
  ASSERT_TRUE(space_.MapFresh(base, 2).ok());
  std::vector<uint8_t> data(kVPageSize, 0x5C);
  // Straddle the page boundary.
  ASSERT_TRUE(
      space_.WriteVirtual(base + kVPageSize / 2, data.data(), data.size())
          .ok());
  std::vector<uint8_t> out(kVPageSize);
  ASSERT_TRUE(
      space_.ReadVirtual(base + kVPageSize / 2, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(AddressSpaceTest, RemapAliasesPhysicalPages) {
  VAddr a = space_.ReserveRange(1);
  VAddr b = space_.ReserveRange(1);
  ASSERT_TRUE(space_.MapFresh(a, 1).ok());
  ASSERT_TRUE(space_.MapFresh(b, 1).ok());
  const uint32_t marker = 0xfeedface;
  ASSERT_TRUE(space_.WriteVirtual(b, &marker, sizeof(marker)).ok());

  // The compaction remap: a's page now points at b's frame.
  ASSERT_TRUE(space_.Remap(a, b, 1).ok());
  uint32_t out = 0;
  ASSERT_TRUE(space_.ReadVirtual(a, &out, sizeof(out)).ok());
  EXPECT_EQ(out, marker);
  // Writes through either address are visible through the other.
  const uint32_t marker2 = 0xdeadbeef;
  ASSERT_TRUE(space_.WriteVirtual(a, &marker2, sizeof(marker2)).ok());
  ASSERT_TRUE(space_.ReadVirtual(b, &out, sizeof(out)).ok());
  EXPECT_EQ(out, marker2);
}

TEST_F(AddressSpaceTest, RemapDropsOldFrameReference) {
  VAddr a = space_.ReserveRange(1);
  VAddr b = space_.ReserveRange(1);
  ASSERT_TRUE(space_.MapFresh(a, 1).ok());
  ASSERT_TRUE(space_.MapFresh(b, 1).ok());
  auto frame_a = space_.TranslatePage(a);
  ASSERT_TRUE(frame_a.ok());
  EXPECT_EQ(phys_.live_frames(), 2u);
  ASSERT_TRUE(space_.Remap(a, b, 1).ok());
  // a's old frame lost its only reference and was recycled.
  EXPECT_EQ(phys_.live_frames(), 1u);
}

TEST_F(AddressSpaceTest, UnmapRejectsUnmapped) {
  VAddr a = space_.ReserveRange(1);
  EXPECT_FALSE(space_.Unmap(a, 1).ok());
}

TEST_F(AddressSpaceTest, TranslateUnmappedFails) {
  EXPECT_EQ(space_.TranslatePtr(0x1234), nullptr);
  EXPECT_FALSE(space_.TranslatePage(0x1234).ok());
  char c;
  EXPECT_TRUE(space_.ReadVirtual(0x1234, &c, 1).IsNotFound());
}

namespace {
class RecordingNotifier : public MmuNotifier {
 public:
  void OnMappingChange(VAddr page) override { pages.push_back(page); }
  std::vector<VAddr> pages;
};
}  // namespace

TEST_F(AddressSpaceTest, NotifierFiresOnRemapAndUnmap) {
  RecordingNotifier notifier;
  space_.AddNotifier(&notifier);
  VAddr a = space_.ReserveRange(2);
  VAddr b = space_.ReserveRange(2);
  ASSERT_TRUE(space_.MapFresh(a, 2).ok());
  ASSERT_TRUE(space_.MapFresh(b, 2).ok());
  ASSERT_TRUE(space_.Remap(a, b, 2).ok());
  ASSERT_EQ(notifier.pages.size(), 2u);
  EXPECT_EQ(notifier.pages[0], a);
  EXPECT_EQ(notifier.pages[1], a + kVPageSize);
  notifier.pages.clear();
  ASSERT_TRUE(space_.Unmap(b, 2).ok());
  EXPECT_EQ(notifier.pages.size(), 2u);
  space_.RemoveNotifier(&notifier);
  ASSERT_TRUE(space_.Unmap(a, 2).ok());
  EXPECT_TRUE(notifier.pages.size() == 2u);  // no further callbacks
}

// --- MemFileManager ----------------------------------------------------------

TEST(MemFileTest, AllocatesWithinSixteenMiBFiles) {
  PhysicalMemory phys;
  MemFileManager files(&phys);
  auto a = files.AllocBlock(1);
  auto b = files.AllocBlock(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(files.open_files(), 1u);  // both fit in one 16 MiB file
  EXPECT_EQ(a->id.fd, b->id.fd);
  EXPECT_NE(a->id.page_offset, b->id.page_offset);
}

TEST(MemFileTest, OpensNewFileWhenFull) {
  PhysicalMemory phys;
  MemFileManager files(&phys);
  // Fill one file completely (4096 pages), then allocate once more.
  auto big = files.AllocBlock(MemFileManager::kFilePages);
  ASSERT_TRUE(big.ok());
  auto extra = files.AllocBlock(1);
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(files.open_files(), 2u);
  EXPECT_NE(big->id.fd, extra->id.fd);
}

TEST(MemFileTest, FreeCoalescesExtents) {
  PhysicalMemory phys;
  MemFileManager files(&phys);
  auto a = files.AllocBlock(8);
  auto b = files.AllocBlock(8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  files.FreeBlock(*a);
  files.FreeBlock(*b);
  // After coalescing, a full-file allocation fits again in file 0.
  auto big = files.AllocBlock(MemFileManager::kFilePages);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->id.fd, 0);
  EXPECT_EQ(files.open_files(), 1u);
}

TEST(MemFileTest, FramesPinnedByMappingsSurviveFree) {
  PhysicalMemory phys;
  AddressSpace space(&phys);
  MemFileManager files(&phys);
  auto block = files.AllocBlock(1);
  ASSERT_TRUE(block.ok());
  VAddr base = space.ReserveRange(1);
  ASSERT_TRUE(space.MapFrames(base, block->frames).ok());
  files.FreeBlock(*block);  // file drops its reference...
  EXPECT_EQ(phys.live_frames(), 1u);  // ...but the mapping still pins it
  ASSERT_TRUE(space.Unmap(base, 1).ok());
  EXPECT_EQ(phys.live_frames(), 0u);
}

// --- LatencyModel ------------------------------------------------------------

TEST(LatencyModelTest, PaperConstants) {
  LatencyModel cx5{RnicModel::kConnectX5, CpuModel::kIntelXeon};
  LatencyModel cx3{RnicModel::kConnectX3, CpuModel::kIntelXeon};
  // Fig. 8: mmap ~2 us, rereg 8.5-9.6 us (CX-5), ODP miss 62-65 us,
  // advise 4.5 us.
  EXPECT_NEAR(cx5.MmapNs(), 2100, 300);
  EXPECT_GE(cx5.ReregMrNs(), 8500u);
  EXPECT_LE(cx5.ReregMrNs(), 9600u);
  EXPECT_GE(cx5.OdpMissNs(), 62000u);
  EXPECT_LE(cx5.OdpMissNs(), 65000u);
  EXPECT_NEAR(cx5.AdviseMrNs(), 4550, 100);
  // Fig. 15: rereg on ConnectX-3 ~70 us.
  EXPECT_NEAR(cx3.ReregMrNs(), 70000, 5000);
  // §4.1: raw RDMA read RTT as low as 1.7 us; RPC baseline ~2.6 us; TCP 17.
  EXPECT_EQ(cx5.RdmaReadNs(0), 1700u);
  EXPECT_LT(cx5.RdmaReadNs(8), cx5.RpcNs(8));
  EXPECT_GT(cx5.TcpNs(8), 10 * cx5.RdmaReadNs(8) / 2);
}

TEST(LatencyModelTest, RemapStrategyOrdering) {
  LatencyModel m{RnicModel::kConnectX5, CpuModel::kIntelXeon};
  // Per-remap proactive cost: ODP < ODP+prefetch < rereg (the ODP fault
  // cost is deferred to the first reader instead).
  EXPECT_LT(m.RemapBlockNs(RemapStrategy::kOdp, 1),
            m.RemapBlockNs(RemapStrategy::kOdpPrefetch, 1));
  EXPECT_LT(m.RemapBlockNs(RemapStrategy::kOdpPrefetch, 1),
            m.RemapBlockNs(RemapStrategy::kReregMr, 1));
}

TEST(LatencyModelTest, CollectionScalesWithThreads) {
  LatencyModel intel{RnicModel::kConnectX5, CpuModel::kIntelXeon};
  LatencyModel amd{RnicModel::kConnectX5, CpuModel::kAmdEpyc};
  // Fig. 15 (left): ~10 us @2 threads, ~31 us @16 on Intel; AMD ~5x faster
  // at low thread counts.
  EXPECT_NEAR(intel.CollectionNs(2), 10000, 2000);
  EXPECT_NEAR(intel.CollectionNs(16), 31000, 4000);
  EXPECT_LT(amd.CollectionNs(2), intel.CollectionNs(2) / 2);
}

TEST(LatencyModelTest, PaceHonorsZeroScale) {
  // Test main sets scale 0: Pace must return immediately even for an hour.
  Pace(3'600'000'000'000ULL);
  SUCCEED();
}

}  // namespace
}  // namespace corm::sim
