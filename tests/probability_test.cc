// Tests for the §3.4 compaction-probability model, including a Monte-Carlo
// cross-check of the closed-form formula.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <unordered_set>

#include "common/random.h"
#include "core/probability.h"

namespace corm::core {
namespace {

TEST(ProbabilityTest, BoundaryCases) {
  // Empty blocks always compactable.
  EXPECT_EQ(CompactionProbability(256, 16, 0, 5), 1.0);
  EXPECT_EQ(CompactionProbability(256, 16, 5, 0), 1.0);
  // Over capacity: never.
  EXPECT_EQ(CompactionProbability(256, 16, 10, 7), 0.0);
  // Exactly at capacity: allowed.
  EXPECT_GT(CompactionProbability(256, 16, 8, 8), 0.0);
}

TEST(ProbabilityTest, Symmetry) {
  for (uint64_t b1 = 1; b1 <= 8; ++b1) {
    for (uint64_t b2 = 1; b2 + b1 <= 16; ++b2) {
      EXPECT_NEAR(CompactionProbability(256, 16, b1, b2),
                  CompactionProbability(256, 16, b2, b1), 1e-12);
    }
  }
}

TEST(ProbabilityTest, MonotoneInIdSpace) {
  // Larger ID space => higher probability (paper §3.4).
  double prev = 0;
  for (int bits : {6, 8, 10, 12, 16}) {
    const double p = CormCompactionProbability(bits, 16, 8, 8);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ProbabilityTest, MeshEqualsCormWhenIdSpaceEqualsSlots) {
  // Paper: "for 16 byte objects, a 4 KiB block can store 256 objects ...
  // if CoRM would use 8-bit IDs, then it would have the same compaction
  // probability as Mesh."
  const uint64_t s = 256;
  for (uint64_t b = 8; b <= 128; b *= 2) {
    EXPECT_NEAR(CormCompactionProbability(8, s, b, b),
                MeshCompactionProbability(s, b, b), 1e-12);
  }
}

TEST(ProbabilityTest, CormBeatsMeshForLargerObjects) {
  // 128-byte objects in 4 KiB blocks: s = 32 slots; CoRM-8 has n = 256.
  const uint64_t s = 32;
  const uint64_t b = 12;
  EXPECT_GT(CormCompactionProbability(8, s, b, b),
            MeshCompactionProbability(s, b, b));
  // Large objects at 50% occupancy: Mesh is near zero, CoRM-16 near one
  // (Fig. 7 rightmost panel).
  const uint64_t s2 = 16, b2 = 8;
  EXPECT_LT(MeshCompactionProbability(s2, b2, b2), 0.01);
  EXPECT_GT(CormCompactionProbability(16, s2, b2, b2), 0.99);
}

TEST(ProbabilityTest, UnaddressableClassIsZero) {
  // Blocks holding more objects than 2^bits: CoRM cannot compact (§4.4.1).
  EXPECT_EQ(CormCompactionProbability(8, 512, 1, 1), 0.0);
  EXPECT_GT(CormCompactionProbability(16, 512, 1, 1), 0.0);
}

TEST(ProbabilityTest, ClosedFormMatchesDirectProduct) {
  // p = prod_{i=0..b2-1} (n - b1 - i) / (n - i)
  const uint64_t n = 256, b1 = 17, b2 = 23;
  double direct = 1.0;
  for (uint64_t i = 0; i < b2; ++i) {
    direct *= static_cast<double>(n - b1 - i) / static_cast<double>(n - i);
  }
  EXPECT_NEAR(CompactionProbability(n, 64, b1, b2), direct, 1e-12);
}

// Monte-Carlo cross-check across a sweep of configurations.
class ProbabilityMonteCarlo
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, uint64_t>> {};

TEST_P(ProbabilityMonteCarlo, MatchesSimulation) {
  const int bits = std::get<0>(GetParam());
  const uint64_t s = std::get<1>(GetParam());
  const uint64_t b = std::get<2>(GetParam());
  if (2 * b > s) GTEST_SKIP() << "over capacity";
  const uint64_t n = 1ULL << bits;

  Rng rng(bits * 1000 + s * 10 + b);
  const int kTrials = 20000;
  int compactable = 0;
  std::unordered_set<uint32_t> ids1, ids2;
  for (int t = 0; t < kTrials; ++t) {
    ids1.clear();
    ids2.clear();
    while (ids1.size() < b) ids1.insert(static_cast<uint32_t>(rng.Uniform(n)));
    while (ids2.size() < b) ids2.insert(static_cast<uint32_t>(rng.Uniform(n)));
    bool conflict = false;
    for (uint32_t id : ids2) {
      if (ids1.count(id)) {
        conflict = true;
        break;
      }
    }
    compactable += !conflict;
  }
  const double expected = CormCompactionProbability(bits, s, b, b);
  const double measured = static_cast<double>(compactable) / kTrials;
  EXPECT_NEAR(measured, expected, 0.02)
      << "bits=" << bits << " s=" << s << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProbabilityMonteCarlo,
    ::testing::Combine(::testing::Values(8, 12, 16),
                       ::testing::Values<uint64_t>(16, 64, 256),
                       ::testing::Values<uint64_t>(2, 8, 32, 96)));

}  // namespace
}  // namespace corm::core
