// Compaction engine: phase-structured resumability, budgeted slicing,
// probability-guided planning and the bounded Collect phase (DESIGN.md §9).
//
// The engine-specific behaviors live here; end-to-end compaction
// correctness (data survival, pointer correction, ghost release) stays in
// compaction_test.cc, which now runs through the same sliced engine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "alloc/fragmentation.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"
#include "core/probability.h"
#include "sim/address_space.h"
#include "sim/fault_injector.h"

namespace corm::core {
namespace {

constexpr uint32_t kPayload = 56;  // class 64: 64 objects per 4 KiB block

const char* PhaseName(CompactionPhase p) {
  switch (p) {
    case CompactionPhase::kIdle: return "Idle";
    case CompactionPhase::kSelect: return "Select";
    case CompactionPhase::kCollect: return "Collect";
    case CompactionPhase::kConflictCheck: return "ConflictCheck";
    case CompactionPhase::kCopy: return "Copy";
    case CompactionPhase::kIndexRepair: return "IndexRepair";
    case CompactionPhase::kRemap: return "Remap";
    case CompactionPhase::kFixup: return "Fixup";
    case CompactionPhase::kReclaim: return "Reclaim";
  }
  return "?";
}

// The engine's legal phase graph (SetPhase fires the hook only on actual
// transitions; a phase that polls and re-enters does not re-announce).
bool ValidTransition(CompactionPhase from, CompactionPhase to) {
  switch (from) {
    case CompactionPhase::kIdle:
      return to == CompactionPhase::kSelect;
    case CompactionPhase::kSelect:
      return to == CompactionPhase::kCollect ||
             to == CompactionPhase::kReclaim;
    case CompactionPhase::kCollect:
      return to == CompactionPhase::kConflictCheck ||
             to == CompactionPhase::kReclaim;
    case CompactionPhase::kConflictCheck:
      return to == CompactionPhase::kCopy || to == CompactionPhase::kReclaim;
    case CompactionPhase::kCopy:
      return to == CompactionPhase::kIndexRepair ||
             to == CompactionPhase::kReclaim;
    case CompactionPhase::kIndexRepair:
      // Entered only after a successful copy; aborts drain through the
      // copy phase, so the only exits are forward into Remap or a Reclaim
      // wind-down when the run is cancelled.
      return to == CompactionPhase::kRemap ||
             to == CompactionPhase::kReclaim;
    case CompactionPhase::kRemap:
      return to == CompactionPhase::kFixup ||
             to == CompactionPhase::kReclaim;
    case CompactionPhase::kFixup:
      return to == CompactionPhase::kConflictCheck;
    case CompactionPhase::kReclaim:
      return to == CompactionPhase::kIdle;
  }
  return false;
}

CormConfig BaseConfig() {
  CormConfig config;
  config.num_workers = 2;
  config.block_pages = 1;
  config.object_id_bits = 16;
  return config;
}

// Allocates objects through the RPC path, patterns them, frees every other
// one so the class fragments into half-full blocks.
struct Fragmented {
  std::vector<GlobalAddr> survivors;
  std::vector<size_t> live_idx;  // pattern seed per survivor
};

Fragmented Fragment(Context* ctx, size_t count) {
  std::vector<GlobalAddr> addrs;
  std::vector<uint8_t> buf(kPayload);
  for (size_t i = 0; i < count; ++i) {
    auto addr = ctx->Alloc(kPayload);
    EXPECT_TRUE(addr.ok());
    PatternFill(i, buf.data(), kPayload);
    EXPECT_TRUE(ctx->Write(&*addr, buf.data(), kPayload).ok());
    addrs.push_back(*addr);
  }
  Fragmented out;
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(ctx->Free(&addrs[i]).ok());
    } else {
      out.survivors.push_back(addrs[i]);
      out.live_idx.push_back(i);
    }
  }
  return out;
}

void VerifySurvivors(Context* ctx, const Fragmented& frag) {
  std::vector<uint8_t> buf(kPayload);
  for (size_t i = 0; i < frag.survivors.size(); ++i) {
    GlobalAddr addr = frag.survivors[i];
    ASSERT_TRUE(ctx->Read(&addr, buf.data(), kPayload).ok()) << i;
    EXPECT_TRUE(PatternCheck(frag.live_idx[i], buf.data(), kPayload)) << i;
  }
}

// --- Resumability: a tiny-budget run is many slices, one coherent run. -----

TEST(CompactionEngineTest, SlicedRunResumesAcrossPhases) {
  CormConfig config = BaseConfig();
  config.compaction_slice_objects = 1;  // one object copied per slice
  config.compaction_slice_pairs = 1;    // one plan pair examined per slice

  std::mutex mu;
  std::vector<CompactionPhase> seen;
  config.compaction_phase_hook = [&](CompactionPhase p) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(p);
  };

  CormNode node(config);
  auto ctx = Context::Create(&node);
  Fragmented frag = Fragment(ctx.get(), 512);

  auto report = node.Compact(*node.ClassForPayload(kPayload));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->blocks_freed, 0u);
  EXPECT_GT(report->objects_moved, 0u);

  // FinishRun publishes the report before announcing kIdle, so wait for the
  // trailing transition before inspecting the sequence.
  for (int spin = 0; spin < 10000; ++spin) {
    std::lock_guard<std::mutex> lock(mu);
    if (!seen.empty() && seen.back() == CompactionPhase::kIdle) break;
    std::this_thread::yield();
  }

  std::vector<CompactionPhase> phases;
  {
    std::lock_guard<std::mutex> lock(mu);
    phases = seen;
  }
  ASSERT_FALSE(phases.empty());
  EXPECT_EQ(phases.front(), CompactionPhase::kSelect);
  EXPECT_EQ(phases.back(), CompactionPhase::kIdle);
  for (size_t i = 1; i < phases.size(); ++i) {
    EXPECT_TRUE(ValidTransition(phases[i - 1], phases[i]))
        << PhaseName(phases[i - 1]) << " -> " << PhaseName(phases[i]);
  }
  size_t fixups = 0;
  bool saw_copy = false, saw_remap = false;
  for (CompactionPhase p : phases) {
    fixups += (p == CompactionPhase::kFixup) ? 1 : 0;
    saw_copy |= p == CompactionPhase::kCopy;
    saw_remap |= p == CompactionPhase::kRemap;
  }
  EXPECT_TRUE(saw_copy);
  EXPECT_TRUE(saw_remap);
  EXPECT_EQ(fixups, report->blocks_freed);  // one Fixup per retired source

  // A one-object copy budget forces far more slices than merged pairs: the
  // run genuinely suspended and resumed (at least one slice per object).
  EXPECT_GT(report->slices, report->objects_moved);
  EXPECT_EQ(node.stats().compaction_slices, report->slices);

  VerifySurvivors(ctx.get(), frag);
  EXPECT_TRUE(node.Audit().ok());
}

// --- Pause after every phase: invariants hold at each slice boundary. ------

// Gate handed to the phase hook: the leader blocks at every transition
// until the main thread inspects the paused state and releases it.
struct PhaseGate {
  std::mutex mu;
  std::condition_variable cv;
  CompactionPhase phase = CompactionPhase::kIdle;
  bool paused = false;
  bool release = false;
};

TEST(CompactionEngineTest, PausedSlicesKeepDirectoryAndVaddrInvariants) {
  PhaseGate gate;
  CormConfig config = BaseConfig();
  config.compaction_phase_hook = [&gate](CompactionPhase p) {
    // kIdle is announced after the report is published (the caller may
    // already have returned); pausing there would serialize against the
    // test's join instead of the run.
    if (p == CompactionPhase::kIdle) return;
    std::unique_lock<std::mutex> lock(gate.mu);
    gate.phase = p;
    gate.paused = true;
    gate.release = false;
    gate.cv.notify_all();
    gate.cv.wait(lock, [&gate] { return gate.release; });
  };

  CormNode node(config);
  auto ctx = Context::Create(&node);
  Fragmented frag = Fragment(ctx.get(), 512);

  std::atomic<bool> compact_done{false};
  Result<CompactionReport> report = Status::Internal("never ran");
  std::thread compactor([&] {
    report = node.Compact(*node.ClassForPayload(kPayload));
    compact_done.store(true, std::memory_order_release);
  });

  // While the leader is frozen mid-run we may only check state that no
  // worker thread has to serve: lock-free directory lookups, the vaddr
  // tracker's ghost count and the service flag. (A full Audit() fans out
  // to the blocked leader and would deadlock — by design.)
  size_t pauses = 0;
  while (!compact_done.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> lock(gate.mu);
    if (!gate.cv.wait_for(lock, std::chrono::milliseconds(50),
                          [&gate] { return gate.paused; })) {
      continue;  // re-check compact_done
    }
    ++pauses;
    EXPECT_TRUE(node.IsServingRequests());
    // Every survivor's last-known virtual address must resolve to some
    // block (current or ghost alias) at every slice boundary: compaction
    // never leaves a window where a one-sided reader's base dangles.
    for (const GlobalAddr& addr : frag.survivors) {
      const sim::VAddr base = addr.vaddr & ~(sim::kVPageSize - 1);
      EXPECT_NE(node.directory_for_testing().Lookup(base).block, nullptr)
          << "dangling base at phase " << PhaseName(gate.phase);
    }
    gate.paused = false;
    gate.release = true;
    gate.cv.notify_all();
  }
  compactor.join();

  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->blocks_freed, 0u);
  // The run paused at least once per phase a merge passes through.
  EXPECT_GE(pauses, 6u);

  VerifySurvivors(ctx.get(), frag);
  EXPECT_TRUE(node.Audit().ok());
}

// --- Readers and writers interleave with a sliced run (tsan-labeled). ------

TEST(CompactionEngineTest, ReadersAndWritersInterleaveWithSlicedRuns) {
  CormConfig config = BaseConfig();
  config.compaction_slice_objects = 2;
  config.compaction_slice_pairs = 1;
  CormNode node(config);

  auto setup_ctx = Context::Create(&node);
  Fragmented frag = Fragment(setup_ctx.get(), 512);
  const uint32_t class_idx = *node.ClassForPayload(kPayload);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_ok{0}, writes_ok{0};

  // Readers check the pattern the writer maintains: both always use the
  // survivor's original seed, so any interleaving must still verify.
  std::thread reader([&] {
    auto ctx = Context::Create(&node);
    std::vector<uint8_t> buf(kPayload);
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const size_t k = i++ % frag.survivors.size();
      GlobalAddr addr = frag.survivors[k];
      if (ctx->Read(&addr, buf.data(), kPayload).ok()) {
        EXPECT_TRUE(PatternCheck(frag.live_idx[k], buf.data(), kPayload));
        reads_ok.fetch_add(1, std::memory_order_relaxed);
      }  // transient (locked/moved mid-slice): retried on the next lap
    }
  });
  std::thread writer([&] {
    auto ctx = Context::Create(&node);
    std::vector<uint8_t> buf(kPayload);
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const size_t k = (i++ * 7) % frag.survivors.size();
      GlobalAddr addr = frag.survivors[k];
      PatternFill(frag.live_idx[k], buf.data(), kPayload);
      if (ctx->Write(&addr, buf.data(), kPayload).ok()) {
        writes_ok.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Sliced runs interleave with the traffic above; later rounds may find
  // nothing left to merge, which still exercises Select/Reclaim.
  for (int round = 0; round < 4; ++round) {
    auto report = node.Compact(class_idx);
    ASSERT_TRUE(report.ok()) << report.status();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  writer.join();

  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_GT(writes_ok.load(), 0u);
  VerifySurvivors(setup_ctx.get(), frag);
  EXPECT_TRUE(node.Audit().ok());
}

// --- Planner: pairs ranked by the §3.1.2 collision probability. ------------

TEST(CompactionEngineTest, PlannerRanksPairsByCollisionProbability) {
  constexpr int kIdBits = 16;
  constexpr uint64_t kSlots = 64;
  auto p = [](uint64_t b1, uint64_t b2) {
    return CormCompactionProbability(kIdBits, kSlots, b1, b2);
  };

  // Occupancies chosen so the scores discriminate: the emptiest block (4)
  // should chain into the fullest feasible one (60), not into a low-fill
  // destination that a first-fit scan would take.
  const std::vector<alloc::BlockOccupancy> blocks = {
      {0, 4, kSlots}, {1, 10, kSlots}, {2, 20, kSlots},
      {3, 60, kSlots}, {4, 62, kSlots},
  };
  size_t infeasible = 0;
  const auto plan = alloc::PlanMerges(blocks, p, &infeasible);

  ASSERT_EQ(plan.size(), 2u);
  // Source 4 → destination 60: p(4,60)·(64/64) beats p(4,20)·(24/64) and
  // p(4,10)·(14/64); 62 is infeasible (4+62 > 64).
  EXPECT_EQ(plan[0].src_index, 0u);
  EXPECT_EQ(plan[0].dst_index, 3u);
  EXPECT_DOUBLE_EQ(plan[0].probability, p(4, 60));
  EXPECT_DOUBLE_EQ(plan[0].score, p(4, 60) * (4.0 + 60.0) / 64.0);
  // Source 10: block 3 is tentatively full (64) after the planned chain, so
  // the only feasible destination left is 20.
  EXPECT_EQ(plan[1].src_index, 1u);
  EXPECT_EQ(plan[1].dst_index, 2u);
  EXPECT_DOUBLE_EQ(plan[1].probability, p(10, 20));
  // Remaining sources (the grown 20-block, 60 and 62) have no feasible
  // destination under tentative occupancy.
  EXPECT_EQ(infeasible, 3u);
  // Sources ascend by occupancy (§3.1.4: fewest objects first).
  EXPECT_LT(blocks[plan[0].src_index].used, blocks[plan[1].src_index].used);

  // Sanity on the callback itself: a fuller pairing is likelier to collide.
  EXPECT_GT(p(4, 10), p(30, 30));
  EXPECT_EQ(p(40, 40), 0.0);  // cannot fit: probability zero by contract
}

// --- Bounded Collect: a stalled collector converts to kTimeout. ------------

TEST(CompactionEngineTest, CollectStallTimesOutAndNodeStaysServiceable) {
  sim::FaultInjector injector(/*seed=*/7);
  sim::FaultSchedule stall;
  stall.one_shot_at = 1;  // swallow exactly the first Collect message
  injector.Arm(sim::fault_sites::kCompactionCollectStall, stall);
  sim::ScopedFaultInjector install(&injector);

  CormConfig config = BaseConfig();
  config.compaction_collect_deadline_ns = 50'000'000;  // 50 ms wall clock
  CormNode node(config);
  auto ctx = Context::Create(&node);
  Fragmented frag = Fragment(ctx.get(), 512);
  const uint32_t class_idx = *node.ClassForPayload(kPayload);

  // The peer worker swallows the Collect message: the run must convert the
  // stall into kTimeout within the deadline instead of wedging the leader.
  auto stalled = node.Compact(class_idx);
  ASSERT_FALSE(stalled.ok());
  EXPECT_TRUE(stalled.status().IsTimeout()) << stalled.status();
  EXPECT_EQ(node.stats().compaction_timeouts, 1u);
  EXPECT_EQ(
      injector.FiredCount(sim::fault_sites::kCompactionCollectStall), 1u);

  // The node kept its blocks (the leader defers its own collection until
  // every peer donated) and still serves the data plane.
  VerifySurvivors(ctx.get(), frag);
  auto fresh = ctx->Alloc(kPayload);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(ctx->Free(&*fresh).ok());

  // With the one-shot fault consumed, the retried run completes and
  // actually compacts.
  auto retried = node.Compact(class_idx);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_GT(retried->blocks_freed, 0u);
  VerifySurvivors(ctx.get(), frag);
  EXPECT_TRUE(node.Audit().ok());
}

}  // namespace
}  // namespace corm::core
