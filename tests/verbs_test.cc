// Tests for the two-sided SEND/RECV verbs layer.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "rdma/verbs.h"

namespace corm::rdma {
namespace {

sim::LatencyModel Model() {
  return sim::LatencyModel{sim::RnicModel::kConnectX5,
                           sim::CpuModel::kIntelXeon};
}

TEST(VerbsTest, SendRecvRoundTrip) {
  MessagePipe pipe(Model());
  ASSERT_TRUE(pipe.b()->PostRecv(/*wr_id=*/7, 128).ok());
  const std::string msg = "two-sided hello";
  ASSERT_TRUE(pipe.a()->PostSend(/*wr_id=*/1, Slice(msg)).ok());

  auto send_wc = pipe.a()->cq()->Poll();
  ASSERT_TRUE(send_wc.has_value());
  EXPECT_EQ(send_wc->op, WorkCompletion::Op::kSend);
  EXPECT_EQ(send_wc->wr_id, 1u);

  auto recv_wc = pipe.b()->cq()->Poll();
  ASSERT_TRUE(recv_wc.has_value());
  EXPECT_EQ(recv_wc->op, WorkCompletion::Op::kRecv);
  EXPECT_EQ(recv_wc->wr_id, 7u);
  EXPECT_EQ(recv_wc->byte_len, msg.size());
  auto data = pipe.b()->TakeReceived(7);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), msg);
}

TEST(VerbsTest, RnrWhenNoReceivePosted) {
  MessagePipe pipe(Model());
  Status st = pipe.a()->PostSend(1, Slice("x", 1));
  EXPECT_EQ(st.code(), StatusCode::kNetworkError);  // retriable RNR
  // After posting, the retry succeeds.
  ASSERT_TRUE(pipe.b()->PostRecv(1, 16).ok());
  EXPECT_TRUE(pipe.a()->PostSend(1, Slice("x", 1)).ok());
}

TEST(VerbsTest, OversizedSendBreaksTheConnection) {
  MessagePipe pipe(Model());
  ASSERT_TRUE(pipe.b()->PostRecv(1, 4).ok());
  const std::string big = "way more than four bytes";
  EXPECT_TRUE(pipe.a()->PostSend(1, Slice(big)).IsQpBroken());
  // Both halves are now in the error state.
  EXPECT_TRUE(pipe.a()->PostSend(2, Slice("x", 1)).IsQpBroken());
  EXPECT_TRUE(pipe.b()->PostRecv(2, 16).IsQpBroken());
  // The receiver sees a flush-style error completion.
  auto wc = pipe.b()->cq()->Poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_FALSE(wc->status.ok());
}

TEST(VerbsTest, ReceivesConsumeInFifoOrder) {
  MessagePipe pipe(Model());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(pipe.b()->PostRecv(100 + i, 64).ok());
  }
  for (uint64_t i = 0; i < 4; ++i) {
    const std::string msg = "msg" + std::to_string(i);
    ASSERT_TRUE(pipe.a()->PostSend(i, Slice(msg)).ok());
  }
  for (uint64_t i = 0; i < 4; ++i) {
    auto wc = pipe.b()->cq()->Poll();
    ASSERT_TRUE(wc.has_value());
    EXPECT_EQ(wc->wr_id, 100 + i);  // FIFO consumption of posted receives
    auto data = pipe.b()->TakeReceived(wc->wr_id);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(std::string(data->begin(), data->end()),
              "msg" + std::to_string(i));
  }
}

TEST(VerbsTest, BidirectionalEcho) {
  MessagePipe pipe(Model());
  // A server thread echoes whatever arrives (an RPC skeleton over raw
  // verbs, the paper's §4.1 baseline).
  std::thread server([&] {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pipe.b()->PostRecv(static_cast<uint64_t>(i), 64).ok());
      std::optional<WorkCompletion> wc;
      while (!(wc = pipe.b()->cq()->Poll())) {
        std::this_thread::yield();
      }
      ASSERT_TRUE(wc->status.ok());
      auto data = pipe.b()->TakeReceived(wc->wr_id);
      ASSERT_TRUE(data.ok());
      Status st;
      do {
        st = pipe.b()->PostSend(1000 + i,
                                Slice(data->data(), data->size()));
      } while (st.code() == StatusCode::kNetworkError);
      ASSERT_TRUE(st.ok());
      // Drain our own send completion.
      while (!pipe.b()->cq()->Poll()) {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pipe.a()->PostRecv(static_cast<uint64_t>(i), 64).ok());
    const std::string msg = "ping-" + std::to_string(i);
    Status st;
    do {
      st = pipe.a()->PostSend(static_cast<uint64_t>(i), Slice(msg));
    } while (st.code() == StatusCode::kNetworkError);
    ASSERT_TRUE(st.ok());
    // Wait for both the send completion and the echoed reply.
    int seen_recv = 0;
    while (seen_recv == 0) {
      auto wc = pipe.a()->cq()->Poll();
      if (!wc) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_TRUE(wc->status.ok());
      if (wc->op == WorkCompletion::Op::kRecv) {
        auto data = pipe.a()->TakeReceived(wc->wr_id);
        ASSERT_TRUE(data.ok());
        EXPECT_EQ(std::string(data->begin(), data->end()), msg);
        ++seen_recv;
      }
    }
  }
  server.join();
}

}  // namespace
}  // namespace corm::rdma
