// Concurrency tests: clients racing with writers and with live compaction.
// These exercise the consistency machinery of §3.2.3 under real thread
// interleavings (yield-heavy spins make this meaningful even on one CPU).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"

namespace corm::core {
namespace {

CormConfig Config() {
  CormConfig config;
  config.num_workers = 2;
  config.block_pages = 1;
  return config;
}

// Writers continuously update an object with self-consistent snapshots
// (PatternFill over a run index); readers must never observe a mix.
TEST(ConcurrencyTest, DirectReadsNeverObserveTornSnapshots) {
  CormNode node(Config());
  auto wctx = Context::Create(&node);
  constexpr uint32_t kPayload = 1000;  // many cachelines
  auto addr = wctx->Alloc(kPayload);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> init(kPayload);
  PatternFill(0, init.data(), kPayload);
  ASSERT_TRUE(wctx->Write(&*addr, init.data(), kPayload).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0}, retries{0};

  std::thread writer([&] {
    std::vector<uint8_t> buf(kPayload);
    GlobalAddr waddr = *addr;
    for (uint64_t round = 1; !stop.load(); ++round) {
      PatternFill(round % 64, buf.data(), kPayload);
      ASSERT_TRUE(wctx->Write(&waddr, buf.data(), kPayload).ok());
    }
  });

  {
    auto rctx = Context::Create(&node);
    std::vector<uint8_t> buf(kPayload);
    while (verified.load() < 2000) {
      Status st = rctx->DirectRead(*addr, buf.data(), kPayload);
      if (!st.ok()) {
        ASSERT_TRUE(st.IsTornRead() || st.IsObjectLocked()) << st;
        retries.fetch_add(1);
        continue;
      }
      // A successful read must be one complete snapshot.
      bool matched = false;
      for (uint64_t round = 0; round < 64 && !matched; ++round) {
        matched = PatternCheck(round, buf.data(), kPayload);
      }
      ASSERT_TRUE(matched) << "torn snapshot passed the version check";
      verified.fetch_add(1);
    }
  }
  stop.store(true);
  writer.join();
}

// Readers churn while the node compacts repeatedly: every read result must
// be either a clean failure (locked/moved -> recovered) or intact data.
TEST(ConcurrencyTest, ReadsStayConsistentDuringCompaction) {
  CormNode node(Config());
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  const uint32_t class_idx = *node.ClassForPayload(kPayload);

  auto addrs = node.BulkAlloc(2048, kPayload);
  ASSERT_TRUE(addrs.ok());
  // Free 60% to make compaction worthwhile.
  std::vector<GlobalAddr> survivors;
  std::vector<GlobalAddr> doomed;
  std::vector<uint64_t> survivor_idx;
  for (size_t i = 0; i < addrs->size(); ++i) {
    if (i % 5 < 3) {
      doomed.push_back((*addrs)[i]);
    } else {
      survivors.push_back((*addrs)[i]);
      survivor_idx.push_back(i);
    }
  }
  ASSERT_TRUE(node.BulkFree(doomed).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_ok{0};
  std::atomic<uint64_t> failures{0};

  std::thread reader([&] {
    auto rctx = Context::Create(&node);
    Rng rng(3);
    std::vector<uint8_t> buf(kPayload);
    while (!stop.load()) {
      const size_t i = rng.Uniform(survivors.size());
      GlobalAddr addr = survivors[i];
      Status st = rctx->ReadWithRecovery(&addr, buf.data(), kPayload);
      if (st.ok()) {
        ASSERT_TRUE(PatternCheck(survivor_idx[i], buf.data(), kPayload))
            << "object " << survivor_idx[i] << " corrupted";
        reads_ok.fetch_add(1);
      } else {
        failures.fetch_add(1);
      }
    }
  });

  for (int round = 0; round < 6; ++round) {
    auto report = node.Compact(class_idx);
    ASSERT_TRUE(report.ok());
  }
  // Let the reader observe the post-compaction state for a while.
  while (reads_ok.load() < 3000) {
    std::this_thread::yield();
  }
  stop.store(true);
  reader.join();
  EXPECT_GE(reads_ok.load(), 3000u);
  EXPECT_EQ(failures.load(), 0u) << "recovery should always converge";
}

// Frees racing with compaction: no object lost, no double free accepted.
TEST(ConcurrencyTest, FreesRaceCompactionSafely) {
  CormNode node(Config());
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 24;
  const uint32_t class_idx = *node.ClassForPayload(kPayload);

  auto addrs = node.BulkAlloc(4096, kPayload);
  ASSERT_TRUE(addrs.ok());

  std::atomic<bool> done{false};
  std::thread compactor([&] {
    while (!done.load()) {
      ASSERT_TRUE(node.Compact(class_idx).ok());
      std::this_thread::yield();
    }
  });

  // Free everything (with retries on transient compaction locks).
  auto fctx = Context::Create(&node);
  for (GlobalAddr addr : *addrs) {
    for (int attempt = 0;; ++attempt) {
      Status st = fctx->Free(&addr);
      if (st.ok()) break;
      ASSERT_TRUE(st.IsObjectLocked()) << st;
      ASSERT_LT(attempt, 100000) << "free never succeeded";
      std::this_thread::yield();
    }
  }
  done.store(true);
  compactor.join();

  auto frag = node.Fragmentation();
  EXPECT_EQ(frag[class_idx].used_bytes, 0u);
  EXPECT_EQ(frag[class_idx].granted_bytes, 0u);
  EXPECT_EQ(node.vaddr_ghosts_for_testing(), 0u);
}

// Multiple clients allocating/writing/reading concurrently across workers.
TEST(ConcurrencyTest, ParallelClientsIndependentObjects) {
  CormConfig config = Config();
  config.num_workers = 4;
  CormNode node(config);
  constexpr int kClients = 4;
  constexpr int kOpsEach = 400;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto ctx = Context::Create(&node);
      std::vector<uint8_t> buf(64), out(64);
      for (int i = 0; i < kOpsEach; ++i) {
        auto addr = ctx->Alloc(64);
        if (!addr.ok()) {
          errors.fetch_add(1);
          continue;
        }
        PatternFill(c * kOpsEach + i, buf.data(), 64);
        if (!ctx->Write(&*addr, buf.data(), 64).ok()) errors.fetch_add(1);
        if (!ctx->ReadWithRecovery(&*addr, out.data(), 64).ok()) {
          errors.fetch_add(1);
        } else if (!PatternCheck(c * kOpsEach + i, out.data(), 64)) {
          errors.fetch_add(1);
        }
        if (i % 3 == 0) {
          if (!ctx->Free(&*addr).ok()) errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

// QP breakage under the rereg strategy: a client reading during the rereg
// window breaks and must reconnect — the §3.5 motivation for ODP.
TEST(ConcurrencyTest, ReregWindowBreaksConcurrentReaders) {
  CormConfig config = Config();
  config.remap_strategy = sim::RemapStrategy::kReregMr;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  auto addr = ctx->Alloc(56);
  ASSERT_TRUE(addr.ok());

  // Inject the race deterministically via the test hooks.
  rdma::Rnic* rnic = node.rnic();
  ASSERT_TRUE(rnic->BeginRereg(addr->r_key).ok());
  std::vector<uint8_t> buf(56);
  Status st = ctx->DirectRead(*addr, buf.data(), 56);
  EXPECT_TRUE(st.IsQpBroken());
  EXPECT_EQ(ctx->stats().qp_reconnects, 1u);
  ASSERT_TRUE(rnic->EndRereg(addr->r_key).ok());
  // After the (auto) reconnect, reads work again.
  EXPECT_TRUE(ctx->DirectRead(*addr, buf.data(), 56).ok());
}

}  // namespace
}  // namespace corm::core
