// Edge cases and failure injection on the CoRM node: oversized ops, stale
// keys, compaction bounds, ID-width limits, and RNIC cache accounting.

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"

namespace corm::core {
namespace {

CormConfig SmallConfig() {
  CormConfig config;
  config.num_workers = 2;
  config.block_pages = 1;
  return config;
}

TEST(NodeEdgeTest, ReadLargerThanObjectRejected) {
  CormNode node(SmallConfig());
  auto ctx = Context::Create(&node);
  auto addr = ctx->Alloc(24);  // class 32, capacity 24
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> buf(64);
  EXPECT_EQ(ctx->Read(&*addr, buf.data(), 64).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ctx->DirectRead(*addr, buf.data(), 64).code(),
            StatusCode::kInvalidArgument);
}

TEST(NodeEdgeTest, WriteLargerThanObjectRejected) {
  CormNode node(SmallConfig());
  auto ctx = Context::Create(&node);
  auto addr = ctx->Alloc(24);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> buf(64, 1);
  EXPECT_EQ(ctx->Write(&*addr, buf.data(), 64).code(),
            StatusCode::kInvalidArgument);
}

TEST(NodeEdgeTest, ZeroByteObjectsWork) {
  CormNode node(SmallConfig());
  auto ctx = Context::Create(&node);
  auto addr = ctx->Alloc(0);
  ASSERT_TRUE(addr.ok());
  EXPECT_TRUE(ctx->Free(&*addr).ok());
}

TEST(NodeEdgeTest, BogusObjectIdNotFound) {
  CormNode node(SmallConfig());
  auto ctx = Context::Create(&node);
  auto keeper = ctx->Alloc(24);
  ASSERT_TRUE(keeper.ok());
  GlobalAddr bogus = *keeper;
  bogus.obj_id = static_cast<uint16_t>(~keeper->obj_id);
  std::vector<uint8_t> buf(24);
  Status st = ctx->Read(&bogus, buf.data(), 24);
  EXPECT_TRUE(st.IsNotFound() || st.IsObjectMoved()) << st;
  EXPECT_FALSE(ctx->ScanRead(&bogus, buf.data(), 24).ok());
}

TEST(NodeEdgeTest, CompactionMaxBlocksBoundsTheRun) {
  CormConfig config = SmallConfig();
  config.compaction_max_blocks = 4;  // §4.3.2: bound the unavailability
  CormNode node(config);
  auto ctx = Context::Create(&node);
  auto addrs = node.BulkAlloc(1024, 56);
  ASSERT_TRUE(addrs.ok());
  std::vector<GlobalAddr> doomed;
  for (size_t i = 0; i < addrs->size(); i += 2) doomed.push_back((*addrs)[i]);
  ASSERT_TRUE(node.BulkFree(doomed).ok());
  auto report = node.Compact(*node.ClassForPayload(56));
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->blocks_collected, 4u);
}

TEST(NodeEdgeTest, CollectionSkipsFullBlocks) {
  CormConfig config = SmallConfig();
  config.num_workers = 1;
  config.collection_max_occupancy = 0.5;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  // Two full blocks (64 objects of class 64 each): nothing to collect.
  auto addrs = node.BulkAlloc(128, 56);
  ASSERT_TRUE(addrs.ok());
  auto report = node.Compact(*node.ClassForPayload(56));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->blocks_collected, 0u);
  EXPECT_EQ(report->blocks_freed, 0u);
}

TEST(NodeEdgeTest, NarrowIdWidthDisablesSmallClasses) {
  CormConfig config = SmallConfig();
  config.object_id_bits = 4;  // 16 IDs; class 32 has 128 slots per 4 KiB
  CormNode node(config);
  auto ctx = Context::Create(&node);
  auto addr = ctx->Alloc(24);
  ASSERT_TRUE(addr.ok());
  auto small = node.Compact(*node.ClassForPayload(24));
  EXPECT_EQ(small.status().code(), StatusCode::kNotSupported);
  // A big class (2048 B -> 2 slots <= 16 IDs) is still compactable.
  auto big = node.Compact(*node.ClassForPayload(2000));
  EXPECT_TRUE(big.ok()) << big.status();
}

TEST(NodeEdgeTest, ObjectIdsRespectWidth) {
  CormConfig config = SmallConfig();
  config.object_id_bits = 8;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  for (int i = 0; i < 100; ++i) {
    auto addr = ctx->Alloc(2000);
    ASSERT_TRUE(addr.ok());
    EXPECT_LT(addr->obj_id, 256) << "ID wider than configured";
  }
}

TEST(NodeEdgeTest, IdsUniqueWithinBlock) {
  CormConfig config = SmallConfig();
  config.num_workers = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  std::set<std::pair<sim::VAddr, uint16_t>> seen;
  for (int i = 0; i < 512; ++i) {
    auto addr = ctx->Alloc(56);
    ASSERT_TRUE(addr.ok());
    const sim::VAddr base = BlockBaseOf(addr->vaddr, node.block_bytes());
    EXPECT_TRUE(seen.insert({base, addr->obj_id}).second)
        << "duplicate ID in one block";
  }
}

TEST(NodeEdgeTest, MttCacheCountersMove) {
  CormNode node(SmallConfig());
  auto ctx = Context::Create(&node);
  auto addrs = node.BulkAlloc(4096, 56);  // many pages
  ASSERT_TRUE(addrs.ok());
  node.rnic()->ResetMttCache();
  std::vector<uint8_t> buf(56);
  for (size_t i = 0; i < addrs->size(); i += 7) {
    ASSERT_TRUE(ctx->DirectRead((*addrs)[i], buf.data(), 56).ok());
  }
  const auto& stats = node.rnic()->stats();
  EXPECT_GT(stats.mtt_cache_misses.load() + stats.mtt_cache_hits.load(), 0u);
  // Re-reading the same object repeatedly must hit.
  const uint64_t misses_before = stats.mtt_cache_misses.load();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ctx->DirectRead((*addrs)[0], buf.data(), 56).ok());
  }
  EXPECT_LE(stats.mtt_cache_misses.load(), misses_before + 1);
}

TEST(NodeEdgeTest, GhostReleaseInvalidatesOldRKey) {
  CormConfig config = SmallConfig();
  config.num_workers = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  auto addrs = node.BulkAlloc(256, 56);
  ASSERT_TRUE(addrs.ok());
  std::vector<GlobalAddr> doomed, survivors;
  for (size_t i = 0; i < addrs->size(); ++i) {
    (i % 2 ? doomed : survivors).push_back((*addrs)[i]);
  }
  ASSERT_TRUE(node.BulkFree(doomed).ok());
  ASSERT_TRUE(node.Compact(*node.ClassForPayload(56)).ok());
  // Re-home every survivor; ghosts drain. Keep the original pointers.
  std::vector<GlobalAddr> originals = survivors;
  for (auto& addr : survivors) ASSERT_TRUE(ctx->ReleasePtr(&addr).ok());
  ASSERT_EQ(node.vaddr_ghosts_for_testing(), 0u);
  // Original pointers into released ghost ranges are dead (the address no
  // longer resolves, or its MR is gone and the QP breaks); pointers whose
  // blocks survived the merge as destinations still work. At least one
  // ghost existed, so at least one original pointer must be dead.
  std::vector<uint8_t> buf(56);
  size_t dead = 0;
  for (const GlobalAddr& stale : originals) {
    Status st = ctx->DirectRead(stale, buf.data(), 56);
    if (st.ok()) continue;
    EXPECT_TRUE(st.IsQpBroken() || st.IsObjectMoved() || st.IsStalePointer())
        << st;
    ++dead;
    GlobalAddr rpc_stale = stale;
    Status st2 = ctx->Read(&rpc_stale, buf.data(), 56);
    EXPECT_TRUE(st2.IsStalePointer() || st2.IsNotFound() || st2.ok()) << st2;
  }
  EXPECT_GT(dead, 0u);
}

TEST(NodeEdgeTest, BulkAllocDeterministicPatterns) {
  CormNode node(SmallConfig());
  auto ctx = Context::Create(&node);
  auto addrs = node.BulkAlloc(100, 56);
  ASSERT_TRUE(addrs.ok());
  std::vector<uint8_t> buf(56);
  for (size_t i = 0; i < addrs->size(); ++i) {
    ASSERT_TRUE(ctx->DirectRead((*addrs)[i], buf.data(), 56).ok());
    EXPECT_TRUE(PatternCheck(i, buf.data(), 56)) << i;
  }
}

TEST(NodeEdgeTest, FragmentationListsAllActiveClasses) {
  CormNode node(SmallConfig());
  auto ctx = Context::Create(&node);
  ASSERT_TRUE(ctx->Alloc(24).ok());
  ASSERT_TRUE(ctx->Alloc(500).ok());
  auto frag = node.Fragmentation();
  size_t active = 0;
  for (const auto& cls : frag) active += cls.num_blocks > 0;
  EXPECT_EQ(active, 2u);
}

// Stale r_key after a block is fully destroyed: the QP must break, exactly
// like a revoked registration on real hardware.
TEST(NodeEdgeTest, DirectReadAfterBlockDestroyedBreaksQp) {
  CormConfig config = SmallConfig();
  config.num_workers = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  auto addr = ctx->Alloc(24);
  ASSERT_TRUE(addr.ok());
  GlobalAddr stale = *addr;
  ASSERT_TRUE(ctx->Free(&*addr).ok());  // last object: block destroyed
  std::vector<uint8_t> buf(24);
  EXPECT_TRUE(ctx->DirectRead(stale, buf.data(), 24).IsQpBroken());
  EXPECT_EQ(ctx->stats().qp_reconnects, 1u);
  // The context auto-reconnected; live objects still readable.
  auto fresh = ctx->Alloc(24);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(ctx->DirectRead(*fresh, buf.data(), 24).ok());
}

TEST(NodeEdgeTest, DebugReportMentionsState) {
  CormNode node(SmallConfig());
  auto ctx = Context::Create(&node);
  ASSERT_TRUE(ctx->Alloc(24).ok());
  const std::string report = node.DebugReport();
  EXPECT_NE(report.find("CormNode: 2 workers"), std::string::npos);
  EXPECT_NE(report.find("class 32"), std::string::npos);
  EXPECT_NE(report.find("1 allocs"), std::string::npos);
}

// Determinism: identical configuration and op sequence produce identical
// allocator decisions (seeded RNG everywhere) — a property the benches and
// trace studies rely on.
TEST(NodeEdgeTest, DeterministicAcrossRuns) {
  auto run = [] {
    CormConfig config = SmallConfig();
    config.seed = 777;
    CormNode node(config);
    auto addrs = node.BulkAlloc(500, 56);
    CORM_CHECK(addrs.ok());
    std::vector<GlobalAddr> doomed;
    for (size_t i = 0; i < addrs->size(); i += 2) {
      doomed.push_back((*addrs)[i]);
    }
    CORM_CHECK(node.BulkFree(doomed).ok());
    auto report = node.Compact(*node.ClassForPayload(56));
    CORM_CHECK(report.ok());
    return std::tuple<size_t, size_t, uint64_t>(
        report->blocks_freed, report->objects_relocated,
        node.ActiveMemoryBytes());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace corm::core
