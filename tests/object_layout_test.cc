// Tests for the object layout: header packing, FaRM-style per-cacheline
// version scatter/gather, and the lock-free consistency check.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/addr.h"
#include "core/object_layout.h"

namespace corm::core {
namespace {

TEST(ObjectHeaderTest, PackUnpackRoundTrip) {
  ObjectHeader h;
  h.version = 0xAB;
  h.lock = LockState::kCompacting;
  h.class_idx = 0x2F;
  h.obj_id = 0xBEEF;
  h.home_page = 0xDEAD1234;
  const ObjectHeader r = ObjectHeader::Unpack(h.Pack());
  EXPECT_EQ(r.version, h.version);
  EXPECT_EQ(r.lock, h.lock);
  EXPECT_EQ(r.class_idx, h.class_idx);
  EXPECT_EQ(r.obj_id, h.obj_id);
  EXPECT_EQ(r.home_page, h.home_page);
}

TEST(ObjectHeaderTest, FieldsDoNotOverlap) {
  ObjectHeader a;
  a.version = 0xFF;
  ObjectHeader b;
  b.obj_id = 0xFFFF;
  ObjectHeader c;
  c.home_page = 0xFFFFFFFF;
  EXPECT_EQ(ObjectHeader::Unpack(a.Pack()).obj_id, 0);
  EXPECT_EQ(ObjectHeader::Unpack(b.Pack()).version, 0);
  EXPECT_EQ(ObjectHeader::Unpack(c.Pack()).obj_id, 0);
}

TEST(ObjectHeaderTest, HomePageRoundTrip) {
  const sim::VAddr base = sim::AddressSpace::kBase + 42 * sim::kVPageSize;
  EXPECT_EQ(HomeVaddrOf(HomePageOf(base)), base);
}

TEST(LayoutTest, PayloadCapacities) {
  EXPECT_EQ(PayloadCapacity(16), 8u);
  EXPECT_EQ(PayloadCapacity(32), 24u);
  EXPECT_EQ(PayloadCapacity(64), 56u);
  // 128 B = 2 cachelines: 8 header + 1 version byte.
  EXPECT_EQ(PayloadCapacity(128), 128u - 8 - 1);
  EXPECT_EQ(PayloadCapacity(4096), 4096u - 8 - 63);
  EXPECT_EQ(PayloadCapacity(8), 0u);
}

TEST(LayoutTest, SlotCachelines) {
  EXPECT_EQ(SlotCachelines(16), 1u);
  EXPECT_EQ(SlotCachelines(64), 1u);
  EXPECT_EQ(SlotCachelines(128), 2u);
  EXPECT_EQ(SlotCachelines(2048), 32u);
}

class PayloadRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PayloadRoundTrip, ScatterGatherPreservesBytes) {
  const uint32_t slot_size = GetParam();
  const uint32_t capacity = PayloadCapacity(slot_size);
  std::vector<uint8_t> slot(slot_size, 0xEE);
  std::vector<uint8_t> in(capacity);
  PatternFill(7, in.data(), capacity);

  WritePayload(slot.data(), slot_size, /*version=*/9, in.data(), capacity);
  std::vector<uint8_t> out(capacity, 0);
  ReadPayload(slot.data(), slot_size, out.data(), capacity);
  EXPECT_EQ(in, out);

  // Version bytes stamped at each additional cacheline boundary.
  for (uint32_t line = 1; line < SlotCachelines(slot_size); ++line) {
    EXPECT_EQ(slot[line * kCacheLineSize], 9) << "line " << line;
  }
}

TEST_P(PayloadRoundTrip, PartialReadsAndWrites) {
  const uint32_t slot_size = GetParam();
  const uint32_t capacity = PayloadCapacity(slot_size);
  const uint32_t len = capacity / 2;
  if (len == 0) return;
  std::vector<uint8_t> slot(slot_size, 0);
  std::vector<uint8_t> in(len);
  PatternFill(3, in.data(), len);
  WritePayload(slot.data(), slot_size, 1, in.data(), len);
  std::vector<uint8_t> out(len);
  ReadPayload(slot.data(), slot_size, out.data(), len);
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, PayloadRoundTrip,
                         ::testing::Values(16, 32, 64, 128, 192, 256, 512,
                                           1024, 2048, 4096, 8192, 12288));

TEST(ConsistencyTest, FreshObjectIsConsistent) {
  std::vector<uint8_t> slot(256, 0);
  ObjectHeader h;
  h.version = 5;
  WritePayload(slot.data(), 256, 5, nullptr, 0);
  std::memcpy(slot.data(), &(const uint64_t&)h.Pack(), 0);  // no-op
  const uint64_t packed = h.Pack();
  std::memcpy(slot.data(), &packed, 8);
  EXPECT_TRUE(SnapshotConsistent(slot.data(), 256));
}

TEST(ConsistencyTest, TornCachelineDetected) {
  std::vector<uint8_t> slot(256, 0);
  ObjectHeader h;
  h.version = 5;
  WritePayload(slot.data(), 256, 5, nullptr, 0);
  const uint64_t packed = h.Pack();
  std::memcpy(slot.data(), &packed, 8);
  // A concurrent writer updated cacheline 2 (version 6) but not the rest —
  // exactly the torn state a DirectRead snapshot can capture.
  slot[2 * kCacheLineSize] = 6;
  EXPECT_FALSE(SnapshotConsistent(slot.data(), 256));
}

TEST(ConsistencyTest, LockedObjectInconsistent) {
  std::vector<uint8_t> slot(64, 0);
  ObjectHeader h;
  h.version = 1;
  h.lock = LockState::kWriteLocked;
  const uint64_t packed = h.Pack();
  std::memcpy(slot.data(), &packed, 8);
  EXPECT_FALSE(SnapshotConsistent(slot.data(), 64));
}

TEST(ConsistencyTest, SingleCachelineOnlyChecksHeader) {
  std::vector<uint8_t> slot(32, 0xFF);
  ObjectHeader h;
  h.version = 3;
  const uint64_t packed = h.Pack();
  std::memcpy(slot.data(), &packed, 8);
  EXPECT_TRUE(SnapshotConsistent(slot.data(), 32));
}

TEST(GlobalAddrTest, SizeAndFlags) {
  EXPECT_EQ(sizeof(GlobalAddr), 16u);
  GlobalAddr addr;
  EXPECT_TRUE(addr.IsNull());
  EXPECT_FALSE(addr.ReferencesOldBlock());
  addr.flags = GlobalAddr::kFlagOldBlock;
  EXPECT_TRUE(addr.ReferencesOldBlock());
}

TEST(GlobalAddrTest, BlockBaseOf) {
  const size_t block = 4096;
  const sim::VAddr base = sim::AddressSpace::kBase;
  EXPECT_EQ(BlockBaseOf(base, block), base);
  EXPECT_EQ(BlockBaseOf(base + 100, block), base);
  EXPECT_EQ(BlockBaseOf(base + 4096 + 1, block), base + 4096);
  const size_t mib = 1 << 20;
  EXPECT_EQ(BlockBaseOf(base + mib + 77, mib), base + mib);
}

TEST(PatternTest, FillAndCheck) {
  std::vector<uint8_t> buf(128);
  PatternFill(5, buf.data(), 128);
  EXPECT_TRUE(PatternCheck(5, buf.data(), 128));
  EXPECT_FALSE(PatternCheck(6, buf.data(), 128));
  buf[100] ^= 1;
  EXPECT_FALSE(PatternCheck(5, buf.data(), 128));
}

}  // namespace
}  // namespace corm::core
