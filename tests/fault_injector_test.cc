// FaultInjector: seed determinism, site isolation, schedule semantics.
//
// The acceptance bar for the chaos harness is "identical seed reproduces an
// identical fault schedule"; this file asserts that property directly, both
// single-threaded and across adversarial thread interleavings.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sim/fault_injector.h"

namespace corm::sim {
namespace {

// Drives `events` decisions at `site` and returns the fire bitmap in event
// order (single-threaded, so event index == vector index + 1).
std::vector<bool> Drive(FaultInjector* fi, const std::string& site,
                        int events) {
  std::vector<bool> fired;
  fired.reserve(events);
  for (int i = 0; i < events; ++i) fired.push_back(fi->ShouldFire(site));
  return fired;
}

TEST(FaultInjectorTest, UnarmedSitesAreTransparent) {
  FaultInjector fi(7);
  EXPECT_FALSE(fi.ShouldFire(fault_sites::kRpcDelay));
  EXPECT_FALSE(fi.ShouldFire("made.up.site"));
  // Unarmed sites do not even count events.
  EXPECT_EQ(fi.EventCount(fault_sites::kRpcDelay), 0u);
  EXPECT_EQ(fi.FiredCount(fault_sites::kRpcDelay), 0u);
}

TEST(FaultInjectorTest, IdenticalSeedReplaysIdenticalSchedule) {
  constexpr int kEvents = 2048;
  FaultSchedule sched;
  sched.probability = 0.05;

  FaultInjector a(0xC0A5), b(0xC0A5);
  a.Arm(fault_sites::kRpcDropRequest, sched);
  b.Arm(fault_sites::kRpcDropRequest, sched);

  const auto run_a = Drive(&a, fault_sites::kRpcDropRequest, kEvents);
  const auto run_b = Drive(&b, fault_sites::kRpcDropRequest, kEvents);
  EXPECT_EQ(run_a, run_b);

  // Sanity: the schedule actually does something, and not everything.
  EXPECT_GT(a.FiredCount(fault_sites::kRpcDropRequest), 0u);
  EXPECT_LT(a.FiredCount(fault_sites::kRpcDropRequest),
            static_cast<uint64_t>(kEvents));
  EXPECT_EQ(a.EventCount(fault_sites::kRpcDropRequest),
            static_cast<uint64_t>(kEvents));
}

TEST(FaultInjectorTest, DifferentSeedsProduceDifferentSchedules) {
  constexpr int kEvents = 2048;
  FaultSchedule sched;
  sched.probability = 0.05;

  FaultInjector a(1), b(2);
  a.Arm(fault_sites::kRpcDropRequest, sched);
  b.Arm(fault_sites::kRpcDropRequest, sched);
  EXPECT_NE(Drive(&a, fault_sites::kRpcDropRequest, kEvents),
            Drive(&b, fault_sites::kRpcDropRequest, kEvents));
}

TEST(FaultInjectorTest, SitesAreIsolated) {
  FaultSchedule always;
  always.every_nth = 1;

  FaultInjector fi(3);
  fi.Arm("site.a", always);
  fi.Arm("site.b", FaultSchedule{});  // armed but never fires

  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fi.ShouldFire("site.a"));
  // Events at site.a did not advance site.b's counter (and vice versa).
  EXPECT_EQ(fi.EventCount("site.a"), 10u);
  EXPECT_EQ(fi.EventCount("site.b"), 0u);
  EXPECT_FALSE(fi.ShouldFire("site.b"));
  EXPECT_EQ(fi.EventCount("site.b"), 1u);
  EXPECT_EQ(fi.FiredCount("site.b"), 0u);
  EXPECT_EQ(fi.EventCount("site.a"), 10u);

  // Same seed, same schedule, different site name → different decisions
  // (the site hash is part of the decision function).
  FaultSchedule p;
  p.probability = 0.5;
  FaultInjector x(9), y(9);
  x.Arm("lhs", p);
  y.Arm("rhs", p);
  EXPECT_NE(Drive(&x, "lhs", 256), Drive(&y, "rhs", 256));
}

TEST(FaultInjectorTest, OneShotFiresExactlyOnceAtItsIndex) {
  FaultSchedule sched;
  sched.one_shot_at = 5;

  FaultInjector fi(11);
  fi.Arm("boom", sched);
  for (int n = 1; n <= 12; ++n) {
    EXPECT_EQ(fi.ShouldFire("boom"), n == 5) << "event " << n;
  }
  EXPECT_EQ(fi.FiredCount("boom"), 1u);
}

TEST(FaultInjectorTest, EveryNthFiresOnMultiples) {
  FaultSchedule sched;
  sched.every_nth = 3;

  FaultInjector fi(11);
  fi.Arm("tick", sched);
  for (int n = 1; n <= 9; ++n) {
    EXPECT_EQ(fi.ShouldFire("tick"), n % 3 == 0) << "event " << n;
  }
  EXPECT_EQ(fi.FiredCount("tick"), 3u);
}

TEST(FaultInjectorTest, DelayPayloadIsDeliveredOnFire) {
  FaultSchedule sched;
  sched.every_nth = 2;
  sched.delay_ns = 1234;

  FaultInjector fi(5);
  fi.Arm(fault_sites::kRpcDelay, sched);
  uint64_t delay = 0;
  EXPECT_FALSE(fi.ShouldFire(fault_sites::kRpcDelay, &delay));
  EXPECT_EQ(delay, 0u);  // untouched when the site does not fire
  EXPECT_TRUE(fi.ShouldFire(fault_sites::kRpcDelay, &delay));
  EXPECT_EQ(delay, 1234u);
}

TEST(FaultInjectorTest, DisarmMakesSiteTransparentAgain) {
  FaultSchedule always;
  always.every_nth = 1;

  FaultInjector fi(5);
  fi.Arm("flaky", always);
  EXPECT_TRUE(fi.ShouldFire("flaky"));
  fi.Disarm("flaky");
  EXPECT_FALSE(fi.ShouldFire("flaky"));
  EXPECT_EQ(fi.EventCount("flaky"), 0u);
}

// The decision for event index N is a pure function of (seed, site, N):
// the *set* of fired indices is identical no matter how threads interleave,
// so the total fired count under concurrency equals the single-threaded
// count for the same seed.
TEST(FaultInjectorTest, FiredCountIsInterleavingIndependent) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  FaultSchedule sched;
  sched.probability = 0.25;

  FaultInjector serial(0xFEED);
  serial.Arm("contended", sched);
  Drive(&serial, "contended", kThreads * kPerThread);

  FaultInjector parallel(0xFEED);
  parallel.Arm("contended", sched);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&parallel] {
      for (int i = 0; i < kPerThread; ++i) parallel.ShouldFire("contended");
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(parallel.EventCount("contended"),
            serial.EventCount("contended"));
  EXPECT_EQ(parallel.FiredCount("contended"),
            serial.FiredCount("contended"));
  EXPECT_GT(serial.FiredCount("contended"), 0u);
}

TEST(FaultInjectorTest, ScopedInstallRestoresPreviousInjector) {
  ASSERT_EQ(GlobalFaultInjector(), nullptr);
  FaultInjector outer(1), inner(2);
  {
    ScopedFaultInjector install_outer(&outer);
    EXPECT_EQ(GlobalFaultInjector(), &outer);
    {
      ScopedFaultInjector install_inner(&inner);
      EXPECT_EQ(GlobalFaultInjector(), &inner);
    }
    EXPECT_EQ(GlobalFaultInjector(), &outer);
  }
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
}

}  // namespace
}  // namespace corm::sim
